// dtp_top: live terminal view of a running dtp_serve daemon (DESIGN.md §13).
//
//   dtp_top --socket /tmp/dtp.sock [--interval SEC] [--once] [--events N]
//
// Polls the daemon's stats/list/events/profile protocol verbs on a refresh
// loop and renders queue depth, per-state job counts, wait/service latency
// percentiles, the job table, the sampling-profiler hot spots over a rolling
// window and the most recent lifecycle events — a single-screen answer to
// "what is the daemon doing right now" with no dependencies beyond the
// daemon's own socket.
//
//   --once            render one frame and exit (scripts, CI)
//   --interval        refresh period in seconds (default 1.0)
//   --events          number of recent events to keep on screen (default 10)
//   --profile-window  rolling hot-spot window in seconds (default 30)
//
// Exit codes: 0 after a clean frame (--once) or SIGINT, 1 on transport error,
// 2 on a malformed response.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <ctime>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.h"
#include "common/json_parse.h"
#include "serve/server.h"

namespace {

using dtp::JsonParser;
using dtp::JsonValue;
using dtp::cli::arg_double;
using dtp::cli::arg_flag;
using dtp::cli::arg_int;
using dtp::cli::arg_str;

std::atomic<bool> g_stop{false};
void on_signal(int) { g_stop.store(true); }

// One protocol round-trip; returns false (with *err set) on transport
// failure, throws std::runtime_error on malformed JSON.
bool ask(const std::string& socket, const std::string& request, JsonValue* out,
         std::string* err) {
  std::string response;
  if (!dtp::serve::send_request(socket, request, &response, err)) return false;
  *out = JsonParser::parse(response);
  return true;
}

std::string fmt_clock(int64_t ts_ms) {
  const std::time_t t = static_cast<std::time_t>(ts_ms / 1000);
  std::tm tm_buf{};
  localtime_r(&t, &tm_buf);
  char buf[16];
  std::strftime(buf, sizeof(buf), "%H:%M:%S", &tm_buf);
  return std::string(buf) + "." + std::to_string((ts_ms % 1000) / 100);
}

struct EventLine {
  uint64_t seq = 0;
  std::string text;
};

// Hot-spots pane: top labels by self-time share over the daemon's rolling
// profile window.  `profile` is the raw response of {"cmd":"profile"} — an
// ok:false response (profiler disabled, or an older daemon without the verb)
// degrades to a one-line notice instead of failing the frame.
void render_profile(const JsonValue& profile, double window_sec) {
  if (!profile.is_object() || !profile.has("ok") ||
      !profile.at("ok").boolean || !profile.has("profile")) {
    std::printf("\nhot spots: unavailable (%s)\n",
                profile.is_object()
                    ? profile.str_or("error", "no profile in response").c_str()
                    : "malformed response");
    return;
  }
  const JsonValue& p = profile.at("profile");
  const double samples = p.num_or("samples", 0);
  std::printf("\nhot spots (last ~%.0fs, %.0f samples at %.0f Hz):\n",
              window_sec, samples, p.num_or("hz", 0));
  if (!p.has("labels") || !p.at("labels").is_array() ||
      p.at("labels").array.empty()) {
    std::printf("  (no samples yet — daemon idle)\n");
    return;
  }
  // Labels arrive sorted by self-time descending; show the top five.
  size_t shown = 0;
  for (const JsonValue& l : p.at("labels").array) {
    if (shown++ == 5) break;
    std::printf("  %5.1f%% self  %5.1f%% total  %s\n",
                l.num_or("self_pct", 0), l.num_or("total_pct", 0),
                l.str_or("label", "?").c_str());
  }
}

void render(const std::string& socket, const JsonValue& stats,
            const JsonValue& jobs, const JsonValue& profile,
            double profile_window, const std::deque<EventLine>& events,
            uint64_t total_gap) {
  const JsonValue& s = stats.at("stats");
  std::printf("dtp_serve @ %s%s\n", socket.c_str(),
              s.num_or("draining", 0) != 0 ? "   [DRAINING]" : "");
  std::printf(
      "queue %2.0f/%-2.0f  running %2.0f/%-2.0f  submitted %.0f  accepted %.0f"
      "  rejected %.0f\n",
      s.num_or("queue_depth", 0), s.num_or("queue_capacity", 0),
      s.num_or("running", 0), s.num_or("workers", 0),
      s.num_or("submitted", 0), s.num_or("accepted", 0),
      s.num_or("rejected", 0));
  std::printf(
      "done %.0f  failed %.0f  timeout %.0f  cancelled %.0f  retries %.0f"
      "  preemptions %.0f  recovered %.0f\n",
      s.num_or("done", 0), s.num_or("failed", 0), s.num_or("timeout", 0),
      s.num_or("cancelled", 0), s.num_or("retries", 0),
      s.num_or("preemptions", 0), s.num_or("recovered", 0));
  if (s.has("session") && s.at("session").is_object()) {
    const JsonValue& sess = s.at("session");
    if (sess.has("wait_ms") && sess.has("service_ms")) {
      std::printf(
          "wait    p50 %8.1f ms   p95 %8.1f ms\n"
          "service p50 %8.1f ms   p95 %8.1f ms\n",
          sess.at("wait_ms").num_or("p50", 0),
          sess.at("wait_ms").num_or("p95", 0),
          sess.at("service_ms").num_or("p50", 0),
          sess.at("service_ms").num_or("p95", 0));
    }
  }

  std::printf("\n%4s %-9s %-10s %4s %-4s %6s %8s %8s  %s\n", "ID", "STATE",
              "CLIENT", "PRIO", "MODE", "ITER", "WAIT(s)", "RUN(s)", "DETAIL");
  for (const JsonValue& j : jobs.at("jobs").array) {
    const JsonValue& spec = j.at("spec");
    std::string detail = j.str_or("detail", "");
    if (detail.size() > 46) detail = detail.substr(0, 43) + "...";
    const double iters =
        j.has("outcome") ? j.at("outcome").num_or("iterations", 0) : 0;
    std::printf("%4.0f %-9s %-10s %4.0f %-4s %6.0f %8.2f %8.2f  %s\n",
                j.num_or("id", 0), j.str_or("state", "?").c_str(),
                spec.str_or("client", "?").c_str(), spec.num_or("priority", 0),
                spec.str_or("mode", "?").c_str(), iters,
                j.num_or("wait_sec", 0), j.num_or("run_sec", 0),
                detail.c_str());
  }

  render_profile(profile, profile_window);

  std::printf("\nevents (ring cursor %llu%s):\n",
              static_cast<unsigned long long>(
                  events.empty() ? 0 : events.back().seq),
              total_gap > 0
                  ? (", " + std::to_string(total_gap) + " lost to overflow")
                        .c_str()
                  : "");
  for (const EventLine& e : events) std::printf("  %s\n", e.text.c_str());
  std::fflush(stdout);
}

void usage() {
  std::fprintf(stderr,
               "usage: dtp_top --socket PATH [--interval SEC] [--once]"
               " [--events N] [--profile-window SEC]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || arg_flag(argc, argv, "--help")) {
    usage();
    return argc < 2 ? 1 : 0;
  }
  const char* socket_arg = arg_str(argc, argv, "--socket", nullptr);
  if (socket_arg == nullptr) {
    usage();
    return 1;
  }
  const std::string socket = socket_arg;
  const bool once = arg_flag(argc, argv, "--once");
  const double interval = arg_double(argc, argv, "--interval", 1.0);
  const size_t keep =
      static_cast<size_t>(std::max(1, arg_int(argc, argv, "--events", 10)));
  const double profile_window =
      arg_double(argc, argv, "--profile-window", 30.0);

  std::signal(SIGINT, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  uint64_t cursor = 0;
  uint64_t total_gap = 0;
  std::deque<EventLine> events;

  while (!g_stop.load()) {
    JsonValue stats, jobs, evresp, profile;
    std::string err;
    try {
      if (!ask(socket, R"({"cmd":"stats"})", &stats, &err) ||
          !ask(socket, R"({"cmd":"list"})", &jobs, &err) ||
          !ask(socket,
               R"({"cmd":"events","since":)" + std::to_string(cursor) + "}",
               &evresp, &err)) {
        std::fprintf(stderr, "dtp_top: %s\n", err.c_str());
        return 1;
      }
      // The profile verb may legitimately answer ok:false (profiler disabled,
      // pre-profiler daemon); render_profile degrades, so only transport
      // failures are fatal here.
      std::string profile_req = R"({"cmd":"profile","window_sec":)";
      profile_req += std::to_string(profile_window);
      profile_req += "}";
      if (!ask(socket, profile_req, &profile, &err)) {
        std::fprintf(stderr, "dtp_top: %s\n", err.c_str());
        return 1;
      }
      if (!stats.is_object() || !stats.has("stats") || !jobs.has("jobs") ||
          !evresp.has("events")) {
        std::fprintf(stderr, "dtp_top: malformed response\n");
        return 2;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "dtp_top: %s\n", e.what());
      return 2;
    }

    cursor = static_cast<uint64_t>(evresp.num_or("next_since", cursor));
    total_gap += static_cast<uint64_t>(evresp.num_or("gap", 0));
    for (const JsonValue& e : evresp.at("events").array) {
      std::string text = fmt_clock(static_cast<int64_t>(e.num_or("ts_ms", 0)));
      text += " " + e.str_or("kind", "?");
      if (e.has("job"))
        text += " job " + std::to_string(
                              static_cast<uint64_t>(e.num_or("job", 0)));
      if (e.has("state")) text += " [" + e.str_or("state", "") + "]";
      const std::string detail = e.str_or("detail", "");
      if (!detail.empty()) text += " — " + detail;
      events.push_back({static_cast<uint64_t>(e.num_or("seq", 0)), text});
    }
    while (events.size() > keep) events.pop_front();

    if (!once) std::printf("\033[H\033[2J");  // home + clear between frames
    render(socket, stats, jobs, profile, profile_window, events, total_gap);
    if (once) return 0;
    std::this_thread::sleep_for(std::chrono::duration<double>(interval));
  }
  return 0;
}
