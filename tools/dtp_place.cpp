// dtp_place: command-line timing-driven placer.
//
//   dtp_place --lib <file.lib> --netlist <file.v> [--sdc <file.sdc>]
//             [--mode wl|nw|dt] [--density 0.7] [--out <dir>]
//             [--report <file>] [--svg <file>] [--max-iters N] [--seed N]
//             [--legalize] [--detailed] [--verbose]
//             [--trace-out <file>] [--metrics-out <file>] [--log-level L]
//
//   dtp_place --demo <cells>   # self-generate a design instead of reading files
//
// Reads a Liberty-subset library, a structural-Verilog netlist and optional
// SDC constraints; floorplans (square core at the requested utilization, IO
// pads ringed); runs global placement in the chosen mode (wl = wirelength
// only, nw = momentum net weighting [24], dt = differentiable timing, the
// default); optionally legalizes and detail-places; writes Bookshelf
// placement, a timing report and a slack-colored SVG.
#include <cctype>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "robust/checkpoint.h"

#include "common/cli.h"
#include "common/logger.h"
#include "common/rng.h"
#include "obs/jsonl.h"
#include "obs/metrics.h"
#include "obs/prof/sampling_profiler.h"
#include "obs/trace.h"
#include "io/bookshelf.h"
#include "io/sdc.h"
#include "io/svg_plot.h"
#include "io/verilog.h"
#include "kernels/kernel_backend.h"
#include "liberty/liberty_io.h"
#include "liberty/synth_library.h"
#include "placer/global_placer.h"
#include "placer/legalizer.h"
#include "placer/run_report.h"
#include "robust/recovery.h"
#include "robust/validate.h"
#include "sta/report.h"
#include "workload/circuit_gen.h"

namespace {

using dtp::cli::arg_double;
using dtp::cli::arg_flag;
using dtp::cli::arg_int;
using dtp::cli::arg_opt_int;
using dtp::cli::arg_str;

// SIGINT/SIGTERM land here: request a cooperative cancel so the run loop
// stops between iterations, the requested artifacts (metrics/activity/trace
// JSONL, final checkpoint) are flushed through the normal exit paths, and the
// process still reports what happened.  atomic fetch_or is async-signal-safe.
dtp::placer::PlacerControl g_control;

void on_signal(int) { g_control.request_cancel(); }

void usage() {
  std::fprintf(stderr,
               "usage: dtp_place --lib F --netlist F [--sdc F] [--mode wl|nw|dt]\n"
               "                 [--density D] [--out DIR] [--report F] [--svg F]\n"
               "                 [--max-iters N] [--seed N] [--legalize]\n"
               "                 [--timing-dp [--tns-weight W]]\n"
               "                 [--detailed] [--verbose]\n"
               "                 [--trace-out F.trace.json]  # Chrome trace "
               "(chrome://tracing, Perfetto)\n"
               "                 [--metrics-out F.jsonl]     # per-iteration "
               "stream + F.summary.json\n"
               "                 [--profile-out F.folded]    # sampling "
               "profiler: collapsed stacks (flamegraph.pl/speedscope)\n"
               "                                             # + "
               "F.folded.summary.json (dtp.profile.v1)\n"
               "                 [--profile-hz HZ]      # sampling rate "
               "(default 997)\n"
               "                 [--paths-out F.jsonl]       # introspection "
               "stream: path / grad_attrib / kernel_profile records\n"
               "                 [--paths-topk K]       # paths per sample "
               "(default 10)\n"
               "                 [--introspect-every N] # sample period "
               "(default 25 iterations)\n"
               "                 [--attrib-top M]       # cells per "
               "attribution record (default 10)\n"
               "                 [--activity-out F.jsonl]  # timing-activity "
               "stream: activity / activity_summary records\n"
               "                 [--activity-every N]   # activity sample "
               "period (default 25; with --paths-out and no --activity-out,\n"
               "                                        # records share the "
               "introspection stream)\n"
               "                 [--progress [N]]       # stderr heartbeat "
               "every N iters (default 50), ignores --log-level\n"
               "                 [--log-level debug|info|warn|error|silent]\n"
               "                 [--kernel-backend scalar|simd]  # hot-loop "
               "kernel implementation (default scalar; or "
               "DTP_KERNEL_BACKEND)\n"
               "                 [--max-recoveries N]   # rollback budget "
               "(default 5)\n"
               "                 [--no-timing-fallback] # fail instead of "
               "degrading to wirelength forces\n"
               "                 [--no-guards]          # disable the "
               "fault-tolerance layer entirely\n"
               "                 [--fault SPEC] [--fault-seed N]  # inject "
               "faults, e.g. timing_grad@120+3\n"
               "                 [--ckpt-out F.ckpt]    # seal the final "
               "optimizer state to a resumable checkpoint\n"
               "                 [--resume F.ckpt]      # continue the "
               "descent from a checkpoint (same design + seed)\n"
               "                 [--time-budget SEC]    # wall-clock watchdog:"
               " degrade, then stop with a valid placement\n"
               "       dtp_place --demo CELLS [same output options]\n"
               "SIGINT/SIGTERM stop the run between iterations and still "
               "flush every requested artifact.\n"
               "exit codes: 0 ok, 1 usage/IO error, 2 invalid design, "
               "3 placement failed (recovery budget exhausted)\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dtp;
  if (argc < 2 || arg_flag(argc, argv, "--help")) {
    usage();
    return argc < 2 ? 1 : 0;
  }
  if (arg_flag(argc, argv, "--verbose"))
    Logger::instance().set_level(LogLevel::Debug);
  if (const char* level_name = arg_str(argc, argv, "--log-level", nullptr)) {
    const auto level = parse_log_level(level_name);
    if (!level) {
      std::fprintf(stderr, "unknown --log-level %s\n", level_name);
      return 1;
    }
    Logger::instance().set_level(*level);
    Logger::instance().set_timestamps(true);
  }
  if (const char* kb_name = arg_str(argc, argv, "--kernel-backend", nullptr)) {
    if (!kernels::set_backend(kb_name)) {
      std::fprintf(stderr, "unknown --kernel-backend %s (have:", kb_name);
      for (const std::string& n : kernels::backend_names())
        std::fprintf(stderr, " %s", n.c_str());
      std::fprintf(stderr, ")\n");
      return 1;
    }
  }
  const char* trace_path = arg_str(argc, argv, "--trace-out", nullptr);
  const char* metrics_path = arg_str(argc, argv, "--metrics-out", nullptr);
  const char* paths_path = arg_str(argc, argv, "--paths-out", nullptr);
  if (trace_path != nullptr) obs::Tracer::instance().enable();

  // Sampling profiler (DESIGN.md §14): attached for the whole run, stopped
  // and flushed on every exit path so a failed run still yields its profile.
  const char* profile_path = arg_str(argc, argv, "--profile-out", nullptr);
  obs::prof::SamplingProfiler::Options prof_opts;
  prof_opts.hz = arg_double(argc, argv, "--profile-hz", prof_opts.hz);
  obs::prof::SamplingProfiler profiler(prof_opts);
  if (profile_path != nullptr) profiler.start();

  // Abnormal-exit artifact flushing: whatever was requested with --trace-out /
  // --metrics-out / --paths-out must hold everything recorded up to the abort
  // — a failed run is exactly the one worth analyzing.  The introspection
  // stream is line-flushed and needs no action beyond closing.
  std::string run_design = "?";
  std::string run_mode = "?";
  obs::IntrospectionSink introspect_sink;
  obs::IntrospectionSink activity_sink;
  // Points at whichever sink carries activity records: the dedicated
  // --activity-out stream, or the shared --paths-out stream.
  obs::IntrospectionSink* act_sink = nullptr;
  auto flush_trace_quiet = [&] {
    if (trace_path == nullptr) return;
    obs::Tracer::instance().disable();
    obs::Tracer::instance().write_json(trace_path);
  };
  auto flush_profile_quiet = [&] {
    if (profile_path == nullptr) return;
    profiler.stop();
    profiler.write_collapsed(profile_path);
    profiler.write_summary(std::string(profile_path) + ".summary.json");
  };
  // Abort record only (no placement result exists yet).
  auto flush_abort = [&](const std::string& stage, const std::string& error,
                         int code) {
    if (metrics_path != nullptr) {
      obs::JsonlWriter jsonl;
      if (jsonl.open(metrics_path)) {
        placer::append_abort_record(jsonl, {run_design, run_mode}, stage, error,
                                    code);
        placer::write_summary_json(placer::summary_path_for(metrics_path), {},
                                   {});
      }
    }
    // The activity stream ends with an explicit abort marker (PR 3 contract):
    // a crashed run's trajectory stays parseable and self-describing.
    if (act_sink != nullptr && act_sink->is_open())
      act_sink->write_abort(stage, error, code);
    flush_trace_quiet();
    flush_profile_quiet();
    introspect_sink.close();
    activity_sink.close();
  };

  try {
    // ---- inputs ----
    liberty::CellLibrary lib;
    std::unique_ptr<netlist::Design> design;
    const int demo_cells = arg_int(argc, argv, "--demo", 0);
    if (demo_cells > 0) {
      lib = liberty::make_synthetic_library();
      workload::WorkloadOptions wopts;
      wopts.num_cells = demo_cells;
      wopts.seed = static_cast<uint64_t>(arg_int(argc, argv, "--seed", 1));
      design = std::make_unique<netlist::Design>(
          workload::generate_design(lib, wopts, "demo"));
    } else {
      const char* lib_path = arg_str(argc, argv, "--lib", nullptr);
      const char* v_path = arg_str(argc, argv, "--netlist", nullptr);
      if (!lib_path || !v_path) {
        usage();
        return 1;
      }
      // Input parsing gets its own containment: malformed files are invalid
      // input (exit 2, with an abort record in the artifacts), never a crash
      // and never conflated with internal errors (exit 1).
      try {
        lib = liberty::parse_liberty_file(lib_path);
        design = std::make_unique<netlist::Design>(
            io::read_verilog_file(lib, v_path));
        if (const char* sdc = arg_str(argc, argv, "--sdc", nullptr))
          io::read_sdc_file(sdc, design->constraints);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "dtp_place: invalid input: %s\n", e.what());
        flush_abort("input", e.what(), 2);
        return 2;
      }

      // Floorplan: square core at the requested utilization, pads ringed.
      const double density = arg_double(argc, argv, "--density", 0.7);
      double area = 0.0;
      double row_h = 2.0;
      for (size_t c = 0; c < design->netlist.num_cells(); ++c) {
        const auto& m = design->netlist.lib_cell_of(static_cast<int>(c));
        area += m.width * m.height;
        if (!m.is_port()) row_h = m.height;
      }
      const double side = std::ceil(std::sqrt(area / density) / row_h) * row_h;
      design->floorplan.core = Rect(0, 0, side, side);
      design->floorplan.row_height = row_h;
      design->floorplan.site_width = 0.5;
      Rng rng(static_cast<uint64_t>(arg_int(argc, argv, "--seed", 1)));
      size_t pad_i = 0, pad_n = 0;
      for (size_t c = 0; c < design->netlist.num_cells(); ++c)
        if (design->netlist.cell(static_cast<int>(c)).fixed) ++pad_n;
      for (size_t c = 0; c < design->netlist.num_cells(); ++c) {
        if (design->netlist.cell(static_cast<int>(c)).fixed) {
          const double t = 4.0 * static_cast<double>(pad_i++) /
                           static_cast<double>(std::max<size_t>(1, pad_n));
          design->cell_x[c] =
              t < 1 ? t * side : (t < 2 ? side : (t < 3 ? (3 - t) * side : 0.0));
          design->cell_y[c] =
              t < 1 ? 0.0 : (t < 2 ? (t - 1) * side : (t < 3 ? side : (4 - t) * side));
        } else {
          design->cell_x[c] =
              std::clamp(side * 0.5 + rng.normal(0, side * 0.06), 0.0, side - 2);
          design->cell_y[c] =
              std::clamp(side * 0.5 + rng.normal(0, side * 0.06), 0.0, side - 2);
        }
      }
    }

    const auto stats = design->netlist.stats();
    run_design = design->name;
    std::printf("design %s: %zu std cells, %zu nets, %zu pins, clock %.4f ns\n",
                design->name.c_str(), stats.num_std_cells, stats.num_nets,
                stats.num_pins, design->constraints.clock_period);

    // Pre-flight validation (DESIGN.md §7): refuse broken input with a clean
    // diagnostic instead of asserting deep inside a placement kernel.
    const bool guards = !arg_flag(argc, argv, "--no-guards");
    if (guards) {
      const robust::ValidationReport report = robust::validate(*design);
      if (!report.ok()) {
        std::fprintf(stderr, "dtp_place: invalid design (%zu fatal):\n%s",
                     report.num_fatal, report.to_string().c_str());
        flush_abort("validate", "invalid design: " + report.to_string(), 2);
        return 2;
      }
      if (report.num_warnings() > 0)
        DTP_LOG_WARN("design validation: %zu warning(s)\n%s",
                     report.num_warnings(), report.to_string().c_str());
    }

    // ---- placement ----
    sta::TimingGraph graph(design->netlist);
    placer::GlobalPlacerOptions popts;
    const std::string mode = arg_str(argc, argv, "--mode", "dt");
    if (mode == "wl")
      popts.mode = placer::PlacerMode::WirelengthOnly;
    else if (mode == "nw")
      popts.mode = placer::PlacerMode::NetWeighting;
    else if (mode == "dt")
      popts.mode = placer::PlacerMode::DiffTiming;
    else {
      std::fprintf(stderr, "unknown --mode %s\n", mode.c_str());
      return 1;
    }
    run_mode = mode;
    popts.max_iters = arg_int(argc, argv, "--max-iters", popts.max_iters);
    popts.progress_every = arg_opt_int(argc, argv, "--progress", 50);
    if (paths_path != nullptr) {
      if (!introspect_sink.open(paths_path)) {
        std::fprintf(stderr, "dtp_place: cannot write %s\n", paths_path);
        return 1;
      }
      popts.introspect_sink = &introspect_sink;
      popts.introspect.paths_topk = arg_int(argc, argv, "--paths-topk", 10);
      popts.introspect.sample_period =
          arg_int(argc, argv, "--introspect-every", 25);
      popts.introspect.top_m_cells = arg_int(argc, argv, "--attrib-top", 10);
    }
    // Timing-activity telemetry (DESIGN.md §11): its own stream, or piggyback
    // on the introspection stream when only a cadence was requested.
    const char* activity_path = arg_str(argc, argv, "--activity-out", nullptr);
    const int activity_every = arg_int(argc, argv, "--activity-every", 25);
    if (activity_path != nullptr) {
      if (!activity_sink.open(activity_path)) {
        std::fprintf(stderr, "dtp_place: cannot write %s\n", activity_path);
        return 1;
      }
      activity_sink.set_meta(design->name, mode);
      act_sink = &activity_sink;
    } else if (cli::arg_str(argc, argv, "--activity-every", nullptr) != nullptr) {
      if (paths_path == nullptr) {
        std::fprintf(stderr,
                     "dtp_place: --activity-every needs --activity-out or "
                     "--paths-out for a stream\n");
        return 1;
      }
      act_sink = &introspect_sink;
    }
    if (act_sink != nullptr) {
      popts.activity_sink = act_sink;
      popts.activity.sample_period = activity_every;
    }
    popts.verbose = arg_flag(argc, argv, "--verbose");
    popts.robust.enabled = guards;
    popts.robust.max_recoveries =
        arg_int(argc, argv, "--max-recoveries", popts.robust.max_recoveries);
    popts.robust.timing_fallback = !arg_flag(argc, argv, "--no-timing-fallback");
    popts.robust.fault_spec = arg_str(argc, argv, "--fault", "");
    popts.robust.fault_seed = static_cast<uint64_t>(
        arg_int(argc, argv, "--fault-seed",
                static_cast<int>(popts.robust.fault_seed)));

    // Control plane (DESIGN.md §12): wall-clock budget, resume, checkpoint
    // out, and a cooperative SIGINT/SIGTERM cancel.
    popts.time_budget_sec = arg_double(argc, argv, "--time-budget", 0.0);
    popts.control = &g_control;
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    robust::Checkpoint resume_ckpt;
    if (const char* resume_path = arg_str(argc, argv, "--resume", nullptr)) {
      std::string err;
      if (!resume_ckpt.load_file(resume_path, &err)) {
        std::fprintf(stderr, "dtp_place: cannot resume: %s\n", err.c_str());
        flush_abort("resume", err, 2);
        return 2;
      }
      if (!resume_ckpt.verify()) {
        std::fprintf(stderr,
                     "dtp_place: cannot resume: %s failed checksum "
                     "verification (corrupt or tampered checkpoint)\n",
                     resume_path);
        flush_abort("resume", "checkpoint checksum mismatch", 2);
        return 2;
      }
      if (resume_ckpt.num_cells() != design->netlist.num_cells()) {
        std::fprintf(stderr,
                     "dtp_place: cannot resume: checkpoint holds %zu cells, "
                     "design has %zu (wrong design or seed)\n",
                     resume_ckpt.num_cells(), design->netlist.num_cells());
        flush_abort("resume", "checkpoint/design size mismatch", 2);
        return 2;
      }
      popts.resume_from = &resume_ckpt;
      std::printf("resuming from %s (iteration %d)\n", resume_path,
                  resume_ckpt.iter());
    }
    robust::Checkpoint final_ckpt;
    const char* ckpt_out_path = arg_str(argc, argv, "--ckpt-out", nullptr);
    if (ckpt_out_path != nullptr) popts.checkpoint_out = &final_ckpt;

    placer::GlobalPlacer gp(*design, graph, popts);
    const auto res = gp.run();
    if (res.stop_reason == placer::StopReason::Cancelled)
      std::fprintf(stderr,
                   "dtp_place: interrupted at iteration %d; flushing "
                   "artifacts\n",
                   res.iterations);
    if (res.stop_reason == placer::StopReason::TimeBudget)
      std::fprintf(stderr,
                   "dtp_place: wall-clock budget exhausted at iteration %d; "
                   "placement is valid\n",
                   res.iterations);
    if (ckpt_out_path != nullptr) {
      if (final_ckpt.valid() && final_ckpt.save_file(ckpt_out_path))
        std::printf("wrote %s (checkpoint at iteration %d)\n", ckpt_out_path,
                    final_ckpt.iter());
      else
        std::fprintf(stderr, "dtp_place: cannot write %s\n", ckpt_out_path);
    }
    std::printf("global placement: %d iterations, HPWL %.6g um, overflow %.3f, "
                "%.1f s (timing engine %.1f s)\n",
                res.iterations, res.hpwl, res.overflow, res.runtime_sec,
                res.sta_runtime_sec);
    if (res.health != robust::RunHealth::Ok)
      std::printf("run health: %s (%d rollback(s), %d timing fallback(s))\n",
                  robust::run_health_name(res.health), res.rollbacks,
                  res.timing_fallbacks);
    // Run artifacts are written before the failure exit below: a run that
    // exhausted its recovery budget is exactly the one worth analyzing.
    const bool run_failed = res.health == robust::RunHealth::Failed;
    if (act_sink != nullptr && run_failed)
      act_sink->write_abort("placement", "recovery budget exhausted", 3);
    if (paths_path != nullptr) {
      std::printf("wrote %s (%zu introspection records)\n", paths_path,
                  introspect_sink.records_written());
      introspect_sink.close();
    }
    if (activity_sink.is_open()) {
      std::printf("wrote %s (%zu activity-stream records)\n",
                  arg_str(argc, argv, "--activity-out", "?"),
                  activity_sink.records_written());
      activity_sink.close();
    }
    if (metrics_path != nullptr) {
      const placer::RunMeta meta{design->name, mode};
      obs::JsonlWriter jsonl;
      if (!jsonl.open(metrics_path)) {
        std::fprintf(stderr, "dtp_place: cannot write %s\n", metrics_path);
        return 1;
      }
      placer::append_run_jsonl(jsonl, res, meta);
      if (run_failed)
        placer::append_abort_record(jsonl, meta, "placement",
                                    "recovery budget exhausted", 3);
      const std::string summary = placer::summary_path_for(metrics_path);
      placer::write_summary_json(summary, {res}, {meta});
      std::printf("wrote %s and %s\n", metrics_path, summary.c_str());
    }
    if (run_failed) {
      std::fprintf(stderr,
                   "dtp_place: placement failed: recovery budget exhausted "
                   "after %d rollback(s); positions hold the best-known "
                   "checkpoint\n",
                   res.rollbacks);
      flush_trace_quiet();
      flush_profile_quiet();
      return 3;
    }

    if (arg_flag(argc, argv, "--legalize") || arg_flag(argc, argv, "--detailed")) {
      const auto lg = placer::legalize(*design, design->cell_x, design->cell_y);
      std::printf("legalization: %zu unplaced, avg displacement %.3f um\n",
                  lg.failed_cells,
                  lg.total_displacement / std::max<size_t>(1, stats.num_std_cells));
      if (arg_flag(argc, argv, "--detailed")) {
        placer::WirelengthModel wl(*design);
        const double gain = placer::detailed_place_swaps(*design, wl,
                                                         design->cell_x,
                                                         design->cell_y);
        std::printf("detailed placement: HPWL gain %.1f um\n", gain);
      }
      if (arg_flag(argc, argv, "--timing-dp")) {
        placer::WirelengthModel wl(*design);
        sta::Timer dp_timer(*design, graph);
        dp_timer.evaluate(design->cell_x, design->cell_y);
        const auto dp = placer::timing_driven_swaps(
            *design, wl, dp_timer, design->cell_x, design->cell_y,
            arg_double(argc, argv, "--tns-weight", 50.0));
        std::printf("timing-driven DP: TNS gain %.3f ns, HPWL delta %+.1f um, "
                    "%zu/%zu swaps\n",
                    dp.tns_gain, dp.hpwl_delta, dp.swaps_accepted,
                    dp.swaps_tried);
      }
    }

    // ---- reporting ----
    sta::TimerOptions topts;
    topts.enable_early = true;
    sta::Timer timer(*design, graph, topts);
    const auto m = timer.evaluate(design->cell_x, design->cell_y);
    std::printf("signoff: setup WNS %.4f ns  TNS %.3f ns  |  hold WNS %.4f ns\n",
                m.wns, m.tns, m.hold_wns);

    if (const char* report_path = arg_str(argc, argv, "--report", nullptr)) {
      std::ofstream rf(report_path);
      sta::ReportOptions ropts;
      ropts.max_paths = 5;
      sta::write_timing_report(timer, ropts, rf);
      std::printf("wrote %s\n", report_path);
    }
    if (const char* svg_path = arg_str(argc, argv, "--svg", nullptr)) {
      io::write_slack_svg(*design, timer, svg_path);
      std::printf("wrote %s\n", svg_path);
    }
    if (const char* out_dir = arg_str(argc, argv, "--out", nullptr)) {
      std::filesystem::create_directories(out_dir);
      io::write_bookshelf(*design, out_dir);
      std::printf("wrote %s/%s.{aux,nodes,nets,pl,scl}\n", out_dir,
                  design->name.c_str());
    }
    if (trace_path != nullptr) {
      obs::Tracer::instance().disable();
      if (!obs::Tracer::instance().write_json(trace_path)) {
        std::fprintf(stderr, "dtp_place: cannot write %s\n", trace_path);
        return 1;
      }
      std::printf("wrote %s (%zu spans; open in chrome://tracing or "
                  "ui.perfetto.dev)\n",
                  trace_path, obs::Tracer::instance().num_events());
    }
    if (profile_path != nullptr) {
      profiler.stop();
      if (!profiler.write_collapsed(profile_path)) {
        std::fprintf(stderr, "dtp_place: cannot write %s\n", profile_path);
        return 1;
      }
      const std::string summary_path =
          std::string(profile_path) + ".summary.json";
      profiler.write_summary(summary_path);
      std::printf("wrote %s and %s (%llu samples at %.0f Hz; feed the "
                  "collapsed stacks to flamegraph.pl or speedscope)\n",
                  profile_path, summary_path.c_str(),
                  static_cast<unsigned long long>(profiler.samples()),
                  prof_opts.hz);
    }
    return 0;
  } catch (const robust::ValidationError& e) {
    std::fprintf(stderr, "dtp_place: invalid design: %s\n", e.what());
    flush_abort("validate", e.what(), 2);
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dtp_place: error: %s\n", e.what());
    flush_abort("run", e.what(), 1);
    return 1;
  } catch (...) {
    std::fprintf(stderr, "dtp_place: error: unknown exception\n");
    flush_abort("run", "unknown exception", 1);
    return 1;
  }
}
