// dtp_report: offline analysis of dtp_place run artifacts (DESIGN.md §8).
//
// Report mode — parse one run's JSONL streams (--metrics-out and/or
// --paths-out files, in any combination) into a human-readable summary:
//
//   dtp_report [--require iter,run_end,path,...] run.jsonl run.paths.jsonl
//
// Diff mode — compare two runs as a bench regression gate:
//
//   dtp_report --diff a.jsonl[,a.paths.jsonl] b.jsonl[,b.paths.jsonl]
//              [--threshold 0.05]
//
// Bench-diff mode — compare two dtp_bench BENCH_*.json artifacts as a
// noise-thresholded performance gate (see obs/prof/bench_json.h):
//
//   dtp_report --bench-diff OLD.json NEW.json [--threshold 0.15]
//
// Serve mode — post-hoc report over a dtp_serve session journal:
//
//   dtp_report --serve artifacts/journal.jsonl
//
// History mode — append dtp_bench artifacts to a running BENCH_history.jsonl
// trajectory and print it, one summary line per recorded run:
//
//   dtp_report --history BENCH_history.jsonl [BENCH_*.json...]
//
// Profile sections — dtp.profile.v1 documents (dtp_place --profile-out's
// .summary.json sidecar) passed as inputs are summarized as a top-N self-time
// table; --profile additionally expands the per-cell profiles embedded in
// dtp_bench artifacts.
//
//   Replays the journal's accept/reject/ckpt/terminal records through the
//   same SessionAccum the live daemon feeds (serve/session_stats.h), so the
//   printed percentiles agree with what {"cmd":"stats"} reported while the
//   session ran, and lists any job accepted but never finished (parked by a
//   drain, or lost to a crash).
//
// Exit codes: 0 ok, 1 usage / IO / JSON parse error, 2 policy failure — a
// --require record type is missing, or the diff found a regression beyond the
// threshold (HPWL/overflow/WNS/TNS worse, or run health rank degraded; for
// --bench-diff, median wall/CPU time beyond the threshold).
// Path churn and per-level kernel-runtime deltas are reported informationally.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/json_parse.h"
#include "common/json_writer.h"
#include "obs/prof/bench_json.h"
#include "serve/session_stats.h"

namespace {

using dtp::JsonParser;
using dtp::JsonValue;

struct RunData {
  std::vector<JsonValue> iters, recoveries, paths, attribs, kernels, aborts;
  std::vector<JsonValue> activities, activity_summaries;
  std::vector<JsonValue> benches;   // whole BENCH_*.json documents
  std::vector<JsonValue> profiles;  // whole dtp.profile.v1 documents
  JsonValue run_end;
  bool has_run_end = false;
  std::map<std::string, size_t> type_counts;
  std::vector<std::string> files;
};

// A dtp_bench artifact is a single JSON document (not JSONL) carrying a
// "schema":"dtp.bench.*" marker.
bool is_bench_document(const JsonValue& v) {
  return v.is_object() && v.str_or("schema", "").rfind("dtp.bench", 0) == 0;
}

// A sampling-profiler summary (dtp_place --profile-out's .summary.json
// sidecar, or a daemon {"cmd":"profile"} response body saved to disk).
bool is_profile_document(const JsonValue& v) {
  return v.is_object() && v.str_or("schema", "").rfind("dtp.profile", 0) == 0;
}

// Loads an entire BENCH_*.json document.  Returns false on IO/parse errors.
bool load_bench_file(const std::string& path, JsonValue& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "dtp_report: cannot read %s\n", path.c_str());
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  try {
    out = JsonParser::parse(ss.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dtp_report: %s: %s\n", path.c_str(), e.what());
    return false;
  }
  if (!is_bench_document(out)) {
    std::fprintf(stderr, "dtp_report: %s is not a dtp.bench document\n",
                 path.c_str());
    return false;
  }
  return true;
}

// Loads one JSONL file into `run`, classifying records by their "type" field.
// A whole-file dtp.bench document is recognized first and classified as one
// "bench" record.  Returns false (with a diagnostic on stderr) on IO or parse
// errors.
bool load_file(const std::string& path, RunData& run) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "dtp_report: cannot read %s\n", path.c_str());
    return false;
  }
  run.files.push_back(path);
  {
    std::ostringstream ss;
    ss << in.rdbuf();
    try {
      JsonValue whole = JsonParser::parse(ss.str());
      if (is_bench_document(whole)) {
        ++run.type_counts["bench"];
        run.benches.push_back(std::move(whole));
        return true;
      }
      if (is_profile_document(whole)) {
        ++run.type_counts["profile"];
        run.profiles.push_back(std::move(whole));
        return true;
      }
    } catch (const std::exception&) {
      // Not a single JSON document — parse as JSONL below.
    }
    in.clear();
    in.seekg(0);
  }
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    JsonValue v;
    try {
      v = JsonParser::parse(line);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "dtp_report: %s:%zu: %s\n", path.c_str(), lineno,
                   e.what());
      return false;
    }
    if (!v.is_object()) {
      std::fprintf(stderr, "dtp_report: %s:%zu: record is not an object\n",
                   path.c_str(), lineno);
      return false;
    }
    const std::string type = v.str_or("type", "?");
    ++run.type_counts[type];
    if (type == "iter") run.iters.push_back(std::move(v));
    else if (type == "recovery") run.recoveries.push_back(std::move(v));
    else if (type == "path") run.paths.push_back(std::move(v));
    else if (type == "grad_attrib") run.attribs.push_back(std::move(v));
    else if (type == "kernel_profile") run.kernels.push_back(std::move(v));
    else if (type == "activity") run.activities.push_back(std::move(v));
    else if (type == "activity_summary")
      run.activity_summaries.push_back(std::move(v));
    else if (type == "abort") run.aborts.push_back(std::move(v));
    else if (type == "run_end") {
      run.run_end = std::move(v);
      run.has_run_end = true;
    }
  }
  return true;
}

bool load_files(const std::vector<std::string>& paths, RunData& run) {
  for (const std::string& p : paths)
    if (!load_file(p, run)) return false;
  return true;
}

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  size_t start = 0;
  for (;;) {
    const size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      if (start < s.size()) out.push_back(s.substr(start));
      break;
    }
    if (comma > start) out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

// Last WNS/TNS seen in the iter stream (run_end does not carry them).
bool final_timing(const RunData& run, double& wns, double& tns) {
  for (auto it = run.iters.rbegin(); it != run.iters.rend(); ++it) {
    if (it->has("wns")) {
      wns = it->num_or("wns", 0.0);
      tns = it->num_or("tns", 0.0);
      return true;
    }
  }
  return false;
}

int health_rank(const std::string& h) {
  if (h == "ok") return 0;
  if (h == "recovered") return 1;
  if (h == "degraded") return 2;
  return 3;  // failed / unknown
}

// Paths of the last sampled iteration (the converged state).
std::vector<const JsonValue*> final_paths(const RunData& run) {
  double last_iter = -1.0;
  for (const JsonValue& p : run.paths)
    last_iter = std::max(last_iter, p.num_or("iter", 0.0));
  std::vector<const JsonValue*> out;
  for (const JsonValue& p : run.paths)
    if (p.num_or("iter", 0.0) == last_iter) out.push_back(&p);
  return out;
}

const JsonValue* last_of(const std::vector<JsonValue>& v) {
  return v.empty() ? nullptr : &v.back();
}

// ---------------------------------------------------------------- report ----

void print_report(const RunData& run) {
  std::printf("==== dtp_report ====\n");
  for (const std::string& f : run.files)
    std::printf("artifact: %s\n", f.c_str());
  std::printf("records:");
  for (const auto& [type, count] : run.type_counts)
    std::printf("  %s=%zu", type.c_str(), count);
  std::printf("\n");

  for (const JsonValue& bench : run.benches) {
    // Counter availability with the recorded reason, so a CI log reads
    // "counters: unavailable (perf_event_open ... EACCES)" instead of leaving
    // the reader to guess at sandbox policy.
    std::string counters = "unavailable";
    if (bench.has("counters") && bench.at("counters").is_object()) {
      const JsonValue& c = bench.at("counters");
      if (c.has("available") && c.at("available").boolean) {
        counters = "available";
      } else {
        const std::string reason = c.str_or("reason", "");
        if (!reason.empty()) counters += " (" + reason + ")";
      }
    }
    std::printf("\n-- bench suite '%s' (%d repeats, %d threads, counters: %s) "
                "--\n",
                bench.str_or("suite", "?").c_str(),
                static_cast<int>(bench.num_or("repeats", 0.0)),
                static_cast<int>(bench.num_or("threads", 0.0)),
                counters.c_str());
    if (!bench.has("cells") || !bench.at("cells").is_array()) continue;
    std::printf("%-16s %10s %10s %10s %10s %8s\n", "cell", "wall med",
                "wall p95", "cpu med", "stddev", "ipc");
    for (const JsonValue& cell : bench.at("cells").array) {
      if (!cell.has("stats") || !cell.at("stats").is_object()) continue;
      const JsonValue& st = cell.at("stats");
      const double wall_med =
          st.has("wall_sec") ? st.at("wall_sec").num_or("median", 0.0) : 0.0;
      const double wall_p95 =
          st.has("wall_sec") ? st.at("wall_sec").num_or("p95", 0.0) : 0.0;
      const double wall_sd =
          st.has("wall_sec") ? st.at("wall_sec").num_or("stddev", 0.0) : 0.0;
      const double cpu_med =
          st.has("cpu_sec") ? st.at("cpu_sec").num_or("median", 0.0) : 0.0;
      std::printf("%-16s %9.3fs %9.3fs %9.3fs %9.4fs",
                  cell.str_or("name", "?").c_str(), wall_med, wall_p95, cpu_med,
                  wall_sd);
      if (st.has("ipc"))
        std::printf(" %8.2f", st.at("ipc").num_or("median", 0.0));
      else
        std::printf(" %8s", "n/a");
      std::printf("\n");
    }
  }

  for (const JsonValue& a : run.aborts)
    std::printf("\n*** ABORTED at stage '%s' (exit %d): %s\n",
                a.str_or("stage", "?").c_str(),
                static_cast<int>(a.num_or("exit_code", 0.0)),
                a.str_or("error", "?").c_str());

  if (run.has_run_end) {
    const JsonValue& e = run.run_end;
    std::printf("\n-- overview --\n");
    std::printf("design %s  mode %s  health %s\n",
                e.str_or("design", "?").c_str(), e.str_or("mode", "?").c_str(),
                e.str_or("health", "?").c_str());
    std::printf("iterations %d  hpwl %.6g  overflow %.3f  runtime %.2fs "
                "(timing engine %.2fs)\n",
                static_cast<int>(e.num_or("iterations", 0.0)),
                e.num_or("hpwl", 0.0), e.num_or("overflow", 0.0),
                e.num_or("runtime_sec", 0.0), e.num_or("sta_runtime_sec", 0.0));
    double wns = 0.0, tns = 0.0;
    if (final_timing(run, wns, tns))
      std::printf("final timing: WNS %.4f ns  TNS %.3f ns\n", wns, tns);
    if (e.has("phases") && e.at("phases").is_object()) {
      std::printf("phases:");
      for (const auto& [name, sec] : e.at("phases").object)
        if (sec.is_number() && sec.number > 0.0)
          std::printf("  %s=%.3fs", name.c_str(), sec.number);
      std::printf("\n");
    }
  }

  if (!run.iters.empty()) {
    std::printf("\n-- convergence (%zu iterations) --\n", run.iters.size());
    const size_t n = run.iters.size();
    const size_t step = std::max<size_t>(1, n / 8);
    for (size_t i = 0; i < n; i += (i + step < n ? step : n - i ? n - 1 - i : 1)) {
      const JsonValue& it = run.iters[i];
      std::printf("iter %5d  hpwl %10.6g  overflow %.3f",
                  static_cast<int>(it.num_or("iter", 0.0)),
                  it.num_or("hpwl", 0.0), it.num_or("overflow", 0.0));
      if (it.has("wns"))
        std::printf("  wns %8.4f  tns %9.3f", it.num_or("wns", 0.0),
                    it.num_or("tns", 0.0));
      std::printf("\n");
      if (i == n - 1) break;
    }
  }

  if (!run.recoveries.empty()) {
    std::printf("\n-- recoveries (%zu) --\n", run.recoveries.size());
    for (const JsonValue& r : run.recoveries)
      std::printf("iter %5d  %-14s action %-10s step_scale %.3f  %s\n",
                  static_cast<int>(r.num_or("iter", 0.0)),
                  r.str_or("kind", "?").c_str(),
                  r.str_or("action", "?").c_str(), r.num_or("step_scale", 1.0),
                  r.str_or("detail", "").c_str());
  }

  if (const JsonValue* a = last_of(run.attribs)) {
    std::printf("\n-- gradient attribution (iter %d) --\n",
                static_cast<int>(a->num_or("iter", 0.0)));
    for (const char* comp : {"wirelength", "density", "timing", "total"})
      if (a->has(comp) && a->at(comp).is_object())
        std::printf("%-11s l2 %12.6g  max %12.6g\n", comp,
                    a->at(comp).num_or("l2", 0.0),
                    a->at(comp).num_or("max_abs", 0.0));
    std::printf("accounted_fraction %.6f", a->num_or("accounted_fraction", 0.0));
    if (a->has("clip_fraction"))
      std::printf("  clip_fraction %.3f", a->num_or("clip_fraction", 0.0));
    std::printf("\n");
    if (a->has("top_timing_cells") && !a->at("top_timing_cells").array.empty()) {
      std::printf("top timing cells:");
      for (const JsonValue& c : a->at("top_timing_cells").array)
        std::printf("  %s(%.3g)", c.str_or("cell", "?").c_str(),
                    c.num_or("mag", 0.0));
      std::printf("\n");
    }
    size_t triggered = 0;
    for (const JsonValue& t : run.attribs)
      if (t.has("trigger")) ++triggered;
    if (triggered > 0) {
      std::printf("robust-layer triggers (%zu):\n", triggered);
      for (const JsonValue& t : run.attribs)
        if (t.has("trigger"))
          std::printf("  iter %5d  %s\n",
                      static_cast<int>(t.num_or("iter", 0.0)),
                      t.str_or("trigger", "?").c_str());
    }
  }

  if (const JsonValue* k = last_of(run.kernels)) {
    std::printf("\n-- kernel profile (iter %d) --\n",
                static_cast<int>(k->num_or("iter", 0.0)));
    for (const char* dir : {"forward", "backward"}) {
      if (!k->has(dir) || k->at(dir).array.empty()) continue;
      // Top levels by accumulated wall clock.
      std::vector<const JsonValue*> lv;
      double total = 0.0;
      for (const JsonValue& l : k->at(dir).array) {
        lv.push_back(&l);
        total += l.num_or("ms", 0.0);
      }
      std::sort(lv.begin(), lv.end(), [](const JsonValue* a, const JsonValue* b) {
        return a->num_or("ms", 0.0) > b->num_or("ms", 0.0);
      });
      std::printf("%s: %zu levels, %.3f ms total; hottest:", dir, lv.size(),
                  total);
      for (size_t i = 0; i < lv.size() && i < 5; ++i)
        std::printf("  L%d %.3fms/%llu calls",
                    static_cast<int>(lv[i]->num_or("level", 0.0)),
                    lv[i]->num_or("ms", 0.0),
                    static_cast<unsigned long long>(lv[i]->num_or("calls", 0.0)));
      std::printf("\n");
    }
  }

  const std::vector<const JsonValue*> paths = final_paths(run);
  if (!paths.empty()) {
    std::printf("\n-- critical paths (iter %d, %zu paths) --\n",
                static_cast<int>(paths[0]->num_or("iter", 0.0)), paths.size());
    for (const JsonValue* p : paths)
      std::printf("slack %9.4f  arrival %8.4f  %2zu stages  %s (%s)\n",
                  p->num_or("slack", 0.0), p->num_or("arrival", 0.0),
                  p->has("stages") ? p->at("stages").array.size() : 0,
                  p->str_or("endpoint", "?").c_str(),
                  p->str_or("dir", "?").c_str());
    // Stage-by-stage detail of the worst path.
    const JsonValue* worst = paths[0];
    for (const JsonValue* p : paths)
      if (p->num_or("slack", 0.0) < worst->num_or("slack", 0.0)) worst = p;
    if (worst->has("stages")) {
      std::printf("worst path (%s):\n", worst->str_or("endpoint", "?").c_str());
      for (const JsonValue& s : worst->at("stages").array)
        std::printf("  %-28s %-4s via %-6s delay %8.4f  at %8.4f  slew %.4f\n",
                    s.str_or("pin", "?").c_str(), s.str_or("dir", "?").c_str(),
                    s.str_or("via", "?").c_str(), s.num_or("delay", 0.0),
                    s.num_or("at", 0.0), s.num_or("slew", 0.0));
    }
  }
  std::printf("\n");
}

// --------------------------------------------------------------- profile ----

// Top-N self-time table of one dtp.profile.v1 document.  The labels array
// arrives sorted by self-time descending, so this is a straight prefix.
void print_profile_table(const JsonValue& p, const std::string& title) {
  std::printf("\n-- profile %s --\n", title.c_str());
  std::printf("%.0f Hz for %.2fs: %.0f samples over %.0f ticks",
              p.num_or("hz", 0.0), p.num_or("duration_sec", 0.0),
              p.num_or("samples", 0.0), p.num_or("ticks", 0.0));
  const double torn = p.num_or("torn", 0.0);
  if (torn > 0.0) std::printf("  (%.0f torn reads)", torn);
  std::printf("\n");
  if (p.has("counters") && p.at("counters").is_object()) {
    const JsonValue& c = p.at("counters");
    if (!(c.has("available") && c.at("available").boolean))
      std::printf("counters: unavailable (%s)\n",
                  c.str_or("reason", "unknown").c_str());
  }
  if (!p.has("labels") || !p.at("labels").is_array() ||
      p.at("labels").array.empty()) {
    std::printf("no samples attributed (run too short, or spans disabled)\n");
    return;
  }
  std::printf("%-24s %9s %7s %9s %7s\n", "label", "self", "self%", "total",
              "total%");
  size_t shown = 0;
  for (const JsonValue& l : p.at("labels").array) {
    if (shown++ == 12) {
      std::printf("(%zu more labels)\n", p.at("labels").array.size() - 12);
      break;
    }
    std::printf("%-24s %9.0f %6.1f%% %9.0f %6.1f%%\n",
                l.str_or("label", "?").c_str(), l.num_or("self", 0.0),
                l.num_or("self_pct", 0.0), l.num_or("total", 0.0),
                l.num_or("total_pct", 0.0));
  }
}

// Standalone dtp.profile.v1 inputs always print; --profile additionally
// expands the per-cell profiles embedded in dtp_bench artifacts.
void print_profiles(const RunData& run, bool expand_bench) {
  for (const JsonValue& p : run.profiles) print_profile_table(p, "");
  if (!expand_bench) return;
  for (const JsonValue& bench : run.benches) {
    if (!bench.has("cells") || !bench.at("cells").is_array()) continue;
    for (const JsonValue& cell : bench.at("cells").array)
      if (cell.has("profile") && is_profile_document(cell.at("profile")))
        print_profile_table(cell.at("profile"),
                            "cell " + cell.str_or("name", "?"));
  }
}

// -------------------------------------------------------------- activity ----

double median_of(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const size_t n = xs.size();
  return n % 2 == 1 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

// The --activity section: convergence-activity trajectory from the "activity"
// record stream plus the incremental-headroom estimate.  The headroom comes
// from the run-end "activity_summary" when present; otherwise it is
// reconstructed as the median forward-active fraction over the second half of
// the trajectory (the settled regime).
void print_activity(const RunData& run) {
  if (run.activities.empty() && run.activity_summaries.empty()) {
    std::printf("\n-- activity --\n");
    std::printf("no activity records (run dtp_place with --activity-every N "
                "[--activity-out FILE])\n");
    return;
  }

  if (!run.activities.empty()) {
    std::printf("\n-- activity trajectory (%zu samples) --\n",
                run.activities.size());
    std::printf("%6s %9s %9s %8s %6s %6s %10s %10s\n", "iter", "fwd act",
                "bwd live", "churn", "in", "out", "wns", "slack p50");
    for (const JsonValue& a : run.activities) {
      const double fwd =
          a.has("forward") ? a.at("forward").num_or("frac", 0.0) : 0.0;
      const double bwd =
          a.has("backward") ? a.at("backward").num_or("frac", 0.0) : 0.0;
      double churn = 1.0, entered = 0.0, left = 0.0;
      if (a.has("churn")) {
        churn = a.at("churn").num_or("jaccard", 1.0);
        entered = a.at("churn").num_or("entered", 0.0);
        left = a.at("churn").num_or("left", 0.0);
      }
      double wns = 0.0, p50 = 0.0;
      if (a.has("slack")) {
        wns = a.at("slack").num_or("wns", 0.0);
        p50 = a.at("slack").num_or("p50", 0.0);
      }
      std::printf("%6d %8.1f%% %8.1f%% %8.3f %6d %6d %10.4f %10.4f",
                  static_cast<int>(a.num_or("iter", 0.0)), 100.0 * fwd,
                  100.0 * bwd, churn, static_cast<int>(entered),
                  static_cast<int>(left), wns, p50);
      if (a.has("incremental") && a.at("incremental").is_object())
        std::printf("  inc %d/%d",
                    static_cast<int>(
                        a.at("incremental").num_or("changed", 0.0)),
                    static_cast<int>(
                        a.at("incremental").num_or("visited", 0.0)));
      std::printf("\n");
    }
  }

  double median_frac = 0.0, speedup = 0.0;
  int after_iter = 0;
  bool have_headroom = false;
  if (const JsonValue* s = last_of(run.activity_summaries)) {
    std::printf("\n-- activity summary (%d samples) --\n",
                static_cast<int>(s->num_or("samples", 0.0)));
    if (s->has("fwd_frac") && s->at("fwd_frac").is_object()) {
      const JsonValue& f = s->at("fwd_frac");
      std::printf("forward active: p50 %.1f%%  p95 %.1f%%  min %.1f%%  "
                  "last %.1f%%\n",
                  100.0 * f.num_or("p50", 0.0), 100.0 * f.num_or("p95", 0.0),
                  100.0 * f.num_or("min", 0.0), 100.0 * f.num_or("last", 0.0));
    }
    if (s->has("bwd_frac") && s->at("bwd_frac").is_object())
      std::printf("backward live:  p50 %.1f%%  last %.1f%%\n",
                  100.0 * s->at("bwd_frac").num_or("p50", 0.0),
                  100.0 * s->at("bwd_frac").num_or("last", 0.0));
    if (s->has("churn") && s->at("churn").is_object())
      std::printf("criticality churn: jaccard p50 %.3f  last %.3f\n",
                  s->at("churn").num_or("jaccard_p50", 1.0),
                  s->at("churn").num_or("jaccard_last", 1.0));
    if (s->has("slack") && s->at("slack").is_object()) {
      const JsonValue& sl = s->at("slack");
      std::printf("slack: WNS %.4f -> %.4f  p1 %.4f  p10 %.4f  p50 %.4f  "
                  "%d violating endpoints\n",
                  sl.num_or("first_wns", 0.0), sl.num_or("wns", 0.0),
                  sl.num_or("p1", 0.0), sl.num_or("p10", 0.0),
                  sl.num_or("p50", 0.0),
                  static_cast<int>(sl.num_or("violating", 0.0)));
    }
    if (s->has("headroom") && s->at("headroom").is_object()) {
      median_frac = s->at("headroom").num_or("median_active_frac", 0.0);
      speedup = s->at("headroom").num_or("predicted_speedup", 0.0);
      after_iter = static_cast<int>(s->num_or("first_iter", 0.0));
      have_headroom = true;
    }
  }
  if (!have_headroom && !run.activities.empty()) {
    std::vector<double> xs;
    const size_t n = run.activities.size();
    for (size_t i = n / 2; i < n; ++i)
      if (run.activities[i].has("forward"))
        xs.push_back(run.activities[i].at("forward").num_or("frac", 0.0));
    if (!xs.empty()) {
      median_frac = median_of(std::move(xs));
      after_iter =
          static_cast<int>(run.activities[n / 2].num_or("iter", 0.0));
      speedup = 1.0 / std::clamp(median_frac, 1e-3, 1.0);
      have_headroom = true;
    }
  }
  if (have_headroom)
    std::printf("headroom: median %.1f%% of pins active after iter %d; "
                "predicted incremental speedup ~%.1fx\n",
                100.0 * median_frac, after_iter, speedup);
}

// ------------------------------------------------------------------ diff ----

struct MetricCheck {
  const char* name;
  double a, b;
  bool regressed;
  bool informational;
};

// Aggregate kernel wall clock of the final profile record, per direction.
double kernel_total_ms(const RunData& run, const char* dir) {
  const JsonValue* k = last_of(run.kernels);
  if (k == nullptr || !k->has(dir)) return 0.0;
  double total = 0.0;
  for (const JsonValue& l : k->at(dir).array) total += l.num_or("ms", 0.0);
  return total;
}

int run_diff(const RunData& a, const RunData& b, double threshold) {
  if (!a.has_run_end || !b.has_run_end) {
    std::fprintf(stderr,
                 "dtp_report: --diff needs a run_end record on both sides "
                 "(a:%s b:%s)\n",
                 a.has_run_end ? "yes" : "no", b.has_run_end ? "yes" : "no");
    return 1;
  }
  std::vector<MetricCheck> checks;
  const double hpwl_a = a.run_end.num_or("hpwl", 0.0);
  const double hpwl_b = b.run_end.num_or("hpwl", 0.0);
  checks.push_back(
      {"hpwl", hpwl_a, hpwl_b, hpwl_b > hpwl_a * (1.0 + threshold), false});
  const double ovf_a = a.run_end.num_or("overflow", 0.0);
  const double ovf_b = b.run_end.num_or("overflow", 0.0);
  checks.push_back({"overflow", ovf_a, ovf_b, ovf_b > ovf_a + threshold, false});

  double wns_a = 0.0, tns_a = 0.0, wns_b = 0.0, tns_b = 0.0;
  const bool timed_a = final_timing(a, wns_a, tns_a);
  const bool timed_b = final_timing(b, wns_b, tns_b);
  if (timed_a && timed_b) {
    // Timing regression margin scales with the baseline magnitude (floored so
    // a near-zero baseline does not flag noise).
    checks.push_back({"wns", wns_a, wns_b,
                      wns_b < wns_a - threshold * std::max(std::abs(wns_a), 1e-3),
                      false});
    checks.push_back({"tns", tns_a, tns_b,
                      tns_b < tns_a - threshold * std::max(std::abs(tns_a), 1e-3),
                      false});
  }
  const std::string health_a = a.run_end.str_or("health", "?");
  const std::string health_b = b.run_end.str_or("health", "?");
  const bool health_regressed = health_rank(health_b) > health_rank(health_a);
  checks.push_back({"health_rank", double(health_rank(health_a)),
                    double(health_rank(health_b)), health_regressed, false});
  checks.push_back({"runtime_sec", a.run_end.num_or("runtime_sec", 0.0),
                    b.run_end.num_or("runtime_sec", 0.0), false, true});
  for (const char* dir : {"forward", "backward"}) {
    const double ka = kernel_total_ms(a, dir);
    const double kb = kernel_total_ms(b, dir);
    if (ka > 0.0 || kb > 0.0)
      checks.push_back({dir == std::string("forward") ? "kernel_forward_ms"
                                                      : "kernel_backward_ms",
                        ka, kb, false, true});
  }

  std::printf("==== dtp_report --diff (threshold %.3g) ====\n", threshold);
  std::printf("%-18s %14s %14s %9s\n", "metric", "a", "b", "verdict");
  bool regression = false;
  for (const MetricCheck& c : checks) {
    const char* verdict =
        c.regressed ? "REGRESSED" : (c.informational ? "info" : "ok");
    std::printf("%-18s %14.6g %14.6g %9s\n", c.name, c.a, c.b, verdict);
    regression = regression || c.regressed;
  }

  // Path churn: how much the set of critical endpoints moved between runs.
  std::set<std::string> ep_a, ep_b;
  for (const JsonValue* p : final_paths(a)) ep_a.insert(p->str_or("endpoint", ""));
  for (const JsonValue* p : final_paths(b)) ep_b.insert(p->str_or("endpoint", ""));
  if (!ep_a.empty() || !ep_b.empty()) {
    size_t common = 0;
    for (const std::string& e : ep_a) common += ep_b.count(e);
    const size_t uni = ep_a.size() + ep_b.size() - common;
    std::printf("path churn: %zu/%zu common endpoints (jaccard %.2f)\n", common,
                uni, uni > 0 ? double(common) / double(uni) : 1.0);
  }
  if (regression)
    std::printf("RESULT: REGRESSION beyond threshold %.3g\n", threshold);
  else
    std::printf("RESULT: ok\n");
  // Final single-line machine-readable verdict, so CI parses the outcome
  // instead of scraping the table (mirrors --bench-diff).
  dtp::JsonWriter verdict;
  verdict.begin_object();
  verdict.key("ok").value(!regression);
  verdict.key("regressions").begin_array();
  for (const MetricCheck& c : checks)
    if (c.regressed) verdict.value(std::string(c.name));
  verdict.end_array();
  verdict.end_object();
  std::printf("%s\n", verdict.str().c_str());
  return regression ? 2 : 0;
}

// ---- serve mode: replay a dtp_serve journal through the live session
// accumulator (serve/session_stats.h) ----
int run_serve_report(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "dtp_report: cannot open %s\n", path.c_str());
    return 1;
  }
  dtp::serve::SessionAccum accum;
  std::map<uint64_t, std::string> open_jobs;  // id -> client/mode summary
  size_t accepts = 0, rejects = 0, ckpts = 0, terminals = 0, bad_lines = 0;
  int64_t first_ts = 0, last_ts = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    JsonValue v;
    try {
      v = JsonParser::parse(line);
    } catch (const std::exception&) {
      ++bad_lines;  // a torn final line from a crash is expected
      continue;
    }
    if (!v.is_object()) {
      ++bad_lines;
      continue;
    }
    const std::string ev = v.str_or("ev", "");
    const uint64_t id = static_cast<uint64_t>(v.num_or("id", 0));
    const int64_t ts = static_cast<int64_t>(v.num_or("ts_ms", 0));
    if (ts > 0) {
      if (first_ts == 0) first_ts = ts;
      last_ts = ts;
    }
    if (ev == "accept") {
      ++accepts;
      std::string what;
      if (v.has("spec") && v.at("spec").is_object()) {
        const JsonValue& spec = v.at("spec");
        what = spec.str_or("client", "anon") + " " + spec.str_or("mode", "dt");
      }
      open_jobs[id] = what;
    } else if (ev == "reject") {
      ++rejects;
      accum.add_terminal("rejected", 0.0, 0.0, 0, 0, false);
    } else if (ev == "ckpt") {
      ++ckpts;
    } else if (ev == "terminal") {
      ++terminals;
      open_jobs.erase(id);
      accum.add_terminal(v.str_or("state", "unknown"), v.num_or("wait_sec", 0),
                         v.num_or("run_sec", 0),
                         static_cast<int>(v.num_or("retries", 0)),
                         static_cast<int>(v.num_or("preemptions", 0)),
                         v.has("recovered") && v.at("recovered").boolean);
    }
  }
  std::printf("==== dtp_report --serve: %s ====\n", path.c_str());
  std::printf("records: %zu accepts, %zu rejects, %zu checkpoints, "
              "%zu terminals",
              accepts, rejects, ckpts, terminals);
  if (bad_lines > 0) std::printf(", %zu unparseable line(s)", bad_lines);
  std::printf("\n");
  if (first_ts > 0 && last_ts >= first_ts)
    std::printf("session span: %.1f s of journal activity\n",
                static_cast<double>(last_ts - first_ts) / 1e3);
  accum.print(stdout);
  if (!open_jobs.empty()) {
    std::printf("unfinished (accepted, no terminal — parked or lost):\n");
    for (const auto& [id, what] : open_jobs)
      std::printf("  job %llu%s%s\n", static_cast<unsigned long long>(id),
                  what.empty() ? "" : "  ", what.c_str());
  }
  return 0;
}

// ---- history mode: append dtp_bench artifacts to BENCH_history.jsonl and
// print the trajectory, one line per recorded run ----
int run_history(const std::string& hist_path,
                const std::vector<std::string>& bench_files) {
  size_t appended = 0;
  if (!bench_files.empty()) {
    std::ofstream out(hist_path, std::ios::app);
    if (!out) {
      std::fprintf(stderr, "dtp_report: cannot append to %s\n",
                   hist_path.c_str());
      return 1;
    }
    for (const std::string& f : bench_files) {
      JsonValue doc;
      if (!load_bench_file(f, doc)) return 1;
      const std::string line = dtp::obs::prof::bench_history_line(doc);
      if (line.empty()) {
        std::fprintf(stderr, "dtp_report: %s has no summarizable cells\n",
                     f.c_str());
        return 1;
      }
      out << line << "\n";
      ++appended;
    }
  }

  std::ifstream in(hist_path);
  if (!in) {
    std::fprintf(stderr, "dtp_report: cannot read %s\n", hist_path.c_str());
    return 1;
  }
  std::printf("==== dtp_report --history: %s ====\n", hist_path.c_str());
  size_t runs = 0, bad = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    JsonValue v;
    try {
      v = JsonParser::parse(line);
    } catch (const std::exception&) {
      ++bad;
      continue;
    }
    if (!v.is_object() || v.str_or("type", "") != "bench_run") {
      ++bad;
      continue;
    }
    ++runs;
    std::printf("#%-3zu %-8s", runs, v.str_or("suite", "?").c_str());
    const std::string commit = v.str_or("commit", "");
    std::printf(" %-10s", commit.empty() ? "-" : commit.substr(0, 10).c_str());
    const std::string label = v.str_or("label", "");
    if (!label.empty()) std::printf(" [%s]", label.c_str());
    std::printf(" threads %d  counters %s  |",
                static_cast<int>(v.num_or("threads", 0.0)),
                v.has("counters_available") &&
                        v.at("counters_available").boolean
                    ? "yes"
                    : "no");
    if (v.has("cells") && v.at("cells").is_array())
      for (const JsonValue& c : v.at("cells").array)
        std::printf("  %s %.3fs", c.str_or("name", "?").c_str(),
                    c.num_or("wall_median_sec", 0.0));
    std::printf("\n");
  }
  std::printf("%zu run(s) in trajectory", runs);
  if (appended > 0) std::printf(" (%zu appended now)", appended);
  if (bad > 0) std::printf(", %zu unrecognized line(s)", bad);
  std::printf("\n");
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: dtp_report [--require TYPE[,TYPE...]] [--activity] "
               "[--profile] FILE.jsonl...\n"
               "       dtp_report --diff A.jsonl[,A2.jsonl] B.jsonl[,B2.jsonl] "
               "[--threshold 0.05]\n"
               "       dtp_report --bench-diff OLD.json NEW.json "
               "[--threshold 0.15]\n"
               "       dtp_report --serve artifacts/journal.jsonl\n"
               "       dtp_report --history BENCH_history.jsonl "
               "[BENCH_*.json...]\n"
               "exit codes: 0 ok, 1 usage/IO/parse error, 2 missing required "
               "record type or diff regression\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  std::string require;
  bool diff = false;
  bool bench_diff_mode = false;
  bool activity_section = false;
  bool profile_section = false;
  std::string serve_journal;
  std::string history_path;
  std::vector<std::string> diff_args;
  double threshold = 0.05;
  bool threshold_set = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help") {
      usage();
      return 0;
    } else if (arg == "--require" && i + 1 < argc) {
      require = argv[++i];
    } else if (arg == "--threshold" && i + 1 < argc) {
      threshold = std::atof(argv[++i]);
      threshold_set = true;
    } else if (arg == "--diff") {
      diff = true;
    } else if (arg == "--bench-diff") {
      bench_diff_mode = true;
    } else if (arg == "--serve" && i + 1 < argc) {
      serve_journal = argv[++i];
    } else if (arg == "--history" && i + 1 < argc) {
      history_path = argv[++i];
    } else if (arg == "--activity") {
      activity_section = true;
    } else if (arg == "--profile") {
      profile_section = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "dtp_report: unknown option %s\n", arg.c_str());
      usage();
      return 1;
    } else if (diff || bench_diff_mode) {
      diff_args.push_back(arg);
    } else {
      files.push_back(arg);
    }
  }

  if (!serve_journal.empty()) return run_serve_report(serve_journal);
  if (!history_path.empty()) return run_history(history_path, files);

  if (bench_diff_mode) {
    if (diff_args.size() != 2) {
      usage();
      return 1;
    }
    JsonValue old_doc, new_doc;
    if (!load_bench_file(diff_args[0], old_doc) ||
        !load_bench_file(diff_args[1], new_doc))
      return 1;
    dtp::obs::prof::BenchDiffOptions opts;
    if (threshold_set) opts.threshold = threshold;
    return dtp::obs::prof::bench_diff(old_doc, new_doc, opts, stdout);
  }

  if (diff) {
    if (diff_args.size() != 2) {
      usage();
      return 1;
    }
    RunData a, b;
    if (!load_files(split_commas(diff_args[0]), a) ||
        !load_files(split_commas(diff_args[1]), b))
      return 1;
    return run_diff(a, b, threshold);
  }

  if (files.empty()) {
    usage();
    return 1;
  }
  RunData run;
  if (!load_files(files, run)) return 1;
  print_report(run);
  print_profiles(run, profile_section);
  if (activity_section) print_activity(run);

  int rc = 0;
  for (const std::string& type : split_commas(require)) {
    if (run.type_counts[type] == 0) {
      std::fprintf(stderr, "dtp_report: required record type '%s' missing\n",
                   type.c_str());
      rc = 2;
    }
  }
  return rc;
}
