// dtp_serve: fault-contained placement-as-a-service daemon (DESIGN.md §12).
//
// Daemon:
//   dtp_serve --socket /tmp/dtp.sock [--workers N] [--queue-cap N]
//             [--artifacts DIR] [--backoff-ms N] [--no-preempt]
//             [--log-level L]
//
//   Accepts newline-delimited JSON requests on a local stream socket (see
//   src/serve/protocol.h for the grammar), runs each accepted job through the
//   JobRunner containment harness on a pool of placer workers, and journals
//   every accepted job to <artifacts>/journal.jsonl.  SIGTERM/SIGINT (or a
//   {"cmd":"drain"} request) triggers a graceful drain: admission stops,
//   in-flight jobs are checkpointed, the queue is journaled, and the daemon
//   exits 0.  A restart over the same --artifacts directory re-admits every
//   unfinished job and resumes from its checkpoint.
//
// Client (one-shot, for scripts and the CI smoke test):
//   dtp_serve --socket /tmp/dtp.sock --request '{"cmd":"submit","spec":{...}}'
//   dtp_serve --socket /tmp/dtp.sock --scrape
//
//   --request prints the response line on stdout.  Exit 0 when the response
//   has "ok":true, 2 when the service answered "ok":false, 1 on transport
//   error.  --scrape asks for {"cmd":"metrics"} and prints the raw Prometheus
//   exposition text (same exit codes), so `dtp_serve --socket S --scrape`
//   replaces curl against daemons that speak no HTTP.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <string>

#include "common/cli.h"
#include "common/json_parse.h"
#include "common/logger.h"
#include "serve/manager.h"
#include "serve/server.h"

namespace {

using dtp::cli::arg_flag;
using dtp::cli::arg_int;
using dtp::cli::arg_str;

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true, std::memory_order_release); }

void usage() {
  std::fprintf(
      stderr,
      "usage: dtp_serve --socket PATH [--workers N] [--queue-cap N]\n"
      "                 [--artifacts DIR] [--backoff-ms N] [--no-preempt]\n"
      "                 [--trace-out FILE] [--events-cap N]\n"
      "                 [--profile-hz HZ]  # sampling profiler ({\"cmd\":"
      "\"profile\"}); 0 disables (default 997)\n"
      "                 [--log-level debug|info|warn|error|silent]\n"
      "       dtp_serve --socket PATH --request 'JSON'   # one-shot client\n"
      "       dtp_serve --socket PATH --scrape  # print Prometheus metrics\n"
      "exit codes (daemon): 0 clean drain, 1 setup error\n"
      "exit codes (client): 0 ok:true, 1 transport error, 2 ok:false\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dtp;
  if (argc < 2 || arg_flag(argc, argv, "--help")) {
    usage();
    return argc < 2 ? 1 : 0;
  }
  if (const char* level_name = arg_str(argc, argv, "--log-level", nullptr)) {
    const auto level = parse_log_level(level_name);
    if (!level) {
      std::fprintf(stderr, "unknown --log-level %s\n", level_name);
      return 1;
    }
    Logger::instance().set_level(*level);
    Logger::instance().set_timestamps(true);
  }
  const char* socket_path = arg_str(argc, argv, "--socket", nullptr);
  if (socket_path == nullptr) {
    usage();
    return 1;
  }

  // ---- one-shot client modes ----
  if (arg_flag(argc, argv, "--scrape")) {
    std::string response, err;
    if (!serve::send_request(socket_path, R"({"cmd":"metrics"})", &response,
                             &err)) {
      std::fprintf(stderr, "dtp_serve: %s\n", err.c_str());
      return 1;
    }
    try {
      const JsonValue v = JsonParser::parse(response);
      if (v.is_object() && v.has("ok") && v.at("ok").boolean &&
          v.has("text")) {
        std::fputs(v.at("text").string.c_str(), stdout);
        return 0;
      }
    } catch (const std::exception&) {
    }
    std::fprintf(stderr, "dtp_serve: bad metrics response: %s\n",
                 response.c_str());
    return 2;
  }
  if (const char* request = arg_str(argc, argv, "--request", nullptr)) {
    std::string response, err;
    if (!serve::send_request(socket_path, request, &response, &err)) {
      std::fprintf(stderr, "dtp_serve: %s\n", err.c_str());
      return 1;
    }
    std::printf("%s\n", response.c_str());
    try {
      const JsonValue v = JsonParser::parse(response);
      if (v.is_object() && v.has("ok") && v.at("ok").boolean) return 0;
    } catch (const std::exception&) {
    }
    return 2;
  }

  // ---- daemon mode ----
  serve::ManagerOptions mopts;
  mopts.workers = arg_int(argc, argv, "--workers", 2);
  mopts.queue_capacity =
      static_cast<size_t>(arg_int(argc, argv, "--queue-cap", 8));
  mopts.artifact_dir = arg_str(argc, argv, "--artifacts", "");
  mopts.backoff_base_ms = arg_int(argc, argv, "--backoff-ms", 50);
  mopts.preemption = !arg_flag(argc, argv, "--no-preempt");
  mopts.trace_out = arg_str(argc, argv, "--trace-out", "");
  mopts.event_capacity =
      static_cast<size_t>(arg_int(argc, argv, "--events-cap", 256));
  mopts.profile_hz =
      cli::arg_double(argc, argv, "--profile-hz", mopts.profile_hz);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);  // a client gone mid-response is their loss

  serve::JobManager manager(mopts);
  const auto boot = manager.stats();
  serve::SocketServer server(manager);
  std::string err;
  if (!server.listen_on(socket_path, &err)) {
    std::fprintf(stderr, "dtp_serve: %s\n", err.c_str());
    return 1;
  }
  std::printf("dtp_serve: listening on %s (%d workers, queue %zu%s)\n",
              socket_path, mopts.workers, mopts.queue_capacity,
              mopts.artifact_dir.empty()
                  ? ""
                  : (", artifacts " + mopts.artifact_dir).c_str());
  if (boot.recovered > 0)
    std::printf("dtp_serve: recovered %llu journaled job(s)\n",
                static_cast<unsigned long long>(boot.recovered));
  std::fflush(stdout);

  const size_t handled = server.serve(g_stop);
  server.close_all();  // stop accepting before the drain starts
  std::printf("dtp_serve: draining (%zu request(s) handled)\n", handled);
  std::fflush(stdout);
  manager.drain();
  std::printf("dtp_serve: drained: %s\n", manager.stats_json().c_str());
  return 0;
}
