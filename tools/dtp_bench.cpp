// dtp_bench: the continuous-benchmarking suite runner (DESIGN.md §9).
//
// Runs a fixed grid of workload × placer-mode cells N times each and emits
// BENCH_<suite>.json (schema dtp.bench.v1): min/median/p95/stddev of wall and
// process-CPU time per cell and per kernel phase, grouped hardware counters
// (IPC, cache-miss rate) when perf_event_open is permitted — an explicit
// available:false record when it is not (containers, CI sandboxes) — plus an
// OS-resource snapshot and thread-pool utilization per repeat.
//
//   dtp_bench --suite smoke --repeats 3
//   dtp_report --bench-diff BENCH_smoke.baseline.json BENCH_smoke.json
//
// Flags:
//   --suite NAME      smoke | small | medium | large (default smoke)
//   --repeats N       timed repeats per cell (default 3)
//   --out PATH        output path (default BENCH_<suite>.json)
//   --sample-ms N     resource-sampler period (default 25)
//   --timeline-out P  JSONL timeline: resource samples, per-worker busy
//                     spans and pool marks, tagged by cell/repeat
//   --profile-hz HZ   sampling-profiler rate for the per-cell "profile"
//                     block (default 997; 0 disables the profiler)
//   --list            print the suite grid and exit
//
// Every repeat regenerates the design from the same seed, so all repeats and
// both sides of a bench diff start from the identical initial state; the
// samplers are pure observers and do not perturb placement results.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/json_writer.h"
#include "common/thread_pool.h"
#include "kernels/kernel_backend.h"
#include "liberty/synth_library.h"
#include "obs/jsonl.h"
#include "obs/prof/bench_json.h"
#include "obs/prof/hw_counters.h"
#include "obs/prof/resource_sampler.h"
#include "obs/prof/sampling_profiler.h"
#include "placer/global_placer.h"
#include "placer/run_report.h"
#include "sta/timing_graph.h"
#include "workload/circuit_gen.h"

using namespace dtp;
using obs::prof::BenchCell;
using obs::prof::BenchRepeat;
using obs::prof::BenchSuiteResult;
using obs::prof::ResourceSample;

namespace {

struct CellDef {
  std::string name;
  int num_cells;
  int max_iters;
  placer::PlacerMode mode;
};

std::vector<CellDef> suite_cells(const std::string& suite) {
  using placer::PlacerMode;
  struct Shape {
    const char* tag;
    int num_cells;
    int max_iters;
  };
  std::vector<Shape> shapes;
  std::vector<PlacerMode> modes;
  if (suite == "smoke") {
    shapes = {{"s300", 300, 100}};
    modes = {PlacerMode::WirelengthOnly, PlacerMode::DiffTiming};
  } else if (suite == "small") {
    shapes = {{"s800", 800, 200}};
    modes = {PlacerMode::WirelengthOnly, PlacerMode::NetWeighting,
             PlacerMode::DiffTiming};
  } else if (suite == "medium") {
    shapes = {{"s3000", 3000, 300}};
    modes = {PlacerMode::WirelengthOnly, PlacerMode::NetWeighting,
             PlacerMode::DiffTiming};
  } else if (suite == "large") {
    shapes = {{"s10000", 10000, 400}};
    modes = {PlacerMode::WirelengthOnly, PlacerMode::DiffTiming};
  } else {
    return {};
  }
  std::vector<CellDef> cells;
  for (const Shape& sh : shapes)
    for (PlacerMode m : modes)
      cells.push_back(CellDef{std::string(sh.tag) + "/" +
                                  placer::mode_short_name(m),
                              sh.num_cells, sh.max_iters, m});
  return cells;
}

workload::WorkloadOptions workload_for(const CellDef& cell) {
  workload::WorkloadOptions w;
  w.seed = 7;
  w.num_cells = cell.num_cells;
  return w;
}

// One timed repeat: fresh design, samplers attached, counters around gp.run()
// only (design generation and signoff are not part of the measured kernel).
BenchRepeat run_repeat(const liberty::CellLibrary& lib, const CellDef& cell,
                       obs::prof::HwCounters& counters, int sample_ms,
                       obs::JsonlWriter* timeline, const std::string& tag) {
  netlist::Design design =
      workload::generate_design(lib, workload_for(cell), cell.name);
  sta::TimingGraph graph(design.netlist);
  placer::GlobalPlacerOptions popts;
  popts.mode = cell.mode;
  popts.max_iters = cell.max_iters;
  // Activate timing early so short cells still exercise the timer kernels
  // (the default gate of iter>=100 && overflow<=0.5 would leave the smoke
  // suite's dt cell measuring pure wirelength descent).
  popts.timing_start_iter = std::min(20, cell.max_iters / 4);
  popts.timing_start_overflow = 1.0;
  placer::GlobalPlacer gp(design, graph, popts);

  ThreadPool& pool = ThreadPool::global();
  const ThreadPoolStats pool0 = pool.stats();
  const std::vector<WorkerStat> workers0 = pool.worker_stats();
  pool.reset_queue_depth_max();
  if (timeline != nullptr) {
    pool.clear_timeline();
    pool.set_timeline_enabled(true);
  }

  obs::prof::ResourceSampler sampler(sample_ms);
  sampler.start();
  counters.start();
  const placer::PlaceResult result = gp.run();
  BenchRepeat rep;
  rep.counters = counters.stop();
  sampler.stop();
  if (timeline != nullptr) pool.set_timeline_enabled(false);

  rep.wall_sec = result.runtime_sec;
  rep.cpu_sec = result.cpu_runtime_sec;
  rep.hpwl = result.hpwl;
  rep.overflow = result.overflow;
  rep.iterations = result.iterations;
  const placer::PhaseBreakdown& p = result.phases;
  rep.phases = {
      {"wirelength", {p.wirelength_sec, p.wirelength_cpu_sec}},
      {"density", {p.density_sec, p.density_cpu_sec}},
      {"rsmt", {p.rsmt_sec, p.rsmt_cpu_sec}},
      {"sta_forward", {p.sta_forward_sec, p.sta_forward_cpu_sec}},
      {"sta_backward", {p.sta_backward_sec, p.sta_backward_cpu_sec}},
      {"step", {p.step_sec, p.step_cpu_sec}},
  };

  const std::vector<ResourceSample> samples = sampler.samples();
  if (!samples.empty()) rep.resources = samples.back();
  const ThreadPoolStats pool1 = pool.stats();
  rep.pool_busy_sec = pool1.busy_sec - pool0.busy_sec;
  const double elapsed = pool1.lifetime_sec - pool0.lifetime_sec;
  const double capacity = elapsed * static_cast<double>(pool1.num_threads);
  rep.pool_utilization = capacity > 0.0 ? rep.pool_busy_sec / capacity : 0.0;
  rep.queue_depth_max = pool1.queue_depth_max;
  const std::vector<WorkerStat> workers1 = pool.worker_stats();
  for (size_t i = 0; i < workers1.size(); ++i) {
    WorkerStat delta;
    delta.tasks = workers1[i].tasks - (i < workers0.size() ? workers0[i].tasks : 0);
    delta.busy_sec =
        workers1[i].busy_sec - (i < workers0.size() ? workers0[i].busy_sec : 0.0);
    rep.workers.push_back(delta);
  }

  if (timeline != nullptr) {
    sampler.write_jsonl(*timeline, tag);
    for (const WorkerSpan& span : pool.timeline()) {
      JsonWriter w;
      w.begin_object();
      w.key("type").value("worker_span");
      w.key("tag").value(tag);
      w.key("worker").value(span.worker);
      w.key("t0_sec").value(span.t0_sec);
      w.key("t1_sec").value(span.t1_sec);
      w.end_object();
      timeline->write_line(w.str());
    }
    for (const TimelineMark& m : pool.timeline_marks()) {
      JsonWriter w;
      w.begin_object();
      w.key("type").value("pool_mark");
      w.key("tag").value(tag);
      w.key("t_sec").value(m.t_sec);
      w.key("label").value(m.label);
      w.end_object();
      timeline->write_line(w.str());
    }
    pool.clear_timeline();
  }
  return rep;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string suite = cli::arg_str(argc, argv, "--suite", "smoke");
  const int repeats = cli::arg_int(argc, argv, "--repeats", 3);
  const int sample_ms = cli::arg_int(argc, argv, "--sample-ms", 25);
  const double profile_hz = cli::arg_double(argc, argv, "--profile-hz", 997.0);
  const std::string out_path =
      cli::arg_str(argc, argv, "--out", ("BENCH_" + suite + ".json").c_str());
  const char* timeline_path = cli::arg_str(argc, argv, "--timeline-out", nullptr);
  // Provenance stamps: recorded in the dtp.bench.v1 header so BENCH files in
  // a directory form a labeled, attributable trajectory.
  const std::string commit = cli::arg_str(argc, argv, "--commit", "");
  const std::string label = cli::arg_str(argc, argv, "--label", "");
  if (const char* kb_name =
          cli::arg_str(argc, argv, "--kernel-backend", nullptr)) {
    if (!kernels::set_backend(kb_name)) {
      std::fprintf(stderr, "unknown --kernel-backend %s\n", kb_name);
      return 1;
    }
  }

  if (cli::arg_flag(argc, argv, "--list")) {
    for (const char* s : {"smoke", "small", "medium", "large"}) {
      std::printf("%s:\n", s);
      for (const CellDef& c : suite_cells(s))
        std::printf("  %-12s %6d cells, %d iters\n", c.name.c_str(),
                    c.num_cells, c.max_iters);
    }
    return 0;
  }

  const std::vector<CellDef> cells = suite_cells(suite);
  if (cells.empty() || repeats < 1) {
    std::fprintf(stderr,
                 "usage: dtp_bench --suite smoke|small|medium|large "
                 "[--repeats N] [--out PATH] [--sample-ms N] "
                 "[--timeline-out PATH] [--profile-hz HZ] "
                 "[--commit SHA] [--label STR] "
                 "[--kernel-backend scalar|simd] [--list]\n");
    return 1;
  }

  obs::JsonlWriter timeline;
  if (timeline_path != nullptr && !timeline.open(timeline_path)) {
    std::fprintf(stderr, "cannot write %s\n", timeline_path);
    return 1;
  }
  obs::JsonlWriter* timeline_ptr = timeline.is_open() ? &timeline : nullptr;

  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  obs::prof::HwCounters counters;
  if (!counters.available())
    std::fprintf(stderr, "[dtp_bench] hw counters unavailable: %s\n",
                 counters.unavailable_reason().c_str());

  BenchSuiteResult suite_result;
  suite_result.suite = suite;
  suite_result.repeats = repeats;
  suite_result.threads = ThreadPool::global().num_threads();
  suite_result.commit = commit;
  suite_result.label = label;
  suite_result.kernel_backend = kernels::backend().name();
  suite_result.counter_probe = counters.read();

  for (const CellDef& cell : cells) {
    BenchCell bc;
    bc.name = cell.name;
    bc.design = cell.name.substr(0, cell.name.find('/'));
    bc.mode = placer::mode_short_name(cell.mode);
    bc.num_cells = cell.num_cells;
    // One untimed warm-up so first-touch page faults and lazy pool spin-up
    // do not land in repeat 0's numbers.
    std::fprintf(stderr, "[dtp_bench] %s: warm-up\n", cell.name.c_str());
    {
      obs::prof::HwCounters warm_counters;
      run_repeat(lib, cell, warm_counters, sample_ms, nullptr, {});
    }
    // Hot-spot attribution across the cell's timed repeats (the warm-up is
    // excluded).  The profiler only reads the live-span slots, so placement
    // results are untouched; overhead sits inside the <2% acceptance bound.
    obs::prof::SamplingProfiler::Options prof_opts;
    prof_opts.hz = profile_hz;
    obs::prof::SamplingProfiler profiler(prof_opts);
    if (profile_hz > 0.0) profiler.start();
    for (int r = 0; r < repeats; ++r) {
      const std::string tag = cell.name + "#" + std::to_string(r);
      std::fprintf(stderr, "[dtp_bench] %s: repeat %d/%d\n", cell.name.c_str(),
                   r + 1, repeats);
      bc.repeats.push_back(
          run_repeat(lib, cell, counters, sample_ms, timeline_ptr, tag));
    }
    if (profile_hz > 0.0) {
      profiler.stop();
      bc.profile_json = profiler.summary_json();
    }
    const obs::prof::SeriesStats wall = obs::prof::compute_stats([&] {
      std::vector<double> xs;
      for (const BenchRepeat& rep : bc.repeats) xs.push_back(rep.wall_sec);
      return xs;
    }());
    std::fprintf(stderr,
                 "[dtp_bench] %s: wall median %.3fs  min %.3fs  p95 %.3fs\n",
                 cell.name.c_str(), wall.median, wall.min, wall.p95);
    suite_result.cells.push_back(std::move(bc));
  }

  if (timeline.is_open()) {
    timeline.close();
    std::fprintf(stderr, "wrote %s\n", timeline_path);
  }
  if (!obs::prof::write_bench_json(out_path, suite_result)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s (%zu cells x %d repeats)\n", out_path.c_str(),
               suite_result.cells.size(), repeats);
  return 0;
}
