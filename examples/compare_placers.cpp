// Head-to-head of the three placement flows on one design: wirelength-only
// (DREAMPlace [16] substrate), momentum net weighting ([24]), and the
// differentiable-timing flow (this paper) — the single-design version of the
// Table 3 experiment, handy for experimentation.
//
//   ./compare_placers [num_cells] [seed]
#include <cstdio>

#include "liberty/synth_library.h"
#include "placer/global_placer.h"
#include "placer/legalizer.h"
#include "sta/timer.h"
#include "workload/circuit_gen.h"

int main(int argc, char** argv) {
  using namespace dtp;
  const int num_cells = argc > 1 ? std::atoi(argv[1]) : 3000;
  const uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 11;

  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  workload::WorkloadOptions wopts;
  wopts.num_cells = num_cells;
  wopts.seed = seed;
  wopts.clock_scale = 0.7;

  const placer::PlacerMode modes[3] = {placer::PlacerMode::WirelengthOnly,
                                       placer::PlacerMode::NetWeighting,
                                       placer::PlacerMode::DiffTiming};
  const char* names[3] = {"wirelength-only", "net-weighting", "diff-timing"};

  std::printf("%-16s %10s %12s %12s %9s %7s %6s\n", "flow", "WNS(ns)",
              "TNS(ns)", "HPWL(um)", "overflow", "iters", "sec");
  for (int m = 0; m < 3; ++m) {
    // Fresh design per mode: identical initial state, independent runs.
    netlist::Design design = workload::generate_design(lib, wopts, "cmp");
    sta::TimingGraph graph(design.netlist);
    placer::GlobalPlacerOptions popts;
    popts.mode = modes[m];
    popts.timing_start_iter = 50;
    placer::GlobalPlacer gp(design, graph, popts);
    const auto res = gp.run();
    placer::legalize(design, design.cell_x, design.cell_y);
    sta::Timer timer(design, graph);
    const auto tm = timer.evaluate(design.cell_x, design.cell_y);
    placer::WirelengthModel wl(design);
    std::printf("%-16s %10.4f %12.3f %12.0f %9.3f %7d %6.1f\n", names[m], tm.wns,
                tm.tns, wl.hpwl_unweighted(design.cell_x, design.cell_y),
                res.overflow, res.iterations, res.runtime_sec);
  }
  return 0;
}
