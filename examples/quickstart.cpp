// Quickstart: generate a small design, run timing-driven global placement,
// legalize, and report timing — the whole flow in ~40 lines.
//
//   ./quickstart [num_cells]
#include <cstdio>

#include "liberty/synth_library.h"
#include "placer/global_placer.h"
#include "placer/legalizer.h"
#include "sta/timer.h"
#include "workload/circuit_gen.h"

int main(int argc, char** argv) {
  using namespace dtp;

  // 1. A cell library (normally parsed from a .lib file; here synthesized).
  const liberty::CellLibrary lib = liberty::make_synthetic_library();

  // 2. A design: netlist + constraints + floorplan (normally parsed; here
  //    generated with superblue-like structure).
  workload::WorkloadOptions wopts;
  wopts.num_cells = argc > 1 ? std::atoi(argv[1]) : 2000;
  wopts.seed = 42;
  netlist::Design design = workload::generate_design(lib, wopts, "quickstart");
  const auto stats = design.netlist.stats();
  std::printf("design: %zu cells, %zu nets, %zu pins, clock %.3f ns\n",
              stats.num_std_cells, stats.num_nets, stats.num_pins,
              design.constraints.clock_period);

  // 3. The timing graph is built once; the placer and timer share it.
  sta::TimingGraph graph(design.netlist);
  sta::Timer timer(design, graph);

  // 4. Baseline: wirelength-driven global placement (no timing terms).
  {
    netlist::Design baseline = workload::generate_design(lib, wopts, "baseline");
    placer::GlobalPlacerOptions popts;
    popts.mode = placer::PlacerMode::WirelengthOnly;
    placer::GlobalPlacer gp(baseline, graph, popts);
    const auto result = gp.run();
    const auto m = timer.evaluate(baseline.cell_x, baseline.cell_y);
    std::printf("wirelength-only : WNS %8.4f ns   TNS %10.3f ns   HPWL %.4g um"
                "   (%d iters, %.1fs)\n",
                m.wns, m.tns, result.hpwl, result.iterations,
                result.runtime_sec);
  }

  // 5. The paper's flow: differentiable-timing-driven global placement.
  placer::GlobalPlacerOptions popts;
  popts.mode = placer::PlacerMode::DiffTiming;
  popts.timing_start_iter = 50;
  placer::GlobalPlacer gp(design, graph, popts);
  const auto result = gp.run();
  auto m = timer.evaluate(design.cell_x, design.cell_y);
  std::printf("diff-timing     : WNS %8.4f ns   TNS %10.3f ns   HPWL %.4g um"
              "   (%d iters, %.1fs)\n",
              m.wns, m.tns, result.hpwl, result.iterations, result.runtime_sec);

  // 6. Legalize and re-check.
  const auto lg = placer::legalize(design, design.cell_x, design.cell_y);
  m = timer.evaluate(design.cell_x, design.cell_y);
  std::printf("after legalize  : WNS %8.4f ns   TNS %10.3f ns   (avg disp %.2f um)\n",
              m.wns, m.tns,
              lg.total_displacement / static_cast<double>(stats.num_std_cells));
  return 0;
}
