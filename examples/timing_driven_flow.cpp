// Full flow with file interchange: synthesize a library to .lib, a design to
// .v/.sdc, read everything back (exercising the parsers exactly as an
// external user with real files would), then run GP -> LG -> DP and write the
// placement as Bookshelf.
//
//   ./timing_driven_flow [work_dir]
#include <cstdio>
#include <filesystem>

#include "common/rng.h"
#include "io/bookshelf.h"
#include "io/sdc.h"
#include "io/verilog.h"
#include "liberty/liberty_io.h"
#include "liberty/synth_library.h"
#include "placer/global_placer.h"
#include "placer/legalizer.h"
#include "sta/timer.h"
#include "workload/circuit_gen.h"

int main(int argc, char** argv) {
  using namespace dtp;
  const std::string dir = argc > 1 ? argv[1] : "flow_out";
  std::filesystem::create_directories(dir);

  // --- produce the input files (the "PDK + design" hand-off) ---
  {
    const liberty::CellLibrary lib = liberty::make_synthetic_library();
    workload::WorkloadOptions wopts;
    wopts.num_cells = 2500;
    wopts.seed = 77;
    netlist::Design d = workload::generate_design(lib, wopts, "demo");
    liberty::write_liberty_file(lib, dir + "/demo.lib");
    io::write_verilog_file(d, dir + "/demo.v");
    io::write_sdc_file(d.constraints, dir + "/demo.sdc");
    std::printf("wrote %s/demo.{lib,v,sdc}\n", dir.c_str());
  }

  // --- consume them from scratch, as an external flow would ---
  const liberty::CellLibrary lib = liberty::parse_liberty_file(dir + "/demo.lib");
  netlist::Design design = io::read_verilog_file(lib, dir + "/demo.v");
  const auto sdc = io::read_sdc_file(dir + "/demo.sdc", design.constraints);
  std::printf("parsed library (%zu cells), netlist (%zu cells, %zu nets), "
              "sdc (%zu commands)\n",
              lib.size(), design.netlist.num_cells(), design.netlist.num_nets(),
              sdc.commands);

  // Floorplan + initial placement (the .v carries no geometry).
  {
    double area = 0.0;
    for (size_t c = 0; c < design.netlist.num_cells(); ++c) {
      const auto& m = design.netlist.lib_cell_of(static_cast<int>(c));
      area += m.width * m.height;
    }
    const double side =
        std::ceil(std::sqrt(area / 0.7) / 2.0) * 2.0;  // rows of height 2
    design.floorplan.core = Rect(0, 0, side, side);
    design.floorplan.row_height = 2.0;
    design.floorplan.site_width = 0.5;
    Rng rng(1);
    size_t pads = 0;
    for (size_t c = 0; c < design.netlist.num_cells(); ++c) {
      if (design.netlist.cell(static_cast<int>(c)).fixed) {
        // Pads around the boundary.
        const double t = rng.uniform(0.0, 4.0);
        design.cell_x[c] = t < 1 ? t * side : (t < 2 ? side : (t < 3 ? (3 - t) * side : 0.0));
        design.cell_y[c] = t < 1 ? 0.0 : (t < 2 ? (t - 1) * side : (t < 3 ? side : (4 - t) * side));
        ++pads;
      } else {
        design.cell_x[c] = side * 0.5 + rng.normal(0, side * 0.05);
        design.cell_y[c] = side * 0.5 + rng.normal(0, side * 0.05);
      }
    }
    std::printf("floorplan: %.0f x %.0f um, %zu pads fixed on the ring\n", side,
                side, pads);
  }

  sta::TimingGraph graph(design.netlist);
  sta::Timer timer(design, graph);
  auto m = timer.evaluate(design.cell_x, design.cell_y);
  std::printf("initial : WNS %8.4f  TNS %10.3f\n", m.wns, m.tns);

  placer::GlobalPlacerOptions popts;
  popts.mode = placer::PlacerMode::DiffTiming;
  popts.timing_start_iter = 50;
  placer::GlobalPlacer gp(design, graph, popts);
  const auto res = gp.run();
  m = timer.evaluate(design.cell_x, design.cell_y);
  std::printf("post GP : WNS %8.4f  TNS %10.3f  HPWL %.4g  (%d iters)\n", m.wns,
              m.tns, res.hpwl, res.iterations);
  std::printf("GP phase breakdown (of %.1f s): wirelength %.2f s, density "
              "%.2f s, rsmt %.2f s, sta fwd %.2f s, sta bwd %.2f s, "
              "step %.2f s\n",
              res.runtime_sec, res.phases.wirelength_sec,
              res.phases.density_sec, res.phases.rsmt_sec,
              res.phases.sta_forward_sec, res.phases.sta_backward_sec,
              res.phases.step_sec);

  const auto lg = placer::legalize(design, design.cell_x, design.cell_y);
  std::printf("post LG : %zu unplaced, max disp %.2f um\n", lg.failed_cells,
              lg.max_displacement);

  placer::WirelengthModel wl(design);
  const double gain =
      placer::detailed_place_swaps(design, wl, design.cell_x, design.cell_y);
  m = timer.evaluate(design.cell_x, design.cell_y);
  std::printf("post DP : WNS %8.4f  TNS %10.3f  HPWL %.4g (swap gain %.1f um)\n",
              m.wns, m.tns, wl.hpwl_unweighted(design.cell_x, design.cell_y),
              gain);

  io::write_bookshelf(design, dir);
  std::printf("wrote %s/demo.{aux,nodes,nets,pl,scl}\n", dir.c_str());
  return 0;
}
