// Incremental-STA ECO demo: after full placement + timing, apply small
// engineering-change moves and compare incremental cone re-evaluation
// against from-scratch evaluation — identical metrics, a fraction of the
// runtime.  This is the workflow of the ICCAD 2015 incremental-timing
// contest the benchmark suite originates from.
//
//   ./incremental_eco [num_cells] [num_moves]
#include <cstdio>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "liberty/synth_library.h"
#include "placer/global_placer.h"
#include "placer/legalizer.h"
#include "sta/timer.h"
#include "workload/circuit_gen.h"

int main(int argc, char** argv) {
  using namespace dtp;
  const int num_cells = argc > 1 ? std::atoi(argv[1]) : 4000;
  const int num_moves = argc > 2 ? std::atoi(argv[2]) : 200;

  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  workload::WorkloadOptions wopts;
  wopts.num_cells = num_cells;
  wopts.seed = 31;
  netlist::Design design = workload::generate_design(lib, wopts, "eco");
  sta::TimingGraph graph(design.netlist);

  placer::GlobalPlacerOptions popts;  // wirelength-only is fine for the demo
  placer::GlobalPlacer gp(design, graph, popts);
  gp.run();
  placer::legalize(design, design.cell_x, design.cell_y);

  sta::Timer timer(design, graph);
  Stopwatch full_clock;
  auto m = timer.evaluate(design.cell_x, design.cell_y);
  const double full_ms = full_clock.elapsed_ms();
  std::printf("placed %d cells; full STA %.2f ms  (WNS %.4f, TNS %.3f)\n",
              num_cells, full_ms, m.wns, m.tns);

  // ECO loop: move one random cell a few microns, re-time incrementally.
  std::vector<netlist::CellId> movers;
  for (size_t c = 0; c < design.netlist.num_cells(); ++c)
    if (!design.netlist.cell(static_cast<int>(c)).fixed)
      movers.push_back(static_cast<int>(c));

  Rng rng(5);
  double inc_total_ms = 0.0;
  for (int k = 0; k < num_moves; ++k) {
    const netlist::CellId c = movers[static_cast<size_t>(
        rng.uniform_int(0, static_cast<int64_t>(movers.size()) - 1))];
    design.cell_x[static_cast<size_t>(c)] += rng.uniform(-4.0, 4.0);
    design.cell_y[static_cast<size_t>(c)] += rng.uniform(-4.0, 4.0);
    Stopwatch inc_clock;
    m = timer.evaluate_incremental(design.cell_x, design.cell_y, {{c}});
    inc_total_ms += inc_clock.elapsed_ms();
  }
  std::printf("%d single-cell ECO moves, incremental STA: %.3f ms/move "
              "(%.0fx faster than full)\n",
              num_moves, inc_total_ms / num_moves,
              full_ms / (inc_total_ms / num_moves));

  // Verify the incremental state equals a from-scratch evaluation.
  sta::Timer fresh(design, graph);
  const auto mf = fresh.evaluate(design.cell_x, design.cell_y);
  std::printf("consistency: incremental WNS %.6f vs full %.6f (diff %.2e)\n",
              m.wns, mf.wns, std::abs(m.wns - mf.wns));
  return std::abs(m.wns - mf.wns) < 1e-9 ? 0 : 1;
}
