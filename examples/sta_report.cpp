// Standalone STA usage: build a design, run the exact timer, and print an
// OpenTimer-style report — endpoint slack histogram, the K most critical
// paths with per-pin arrival annotations, and hold-check results.
//
//   ./sta_report [num_cells] [num_paths]
#include <algorithm>
#include <cstdio>

#include "liberty/synth_library.h"
#include "sta/cell_arc_eval.h"
#include "sta/timer.h"
#include "workload/circuit_gen.h"

int main(int argc, char** argv) {
  using namespace dtp;
  const int num_cells = argc > 1 ? std::atoi(argv[1]) : 1500;
  const int num_paths = argc > 2 ? std::atoi(argv[2]) : 3;

  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  workload::WorkloadOptions wopts;
  wopts.num_cells = num_cells;
  wopts.seed = 7;
  wopts.clock_scale = 0.7;
  netlist::Design design = workload::generate_design(lib, wopts, "sta_demo");
  const netlist::Netlist& nl = design.netlist;

  sta::TimingGraph graph(nl);
  sta::TimerOptions topts;
  topts.enable_early = true;  // also run hold analysis
  sta::Timer timer(design, graph, topts);
  const auto m = timer.evaluate(design.cell_x, design.cell_y);
  timer.update_required();

  std::printf("=== timing summary ===\n");
  std::printf("clock period : %.4f ns\n", design.constraints.clock_period);
  std::printf("setup  WNS %9.4f ns   TNS %11.3f ns   violations %zu / %zu\n",
              m.wns, m.tns, m.num_violations, graph.endpoints().size());
  std::printf("hold   WNS %9.4f ns   TNS %11.3f ns\n", m.hold_wns, m.hold_tns);
  std::printf("graph: %d levels, %zu arcs, %zu timing nets\n\n",
              graph.num_levels(), graph.arcs().size(), graph.timing_nets().size());

  // Slack histogram over endpoints.
  std::printf("=== endpoint slack histogram ===\n");
  const auto& slacks = timer.endpoint_slack();
  double lo = 0.0;
  for (double s : slacks)
    if (std::isfinite(s)) lo = std::min(lo, s);
  const int kBuckets = 8;
  std::vector<int> hist(kBuckets, 0);
  const double span = std::max(1e-9, -lo);
  for (double s : slacks) {
    if (!std::isfinite(s)) continue;
    if (s >= 0.0)
      ++hist[kBuckets - 1];
    else
      ++hist[std::min(kBuckets - 2, static_cast<int>(-s / span * (kBuckets - 1)))];
  }
  for (int b = 0; b < kBuckets - 1; ++b) {
    std::printf("[%8.4f, %8.4f) %5d  ", -span * (b + 1) / (kBuckets - 1),
                -span * b / (kBuckets - 1), hist[b]);
    for (int k = 0; k < hist[b] && k < 50; ++k) std::putchar('#');
    std::putchar('\n');
  }
  std::printf("[  >= 0 slack    ) %5d\n\n", hist[kBuckets - 1]);

  // Top-K critical paths.
  std::vector<size_t> order(slacks.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return slacks[a] < slacks[b]; });
  for (int k = 0; k < num_paths && k < static_cast<int>(order.size()); ++k) {
    const auto& ep = graph.endpoints()[order[static_cast<size_t>(k)]];
    std::printf("=== critical path %d (slack %.4f ns, endpoint %s) ===\n", k + 1,
                slacks[order[static_cast<size_t>(k)]],
                nl.pin_full_name(ep.pin).c_str());
    const auto path = timer.trace_critical_path(ep.pin);
    std::printf("  %-28s %-5s %10s %10s %10s\n", "pin", "edge", "AT(ns)",
                "RAT(ns)", "slack(ns)");
    for (const auto& node : path) {
      std::printf("  %-28s %-5s %10.4f %10.4f %10.4f\n",
                  nl.pin_full_name(node.pin).c_str(),
                  node.tr == sta::kRise ? "rise" : "fall", node.at,
                  timer.rat(node.pin, node.tr),
                  timer.rat(node.pin, node.tr) - node.at);
    }
    std::printf("  path depth: %zu pins\n\n", path.size());
  }
  return 0;
}
