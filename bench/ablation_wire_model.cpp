// Ablation of the differentiable wire delay model (paper §3.4.2: the
// framework "is generalizable to other more complex interconnect delay
// models ... as long as the model can be written in analytical form"):
// Elmore (first moment, the paper's model) vs D2M (two-moment metric),
// both optimized through the same adjoint machinery with different seeds,
// each signed off by an Elmore *and* a D2M exact timer.
//
// Flags: --scale N (default 400), --iters N (default 700)
#include <cstdio>

#include "bench_util.h"

using namespace dtp;

int main(int argc, char** argv) {
  const int scale = bench::arg_int(argc, argv, "--scale", 400);
  const int iters = bench::arg_int(argc, argv, "--iters", 700);
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  const auto preset = workload::miniblue_presets()[2];  // miniblue4
  const auto wopts = workload::miniblue_options(preset, scale);

  std::printf("Ablation: differentiable wire delay model "
              "(paper Sec. 3.4.2 extensibility), %s 1/%d\n\n", preset.name, scale);

  bench::RunArtifacts artifacts(argc, argv);
  ConsoleTable t({"optimized with", "WNS@Elmore", "TNS@Elmore", "WNS@D2M",
                  "TNS@D2M", "HPWL", "sec"});
  for (int model = 0; model < 2; ++model) {
    netlist::Design design = workload::generate_design(lib, wopts, preset.name);
    sta::TimingGraph graph(design.netlist);
    placer::GlobalPlacerOptions o;
    o.mode = placer::PlacerMode::DiffTiming;
    o.max_iters = iters;
    o.timing_start_iter = 50;
    o.wire_model =
        model == 0 ? sta::WireDelayModel::Elmore : sta::WireDelayModel::D2M;
    placer::GlobalPlacer gp(design, graph, o);
    Stopwatch clock;
    const auto res = gp.run();
    const double secs = clock.elapsed_sec();
    artifacts.add(res, preset.name, placer::PlacerMode::DiffTiming);

    sta::TimerOptions elm_opts;
    sta::Timer elm(design, graph, elm_opts);
    const auto m_elm = elm.evaluate(design.cell_x, design.cell_y);
    sta::TimerOptions d2m_opts;
    d2m_opts.wire_model = sta::WireDelayModel::D2M;
    sta::Timer d2m(design, graph, d2m_opts);
    const auto m_d2m = d2m.evaluate(design.cell_x, design.cell_y);

    t.add_row({model == 0 ? "Elmore (paper)" : "D2M", fmt(m_elm.wns, 4),
               fmt(m_elm.tns, 2), fmt(m_d2m.wns, 4), fmt(m_d2m.tns, 2),
               fmt(res.hpwl * 1e-3, 3), fmt(secs, 2)});
  }
  t.print();
  std::printf("\n(Each flow optimizes its own model; both are signed off under "
              "both models.  D2M's smaller wire delays relax the apparent\n"
              "violations, so the D2M-driven flow concentrates effort on "
              "cell-delay-dominated paths.)\n");
  artifacts.finish();
  return 0;
}
