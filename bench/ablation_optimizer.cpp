// Ablation of the placement optimizer: Nesterov-BB (the ePlace/DREAMPlace
// scheme the paper runs on) versus Adam, in wirelength-only and
// differentiable-timing modes.
//
// Flags: --scale N (default 400), --iters N (default 700)
#include <cstdio>

#include "bench_util.h"

using namespace dtp;

int main(int argc, char** argv) {
  const int scale = bench::arg_int(argc, argv, "--scale", 400);
  const int iters = bench::arg_int(argc, argv, "--iters", 700);
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  const auto preset = workload::miniblue_presets()[2];  // miniblue4
  const auto wopts = workload::miniblue_options(preset, scale);

  std::printf("Ablation: optimizer (Nesterov-BB vs Adam), %s 1/%d\n\n",
              preset.name, scale);
  bench::RunArtifacts artifacts(argc, argv);
  ConsoleTable t({"optimizer", "mode", "final WNS", "final TNS", "HPWL",
                  "overflow", "iters", "sec"});
  for (int timing = 0; timing < 2; ++timing) {
    for (int adam = 0; adam < 2; ++adam) {
      placer::GlobalPlacerOptions o;
      o.max_iters = iters;
      o.timing_start_iter = 50;
      o.use_adam = adam != 0;
      const placer::PlacerMode mode = timing
                                          ? placer::PlacerMode::DiffTiming
                                          : placer::PlacerMode::WirelengthOnly;
      const auto res = bench::run_flow(lib, wopts, preset.name, mode, o);
      artifacts.add(res.place, preset.name, mode);
      t.add_row({adam ? "Adam" : "Nesterov-BB",
                 timing ? "diff-timing" : "wirelength",
                 fmt(res.timing.wns, 4), fmt(res.timing.tns, 2),
                 fmt(res.place.hpwl * 1e-3, 3), fmt(res.place.overflow, 3),
                 fmt_int(res.place.iterations), fmt(res.runtime_sec, 2)});
    }
  }
  t.print();
  artifacts.finish();
  return 0;
}
