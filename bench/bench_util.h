// Shared helpers for the table/figure reproduction benches.
#pragma once

#include <cstring>
#include <string>

#include "common/stopwatch.h"
#include "common/table.h"
#include "liberty/synth_library.h"
#include "placer/global_placer.h"
#include "placer/legalizer.h"
#include "sta/timer.h"
#include "workload/circuit_gen.h"

namespace dtp::bench {

struct FlowResult {
  placer::PlaceResult place;
  sta::TimingMetrics timing;  // exact STA at the final placement
  double runtime_sec = 0.0;   // GP runtime (excludes final signoff STA)
};

// Generates the design fresh (same seed => same initial state across modes),
// runs global placement in the given mode and signs off with the exact timer.
inline FlowResult run_flow(const liberty::CellLibrary& lib,
                           const workload::WorkloadOptions& wopts,
                           const std::string& name, placer::PlacerMode mode,
                           placer::GlobalPlacerOptions popts) {
  netlist::Design design = workload::generate_design(lib, wopts, name);
  sta::TimingGraph graph(design.netlist);
  popts.mode = mode;
  placer::GlobalPlacer gp(design, graph, popts);
  Stopwatch clock;
  FlowResult result;
  result.place = gp.run();
  result.runtime_sec = clock.elapsed_sec();
  sta::Timer signoff(design, graph);
  result.timing = signoff.evaluate(design.cell_x, design.cell_y);
  return result;
}

// Simple --flag value argument scanning.
inline int arg_int(int argc, char** argv, const char* flag, int fallback) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return std::atoi(argv[i + 1]);
  return fallback;
}

inline double arg_double(int argc, char** argv, const char* flag,
                         double fallback) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return std::atof(argv[i + 1]);
  return fallback;
}

inline bool arg_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return true;
  return false;
}

}  // namespace dtp::bench
