// Shared helpers for the table/figure reproduction benches.
#pragma once

#include <cstring>
#include <string>

#include "common/cli.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "liberty/synth_library.h"
#include "obs/jsonl.h"
#include "obs/trace.h"
#include "placer/global_placer.h"
#include "placer/legalizer.h"
#include "placer/run_report.h"
#include "sta/timer.h"
#include "workload/circuit_gen.h"

namespace dtp::bench {

struct FlowResult {
  placer::PlaceResult place;
  sta::TimingMetrics timing;  // exact STA at the final placement
  double runtime_sec = 0.0;   // GP runtime (excludes final signoff STA)
};

// Generates the design fresh (same seed => same initial state across modes),
// runs global placement in the given mode and signs off with the exact timer.
inline FlowResult run_flow(const liberty::CellLibrary& lib,
                           const workload::WorkloadOptions& wopts,
                           const std::string& name, placer::PlacerMode mode,
                           placer::GlobalPlacerOptions popts) {
  netlist::Design design = workload::generate_design(lib, wopts, name);
  sta::TimingGraph graph(design.netlist);
  popts.mode = mode;
  placer::GlobalPlacer gp(design, graph, popts);
  Stopwatch clock;
  FlowResult result;
  result.place = gp.run();
  result.runtime_sec = clock.elapsed_sec();
  sta::Timer signoff(design, graph);
  result.timing = signoff.evaluate(design.cell_x, design.cell_y);
  return result;
}

// --flag value argument scanning, shared with the CLI tools (common/cli.h).
using cli::arg_double;
using cli::arg_flag;
using cli::arg_int;
using cli::arg_str;

// --trace-out / --metrics-out handling shared by the table/figure benches:
// construct at startup (enables tracing if requested), call add() after each
// placement run, and finish() once at the end to flush the artifacts —
// the same formats dtp_place emits, so paper tables regenerate with
// attributable per-kernel timings.
class RunArtifacts {
 public:
  RunArtifacts(int argc, char** argv) {
    trace_path_ = arg_str(argc, argv, "--trace-out", nullptr);
    const char* metrics_path = arg_str(argc, argv, "--metrics-out", nullptr);
    if (trace_path_ != nullptr) obs::Tracer::instance().enable();
    if (metrics_path != nullptr) {
      if (!jsonl_.open(metrics_path)) {
        std::fprintf(stderr, "cannot write %s\n", metrics_path);
        std::exit(1);
      }
      metrics_path_ = metrics_path;
    }
  }

  void add(const placer::PlaceResult& result, const std::string& design,
           placer::PlacerMode mode) {
    if (!jsonl_.is_open()) return;
    const placer::RunMeta meta{design, placer::mode_short_name(mode)};
    placer::append_run_jsonl(jsonl_, result, meta);
    results_.push_back(result);
    metas_.push_back(meta);
  }

  void finish() {
    if (jsonl_.is_open()) {
      const std::string summary = placer::summary_path_for(metrics_path_);
      placer::write_summary_json(summary, results_, metas_);
      std::fprintf(stderr, "wrote %s and %s\n", metrics_path_.c_str(),
                   summary.c_str());
      jsonl_.close();
      results_.clear();
      metas_.clear();
    }
    if (trace_path_ != nullptr) {
      obs::Tracer::instance().disable();
      obs::Tracer::instance().write_json(trace_path_);
      std::fprintf(stderr, "wrote %s (%zu spans)\n", trace_path_,
                   obs::Tracer::instance().num_events());
    }
  }

 private:
  const char* trace_path_ = nullptr;
  std::string metrics_path_;
  obs::JsonlWriter jsonl_;
  std::vector<placer::PlaceResult> results_;
  std::vector<placer::RunMeta> metas_;
};

}  // namespace dtp::bench
