// Kernel microbenchmarks (google-benchmark): the per-iteration building
// blocks of the flow — LUT interpolation, LSE aggregation, RSMT construction,
// Elmore forward + adjoint, full STA forward and backward, WA wirelength,
// density splat + spectral Poisson solve.  The paper's §3.6 argues overall
// efficiency from exactly these kernels (there as CUDA launches).
#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/smooth_math.h"
#include "dtimer/diff_timer.h"
#include "dtimer/elmore_grad.h"
#include "liberty/synth_library.h"
#include "placer/density.h"
#include "placer/wirelength.h"
#include "rsmt/rsmt_builder.h"
#include "sta/net_timing.h"
#include "workload/circuit_gen.h"

namespace {

using namespace dtp;

const liberty::CellLibrary& library() {
  static const liberty::CellLibrary lib = liberty::make_synthetic_library();
  return lib;
}

netlist::Design make_design(int cells, uint64_t seed = 9001) {
  workload::WorkloadOptions opts;
  opts.num_cells = cells;
  opts.seed = seed;
  return workload::generate_design(library(), opts);
}

void BM_LutLookupGrad(benchmark::State& state) {
  const auto& lib = library();
  const auto& arc = lib.cell(lib.find_cell("NAND2_X1")).arcs[0];
  Rng rng(1);
  std::vector<std::pair<double, double>> queries(1024);
  for (auto& q : queries) q = {rng.uniform(0.002, 0.6), rng.uniform(0.001, 0.25)};
  size_t i = 0;
  for (auto _ : state) {
    const auto& [s, l] = queries[i++ & 1023];
    benchmark::DoNotOptimize(arc.cell_rise.lookup_grad(s, l));
  }
}
BENCHMARK(BM_LutLookupGrad);

void BM_SmoothMax(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(2);
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.uniform(-1.0, 1.0);
  std::vector<double> w;
  for (auto _ : state) benchmark::DoNotOptimize(smooth_max(xs, 0.05, w));
}
BENCHMARK(BM_SmoothMax)->Arg(2)->Arg(8)->Arg(64);

void BM_RsmtBuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  std::vector<Vec2> pins(static_cast<size_t>(n));
  for (auto& p : pins) p = {rng.uniform(0, 200), rng.uniform(0, 200)};
  for (auto _ : state) benchmark::DoNotOptimize(rsmt::build_rsmt(pins, 0));
}
BENCHMARK(BM_RsmtBuild)->Arg(2)->Arg(3)->Arg(6)->Arg(12);

void BM_ElmoreForward(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(4);
  std::vector<Vec2> pins(static_cast<size_t>(n));
  for (auto& p : pins) p = {rng.uniform(0, 200), rng.uniform(0, 200)};
  sta::NetTiming nt;
  nt.tree = rsmt::build_rsmt(pins, 0);
  std::vector<double> caps(static_cast<size_t>(n), 0.004);
  caps[0] = 0.0;
  for (auto _ : state) {
    sta::elmore_forward(nt, caps, 4e-4, 2e-4);
    benchmark::DoNotOptimize(nt.root_load());
  }
}
BENCHMARK(BM_ElmoreForward)->Arg(2)->Arg(6)->Arg(12);

void BM_ElmoreBackward(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(5);
  std::vector<Vec2> pins(static_cast<size_t>(n));
  for (auto& p : pins) p = {rng.uniform(0, 200), rng.uniform(0, 200)};
  sta::NetTiming nt;
  nt.tree = rsmt::build_rsmt(pins, 0);
  std::vector<double> caps(static_cast<size_t>(n), 0.004);
  caps[0] = 0.0;
  sta::elmore_forward(nt, caps, 4e-4, 2e-4);
  const size_t m = nt.tree.num_nodes();
  std::vector<double> gd(m, 0.1), gi(m, 0.1), gx(m), gy(m);
  for (auto _ : state) {
    std::fill(gx.begin(), gx.end(), 0.0);
    std::fill(gy.begin(), gy.end(), 0.0);
    dtimer::elmore_backward(nt, gd, gi, 0.5, 4e-4, 2e-4, gx, gy);
    benchmark::DoNotOptimize(gx[0]);
  }
}
BENCHMARK(BM_ElmoreBackward)->Arg(2)->Arg(6)->Arg(12);

void BM_StaForward(benchmark::State& state) {
  auto design = make_design(static_cast<int>(state.range(0)));
  sta::TimingGraph graph(design.netlist);
  sta::TimerOptions topts;
  topts.mode = sta::AggMode::Smooth;
  sta::Timer timer(design, graph, topts);
  timer.update_positions(design.cell_x, design.cell_y);
  timer.build_trees();
  for (auto _ : state) {
    timer.run_elmore();
    timer.propagate();
    timer.update_slacks();
    benchmark::DoNotOptimize(timer.metrics().tns_smooth);
  }
  state.SetLabel(std::to_string(graph.num_levels()) + " levels");
}
BENCHMARK(BM_StaForward)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

void BM_StaBackward(benchmark::State& state) {
  auto design = make_design(static_cast<int>(state.range(0)));
  design.constraints.clock_period *= 0.6;  // violations => dense seeds
  sta::TimingGraph graph(design.netlist);
  dtimer::DiffTimer dt(design, graph);
  dt.forward(design.cell_x, design.cell_y, true);
  std::vector<double> gx(design.cell_x.size()), gy(design.cell_y.size());
  for (auto _ : state) {
    std::fill(gx.begin(), gx.end(), 0.0);
    std::fill(gy.begin(), gy.end(), 0.0);
    dt.backward(1.0, 0.01, gx, gy);
    benchmark::DoNotOptimize(gx[0]);
  }
}
BENCHMARK(BM_StaBackward)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

void BM_WirelengthGradient(benchmark::State& state) {
  auto design = make_design(static_cast<int>(state.range(0)));
  placer::WirelengthModel wl(design);
  wl.set_gamma(1.0);
  std::vector<double> gx(design.cell_x.size()), gy(design.cell_y.size());
  for (auto _ : state) {
    std::fill(gx.begin(), gx.end(), 0.0);
    std::fill(gy.begin(), gy.end(), 0.0);
    benchmark::DoNotOptimize(
        wl.value_and_gradient(design.cell_x, design.cell_y, gx, gy));
  }
}
BENCHMARK(BM_WirelengthGradient)->Arg(4000)->Unit(benchmark::kMillisecond);

void BM_DensityUpdate(benchmark::State& state) {
  auto design = make_design(4000);
  placer::DensityModel dm(design, static_cast<int>(state.range(0)), 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dm.update(design.cell_x, design.cell_y).overflow);
  }
  state.SetLabel("bins " + std::to_string(state.range(0)) + "^2");
}
BENCHMARK(BM_DensityUpdate)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

void BM_FullTimingIteration(benchmark::State& state) {
  // One complete differentiable-timing iteration: forward (with Steiner drag)
  // + backward — the paper's per-iteration timing cost.
  auto design = make_design(static_cast<int>(state.range(0)));
  design.constraints.clock_period *= 0.6;
  sta::TimingGraph graph(design.netlist);
  dtimer::DiffTimer dt(design, graph);
  dt.forward(design.cell_x, design.cell_y, true);
  std::vector<double> gx(design.cell_x.size()), gy(design.cell_y.size());
  for (auto _ : state) {
    dt.forward(design.cell_x, design.cell_y);
    std::fill(gx.begin(), gx.end(), 0.0);
    std::fill(gy.begin(), gy.end(), 0.0);
    dt.backward(1.0, 0.01, gx, gy);
    benchmark::DoNotOptimize(gx[0]);
  }
}
BENCHMARK(BM_FullTimingIteration)->Arg(4000)->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): peel off the repo's shared
// artifact flags (--trace-out / --metrics-out, see bench_util.h) before
// google-benchmark sees argv — it rejects flags it does not know — then
// flush the trace + metrics-registry artifacts after the run.
int main(int argc, char** argv) {
  dtp::bench::RunArtifacts artifacts(argc, argv);
  std::vector<char*> bench_argv;
  for (int i = 0; i < argc; ++i) {
    const bool artifact_flag = std::strcmp(argv[i], "--trace-out") == 0 ||
                               std::strcmp(argv[i], "--metrics-out") == 0;
    if (artifact_flag && i + 1 < argc) {
      ++i;  // skip the flag's value too
      continue;
    }
    bench_argv.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  artifacts.finish();
  return 0;
}
