// Exploration of the paper's stated future work (§5): "preconditioning for
// timing gradients" and "dynamic updating strategies for timing weights".
// Sweeps the two preconditioning mechanisms this placer implements —
//
//   scale policy : timing-gradient magnitude normalization frozen at
//                  activation (pressure decays with violations) vs
//                  re-normalized every iteration (constant pressure), and
//   trust region : per-cell clip of the timing gradient at t_clip x the
//                  local WL+density gradient,
//
// reporting the timing-quality / wirelength-cost frontier each point buys.
//
// Flags: --scale N (default 400), --iters N (default 700)
#include <cstdio>

#include "bench_util.h"

using namespace dtp;

int main(int argc, char** argv) {
  const int scale = bench::arg_int(argc, argv, "--scale", 400);
  const int iters = bench::arg_int(argc, argv, "--iters", 700);
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  const auto preset = workload::miniblue_presets()[2];  // miniblue4
  const auto wopts = workload::miniblue_options(preset, scale);

  std::printf("Ablation: timing-gradient preconditioning "
              "(paper Sec. 5 future work), %s 1/%d\n\n", preset.name, scale);

  // Wirelength-only reference for the HPWL cost column.
  bench::RunArtifacts artifacts(argc, argv);
  placer::GlobalPlacerOptions base;
  base.max_iters = iters;
  base.timing_start_iter = 50;
  const auto ref = bench::run_flow(lib, wopts, preset.name,
                                   placer::PlacerMode::WirelengthOnly, base);
  artifacts.add(ref.place, preset.name, placer::PlacerMode::WirelengthOnly);
  std::printf("wirelength-only reference: WNS %.4f  TNS %.2f  HPWL %.3f\n\n",
              ref.timing.wns, ref.timing.tns, ref.place.hpwl * 1e-3);

  ConsoleTable t({"scale policy", "t_clip", "WNS", "TNS", "HPWL",
                  "HPWL cost %", "TNS gain %"});
  for (int frozen = 1; frozen >= 0; --frozen) {
    for (double clip : {0.0, 2.0, 4.0, 8.0}) {
      placer::GlobalPlacerOptions o = base;
      o.timing_scale_at_activation = frozen != 0;
      o.t_clip = clip;
      const auto res = bench::run_flow(lib, wopts, preset.name,
                                       placer::PlacerMode::DiffTiming, o);
      artifacts.add(res.place, preset.name, placer::PlacerMode::DiffTiming);
      t.add_row({frozen ? "at-activation" : "per-iteration",
                 clip == 0.0 ? "off" : fmt(clip, 1), fmt(res.timing.wns, 4),
                 fmt(res.timing.tns, 2), fmt(res.place.hpwl * 1e-3, 3),
                 fmt(100.0 * (res.place.hpwl / ref.place.hpwl - 1.0), 2),
                 fmt(100.0 * (1.0 - res.timing.tns / ref.timing.tns), 2)});
    }
  }
  t.print();
  std::printf("\n(Default shipped configuration: at-activation scaling with "
              "t_clip = 4 — the knee of this frontier on the miniblue suite.)\n");
  artifacts.finish();
  return 0;
}
