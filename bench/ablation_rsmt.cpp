// Ablation of the RSMT generator (paper §3.4.1: "FLUTE can be replaced by
// other RSMT generation algorithms in our framework"): plain rectilinear MST
// versus iterated-1-Steiner-refined trees — wirelength quality, timer impact,
// and construction cost.
//
// Flags: --nets N (default 20000 random nets for the quality sweep)
#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "rsmt/rsmt_builder.h"

using namespace dtp;

int main(int argc, char** argv) {
  const int num_nets = bench::arg_int(argc, argv, "--nets", 20000);
  Rng rng(12345);

  // Part 1: tree-length quality by net degree.
  std::printf("Ablation: RSMT construction (paper Sec. 3.4.1)\n\n");
  std::printf("-- tree length vs plain RMST over %d random nets --\n", num_nets);
  ConsoleTable t({"degree", "nets", "avg RMST len", "avg RSMT len", "saving %",
                  "us/net RMST", "us/net RSMT"});
  for (int degree : {3, 4, 6, 8, 12, 16}) {
    double len_rmst = 0.0, len_rsmt = 0.0;
    const int n = num_nets / degree;
    std::vector<std::vector<Vec2>> nets(static_cast<size_t>(n));
    for (auto& pins : nets) {
      pins.resize(static_cast<size_t>(degree));
      for (auto& p : pins) p = {rng.uniform(0, 100), rng.uniform(0, 100)};
    }
    Stopwatch c1;
    for (const auto& pins : nets) len_rmst += rsmt::build_rmst(pins, 0).length();
    const double t_rmst = c1.elapsed_sec();
    Stopwatch c2;
    for (const auto& pins : nets) len_rsmt += rsmt::build_rsmt(pins, 0).length();
    const double t_rsmt = c2.elapsed_sec();
    t.add_row({fmt_int(degree), fmt_int(n), fmt(len_rmst / n, 2),
               fmt(len_rsmt / n, 2), fmt(100.0 * (1.0 - len_rsmt / len_rmst), 2),
               fmt(1e6 * t_rmst / n, 2), fmt(1e6 * t_rsmt / n, 2)});
  }
  t.print();

  // Part 2: end-to-end placement with and without 1-Steiner refinement.
  std::printf("\n-- full diff-timing placement, refined trees vs plain RMST --\n");
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  const auto preset = workload::miniblue_presets()[2];
  const auto wopts = workload::miniblue_options(preset, 400);
  bench::RunArtifacts artifacts(argc, argv);
  ConsoleTable t2({"trees", "final WNS", "final TNS", "HPWL", "GP sec"});
  for (int refined = 1; refined >= 0; --refined) {
    placer::GlobalPlacerOptions o;
    o.max_iters = 600;
    o.timing_start_iter = 50;
    o.mode = placer::PlacerMode::DiffTiming;
    o.rsmt.enable_1steiner = refined != 0;
    netlist::Design design = workload::generate_design(lib, wopts, preset.name);
    sta::TimingGraph graph(design.netlist);
    placer::GlobalPlacer gp(design, graph, o);
    const auto res = gp.run();
    artifacts.add(res, preset.name, placer::PlacerMode::DiffTiming);
    sta::Timer signoff(design, graph);
    const auto m = signoff.evaluate(design.cell_x, design.cell_y);
    t2.add_row({refined ? "1-Steiner refined" : "plain RMST", fmt(m.wns, 4),
                fmt(m.tns, 2), fmt(res.hpwl * 1e-3, 3), fmt(res.runtime_sec, 2)});
  }
  t2.print();
  artifacts.finish();
  return 0;
}
