// Ablation of the Steiner-tree reuse period (paper §3.6): the paper calls
// FLUTE every 10 iterations and drags Steiner points in between, trading a
// small gradient-accuracy loss for a large CPU-kernel saving.  This bench
// sweeps the rebuild period and reports quality and the timing-engine share
// of runtime.
//
// Flags: --scale N (default 400), --iters N (default 600)
#include <cstdio>

#include "bench_util.h"

using namespace dtp;

int main(int argc, char** argv) {
  const int scale = bench::arg_int(argc, argv, "--scale", 400);
  const int iters = bench::arg_int(argc, argv, "--iters", 600);
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  const auto preset = workload::miniblue_presets()[2];  // miniblue4
  const auto wopts = workload::miniblue_options(preset, scale);

  std::printf("Ablation: Steiner rebuild period (paper Sec. 3.6), %s 1/%d\n",
              preset.name, scale);
  std::printf("period 1 = rebuild every iteration (no drag); larger periods "
              "drag Steiner points with their branch pins between rebuilds.\n\n");

  bench::RunArtifacts artifacts(argc, argv);
  ConsoleTable t({"period", "final WNS", "final TNS", "HPWL", "GP sec",
                  "timing sec"});
  for (int period : {1, 2, 5, 10, 20, 40}) {
    placer::GlobalPlacerOptions popts;
    popts.max_iters = iters;
    popts.timing_start_iter = 50;
    popts.steiner_period = period;
    const auto res = bench::run_flow(lib, wopts, preset.name,
                                     placer::PlacerMode::DiffTiming, popts);
    artifacts.add(res.place, preset.name, placer::PlacerMode::DiffTiming);
    t.add_row({fmt_int(period), fmt(res.timing.wns, 4), fmt(res.timing.tns, 2),
               fmt(res.place.hpwl * 1e-3, 3), fmt(res.runtime_sec, 2),
               fmt(res.place.sta_runtime_sec, 2)});
  }
  t.print();
  std::printf("\n(The paper's period of 10 sits where quality is flat but the "
              "rebuild cost has collapsed.)\n");
  artifacts.finish();
  return 0;
}
