// Reproduces paper Table 3: WNS, TNS, HPWL and runtime of
//   DREAMPlace [16]        -> PlacerMode::WirelengthOnly
//   Net Weighting [24]     -> PlacerMode::NetWeighting
//   Ours (differentiable)  -> PlacerMode::DiffTiming
// on the eight miniblue designs (the superblue suite scaled per DESIGN.md),
// plus the Avg. Ratio row and the abstract's headline numbers (best WNS/TNS
// improvement over net weighting, runtime speed-up).
//
// Flags: --scale N   superblue-cells / N per design  (default 200)
//        --iters N   max GP iterations               (default 900)
//        --quick     tiny run for smoke testing (scale 2000, 2 designs)
//        --trace-out F / --metrics-out F   observability artifacts (the same
//        Chrome-trace / JSONL formats dtp_place emits; records carry
//        design+mode fields so all 24 runs share one stream)
#include <cstdio>
#include <vector>

#include "bench_util.h"

using namespace dtp;

namespace {

struct Row {
  std::string name;
  bench::FlowResult res[3];  // [mode]
};

placer::GlobalPlacerOptions placer_options(int argc, char** argv, int max_iters) {
  placer::GlobalPlacerOptions o;
  o.max_iters = max_iters;
  o.timing_start_iter = bench::arg_int(argc, argv, "--tstart", o.timing_start_iter);
  o.timing_start_overflow =
      bench::arg_double(argc, argv, "--ovfgate", o.timing_start_overflow);
  o.t1 = bench::arg_double(argc, argv, "--t1", o.t1);
  o.t2_ratio = bench::arg_double(argc, argv, "--t2ratio", o.t2_ratio);
  o.t_growth = bench::arg_double(argc, argv, "--tgrowth", o.t_growth);
  o.t_max = bench::arg_double(argc, argv, "--tmax", o.t_max);
  o.t_clip = bench::arg_double(argc, argv, "--tclip", o.t_clip);
  o.lambda_mu = bench::arg_double(argc, argv, "--mu", o.lambda_mu);
  o.nw_period = bench::arg_int(argc, argv, "--nwperiod", o.nw_period);
  o.nw.beta = bench::arg_double(argc, argv, "--nwbeta", o.nw.beta);
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  bench::RunArtifacts artifacts(argc, argv);
  const bool quick = bench::arg_flag(argc, argv, "--quick");
  const int scale = bench::arg_int(argc, argv, "--scale", quick ? 2000 : 200);
  const int iters = bench::arg_int(argc, argv, "--iters", quick ? 400 : 900);

  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  auto presets = workload::miniblue_presets();
  if (quick) presets.resize(2);
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--only") == 0) {
      const std::string want = argv[i + 1];
      std::erase_if(presets, [&](const auto& p) { return want != p.name; });
    }
  }

  const char* mode_names[3] = {"DREAMPlace [16] (WL-only)",
                               "Net Weighting [24]", "Ours (diff-timing)"};
  const placer::PlacerMode modes[3] = {placer::PlacerMode::WirelengthOnly,
                                       placer::PlacerMode::NetWeighting,
                                       placer::PlacerMode::DiffTiming};

  std::printf("Table 3: timing-driven global placement comparison "
              "(miniblue suite, scale 1/%d)\n", scale);
  std::printf("WNS/TNS in ns (signoff STA at the GP result); HPWL in mm; "
              "runtime in seconds.\n\n");

  std::vector<Row> rows;
  for (const auto& preset : presets) {
    Row row;
    row.name = preset.name;
    const auto wopts = workload::miniblue_options(preset, scale);
    for (int m = 0; m < 3; ++m) {
      row.res[m] =
          bench::run_flow(lib, wopts, preset.name, modes[m],
                          placer_options(argc, argv, iters));
      artifacts.add(row.res[m].place, preset.name, modes[m]);
      std::fprintf(stderr, "[table3] %-11s %-26s wns %8.4f  tns %10.3f  "
                   "hpwl %8.3f  %6.1fs (%d iters)\n",
                   preset.name, mode_names[m],
                   row.res[m].timing.wns, row.res[m].timing.tns,
                   row.res[m].place.hpwl * 1e-3, row.res[m].runtime_sec,
                   row.res[m].place.iterations);
    }
    rows.push_back(std::move(row));
  }

  ConsoleTable table({"Benchmark", "WNS[16]", "TNS[16]", "HPWL[16]", "T[16]",
                      "WNS[24]", "TNS[24]", "HPWL[24]", "T[24]", "WNS*",
                      "TNS*", "HPWL*", "T*"});
  // Avg ratios vs. ours (paper's normalization: ours = 1.000).
  double ratio[3][4] = {};  // [mode][wns,tns,hpwl,time]
  int wns_cnt = 0, tns_cnt = 0;
  for (const Row& row : rows) {
    std::vector<std::string> cells{row.name};
    for (int m = 0; m < 3; ++m) {
      cells.push_back(fmt(row.res[m].timing.wns, 4));
      cells.push_back(fmt(row.res[m].timing.tns, 3));
      cells.push_back(fmt(row.res[m].place.hpwl * 1e-3, 3));
      cells.push_back(fmt(row.res[m].runtime_sec, 1));
    }
    table.add_row(std::move(cells));
    const auto& ours = row.res[2];
    for (int m = 0; m < 3; ++m) {
      if (ours.timing.wns < 0 && row.res[m].timing.wns < 0) {
        ratio[m][0] += row.res[m].timing.wns / ours.timing.wns;
      }
      if (ours.timing.tns < 0 && row.res[m].timing.tns < 0)
        ratio[m][1] += row.res[m].timing.tns / ours.timing.tns;
      ratio[m][2] += row.res[m].place.hpwl / ours.place.hpwl;
      ratio[m][3] += row.res[m].runtime_sec / ours.runtime_sec;
    }
    ++wns_cnt;
    ++tns_cnt;
  }
  {
    std::vector<std::string> avg{"Avg.Ratio"};
    const double n = static_cast<double>(rows.size());
    for (int m = 0; m < 3; ++m) {
      avg.push_back(fmt(ratio[m][0] / n, 3));
      avg.push_back(fmt(ratio[m][1] / n, 3));
      avg.push_back(fmt(ratio[m][2] / n, 3));
      avg.push_back(fmt(ratio[m][3] / n, 3));
    }
    table.add_rule();
    table.add_row(std::move(avg));
  }
  table.print();

  // Headline numbers (abstract): best improvement over net weighting [24].
  double best_wns_impr = 0.0, best_tns_impr = 0.0;
  const char* best_wns_design = "-";
  const char* best_tns_design = "-";
  double speedup = 0.0;
  for (const Row& row : rows) {
    const auto& nw = row.res[1];
    const auto& ours = row.res[2];
    if (nw.timing.wns < 0 && ours.timing.wns < 0) {
      const double impr = (ours.timing.wns - nw.timing.wns) / -nw.timing.wns;
      if (impr > best_wns_impr) {
        best_wns_impr = impr;
        best_wns_design = row.name.c_str();
      }
    }
    if (nw.timing.tns < 0 && ours.timing.tns < 0) {
      const double impr = (ours.timing.tns - nw.timing.tns) / -nw.timing.tns;
      if (impr > best_tns_impr) {
        best_tns_impr = impr;
        best_tns_design = row.name.c_str();
      }
    }
    speedup += nw.runtime_sec / ours.runtime_sec;
  }
  speedup /= static_cast<double>(rows.size());
  std::printf("\nHeadline vs net weighting [24]:\n");
  std::printf("  best WNS improvement: %.1f%% (%s)   [paper: 32.7%%]\n",
              100.0 * best_wns_impr, best_wns_design);
  std::printf("  best TNS improvement: %.1f%% (%s)   [paper: 59.1%%]\n",
              100.0 * best_tns_impr, best_tns_design);
  std::printf("  average speed-up:     %.2fx          [paper: 1.80x]\n", speedup);
  artifacts.finish();
  return 0;
}
