// Reproduces paper Figure 8: HPWL, density overflow, WNS and TNS along the
// placement iterations of miniblue4, for the wirelength-only baseline (blue
// curve in the paper) and the differentiable-timing flow (orange curve).
//
// Emits fig8_curves.csv with the full per-iteration series and prints a
// down-sampled table plus the two qualitative checks the figure makes:
// the HPWL/overflow curves of the two flows nearly coincide, while the
// WNS/TNS curves separate after timing activation.
//
// Flags: --scale N (default 200), --iters N (default 900), --probe N (10),
//        --trace-out F / --metrics-out F (observability artifacts, same
//        formats as dtp_place).
#include <cstdio>

#include "bench_util.h"

using namespace dtp;

int main(int argc, char** argv) {
  bench::RunArtifacts artifacts(argc, argv);
  const int scale = bench::arg_int(argc, argv, "--scale", 200);
  const int iters = bench::arg_int(argc, argv, "--iters", 900);
  const int probe = bench::arg_int(argc, argv, "--probe", 10);

  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  const auto preset = workload::miniblue_presets()[2];  // miniblue4 (paper's pick)
  const auto wopts = workload::miniblue_options(preset, scale);

  placer::PlaceResult runs[2];
  const placer::PlacerMode modes[2] = {placer::PlacerMode::WirelengthOnly,
                                       placer::PlacerMode::DiffTiming};
  for (int m = 0; m < 2; ++m) {
    netlist::Design design = workload::generate_design(lib, wopts, preset.name);
    sta::TimingGraph graph(design.netlist);
    placer::GlobalPlacerOptions o;
    o.mode = modes[m];
    o.max_iters = iters;
    o.timing_start_iter = 100;
    o.probe_timing_every = probe;  // exact STA probes for the curves
    placer::GlobalPlacer gp(design, graph, o);
    runs[m] = gp.run();
    artifacts.add(runs[m], preset.name, modes[m]);
    std::fprintf(stderr, "[fig8] %s: %d iterations, final hpwl %.4g\n",
                 m == 0 ? "wirelength-only" : "diff-timing", runs[m].iterations,
                 runs[m].hpwl);
  }

  // CSV: iter, then (hpwl, overflow, wns, tns) per flow; timing columns carry
  // the most recent probe value (step curve).
  CsvWriter csv("fig8_curves.csv",
                {"iter", "hpwl_base", "overflow_base", "wns_base", "tns_base",
                 "hpwl_ours", "overflow_ours", "wns_ours", "tns_ours"});
  const size_t n =
      std::min(runs[0].history.size(), runs[1].history.size());
  double wns[2] = {0, 0}, tns[2] = {0, 0};
  ConsoleTable table({"iter", "HPWL base", "HPWL ours", "ovfl base", "ovfl ours",
                      "WNS base", "WNS ours", "TNS base", "TNS ours"});
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> row{static_cast<double>(i)};
    for (int m = 0; m < 2; ++m) {
      const auto& log = runs[m].history[i];
      if (log.has_timing) {
        wns[m] = log.wns;
        tns[m] = log.tns;
      }
      row.push_back(log.hpwl);
      row.push_back(log.overflow);
      row.push_back(wns[m]);
      row.push_back(tns[m]);
    }
    // Reorder to the CSV header layout (iter already first).
    csv.write_row(row);
    if (i % std::max<size_t>(1, n / 18) == 0 || i + 1 == n) {
      table.add_row({fmt_int(static_cast<long long>(i)),
                     fmt(runs[0].history[i].hpwl, 0), fmt(runs[1].history[i].hpwl, 0),
                     fmt(runs[0].history[i].overflow, 3),
                     fmt(runs[1].history[i].overflow, 3), fmt(wns[0], 4),
                     fmt(wns[1], 4), fmt(tns[0], 2), fmt(tns[1], 2)});
    }
  }
  std::printf("Figure 8: optimization iterations for %s (full series in "
              "fig8_curves.csv)\n\n", preset.name);
  table.print();

  // Qualitative checks from the figure.
  const double hpwl_gap =
      std::abs(runs[1].hpwl - runs[0].hpwl) / runs[0].hpwl;
  std::printf("\nfinal HPWL gap ours vs baseline: %.2f%%  "
              "[paper: curves overlap]\n", 100.0 * hpwl_gap);
  std::printf("final WNS  base %.4f  ours %.4f   [paper: ours better]\n",
              wns[0], wns[1]);
  std::printf("final TNS  base %.3f  ours %.3f   [paper: ours better]\n",
              tns[0], tns[1]);
  artifacts.finish();
  return 0;
}
