// Reproduces paper Table 2: benchmark statistics (#cells, #nets, #pins) of
// the miniblue suite, next to the superblue counts they are scaled from.
//
// Flags: --scale N (default 200, matching table3_comparison).
#include <cstdio>

#include "bench_util.h"

using namespace dtp;

int main(int argc, char** argv) {
  const int scale = bench::arg_int(argc, argv, "--scale", 200);
  const liberty::CellLibrary lib = liberty::make_synthetic_library();

  std::printf("Table 2: miniblue benchmark statistics (superblue scaled 1/%d)\n\n",
              scale);
  ConsoleTable table({"Benchmark", "#Cells", "#Nets", "#Pins", "Pins/Net",
                      "#FFs", "Depth(lvls)", "superblue #Cells"});
  for (const auto& preset : workload::miniblue_presets()) {
    const auto wopts = workload::miniblue_options(preset, scale);
    const netlist::Design design =
        workload::generate_design(lib, wopts, preset.name);
    const auto s = design.netlist.stats();
    sta::TimingGraph graph(design.netlist);
    table.add_row({preset.name, fmt_int(static_cast<long long>(s.num_std_cells)),
                   fmt_int(static_cast<long long>(s.num_nets)),
                   fmt_int(static_cast<long long>(s.num_pins)),
                   fmt(s.avg_net_degree, 2),
                   fmt_int(static_cast<long long>(s.num_seq_cells)),
                   fmt_int(graph.num_levels()),
                   fmt_int(preset.superblue_cells)});
  }
  table.print();
  std::printf("\nPins/Net in the superblue suite is ~3.1; the generator's "
              "fanout distribution targets the same regime.\n");
  return 0;
}
