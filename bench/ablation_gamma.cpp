// Ablation of the LSE smoothing parameter gamma (paper §3.2): accuracy of
// the smoothed WNS/TNS against exact STA, and the placement outcome when
// optimizing with each gamma.  The paper sets gamma ~ 100 ps and notes the
// smoothness/accuracy trade-off; this bench quantifies both sides.
//
// Flags: --scale N (default 400), --iters N (default 600)
#include <cstdio>

#include "bench_util.h"

using namespace dtp;

int main(int argc, char** argv) {
  const int scale = bench::arg_int(argc, argv, "--scale", 400);
  const int iters = bench::arg_int(argc, argv, "--iters", 600);
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  const auto preset = workload::miniblue_presets()[2];  // miniblue4
  const auto wopts = workload::miniblue_options(preset, scale);

  std::printf("Ablation: LSE smoothing gamma (paper Sec. 3.2), %s 1/%d\n\n",
              preset.name, scale);

  // Part 1: approximation error at a fixed placement.
  {
    netlist::Design design = workload::generate_design(lib, wopts, preset.name);
    sta::TimingGraph graph(design.netlist);
    sta::Timer hard(design, graph);
    const auto mh = hard.evaluate(design.cell_x, design.cell_y);
    ConsoleTable t({"gamma(ns)", "WNS_smooth", "WNS_exact", "WNS err%",
                    "TNS_smooth", "TNS_exact", "TNS err%"});
    for (double gamma : {0.2, 0.1, 0.05, 0.02, 0.01, 0.005}) {
      sta::TimerOptions sopts;
      sopts.mode = sta::AggMode::Smooth;
      sopts.gamma = gamma;
      sta::Timer smooth(design, graph, sopts);
      const auto ms = smooth.evaluate(design.cell_x, design.cell_y);
      t.add_row({fmt(gamma, 3), fmt(ms.wns_smooth, 4), fmt(mh.wns, 4),
                 fmt(100.0 * std::abs(ms.wns_smooth - mh.wns) / std::abs(mh.wns), 2),
                 fmt(ms.tns_smooth, 2), fmt(mh.tns, 2),
                 fmt(100.0 * std::abs(ms.tns_smooth - mh.tns) / std::abs(mh.tns), 2)});
    }
    std::printf("-- smoothed vs exact metrics at the initial placement --\n");
    t.print();
    std::printf("(LSE upper-bounds max: smoothed arrival times are pessimistic;"
                " error shrinks with gamma.)\n\n");
  }

  // Part 2: end-to-end optimization outcome per gamma.
  {
    bench::RunArtifacts artifacts(argc, argv);
    ConsoleTable t({"gamma(ns)", "final WNS", "final TNS", "HPWL", "iters"});
    for (double gamma : {0.2, 0.05, 0.01}) {
      placer::GlobalPlacerOptions popts;
      popts.max_iters = iters;
      popts.gamma_timing = gamma;
      popts.timing_start_iter = 50;
      const auto res = bench::run_flow(lib, wopts, preset.name,
                                       placer::PlacerMode::DiffTiming, popts);
      artifacts.add(res.place, preset.name, placer::PlacerMode::DiffTiming);
      t.add_row({fmt(gamma, 3), fmt(res.timing.wns, 4), fmt(res.timing.tns, 2),
                 fmt(res.place.hpwl * 1e-3, 3), fmt_int(res.place.iterations)});
    }
    artifacts.finish();
    std::printf("-- placement outcome when optimizing with each gamma --\n");
    t.print();
    std::printf("(Too-large gamma blurs criticality; too-small gamma degrades "
                "to one-hot max gradients and oscillates — paper Sec. 3.2.)\n");
  }
  return 0;
}
