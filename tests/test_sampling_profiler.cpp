// Sampling profiler (DESIGN.md §14): deterministic fake-clock accumulation,
// the Σself == samples accounting identity, empty/zero-sample edges,
// start/stop lifecycle, daemon drain hygiene, the bitwise no-perturbation
// contract against placement results, and a (generously margined) overhead
// bound at the default rate.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "json_test_util.h"
#include "liberty/synth_library.h"
#include "obs/prof/sampling_profiler.h"
#include "obs/trace.h"
#include "placer/global_placer.h"
#include "serve/manager.h"
#include "sta/timing_graph.h"
#include "workload/circuit_gen.h"

namespace dtp {
namespace {

using obs::Tracer;
using obs::prof::SamplingProfiler;
using test::JsonParser;
using test::JsonValue;

// Fake-clock tests publish spans themselves, so they own live-mode refs.
class SamplingProfilerTest : public ::testing::Test {
 protected:
  void TearDown() override { Tracer::instance().disable(); }
};

SamplingProfiler::Options no_counters(double hz = 100.0) {
  SamplingProfiler::Options o;
  o.hz = hz;
  o.counters = false;
  return o;
}

TEST_F(SamplingProfilerTest, EmptyProfileIsWellFormed) {
  SamplingProfiler prof(no_counters());
  EXPECT_EQ(prof.ticks(), 0u);
  EXPECT_EQ(prof.samples(), 0u);
  EXPECT_EQ(prof.collapsed(), "");
  const JsonValue doc = JsonParser::parse(prof.summary_json());
  EXPECT_EQ(doc.str("schema"), "dtp.profile.v1");
  EXPECT_EQ(doc.num("samples"), 0.0);
  EXPECT_EQ(doc.num("ticks"), 0.0);
  ASSERT_TRUE(doc.has("labels"));
  EXPECT_TRUE(doc.at("labels").array.empty());
}

TEST_F(SamplingProfilerTest, IdleTicksCountNoSamples) {
  Tracer::instance().enable_live();
  SamplingProfiler prof(no_counters());
  for (int i = 0; i < 5; ++i) prof.sample_now();
  Tracer::instance().disable_live();
  EXPECT_EQ(prof.ticks(), 5u);
  EXPECT_EQ(prof.samples(), 0u);
  EXPECT_EQ(prof.collapsed(), "");
  const JsonValue doc = JsonParser::parse(prof.summary_json());
  EXPECT_EQ(doc.num("ticks"), 5.0);
  EXPECT_EQ(doc.num("samples"), 0.0);
}

// Drives the profiler with the fake clock over a scripted span sequence and
// checks the folded output byte for byte — the accumulation is required to be
// a pure function of the observed stacks.
TEST_F(SamplingProfilerTest, FakeClockFoldedStacksAreDeterministic) {
  auto run_script = [](SamplingProfiler& prof) {
    {
      DTP_PROF_SCOPE("place");
      {
        DTP_PROF_SCOPE("density");
        for (int i = 0; i < 3; ++i) prof.sample_now();
      }
      {
        DTP_PROF_SCOPE("sta");
        for (int i = 0; i < 2; ++i) prof.sample_now();
      }
      prof.sample_now();
    }
  };
  Tracer::instance().enable_live();
  SamplingProfiler a(no_counters()), b(no_counters());
  run_script(a);
  run_script(b);
  Tracer::instance().disable_live();

  EXPECT_EQ(a.collapsed(),
            "place 1\n"
            "place;density 3\n"
            "place;sta 2\n");
  EXPECT_EQ(a.collapsed(), b.collapsed());
  EXPECT_EQ(a.samples(), 6u);
  EXPECT_EQ(a.ticks(), 6u);

  // Per-label accounting: Σself == samples, and total counts the label
  // anywhere on the stack.
  const JsonValue doc = JsonParser::parse(a.summary_json());
  double self_sum = 0.0, pct_sum = 0.0;
  for (const JsonValue& l : doc.at("labels").array) {
    self_sum += l.num("self");
    pct_sum += l.num("self_pct");
    if (l.str("label") == "place") {
      EXPECT_EQ(l.num("self"), 1.0);
      EXPECT_EQ(l.num("total"), 6.0);
      EXPECT_NEAR(l.num("total_pct"), 100.0, 1e-9);
    }
    if (l.str("label") == "density") {
      EXPECT_EQ(l.num("self"), 3.0);
      EXPECT_EQ(l.num("total"), 3.0);
    }
  }
  EXPECT_EQ(self_sum, 6.0);
  EXPECT_NEAR(pct_sum, 100.0, 1e-9);
  // Labels are ranked by self count descending.
  EXPECT_EQ(doc.at("labels").array.front().str("label"), "density");
}

TEST_F(SamplingProfilerTest, WindowedSummaryDropsOldCheckpoints) {
  // 10 Hz fake clock, 1 s checkpoints: phase A covers t=0.1..3.0, phase B
  // covers t=3.1..6.0.  A 2-second window at t=6.0 must exclude phase A.
  SamplingProfiler::Options opts = no_counters(10.0);
  SamplingProfiler prof(opts);
  Tracer::instance().enable_live();
  {
    DTP_PROF_SCOPE("phase_a");
    for (int i = 0; i < 30; ++i) prof.sample_now();
  }
  {
    DTP_PROF_SCOPE("phase_b");
    for (int i = 0; i < 30; ++i) prof.sample_now();
  }
  Tracer::instance().disable_live();

  const JsonValue full = JsonParser::parse(prof.summary_json());
  double full_a = 0.0, full_b = 0.0;
  for (const JsonValue& l : full.at("labels").array) {
    if (l.str("label") == "phase_a") full_a = l.num("self");
    if (l.str("label") == "phase_b") full_b = l.num("self");
  }
  EXPECT_EQ(full_a, 30.0);
  EXPECT_EQ(full_b, 30.0);

  const JsonValue win = JsonParser::parse(prof.summary_json(2.0));
  double win_a = 0.0, win_b = 0.0;
  for (const JsonValue& l : win.at("labels").array) {
    if (l.str("label") == "phase_a") win_a = l.num("self");
    if (l.str("label") == "phase_b") win_b = l.num("self");
  }
  EXPECT_EQ(win_a, 0.0);
  EXPECT_GT(win_b, 0.0);
  EXPECT_LE(win_b, 30.0);
  // The windowed view keeps checkpoint granularity: at most ~3 s of phase B.
  EXPECT_LT(win.num("samples"), full.num("samples"));
}

TEST_F(SamplingProfilerTest, StartStopLifecycleIsIdempotent) {
  SamplingProfiler prof(no_counters(500.0));
  EXPECT_FALSE(prof.running());
  prof.stop();  // stop before start is a no-op
  prof.start();
  EXPECT_TRUE(prof.running());
  prof.start();  // double start is a no-op
  EXPECT_TRUE(prof.running());
  prof.stop();
  EXPECT_FALSE(prof.running());
  prof.stop();  // double stop is a no-op
  const JsonValue doc = JsonParser::parse(prof.summary_json());
  EXPECT_GE(doc.num("duration_sec"), 0.0);
  // Restart resets the accumulators for a fresh session.
  prof.start();
  prof.stop();
  EXPECT_EQ(JsonParser::parse(prof.summary_json()).num("samples"),
            prof.samples());
}

TEST_F(SamplingProfilerTest, WriteArtifactsRoundTrip) {
  Tracer::instance().enable_live();
  SamplingProfiler prof(no_counters());
  {
    DTP_PROF_SCOPE("leaf");
    prof.sample_now();
  }
  Tracer::instance().disable_live();
  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(prof.write_collapsed(dir + "/p.folded"));
  ASSERT_TRUE(prof.write_summary(dir + "/p.json"));
  std::ifstream folded(dir + "/p.folded");
  std::string line;
  ASSERT_TRUE(std::getline(folded, line));
  EXPECT_EQ(line, "leaf 1");
  std::ifstream summary(dir + "/p.json");
  std::stringstream ss;
  ss << summary.rdbuf();
  EXPECT_EQ(JsonParser::parse(ss.str()).str("schema"), "dtp.profile.v1");
}

// The no-perturbation contract: a placement run with the profiler attached
// must produce bit-for-bit the positions of an unprofiled run.
TEST(SamplingProfilerGolden, PlacementBitwiseIdenticalUnderProfiling) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  auto place = [&](bool profiled, std::vector<double>& x,
                   std::vector<double>& y, double& hpwl) {
    workload::WorkloadOptions wopts;
    wopts.seed = 7;
    wopts.num_cells = 400;
    netlist::Design design = workload::generate_design(lib, wopts, "golden");
    sta::TimingGraph graph(design.netlist);
    placer::GlobalPlacerOptions popts;
    popts.mode = placer::PlacerMode::DiffTiming;
    popts.max_iters = 60;
    popts.timing_start_iter = 10;
    popts.timing_start_overflow = 1.0;
    placer::GlobalPlacer gp(design, graph, popts);
    SamplingProfiler prof;  // counters on: the default production setup
    if (profiled) prof.start();
    const placer::PlaceResult res = gp.run();
    if (profiled) prof.stop();
    x.assign(design.cell_x.begin(), design.cell_x.end());
    y.assign(design.cell_y.begin(), design.cell_y.end());
    hpwl = res.hpwl;
  };
  std::vector<double> x0, y0, x1, y1;
  double hpwl0 = 0.0, hpwl1 = 0.0;
  place(false, x0, y0, hpwl0);
  place(true, x1, y1, hpwl1);
  EXPECT_EQ(hpwl0, hpwl1);
  ASSERT_EQ(x0.size(), x1.size());
  for (size_t i = 0; i < x0.size(); ++i) {
    ASSERT_EQ(x0[i], x1[i]) << "cell " << i;
    ASSERT_EQ(y0[i], y1[i]) << "cell " << i;
  }
}

// Daemon drain hygiene: the manager owns a profiler for its whole lifetime,
// serves it live, stops it exactly once on drain, and stays queryable after.
TEST(SamplingProfilerServe, ManagerDrainStopsSamplerCleanly) {
  serve::ManagerOptions opts;
  opts.workers = 2;
  opts.profile_hz = 499.0;
  serve::JobManager mgr(opts);
  ASSERT_TRUE(mgr.profiling());

  serve::JobSpec spec;
  spec.demo_cells = 300;
  spec.max_iters = 120;
  spec.mode = "wl";
  const serve::SubmitResult sub = mgr.submit(spec);
  ASSERT_TRUE(sub.accepted);
  mgr.wait_idle(30.0);

  const JsonValue live = JsonParser::parse(mgr.profile_json());
  EXPECT_EQ(live.str("schema"), "dtp.profile.v1");
  EXPECT_GT(live.num("ticks"), 0.0);

  mgr.drain();
  mgr.drain();  // idempotent: the second drain must not double-stop

  // Post-drain the accumulated profile stays readable and consistent.
  const JsonValue post = JsonParser::parse(mgr.profile_json());
  EXPECT_EQ(post.str("schema"), "dtp.profile.v1");
  double self_sum = 0.0;
  for (const JsonValue& l : post.at("labels").array) self_sum += l.num("self");
  EXPECT_EQ(self_sum, post.num("samples"));
  EXPECT_FALSE(mgr.profile_collapsed().empty());
}

TEST(SamplingProfilerServe, ManagerProfilingCanBeDisabled) {
  serve::ManagerOptions opts;
  opts.workers = 1;
  opts.profile_hz = 0.0;
  serve::JobManager mgr(opts);
  EXPECT_FALSE(mgr.profiling());
  EXPECT_EQ(mgr.profile_json(), "");
  mgr.drain();
}

// Overhead bound, with a deliberately generous CI margin: the acceptance
// criterion (<2% at 997 Hz) is checked on quiet hardware; shared CI runners
// jitter far more than 2%, so this guards against gross regressions (a lock
// on the publish path, a blocking sampler) rather than re-measuring the
// fine bound every run.
TEST(SamplingProfilerOverhead, PublishPathStaysCheapUnderSampling) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  workload::WorkloadOptions wopts;
  wopts.seed = 11;
  wopts.num_cells = 300;

  auto run_once = [&](bool profiled) {
    netlist::Design design = workload::generate_design(lib, wopts, "ovh");
    sta::TimingGraph graph(design.netlist);
    placer::GlobalPlacerOptions popts;
    popts.mode = placer::PlacerMode::WirelengthOnly;
    popts.max_iters = 120;
    placer::GlobalPlacer gp(design, graph, popts);
    SamplingProfiler prof(SamplingProfiler::Options{});
    if (profiled) prof.start();
    const placer::PlaceResult res = gp.run();
    if (profiled) prof.stop();
    return res.runtime_sec;
  };

  run_once(false);  // warm-up
  double base = 1e99, prof = 1e99;
  for (int i = 0; i < 3; ++i) {
    base = std::min(base, run_once(false));
    prof = std::min(prof, run_once(true));
  }
  EXPECT_LT(prof, base * 1.5 + 0.05)
      << "profiled min " << prof << "s vs baseline min " << base << "s";
}

}  // namespace
}  // namespace dtp
