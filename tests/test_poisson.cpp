// Spectral Poisson solver: verified against defining PDE properties on the
// grid (uniform charge -> no field; discrete Laplacian residual; symmetry).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "placer/poisson.h"

namespace dtp::placer {
namespace {

TEST(Poisson, UniformChargeGivesZeroField) {
  const int m = 16;
  PoissonSolver solver(m, 100.0, 100.0);
  std::vector<double> rho(static_cast<size_t>(m) * m, 3.7);
  std::vector<double> psi, ex, ey;
  solver.solve(rho, psi, ex, ey);
  for (size_t i = 0; i < rho.size(); ++i) {
    EXPECT_NEAR(psi[i], 0.0, 1e-9);
    EXPECT_NEAR(ex[i], 0.0, 1e-9);
    EXPECT_NEAR(ey[i], 0.0, 1e-9);
  }
}

TEST(Poisson, CenterChargeFieldPointsOutward) {
  const int m = 32;
  PoissonSolver solver(m, 100.0, 100.0);
  std::vector<double> rho(static_cast<size_t>(m) * m, 0.0);
  rho[static_cast<size_t>(m / 2) * m + m / 2] = 1.0;
  std::vector<double> psi, ex, ey;
  solver.solve(rho, psi, ex, ey);
  // Field to the right of the charge points right (+x), to the left points
  // left; same for y.  (field = -grad psi; psi peaks at the charge.)
  EXPECT_GT(ex[static_cast<size_t>(m / 2 + 5) * m + m / 2], 0.0);
  EXPECT_LT(ex[static_cast<size_t>(m / 2 - 5) * m + m / 2], 0.0);
  EXPECT_GT(ey[static_cast<size_t>(m / 2) * m + m / 2 + 5], 0.0);
  EXPECT_LT(ey[static_cast<size_t>(m / 2) * m + m / 2 - 5], 0.0);
  // Potential decays away from the charge.
  EXPECT_GT(psi[static_cast<size_t>(m / 2) * m + m / 2],
            psi[static_cast<size_t>(m / 2 + 8) * m + m / 2]);
}

TEST(Poisson, SymmetricChargeSymmetricSolution) {
  const int m = 16;
  PoissonSolver solver(m, 50.0, 50.0);
  std::vector<double> rho(static_cast<size_t>(m) * m, 0.0);
  // Mirror-symmetric pair of charges about the vertical center line.
  rho[3 * m + 8] = 1.0;
  rho[12 * m + 8] = 1.0;
  std::vector<double> psi, ex, ey;
  solver.solve(rho, psi, ex, ey);
  for (int xx = 0; xx < m; ++xx)
    for (int yy = 0; yy < m; ++yy) {
      EXPECT_NEAR(psi[static_cast<size_t>(xx) * m + yy],
                  psi[static_cast<size_t>(m - 1 - xx) * m + yy], 1e-9);
      EXPECT_NEAR(ex[static_cast<size_t>(xx) * m + yy],
                  -ex[static_cast<size_t>(m - 1 - xx) * m + yy], 1e-9);
    }
}

TEST(Poisson, DiscreteLaplacianMatchesChargeInterior) {
  // laplacian(psi) should reproduce -(rho - mean(rho)) up to discretization:
  // compare in spectral-exact form by checking the residual is small relative
  // to the charge for a smooth density.
  const int m = 64;
  const double w = 128.0;
  PoissonSolver solver(m, w, w);
  const double h = w / m;
  std::vector<double> rho(static_cast<size_t>(m) * m);
  for (int xx = 0; xx < m; ++xx)
    for (int yy = 0; yy < m; ++yy) {
      // Smooth low-frequency density (exactly representable).
      rho[static_cast<size_t>(xx) * m + yy] =
          std::cos(M_PI * 2 * (xx + 0.5) / m) * std::cos(M_PI * 3 * (yy + 0.5) / m);
    }
  std::vector<double> psi, ex, ey;
  solver.solve(rho, psi, ex, ey);
  double max_err = 0.0, max_rho = 0.0;
  for (int xx = 1; xx + 1 < m; ++xx)
    for (int yy = 1; yy + 1 < m; ++yy) {
      const auto at = [&](int a, int b) {
        return psi[static_cast<size_t>(a) * m + b];
      };
      const double lap = (at(xx + 1, yy) + at(xx - 1, yy) + at(xx, yy + 1) +
                          at(xx, yy - 1) - 4 * at(xx, yy)) /
                         (h * h);
      max_err = std::max(max_err, std::abs(lap + rho[static_cast<size_t>(xx) * m + yy]));
      max_rho = std::max(max_rho, std::abs(rho[static_cast<size_t>(xx) * m + yy]));
    }
  // Second-order finite differences of a band-limited solution: few % error.
  EXPECT_LT(max_err, 0.05 * max_rho);
}

TEST(Poisson, FieldIsNegativeGradientOfPotential) {
  const int m = 32;
  const double w = 64.0;
  PoissonSolver solver(m, w, w);
  const double h = w / m;
  Rng rng(4);
  std::vector<double> rho(static_cast<size_t>(m) * m);
  // Smooth random density from a few low-frequency modes.
  for (int xx = 0; xx < m; ++xx)
    for (int yy = 0; yy < m; ++yy)
      rho[static_cast<size_t>(xx) * m + yy] =
          std::sin(2 * M_PI * (xx + 0.5) / m) + 0.5 * std::cos(M_PI * (yy + 0.5) / m);
  std::vector<double> psi, ex, ey;
  solver.solve(rho, psi, ex, ey);
  double max_err = 0.0, max_f = 0.0;
  for (int xx = 2; xx + 2 < m; ++xx)
    for (int yy = 2; yy + 2 < m; ++yy) {
      const size_t i = static_cast<size_t>(xx) * m + yy;
      const double fd_x =
          -(psi[static_cast<size_t>(xx + 1) * m + yy] -
            psi[static_cast<size_t>(xx - 1) * m + yy]) /
          (2 * h);
      const double fd_y = -(psi[i + 1] - psi[i - 1]) / (2 * h);
      max_err = std::max({max_err, std::abs(fd_x - ex[i]), std::abs(fd_y - ey[i])});
      max_f = std::max({max_f, std::abs(ex[i]), std::abs(ey[i])});
    }
  EXPECT_LT(max_err, 0.05 * max_f);
}

TEST(Poisson, EnergyNonNegativeAndZeroForUniform) {
  const int m = 16;
  PoissonSolver solver(m, 40.0, 40.0);
  std::vector<double> rho(static_cast<size_t>(m) * m, 1.0);
  std::vector<double> psi, ex, ey;
  solver.solve(rho, psi, ex, ey);
  EXPECT_NEAR(PoissonSolver::energy(rho, psi), 0.0, 1e-9);

  Rng rng(9);
  for (auto& r : rho) r = rng.uniform(0.0, 2.0);
  solver.solve(rho, psi, ex, ey);
  EXPECT_GT(PoissonSolver::energy(rho, psi), 0.0);
}

}  // namespace
}  // namespace dtp::placer
