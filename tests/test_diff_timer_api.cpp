// DiffTimer API semantics: rebuild scheduling, gradient accumulation,
// objective gating, determinism.
#include <gtest/gtest.h>

#include "dtimer/diff_timer.h"
#include "liberty/synth_library.h"
#include "workload/circuit_gen.h"

namespace dtp::dtimer {
namespace {

using netlist::Design;

Design make(const liberty::CellLibrary& lib, double clock_scale = 0.55,
            uint64_t seed = 881) {
  workload::WorkloadOptions opts;
  opts.num_cells = 200;
  opts.seed = seed;
  opts.clock_scale = clock_scale;
  return workload::generate_design(lib, opts);
}

TEST(DiffTimerApi, RebuildPeriodIsHonored) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  const Design d = make(lib);
  const sta::TimingGraph graph(d.netlist);
  DiffTimerOptions opts;
  opts.steiner_rebuild_period = 3;
  DiffTimer dt(d, graph, opts);
  // forward_calls counts invocations; trees rebuild on calls 0, 3, 6, ...
  for (int k = 0; k < 7; ++k) {
    dt.forward(d.cell_x, d.cell_y);
    EXPECT_EQ(dt.forward_calls(), k + 1);
  }
}

TEST(DiffTimerApi, PeriodZeroNeverRebuildsAfterFirst) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = make(lib);
  const sta::TimingGraph graph(d.netlist);
  DiffTimerOptions opts;
  opts.steiner_rebuild_period = 0;
  DiffTimer dt(d, graph, opts);
  const auto m0 = dt.forward(d.cell_x, d.cell_y);
  // Move cells drastically; with period 0 topology is frozen (drag only), so
  // a forced rebuild afterwards gives a different (shorter) result.
  for (size_t c = 0; c < d.cell_x.size(); ++c) {
    if (d.netlist.cell(static_cast<int>(c)).fixed) continue;
    d.cell_x[c] = 5.0 + 0.001 * static_cast<double>(c);
  }
  const auto m_drag = dt.forward(d.cell_x, d.cell_y);
  const auto m_rebuild = dt.forward(d.cell_x, d.cell_y, /*force_rebuild=*/true);
  (void)m0;
  // Fresh topology at the new positions cannot be worse than dragged trees.
  EXPECT_GE(m_rebuild.tns, m_drag.tns - 1e-9);
}

TEST(DiffTimerApi, BackwardAccumulates) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  const Design d = make(lib);
  const sta::TimingGraph graph(d.netlist);
  DiffTimer dt(d, graph);
  dt.forward(d.cell_x, d.cell_y, true);
  const size_t n = d.cell_x.size();
  std::vector<double> g1x(n, 0.0), g1y(n, 0.0);
  dt.backward(1.0, 0.1, g1x, g1y);
  std::vector<double> g2x(g1x), g2y(g1y);
  dt.backward(1.0, 0.1, g2x, g2y);  // += on top of the first result
  for (size_t c = 0; c < n; ++c) {
    EXPECT_NEAR(g2x[c], 2.0 * g1x[c], 1e-12 + 1e-9 * std::abs(g1x[c]));
    EXPECT_NEAR(g2y[c], 2.0 * g1y[c], 1e-12 + 1e-9 * std::abs(g1y[c]));
  }
}

TEST(DiffTimerApi, ZeroWeightsZeroGradient) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  const Design d = make(lib);
  const sta::TimingGraph graph(d.netlist);
  DiffTimer dt(d, graph);
  dt.forward(d.cell_x, d.cell_y, true);
  std::vector<double> gx(d.cell_x.size(), 0.0), gy(d.cell_y.size(), 0.0);
  dt.backward(0.0, 0.0, gx, gy);
  for (size_t c = 0; c < gx.size(); ++c) {
    EXPECT_EQ(gx[c], 0.0);
    EXPECT_EQ(gy[c], 0.0);
  }
}

TEST(DiffTimerApi, TnsGradientVanishesWithoutViolations) {
  // Relaxed clock: all slacks positive => the TNS term ([slack<0] gate) emits
  // nothing; the WNS term still produces a gradient.
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  const Design d = make(lib, /*clock_scale=*/6.0);
  const sta::TimingGraph graph(d.netlist);
  DiffTimer dt(d, graph);
  const auto m = dt.forward(d.cell_x, d.cell_y, true);
  ASSERT_GE(m.wns, 0.0);
  const size_t n = d.cell_x.size();
  std::vector<double> gx(n, 0.0), gy(n, 0.0);
  dt.backward(/*t1=*/1.0, /*t2=*/0.0, gx, gy);
  double norm = 0.0;
  for (size_t c = 0; c < n; ++c) norm += std::abs(gx[c]) + std::abs(gy[c]);
  EXPECT_EQ(norm, 0.0);
  dt.backward(/*t1=*/0.0, /*t2=*/1.0, gx, gy);
  norm = 0.0;
  for (size_t c = 0; c < n; ++c) norm += std::abs(gx[c]) + std::abs(gy[c]);
  EXPECT_GT(norm, 0.0);
}

TEST(DiffTimerApi, DeterministicAcrossInstances) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  const Design d = make(lib);
  const sta::TimingGraph graph(d.netlist);
  DiffTimer a(d, graph), b(d, graph);
  const auto ma = a.forward(d.cell_x, d.cell_y, true);
  const auto mb = b.forward(d.cell_x, d.cell_y, true);
  EXPECT_EQ(ma.tns_smooth, mb.tns_smooth);
  EXPECT_EQ(ma.wns_smooth, mb.wns_smooth);
  const size_t n = d.cell_x.size();
  std::vector<double> gax(n, 0.0), gay(n, 0.0), gbx(n, 0.0), gby(n, 0.0);
  a.backward(0.7, 0.03, gax, gay);
  b.backward(0.7, 0.03, gbx, gby);
  for (size_t c = 0; c < n; ++c) {
    EXPECT_EQ(gax[c], gbx[c]);
    EXPECT_EQ(gay[c], gby[c]);
  }
}

TEST(DiffTimerApi, GradientPointsDownhill) {
  // A small step against the gradient must not increase the loss.
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = make(lib);
  const sta::TimingGraph graph(d.netlist);
  DiffTimerOptions opts;
  opts.steiner_rebuild_period = 0;
  DiffTimer dt(d, graph, opts);
  const auto m0 = dt.forward(d.cell_x, d.cell_y, true);
  const double loss0 = -m0.tns_smooth - 0.05 * m0.wns_smooth;
  const size_t n = d.cell_x.size();
  std::vector<double> gx(n, 0.0), gy(n, 0.0);
  dt.backward(1.0, 0.05, gx, gy);
  double gmax = 0.0;
  for (size_t c = 0; c < n; ++c)
    gmax = std::max({gmax, std::abs(gx[c]), std::abs(gy[c])});
  ASSERT_GT(gmax, 0.0);
  const double step = 0.01 / gmax;  // max move: 0.01 um (first-order regime)
  for (size_t c = 0; c < n; ++c) {
    if (d.netlist.cell(static_cast<int>(c)).fixed) continue;
    d.cell_x[c] -= step * gx[c];
    d.cell_y[c] -= step * gy[c];
  }
  const auto m1 = dt.forward(d.cell_x, d.cell_y);
  const double loss1 = -m1.tns_smooth - 0.05 * m1.wns_smooth;
  EXPECT_LE(loss1, loss0 + 1e-12);
}

}  // namespace
}  // namespace dtp::dtimer
