// Cross-cutting coverage: file-based liberty round trip, bookshelf file
// contents, D2M placer integration, hold reporting, logger levels.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logger.h"
#include "io/bookshelf.h"
#include "liberty/liberty_io.h"
#include "liberty/synth_library.h"
#include "placer/global_placer.h"
#include "sta/report.h"
#include "workload/circuit_gen.h"

namespace dtp {
namespace {

TEST(LibertyFiles, FileRoundTrip) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  const std::string path =
      (std::filesystem::temp_directory_path() / "dtp_rt.lib").string();
  liberty::write_liberty_file(lib, path);
  const liberty::CellLibrary back = liberty::parse_liberty_file(path);
  EXPECT_EQ(back.size(), lib.size());
  EXPECT_THROW(liberty::parse_liberty_file("/nonexistent/file.lib"),
               std::runtime_error);
}

TEST(BookshelfFiles, NodeAndNetCountsMatchHeader) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  workload::WorkloadOptions opts;
  opts.num_cells = 150;
  opts.seed = 610;
  netlist::Design d = workload::generate_design(lib, opts, "counts");
  const std::string dir =
      (std::filesystem::temp_directory_path() / "dtp_bs_counts").string();
  std::filesystem::create_directories(dir);
  io::write_bookshelf(d, dir);

  std::ifstream nodes(dir + "/counts.nodes");
  std::string line;
  size_t declared = 0, rows = 0;
  while (std::getline(nodes, line)) {
    if (line.find("NumNodes") != std::string::npos)
      declared = std::stoul(line.substr(line.find(':') + 1));
    else if (!line.empty() && line[0] == ' ')
      ++rows;
  }
  EXPECT_EQ(declared, d.netlist.num_cells());
  EXPECT_EQ(rows, d.netlist.num_cells());

  std::ifstream nets(dir + "/counts.nets");
  size_t degrees = 0, declared_nets = 0;
  while (std::getline(nets, line)) {
    if (line.find("NumNets") != std::string::npos)
      declared_nets = std::stoul(line.substr(line.find(':') + 1));
    else if (line.find("NetDegree") != std::string::npos)
      ++degrees;
  }
  EXPECT_EQ(declared_nets, d.netlist.num_nets());
  EXPECT_EQ(degrees, d.netlist.num_nets());
}

TEST(PlacerD2m, DiffTimingRunsUnderD2m) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  workload::WorkloadOptions opts;
  opts.num_cells = 300;
  opts.seed = 620;
  opts.clock_scale = 0.6;
  netlist::Design d = workload::generate_design(lib, opts);
  sta::TimingGraph graph(d.netlist);
  placer::GlobalPlacerOptions po;
  po.mode = placer::PlacerMode::DiffTiming;
  po.max_iters = 250;
  po.bins = 32;
  po.timing_start_iter = 40;
  po.wire_model = sta::WireDelayModel::D2M;
  placer::GlobalPlacer gp(d, graph, po);
  const auto res = gp.run();
  EXPECT_LT(res.overflow, 0.15);
  sta::Timer timer(d, graph);
  EXPECT_TRUE(std::isfinite(timer.evaluate(d.cell_x, d.cell_y).tns));
}

TEST(Report, HoldSectionWhenEarlyEnabled) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  workload::WorkloadOptions opts;
  opts.num_cells = 200;
  opts.seed = 630;
  const netlist::Design d = workload::generate_design(lib, opts);
  sta::TimingGraph graph(d.netlist);
  sta::TimerOptions topts;
  topts.enable_early = true;
  sta::Timer timer(d, graph, topts);
  timer.evaluate(d.cell_x, d.cell_y);
  const std::string report = sta::timing_report_string(timer);
  EXPECT_NE(report.find("hold WNS"), std::string::npos);
  EXPECT_NE(report.find("hold TNS"), std::string::npos);
}

TEST(Logger, LevelFiltering) {
  // Redirect the sink to a temp file and verify filtering.
  const std::string path =
      (std::filesystem::temp_directory_path() / "dtp_log.txt").string();
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  Logger::instance().set_sink(f);
  Logger::instance().set_level(LogLevel::Warn);
  DTP_LOG_DEBUG("hidden debug %d", 1);
  DTP_LOG_INFO("hidden info");
  DTP_LOG_WARN("visible warn %s", "x");
  DTP_LOG_ERROR("visible error");
  Logger::instance().set_sink(stderr);
  Logger::instance().set_level(LogLevel::Info);
  std::fclose(f);

  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string log = ss.str();
  EXPECT_EQ(log.find("hidden"), std::string::npos);
  EXPECT_NE(log.find("visible warn x"), std::string::npos);
  EXPECT_NE(log.find("visible error"), std::string::npos);
}

TEST(Assert, MessageMacroCompiles) {
  // DTP_ASSERT with a true condition is a no-op.
  DTP_ASSERT(1 + 1 == 2);
  DTP_ASSERT_MSG(true, "never fires");
  SUCCEED();
}

}  // namespace
}  // namespace dtp
