// Netlist construction, validation and statistics.
#include <gtest/gtest.h>

#include "liberty/synth_library.h"
#include "netlist/netlist.h"

namespace dtp::netlist {
namespace {

class NetlistTest : public ::testing::Test {
 protected:
  NetlistTest() : lib(liberty::make_synthetic_library()), nl(&lib) {}
  liberty::CellLibrary lib;
  Netlist nl;
};

TEST_F(NetlistTest, AddCellCreatesAllPins) {
  const CellId c = nl.add_cell("u1", lib.find_cell("NAND2_X1"));
  EXPECT_EQ(nl.cell(c).num_pins, 3);
  EXPECT_EQ(nl.num_pins(), 3u);
  EXPECT_EQ(nl.pin_of_cell(c, "A"), 0);
  EXPECT_EQ(nl.pin_of_cell(c, "Z"), 2);
  EXPECT_EQ(nl.pin_of_cell(c, "NOPE"), kInvalidId);
}

TEST_F(NetlistTest, ConnectTracksDriver) {
  const CellId u1 = nl.add_cell("u1", lib.find_cell("INV_X1"));
  const CellId u2 = nl.add_cell("u2", lib.find_cell("INV_X1"));
  const NetId n = nl.add_net("w");
  nl.connect(n, u1, "Z");
  nl.connect(n, u2, "A");
  EXPECT_EQ(nl.net(n).driver, nl.pin_of_cell(u1, "Z"));
  EXPECT_EQ(nl.net(n).pins.size(), 2u);
}

TEST_F(NetlistTest, RejectsDoubleDriver) {
  const CellId u1 = nl.add_cell("u1", lib.find_cell("INV_X1"));
  const CellId u2 = nl.add_cell("u2", lib.find_cell("INV_X1"));
  const NetId n = nl.add_net("w");
  nl.connect(n, u1, "Z");
  EXPECT_THROW(nl.connect(n, u2, "Z"), std::runtime_error);
}

TEST_F(NetlistTest, RejectsDoubleConnection) {
  const CellId u1 = nl.add_cell("u1", lib.find_cell("INV_X1"));
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  nl.connect(a, u1, "A");
  EXPECT_THROW(nl.connect(b, u1, "A"), std::runtime_error);
}

TEST_F(NetlistTest, RejectsDuplicateNames) {
  nl.add_cell("u1", lib.find_cell("INV_X1"));
  EXPECT_THROW(nl.add_cell("u1", lib.find_cell("INV_X2")), std::runtime_error);
  nl.add_net("n1");
  EXPECT_THROW(nl.add_net("n1"), std::runtime_error);
}

TEST_F(NetlistTest, ValidateCatchesDriverlessNet) {
  const CellId u1 = nl.add_cell("u1", lib.find_cell("INV_X1"));
  const CellId u2 = nl.add_cell("u2", lib.find_cell("INV_X1"));
  const NetId n = nl.add_net("w");
  nl.connect(n, u1, "A");
  nl.connect(n, u2, "A");
  EXPECT_THROW(nl.validate(), std::runtime_error);
}

TEST_F(NetlistTest, ValidateCatchesSinklessNet) {
  const CellId u1 = nl.add_cell("u1", lib.find_cell("INV_X1"));
  const NetId n = nl.add_net("w");
  nl.connect(n, u1, "Z");
  EXPECT_THROW(nl.validate(), std::runtime_error);
}

TEST_F(NetlistTest, PinDerivedProperties) {
  const CellId u1 = nl.add_cell("u1", lib.find_cell("NAND2_X1"));
  const PinId a = nl.pin_of_cell(u1, "A");
  const PinId z = nl.pin_of_cell(u1, "Z");
  EXPECT_FALSE(nl.pin_is_output(a));
  EXPECT_TRUE(nl.pin_is_output(z));
  EXPECT_GT(nl.pin_cap(a), 0.0);
  EXPECT_EQ(nl.pin_cap(z), 0.0);
  EXPECT_EQ(nl.pin_full_name(a), "u1/A");
  const Vec2 off = nl.pin_offset(a);
  EXPECT_GT(off.x, 0.0);
}

TEST_F(NetlistTest, StatsCountKinds) {
  const CellId g = nl.add_cell("g", lib.find_cell("INV_X1"));
  const CellId ff = nl.add_cell("ff", lib.find_cell("DFF_X1"));
  const CellId pi = nl.add_cell("pi", lib.find_cell(liberty::CellLibrary::kPortInName));
  const NetId n1 = nl.add_net("n1");
  nl.connect(n1, pi, "PAD");
  nl.connect(n1, g, "A");
  const NetId n2 = nl.add_net("n2");
  nl.connect(n2, g, "Z");
  nl.connect(n2, ff, "D");
  const auto s = nl.stats();
  EXPECT_EQ(s.num_cells, 3u);
  EXPECT_EQ(s.num_std_cells, 2u);
  EXPECT_EQ(s.num_seq_cells, 1u);
  EXPECT_EQ(s.num_ports, 1u);
  EXPECT_EQ(s.num_nets, 2u);
  EXPECT_EQ(s.num_pins, 4u);
  EXPECT_EQ(s.max_net_degree, 2u);
  EXPECT_NEAR(s.avg_net_degree, 2.0, 1e-12);
}

TEST_F(NetlistTest, DesignPositionsSizing) {
  Design design(&lib, "t");
  design.netlist.add_cell("u1", lib.find_cell("INV_X1"));
  design.init_positions();
  EXPECT_EQ(design.cell_x.size(), 1u);
  EXPECT_EQ(design.cell_y.size(), 1u);
}

}  // namespace
}  // namespace dtp::netlist
