// Performance observability layer (DESIGN.md §9): HwCounters fallback
// contract, ResourceSampler start/stop hygiene, per-worker timeline
// accounting, the BENCH_*.json schema round-trip, the bench-diff regression
// gate, and the pure-observer guarantee (sampling leaves placement results
// bitwise identical).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/json_parse.h"
#include "common/json_writer.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "liberty/synth_library.h"
#include "obs/prof/bench_json.h"
#include "obs/prof/hw_counters.h"
#include "obs/prof/resource_sampler.h"
#include "placer/global_placer.h"
#include "sta/timing_graph.h"
#include "workload/circuit_gen.h"

namespace dtp::obs::prof {
namespace {

// ---------------------------------------------------------- HwCounters ----

// The graceful-fallback contract: whether or not perf_event_open is
// permitted in this environment, construction/start/stop must not crash and
// the sample must be explicit about availability.
TEST(HwCounters, NeverCrashesAndReportsAvailability) {
  HwCounters hc;
  hc.start();
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0 / (i + 1);
  const CounterSample s = hc.stop();
  EXPECT_EQ(s.available, hc.available());
  if (s.available) {
    EXPECT_GT(s.cycles, 0u);
    EXPECT_GT(s.instructions, 0u);
    EXPECT_GT(s.ipc(), 0.0);
    EXPECT_GE(s.running_fraction, 0.0);
    EXPECT_LE(s.running_fraction, 1.0 + 1e-9);
  } else {
    EXPECT_FALSE(hc.unavailable_reason().empty());
    EXPECT_FALSE(s.unavailable_reason.empty());
    EXPECT_EQ(s.cycles, 0u);
  }
}

TEST(HwCounters, DtpNoPerfForcesExplicitFallback) {
  ::setenv("DTP_NO_PERF", "1", 1);
  HwCounters hc;
  ::unsetenv("DTP_NO_PERF");
  EXPECT_FALSE(hc.available());
  hc.start();  // must be a no-op, not a crash
  const CounterSample s = hc.stop();
  EXPECT_FALSE(s.available);
  EXPECT_NE(s.unavailable_reason.find("DTP_NO_PERF"), std::string::npos);

  // The JSON record must carry the explicit available:false marker.
  JsonWriter w;
  counters_to_json(w, s);
  const JsonValue v = JsonParser::parse(w.str());
  ASSERT_TRUE(v.is_object());
  EXPECT_FALSE(v.at("available").boolean);
  EXPECT_FALSE(v.str_or("reason", "").empty());
}

TEST(HwCounters, AvailableSampleSerializesRates) {
  CounterSample s;
  s.available = true;
  s.cycles = 2000;
  s.instructions = 3000;
  s.cache_references = 100;
  s.cache_misses = 25;
  s.branch_misses = 7;
  s.running_fraction = 1.0;
  JsonWriter w;
  counters_to_json(w, s);
  const JsonValue v = JsonParser::parse(w.str());
  EXPECT_TRUE(v.at("available").boolean);
  EXPECT_DOUBLE_EQ(v.num_or("ipc", 0.0), 1.5);
  EXPECT_DOUBLE_EQ(v.num_or("cache_miss_rate", 0.0), 0.25);
  EXPECT_EQ(v.num_or("branch_misses", 0.0), 7.0);
}

// ------------------------------------------------------ ResourceSampler ----

TEST(ResourceSampler, StopJoinsAndNothingAppendsAfter) {
  ResourceSampler sampler(/*period_ms=*/5);
  sampler.start();
  EXPECT_TRUE(sampler.running());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  sampler.stop();
  EXPECT_FALSE(sampler.running());
  const size_t n = sampler.num_samples();
  EXPECT_GE(n, 2u);  // at least the immediate first and the final sample
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(sampler.num_samples(), n);  // stable after stop()
  sampler.stop();                       // idempotent
  EXPECT_EQ(sampler.num_samples(), n);
}

TEST(ResourceSampler, TimestampsMonotonicAndFieldsSane) {
  ResourceSampler sampler(/*period_ms=*/5);
  sampler.start();
  // Touch some memory so RSS/fault counters have something to report.
  std::vector<double> ballast(1 << 16, 1.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  sampler.stop();
  const std::vector<ResourceSample> samples = sampler.samples();
  ASSERT_GE(samples.size(), 2u);
  for (size_t i = 1; i < samples.size(); ++i)
    EXPECT_GE(samples[i].t_sec, samples[i - 1].t_sec);
  const ResourceSample& last = samples.back();
#if defined(__linux__)
  EXPECT_GT(last.rss_mb, 0.0);
  EXPECT_GE(last.rss_hwm_mb, last.rss_mb * 0.5);
  EXPECT_GT(last.minor_faults, 0u);
#endif
  EXPECT_GE(last.user_cpu_sec + last.sys_cpu_sec, 0.0);
  (void)ballast;
}

TEST(ResourceSampler, SnapshotNowIsStandalone) {
  const ResourceSample s = sample_resources_now();
  EXPECT_EQ(s.t_sec, 0.0);
#if defined(__linux__)
  EXPECT_GT(s.rss_mb, 0.0);
#endif
}

// --------------------------------------------------- worker timelines ----

TEST(ThreadPoolTimeline, SpanSumMatchesAggregateBusy) {
  ThreadPool pool(4);
  pool.set_timeline_enabled(true);
  std::atomic<long> sink{0};
  for (int round = 0; round < 4; ++round)
    pool.parallel_for(
        0, 4096,
        [&](size_t i) {
          long acc = 0;
          for (int k = 0; k < 200; ++k) acc += static_cast<long>(i) * k;
          sink += acc;
        },
        /*grain=*/64);
  // Workers account busy time / spans just after signaling task completion,
  // so let the accounting settle before snapshotting.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  pool.set_timeline_enabled(false);

  const ThreadPoolStats stats = pool.stats();
  ASSERT_GT(stats.tasks_executed, 0u);
  const std::vector<WorkerSpan> spans = pool.timeline();
  ASSERT_EQ(spans.size(), stats.tasks_executed);
  double span_sum = 0.0;
  for (const WorkerSpan& s : spans) {
    EXPECT_GE(s.t1_sec, s.t0_sec);
    EXPECT_LT(s.worker, 4u);
    span_sum += s.t1_sec - s.t0_sec;
  }
  // Span ends are derived from the same ns-quantized busy time as the
  // aggregate, so the sums agree to rounding.
  EXPECT_NEAR(span_sum, stats.busy_sec, 1e-6);

  // Per-worker aggregates sum to the same totals.
  const std::vector<WorkerStat> workers = pool.worker_stats();
  ASSERT_EQ(workers.size(), 4u);
  uint64_t tasks = 0;
  double busy = 0.0;
  for (const WorkerStat& w : workers) {
    tasks += w.tasks;
    busy += w.busy_sec;
  }
  EXPECT_EQ(tasks, stats.tasks_executed);
  EXPECT_NEAR(busy, stats.busy_sec, 1e-6);
}

TEST(ThreadPoolTimeline, MarksAndClearAndQueueDepth) {
  ThreadPool pool(2);
  pool.mark("ignored.disabled");  // timeline off: must not record
  EXPECT_TRUE(pool.timeline_marks().empty());

  pool.set_timeline_enabled(true);
  pool.mark("phase.a");
  pool.parallel_for(
      0, 1024,
      [](size_t) {
        std::this_thread::sleep_for(std::chrono::microseconds(20));
      },
      /*grain=*/8);
  pool.mark("phase.b");
  std::this_thread::sleep_for(std::chrono::milliseconds(20));  // settle spans
  pool.set_timeline_enabled(false);

  const std::vector<TimelineMark> marks = pool.timeline_marks();
  ASSERT_EQ(marks.size(), 2u);
  EXPECT_STREQ(marks[0].label, "phase.a");
  EXPECT_STREQ(marks[1].label, "phase.b");
  EXPECT_LE(marks[0].t_sec, marks[1].t_sec);
  EXPECT_FALSE(pool.timeline().empty());
  // 1024/8 chunk tasks through 2 workers must have queued at some point.
  EXPECT_GT(pool.stats().queue_depth_max, 0u);
  pool.reset_queue_depth_max();
  EXPECT_EQ(pool.stats().queue_depth_max, 0u);

  pool.clear_timeline();
  EXPECT_TRUE(pool.timeline().empty());
  EXPECT_TRUE(pool.timeline_marks().empty());
}

TEST(ThreadPoolTimeline, DisabledRecordsNoSpans) {
  ThreadPool pool(2);
  pool.parallel_for(0, 2048, [](size_t) {}, /*grain=*/8);
  EXPECT_TRUE(pool.timeline().empty());
  EXPECT_GT(pool.stats().tasks_executed, 0u);  // aggregates still accumulate
}

// ---------------------------------------------------- CPU-time stopwatch ----

TEST(Stopwatch, CpuTimeTracksBusyWork) {
  Stopwatch sw;
  volatile double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) sink = sink + 1.0 / (i + 1);
  const double cpu = sw.cpu_elapsed_sec();
  const double wall = sw.elapsed_sec();
  EXPECT_GT(cpu, 0.0);
  EXPECT_GT(wall, 0.0);
  // Single-threaded busy loop: CPU time cannot exceed wall by more than
  // scheduler noise (other process threads are idle here).
  EXPECT_LT(cpu, wall * 4.0 + 0.05);
}

// ----------------------------------------------------------- stats math ----

TEST(BenchStats, OrderStatistics) {
  const SeriesStats s = compute_stats({5.0, 1.0, 3.0, 2.0, 4.0});
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.p95, 5.0);
  EXPECT_NEAR(s.stddev, 1.5811388, 1e-6);

  const SeriesStats even = compute_stats({4.0, 1.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(even.median, 2.5);

  const SeriesStats empty = compute_stats({});
  EXPECT_EQ(empty.n, 0u);
  EXPECT_DOUBLE_EQ(empty.median, 0.0);

  const SeriesStats one = compute_stats({7.0});
  EXPECT_DOUBLE_EQ(one.median, 7.0);
  EXPECT_DOUBLE_EQ(one.p95, 7.0);
  EXPECT_DOUBLE_EQ(one.stddev, 0.0);
}

// ------------------------------------------------- BENCH json round-trip ----

BenchSuiteResult make_suite(double wall_scale) {
  BenchSuiteResult suite;
  suite.suite = "unit";
  suite.repeats = 3;
  suite.threads = 2;
  suite.counter_probe.available = false;
  suite.counter_probe.unavailable_reason = "unit test";
  BenchCell cell;
  cell.name = "s100/dt";
  cell.design = "s100";
  cell.mode = "dt";
  cell.num_cells = 100;
  for (int r = 0; r < 3; ++r) {
    BenchRepeat rep;
    rep.wall_sec = wall_scale * (1.0 + 0.01 * r);
    rep.cpu_sec = rep.wall_sec * 0.9;
    rep.hpwl = 1234.5;
    rep.overflow = 0.07;
    rep.iterations = 100;
    rep.phases = {{"wirelength", {0.4 * rep.wall_sec, 0.36 * rep.wall_sec}},
                  {"density", {0.6 * rep.wall_sec, 0.54 * rep.wall_sec}}};
    rep.pool_busy_sec = 0.5 * rep.wall_sec;
    rep.pool_utilization = 0.25;
    rep.queue_depth_max = 4;
    rep.workers = {{10, 0.25 * rep.wall_sec}, {12, 0.25 * rep.wall_sec}};
    cell.repeats.push_back(rep);
  }
  suite.cells.push_back(cell);
  return suite;
}

TEST(BenchJson, SchemaRoundTrip) {
  const std::string doc = bench_json(make_suite(1.0));
  const JsonValue v = JsonParser::parse(doc);
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.str_or("schema", ""), kBenchSchema);
  EXPECT_EQ(v.str_or("suite", ""), "unit");
  EXPECT_EQ(v.num_or("repeats", 0.0), 3.0);
  EXPECT_EQ(v.num_or("threads", 0.0), 2.0);
  EXPECT_FALSE(v.at("counters").at("available").boolean);
  ASSERT_TRUE(v.at("cells").is_array());
  const JsonValue& cell = v.at("cells").at(size_t{0});
  EXPECT_EQ(cell.str_or("name", ""), "s100/dt");
  EXPECT_EQ(cell.at("repeats").array.size(), 3u);
  const JsonValue& st = cell.at("stats");
  ASSERT_TRUE(st.has("wall_sec"));
  EXPECT_DOUBLE_EQ(st.at("wall_sec").num_or("min", 0.0), 1.0);
  EXPECT_DOUBLE_EQ(st.at("wall_sec").num_or("median", 0.0), 1.01);
  EXPECT_DOUBLE_EQ(st.at("wall_sec").num_or("p95", 0.0), 1.02);
  EXPECT_GT(st.at("wall_sec").num_or("stddev", -1.0), 0.0);
  // Counters unavailable on every repeat: no IPC series is fabricated.
  EXPECT_FALSE(st.has("ipc"));
  // Per-phase stats mirror the repeat phases.
  ASSERT_TRUE(st.at("phases").has("wirelength"));
  EXPECT_NEAR(st.at("phases").at("wirelength").at("wall_sec").num_or("median", 0.0),
              0.4 * 1.01, 1e-12);
  ASSERT_TRUE(st.at("phases").at("wirelength").has("cpu_sec"));
  // Repeat records carry resources and pool accounting.
  const JsonValue& rep = cell.at("repeats").at(size_t{0});
  EXPECT_TRUE(rep.has("resources"));
  EXPECT_EQ(rep.at("pool").num_or("queue_depth_max", 0.0), 4.0);
  EXPECT_EQ(rep.at("pool").at("workers").array.size(), 2u);
}

TEST(BenchJson, EmbeddedProfileSplicesIntoCell) {
  BenchSuiteResult suite = make_suite(1.0);
  suite.cells[0].profile_json =
      R"({"schema":"dtp.profile.v1","hz":997,"samples":10,)"
      R"("labels":[{"label":"lut_interp","self":10,"self_pct":100.0}]})";
  const JsonValue v = JsonParser::parse(bench_json(suite));
  const JsonValue& cell = v.at("cells").at(size_t{0});
  ASSERT_TRUE(cell.has("profile"));
  EXPECT_EQ(cell.at("profile").str_or("schema", ""), "dtp.profile.v1");
  EXPECT_EQ(cell.at("profile").num_or("samples", 0.0), 10.0);
  EXPECT_EQ(cell.at("profile").at("labels").array.size(), 1u);
  // Absent when the profiler was off: readers of the old schema see no change.
  const JsonValue plain = JsonParser::parse(bench_json(make_suite(1.0)));
  EXPECT_FALSE(plain.at("cells").at(size_t{0}).has("profile"));
}

// ---------------------------------------------------------- history line ----

TEST(BenchHistory, SummarizesOneRunPerLine) {
  BenchSuiteResult suite = make_suite(2.0);
  suite.commit = "abc1234";
  suite.label = "nightly";
  const JsonValue doc = JsonParser::parse(bench_json(suite));
  const std::string line = bench_history_line(doc);
  ASSERT_FALSE(line.empty());
  const JsonValue v = JsonParser::parse(line);
  EXPECT_EQ(v.str_or("type", ""), "bench_run");
  EXPECT_EQ(v.str_or("suite", ""), "unit");
  EXPECT_EQ(v.str_or("commit", ""), "abc1234");
  EXPECT_EQ(v.str_or("label", ""), "nightly");
  EXPECT_EQ(v.num_or("threads", 0.0), 2.0);
  EXPECT_FALSE(v.at("counters_available").boolean);
  ASSERT_EQ(v.at("cells").array.size(), 1u);
  const JsonValue& cell = v.at("cells").at(size_t{0});
  EXPECT_EQ(cell.str_or("name", ""), "s100/dt");
  EXPECT_DOUBLE_EQ(cell.num_or("wall_median_sec", 0.0), 2.0 * 1.01);
  EXPECT_GT(cell.num_or("cpu_median_sec", 0.0), 0.0);
}

TEST(BenchHistory, OmitsEmptyProvenanceAndRejectsNonBenchDocs) {
  const JsonValue doc = JsonParser::parse(bench_json(make_suite(1.0)));
  const JsonValue v = JsonParser::parse(bench_history_line(doc));
  EXPECT_FALSE(v.has("commit"));
  EXPECT_FALSE(v.has("label"));
  EXPECT_EQ(bench_history_line(JsonParser::parse("{}")), "");
  EXPECT_EQ(bench_history_line(
                JsonParser::parse(R"({"schema":"dtp.profile.v1"})")),
            "");
  EXPECT_EQ(bench_history_line(JsonParser::parse("[1,2]")), "");
}

// ----------------------------------------------------------- bench diff ----

TEST(BenchDiff, SameFilePassesInjectedRegressionFails) {
  const JsonValue base = JsonParser::parse(bench_json(make_suite(1.0)));
  EXPECT_EQ(bench_diff(base, base, {}, nullptr), 0);

  // +25% wall/CPU time: beyond the 15% default threshold -> exit 2.
  const JsonValue slow = JsonParser::parse(bench_json(make_suite(1.25)));
  EXPECT_EQ(bench_diff(base, slow, {}, nullptr), 2);

  // +25% but a loose threshold tolerates it.
  BenchDiffOptions loose;
  loose.threshold = 0.5;
  EXPECT_EQ(bench_diff(base, slow, loose, nullptr), 0);

  // An improvement never regresses.
  const JsonValue fast = JsonParser::parse(bench_json(make_suite(0.7)));
  EXPECT_EQ(bench_diff(base, fast, {}, nullptr), 0);
}

TEST(BenchDiff, NoisyBaselineIsInformationalOnly) {
  // Baseline cv ~0.5 (wildly noisy): a 2x "regression" must not gate.
  BenchSuiteResult noisy = make_suite(1.0);
  noisy.cells[0].repeats[0].wall_sec = 0.3;
  noisy.cells[0].repeats[1].wall_sec = 1.0;
  noisy.cells[0].repeats[2].wall_sec = 1.7;
  const JsonValue a = JsonParser::parse(bench_json(noisy));
  const JsonValue b = JsonParser::parse(bench_json(make_suite(2.0)));
  EXPECT_EQ(bench_diff(a, b, {}, nullptr), 0);
}

TEST(BenchDiff, SubMillisecondBaselineNeverGates) {
  const JsonValue tiny_a = JsonParser::parse(bench_json(make_suite(1e-5)));
  const JsonValue tiny_b = JsonParser::parse(bench_json(make_suite(5e-5)));
  EXPECT_EQ(bench_diff(tiny_a, tiny_b, {}, nullptr), 0);
}

TEST(BenchDiff, ProvenanceMismatchWarnsButNeverGates) {
  BenchSuiteResult old_suite = make_suite(1.0);
  old_suite.threads = 1;
  old_suite.commit = "aaa1111";
  old_suite.kernel_backend = "scalar";
  BenchSuiteResult new_suite = make_suite(1.0);
  new_suite.threads = 8;
  new_suite.commit = "bbb2222";
  new_suite.kernel_backend = "simd";
  const JsonValue a = JsonParser::parse(bench_json(old_suite));
  const JsonValue b = JsonParser::parse(bench_json(new_suite));
  EXPECT_EQ(a.str_or("kernel_backend", ""), "scalar");
  EXPECT_EQ(JsonParser::parse(bench_history_line(b)).str_or("kernel_backend", ""),
            "simd");

  std::FILE* out = std::tmpfile();
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(bench_diff(a, b, {}, out), 0);  // warnings are non-fatal
  std::rewind(out);
  std::string text(1 << 14, '\0');
  text.resize(std::fread(text.data(), 1, text.size(), out));
  std::fclose(out);
  EXPECT_NE(text.find("thread counts differ (old 1, new 8)"), std::string::npos)
      << text;
  EXPECT_NE(text.find("kernel backends differ (old scalar, new simd)"),
            std::string::npos);
  EXPECT_NE(text.find("commits differ (old aaa1111, new bbb2222)"),
            std::string::npos);

  // Identical provenance stays quiet.
  out = std::tmpfile();
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(bench_diff(a, a, {}, out), 0);
  std::rewind(out);
  std::string quiet(1 << 14, '\0');
  quiet.resize(std::fread(quiet.data(), 1, quiet.size(), out));
  std::fclose(out);
  EXPECT_EQ(quiet.find("WARNING"), std::string::npos) << quiet;
}

TEST(BenchDiff, MalformedInputsExitOne) {
  const JsonValue good = JsonParser::parse(bench_json(make_suite(1.0)));
  const JsonValue not_bench = JsonParser::parse(R"({"type":"iter"})");
  EXPECT_EQ(bench_diff(not_bench, good, {}, nullptr), 1);
  EXPECT_EQ(bench_diff(good, not_bench, {}, nullptr), 1);

  // Disjoint cell sets: nothing to compare is a usage error, not a pass.
  BenchSuiteResult other = make_suite(1.0);
  other.cells[0].name = "different/cell";
  const JsonValue disjoint = JsonParser::parse(bench_json(other));
  EXPECT_EQ(bench_diff(good, disjoint, {}, nullptr), 1);
}

// ----------------------------------------------- pure-observer guarantee ----

placer::PlaceResult run_small_placement() {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  workload::WorkloadOptions wopts;
  wopts.seed = 3;
  wopts.num_cells = 150;
  netlist::Design design = workload::generate_design(lib, wopts, "probe");
  sta::TimingGraph graph(design.netlist);
  placer::GlobalPlacerOptions popts;
  popts.mode = placer::PlacerMode::DiffTiming;
  popts.max_iters = 40;
  popts.min_iters = 10;
  popts.timing_start_iter = 10;
  popts.timing_start_overflow = 1.0;
  placer::GlobalPlacer gp(design, graph, popts);
  return gp.run();
}

TEST(ProfIsPureObserver, SamplingLeavesPlacementBitwiseIdentical) {
  const placer::PlaceResult plain = run_small_placement();

  ThreadPool::global().set_timeline_enabled(true);
  HwCounters hc;
  hc.start();
  ResourceSampler sampler(/*period_ms=*/5);
  sampler.start();
  const placer::PlaceResult observed = run_small_placement();
  sampler.stop();
  hc.stop();
  ThreadPool::global().set_timeline_enabled(false);
  ThreadPool::global().clear_timeline();

  EXPECT_EQ(plain.iterations, observed.iterations);
  EXPECT_EQ(plain.hpwl, observed.hpwl);          // bitwise, not approximate
  EXPECT_EQ(plain.overflow, observed.overflow);
  ASSERT_EQ(plain.history.size(), observed.history.size());
  for (size_t i = 0; i < plain.history.size(); ++i) {
    EXPECT_EQ(plain.history[i].hpwl, observed.history[i].hpwl);
    EXPECT_EQ(plain.history[i].wns, observed.history[i].wns);
    EXPECT_EQ(plain.history[i].tns, observed.history[i].tns);
  }
}

}  // namespace
}  // namespace dtp::obs::prof
