// Thread-pool correctness: coverage, blocking semantics, nested-free usage.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/thread_pool.h"

namespace dtp {
namespace {

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](size_t i) { ++hits[i]; }, /*grain=*/8);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(5, 5, [&](size_t) { ++calls; });
  pool.parallel_for(7, 3, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, SmallRangeRunsInline) {
  ThreadPool pool(4);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ids(3);
  pool.parallel_for(0, 3, [&](size_t i) { ids[i] = std::this_thread::get_id(); },
                    /*grain=*/64);
  for (const auto& id : ids) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, SingleThreadDegradesGracefully) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::vector<int> out(100, 0);
  pool.parallel_for(0, out.size(), [&](size_t i) { out[i] = static_cast<int>(i); },
                    /*grain=*/1);
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], static_cast<int>(i));
}

TEST(ThreadPool, BlocksUntilAllWorkDone) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  pool.parallel_for(1, 1001, [&](size_t i) { sum += static_cast<long>(i); },
                    /*grain=*/10);
  EXPECT_EQ(sum.load(), 500500L);
}

TEST(ThreadPool, GlobalPoolIsUsable) {
  std::atomic<int> count{0};
  ThreadPool::global().parallel_for(0, 50, [&](size_t) { ++count; }, 4);
  EXPECT_EQ(count.load(), 50);
}

}  // namespace
}  // namespace dtp
