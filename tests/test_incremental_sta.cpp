// Incremental STA: cone re-propagation after cell moves must agree exactly
// with a from-scratch evaluation at the same positions.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "liberty/synth_library.h"
#include "obs/activity/activity_tracker.h"
#include "workload/circuit_gen.h"
#include "sta/timer.h"

namespace dtp::sta {
namespace {

using netlist::CellId;
using netlist::Design;

Design make(const liberty::CellLibrary& lib, int cells, uint64_t seed) {
  workload::WorkloadOptions opts;
  opts.num_cells = cells;
  opts.seed = seed;
  opts.clock_scale = 0.6;
  return workload::generate_design(lib, opts);
}

std::vector<CellId> movable_cells(const Design& d) {
  std::vector<CellId> out;
  for (size_t c = 0; c < d.netlist.num_cells(); ++c)
    if (!d.netlist.cell(static_cast<CellId>(c)).fixed)
      out.push_back(static_cast<CellId>(c));
  return out;
}

void expect_state_equal(const Timer& a, const Timer& b, const TimingGraph& g,
                        const netlist::Netlist& nl) {
  for (int l = 0; l < g.num_levels(); ++l) {
    for (netlist::PinId p : g.level(l)) {
      for (int tr = 0; tr < 2; ++tr) {
        const double at_a = a.at(p, tr), at_b = b.at(p, tr);
        if (std::isfinite(at_a) || std::isfinite(at_b)) {
          ASSERT_NEAR(at_a, at_b, 1e-9) << nl.pin_full_name(p) << " tr " << tr;
          ASSERT_NEAR(a.slew(p, tr), b.slew(p, tr), 1e-9)
              << nl.pin_full_name(p) << " tr " << tr;
        }
      }
    }
  }
}

class IncrementalSta : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalSta, MatchesFullEvaluationAfterRandomMoves) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = make(lib, 300, static_cast<uint64_t>(2000 + GetParam()));
  const TimingGraph graph(d.netlist);
  Timer inc(d, graph);
  inc.evaluate(d.cell_x, d.cell_y);

  Rng rng(static_cast<uint64_t>(GetParam()));
  const auto movers = movable_cells(d);
  // Several batches of moves, incremental each time.
  for (int batch = 0; batch < 4; ++batch) {
    std::vector<CellId> moved;
    const int k = 1 + static_cast<int>(rng.uniform_int(0, 5));
    for (int i = 0; i < k; ++i) {
      const CellId c = movers[static_cast<size_t>(
          rng.uniform_int(0, static_cast<int64_t>(movers.size()) - 1))];
      d.cell_x[static_cast<size_t>(c)] += rng.uniform(-20.0, 20.0);
      d.cell_y[static_cast<size_t>(c)] += rng.uniform(-20.0, 20.0);
      moved.push_back(c);
    }
    const auto m_inc = inc.evaluate_incremental(d.cell_x, d.cell_y, moved);

    Timer full(d, graph);
    const auto m_full = full.evaluate(d.cell_x, d.cell_y);
    ASSERT_NEAR(m_inc.wns, m_full.wns, 1e-9) << "batch " << batch;
    ASSERT_NEAR(m_inc.tns, m_full.tns, 1e-9) << "batch " << batch;
    expect_state_equal(inc, full, graph, d.netlist);
  }
}

INSTANTIATE_TEST_SUITE_P(Random, IncrementalSta, ::testing::Range(0, 8));

TEST(IncrementalSta, EmptyMoveSetIsNoop) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = make(lib, 200, 3100);
  const TimingGraph graph(d.netlist);
  Timer t(d, graph);
  const auto m0 = t.evaluate(d.cell_x, d.cell_y);
  const auto m1 = t.evaluate_incremental(d.cell_x, d.cell_y, {});
  EXPECT_EQ(m0.wns, m1.wns);
  EXPECT_EQ(m0.tns, m1.tns);
}

TEST(IncrementalSta, MovingIsolatedCellOnlyTouchesItsCone) {
  // Sanity that the zero-move case of a cell whose position is unchanged
  // reproduces identical metrics (tree rebuild must be idempotent).
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = make(lib, 200, 3200);
  const TimingGraph graph(d.netlist);
  Timer t(d, graph);
  const auto m0 = t.evaluate(d.cell_x, d.cell_y);
  const auto movers = movable_cells(d);
  const auto m1 = t.evaluate_incremental(d.cell_x, d.cell_y, {{movers[3]}});
  EXPECT_NEAR(m0.wns, m1.wns, 1e-12);
  EXPECT_NEAR(m0.tns, m1.tns, 1e-12);
}

TEST(IncrementalSta, EmptyMoveSetRecordsZeroActivity) {
  // The activity cross-check of the no-op edge case: an empty moved set must
  // visit no pins and change nothing, and the attached tracker must observe
  // exactly that.
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = make(lib, 200, 3400);
  const TimingGraph graph(d.netlist);
  Timer t(d, graph);
  obs::ActivityTracker tracker;
  t.set_activity_tracker(&tracker);
  ASSERT_TRUE(tracker.configured());
  const auto m0 = t.evaluate(d.cell_x, d.cell_y);
  EXPECT_EQ(tracker.forward_evals(), 1u);
  EXPECT_EQ(tracker.incremental_evals(), 0u);

  const auto m1 = t.evaluate_incremental(d.cell_x, d.cell_y, {});
  EXPECT_EQ(m0.wns, m1.wns);
  EXPECT_EQ(m0.tns, m1.tns);
  EXPECT_EQ(tracker.incremental_evals(), 1u);
  EXPECT_EQ(tracker.last_incremental_visited(), 0u);
  EXPECT_EQ(tracker.last_incremental_changed(), 0u);
}

TEST(IncrementalSta, AllCellsMovedMatchesFullEvaluationBitwise) {
  // The other extreme: declaring every cell moved must reproduce a
  // from-scratch evaluation bit for bit (the per-net rebuild and level-order
  // cone sweep retime every reachable pin through the same code as the full
  // pass), and the tracker's worklist counts must cover the whole graph.
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = make(lib, 300, 3500);
  const TimingGraph graph(d.netlist);
  Timer inc(d, graph);
  inc.evaluate(d.cell_x, d.cell_y);

  // Deterministic move of every movable cell.
  const auto movers = movable_cells(d);
  for (const CellId c : movers) {
    d.cell_x[static_cast<size_t>(c)] += 0.5 * (static_cast<double>(c % 9) - 4.0);
    d.cell_y[static_cast<size_t>(c)] += 0.5 * (static_cast<double>(c % 6) - 2.5);
  }
  std::vector<CellId> all_cells;
  for (size_t c = 0; c < d.netlist.num_cells(); ++c)
    all_cells.push_back(static_cast<CellId>(c));

  obs::ActivityTracker tracker;
  inc.set_activity_tracker(&tracker);
  const auto m_inc = inc.evaluate_incremental(d.cell_x, d.cell_y, all_cells);

  Timer full(d, graph);
  const auto m_full = full.evaluate(d.cell_x, d.cell_y);
  EXPECT_EQ(m_inc.wns, m_full.wns);
  EXPECT_EQ(m_inc.tns, m_full.tns);
  for (int l = 0; l < graph.num_levels(); ++l)
    for (netlist::PinId p : graph.level(l))
      for (int tr = 0; tr < 2; ++tr) {
        const double a = inc.at(p, tr), b = full.at(p, tr);
        if (std::isfinite(a) || std::isfinite(b)) {
          ASSERT_EQ(a, b) << d.netlist.pin_full_name(p) << " tr " << tr;
          ASSERT_EQ(inc.slew(p, tr), full.slew(p, tr))
              << d.netlist.pin_full_name(p) << " tr " << tr;
        }
      }

  // Activity cross-check: one incremental evaluation whose worklist visited
  // a meaningful share of the graph, with changed <= visited.
  EXPECT_EQ(tracker.incremental_evals(), 1u);
  EXPECT_GT(tracker.last_incremental_visited(), 0u);
  EXPECT_LE(tracker.last_incremental_changed(),
            tracker.last_incremental_visited());
  EXPECT_GT(tracker.last_incremental_changed(), 0u);
}

TEST(IncrementalSta, WorksWithEarlyModeEnabled) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = make(lib, 250, 3300);
  const TimingGraph graph(d.netlist);
  TimerOptions opts;
  opts.enable_early = true;
  Timer inc(d, graph, opts);
  inc.evaluate(d.cell_x, d.cell_y);

  const auto movers = movable_cells(d);
  Rng rng(5);
  std::vector<CellId> moved;
  for (int i = 0; i < 4; ++i) {
    const CellId c = movers[static_cast<size_t>(
        rng.uniform_int(0, static_cast<int64_t>(movers.size()) - 1))];
    d.cell_x[static_cast<size_t>(c)] += rng.uniform(-15.0, 15.0);
    moved.push_back(c);
  }
  const auto m_inc = inc.evaluate_incremental(d.cell_x, d.cell_y, moved);
  Timer full(d, graph, opts);
  const auto m_full = full.evaluate(d.cell_x, d.cell_y);
  EXPECT_NEAR(m_inc.hold_wns, m_full.hold_wns, 1e-9);
  EXPECT_NEAR(m_inc.hold_tns, m_full.hold_tns, 1e-9);
  EXPECT_NEAR(m_inc.wns, m_full.wns, 1e-9);
}

}  // namespace
}  // namespace dtp::sta
