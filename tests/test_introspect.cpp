// Timing introspection (DESIGN.md §8): path extraction against the reference
// STA forward pass, gradient-attribution accounting, pure-observer guarantee,
// and the JSONL artifact contract dtp_report relies on.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "liberty/synth_library.h"
#include "obs/introspect/grad_attrib.h"
#include "obs/introspect/introspect.h"
#include "obs/introspect/path_extract.h"
#include "placer/global_placer.h"
#include "json_test_util.h"
#include "workload/circuit_gen.h"

namespace dtp::obs {
namespace {

using netlist::Design;

Design make_design(int cells, uint64_t seed, const liberty::CellLibrary& lib) {
  workload::WorkloadOptions opts;
  opts.num_cells = cells;
  opts.seed = seed;
  opts.levels = 12;
  opts.clock_scale = 0.7;
  return workload::generate_design(lib, opts);
}

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

// The acceptance criterion: on a Hard-mode timer the captured per-stage
// delays telescope exactly to the endpoint arrival of the reference forward
// pass — at(source) + sum(delays) == at(endpoint).
TEST(PathExtract, StageDelaysSumToEndpointArrival) {
  liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = make_design(400, 71, lib);
  sta::TimingGraph graph(d.netlist);
  sta::Timer timer(d, graph);  // AggMode::Hard default
  timer.evaluate(d.cell_x, d.cell_y);

  const std::vector<PathRecord> paths = extract_critical_paths(timer, 10);
  ASSERT_EQ(paths.size(), 10u);
  for (const PathRecord& rec : paths) {
    ASSERT_GE(rec.stages.size(), 2u);
    EXPECT_EQ(rec.stages.back().pin, rec.endpoint);
    EXPECT_EQ(rec.stages.front().via, StageVia::Source);
    EXPECT_EQ(rec.stages.front().delay, 0.0);
    // Stage-by-stage telescoping and the endpoint identity.
    double at = rec.stages.front().at;
    for (size_t i = 1; i < rec.stages.size(); ++i) {
      at += rec.stages[i].delay;
      EXPECT_NEAR(at, rec.stages[i].at, 1e-6)
          << "stage " << i << " of endpoint " << rec.endpoint;
    }
    EXPECT_NEAR(at, rec.arrival, 1e-6);
    EXPECT_NEAR(rec.arrival, timer.at(rec.endpoint, rec.tr), 1e-12);
    EXPECT_NEAR(rec.slack, timer.endpoint_slack()[rec.endpoint_index], 1e-12);
  }
  // Worst-first ordering.
  for (size_t i = 1; i < paths.size(); ++i)
    EXPECT_LE(paths[i - 1].slack, paths[i].slack);
}

TEST(PathExtract, TopKTruncatesAndZeroDisables) {
  liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = make_design(300, 72, lib);
  sta::TimingGraph graph(d.netlist);
  sta::Timer timer(d, graph);
  timer.evaluate(d.cell_x, d.cell_y);
  EXPECT_EQ(extract_critical_paths(timer, 3).size(), 3u);
  EXPECT_TRUE(extract_critical_paths(timer, 0).empty());
}

// Attribution must account for >= 99.9% of the combined gradient norm.  The
// arrays mimic the placer's combine loop exactly, so the residual is pure
// floating-point noise.
TEST(GradAttribution, AccountsForTotalGradientNorm) {
  const size_t n = 500;
  Rng rng(17);
  std::vector<double> wl_x(n), wl_y(n), den_x(n), den_y(n), t_x(n), t_y(n);
  std::vector<double> total_x(n), total_y(n), precond(n), area(n);
  std::vector<char> movable(n, 1);
  const double lambda = 0.37;
  const double mean_area = 2.0;
  for (size_t c = 0; c < n; ++c) {
    wl_x[c] = rng.normal(0, 1.0);
    wl_y[c] = rng.normal(0, 1.0);
    den_x[c] = rng.normal(0, 0.5);
    den_y[c] = rng.normal(0, 0.5);
    t_x[c] = c % 3 == 0 ? rng.normal(0, 0.2) : 0.0;
    t_y[c] = c % 3 == 0 ? rng.normal(0, 0.2) : 0.0;
    precond[c] = rng.uniform(0.5, 4.0);
    area[c] = rng.uniform(1.0, 3.0);
    movable[c] = c % 11 != 0;  // a few fixed cells carry no gradient
    if (!movable[c]) {
      total_x[c] = total_y[c] = 0.0;
      continue;
    }
    const double p = std::max(1.0, precond[c] + lambda * area[c] / mean_area);
    total_x[c] = (wl_x[c] + den_x[c] + t_x[c]) / p;
    total_y[c] = (wl_y[c] + den_y[c] + t_y[c]) / p;
  }
  GradArrays ga;
  ga.wl_x = wl_x;
  ga.wl_y = wl_y;
  ga.den_x = den_x;
  ga.den_y = den_y;
  ga.t_x = t_x;
  ga.t_y = t_y;
  ga.total_x = total_x;
  ga.total_y = total_y;
  ga.precond = precond;
  ga.area = area;
  ga.movable = movable;
  ga.lambda = lambda;
  ga.mean_area = mean_area;

  const GradAttribution a = compute_grad_attribution(ga, 5);
  EXPECT_GT(a.total.l2, 0.0);
  EXPECT_GE(a.accounted_fraction, 0.999);
  EXPECT_LT(a.residual_l2, 1e-9 * a.total.l2);
  ASSERT_EQ(a.top_timing_cells.size(), 5u);
  for (size_t i = 1; i < a.top_timing_cells.size(); ++i)
    EXPECT_GE(a.top_timing_cells[i - 1].mag, a.top_timing_cells[i].mag);
  // Component norms are positive and the timing component is the sparse one.
  EXPECT_GT(a.wirelength.l2, a.timing.l2);
}

placer::GlobalPlacerOptions introspect_options() {
  placer::GlobalPlacerOptions o;
  o.mode = placer::PlacerMode::DiffTiming;
  o.max_iters = 90;
  o.min_iters = 40;
  o.bins = 32;
  o.timing_start_iter = 40;
  o.timing_start_overflow = 1.0;  // activate on iteration count alone
  return o;
}

// The pure-observer guarantee: a run with the sink attached must land on
// bitwise-identical positions.
TEST(IntrospectionSink, PlacementBitwiseIdenticalWithSinkAttached) {
  liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design plain = make_design(350, 73, lib);
  Design observed = make_design(350, 73, lib);

  {
    sta::TimingGraph graph(plain.netlist);
    placer::GlobalPlacer gp(plain, graph, introspect_options());
    gp.run();
  }
  {
    IntrospectionSink sink;
    ASSERT_TRUE(sink.open(temp_path("introspect_identity.jsonl")));
    placer::GlobalPlacerOptions o = introspect_options();
    o.introspect_sink = &sink;
    o.introspect.sample_period = 10;
    sta::TimingGraph graph(observed.netlist);
    placer::GlobalPlacer gp(observed, graph, o);
    gp.run();
    EXPECT_GT(sink.records_written(), 0u);
  }
  ASSERT_EQ(plain.cell_x.size(), observed.cell_x.size());
  for (size_t c = 0; c < plain.cell_x.size(); ++c) {
    ASSERT_EQ(plain.cell_x[c], observed.cell_x[c]) << "cell " << c;
    ASSERT_EQ(plain.cell_y[c], observed.cell_y[c]) << "cell " << c;
  }
}

// The artifact contract: every line parses, all three record types appear,
// path records telescope, and attribution records account for the gradient.
TEST(IntrospectionSink, EmitsParseableRecordsMeetingAccounting) {
  liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = make_design(350, 74, lib);
  const std::string path = temp_path("introspect_records.jsonl");
  {
    IntrospectionSink sink;
    ASSERT_TRUE(sink.open(path));
    placer::GlobalPlacerOptions o = introspect_options();
    o.introspect_sink = &sink;
    o.introspect.sample_period = 20;
    o.introspect.paths_topk = 5;
    o.introspect.top_m_cells = 4;
    sta::TimingGraph graph(d.netlist);
    placer::GlobalPlacer gp(d, graph, o);
    gp.run();
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  size_t n_path = 0, n_attrib = 0, n_kernel = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    test::JsonValue v;
    ASSERT_NO_THROW(v = test::JsonParser::parse(line)) << line;
    ASSERT_TRUE(v.is_object());
    EXPECT_EQ(v.str_or("design", "?"), "synthetic");
    EXPECT_EQ(v.str_or("mode", "?"), "diff_timing");
    EXPECT_TRUE(v.has("iter"));
    const std::string type = v.str_or("type", "?");
    if (type == "path") {
      ++n_path;
      ASSERT_TRUE(v.has("stages"));
      const auto& stages = v.at("stages").array;
      ASSERT_GE(stages.size(), 2u);
      double at = stages.front().num_or("at", 0.0);
      for (size_t i = 1; i < stages.size(); ++i)
        at += stages[i].num_or("delay", 0.0);
      EXPECT_NEAR(at, v.num_or("arrival", -1.0), 1e-6);
    } else if (type == "grad_attrib") {
      ++n_attrib;
      EXPECT_GE(v.num_or("accounted_fraction", 0.0), 0.999);
      EXPECT_LE(v.at("top_timing_cells").array.size(), 4u);
    } else if (type == "kernel_profile") {
      ++n_kernel;
      EXPECT_TRUE(v.has("forward"));
      for (const auto& l : v.at("forward").array) {
        EXPECT_GE(l.num_or("calls", 0.0), 1.0);
        EXPECT_GE(l.num_or("ms", -1.0), 0.0);
      }
    } else {
      FAIL() << "unexpected record type " << type;
    }
  }
  EXPECT_GT(n_path, 0u);
  EXPECT_GT(n_attrib, 0u);
  EXPECT_GT(n_kernel, 0u);
}

}  // namespace
}  // namespace dtp::obs
