// Sanity of the generated synthetic library: structure, monotonicity,
// physical plausibility of the NLDM tables.
#include <gtest/gtest.h>

#include <cmath>

#include "liberty/synth_library.h"

namespace dtp::liberty {
namespace {

class SynthLibTest : public ::testing::Test {
 protected:
  CellLibrary lib = make_synthetic_library();
};

TEST_F(SynthLibTest, HasExpectedCells) {
  for (const char* name : {"INV_X1", "INV_X2", "INV_X4", "BUF_X1", "NAND2_X1",
                           "NOR2_X1", "AOI21_X1", "XOR2_X1", "DFF_X1"})
    EXPECT_GE(lib.find_cell(name), 0) << name;
  EXPECT_GE(lib.find_cell(CellLibrary::kPortInName), 0);
  EXPECT_GE(lib.find_cell(CellLibrary::kPortOutName), 0);
}

TEST_F(SynthLibTest, EveryCombCellHasOneArcPerInput) {
  for (size_t c = 0; c < lib.size(); ++c) {
    const LibCell& cell = lib.cell(static_cast<int>(c));
    if (cell.kind != CellKind::Combinational) continue;
    size_t inputs = 0;
    for (const auto& pin : cell.pins)
      if (pin.dir == PinDir::Input) ++inputs;
    EXPECT_EQ(cell.arcs.size(), inputs) << cell.name;
    for (const auto& arc : cell.arcs) {
      EXPECT_EQ(arc.kind, ArcKind::Combinational);
      EXPECT_EQ(cell.pins[static_cast<size_t>(arc.to_pin)].dir, PinDir::Output);
    }
  }
}

TEST_F(SynthLibTest, DelayTablesMonotoneInSlewAndLoad) {
  for (size_t c = 0; c < lib.size(); ++c) {
    const LibCell& cell = lib.cell(static_cast<int>(c));
    for (const auto& arc : cell.arcs) {
      for (const Lut* lut : {&arc.cell_rise, &arc.cell_fall, &arc.rise_transition,
                             &arc.fall_transition}) {
        for (size_t i = 0; i < lut->nx(); ++i)
          for (size_t j = 0; j + 1 < lut->ny(); ++j)
            EXPECT_LT(lut->value_at(i, j), lut->value_at(i, j + 1))
                << cell.name << " not monotone in load";
        for (size_t i = 0; i + 1 < lut->nx(); ++i)
          for (size_t j = 0; j < lut->ny(); ++j)
            EXPECT_LE(lut->value_at(i, j), lut->value_at(i + 1, j))
                << cell.name << " not monotone in slew";
      }
    }
  }
}

TEST_F(SynthLibTest, StrongerDrivesAreFasterUnderLoad) {
  const LibCell& x1 = lib.cell(lib.find_cell("INV_X1"));
  const LibCell& x4 = lib.cell(lib.find_cell("INV_X4"));
  const double slew = 0.05, load = 0.1;
  EXPECT_GT(x1.arcs[0].cell_rise.lookup(slew, load),
            x4.arcs[0].cell_rise.lookup(slew, load));
}

TEST_F(SynthLibTest, StrongerDrivesCostMoreInputCap) {
  const LibCell& x1 = lib.cell(lib.find_cell("INV_X1"));
  const LibCell& x4 = lib.cell(lib.find_cell("INV_X4"));
  EXPECT_GT(x4.pins[0].cap, x1.pins[0].cap);
}

TEST_F(SynthLibTest, DffShape) {
  const LibCell& ff = lib.cell(lib.find_cell("DFF_X1"));
  EXPECT_EQ(ff.kind, CellKind::Sequential);
  EXPECT_GT(ff.setup_time, 0.0);
  EXPECT_GT(ff.hold_time, 0.0);
  ASSERT_EQ(ff.arcs.size(), 1u);
  EXPECT_EQ(ff.arcs[0].kind, ArcKind::ClockToQ);
  const int ck = ff.find_pin("CK");
  ASSERT_GE(ck, 0);
  EXPECT_TRUE(ff.pins[static_cast<size_t>(ck)].is_clock);
  EXPECT_EQ(ff.arcs[0].from_pin, ck);
}

TEST_F(SynthLibTest, XorIsNonUnate) {
  const LibCell& x = lib.cell(lib.find_cell("XOR2_X1"));
  for (const auto& arc : x.arcs) EXPECT_EQ(arc.unate, Unateness::NonUnate);
}

TEST_F(SynthLibTest, PinOffsetsInsideCell) {
  for (size_t c = 0; c < lib.size(); ++c) {
    const LibCell& cell = lib.cell(static_cast<int>(c));
    for (const auto& pin : cell.pins) {
      EXPECT_GE(pin.offset_x, 0.0);
      EXPECT_LE(pin.offset_x, cell.width + 1e-9) << cell.name;
      EXPECT_GE(pin.offset_y, 0.0);
      EXPECT_LE(pin.offset_y, cell.height + 1e-9) << cell.name;
    }
  }
}

TEST_F(SynthLibTest, WidthsSnapToSites) {
  const SynthLibraryOptions opts;
  for (size_t c = 0; c < lib.size(); ++c) {
    const LibCell& cell = lib.cell(static_cast<int>(c));
    if (cell.is_port()) continue;
    const double sites = cell.width / opts.site_width;
    EXPECT_NEAR(sites, std::round(sites), 1e-9) << cell.name;
  }
}

}  // namespace
}  // namespace dtp::liberty
