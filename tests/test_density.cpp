// Density model: splat conservation, overflow semantics, force direction.
#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"
#include "liberty/synth_library.h"
#include "placer/density.h"
#include "workload/circuit_gen.h"

namespace dtp::placer {
namespace {

using netlist::Design;

Design make_design(int cells, uint64_t seed, const liberty::CellLibrary& lib) {
  workload::WorkloadOptions opts;
  opts.num_cells = cells;
  opts.seed = seed;
  return workload::generate_design(lib, opts);
}

TEST(Density, SplatConservesMovableArea) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = make_design(300, 61, lib);
  DensityModel dm(d, 32, 1.0);
  dm.update(d.cell_x, d.cell_y);
  double total = std::accumulate(dm.bin_density().begin(), dm.bin_density().end(), 0.0);
  double movable_area = 0.0;
  for (size_t c = 0; c < d.netlist.num_cells(); ++c) {
    if (d.netlist.cell(static_cast<int>(c)).fixed) continue;
    const auto& m = d.netlist.lib_cell_of(static_cast<int>(c));
    movable_area += m.width * m.height;
  }
  // Clamping at the core boundary can shave a little charge; cells start
  // near the center so the loss should be tiny.
  EXPECT_NEAR(total, movable_area, 0.02 * movable_area);
}

TEST(Density, ClusteredWorseThanSpreadOverflow) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = make_design(400, 67, lib);
  DensityModel dm(d, 32, 1.0);
  const auto clustered = dm.update(d.cell_x, d.cell_y);

  // Spread uniformly over the core.
  const Rect& core = d.floorplan.core;
  Rng rng(5);
  auto x = d.cell_x;
  auto y = d.cell_y;
  for (size_t c = 0; c < x.size(); ++c) {
    if (d.netlist.cell(static_cast<int>(c)).fixed) continue;
    x[c] = rng.uniform(core.xl, core.xh - 2.0);
    y[c] = rng.uniform(core.yl, core.yh - 2.0);
  }
  const auto spread = dm.update(x, y);
  EXPECT_LT(spread.overflow, clustered.overflow);
  EXPECT_LT(spread.energy, clustered.energy);
  EXPECT_GT(clustered.overflow, 0.3);  // center-clustered start is congested
}

TEST(Density, ForcePushesApartTwoClusters) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = make_design(200, 71, lib);
  DensityModel dm(d, 32, 1.0);
  // Pile every movable cell onto the core center.
  const Rect& core = d.floorplan.core;
  const double cx = 0.5 * (core.xl + core.xh), cy = 0.5 * (core.yl + core.yh);
  auto x = d.cell_x;
  auto y = d.cell_y;
  std::vector<size_t> movers;
  for (size_t c = 0; c < x.size(); ++c) {
    if (d.netlist.cell(static_cast<int>(c)).fixed) continue;
    movers.push_back(c);
  }
  // Left half slightly left of center, right half slightly right.
  for (size_t i = 0; i < movers.size(); ++i) {
    x[movers[i]] = cx + (i % 2 == 0 ? -3.0 : 3.0);
    y[movers[i]] = cy;
  }
  dm.update(x, y);
  std::vector<double> gx(x.size(), 0.0), gy(y.size(), 0.0);
  dm.add_gradient(x, y, 1.0, gx, gy);
  // Descent direction -g must push left cells further left, right further
  // right (apart), for a strong majority.
  int correct = 0, total = 0;
  for (size_t i = 0; i < movers.size(); ++i) {
    const size_t c = movers[i];
    if (gx[c] == 0.0) continue;
    ++total;
    if (i % 2 == 0 ? (-gx[c] < 0.0) : (-gx[c] > 0.0)) ++correct;
  }
  ASSERT_GT(total, 0);
  // Cells whose inflated footprint straddles the cluster midline can feel a
  // small wrong-way force; a strong majority must still be pushed apart.
  EXPECT_GT(static_cast<double>(correct) / total, 0.8);
}

TEST(Density, FixedPadsContributeNothing) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = make_design(150, 73, lib);
  DensityModel dm(d, 16, 1.0);
  dm.update(d.cell_x, d.cell_y);
  std::vector<double> gx(d.cell_x.size(), 0.0), gy(d.cell_y.size(), 0.0);
  dm.add_gradient(d.cell_x, d.cell_y, 1.0, gx, gy);
  for (size_t c = 0; c < gx.size(); ++c) {
    if (!d.netlist.cell(static_cast<int>(c)).fixed) continue;
    EXPECT_EQ(gx[c], 0.0);
    EXPECT_EQ(gy[c], 0.0);
  }
}

TEST(Density, OverflowZeroWhenPerfectlySpread) {
  // A synthetic check of the overflow definition: put each cell in its own
  // far-apart bin region.
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = make_design(64, 79, lib);
  DensityModel dm(d, 16, 1.0);
  const Rect& core = d.floorplan.core;
  auto x = d.cell_x;
  auto y = d.cell_y;
  size_t k = 0;
  for (size_t c = 0; c < x.size(); ++c) {
    if (d.netlist.cell(static_cast<int>(c)).fixed) continue;
    x[c] = core.xl + (0.5 + static_cast<double>(k % 8)) / 8.0 * core.width() - 1.0;
    y[c] = core.yl + (0.5 + static_cast<double>(k / 8 % 8)) / 8.0 * core.height() - 1.0;
    ++k;
  }
  const auto stats = dm.update(x, y);
  EXPECT_LT(stats.overflow, 0.05);
}

}  // namespace
}  // namespace dtp::placer
