// Fault-tolerance layer (DESIGN.md §7): unit tests for the fault injector,
// health monitor, checkpoints and validation, plus end-to-end fault-injection
// runs through GlobalPlacer demonstrating every recovery path — rollback +
// step-halving, timing -> wirelength degradation, and clean abort once the
// retry budget is exhausted.  All faults are deterministic (seeded), so these
// scenarios reproduce bit-for-bit.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "liberty/synth_library.h"
#include "placer/global_placer.h"
#include "placer/optimizer.h"
#include "robust/checkpoint.h"
#include "robust/fault_injector.h"
#include "robust/health_monitor.h"
#include "robust/validate.h"
#include "workload/circuit_gen.h"

namespace dtp::robust {
namespace {

using netlist::Design;

Design make_design(int cells, uint64_t seed, const liberty::CellLibrary& lib) {
  workload::WorkloadOptions opts;
  opts.num_cells = cells;
  opts.seed = seed;
  opts.levels = 14;
  opts.clock_scale = 0.7;
  return workload::generate_design(lib, opts);
}

placer::GlobalPlacerOptions fast_options() {
  placer::GlobalPlacerOptions o;
  o.max_iters = 500;
  o.min_iters = 60;
  o.bins = 32;
  o.timing_start_iter = 60;
  return o;
}

bool all_positions_finite(const Design& d) {
  for (size_t c = 0; c < d.cell_x.size(); ++c)
    if (!std::isfinite(d.cell_x[c]) || !std::isfinite(d.cell_y[c]))
      return false;
  return true;
}

// ---- fault injector ----

TEST(FaultInjector, ParsesSpecGrammar) {
  FaultInjector inj = FaultInjector::parse(
      "timing_grad@120; total_grad@50+3*1e4; lut@70+forever; checkpoint@2");
  EXPECT_TRUE(inj.armed());
  EXPECT_TRUE(inj.fires(FaultSite::TimingGrad, 120));
  EXPECT_FALSE(inj.fires(FaultSite::TimingGrad, 121));
  EXPECT_TRUE(inj.fires(FaultSite::TotalGrad, 52));
  EXPECT_FALSE(inj.fires(FaultSite::TotalGrad, 53));
  EXPECT_TRUE(inj.fires(FaultSite::LutAdjoint, 100000));
  EXPECT_FALSE(inj.fires(FaultSite::LutAdjoint, 69));
  EXPECT_TRUE(inj.fires(FaultSite::Checkpoint, 2));
  EXPECT_FALSE(inj.fires(FaultSite::Position, 120));

  EXPECT_FALSE(FaultInjector::parse("").armed());
  EXPECT_THROW(FaultInjector::parse("nonsense@5"), std::runtime_error);
  EXPECT_THROW(FaultInjector::parse("total_grad"), std::runtime_error);
  EXPECT_THROW(FaultInjector::parse("total_grad@"), std::runtime_error);
}

TEST(FaultInjector, CorruptionIsDeterministic) {
  std::vector<double> a(512, 1.0), b(512, 1.0);
  FaultInjector i1 = FaultInjector::parse("total_grad@7", 42);
  FaultInjector i2 = FaultInjector::parse("total_grad@7", 42);
  ASSERT_GT(i1.corrupt(FaultSite::TotalGrad, 7, a), 0u);
  // Unrelated calls in between must not shift which entries get hit.
  std::vector<double> junk(64, 0.0);
  i2.corrupt(FaultSite::TotalGrad, 6, junk);  // wrong tick: no-op
  ASSERT_GT(i2.corrupt(FaultSite::TotalGrad, 7, b), 0u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::isnan(a[i]), std::isnan(b[i])) << "entry " << i;
  }
  // A different seed must corrupt a different subset.
  std::vector<double> c(512, 1.0);
  FaultInjector i3 = FaultInjector::parse("total_grad@7", 43);
  i3.corrupt(FaultSite::TotalGrad, 7, c);
  bool same = true;
  for (size_t i = 0; i < a.size(); ++i)
    if (std::isnan(a[i]) != std::isnan(c[i])) same = false;
  EXPECT_FALSE(same);
}

TEST(FaultInjector, MagnitudeMultipliesInsteadOfNan) {
  std::vector<double> a(256, 2.0);
  FaultInjector inj = FaultInjector::parse("position@3*100");
  ASSERT_GT(inj.corrupt(FaultSite::Position, 3, a), 0u);
  bool scaled = false;
  for (double v : a) {
    EXPECT_TRUE(std::isfinite(v));
    if (v == 200.0) scaled = true;
  }
  EXPECT_TRUE(scaled);
}

// ---- health monitor ----

TEST(HealthMonitor, DetectsNonFinite) {
  std::vector<double> good(100, 1.5);
  EXPECT_TRUE(HealthMonitor::all_finite(good, good));
  std::vector<double> bad = good;
  bad[57] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(HealthMonitor::all_finite(bad, good));
  EXPECT_FALSE(HealthMonitor::all_finite(good, bad));
  EXPECT_EQ(HealthMonitor::count_nonfinite(bad, good), 1u);
  bad[3] = std::numeric_limits<double>::infinity();
  EXPECT_EQ(HealthMonitor::count_nonfinite(bad, bad), 4u);
  // Large-but-finite values must not trip the fast sum-poisoning path.
  std::vector<double> big(100, 1e300);
  EXPECT_TRUE(HealthMonitor::all_finite(big, big));
}

TEST(HealthMonitor, DetectsDivergence) {
  HealthMonitor hm;
  // A healthy plateau fills the window without tripping anything.
  for (int i = 0; i < 30; ++i)
    EXPECT_EQ(hm.observe(1000.0 + i, 0.5 - 0.005 * i), Verdict::Healthy);
  // HPWL blow-up far beyond the trailing window.
  EXPECT_EQ(hm.observe(1000.0 * 20, 0.35), Verdict::Diverged);
  // The diverged sample was not absorbed: a healthy one still passes.
  EXPECT_EQ(hm.observe(1031.0, 0.35), Verdict::Healthy);
  // Overflow bouncing sharply upward also counts as divergence.
  EXPECT_EQ(hm.observe(1032.0, 0.9), Verdict::Diverged);
  hm.reset();
  EXPECT_EQ(hm.observe(50000.0, 0.99), Verdict::Healthy);  // fresh window
}

// ---- checkpoint ----

TEST(Checkpoint, RoundTripsAndDetectsCorruption) {
  std::vector<double> x{1, 2, 3}, y{4, 5, 6}, scalars{0.25, 7.0};
  StateBlob opt;
  opt.scalars = {1.5};
  opt.vectors = {{9, 8, 7}};
  Checkpoint ckpt;
  EXPECT_FALSE(ckpt.valid());
  ckpt.capture(42, x, y, scalars, opt);
  ASSERT_TRUE(ckpt.valid());
  EXPECT_EQ(ckpt.iter(), 42);
  EXPECT_TRUE(ckpt.verify());

  std::vector<double> rx(3), ry(3), rs(2);
  StateBlob ropt;
  ASSERT_TRUE(ckpt.restore(rx, ry, rs, ropt));
  EXPECT_EQ(rx, x);
  EXPECT_EQ(ry, y);
  EXPECT_EQ(rs, scalars);
  ASSERT_EQ(ropt.vectors.size(), 1u);
  EXPECT_EQ(ropt.vectors[0], opt.vectors[0]);

  // Flip one payload bit: verify() and restore() must both refuse.
  ckpt.mutable_x()[1] += 1e-9;
  EXPECT_FALSE(ckpt.verify());
  std::vector<double> untouched(3, -1.0);
  EXPECT_FALSE(ckpt.restore(untouched, ry, rs, ropt));
  EXPECT_EQ(untouched, std::vector<double>(3, -1.0));  // no partial writes
}

// ---- optimizer state round trip ----

TEST(Optimizer, NesterovSaveRestoreReplaysIdentically) {
  const size_t n = 16;
  std::vector<double> x(n), y(n), gx(n), gy(n);
  auto grad_at = [&](int k) {
    for (size_t i = 0; i < n; ++i) {
      gx[i] = 0.1 * static_cast<double>(i) - 0.05 * k;
      gy[i] = -0.2 * static_cast<double>(i) + 0.01 * k;
    }
  };
  placer::NesterovOptimizer opt(0.5);
  for (size_t i = 0; i < n; ++i) x[i] = y[i] = static_cast<double>(i);
  for (int k = 0; k < 5; ++k) {
    grad_at(k);
    opt.step(x, y, gx, gy);
  }
  StateBlob blob;
  opt.save_state(blob);
  const std::vector<double> x_at_save = x, y_at_save = y;

  // Continue, then roll back and replay: trajectories must match bitwise.
  for (int k = 5; k < 9; ++k) {
    grad_at(k);
    opt.step(x, y, gx, gy);
  }
  const std::vector<double> x_first = x, y_first = y;

  opt.restore_state(blob);
  x = x_at_save;
  y = y_at_save;
  for (int k = 5; k < 9; ++k) {
    grad_at(k);
    opt.step(x, y, gx, gy);
  }
  EXPECT_EQ(x, x_first);
  EXPECT_EQ(y, y_first);
}

// ---- validation ----

TEST(Validate, AcceptsHealthyDesignFlagsBrokenOnes) {
  liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = make_design(200, 11, lib);
  EXPECT_TRUE(validate(d).ok());

  Design nan_pos = make_design(200, 11, lib);
  nan_pos.cell_x[5] = std::numeric_limits<double>::quiet_NaN();
  const ValidationReport r1 = validate(nan_pos);
  EXPECT_FALSE(r1.ok());
  EXPECT_FALSE(r1.to_string().empty());

  Design short_arrays = make_design(200, 11, lib);
  short_arrays.cell_x.pop_back();
  EXPECT_FALSE(validate(short_arrays).ok());

  Design no_core = make_design(200, 11, lib);
  no_core.floorplan.core = Rect(0, 0, 0, 0);
  EXPECT_FALSE(validate(no_core).ok());

  Design pad_far_away = make_design(200, 11, lib);
  for (size_t c = 0; c < pad_far_away.cell_x.size(); ++c) {
    if (pad_far_away.netlist.cell(static_cast<int>(c)).fixed) {
      pad_far_away.cell_x[c] = 1e9;
      break;
    }
  }
  EXPECT_FALSE(validate(pad_far_away).ok());
}

TEST(Validate, PlacerConstructorThrowsOnBrokenDesign) {
  liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = make_design(200, 12, lib);
  d.cell_y[3] = std::numeric_limits<double>::infinity();
  sta::TimingGraph graph(d.netlist);
  EXPECT_THROW(placer::GlobalPlacer(d, graph, fast_options()),
               ValidationError);
  // With guards off, the constructor performs no validation.
  placer::GlobalPlacerOptions off = fast_options();
  off.robust.enabled = false;
  EXPECT_NO_THROW(placer::GlobalPlacer(d, graph, off));
}

TEST(Validate, AllFixedDesignRunsAsNoOp) {
  liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = make_design(150, 13, lib);
  for (size_t c = 0; c < d.cell_x.size(); ++c)
    d.netlist.cell(static_cast<int>(c)).fixed = true;
  sta::TimingGraph graph(d.netlist);
  placer::GlobalPlacer placer(d, graph, fast_options());
  const auto res = placer.run();
  EXPECT_EQ(res.health, RunHealth::Ok);
  EXPECT_EQ(res.iterations, 0);
  EXPECT_TRUE(all_positions_finite(d));
}

// ---- end-to-end recovery paths ----

TEST(Recovery, GuardsPreserveBitwiseTrajectory) {
  liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design with_guards = make_design(400, 21, lib);
  Design without = make_design(400, 21, lib);
  sta::TimingGraph g1(with_guards.netlist), g2(without.netlist);

  placer::GlobalPlacerOptions on = fast_options();
  on.mode = placer::PlacerMode::DiffTiming;
  placer::GlobalPlacerOptions off = on;
  off.robust.enabled = false;

  placer::GlobalPlacer p1(with_guards, g1, on);
  const auto r1 = p1.run();
  placer::GlobalPlacer p2(without, g2, off);
  const auto r2 = p2.run();

  EXPECT_EQ(r1.health, RunHealth::Ok);
  EXPECT_EQ(r1.iterations, r2.iterations);
  EXPECT_EQ(with_guards.cell_x, without.cell_x);  // bitwise, not approx
  EXPECT_EQ(with_guards.cell_y, without.cell_y);
}

TEST(Recovery, RollsBackFromNanGradientAndConverges) {
  liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = make_design(500, 22, lib);
  sta::TimingGraph graph(d.netlist);
  placer::GlobalPlacerOptions o = fast_options();
  o.robust.fault_spec = "total_grad@80";
  placer::GlobalPlacer placer(d, graph, o);
  const auto res = placer.run();
  EXPECT_EQ(res.health, RunHealth::Recovered);
  EXPECT_GE(res.rollbacks, 1);
  EXPECT_LT(res.overflow, 0.10);
  EXPECT_TRUE(all_positions_finite(d));
  ASSERT_FALSE(res.recoveries.empty());
  EXPECT_EQ(res.recoveries[0].action, "rollback");
}

TEST(Recovery, RollsBackFromNanPositions) {
  liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = make_design(500, 23, lib);
  sta::TimingGraph graph(d.netlist);
  placer::GlobalPlacerOptions o = fast_options();
  o.robust.fault_spec = "position@90";
  placer::GlobalPlacer placer(d, graph, o);
  const auto res = placer.run();
  EXPECT_EQ(res.health, RunHealth::Recovered);
  EXPECT_GE(res.rollbacks, 1);
  EXPECT_LT(res.overflow, 0.10);
  EXPECT_TRUE(all_positions_finite(d));
}

TEST(Recovery, DetectsDivergenceAndRollsBack) {
  liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = make_design(500, 24, lib);
  sta::TimingGraph graph(d.netlist);
  placer::GlobalPlacerOptions o = fast_options();
  o.robust.fault_spec = "position@100*25";  // finite blow-up, no NaN
  placer::GlobalPlacer placer(d, graph, o);
  const auto res = placer.run();
  EXPECT_EQ(res.health, RunHealth::Recovered);
  EXPECT_GE(res.rollbacks, 1);
  EXPECT_LT(res.overflow, 0.10);
  bool saw_divergence = false;
  for (const RecoveryEvent& ev : res.recoveries)
    if (ev.kind == "divergence") saw_divergence = true;
  EXPECT_TRUE(saw_divergence);
}

TEST(Recovery, DegradesTimingOnBadTimingGradients) {
  liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = make_design(500, 25, lib);
  sta::TimingGraph graph(d.netlist);
  placer::GlobalPlacerOptions o = fast_options();
  o.mode = placer::PlacerMode::DiffTiming;
  o.timing_start_overflow = 1.0;  // activate timing at iter 60 regardless
  o.robust.fault_spec = "timing_grad@80+4";
  placer::GlobalPlacer placer(d, graph, o);
  const auto res = placer.run();
  EXPECT_GE(res.timing_fallbacks, 1);
  EXPECT_EQ(res.rollbacks, 0);  // sanitized gradients never reach positions
  EXPECT_EQ(res.health, RunHealth::Recovered);
  EXPECT_LT(res.overflow, 0.10);
  bool saw_degrade = false;
  for (const RecoveryEvent& ev : res.recoveries)
    if (ev.action == "degrade") saw_degrade = true;
  EXPECT_TRUE(saw_degrade);
}

TEST(Recovery, DegradesTimingOnLutAdjointFault) {
  liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = make_design(500, 26, lib);
  sta::TimingGraph graph(d.netlist);
  placer::GlobalPlacerOptions o = fast_options();
  o.mode = placer::PlacerMode::DiffTiming;
  o.timing_start_overflow = 1.0;  // activate timing at iter 60 regardless
  o.robust.fault_spec = "lut@80+4";  // corrupts inside DiffTimer::backward
  placer::GlobalPlacer placer(d, graph, o);
  const auto res = placer.run();
  EXPECT_GE(res.timing_fallbacks, 1);
  EXPECT_LT(res.overflow, 0.10);
  EXPECT_TRUE(all_positions_finite(d));
}

TEST(Recovery, AbortsCleanlyAfterBudgetExhausted) {
  liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = make_design(500, 27, lib);
  sta::TimingGraph graph(d.netlist);
  placer::GlobalPlacerOptions o = fast_options();
  o.robust.fault_spec = "total_grad@70+forever";
  o.robust.max_recoveries = 3;
  placer::GlobalPlacer placer(d, graph, o);
  const auto res = placer.run();
  EXPECT_EQ(res.health, RunHealth::Failed);
  EXPECT_EQ(res.rollbacks, 3);
  // Positions hold the best-known checkpoint: finite and inside the core.
  EXPECT_TRUE(all_positions_finite(d));
  const Rect& core = d.floorplan.core;
  for (size_t c = 0; c < d.cell_x.size(); ++c) {
    EXPECT_GE(d.cell_x[c], core.xl - 1e-9);
    EXPECT_LE(d.cell_x[c], core.xh + 1e-9);
  }
  bool saw_abort = false;
  for (const RecoveryEvent& ev : res.recoveries)
    if (ev.action == "abort") saw_abort = true;
  EXPECT_TRUE(saw_abort);
}

TEST(Recovery, FaultedRunsAreDeterministic) {
  liberty::CellLibrary lib = liberty::make_synthetic_library();
  placer::GlobalPlacerOptions o = fast_options();
  o.robust.fault_spec = "total_grad@80";
  o.robust.fault_seed = 7;

  Design d1 = make_design(400, 28, lib);
  sta::TimingGraph g1(d1.netlist);
  const auto r1 = placer::GlobalPlacer(d1, g1, o).run();
  Design d2 = make_design(400, 28, lib);
  sta::TimingGraph g2(d2.netlist);
  const auto r2 = placer::GlobalPlacer(d2, g2, o).run();

  EXPECT_EQ(r1.iterations, r2.iterations);
  EXPECT_EQ(r1.rollbacks, r2.rollbacks);
  EXPECT_EQ(d1.cell_x, d2.cell_x);
  EXPECT_EQ(d1.cell_y, d2.cell_y);
}

}  // namespace
}  // namespace dtp::robust
