// Timer behavior under constraint configuration: IO overrides, output loads,
// wire parasitics, clock slew — each must move arrival times the way physics
// says it should.
#include <gtest/gtest.h>

#include "liberty/synth_library.h"
#include "sta/cell_arc_eval.h"
#include "sta/timer.h"
#include "workload/circuit_gen.h"

namespace dtp::sta {
namespace {

using netlist::Design;

Design make(const liberty::CellLibrary& lib, uint64_t seed = 771) {
  workload::WorkloadOptions opts;
  opts.num_cells = 250;
  opts.seed = seed;
  return workload::generate_design(lib, opts);
}

TEST(TimerConfig, InputDelayOverrideShiftsCone) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = make(lib);
  const TimingGraph graph(d.netlist);
  Timer t0(d, graph);
  const double wns0 = t0.evaluate(d.cell_x, d.cell_y).wns;

  // Delay every primary input by 0.2 ns; WNS can only get worse, and if the
  // critical path starts at a PI it worsens by exactly 0.2.
  for (size_t c = 0; c < d.netlist.num_cells(); ++c) {
    const auto id = static_cast<netlist::CellId>(c);
    if (d.netlist.lib_cell_of(id).kind == liberty::CellKind::PortIn &&
        d.netlist.cell(id).name != "clk")
      d.constraints.input_delay_override[d.netlist.cell(id).name] = 0.2;
  }
  Timer t1(d, graph);
  const double wns1 = t1.evaluate(d.cell_x, d.cell_y).wns;
  EXPECT_LE(wns1, wns0 + 1e-12);
  EXPECT_GE(wns1, wns0 - 0.2 - 1e-9);
}

TEST(TimerConfig, LargerOutputLoadSlowsPoPaths) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = make(lib, 773);
  const TimingGraph graph(d.netlist);

  // Find a PO endpoint and compare its slack under two load settings.
  Timer t0(d, graph);
  t0.evaluate(d.cell_x, d.cell_y);
  int po_ep = -1;
  for (size_t e = 0; e < graph.endpoints().size(); ++e)
    if (graph.endpoints()[e].kind == EndpointKind::PrimaryOutput &&
        std::isfinite(t0.endpoint_slack()[e])) {
      po_ep = static_cast<int>(e);
      break;
    }
  ASSERT_GE(po_ep, 0);
  const double slack0 = t0.endpoint_slack()[static_cast<size_t>(po_ep)];

  d.constraints.output_load = 0.05;  // ~10x the default
  Timer t1(d, graph);
  t1.evaluate(d.cell_x, d.cell_y);
  EXPECT_LT(t1.endpoint_slack()[static_cast<size_t>(po_ep)], slack0);
}

TEST(TimerConfig, HigherWireResistanceHurtsTiming) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = make(lib, 777);
  const TimingGraph graph(d.netlist);
  Timer t0(d, graph);
  const double tns0 = t0.evaluate(d.cell_x, d.cell_y).tns;
  d.constraints.wire_res *= 4.0;
  Timer t1(d, graph);
  const double tns1 = t1.evaluate(d.cell_x, d.cell_y).tns;
  EXPECT_LT(tns1, tns0);
}

TEST(TimerConfig, ZeroWireParasiticsStillRuns) {
  // Degenerate RC (all wire delay zero) must not produce NaNs — the impulse
  // clamp handles sqrt(0) and the slew division.
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = make(lib, 779);
  d.constraints.wire_res = 0.0;
  d.constraints.wire_cap = 0.0;
  const TimingGraph graph(d.netlist);
  Timer t(d, graph);
  const auto m = t.evaluate(d.cell_x, d.cell_y);
  EXPECT_TRUE(std::isfinite(m.wns));
  EXPECT_TRUE(std::isfinite(m.tns));
  for (int l = 0; l < graph.num_levels(); ++l)
    for (netlist::PinId p : graph.level(l))
      for (int tr = 0; tr < 2; ++tr)
        if (std::isfinite(t.at(p, tr))) {
          EXPECT_GT(t.slew(p, tr), 0.0);
        }
}

TEST(TimerConfig, SlowerClockSlewSlowsClockToQ) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = make(lib, 781);
  const TimingGraph graph(d.netlist);
  // Find a flop Q pin.
  netlist::PinId q = netlist::kInvalidId;
  for (size_t c = 0; c < d.netlist.num_cells(); ++c) {
    const auto id = static_cast<netlist::CellId>(c);
    if (d.netlist.cell_is_sequential(id)) {
      q = d.netlist.pin_of_cell(id, "Q");
      if (graph.in_graph(q)) break;
      q = netlist::kInvalidId;
    }
  }
  ASSERT_NE(q, netlist::kInvalidId);
  Timer t0(d, graph);
  t0.evaluate(d.cell_x, d.cell_y);
  const double at0 = t0.at(q, kRise);
  d.constraints.clock_slew *= 8.0;
  Timer t1(d, graph);
  t1.evaluate(d.cell_x, d.cell_y);
  EXPECT_GT(t1.at(q, kRise), at0);
}

TEST(TimerConfig, StagedApiMatchesEvaluate) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  const Design d = make(lib, 783);
  const TimingGraph graph(d.netlist);
  Timer a(d, graph);
  const auto ma = a.evaluate(d.cell_x, d.cell_y);
  Timer b(d, graph);
  b.update_positions(d.cell_x, d.cell_y);
  b.build_trees();
  b.run_elmore();
  b.propagate();
  b.update_slacks();
  const auto mb = b.metrics();
  EXPECT_DOUBLE_EQ(ma.wns, mb.wns);
  EXPECT_DOUBLE_EQ(ma.tns, mb.tns);
}

TEST(TimerConfig, NonUnateXorPropagatesBothTransitions) {
  // Build pi -> XOR2 (other input: pi2) -> po and check both output edges see
  // finite arrivals from both input edges.
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d(&lib, "xor");
  auto& nl = d.netlist;
  const int pin_id = lib.find_cell(liberty::CellLibrary::kPortInName);
  const int pout_id = lib.find_cell(liberty::CellLibrary::kPortOutName);
  const auto a = nl.add_cell("a", pin_id);
  const auto b = nl.add_cell("b", pin_id);
  const auto x = nl.add_cell("x", lib.find_cell("XOR2_X1"));
  const auto y = nl.add_cell("y", pout_id);
  auto n1 = nl.add_net("n1");
  nl.connect(n1, a, "PAD");
  nl.connect(n1, x, "A");
  auto n2 = nl.add_net("n2");
  nl.connect(n2, b, "PAD");
  nl.connect(n2, x, "B");
  auto n3 = nl.add_net("n3");
  nl.connect(n3, x, "Z");
  nl.connect(n3, y, "PAD");
  d.init_positions();
  d.cell_x = {0, 0, 30, 60};
  d.cell_y = {0, 20, 10, 10};

  const TimingGraph graph(nl);
  Timer t(d, graph);
  t.evaluate(d.cell_x, d.cell_y);
  const netlist::PinId z = nl.pin_of_cell(x, "Z");
  EXPECT_TRUE(std::isfinite(t.at(z, kRise)));
  EXPECT_TRUE(std::isfinite(t.at(z, kFall)));
  // Non-unate: 2 candidates per output transition; the max of the rise
  // candidates differs from a single-unate path (weak check: both edges have
  // sensible ordering with the inputs).
  EXPECT_GT(t.at(z, kRise), t.at(nl.pin_of_cell(x, "A"), kRise));
  EXPECT_GT(t.at(z, kFall), t.at(nl.pin_of_cell(x, "B"), kFall));
}

}  // namespace
}  // namespace dtp::sta
