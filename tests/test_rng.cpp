// Determinism and distribution sanity for the seeded RNG.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace dtp {
namespace {

TEST(Rng, DeterministicBySeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= (v == 3);
    saw_hi |= (v == 7);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, HeavyTailBounds) {
  Rng rng(13);
  int ones = 0;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.heavy_tail(2.3, 24);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 24);
    if (v == 1) ++ones;
  }
  // A power law with alpha=2.3 is dominated by its head.
  EXPECT_GT(ones, 5000);
}

}  // namespace
}  // namespace dtp
