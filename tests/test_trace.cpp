// Tracer: span nesting, thread attribution, ring overflow, and Chrome
// trace_event JSON that parses back cleanly.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>

#include "json_test_util.h"
#include "obs/trace.h"

namespace dtp {
namespace {

using obs::TraceEvent;
using obs::Tracer;
using test::JsonParser;
using test::JsonValue;

class TraceTest : public ::testing::Test {
 protected:
  void TearDown() override { Tracer::instance().disable(); }
};

TEST_F(TraceTest, DisabledRecordsNothing) {
  Tracer::instance().disable();
  { DTP_TRACE_SCOPE("ignored"); }
  Tracer::instance().enable();
  EXPECT_EQ(Tracer::instance().num_events(), 0u);
}

TEST_F(TraceTest, NestedScopesRecordContainedSpans) {
  Tracer& tracer = Tracer::instance();
  tracer.enable();
  {
    DTP_TRACE_SCOPE("outer");
    {
      DTP_TRACE_SCOPE("inner");
    }
  }
  tracer.disable();

  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  const auto inner = std::find_if(events.begin(), events.end(), [](auto& e) {
    return std::string(e.name) == "inner";
  });
  const auto outer = std::find_if(events.begin(), events.end(), [](auto& e) {
    return std::string(e.name) == "outer";
  });
  ASSERT_NE(inner, events.end());
  ASSERT_NE(outer, events.end());
  // The inner span is contained in the outer span's extent.
  EXPECT_GE(inner->ts_us, outer->ts_us);
  EXPECT_LE(inner->ts_us + inner->dur_us, outer->ts_us + outer->dur_us + 1e-3);
  EXPECT_GE(outer->dur_us, inner->dur_us);
}

TEST_F(TraceTest, ThreadsGetDistinctAttribution) {
  Tracer& tracer = Tracer::instance();
  tracer.enable();
  {
    DTP_TRACE_SCOPE("main_thread");
  }
  std::thread t1([] { DTP_TRACE_SCOPE("worker_a"); });
  std::thread t2([] { DTP_TRACE_SCOPE("worker_b"); });
  t1.join();
  t2.join();
  tracer.disable();

  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 3u);
  std::set<uint32_t> tids;
  for (const TraceEvent& e : events) tids.insert(e.tid);
  EXPECT_EQ(tids.size(), 3u) << "each thread must get its own tid";
}

TEST_F(TraceTest, RingOverwritesOldestAndCountsDropped) {
  Tracer& tracer = Tracer::instance();
  tracer.enable(/*capacity=*/8);
  for (int i = 0; i < 20; ++i) {
    DTP_TRACE_SCOPE("span");
  }
  tracer.disable();
  EXPECT_EQ(tracer.num_events(), 8u);
  EXPECT_EQ(tracer.dropped(), 12u);
  // Survivors are the most recent spans: timestamps strictly increase.
  const auto events = tracer.events();
  for (size_t i = 1; i < events.size(); ++i)
    EXPECT_GE(events[i].ts_us, events[i - 1].ts_us);
}

TEST_F(TraceTest, JsonRoundTripsThroughAParser) {
  Tracer& tracer = Tracer::instance();
  tracer.enable();
  {
    DTP_TRACE_SCOPE("sta_forward");
    DTP_TRACE_SCOPE("elmore_forward");
  }
  std::thread t([] { DTP_TRACE_SCOPE("worker"); });
  t.join();
  tracer.disable();

  const JsonValue doc = JsonParser::parse(tracer.to_json());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.str("displayTimeUnit"), "ms");
  ASSERT_TRUE(doc.has("traceEvents"));
  const JsonValue& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_EQ(events.array.size(), 3u);
  std::set<std::string> names;
  for (const JsonValue& e : events.array) {
    ASSERT_TRUE(e.is_object());
    // The Chrome trace_event contract Perfetto needs: complete events with
    // name/ph/pid/tid/ts/dur.
    EXPECT_EQ(e.str("ph"), "X");
    EXPECT_TRUE(e.has("pid"));
    EXPECT_TRUE(e.has("tid"));
    EXPECT_GE(e.num("ts"), 0.0);
    EXPECT_GE(e.num("dur"), 0.0);
    names.insert(e.str("name"));
  }
  EXPECT_TRUE(names.count("sta_forward"));
  EXPECT_TRUE(names.count("elmore_forward"));
  EXPECT_TRUE(names.count("worker"));
}

TEST_F(TraceTest, ReenableStartsAFreshSession) {
  Tracer& tracer = Tracer::instance();
  tracer.enable();
  {
    DTP_TRACE_SCOPE("old_session");
  }
  tracer.disable();
  tracer.enable();
  {
    DTP_TRACE_SCOPE("new_session");
  }
  tracer.disable();
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "new_session");
}

}  // namespace
}  // namespace dtp
