// Tracer: span nesting, thread attribution, ring overflow, and Chrome
// trace_event JSON that parses back cleanly.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>

#include "json_test_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dtp {
namespace {

using obs::TraceEvent;
using obs::Tracer;
using test::JsonParser;
using test::JsonValue;

class TraceTest : public ::testing::Test {
 protected:
  void TearDown() override { Tracer::instance().disable(); }
};

TEST_F(TraceTest, DisabledRecordsNothing) {
  Tracer::instance().disable();
  { DTP_TRACE_SCOPE("ignored"); }
  Tracer::instance().enable();
  EXPECT_EQ(Tracer::instance().num_events(), 0u);
}

TEST_F(TraceTest, NestedScopesRecordContainedSpans) {
  Tracer& tracer = Tracer::instance();
  tracer.enable();
  {
    DTP_TRACE_SCOPE("outer");
    {
      DTP_TRACE_SCOPE("inner");
    }
  }
  tracer.disable();

  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  const auto inner = std::find_if(events.begin(), events.end(), [](auto& e) {
    return std::string(e.name) == "inner";
  });
  const auto outer = std::find_if(events.begin(), events.end(), [](auto& e) {
    return std::string(e.name) == "outer";
  });
  ASSERT_NE(inner, events.end());
  ASSERT_NE(outer, events.end());
  // The inner span is contained in the outer span's extent.
  EXPECT_GE(inner->ts_us, outer->ts_us);
  EXPECT_LE(inner->ts_us + inner->dur_us, outer->ts_us + outer->dur_us + 1e-3);
  EXPECT_GE(outer->dur_us, inner->dur_us);
}

TEST_F(TraceTest, ThreadsGetDistinctAttribution) {
  Tracer& tracer = Tracer::instance();
  tracer.enable();
  {
    DTP_TRACE_SCOPE("main_thread");
  }
  std::thread t1([] { DTP_TRACE_SCOPE("worker_a"); });
  std::thread t2([] { DTP_TRACE_SCOPE("worker_b"); });
  t1.join();
  t2.join();
  tracer.disable();

  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 3u);
  std::set<uint32_t> tids;
  for (const TraceEvent& e : events) tids.insert(e.tid);
  EXPECT_EQ(tids.size(), 3u) << "each thread must get its own tid";
}

TEST_F(TraceTest, RingOverwritesOldestAndCountsDropped) {
  Tracer& tracer = Tracer::instance();
  tracer.enable(/*capacity=*/8);
  for (int i = 0; i < 20; ++i) {
    DTP_TRACE_SCOPE("span");
  }
  tracer.disable();
  EXPECT_EQ(tracer.num_events(), 8u);
  EXPECT_EQ(tracer.dropped(), 12u);
  // Survivors are the most recent spans: timestamps strictly increase.
  const auto events = tracer.events();
  for (size_t i = 1; i < events.size(); ++i)
    EXPECT_GE(events[i].ts_us, events[i - 1].ts_us);
}

TEST_F(TraceTest, JsonRoundTripsThroughAParser) {
  Tracer& tracer = Tracer::instance();
  tracer.enable();
  {
    DTP_TRACE_SCOPE("sta_forward");
    DTP_TRACE_SCOPE("elmore_forward");
  }
  std::thread t([] { DTP_TRACE_SCOPE("worker"); });
  t.join();
  tracer.disable();

  const JsonValue doc = JsonParser::parse(tracer.to_json());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.str("displayTimeUnit"), "ms");
  ASSERT_TRUE(doc.has("traceEvents"));
  const JsonValue& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_EQ(events.array.size(), 3u);
  std::set<std::string> names;
  for (const JsonValue& e : events.array) {
    ASSERT_TRUE(e.is_object());
    // The Chrome trace_event contract Perfetto needs: complete events with
    // name/ph/pid/tid/ts/dur.
    EXPECT_EQ(e.str("ph"), "X");
    EXPECT_TRUE(e.has("pid"));
    EXPECT_TRUE(e.has("tid"));
    EXPECT_GE(e.num("ts"), 0.0);
    EXPECT_GE(e.num("dur"), 0.0);
    names.insert(e.str("name"));
  }
  EXPECT_TRUE(names.count("sta_forward"));
  EXPECT_TRUE(names.count("elmore_forward"));
  EXPECT_TRUE(names.count("worker"));
}

TEST_F(TraceTest, OverflowFeedsMetadataAndCounter) {
  Tracer& tracer = Tracer::instance();
  obs::Counter& dropped_metric =
      obs::MetricsRegistry::instance().counter("obs.trace.dropped_spans");
  const uint64_t metric_before = dropped_metric.value();
  tracer.enable(/*capacity=*/4);
  for (int i = 0; i < 11; ++i) {
    DTP_TRACE_SCOPE("overflow");
  }
  std::thread t([] {
    for (int i = 0; i < 6; ++i) {
      DTP_TRACE_SCOPE("worker_overflow");
    }
  });
  t.join();
  tracer.disable();

  // Capacity is per-thread: each ring keeps its newest 4 spans and counts
  // the rest as dropped (7 on the main thread, 2 on the worker).
  EXPECT_EQ(tracer.dropped(), (11u - 4u) + (6u - 4u));
  EXPECT_EQ(dropped_metric.value() - metric_before, tracer.dropped());

  // The per-thread breakdown reaches the Chrome trace metadata, so a capped
  // trace file still reports exactly what it lost and where.
  const JsonValue doc = JsonParser::parse(tracer.to_json());
  ASSERT_TRUE(doc.has("metadata"));
  const JsonValue& meta = doc.at("metadata");
  EXPECT_EQ(meta.num("dropped_spans"), 9.0);
  ASSERT_TRUE(meta.has("per_thread_dropped"));
  uint64_t sum = 0;
  std::set<double> drops;
  for (const JsonValue& row : meta.at("per_thread_dropped").array) {
    EXPECT_TRUE(row.has("tid"));
    sum += static_cast<uint64_t>(row.num("dropped"));
    drops.insert(row.num("dropped"));
  }
  EXPECT_EQ(sum, 9u);
  EXPECT_TRUE(drops.count(7.0));
  EXPECT_TRUE(drops.count(2.0));
}

TEST_F(TraceTest, MetadataOmitsDroplessThreads) {
  Tracer& tracer = Tracer::instance();
  tracer.enable(/*capacity=*/8);
  {
    DTP_TRACE_SCOPE("fits");
  }
  tracer.disable();
  const JsonValue doc = JsonParser::parse(tracer.to_json());
  ASSERT_TRUE(doc.has("metadata"));
  EXPECT_EQ(doc.at("metadata").num("dropped_spans"), 0.0);
  EXPECT_TRUE(doc.at("metadata").at("per_thread_dropped").array.empty());
}

class LiveStackTest : public ::testing::Test {
 protected:
  void TearDown() override {
    Tracer::instance().disable_live();
    Tracer::instance().disable();
  }
};

TEST_F(LiveStackTest, SampleSeesOpenSpans) {
  Tracer& tracer = Tracer::instance();
  tracer.enable_live();
  Tracer::LiveSample samples[Tracer::kMaxLiveThreads];
  {
    DTP_PROF_SCOPE("outer");
    DTP_PROF_SCOPE("inner");
    const size_t n =
        tracer.sample_live(samples, Tracer::kMaxLiveThreads, nullptr);
    bool found = false;
    for (size_t i = 0; i < n; ++i) {
      if (samples[i].tid != Tracer::live_thread_id()) continue;
      found = true;
      ASSERT_EQ(samples[i].depth, 2u);
      EXPECT_STREQ(samples[i].frames[0], "outer");
      EXPECT_STREQ(samples[i].frames[1], "inner");
    }
    EXPECT_TRUE(found);
  }
  // Both spans closed: this thread has no published stack anymore.
  const size_t n =
      tracer.sample_live(samples, Tracer::kMaxLiveThreads, nullptr);
  for (size_t i = 0; i < n; ++i)
    EXPECT_NE(samples[i].tid, Tracer::live_thread_id());
}

TEST_F(LiveStackTest, ProfScopeIsInvisibleToTheRing) {
  Tracer& tracer = Tracer::instance();
  tracer.enable();  // ring on, live off
  {
    DTP_PROF_SCOPE("prof_only");
    DTP_TRACE_SCOPE("ring_span");
  }
  tracer.disable();
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "ring_span");
}

TEST_F(LiveStackTest, TraceScopePublishesToBothWhenBothEnabled) {
  Tracer& tracer = Tracer::instance();
  tracer.enable();
  tracer.enable_live();
  {
    DTP_TRACE_SCOPE("both");
    Tracer::LiveSample samples[Tracer::kMaxLiveThreads];
    const size_t n =
        tracer.sample_live(samples, Tracer::kMaxLiveThreads, nullptr);
    bool found = false;
    for (size_t i = 0; i < n; ++i)
      if (samples[i].tid == Tracer::live_thread_id() &&
          samples[i].depth >= 1 &&
          std::string(samples[i].frames[0]) == "both")
        found = true;
    EXPECT_TRUE(found);
  }
  tracer.disable_live();
  tracer.disable();
  EXPECT_EQ(tracer.num_events(), 1u);
}

TEST_F(LiveStackTest, DeepNestingTruncatesWithoutCorruption) {
  Tracer& tracer = Tracer::instance();
  tracer.enable_live();
  const size_t truncated_before = tracer.live_truncated();
  // Open kMaxLiveDepth + 4 spans by hand; the visible window must stay at the
  // first kMaxLiveDepth frames and the overflow must be counted.
  constexpr size_t kDeep = Tracer::kMaxLiveDepth + 4;
  for (size_t i = 0; i < kDeep; ++i) Tracer::live_push("deep");
  EXPECT_EQ(tracer.live_truncated() - truncated_before, 4u);
  Tracer::LiveSample samples[Tracer::kMaxLiveThreads];
  size_t torn = 0;
  const size_t n =
      tracer.sample_live(samples, Tracer::kMaxLiveThreads, &torn);
  bool found = false;
  for (size_t i = 0; i < n; ++i)
    if (samples[i].tid == Tracer::live_thread_id()) {
      found = true;
      EXPECT_EQ(samples[i].depth, Tracer::kMaxLiveDepth);
    }
  EXPECT_TRUE(found);
  EXPECT_EQ(torn, 0u);
  // Unwind completely; the slot must end balanced at depth zero.
  for (size_t i = 0; i < kDeep; ++i) Tracer::live_pop();
  const size_t m =
      tracer.sample_live(samples, Tracer::kMaxLiveThreads, nullptr);
  for (size_t i = 0; i < m; ++i)
    EXPECT_NE(samples[i].tid, Tracer::live_thread_id());
}

TEST_F(TraceTest, ReenableStartsAFreshSession) {
  Tracer& tracer = Tracer::instance();
  tracer.enable();
  {
    DTP_TRACE_SCOPE("old_session");
  }
  tracer.disable();
  tracer.enable();
  {
    DTP_TRACE_SCOPE("new_session");
  }
  tracer.disable();
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "new_session");
}

}  // namespace
}  // namespace dtp
