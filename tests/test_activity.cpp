// Timing-activity & convergence observability (DESIGN.md §11): the P²
// streaming quantile estimator, per-level activity counters, slack sketch,
// criticality-churn tracker, record serialization, and the end-to-end
// activity JSONL artifact emitted by the placer.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "common/json_writer.h"
#include "common/p2_quantile.h"
#include "json_test_util.h"
#include "liberty/synth_library.h"
#include "obs/activity/activity_record.h"
#include "obs/activity/activity_tracker.h"
#include "obs/activity/churn_tracker.h"
#include "obs/activity/slack_sketch.h"
#include "obs/introspect/introspect.h"
#include "placer/global_placer.h"
#include "sta/timing_graph.h"
#include "workload/circuit_gen.h"

namespace dtp::obs {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// ----------------------------------------------------------- P2Quantile ----

TEST(P2Quantile, ExactBelowFiveObservations) {
  P2Quantile q(0.5);
  EXPECT_EQ(q.value(), 0.0);  // empty
  q.observe(3.0);
  EXPECT_DOUBLE_EQ(q.value(), 3.0);
  q.observe(1.0);
  q.observe(2.0);
  EXPECT_EQ(q.count(), 3u);
  EXPECT_DOUBLE_EQ(q.value(), 2.0);  // nearest-rank median of {1,2,3}
}

TEST(P2Quantile, TracksUniformStreamQuantiles) {
  // Deterministic LCG stream, uniform in [0,1): each estimate must land
  // within a couple percent of the true quantile.
  P2Quantile p10(0.10), p50(0.50), p95(0.95);
  uint64_t s = 12345;
  for (int i = 0; i < 20000; ++i) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    const double x =
        static_cast<double>(s >> 11) / static_cast<double>(1ULL << 53);
    p10.observe(x);
    p50.observe(x);
    p95.observe(x);
  }
  EXPECT_NEAR(p10.value(), 0.10, 0.02);
  EXPECT_NEAR(p50.value(), 0.50, 0.02);
  EXPECT_NEAR(p95.value(), 0.95, 0.02);
}

TEST(P2Quantile, ResetRetargets) {
  P2Quantile q(0.5);
  for (int i = 0; i < 100; ++i) q.observe(static_cast<double>(i));
  q.reset(0.9);
  EXPECT_EQ(q.count(), 0u);
  EXPECT_DOUBLE_EQ(q.quantile(), 0.9);
  EXPECT_EQ(q.value(), 0.0);
}

// ------------------------------------------------------- ActivityTracker ----

// Two CSR levels: level 0 = pins {0,1}, level 1 = pin {2}.
void configure_small(ActivityTracker& t) {
  static constexpr std::array<int, 3> offsets = {0, 2, 3};
  static constexpr std::array<int, 3> pins = {0, 1, 2};
  t.configure(std::span<const int>(offsets), std::span<const int>(pins), 3);
}

TEST(ActivityTracker, CountsChangedPinsPerLevel) {
  ActivityTracker t;
  t.set_epsilons(1e-3, 1e-3, 1e-9);
  configure_small(t);
  ASSERT_TRUE(t.configured());
  EXPECT_EQ(t.num_levels(), 2u);
  EXPECT_EQ(t.pins_total(), 3u);

  std::array<double, 6> at = {1.0, 1.1, 2.0, 2.1, 3.0, 3.1};
  std::array<double, 6> slew = {0.1, 0.1, 0.2, 0.2, 0.3, 0.3};
  // First pass: previous snapshot is NaN, so every pin counts as active.
  t.record_forward(at.data(), slew.data());
  EXPECT_EQ(t.forward_evals(), 1u);
  EXPECT_EQ(t.fwd_active_total(), 3u);
  EXPECT_DOUBLE_EQ(t.fwd_active_fraction(), 1.0);

  // Identical pass: nothing active.
  t.record_forward(at.data(), slew.data());
  EXPECT_EQ(t.fwd_active_total(), 0u);
  EXPECT_DOUBLE_EQ(t.fwd_active_fraction(), 0.0);

  // Sub-epsilon wiggle on pin 0 doesn't count; real moves on pins 1 and 2 do.
  at[0] += 1e-4;            // below at_eps
  slew[1 * 2 + 1] += 2e-3;  // pin 1 fall slew, above slew_eps
  at[2 * 2] += 0.5;         // pin 2 rise AT
  t.record_forward(at.data(), slew.data());
  EXPECT_EQ(t.fwd_active_total(), 2u);
  EXPECT_EQ(t.levels()[0].pins, 2u);
  EXPECT_EQ(t.levels()[0].fwd_active, 1u);
  EXPECT_EQ(t.levels()[1].fwd_active, 1u);

  // Finite -> NaN is a change; NaN -> NaN is not.
  at[0] = kNaN;
  t.record_forward(at.data(), slew.data());
  EXPECT_EQ(t.fwd_active_total(), 1u);
  t.record_forward(at.data(), slew.data());
  EXPECT_EQ(t.fwd_active_total(), 0u);
}

TEST(ActivityTracker, BackwardCountsLiveAdjoints) {
  ActivityTracker t;
  t.set_epsilons(1e-6, 1e-6, 1e-9);
  configure_small(t);
  // Pin 1's adjoint is below the epsilon, pin 2's is live.
  const std::array<double, 6> g_at = {0.0, 0.0, 1e-15, 0.0, 0.5, 0.0};
  const std::array<double, 6> g_slew = {};
  t.record_backward(g_at.data(), g_slew.data());
  EXPECT_EQ(t.backward_evals(), 1u);
  EXPECT_EQ(t.bwd_live_total(), 1u);
  EXPECT_EQ(t.levels()[0].bwd_live, 0u);
  EXPECT_EQ(t.levels()[1].bwd_live, 1u);
  EXPECT_DOUBLE_EQ(t.bwd_live_fraction(), 1.0 / 3.0);
}

TEST(ActivityTracker, RecordsIncrementalCounts) {
  ActivityTracker t;
  configure_small(t);
  EXPECT_EQ(t.incremental_evals(), 0u);
  t.record_incremental(7, 3);
  EXPECT_EQ(t.incremental_evals(), 1u);
  EXPECT_EQ(t.last_incremental_visited(), 7u);
  EXPECT_EQ(t.last_incremental_changed(), 3u);
}

// ----------------------------------------------------------- SlackSketch ----

TEST(SlackSketch, ExactCountsBandsAndQuantiles) {
  SlackSketch sk;
  sk.set_band_width(0.5);
  const std::array<double, 6> slack = {-1.0, -0.2, 0.3, 1.4, kInf, kNaN};
  sk.observe_epoch(std::span<const double>(slack));
  EXPECT_EQ(sk.epochs(), 1u);
  EXPECT_EQ(sk.count(), 4u);  // non-finite entries skipped
  EXPECT_EQ(sk.violating(), 2u);
  EXPECT_DOUBLE_EQ(sk.wns(), -1.0);
  EXPECT_DOUBLE_EQ(sk.max_slack(), 1.4);
  // Bands anchored at WNS, width 0.5: [-1,-0.5) -> {-1.0}, [-0.5,0) ->
  // {-0.2}, [0,0.5) -> {0.3}, [0.5,1.0) -> empty (1.4 is past the last band).
  EXPECT_EQ(sk.band(0), 1u);
  EXPECT_EQ(sk.band(1), 1u);
  EXPECT_EQ(sk.band(2), 1u);
  EXPECT_EQ(sk.band(3), 0u);
  // Exact (< 5 samples) nearest-rank median of {-1.0,-0.2,0.3,1.4}.
  EXPECT_DOUBLE_EQ(sk.p50(), 0.3);

  // Each epoch describes only itself — no running mixture.
  const std::array<double, 2> slack2 = {0.1, 0.2};
  sk.observe_epoch(std::span<const double>(slack2));
  EXPECT_EQ(sk.epochs(), 2u);
  EXPECT_EQ(sk.count(), 2u);
  EXPECT_EQ(sk.violating(), 0u);
  EXPECT_DOUBLE_EQ(sk.wns(), 0.1);
}

TEST(SlackSketch, AllUnconstrainedEpochIsWellDefined) {
  SlackSketch sk;
  const std::array<double, 3> slack = {kInf, kNaN, kInf};
  sk.observe_epoch(std::span<const double>(slack));
  EXPECT_EQ(sk.epochs(), 1u);
  EXPECT_EQ(sk.count(), 0u);
  EXPECT_EQ(sk.violating(), 0u);
  EXPECT_DOUBLE_EQ(sk.wns(), 0.0);
}

// ---------------------------------------------------------- ChurnTracker ----

TEST(ChurnTracker, JaccardOverTopKSets) {
  ChurnTracker c;
  c.configure(6, 3);
  ASSERT_TRUE(c.configured());
  std::array<double, 6> s = {0.9, 0.1, 0.5, 0.2, 0.8, kNaN};
  // Top-3 by slack ascending: {1, 3, 2}.
  c.observe(std::span<const double>(s));
  EXPECT_EQ(c.epochs(), 1u);
  EXPECT_DOUBLE_EQ(c.jaccard(), 1.0);  // first epoch is stable by definition
  EXPECT_EQ(c.set_size(), 3u);
  EXPECT_EQ(c.entered(), 3u);
  EXPECT_EQ(c.left(), 0u);

  // Endpoint 4 turns critical and displaces 2: top-3 = {1, 4, 3}.
  s[4] = 0.15;
  c.observe(std::span<const double>(s));
  EXPECT_DOUBLE_EQ(c.jaccard(), 0.5);  // |{1,3}| / |{1,2,3,4}|
  EXPECT_EQ(c.entered(), 1u);
  EXPECT_EQ(c.left(), 1u);

  // Identical epoch: fully stable.
  c.observe(std::span<const double>(s));
  EXPECT_DOUBLE_EQ(c.jaccard(), 1.0);
  EXPECT_EQ(c.entered(), 0u);
  EXPECT_EQ(c.left(), 0u);
}

TEST(ChurnTracker, TiesBreakByEndpointIndex) {
  // Equal slacks: the path extractor's ranking keeps the lower index, so the
  // set must be {0, 1} and stay stable.
  ChurnTracker c;
  c.configure(4, 2);
  const std::array<double, 4> s = {0.5, 0.5, 0.5, 0.5};
  c.observe(std::span<const double>(s));
  c.observe(std::span<const double>(s));
  EXPECT_DOUBLE_EQ(c.jaccard(), 1.0);
  EXPECT_EQ(c.set_size(), 2u);
}

TEST(ChurnTracker, FewerFiniteEndpointsThanTopK) {
  ChurnTracker c;
  c.configure(5, 4);
  const std::array<double, 5> s = {kNaN, 0.3, kInf, 0.1, kNaN};
  c.observe(std::span<const double>(s));
  EXPECT_EQ(c.set_size(), 2u);  // only the finite endpoints qualify
  EXPECT_EQ(c.entered(), 2u);
}

// -------------------------------------------------------- record assembly ----

TEST(ActivityRecord, HeadroomSpeedupIsClampedInverse) {
  EXPECT_DOUBLE_EQ(predicted_incremental_speedup(0.5), 2.0);
  EXPECT_DOUBLE_EQ(predicted_incremental_speedup(1.0), 1.0);
  EXPECT_DOUBLE_EQ(predicted_incremental_speedup(2.0), 1.0);     // over-full
  EXPECT_DOUBLE_EQ(predicted_incremental_speedup(0.0), 1000.0);  // floor
  EXPECT_DOUBLE_EQ(predicted_incremental_speedup(1e-6), 1000.0);
}

TEST(ActivityRecord, SerializesAllSections) {
  ActivityTracker t;
  t.set_epsilons(1e-3, 1e-3, 1e-9);
  configure_small(t);
  const std::array<double, 6> at = {1.0, 1.1, 2.0, 2.1, 3.0, 3.1};
  const std::array<double, 6> slew = {0.1, 0.1, 0.2, 0.2, 0.3, 0.3};
  t.record_forward(at.data(), slew.data());  // all 3 pins active
  const std::array<double, 6> g_at = {0.0, 0.0, 0.0, 0.0, 0.5, 0.0};
  const std::array<double, 6> g_slew = {};
  t.record_backward(g_at.data(), g_slew.data());
  t.record_incremental(5, 2);

  SlackSketch sk;
  sk.set_band_width(0.5);
  const std::array<double, 3> slack = {-0.4, 0.1, 0.6};
  sk.observe_epoch(std::span<const double>(slack));
  ChurnTracker c;
  c.configure(3, 2);
  c.observe(std::span<const double>(slack));

  JsonWriter w;
  w.begin_object();
  w.key("type").value("activity");
  append_activity_json(w, 42, t, sk, c);
  w.end_object();
  const test::JsonValue v = test::JsonParser::parse(w.str());
  EXPECT_EQ(v.str_or("type", "?"), "activity");
  EXPECT_DOUBLE_EQ(v.num_or("iter", -1.0), 42.0);
  EXPECT_DOUBLE_EQ(v.num_or("pins_total", 0.0), 3.0);

  ASSERT_TRUE(v.has("forward"));
  EXPECT_DOUBLE_EQ(v.at("forward").num_or("active", 0.0), 3.0);
  EXPECT_DOUBLE_EQ(v.at("forward").num_or("frac", 0.0), 1.0);
  ASSERT_TRUE(v.at("forward").has("by_level"));
  EXPECT_EQ(v.at("forward").at("by_level").array.size(), 2u);

  ASSERT_TRUE(v.has("backward"));
  EXPECT_DOUBLE_EQ(v.at("backward").num_or("live", 0.0), 1.0);

  ASSERT_TRUE(v.has("incremental"));
  EXPECT_DOUBLE_EQ(v.at("incremental").num_or("visited", 0.0), 5.0);
  EXPECT_DOUBLE_EQ(v.at("incremental").num_or("changed", 0.0), 2.0);

  ASSERT_TRUE(v.has("slack"));
  EXPECT_DOUBLE_EQ(v.at("slack").num_or("endpoints", 0.0), 3.0);
  EXPECT_DOUBLE_EQ(v.at("slack").num_or("violating", 0.0), 1.0);
  EXPECT_DOUBLE_EQ(v.at("slack").num_or("wns", 0.0), -0.4);

  ASSERT_TRUE(v.has("churn"));
  EXPECT_DOUBLE_EQ(v.at("churn").num_or("jaccard", 0.0), 1.0);
  EXPECT_DOUBLE_EQ(v.at("churn").num_or("set_size", 0.0), 2.0);
}

TEST(ActivityRecord, SummaryAggregatesAndEstimatesHeadroom) {
  ActivitySummaryAccum acc;
  acc.observe(10, 1.0, 0.8, 1.0, -1.0, -0.1);
  acc.observe(20, 0.2, 0.1, 0.9, -0.5, 0.0);
  acc.observe(30, 0.1, 0.05, 0.95, -0.3, 0.1);
  EXPECT_EQ(acc.samples(), 3u);
  EXPECT_EQ(acc.first_iter(), 10);
  EXPECT_EQ(acc.last_iter(), 30);
  EXPECT_DOUBLE_EQ(acc.fwd_frac_min(), 0.1);
  EXPECT_DOUBLE_EQ(acc.fwd_frac_last(), 0.1);
  EXPECT_DOUBLE_EQ(acc.fwd_frac_p50(), 0.2);  // exact (< 5 samples)
  EXPECT_DOUBLE_EQ(acc.first_wns(), -1.0);
  EXPECT_DOUBLE_EQ(acc.last_wns(), -0.3);
  EXPECT_DOUBLE_EQ(acc.last_slack_p50(), 0.1);

  ActivityTracker t;
  configure_small(t);
  SlackSketch sk;
  const std::array<double, 3> slack = {-0.3, 0.1, 0.6};
  sk.observe_epoch(std::span<const double>(slack));

  JsonWriter w;
  w.begin_object();
  w.key("type").value("activity_summary");
  append_activity_summary_json(w, acc, t, sk);
  w.end_object();
  const test::JsonValue v = test::JsonParser::parse(w.str());
  EXPECT_DOUBLE_EQ(v.num_or("samples", 0.0), 3.0);
  ASSERT_TRUE(v.has("headroom"));
  EXPECT_DOUBLE_EQ(v.at("headroom").num_or("median_active_frac", 0.0), 0.2);
  EXPECT_DOUBLE_EQ(v.at("headroom").num_or("predicted_speedup", 0.0), 5.0);
  ASSERT_TRUE(v.has("slack"));
  EXPECT_DOUBLE_EQ(v.at("slack").num_or("first_wns", 0.0), -1.0);
  EXPECT_DOUBLE_EQ(v.at("slack").num_or("wns", 0.0), -0.3);
}

// ------------------------------------------------------- placer artifact ----

netlist::Design make_design(int cells, uint64_t seed,
                            const liberty::CellLibrary& lib) {
  workload::WorkloadOptions opts;
  opts.num_cells = cells;
  opts.seed = seed;
  opts.levels = 12;
  opts.clock_scale = 0.7;
  return workload::generate_design(lib, opts);
}

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

TEST(ActivityStream, PlacerEmitsParseableActivityRecords) {
  liberty::CellLibrary lib = liberty::make_synthetic_library();
  netlist::Design d = make_design(350, 75, lib);
  const std::string path = temp_path("activity_records.jsonl");
  {
    IntrospectionSink sink;
    ASSERT_TRUE(sink.open(path));
    placer::GlobalPlacerOptions o;
    o.mode = placer::PlacerMode::DiffTiming;
    o.max_iters = 90;
    o.min_iters = 40;
    o.bins = 32;
    o.timing_start_iter = 40;
    o.timing_start_overflow = 1.0;
    o.activity_sink = &sink;
    o.activity.sample_period = 10;
    o.activity.churn_top_k = 16;
    sta::TimingGraph graph(d.netlist);
    placer::GlobalPlacer gp(d, graph, o);
    gp.run();
    EXPECT_GT(sink.records_written(), 0u);
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  size_t n_activity = 0, n_summary = 0;
  int last_iter = -1;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    test::JsonValue v;
    ASSERT_NO_THROW(v = test::JsonParser::parse(line)) << line;
    ASSERT_TRUE(v.is_object());
    EXPECT_EQ(v.str_or("design", "?"), "synthetic");
    EXPECT_EQ(v.str_or("mode", "?"), "diff_timing");
    const std::string type = v.str_or("type", "?");
    if (type == "activity") {
      ++n_activity;
      const int iter = static_cast<int>(v.num_or("iter", -1.0));
      EXPECT_GT(iter, last_iter);  // strictly advancing sample iterations
      last_iter = iter;
      ASSERT_TRUE(v.has("forward"));
      const double frac = v.at("forward").num_or("frac", -1.0);
      EXPECT_GE(frac, 0.0);
      EXPECT_LE(frac, 1.0);
      EXPECT_GE(v.at("forward").num_or("evals", 0.0), 1.0);
      ASSERT_TRUE(v.has("backward"));
      EXPECT_GE(v.at("backward").num_or("evals", 0.0), 1.0);
      ASSERT_TRUE(v.has("slack"));
      EXPECT_GT(v.at("slack").num_or("endpoints", 0.0), 0.0);
      EXPECT_LE(v.at("slack").num_or("wns", 1.0),
                v.at("slack").num_or("p50", 0.0) + 1e-12);
      ASSERT_TRUE(v.has("churn"));
      const double j = v.at("churn").num_or("jaccard", -1.0);
      EXPECT_GE(j, 0.0);
      EXPECT_LE(j, 1.0);
    } else if (type == "activity_summary") {
      ++n_summary;
      EXPECT_GE(v.num_or("samples", 0.0), 1.0);
      ASSERT_TRUE(v.has("fwd_frac"));
      ASSERT_TRUE(v.has("headroom"));
      EXPECT_GE(v.at("headroom").num_or("predicted_speedup", 0.0), 1.0);
      EXPECT_DOUBLE_EQ(
          predicted_incremental_speedup(
              v.at("headroom").num_or("median_active_frac", 0.0)),
          v.at("headroom").num_or("predicted_speedup", -1.0));
    } else {
      FAIL() << "unexpected record type " << type;
    }
  }
  EXPECT_GE(n_activity, 2u);
  EXPECT_EQ(n_summary, 1u);
}

}  // namespace
}  // namespace dtp::obs
