// Timing-driven detailed placement (incremental-STA-based swaps) and
// gamma annealing.
#include <gtest/gtest.h>

#include "liberty/synth_library.h"
#include "placer/global_placer.h"
#include "placer/legalizer.h"
#include "workload/circuit_gen.h"

namespace dtp::placer {
namespace {

using netlist::Design;

Design placed_design(const liberty::CellLibrary& lib, int cells, uint64_t seed) {
  workload::WorkloadOptions opts;
  opts.num_cells = cells;
  opts.seed = seed;
  opts.clock_scale = 0.6;
  Design d = workload::generate_design(lib, opts);
  sta::TimingGraph graph(d.netlist);
  GlobalPlacerOptions po;
  po.max_iters = 350;
  po.bins = 32;
  GlobalPlacer gp(d, graph, po);
  gp.run();
  legalize(d, d.cell_x, d.cell_y);
  return d;
}

TEST(TimingDp, ImprovesTnsAndKeepsTimerConsistent) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = placed_design(lib, 400, 4001);
  sta::TimingGraph graph(d.netlist);
  sta::Timer timer(d, graph);
  const auto m0 = timer.evaluate(d.cell_x, d.cell_y);
  ASSERT_LT(m0.tns, 0.0);

  WirelengthModel wl(d);
  const auto res = timing_driven_swaps(d, wl, timer, d.cell_x, d.cell_y,
                                       /*tns_weight=*/50.0, /*max_passes=*/2);
  EXPECT_GE(res.tns_gain, 0.0);
  EXPECT_GT(res.swaps_tried, 0u);

  // The incremental timer state must equal a from-scratch evaluation.
  sta::Timer fresh(d, graph);
  const auto m_fresh = fresh.evaluate(d.cell_x, d.cell_y);
  EXPECT_NEAR(timer.metrics().tns, m_fresh.tns, 1e-9);
  EXPECT_NEAR(timer.metrics().wns, m_fresh.wns, 1e-9);
  EXPECT_NEAR(m_fresh.tns, m0.tns + res.tns_gain, 1e-9);
}

TEST(TimingDp, StaysLegal) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = placed_design(lib, 400, 4003);
  sta::TimingGraph graph(d.netlist);
  sta::Timer timer(d, graph);
  timer.evaluate(d.cell_x, d.cell_y);
  WirelengthModel wl(d);
  timing_driven_swaps(d, wl, timer, d.cell_x, d.cell_y, 50.0);
  std::string why;
  EXPECT_TRUE(is_legal(d, d.cell_x, d.cell_y, &why)) << why;
}

TEST(TimingDp, ZeroWeightDegeneratesToHpwlOnly) {
  // With tns_weight = 0 only HPWL-improving swaps are accepted, so HPWL
  // cannot increase.
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = placed_design(lib, 300, 4005);
  sta::TimingGraph graph(d.netlist);
  sta::Timer timer(d, graph);
  timer.evaluate(d.cell_x, d.cell_y);
  WirelengthModel wl(d);
  const double h0 = wl.hpwl_unweighted(d.cell_x, d.cell_y);
  const auto res = timing_driven_swaps(d, wl, timer, d.cell_x, d.cell_y, 0.0);
  EXPECT_LE(res.hpwl_delta, 1e-9);
  EXPECT_LE(wl.hpwl_unweighted(d.cell_x, d.cell_y), h0 + 1e-6);
}

TEST(GammaAnneal, RunsAndReachesFinalGamma) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  workload::WorkloadOptions opts;
  opts.num_cells = 300;
  opts.seed = 4007;
  opts.clock_scale = 0.6;
  Design d = workload::generate_design(lib, opts);
  sta::TimingGraph graph(d.netlist);
  GlobalPlacerOptions po;
  po.mode = PlacerMode::DiffTiming;
  po.max_iters = 300;
  po.bins = 32;
  po.timing_start_iter = 40;
  po.gamma_timing = 0.1;
  po.gamma_timing_final = 0.02;
  po.gamma_anneal_iters = 50;
  GlobalPlacer gp(d, graph, po);
  const auto res = gp.run();
  EXPECT_GT(res.iterations, 100);
  // The run must complete with finite metrics (annealing must not blow up).
  sta::Timer timer(d, graph);
  const auto m = timer.evaluate(d.cell_x, d.cell_y);
  EXPECT_TRUE(std::isfinite(m.tns));
}

}  // namespace
}  // namespace dtp::placer
