// Slew-dependent setup/hold constraint LUTs (NLDM-style): forward semantics,
// IO round trip, and their gradient path (validated implicitly by the main
// gradchecks; here the mechanism itself).
#include <gtest/gtest.h>

#include <sstream>

#include "liberty/liberty_io.h"
#include "liberty/synth_library.h"
#include "sta/timer.h"
#include "workload/circuit_gen.h"

namespace dtp::sta {
namespace {

using netlist::Design;

TEST(ConstraintLut, SyntheticDffHasValidTables) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  const liberty::LibCell& ff = lib.cell(lib.find_cell("DFF_X1"));
  ASSERT_TRUE(ff.setup_lut.valid());
  ASSERT_TRUE(ff.hold_lut.valid());
  // At the smallest slews the tables approach the scalar fallbacks.
  EXPECT_NEAR(ff.setup_lut.lookup(0.0, 0.0), ff.setup_time, 1e-9);
  EXPECT_NEAR(ff.hold_lut.lookup(0.0, 0.0), ff.hold_time, 1e-9);
  // Monotone increasing in data slew.
  EXPECT_GT(ff.setup_lut.lookup(0.3, 0.02), ff.setup_lut.lookup(0.01, 0.02));
}

TEST(ConstraintLut, RoundTripsThroughLibertyIo) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  std::stringstream ss;
  liberty::write_liberty(lib, ss);
  const liberty::CellLibrary back = liberty::parse_liberty(ss);
  const liberty::LibCell& a = lib.cell(lib.find_cell("DFF_X1"));
  const liberty::LibCell& b = back.cell(back.find_cell("DFF_X1"));
  ASSERT_TRUE(b.setup_lut.valid());
  ASSERT_TRUE(b.hold_lut.valid());
  for (double ds : {0.01, 0.1, 0.4})
    for (double cs : {0.01, 0.05}) {
      EXPECT_NEAR(a.setup_lut.lookup(ds, cs), b.setup_lut.lookup(ds, cs), 1e-9);
      EXPECT_NEAR(a.hold_lut.lookup(ds, cs), b.hold_lut.lookup(ds, cs), 1e-9);
    }
}

TEST(ConstraintLut, EndpointRatUsesDataSlew) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  workload::WorkloadOptions opts;
  opts.num_cells = 200;
  opts.seed = 808;
  const Design d = workload::generate_design(lib, opts);
  const TimingGraph graph(d.netlist);
  Timer timer(d, graph);
  timer.evaluate(d.cell_x, d.cell_y);

  // Find a flop endpoint: its RAT must equal T - setup_lut(slew(D), clk slew)
  // and carry a negative slew derivative (larger slew => earlier RAT).
  bool checked = false;
  for (size_t e = 0; e < graph.endpoints().size(); ++e) {
    const Endpoint& ep = graph.endpoints()[e];
    if (ep.kind != EndpointKind::FlopData) continue;
    if (!std::isfinite(timer.at(ep.pin, 0))) continue;
    const auto req = timer.endpoint_setup_rat(e, 0);
    const liberty::LibCell& ff =
        d.netlist.lib_cell_of(d.netlist.pin(ep.pin).cell);
    const double expect =
        d.constraints.clock_period -
        ff.setup_lut.lookup(timer.slew(ep.pin, 0), d.constraints.clock_slew);
    EXPECT_NEAR(req.value, expect, 1e-12);
    EXPECT_LT(req.d_dslew, 0.0);
    checked = true;
    break;
  }
  EXPECT_TRUE(checked);
}

TEST(ConstraintLut, ScalarFallbackWhenLutAbsent) {
  liberty::CellLibrary lib = liberty::make_synthetic_library();
  liberty::LibCell& ff = lib.cell(lib.find_cell("DFF_X1"));
  ff.setup_lut = liberty::Lut();  // invalidate
  ff.hold_lut = liberty::Lut();
  workload::WorkloadOptions opts;
  opts.num_cells = 150;
  opts.seed = 809;
  const Design d = workload::generate_design(lib, opts);
  const TimingGraph graph(d.netlist);
  TimerOptions topts;
  topts.enable_early = true;
  Timer timer(d, graph, topts);
  timer.evaluate(d.cell_x, d.cell_y);
  for (size_t e = 0; e < graph.endpoints().size(); ++e) {
    if (graph.endpoints()[e].kind != EndpointKind::FlopData) continue;
    const auto req = timer.endpoint_setup_rat(e, 0);
    EXPECT_NEAR(req.value, d.constraints.clock_period - ff.setup_time, 1e-12);
    EXPECT_EQ(req.d_dslew, 0.0);
    const auto hreq = timer.endpoint_hold_requirement(e, 1);
    EXPECT_NEAR(hreq.value, ff.hold_time, 1e-12);
    EXPECT_EQ(hreq.d_dslew, 0.0);
    break;
  }
}

TEST(ConstraintLut, LutConstraintsTightenSlackVsScalar) {
  // The LUTs add slew-dependent margin on top of the scalar base, so WNS
  // under LUT constraints is no better than under the scalars alone.
  liberty::CellLibrary lut_lib = liberty::make_synthetic_library();
  liberty::CellLibrary scalar_lib = liberty::make_synthetic_library();
  auto& ff = scalar_lib.cell(scalar_lib.find_cell("DFF_X1"));
  ff.setup_lut = liberty::Lut();
  ff.hold_lut = liberty::Lut();

  workload::WorkloadOptions opts;
  opts.num_cells = 250;
  opts.seed = 811;
  const Design d_lut = workload::generate_design(lut_lib, opts);
  const Design d_scalar = workload::generate_design(scalar_lib, opts);
  const TimingGraph g_lut(d_lut.netlist);
  const TimingGraph g_scalar(d_scalar.netlist);
  Timer t_lut(d_lut, g_lut);
  Timer t_scalar(d_scalar, g_scalar);
  const double wns_lut = t_lut.evaluate(d_lut.cell_x, d_lut.cell_y).wns;
  const double wns_scalar =
      t_scalar.evaluate(d_scalar.cell_x, d_scalar.cell_y).wns;
  EXPECT_LE(wns_lut, wns_scalar + 1e-12);
}

}  // namespace
}  // namespace dtp::sta
