// Momentum net weighting (the DREAMPlace 4.0 baseline [24]).
#include <gtest/gtest.h>

#include "liberty/synth_library.h"
#include "placer/net_weighting.h"
#include "workload/circuit_gen.h"

namespace dtp::placer {
namespace {

using netlist::Design;
using netlist::NetId;

struct Fixture {
  liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design design;
  sta::TimingGraph graph;
  sta::Timer timer;
  WirelengthModel wl;

  explicit Fixture(double clock_scale, uint64_t seed = 201)
      : design(make(clock_scale, seed, lib)),
        graph(design.netlist),
        timer(design, graph),
        wl(design) {}

  static Design make(double clock_scale, uint64_t seed,
                     const liberty::CellLibrary& lib) {
    workload::WorkloadOptions opts;
    opts.num_cells = 400;
    opts.seed = seed;
    opts.clock_scale = clock_scale;
    return workload::generate_design(lib, opts);
  }
};

TEST(NetWeighting, BoostsOnlyCriticalNets) {
  Fixture f(/*clock_scale=*/0.5);  // violating design
  f.timer.evaluate(f.design.cell_x, f.design.cell_y);
  ASSERT_LT(f.timer.metrics().wns, 0.0);

  NetWeighting nw(f.design, f.graph);
  const size_t critical = nw.update(f.timer, f.wl);
  EXPECT_GT(critical, 0u);

  size_t boosted = 0, kept = 0;
  for (NetId n : f.graph.timing_nets()) {
    const double w = f.wl.net_weights()[static_cast<size_t>(n)];
    if (w > 1.0 + 1e-12)
      ++boosted;
    else {
      EXPECT_NEAR(w, 1.0, 1e-12);
      ++kept;
    }
  }
  EXPECT_EQ(boosted, critical);
  EXPECT_GT(kept, 0u);

  // The most critical nets (on the WNS path) get the biggest boost.
  double max_w = 0.0;
  for (NetId n : f.graph.timing_nets())
    max_w = std::max(max_w, f.wl.net_weights()[static_cast<size_t>(n)]);
  NetWeightingOptions defaults;
  const double expected_max =
      defaults.alpha + (1.0 - defaults.alpha) * (1.0 + defaults.beta);
  EXPECT_NEAR(max_w, expected_max, 1e-6);
}

TEST(NetWeighting, NoViolationsNoChange) {
  Fixture f(/*clock_scale=*/5.0);  // relaxed clock: everything meets timing
  f.timer.evaluate(f.design.cell_x, f.design.cell_y);
  ASSERT_GE(f.timer.metrics().wns, 0.0);
  NetWeighting nw(f.design, f.graph);
  EXPECT_EQ(nw.update(f.timer, f.wl), 0u);
  for (double w : f.wl.net_weights()) EXPECT_EQ(w, 1.0);
}

TEST(NetWeighting, MomentumConvergesToBoundedTarget) {
  Fixture f(/*clock_scale=*/0.5);
  NetWeightingOptions opts;
  opts.alpha = 0.5;
  opts.beta = 8.0;
  NetWeighting nw(f.design, f.graph, opts);
  f.timer.evaluate(f.design.cell_x, f.design.cell_y);

  double prev_max = 1.0;
  for (int round = 0; round < 20; ++round) {
    nw.update(f.timer, f.wl);
    double max_w = 0.0;
    for (double w : f.wl.net_weights()) max_w = std::max(max_w, w);
    EXPECT_GE(max_w, prev_max - 1e-9);           // approaches the target...
    EXPECT_LE(max_w, 1.0 + opts.beta + 1e-9);    // ...and never exceeds it
    prev_max = max_w;
  }
  // The WNS-path net pins at criticality 1 with a static placement, so its
  // weight converges to 1 + beta.
  EXPECT_NEAR(prev_max, 1.0 + opts.beta, 1e-3);
}

TEST(NetWeighting, StaleCriticalityDecays) {
  Fixture f(/*clock_scale=*/0.5);
  NetWeightingOptions opts;
  opts.alpha = 0.5;
  opts.beta = 8.0;
  NetWeighting nw(f.design, f.graph, opts);
  f.timer.evaluate(f.design.cell_x, f.design.cell_y);
  nw.update(f.timer, f.wl);

  // Relax the clock far enough that nothing violates; weights must decay
  // back toward 1 (the forgetting property of the EMA form).
  double boosted_before = 0.0;
  for (double w : f.wl.net_weights()) boosted_before = std::max(boosted_before, w);
  ASSERT_GT(boosted_before, 1.5);
  f.design.constraints.clock_period += 10.0;
  sta::Timer relaxed(f.design, f.graph);
  relaxed.evaluate(f.design.cell_x, f.design.cell_y);
  // No violations => update is a no-op by design ([24] only reacts to
  // violations); verify weights are stable rather than decaying to below 1.
  nw.update(relaxed, f.wl);
  for (double w : f.wl.net_weights()) {
    EXPECT_GE(w, 1.0 - 1e-12);
    EXPECT_LE(w, boosted_before + 1e-12);
  }
}

TEST(NetWeighting, PinSlackConsistentWithEndpointSlack) {
  // RAT propagation sanity: at an endpoint pin, pin_slack equals the
  // endpoint slack computed by the forward pass.
  Fixture f(0.6);
  f.timer.evaluate(f.design.cell_x, f.design.cell_y);
  f.timer.update_required();
  const auto& eps = f.graph.endpoints();
  for (size_t e = 0; e < eps.size(); ++e) {
    const double ep_slack = f.timer.endpoint_slack()[e];
    if (!std::isfinite(ep_slack)) continue;
    EXPECT_NEAR(f.timer.pin_slack(eps[e].pin), ep_slack, 1e-9);
  }
}

TEST(NetWeighting, PinSlackNeverBelowWnsOnPaths) {
  // WNS is the minimum slack over endpoints; no pin can report less.
  Fixture f(0.6, 205);
  f.timer.evaluate(f.design.cell_x, f.design.cell_y);
  f.timer.update_required();
  const double wns = f.timer.metrics().wns;
  for (int l = 0; l < f.graph.num_levels(); ++l)
    for (netlist::PinId p : f.graph.level(l)) {
      const double s = f.timer.pin_slack(p);
      if (std::isfinite(s)) {
        EXPECT_GE(s, wns - 1e-9);
      }
    }
}

}  // namespace
}  // namespace dtp::placer
