// Optimizer convergence on analytic objectives.
#include <gtest/gtest.h>

#include <cmath>

#include "placer/optimizer.h"

namespace dtp::placer {
namespace {

// f(x, y) = 0.5 * sum_i a_i (x_i - cx_i)^2 + b_i (y_i - cy_i)^2
struct Quadratic {
  std::vector<double> a, b, cx, cy;

  double value(std::span<const double> x, std::span<const double> y) const {
    double f = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
      f += 0.5 * (a[i] * (x[i] - cx[i]) * (x[i] - cx[i]) +
                  b[i] * (y[i] - cy[i]) * (y[i] - cy[i]));
    return f;
  }
  void grad(std::span<const double> x, std::span<const double> y,
            std::span<double> gx, std::span<double> gy) const {
    for (size_t i = 0; i < a.size(); ++i) {
      gx[i] = a[i] * (x[i] - cx[i]);
      gy[i] = b[i] * (y[i] - cy[i]);
    }
  }
};

Quadratic make_problem(size_t n) {
  Quadratic q;
  q.a.resize(n);
  q.b.resize(n);
  q.cx.resize(n);
  q.cy.resize(n);
  for (size_t i = 0; i < n; ++i) {
    q.a[i] = 0.5 + static_cast<double>(i % 7);       // condition number ~13
    q.b[i] = 1.0 + static_cast<double>((i * 3) % 5);
    q.cx[i] = std::sin(static_cast<double>(i)) * 10.0;
    q.cy[i] = std::cos(static_cast<double>(i)) * 10.0;
  }
  return q;
}

template <typename Opt>
double run_opt(Opt& opt, const Quadratic& q, int iters) {
  const size_t n = q.a.size();
  std::vector<double> x(n, 0.0), y(n, 0.0), gx(n), gy(n);
  for (int k = 0; k < iters; ++k) {
    q.grad(x, y, gx, gy);
    opt.step(x, y, gx, gy);
  }
  return q.value(x, y);
}

TEST(Optimizer, NesterovConvergesOnQuadratic) {
  const Quadratic q = make_problem(64);
  NesterovOptimizer opt(0.05);
  std::vector<double> x(64, 0.0), y(64, 0.0);
  const double f0 = q.value(x, y);
  const double f = run_opt(opt, q, 300);
  EXPECT_LT(f, 1e-4 * f0);
}

TEST(Optimizer, AdamConvergesOnQuadratic) {
  const Quadratic q = make_problem(64);
  AdamOptimizer opt(0.3);
  std::vector<double> x(64, 0.0), y(64, 0.0);
  const double f0 = q.value(x, y);
  const double f = run_opt(opt, q, 800);
  EXPECT_LT(f, 1e-3 * f0);
}

TEST(Optimizer, NesterovBbAdaptsStepSize) {
  // With a terrible initial step the BB estimate must recover.
  const Quadratic q = make_problem(32);
  NesterovOptimizer opt(1e-6);
  std::vector<double> x(32, 0.0), y(32, 0.0);
  const double f0 = q.value(x, y);
  const double f = run_opt(opt, q, 400);
  EXPECT_LT(f, 1e-3 * f0);
}

TEST(Optimizer, ZeroGradientIsFixedPoint) {
  Quadratic q = make_problem(8);
  NesterovOptimizer opt;
  std::vector<double> x(q.cx), y(q.cy), gx(8, 0.0), gy(8, 0.0);
  for (int k = 0; k < 5; ++k) {
    q.grad(x, y, gx, gy);
    opt.step(x, y, gx, gy);
  }
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(x[i], q.cx[i], 1e-9);
    EXPECT_NEAR(y[i], q.cy[i], 1e-9);
  }
}

TEST(Optimizer, ResetClearsState) {
  const Quadratic q = make_problem(16);
  NesterovOptimizer opt(0.05);
  run_opt(opt, q, 50);
  opt.reset();
  // After reset, a fresh run behaves like a new optimizer (same final value).
  NesterovOptimizer fresh(0.05);
  EXPECT_NEAR(run_opt(opt, q, 100), run_opt(fresh, q, 100), 1e-9);
}

TEST(Optimizer, MaskedCoordinatesStayPut) {
  // The placer masks fixed cells by zeroing their gradient entries; both
  // optimizers must leave such coordinates untouched.
  const size_t n = 10;
  std::vector<double> gx(n, 0.0), gy(n, 0.0);
  gx[3] = 1.0;  // only index 3 moves
  for (int which = 0; which < 2; ++which) {
    std::unique_ptr<Optimizer> opt;
    if (which == 0)
      opt = std::make_unique<NesterovOptimizer>(0.1);
    else
      opt = std::make_unique<AdamOptimizer>(0.1);
    std::vector<double> x(n, 5.0), y(n, 7.0);
    for (int k = 0; k < 10; ++k) opt->step(x, y, gx, gy);
    for (size_t i = 0; i < n; ++i) {
      if (i == 3) {
        EXPECT_LT(x[i], 5.0);
      } else {
        EXPECT_EQ(x[i], 5.0);
      }
      EXPECT_EQ(y[i], 7.0);
    }
  }
}

}  // namespace
}  // namespace dtp::placer
