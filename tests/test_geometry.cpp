// Geometry primitives.
#include <gtest/gtest.h>

#include "common/vec2.h"

namespace dtp {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0}, b{3.0, -1.0};
  EXPECT_EQ((a + b), Vec2(4.0, 1.0));
  EXPECT_EQ((a - b), Vec2(-2.0, 3.0));
  EXPECT_EQ((a * 2.0), Vec2(2.0, 4.0));
  Vec2 c = a;
  c += b;
  EXPECT_EQ(c, Vec2(4.0, 1.0));
  c -= b;
  EXPECT_EQ(c, a);
}

TEST(Vec2, Norms) {
  EXPECT_DOUBLE_EQ(Vec2(3.0, 4.0).norm2(), 5.0);
  EXPECT_DOUBLE_EQ(manhattan({0, 0}, {3, 4}), 7.0);
  EXPECT_DOUBLE_EQ(manhattan({-1, -2}, {1, 2}), 6.0);
  EXPECT_DOUBLE_EQ(manhattan({5, 5}, {5, 5}), 0.0);
}

TEST(Rect, Dimensions) {
  const Rect r{1.0, 2.0, 5.0, 10.0};
  EXPECT_DOUBLE_EQ(r.width(), 4.0);
  EXPECT_DOUBLE_EQ(r.height(), 8.0);
  EXPECT_DOUBLE_EQ(r.area(), 32.0);
}

TEST(Rect, Contains) {
  const Rect r{0.0, 0.0, 10.0, 10.0};
  EXPECT_TRUE(r.contains({5.0, 5.0}));
  EXPECT_TRUE(r.contains({0.0, 0.0}));    // boundary inclusive
  EXPECT_TRUE(r.contains({10.0, 10.0}));
  EXPECT_FALSE(r.contains({10.1, 5.0}));
  EXPECT_FALSE(r.contains({5.0, -0.1}));
}

TEST(Rect, Overlap) {
  const Rect a{0, 0, 10, 10};
  EXPECT_DOUBLE_EQ(a.overlap({5, 5, 15, 15}), 25.0);
  EXPECT_DOUBLE_EQ(a.overlap({10, 10, 20, 20}), 0.0);  // touching = no area
  EXPECT_DOUBLE_EQ(a.overlap({-5, -5, 20, 20}), 100.0);  // containment
  EXPECT_DOUBLE_EQ(a.overlap({12, 0, 20, 10}), 0.0);   // disjoint
  EXPECT_DOUBLE_EQ(a.overlap({2, 3, 4, 7}), 8.0);      // contained
}

}  // namespace
}  // namespace dtp
