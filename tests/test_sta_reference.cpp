// Cross-validation of the levelized STA engine against an independent
// reference implementation: a memoized recursive traversal that shares no
// code with the level-sweep kernels (only the Elmore per-net results and LUT
// objects, which have their own dedicated tests).  Any disagreement in
// arrival time, slew, RAT or slack on random designs is a bug in one of the
// two traversals.
#include <gtest/gtest.h>

#include <functional>
#include <unordered_map>

#include "liberty/synth_library.h"
#include "sta/cell_arc_eval.h"
#include "sta/timer.h"
#include "workload/circuit_gen.h"

namespace dtp::sta {
namespace {

using netlist::Design;
using netlist::PinId;

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// Reference timer: recursive with memoization, pull-based (asks fan-ins),
// hard max semantics.
class ReferenceTimer {
 public:
  ReferenceTimer(const Design& design, const TimingGraph& graph,
                 const Timer& elmore_source)
      : design_(&design), graph_(&graph), timer_(&elmore_source) {}

  struct Value {
    double at[2] = {kNegInf, kNegInf};
    double slew[2] = {0.0, 0.0};
  };

  const Value& eval(PinId p) {
    auto it = memo_.find(p);
    if (it != memo_.end()) return it->second;
    Value v;
    const netlist::Netlist& nl = design_->netlist;
    const auto fanin = graph_->fanin(p);
    if (fanin.empty()) {
      // Source: replicate the constraint-derived initial conditions.
      const netlist::Constraints& con = design_->constraints;
      double at0 = kNegInf, slew0 = nl.library().default_slew;
      if (graph_->pin_is_clock_source(p)) {
        at0 = 0.0;
        slew0 = con.clock_slew;
      } else if (nl.lib_cell_of(nl.pin(p).cell).kind == liberty::CellKind::PortIn) {
        at0 = con.input_delay;
        slew0 = con.input_slew;
        const auto& name = nl.cell(nl.pin(p).cell).name;
        if (auto itd = con.input_delay_override.find(name);
            itd != con.input_delay_override.end())
          at0 = itd->second;
        if (auto its = con.input_slew_override.find(name);
            its != con.input_slew_override.end())
          slew0 = its->second;
      }
      v.at[0] = v.at[1] = at0;
      v.slew[0] = v.slew[1] = slew0;
      return memo_[p] = v;
    }
    const Arc& first = graph_->arcs()[static_cast<size_t>(fanin[0])];
    if (first.kind == ArcKind::NetArc) {
      const Value& u = eval(first.from);
      const auto nt = timer_->net_timing(first.net);
      const size_t node = static_cast<size_t>(first.sink_index);
      for (int tr = 0; tr < 2; ++tr) {
        v.at[tr] = u.at[tr] + nt.delay[node];
        v.slew[tr] = std::sqrt(u.slew[tr] * u.slew[tr] + nt.imp2[node]);
      }
      return memo_[p] = v;
    }
    // Cell arcs: explicit max over candidates.
    const netlist::NetId out_net = graph_->driven_timing_net(p);
    const double load =
        out_net == netlist::kInvalidId ? 0.0 : timer_->net_timing(out_net).root_load();
    for (int tr_out = 0; tr_out < 2; ++tr_out) {
      double best_at = kNegInf, best_slew = kNegInf;
      for (int ai : fanin) {
        const Arc& arc = graph_->arcs()[static_cast<size_t>(ai)];
        const liberty::TimingArc& lib = graph_->lib_arc(arc.lib_arc);
        int trs[2];
        const int n = input_transitions(lib.unate, tr_out, trs);
        const Value& u = eval(arc.from);
        for (int k = 0; k < n; ++k) {
          const int tr_in = trs[k];
          if (!std::isfinite(u.at[tr_in])) continue;
          const liberty::Lut& dlut = tr_out == kRise ? lib.cell_rise : lib.cell_fall;
          const liberty::Lut& slut =
              tr_out == kRise ? lib.rise_transition : lib.fall_transition;
          best_at = std::max(best_at, u.at[tr_in] + dlut.lookup(u.slew[tr_in], load));
          best_slew = std::max(best_slew, slut.lookup(u.slew[tr_in], load));
        }
      }
      v.at[tr_out] = best_at;
      v.slew[tr_out] = std::isfinite(best_at) ? best_slew : 0.0;
    }
    return memo_[p] = v;
  }

  // Reference RAT by pull-based recursion over fanout.
  double rat(PinId p, int tr) {
    const auto key = std::make_pair(p, tr);
    auto it = rat_memo_.find(key.first * 2 + key.second);
    if (it != rat_memo_.end()) return it->second;
    double r = std::numeric_limits<double>::infinity();
    // Endpoint seed (constraint-LUT aware, per transition).
    for (size_t e = 0; e < graph_->endpoints().size(); ++e)
      if (graph_->endpoints()[e].pin == p)
        r = std::min(r, timer_->endpoint_setup_rat(e, tr).value);
    // Relax over fanout arcs.
    const netlist::Netlist& nl = design_->netlist;
    for (size_t ai = 0; ai < graph_->arcs().size(); ++ai) {
      const Arc& arc = graph_->arcs()[ai];
      if (arc.from != p) continue;
      if (arc.kind == ArcKind::NetArc) {
        const auto nt = timer_->net_timing(arc.net);
        r = std::min(r, rat(arc.to, tr) - nt.delay[static_cast<size_t>(arc.sink_index)]);
      } else {
        const liberty::TimingArc& lib = graph_->lib_arc(arc.lib_arc);
        const netlist::NetId out_net = graph_->driven_timing_net(arc.to);
        const double load = out_net == netlist::kInvalidId
                                ? 0.0
                                : timer_->net_timing(out_net).root_load();
        const Value& u = eval(p);
        for (int tr_out = 0; tr_out < 2; ++tr_out) {
          int trs[2];
          const int n = input_transitions(lib.unate, tr_out, trs);
          for (int k = 0; k < n; ++k) {
            if (trs[k] != tr) continue;
            if (!std::isfinite(u.at[tr])) continue;
            const liberty::Lut& dlut =
                tr_out == kRise ? lib.cell_rise : lib.cell_fall;
            r = std::min(r, rat(arc.to, tr_out) - dlut.lookup(u.slew[tr], load));
          }
        }
      }
    }
    (void)nl;
    rat_memo_[p * 2 + tr] = r;
    return r;
  }

 private:
  const Design* design_;
  const TimingGraph* graph_;
  const Timer* timer_;
  std::unordered_map<PinId, Value> memo_;
  std::unordered_map<int, double> rat_memo_;
};

class StaReference : public ::testing::TestWithParam<int> {};

TEST_P(StaReference, ArrivalSlewRatMatchLevelizedEngine) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  workload::WorkloadOptions opts;
  opts.num_cells = 150 + 60 * GetParam();
  opts.seed = static_cast<uint64_t>(1000 + GetParam());
  opts.levels = 6 + GetParam() % 9;
  opts.clock_scale = 0.5 + 0.05 * (GetParam() % 6);
  const Design design = workload::generate_design(lib, opts);
  const TimingGraph graph(design.netlist);

  Timer timer(design, graph);  // hard mode
  timer.evaluate(design.cell_x, design.cell_y);
  timer.update_required();

  ReferenceTimer ref(design, graph, timer);
  size_t compared = 0;
  for (int l = 0; l < graph.num_levels(); ++l) {
    for (PinId p : graph.level(l)) {
      const auto& v = ref.eval(p);
      for (int tr = 0; tr < 2; ++tr) {
        const double at = timer.at(p, tr);
        if (std::isfinite(at) || std::isfinite(v.at[tr])) {
          ASSERT_NEAR(at, v.at[tr], 1e-9)
              << design.netlist.pin_full_name(p) << " tr " << tr;
          ASSERT_NEAR(timer.slew(p, tr), v.slew[tr], 1e-9)
              << design.netlist.pin_full_name(p) << " tr " << tr;
        }
        const double r1 = timer.rat(p, tr);
        const double r2 = ref.rat(p, tr);
        if (std::isfinite(r1) || std::isfinite(r2)) {
          ASSERT_NEAR(r1, r2, 1e-9)
              << "RAT " << design.netlist.pin_full_name(p) << " tr " << tr;
        }
        ++compared;
      }
    }
  }
  EXPECT_GT(compared, 100u);
}

INSTANTIATE_TEST_SUITE_P(Random, StaReference, ::testing::Range(0, 12));

}  // namespace
}  // namespace dtp::sta
