// Kernel-backend registry semantics plus scalar/simd equivalence for every
// kernel family.  The simd backend is compiled with aggressive flags and is
// only required to agree with scalar within tolerance (FMA contraction and
// vector reassociation may flip last ulps); the tolerances here ARE the
// documented contract (DESIGN.md §15).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/rng.h"
#include "kernels/kernel_backend.h"
#include "kernels/transform.h"
#include "liberty/lut.h"
#include "obs/metrics.h"
#include "placer/poisson.h"

namespace dtp::kernels {
namespace {

// Relative-ish tolerance for scalar-vs-simd agreement: |a-b| must not exceed
// kTol * max(1, |a|).
constexpr double kTol = 1e-12;

void expect_close(double a, double b, const char* what) {
  EXPECT_LE(std::fabs(a - b), kTol * std::max(1.0, std::fabs(a)))
      << what << ": scalar=" << a << " simd=" << b;
}

// Every test must leave the process backend on the scalar default.
class KernelBackendTest : public ::testing::Test {
 protected:
  void TearDown() override { ASSERT_TRUE(set_backend("scalar")); }
};

TEST_F(KernelBackendTest, RegistryListsScalarFirst) {
  const std::vector<std::string> names = backend_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "scalar");
  EXPECT_EQ(names[1], "simd");
}

TEST_F(KernelBackendTest, DefaultBackendIsScalar) {
  EXPECT_STREQ(backend().name(), "scalar");
}

TEST_F(KernelBackendTest, FindBackendResolvesKnownNamesOnly) {
  ASSERT_NE(find_backend("scalar"), nullptr);
  ASSERT_NE(find_backend("simd"), nullptr);
  EXPECT_STREQ(find_backend("scalar")->name(), "scalar");
  EXPECT_STREQ(find_backend("simd")->name(), "simd");
  EXPECT_EQ(find_backend("avx1024"), nullptr);
  EXPECT_EQ(find_backend(""), nullptr);
}

TEST_F(KernelBackendTest, SetBackendRejectsUnknownAndKeepsSelection) {
  ASSERT_TRUE(set_backend("simd"));
  EXPECT_STREQ(backend().name(), "simd");
  EXPECT_FALSE(set_backend("gpu"));
  EXPECT_STREQ(backend().name(), "simd");  // unchanged by the failed set
  ASSERT_TRUE(set_backend("scalar"));
  EXPECT_STREQ(backend().name(), "scalar");
}

// ---- per-family scalar/simd equivalence ----------------------------------

TEST_F(KernelBackendTest, TransformRowsAgreeAcrossBackends) {
  const KernelBackend& sc = *find_backend("scalar");
  const KernelBackend& si = *find_backend("simd");
  for (size_t m : {4u, 32u, 128u}) {
    DctPlan plan(m);
    const size_t rows = 3;
    Rng rng(m);
    std::vector<double> in(rows * m), a(rows * m), b(rows * m), scale(m);
    for (auto& v : in) v = rng.uniform(-2, 2);
    for (size_t u = 0; u < m; ++u) scale[u] = 0.1 + 0.01 * static_cast<double>(u);

    sc.dct2_rows(plan, in.data(), a.data(), rows);
    si.dct2_rows(plan, in.data(), b.data(), rows);
    for (size_t i = 0; i < rows * m; ++i) expect_close(a[i], b[i], "dct2");

    sc.idct_rows(plan, in.data(), a.data(), rows);
    si.idct_rows(plan, in.data(), b.data(), rows);
    for (size_t i = 0; i < rows * m; ++i) expect_close(a[i], b[i], "idct");

    sc.idst_rows(plan, in.data(), scale.data(), a.data(), rows);
    si.idst_rows(plan, in.data(), scale.data(), b.data(), rows);
    for (size_t i = 0; i < rows * m; ++i) expect_close(a[i], b[i], "idst");

    std::vector<double> sq(m * m), ta(m * m), tb(m * m);
    for (auto& v : sq) v = rng.uniform(-1, 1);
    sc.transpose(m, sq.data(), ta.data());
    si.transpose(m, sq.data(), tb.data());
    for (size_t i = 0; i < m * m; ++i)
      EXPECT_EQ(ta[i], tb[i]) << "transpose is pure data movement";
  }
}

TEST_F(KernelBackendTest, TransposeScaledAgreesAcrossBackends) {
  const KernelBackend& sc = *find_backend("scalar");
  const KernelBackend& si = *find_backend("simd");
  const size_t m = 96;  // non-multiple of the tile size exercises edge tiles
  Rng rng(9);
  std::vector<double> src(m * m), scale(m), a(m * m), b(m * m);
  for (auto& v : src) v = rng.uniform(-1, 1);
  for (auto& v : scale) v = rng.uniform(0.5, 2.0);
  sc.transpose_scaled(m, src.data(), scale.data(), a.data());
  si.transpose_scaled(m, src.data(), scale.data(), b.data());
  for (size_t i = 0; i < m * m; ++i) expect_close(a[i], b[i], "transpose_scaled");
  // And against the definition.
  for (size_t i = 0; i < m; ++i)
    for (size_t j = 0; j < m; ++j)
      EXPECT_DOUBLE_EQ(a[j * m + i], src[i * m + j] * scale[i]);
}

TEST_F(KernelBackendTest, DensityKernelsAgreeAcrossBackends) {
  const KernelBackend& sc = *find_backend("scalar");
  const KernelBackend& si = *find_backend("simd");
  const int m = 16;
  DensityGrid grid;
  grid.m = m;
  grid.bin_w = 2.0;
  grid.bin_h = 1.5;
  grid.core_xl = 10.0;
  grid.core_yl = 5.0;
  grid.core_w = m * grid.bin_w;
  grid.core_h = m * grid.bin_h;

  const size_t n = 200;
  Rng rng(77);
  std::vector<double> w(n), h(n), area(n), x(n), y(n);
  std::vector<char> movable(n);
  for (size_t c = 0; c < n; ++c) {
    w[c] = rng.uniform(0.3, 6.0);
    h[c] = rng.uniform(0.3, 4.0);
    area[c] = w[c] * h[c];
    movable[c] = rng.uniform(0, 1) < 0.9 ? 1 : 0;
    // Include some cells straddling / outside the core boundary.
    x[c] = grid.core_xl + rng.uniform(-4.0, grid.core_w + 2.0);
    y[c] = grid.core_yl + rng.uniform(-4.0, grid.core_h + 2.0);
  }
  DensityCells cells{w.data(), h.data(), area.data(), movable.data(), n};

  const size_t mm = static_cast<size_t>(m) * m;
  std::vector<double> rho_a(mm, 0.0), rho_b(mm, 0.0);
  sc.density_scatter(grid, cells, x.data(), y.data(), rho_a.data());
  si.density_scatter(grid, cells, x.data(), y.data(), rho_b.data());
  for (size_t i = 0; i < mm; ++i) expect_close(rho_a[i], rho_b[i], "scatter");

  std::vector<double> fx(mm), fy(mm);
  for (auto& v : fx) v = rng.uniform(-1, 1);
  for (auto& v : fy) v = rng.uniform(-1, 1);
  std::vector<double> gxa(n, 0.125), gya(n, -0.5), gxb(n, 0.125), gyb(n, -0.5);
  sc.density_gather(grid, cells, x.data(), y.data(), fx.data(), fy.data(), 0.7,
                    gxa.data(), gya.data());
  si.density_gather(grid, cells, x.data(), y.data(), fx.data(), fy.data(), 0.7,
                    gxb.data(), gyb.data());
  for (size_t c = 0; c < n; ++c) {
    expect_close(gxa[c], gxb[c], "gather gx");
    expect_close(gya[c], gyb[c], "gather gy");
  }
}

TEST_F(KernelBackendTest, WaAxisAgreesAcrossBackends) {
  const KernelBackend& sc = *find_backend("scalar");
  const KernelBackend& si = *find_backend("simd");
  Rng rng(5);
  for (size_t n : {2u, 3u, 17u, 64u}) {
    std::vector<double> coords(n), ga(n), gb(n), ep(n), em(n);
    for (auto& c : coords) c = rng.uniform(-50, 50);
    const double va =
        sc.wa_axis(coords.data(), n, 4.0, ga.data(), ep.data(), em.data());
    const double vb =
        si.wa_axis(coords.data(), n, 4.0, gb.data(), ep.data(), em.data());
    expect_close(va, vb, "wa value");
    for (size_t i = 0; i < n; ++i) expect_close(ga[i], gb[i], "wa grad");
  }
}

TEST_F(KernelBackendTest, LutPairAgreesAcrossBackendsAndDirectLookup) {
  const KernelBackend& sc = *find_backend("scalar");
  const KernelBackend& si = *find_backend("simd");
  const liberty::Lut delay({0.01, 0.05, 0.2}, {0.001, 0.004, 0.02, 0.1},
                           {0.10, 0.12, 0.18, 0.40,  //
                            0.14, 0.16, 0.24, 0.48,  //
                            0.30, 0.33, 0.42, 0.70});
  const liberty::Lut slew({0.01, 0.05, 0.2}, {0.001, 0.004, 0.02, 0.1},
                          {0.02, 0.03, 0.06, 0.20,  //
                           0.03, 0.04, 0.08, 0.24,  //
                           0.07, 0.08, 0.13, 0.33});
  Rng rng(13);
  for (int k = 0; k < 50; ++k) {
    const double s = rng.uniform(0.0, 0.3);   // includes extrapolation
    const double l = rng.uniform(0.0, 0.15);
    liberty::Lut::Query da, sa, db, sb;
    sc.lut_pair(delay, slew, s, l, da, sa);
    si.lut_pair(delay, slew, s, l, db, sb);
    expect_close(da.value, db.value, "delay value");
    expect_close(da.d_dx, db.d_dx, "delay d_dx");
    expect_close(da.d_dy, db.d_dy, "delay d_dy");
    expect_close(sa.value, sb.value, "slew value");
    // The scalar pair must be the two direct queries, bit for bit.
    const liberty::Lut::Query dref = delay.lookup_grad(s, l);
    const liberty::Lut::Query sref = slew.lookup_grad(s, l);
    EXPECT_EQ(da.value, dref.value);
    EXPECT_EQ(da.d_dx, dref.d_dx);
    EXPECT_EQ(da.d_dy, dref.d_dy);
    EXPECT_EQ(sa.value, sref.value);
  }
}

// ---- solver integration ---------------------------------------------------

TEST_F(KernelBackendTest, PoissonSolveAgreesAcrossBackends) {
  const int m = 32;
  Rng rng(21);
  std::vector<double> rho(static_cast<size_t>(m) * m);
  for (auto& r : rho) r = rng.uniform(0.0, 1.0);

  auto run = [&](const char* name, std::vector<double>& psi,
                 std::vector<double>& ex, std::vector<double>& ey) {
    ASSERT_TRUE(set_backend(name));
    placer::PoissonSolver solver(m, 50.0, 40.0);
    ASSERT_TRUE(solver.uses_fft());
    solver.solve(rho, psi, ex, ey);
  };
  std::vector<double> psi_a, ex_a, ey_a, psi_b, ex_b, ey_b;
  run("scalar", psi_a, ex_a, ey_a);
  run("simd", psi_b, ex_b, ey_b);
  for (size_t i = 0; i < psi_a.size(); ++i) {
    expect_close(psi_a[i], psi_b[i], "psi");
    expect_close(ex_a[i], ex_b[i], "field_x");
    expect_close(ey_a[i], ey_b[i], "field_y");
  }
}

TEST_F(KernelBackendTest, NonPowerOfTwoGridCountsSlowPathSolves) {
  obs::Counter& slow =
      obs::MetricsRegistry::instance().counter("placer.poisson.slow_path");
  const int m = 12;
  placer::PoissonSolver solver(m, 30.0, 30.0);
  EXPECT_FALSE(solver.uses_fft());
  std::vector<double> rho(static_cast<size_t>(m) * m, 0.25);
  std::vector<double> psi, ex, ey;
  const uint64_t before = slow.value();
  solver.solve(rho, psi, ex, ey);
  solver.solve(rho, psi, ex, ey);
  EXPECT_EQ(slow.value(), before + 2);

  // The fast path must not touch the counter.
  placer::PoissonSolver fast(16, 30.0, 30.0);
  std::vector<double> rho16(16 * 16, 0.25);
  const uint64_t mid = slow.value();
  fast.solve(rho16, psi, ex, ey);
  EXPECT_EQ(slow.value(), mid);
}

}  // namespace
}  // namespace dtp::kernels
