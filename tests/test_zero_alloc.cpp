// Zero-allocation contract of the steady-state timing hot loop (DESIGN.md
// §10): once warmed up, a drag-path forward() plus backward() on the shared
// TimingWorkspace must not touch the heap at all.  Enforced by replacing the
// global allocation functions with counting versions — any vector growth,
// std::function capture, or temporary container in the hot loop fails the
// test, keeping the contract honest under refactors.
//
// Excluded by design (and by this test): the first forward() (arena sizing,
// RSMT construction), full Steiner rebuilds, evaluate_incremental's worklist,
// and one extra warm-up round for lazily-initialized statics (metrics
// registration, thread_local smoothing scratch).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "dtimer/diff_timer.h"
#include "liberty/synth_library.h"
#include "obs/activity/activity_tracker.h"
#include "obs/activity/churn_tracker.h"
#include "obs/activity/slack_sketch.h"
#include "sta/timing_graph.h"
#include "workload/circuit_gen.h"

namespace {
std::atomic<long> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (align < sizeof(void*)) align = sizeof(void*);
  if (posix_memalign(&p, align, size ? size : align) != 0)
    throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t al) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(al));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace dtp {
namespace {

void nudge(const netlist::Design& design, std::vector<double>& x,
           std::vector<double>& y, int round) {
  for (size_t c = 0; c < x.size(); ++c) {
    if (design.netlist.cell(static_cast<netlist::CellId>(c)).fixed) continue;
    x[c] += 0.1 * (static_cast<double>((c + static_cast<size_t>(round)) % 5) - 2.0);
    y[c] += 0.1 * (static_cast<double>((c + 2 * static_cast<size_t>(round)) % 7) - 3.0);
  }
}

TEST(ZeroAlloc, SteadyStateForwardBackwardIsAllocationFree) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  workload::WorkloadOptions opts;
  opts.num_cells = 400;
  opts.seed = 17;
  const netlist::Design design = workload::generate_design(lib, opts);
  const sta::TimingGraph graph(design.netlist);

  dtimer::DiffTimerOptions dopts;
  dopts.steiner_rebuild_period = 0;  // drag-only after the first build
  dtimer::DiffTimer dt(design, graph, dopts);

  const size_t nc = design.netlist.num_cells();
  std::vector<double> x(design.cell_x.begin(), design.cell_x.end());
  std::vector<double> y(design.cell_y.begin(), design.cell_y.end());
  std::vector<double> gx(nc, 0.0), gy(nc, 0.0);

  // Warm-up: first call builds the forest and sizes every arena; the second
  // exercises the drag path itself plus any first-use statics.
  dt.forward(x, y, /*force_rebuild=*/true);
  dt.backward(1.0, 1.0, gx, gy);
  nudge(design, x, y, 0);
  dt.forward(x, y, /*force_rebuild=*/false);
  dt.backward(0.6, 0.4, gx, gy);

  for (int round = 1; round <= 3; ++round) {
    nudge(design, x, y, round);
    const long before = g_alloc_count.load(std::memory_order_relaxed);
    dt.forward(x, y, /*force_rebuild=*/false);
    dt.backward(0.5, 0.5, gx, gy);
    const long after = g_alloc_count.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0L) << "heap allocation in steady-state round "
                                  << round;
  }
}

TEST(ZeroAlloc, SteadyStateWithActivityTrackingIsAllocationFree) {
  // The activity layer's contract (DESIGN.md §11): with the tracker attached
  // and the slack sketch + churn tracker observing every round, the steady
  // state must still be allocation-free — all buffers are sized in
  // configure(), and record/observe paths never touch the heap.
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  workload::WorkloadOptions opts;
  opts.num_cells = 400;
  opts.seed = 17;
  const netlist::Design design = workload::generate_design(lib, opts);
  const sta::TimingGraph graph(design.netlist);

  dtimer::DiffTimerOptions dopts;
  dopts.steiner_rebuild_period = 0;
  dtimer::DiffTimer dt(design, graph, dopts);

  obs::ActivityTracker tracker;
  dt.set_activity_tracker(&tracker);
  ASSERT_TRUE(tracker.configured());
  obs::SlackSketch sketch;
  obs::ChurnTracker churn;
  churn.configure(graph.endpoints().size(), 32);

  const size_t nc = design.netlist.num_cells();
  std::vector<double> x(design.cell_x.begin(), design.cell_x.end());
  std::vector<double> y(design.cell_y.begin(), design.cell_y.end());
  std::vector<double> gx(nc, 0.0), gy(nc, 0.0);

  dt.forward(x, y, /*force_rebuild=*/true);
  dt.backward(1.0, 1.0, gx, gy);
  sketch.observe_epoch(dt.timer().endpoint_slack());
  churn.observe(dt.timer().endpoint_slack());
  nudge(design, x, y, 0);
  dt.forward(x, y, /*force_rebuild=*/false);
  dt.backward(0.6, 0.4, gx, gy);
  sketch.observe_epoch(dt.timer().endpoint_slack());
  churn.observe(dt.timer().endpoint_slack());

  for (int round = 1; round <= 3; ++round) {
    nudge(design, x, y, round);
    const long before = g_alloc_count.load(std::memory_order_relaxed);
    dt.forward(x, y, /*force_rebuild=*/false);
    dt.backward(0.5, 0.5, gx, gy);
    sketch.observe_epoch(dt.timer().endpoint_slack());
    churn.observe(dt.timer().endpoint_slack());
    const long after = g_alloc_count.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0L)
        << "heap allocation in tracked steady-state round " << round;
  }
  EXPECT_GE(tracker.forward_evals(), 5u);
  EXPECT_GE(tracker.backward_evals(), 5u);
  EXPECT_GT(tracker.fwd_active_total(), 0u);  // nudges really moved timing
}

TEST(ZeroAlloc, HoldCornerSteadyStateIsAllocationFree) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  workload::WorkloadOptions opts;
  opts.num_cells = 250;
  opts.seed = 23;
  const netlist::Design design = workload::generate_design(lib, opts);
  const sta::TimingGraph graph(design.netlist);

  dtimer::DiffTimerOptions dopts;
  dopts.steiner_rebuild_period = 0;
  dopts.enable_early = true;
  dtimer::DiffTimer dt(design, graph, dopts);

  const size_t nc = design.netlist.num_cells();
  std::vector<double> x(design.cell_x.begin(), design.cell_x.end());
  std::vector<double> y(design.cell_y.begin(), design.cell_y.end());
  std::vector<double> gx(nc, 0.0), gy(nc, 0.0);

  dt.forward(x, y, /*force_rebuild=*/true);
  dt.backward(0.5, 0.5, 0.5, 0.5, gx, gy);
  nudge(design, x, y, 0);
  dt.forward(x, y, /*force_rebuild=*/false);
  dt.backward(0.5, 0.5, 0.5, 0.5, gx, gy);

  nudge(design, x, y, 1);
  const long before = g_alloc_count.load(std::memory_order_relaxed);
  dt.forward(x, y, /*force_rebuild=*/false);
  dt.backward(0.4, 0.3, 0.2, 0.1, gx, gy);
  const long after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0L);
}

}  // namespace
}  // namespace dtp
