// JSON parser hardening (DESIGN.md §8): escaped strings, unicode (including
// surrogate pairs), nested arrays, malformed input, and the writer/parser
// round-trip contract for the NaN/Inf -> null serialization policy.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "common/json_parse.h"
#include "common/json_writer.h"

namespace dtp {
namespace {

TEST(JsonParse, EscapedStrings) {
  const JsonValue v = JsonParser::parse(
      R"({"a":"line\nbreak","b":"tab\there","c":"quote\"back\\slash","d":"sol\/idus","e":"\b\f\r"})");
  EXPECT_EQ(v.str("a"), "line\nbreak");
  EXPECT_EQ(v.str("b"), "tab\there");
  EXPECT_EQ(v.str("c"), "quote\"back\\slash");
  EXPECT_EQ(v.str("d"), "sol/idus");
  EXPECT_EQ(v.str("e"), "\b\f\r");
}

TEST(JsonParse, UnicodeEscapes) {
  // BMP codepoints at the UTF-8 width boundaries.
  EXPECT_EQ(JsonParser::parse(R"("A")").string, "A");
  EXPECT_EQ(JsonParser::parse(R"("é")").string, "\xC3\xA9");      // é
  EXPECT_EQ(JsonParser::parse(R"("€")").string, "\xE2\x82\xAC");  // €
  // Surrogate pair -> astral plane (U+1F600).
  EXPECT_EQ(JsonParser::parse(R"("😀")").string,
            "\xF0\x9F\x98\x80");
  // Raw UTF-8 passes through untouched.
  EXPECT_EQ(JsonParser::parse("\"caf\xC3\xA9\"").string, "caf\xC3\xA9");
}

TEST(JsonParse, UnpairedSurrogatesRejected) {
  EXPECT_THROW(JsonParser::parse(R"("\uD83D")"), std::runtime_error);
  EXPECT_THROW(JsonParser::parse(R"("\uD83Dx")"), std::runtime_error);
  EXPECT_THROW(JsonParser::parse(R"("\uD83DA")"), std::runtime_error);
  EXPECT_THROW(JsonParser::parse(R"("\uDE00")"), std::runtime_error);
}

TEST(JsonParse, NestedArraysAndObjects) {
  const JsonValue v = JsonParser::parse(
      R"({"m":[[1,2],[3,[4,{"deep":[true,false,null]}]],[]],"empty":{}})");
  const JsonValue& m = v.at("m");
  ASSERT_TRUE(m.is_array());
  ASSERT_EQ(m.array.size(), 3u);
  EXPECT_EQ(m.at(0).at(1).number, 2.0);
  const JsonValue& deep = m.at(1).at(1).at(1).at("deep");
  ASSERT_EQ(deep.array.size(), 3u);
  EXPECT_TRUE(deep.at(0).boolean);
  EXPECT_FALSE(deep.at(1).boolean);
  EXPECT_TRUE(deep.at(2).is_null());
  EXPECT_TRUE(m.at(2).array.empty());
  EXPECT_TRUE(v.at("empty").is_object());
  EXPECT_TRUE(v.at("empty").object.empty());
}

TEST(JsonParse, Numbers) {
  EXPECT_DOUBLE_EQ(JsonParser::parse("0").number, 0.0);
  EXPECT_DOUBLE_EQ(JsonParser::parse("-17.25").number, -17.25);
  EXPECT_DOUBLE_EQ(JsonParser::parse("6.02e23").number, 6.02e23);
  EXPECT_DOUBLE_EQ(JsonParser::parse("-1E-3").number, -1e-3);
  // Full round-trip precision through the writer's %.17g.
  const double x = 0.1 + 0.2;
  JsonWriter w;
  w.begin_object().key("x").value(x).end_object();
  EXPECT_EQ(JsonParser::parse(w.str()).num("x"), x);
}

TEST(JsonParse, MalformedInputThrows) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "{\"a\" 1}", "tru", "1 2", "{]",
        "\"unterminated", "\"bad \\q escape\"", "nully"}) {
    EXPECT_THROW(JsonParser::parse(bad), std::runtime_error) << bad;
  }
}

// The serialization policy: JsonWriter emits NaN/Inf as null, and num_or()
// reads that null back as "value was non-finite".
TEST(JsonParse, NanInfPolicyRoundTrip) {
  JsonWriter w;
  w.begin_object();
  w.key("nan").value(std::nan(""));
  w.key("inf").value(std::numeric_limits<double>::infinity());
  w.key("ninf").value(-std::numeric_limits<double>::infinity());
  w.key("ok").value(1.5);
  w.end_object();
  const JsonValue v = JsonParser::parse(w.str());
  EXPECT_TRUE(v.at("nan").is_null());
  EXPECT_TRUE(v.at("inf").is_null());
  EXPECT_TRUE(v.at("ninf").is_null());
  EXPECT_TRUE(std::isnan(v.num_or("nan", std::nan(""))));
  EXPECT_DOUBLE_EQ(v.num_or("nan", -1.0), -1.0);
  EXPECT_DOUBLE_EQ(v.num_or("ok", -1.0), 1.5);
  EXPECT_DOUBLE_EQ(v.num_or("missing", 7.0), 7.0);
}

// Control characters below 0x20 are escaped by the writer and restored by the
// parser (JSONL integrity: no raw newline can split a record).
TEST(JsonParse, ControlCharacterRoundTrip) {
  std::string s = "a";
  s += '\x01';
  s += '\n';
  s += "z";
  JsonWriter w;
  w.begin_object().key("s").value(s).end_object();
  EXPECT_EQ(w.str().find('\n'), std::string::npos);
  EXPECT_EQ(JsonParser::parse(w.str()).str("s"), s);
}

}  // namespace
}  // namespace dtp
