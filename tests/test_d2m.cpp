// D2M wire delay model (the paper's §3.4.2 extensibility claim): forward
// properties and full-pipeline finite-difference gradient validation.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "dtimer/diff_timer.h"
#include "liberty/synth_library.h"
#include "rsmt/rsmt_builder.h"
#include "workload/circuit_gen.h"

namespace dtp::sta {
namespace {

using netlist::Design;

NetTiming make_net(uint64_t seed, int n, WireDelayModel model) {
  Rng rng(seed);
  std::vector<Vec2> pins(static_cast<size_t>(n));
  for (auto& p : pins) p = {rng.uniform(0, 300), rng.uniform(0, 300)};
  NetTiming nt;
  nt.tree = rsmt::build_rsmt(pins, 0);
  std::vector<double> caps(static_cast<size_t>(n), 0.004);
  caps[0] = 0.0;
  elmore_forward(nt, caps, 4e-4, 2e-4, model);
  return nt;
}

TEST(D2m, ElmoreModeKeepsUsedDelayEqualToDelay) {
  const NetTiming nt = make_net(1, 6, WireDelayModel::Elmore);
  for (size_t v = 0; v < nt.tree.num_nodes(); ++v)
    EXPECT_EQ(nt.used_delay[v], nt.delay[v]);
}

TEST(D2m, FormulaHoldsOnNonDegenerateNodes) {
  const NetTiming nt = make_net(2, 8, WireDelayModel::D2M);
  size_t checked = 0;
  for (size_t v = 0; v < nt.tree.num_nodes(); ++v) {
    if (nt.d2m_degenerate[v]) continue;
    EXPECT_NEAR(nt.used_delay[v],
                kLn2 * nt.delay[v] * nt.delay[v] / std::sqrt(nt.beta[v]), 1e-15);
    EXPECT_GT(nt.used_delay[v], 0.0);
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

TEST(D2m, DegenerateGeometryFallsBackToElmore) {
  // Coincident pins: beta ~ 0 everywhere.
  NetTiming nt;
  nt.tree = rsmt::build_rsmt(std::vector<Vec2>{{5, 5}, {5, 5}, {5, 5}}, 0);
  std::vector<double> caps{0.0, 0.003, 0.003};
  elmore_forward(nt, caps, 4e-4, 2e-4, WireDelayModel::D2M);
  for (size_t v = 0; v < nt.tree.num_nodes(); ++v) {
    EXPECT_TRUE(nt.d2m_degenerate[v]);
    EXPECT_EQ(nt.used_delay[v], nt.delay[v]);
  }
}

TEST(D2m, LessPessimisticThanElmoreForDominantPathSinks) {
  // For the far sink of a 2-pin net, D2M < Elmore (the known behavior:
  // Elmore is an upper bound on 50% delay; D2M tightens it).
  NetTiming nt;
  nt.tree = rsmt::build_rsmt(std::vector<Vec2>{{0, 0}, {200, 0}}, 0);
  std::vector<double> caps{0.0, 0.002};
  elmore_forward(nt, caps, 4e-4, 2e-4, WireDelayModel::D2M);
  ASSERT_FALSE(nt.d2m_degenerate[1]);
  EXPECT_LT(nt.used_delay[1], nt.delay[1]);
  EXPECT_GT(nt.used_delay[1], 0.3 * nt.delay[1]);
}

TEST(D2m, TimerRunsEndToEnd) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  workload::WorkloadOptions opts;
  opts.num_cells = 250;
  opts.seed = 555;
  opts.clock_scale = 0.6;
  const Design d = workload::generate_design(lib, opts);
  const TimingGraph graph(d.netlist);
  TimerOptions topts;
  topts.wire_model = WireDelayModel::D2M;
  Timer d2m(d, graph, topts);
  const auto m_d2m = d2m.evaluate(d.cell_x, d.cell_y);
  Timer elm(d, graph);
  const auto m_elm = elm.evaluate(d.cell_x, d.cell_y);
  EXPECT_TRUE(std::isfinite(m_d2m.wns));
  // Wire delays shrink under D2M => slack cannot get worse.
  EXPECT_GE(m_d2m.wns, m_elm.wns - 1e-9);
  EXPECT_GE(m_d2m.tns, m_elm.tns - 1e-9);
}

class D2mGradCheck : public ::testing::TestWithParam<int> {};

TEST_P(D2mGradCheck, FullPipelineMatchesFiniteDifference) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  workload::WorkloadOptions opts;
  opts.num_cells = 80;
  opts.seed = static_cast<uint64_t>(9100 + GetParam());
  opts.levels = 8;
  opts.clock_scale = 0.55;
  const Design d = workload::generate_design(lib, opts);
  const TimingGraph graph(d.netlist);

  dtimer::DiffTimerOptions dopts;
  dopts.steiner_rebuild_period = 0;
  dopts.wire_model = WireDelayModel::D2M;
  dtimer::DiffTimer dt(d, graph, dopts);

  auto x = d.cell_x;
  auto y = d.cell_y;
  auto loss = [&](const sta::TimingMetrics& m) {
    return 0.01 * (-m.tns_smooth) + 0.001 * (-m.wns_smooth);
  };
  dt.forward(x, y, true);
  std::vector<double> gx(x.size(), 0.0), gy(y.size(), 0.0);
  dt.backward(0.01, 0.001, gx, gy);

  Rng rng(static_cast<uint64_t>(GetParam()));
  const double eps = 2e-4;
  size_t checked = 0;
  for (size_t c = 0; c < x.size() && checked < 14; ++c) {
    if (std::abs(gx[c]) < 1e-7 && std::abs(gy[c]) < 1e-7) continue;
    for (int axis = 0; axis < 2; ++axis) {
      auto& coords = axis == 0 ? x : y;
      const double saved = coords[c];
      coords[c] = saved + eps;
      const double fp = loss(dt.forward(x, y));
      coords[c] = saved - eps;
      const double fm = loss(dt.forward(x, y));
      coords[c] = saved;
      const double f0 = loss(dt.forward(x, y));
      const double fd = (fp - fm) / (2 * eps);
      // Skip rectilinear kink samples (second difference blows up there).
      if (std::abs(fp + fm - 2 * f0) / eps > 1e-3 * (std::abs(fd) + 1e-6))
        continue;
      const double an = axis == 0 ? gx[c] : gy[c];
      EXPECT_NEAR(an, fd, 3e-4 * std::max(1.0, std::abs(fd)) + 1e-7)
          << "cell " << c << " axis " << axis;
      ++checked;
    }
  }
  EXPECT_GE(checked, 6u);
}

INSTANTIATE_TEST_SUITE_P(Random, D2mGradCheck, ::testing::Range(0, 6));

}  // namespace
}  // namespace dtp::sta
