// Legalization and detailed placement: legality, displacement, HPWL.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "liberty/synth_library.h"
#include "placer/legalizer.h"
#include "workload/circuit_gen.h"

namespace dtp::placer {
namespace {

using netlist::Design;

Design make_design(int cells, uint64_t seed, const liberty::CellLibrary& lib,
                   double density = 0.6) {
  workload::WorkloadOptions opts;
  opts.num_cells = cells;
  opts.seed = seed;
  opts.target_density = density;
  return workload::generate_design(lib, opts);
}

// Spread cells quasi-uniformly (a stand-in for a converged global placement).
void spread(Design& d, uint64_t seed) {
  Rng rng(seed);
  const Rect& core = d.floorplan.core;
  for (size_t c = 0; c < d.cell_x.size(); ++c) {
    if (d.netlist.cell(static_cast<int>(c)).fixed) continue;
    d.cell_x[c] = rng.uniform(core.xl, core.xh - 3.0);
    d.cell_y[c] = rng.uniform(core.yl, core.yh - 2.0);
  }
}

TEST(Legalizer, ProducesLegalPlacement) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = make_design(500, 81, lib);
  spread(d, 1);
  const auto res = legalize(d, d.cell_x, d.cell_y);
  EXPECT_EQ(res.failed_cells, 0u);
  std::string why;
  EXPECT_TRUE(is_legal(d, d.cell_x, d.cell_y, &why)) << why;
}

TEST(Legalizer, SmallDisplacementWhenSpread) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = make_design(400, 83, lib, /*density=*/0.5);
  spread(d, 2);
  const auto res = legalize(d, d.cell_x, d.cell_y);
  EXPECT_EQ(res.failed_cells, 0u);
  const double avg_disp = res.total_displacement / 400.0;
  // At 50% utilization, a spread start should legalize with displacement on
  // the order of a few rows.
  EXPECT_LT(avg_disp, 6.0 * d.floorplan.row_height);
}

TEST(Legalizer, HandlesClusteredStart) {
  // Everything piled at the center must still legalize (fallback scan).
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = make_design(600, 87, lib);
  const auto res = legalize(d, d.cell_x, d.cell_y);
  EXPECT_EQ(res.failed_cells, 0u);
  std::string why;
  EXPECT_TRUE(is_legal(d, d.cell_x, d.cell_y, &why)) << why;
}

TEST(Legalizer, IsLegalDetectsViolations) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = make_design(100, 89, lib);
  spread(d, 3);
  legalize(d, d.cell_x, d.cell_y);
  std::string why;
  ASSERT_TRUE(is_legal(d, d.cell_x, d.cell_y, &why)) << why;

  // Misalign one cell.
  size_t victim = 0;
  for (size_t c = 0; c < d.cell_x.size(); ++c)
    if (!d.netlist.cell(static_cast<int>(c)).fixed) {
      victim = c;
      break;
    }
  auto x = d.cell_x;
  x[victim] += 0.1;  // off-site
  EXPECT_FALSE(is_legal(d, x, d.cell_y, &why));
  EXPECT_NE(why.find("site"), std::string::npos);

  auto y = d.cell_y;
  y[victim] += 0.7;  // off-row
  EXPECT_FALSE(is_legal(d, d.cell_x, y, &why));

  auto x2 = d.cell_x;
  x2[victim] = d.floorplan.core.xh;  // out of core
  EXPECT_FALSE(is_legal(d, x2, d.cell_y, &why));
}

TEST(Legalizer, DeterministicGivenSameInput) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d1 = make_design(300, 91, lib);
  spread(d1, 4);
  Design d2 = make_design(300, 91, lib);
  spread(d2, 4);
  legalize(d1, d1.cell_x, d1.cell_y);
  legalize(d2, d2.cell_x, d2.cell_y);
  for (size_t c = 0; c < d1.cell_x.size(); ++c) {
    EXPECT_EQ(d1.cell_x[c], d2.cell_x[c]);
    EXPECT_EQ(d1.cell_y[c], d2.cell_y[c]);
  }
}

TEST(DetailedPlace, ImprovesOrKeepsHpwlAndStaysLegal) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = make_design(400, 93, lib);
  spread(d, 5);
  legalize(d, d.cell_x, d.cell_y);
  WirelengthModel wl(d);
  const double before = wl.hpwl_unweighted(d.cell_x, d.cell_y);
  const double gain = detailed_place_swaps(d, wl, d.cell_x, d.cell_y);
  EXPECT_GE(gain, -1e-9);
  EXPECT_NEAR(wl.hpwl_unweighted(d.cell_x, d.cell_y), before - gain, 1e-6);
  std::string why;
  EXPECT_TRUE(is_legal(d, d.cell_x, d.cell_y, &why)) << why;
}

TEST(DetailedPlace, FindsObviousSwap) {
  // Hand-build: two cells in one row whose nets clearly prefer swapped order.
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d(&lib, "swap");
  auto& nl = d.netlist;
  const int inv = lib.find_cell("INV_X1");
  const int pin_id = lib.find_cell(liberty::CellLibrary::kPortInName);
  const int pout_id = lib.find_cell(liberty::CellLibrary::kPortOutName);
  const auto pl = nl.add_cell("pl", pin_id);   // left pad
  const auto pr = nl.add_cell("pr", pin_id);   // right pad
  const auto a = nl.add_cell("a", inv);        // wants to be right
  const auto b = nl.add_cell("b", inv);        // wants to be left
  const auto ol = nl.add_cell("ol", pout_id);
  const auto orr = nl.add_cell("or", pout_id);
  auto net = [&](const char* name) { return nl.add_net(name); };
  auto n1 = net("n1");
  nl.connect(n1, pr, "PAD");
  nl.connect(n1, a, "A");
  auto n2 = net("n2");
  nl.connect(n2, a, "Z");
  nl.connect(n2, orr, "PAD");
  auto n3 = net("n3");
  nl.connect(n3, pl, "PAD");
  nl.connect(n3, b, "A");
  auto n4 = net("n4");
  nl.connect(n4, b, "Z");
  nl.connect(n4, ol, "PAD");
  nl.cell(pl).fixed = nl.cell(pr).fixed = nl.cell(ol).fixed = nl.cell(orr).fixed = true;
  d.floorplan.core = Rect(0, 0, 40, 8);
  d.floorplan.row_height = 2.0;
  d.floorplan.site_width = 0.5;
  d.init_positions();
  d.cell_x = {0.0, 40.0, 18.0, 19.0, 0.0, 40.0};  // a left of b — wrong order
  d.cell_y = {4.0, 4.0, 4.0, 4.0, 0.0, 0.0};
  legalize(d, d.cell_x, d.cell_y);
  WirelengthModel wl(d);
  ASSERT_LT(d.cell_x[a], d.cell_x[b]);
  const double gain = detailed_place_swaps(d, wl, d.cell_x, d.cell_y);
  EXPECT_GT(gain, 0.0);
  EXPECT_GT(d.cell_x[a], d.cell_x[b]);  // swapped
}

}  // namespace
}  // namespace dtp::placer
