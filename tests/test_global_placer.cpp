// Global placer integration: convergence, spreading, and the paper's core
// claim in miniature — the differentiable-timing mode beats wirelength-only
// timing at near-equal HPWL.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "liberty/synth_library.h"
#include "placer/global_placer.h"
#include "placer/legalizer.h"
#include "workload/circuit_gen.h"

namespace dtp::placer {
namespace {

using netlist::Design;

Design make_design(int cells, uint64_t seed, const liberty::CellLibrary& lib,
                   double clock_scale = 0.7) {
  workload::WorkloadOptions opts;
  opts.num_cells = cells;
  opts.seed = seed;
  opts.levels = 14;
  opts.clock_scale = clock_scale;
  return workload::generate_design(lib, opts);
}

GlobalPlacerOptions fast_options() {
  GlobalPlacerOptions o;
  o.max_iters = 500;
  o.min_iters = 60;
  o.bins = 32;
  o.timing_start_iter = 60;
  return o;
}

TEST(GlobalPlacer, SpreadsCellsBelowStopOverflow) {
  liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = make_design(600, 301, lib);
  sta::TimingGraph graph(d.netlist);
  GlobalPlacer placer(d, graph, fast_options());
  const auto res = placer.run();
  EXPECT_LT(res.overflow, 0.10);
  EXPECT_GT(res.iterations, 60);
  // Cells inside the core.
  const Rect& core = d.floorplan.core;
  for (size_t c = 0; c < d.cell_x.size(); ++c) {
    EXPECT_GE(d.cell_x[c], core.xl - 1e-9);
    EXPECT_LE(d.cell_x[c], core.xh + 1e-9);
  }
}

TEST(GlobalPlacer, OverflowTrendsDownward) {
  liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = make_design(500, 303, lib);
  sta::TimingGraph graph(d.netlist);
  GlobalPlacer placer(d, graph, fast_options());
  const auto res = placer.run();
  ASSERT_GT(res.history.size(), 20u);
  const double early = res.history[5].overflow;
  const double late = res.history.back().overflow;
  EXPECT_LT(late, 0.5 * early);
}

TEST(GlobalPlacer, BeatsRandomPlacementHpwl) {
  liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = make_design(500, 305, lib);
  sta::TimingGraph graph(d.netlist);

  // Random-uniform legal-ish placement as the reference.
  Design ref = make_design(500, 305, lib);
  Rng rng(99);
  const Rect& core = ref.floorplan.core;
  for (size_t c = 0; c < ref.cell_x.size(); ++c) {
    if (ref.netlist.cell(static_cast<int>(c)).fixed) continue;
    ref.cell_x[c] = rng.uniform(core.xl, core.xh - 2.0);
    ref.cell_y[c] = rng.uniform(core.yl, core.yh - 2.0);
  }
  WirelengthModel wl_ref(ref);
  const double random_hpwl = wl_ref.hpwl_unweighted(ref.cell_x, ref.cell_y);

  GlobalPlacer placer(d, graph, fast_options());
  const auto res = placer.run();
  EXPECT_LT(res.hpwl, 0.55 * random_hpwl);
}

TEST(GlobalPlacer, DiffTimingImprovesTimingAtSimilarHpwl) {
  liberty::CellLibrary lib = liberty::make_synthetic_library();
  sta::TimingMetrics wl_only, ours;
  double hpwl_wl = 0.0, hpwl_ours = 0.0;

  for (int mode = 0; mode < 2; ++mode) {
    Design d = make_design(700, 307, lib, /*clock_scale=*/0.65);
    sta::TimingGraph graph(d.netlist);
    GlobalPlacerOptions o = fast_options();
    o.mode = mode == 0 ? PlacerMode::WirelengthOnly : PlacerMode::DiffTiming;
    GlobalPlacer placer(d, graph, o);
    const auto res = placer.run();
    sta::Timer timer(d, graph);
    const auto m = timer.evaluate(d.cell_x, d.cell_y);
    if (mode == 0) {
      wl_only = m;
      hpwl_wl = res.hpwl;
    } else {
      ours = m;
      hpwl_ours = res.hpwl;
    }
  }
  ASSERT_LT(wl_only.wns, 0.0) << "baseline must violate for the test to bite";
  // The paper's claim in miniature: better WNS and TNS...
  EXPECT_GT(ours.wns, wl_only.wns);
  EXPECT_GT(ours.tns, wl_only.tns);
  // ...at nearly unchanged wirelength ("for free", Table 3).
  EXPECT_LT(hpwl_ours, 1.15 * hpwl_wl);
}

TEST(GlobalPlacer, NetWeightingAlsoImprovesTiming) {
  liberty::CellLibrary lib = liberty::make_synthetic_library();
  sta::TimingMetrics wl_only, nw;
  for (int mode = 0; mode < 2; ++mode) {
    Design d = make_design(700, 309, lib, /*clock_scale=*/0.65);
    sta::TimingGraph graph(d.netlist);
    GlobalPlacerOptions o = fast_options();
    o.mode = mode == 0 ? PlacerMode::WirelengthOnly : PlacerMode::NetWeighting;
    GlobalPlacer placer(d, graph, o);
    placer.run();
    sta::Timer timer(d, graph);
    const auto m = timer.evaluate(d.cell_x, d.cell_y);
    (mode == 0 ? wl_only : nw) = m;
  }
  ASSERT_LT(wl_only.wns, 0.0);
  EXPECT_GT(nw.tns, wl_only.tns);
}

TEST(GlobalPlacer, ResultLegalizesCleanly) {
  liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = make_design(500, 311, lib);
  sta::TimingGraph graph(d.netlist);
  GlobalPlacer placer(d, graph, fast_options());
  placer.run();
  const auto lg = legalize(d, d.cell_x, d.cell_y);
  EXPECT_EQ(lg.failed_cells, 0u);
  std::string why;
  EXPECT_TRUE(is_legal(d, d.cell_x, d.cell_y, &why)) << why;
  // Spread placements legalize with modest displacement.
  EXPECT_LT(lg.max_displacement, 0.35 * d.floorplan.core.width());
}

TEST(GlobalPlacer, HistoryRecordsTimingWhenProbed) {
  liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = make_design(300, 313, lib);
  sta::TimingGraph graph(d.netlist);
  GlobalPlacerOptions o = fast_options();
  o.probe_timing_every = 20;
  GlobalPlacer placer(d, graph, o);
  const auto res = placer.run();
  size_t probed = 0;
  for (const auto& log : res.history)
    if (log.has_timing) ++probed;
  EXPECT_GE(probed, res.history.size() / 25);
}

TEST(GlobalPlacer, AdamModeAlsoConverges) {
  liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = make_design(400, 315, lib);
  sta::TimingGraph graph(d.netlist);
  GlobalPlacerOptions o = fast_options();
  o.use_adam = true;
  o.max_iters = 700;
  GlobalPlacer placer(d, graph, o);
  const auto res = placer.run();
  EXPECT_LT(res.overflow, 0.15);
}

}  // namespace
}  // namespace dtp::placer
