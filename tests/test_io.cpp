// IO formats: Bookshelf, SDC subset, structural Verilog round trips.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "io/bookshelf.h"
#include "io/sdc.h"
#include "io/verilog.h"
#include "liberty/synth_library.h"
#include "workload/circuit_gen.h"

namespace dtp::io {
namespace {

using netlist::Design;

Design make_design(const liberty::CellLibrary& lib, int cells = 200,
                   uint64_t seed = 500) {
  workload::WorkloadOptions opts;
  opts.num_cells = cells;
  opts.seed = seed;
  return workload::generate_design(lib, opts);
}

// ---------------- SDC ----------------

TEST(Sdc, ParsesCoreCommands) {
  const char* text = R"(
# comment line
create_clock -period 0.75 -name core_clk [get_ports clk]
set_input_delay 0.05
set_output_delay 0.10 [get_ports po_3]
set_input_transition 0.02 [get_ports pi_1]
set_load 0.008
set_wire_res 0.0005
set_wire_cap 0.00025
set_false_path -from x -to y
)";
  netlist::Constraints con;
  std::istringstream in(text);
  const auto r = read_sdc(in, con);
  EXPECT_EQ(r.commands, 7u);
  EXPECT_EQ(r.skipped, 1u);  // set_false_path unsupported
  EXPECT_DOUBLE_EQ(con.clock_period, 0.75);
  EXPECT_DOUBLE_EQ(con.input_delay, 0.05);
  EXPECT_DOUBLE_EQ(con.output_delay_override.at("po_3"), 0.10);
  EXPECT_DOUBLE_EQ(con.input_slew_override.at("pi_1"), 0.02);
  EXPECT_DOUBLE_EQ(con.output_load, 0.008);
  EXPECT_DOUBLE_EQ(con.wire_res, 0.0005);
  EXPECT_DOUBLE_EQ(con.wire_cap, 0.00025);
}

TEST(Sdc, RoundTrips) {
  netlist::Constraints con;
  con.clock_period = 1.25;
  con.input_delay = 0.03;
  con.output_delay = 0.07;
  con.input_slew = 0.015;
  con.output_load = 0.006;
  con.input_delay_override["pi_2"] = 0.09;
  con.output_load_override["po_5"] = 0.012;
  std::stringstream ss;
  write_sdc(con, ss);
  netlist::Constraints back;
  read_sdc(ss, back);
  EXPECT_DOUBLE_EQ(back.clock_period, con.clock_period);
  EXPECT_DOUBLE_EQ(back.input_delay, con.input_delay);
  EXPECT_DOUBLE_EQ(back.output_delay, con.output_delay);
  EXPECT_DOUBLE_EQ(back.input_slew, con.input_slew);
  EXPECT_DOUBLE_EQ(back.output_load, con.output_load);
  EXPECT_DOUBLE_EQ(back.input_delay_override.at("pi_2"), 0.09);
  EXPECT_DOUBLE_EQ(back.output_load_override.at("po_5"), 0.012);
}

TEST(Sdc, ThrowsOnMissingValue) {
  netlist::Constraints con;
  std::istringstream in("set_input_delay [get_ports p]");
  EXPECT_THROW(read_sdc(in, con), std::runtime_error);
}

// ---------------- Verilog ----------------

TEST(Verilog, RoundTripsGeneratedDesign) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  const Design d = make_design(lib);
  std::stringstream ss;
  write_verilog(d, ss);
  const Design back = read_verilog(lib, ss);

  ASSERT_EQ(back.netlist.num_cells(), d.netlist.num_cells());
  ASSERT_EQ(back.netlist.num_nets(), d.netlist.num_nets());
  EXPECT_NO_THROW(back.netlist.validate());
  // Per-cell master identity and per-net degree must survive.
  for (size_t c = 0; c < d.netlist.num_cells(); ++c) {
    const auto& name = d.netlist.cell(static_cast<int>(c)).name;
    const auto id = back.netlist.find_cell(name);
    ASSERT_NE(id, netlist::kInvalidId) << name;
    EXPECT_EQ(back.netlist.cell(id).lib_cell,
              d.netlist.cell(static_cast<int>(c)).lib_cell)
        << name;
  }
  for (size_t n = 0; n < d.netlist.num_nets(); ++n) {
    const auto& net = d.netlist.net(static_cast<int>(n));
    const auto id = back.netlist.find_net(net.name);
    ASSERT_NE(id, netlist::kInvalidId);
    EXPECT_EQ(back.netlist.net(id).pins.size(), net.pins.size()) << net.name;
  }
}

TEST(Verilog, ParsesHandWrittenModule) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  const char* text = R"(
// tiny module
module tiny (a, b, y);
  input a;
  input b;
  output y;
  wire n1;  wire na; wire nb; wire ny;
  assign na = a;
  assign nb = b;
  assign y = ny;
  NAND2_X1 u1 ( .A(na), .B(nb), .Z(n1) );
  INV_X1 u2 ( .A(n1), .Z(ny) );
endmodule
)";
  std::istringstream in(text);
  const Design d = read_verilog(lib, in);
  EXPECT_EQ(d.name, "tiny");
  EXPECT_EQ(d.netlist.num_cells(), 5u);  // 3 pads + 2 gates
  EXPECT_NO_THROW(d.netlist.validate());
  const auto u1 = d.netlist.find_cell("u1");
  ASSERT_NE(u1, netlist::kInvalidId);
  EXPECT_EQ(d.netlist.lib_cell_of(u1).name, "NAND2_X1");
  // a -> u1.A connectivity through the alias.
  const auto a_pad = d.netlist.find_cell("a");
  const auto net_of_a = d.netlist.pin(d.netlist.cell(a_pad).first_pin).net;
  const auto u1_a = d.netlist.pin_of_cell(u1, "A");
  EXPECT_EQ(d.netlist.pin(u1_a).net, net_of_a);
}

TEST(Verilog, RejectsUnknownMaster) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  std::istringstream in(
      "module m (a); input a; wire na; assign na = a;\n"
      "MYSTERY_CELL u1 ( .A(na) ); endmodule");
  EXPECT_THROW(read_verilog(lib, in), std::runtime_error);
}

TEST(Verilog, RejectsPositionalConnections) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  std::istringstream in(
      "module m (a); input a; wire na; assign na = a;\n"
      "INV_X1 u1 ( na ); endmodule");
  EXPECT_THROW(read_verilog(lib, in), std::runtime_error);
}

// ---------------- Bookshelf ----------------

TEST(Bookshelf, WritesAllFilesAndReadsPlacementBack) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = make_design(lib);
  const std::string dir =
      (std::filesystem::temp_directory_path() / "dtp_bookshelf_test").string();
  std::filesystem::create_directories(dir);
  write_bookshelf(d, dir);
  for (const char* ext : {".aux", ".nodes", ".nets", ".pl", ".scl"})
    EXPECT_TRUE(std::filesystem::exists(dir + "/" + d.name + ext)) << ext;

  // Perturb positions, then restore them from the .pl.
  Design other = make_design(lib);
  for (auto& x : other.cell_x) x += 123.0;
  const size_t updated = read_placement(other, dir + "/" + d.name + ".pl");
  EXPECT_EQ(updated, d.netlist.num_cells());
  for (size_t c = 0; c < d.cell_x.size(); ++c) {
    EXPECT_NEAR(other.cell_x[c], d.cell_x[c], 1e-9);
    EXPECT_NEAR(other.cell_y[c], d.cell_y[c], 1e-9);
  }
}

TEST(Bookshelf, ReadPlacementRejectsUnknownCell) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = make_design(lib);
  const std::string dir =
      (std::filesystem::temp_directory_path() / "dtp_bookshelf_bad").string();
  std::filesystem::create_directories(dir);
  {
    std::ofstream pl(dir + "/bad.pl");
    pl << "UCLA pl 1.0\n\nnot_a_cell 1.0 2.0 : N\n";
  }
  EXPECT_THROW(read_placement(d, dir + "/bad.pl"), std::runtime_error);
}

}  // namespace
}  // namespace dtp::io
