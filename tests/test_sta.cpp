// STA forward propagation: chain-circuit hand validation, smoothing
// properties, early/late consistency, slack bookkeeping.
#include <gtest/gtest.h>

#include "liberty/synth_library.h"
#include "sta/cell_arc_eval.h"
#include "sta/timer.h"
#include "workload/circuit_gen.h"

namespace dtp::sta {
namespace {

using netlist::CellId;
using netlist::Design;
using netlist::NetId;

// pi -> BUF u0 -> BUF u1 -> po : a single positive-unate path, so arrival
// times can be recomputed step by step in the test.
struct ChainDesign {
  liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design design{&lib, "chain"};
  CellId pi, u0, u1, po;

  ChainDesign() {
    auto& nl = design.netlist;
    pi = nl.add_cell("pi", lib.find_cell(liberty::CellLibrary::kPortInName));
    u0 = nl.add_cell("u0", lib.find_cell("BUF_X1"));
    u1 = nl.add_cell("u1", lib.find_cell("BUF_X1"));
    po = nl.add_cell("po", lib.find_cell(liberty::CellLibrary::kPortOutName));
    const NetId n0 = nl.add_net("n0");
    nl.connect(n0, pi, "PAD");
    nl.connect(n0, u0, "A");
    const NetId n1 = nl.add_net("n1");
    nl.connect(n1, u0, "Z");
    nl.connect(n1, u1, "A");
    const NetId n2 = nl.add_net("n2");
    nl.connect(n2, u1, "Z");
    nl.connect(n2, po, "PAD");
    nl.validate();
    design.init_positions();
    // Spread the cells so wires have real length.
    design.cell_x = {0.0, 40.0, 90.0, 150.0};
    design.cell_y = {0.0, 10.0, 30.0, 0.0};
    design.constraints.clock_period = 0.4;
  }
};

TEST(Sta, ChainArrivalTimesHandComputed) {
  ChainDesign cd;
  auto& nl = cd.design.netlist;
  const TimingGraph graph(nl);
  Timer timer(cd.design, graph);
  timer.evaluate(cd.design.cell_x, cd.design.cell_y);

  const auto& con = cd.design.constraints;
  const liberty::LibCell& buf = cd.lib.cell(cd.lib.find_cell("BUF_X1"));
  const liberty::TimingArc& arc = buf.arcs[0];

  // Stage by stage, rise transition only (positive unate chain).
  const netlist::PinId pi_pad = nl.pin_of_cell(cd.pi, "PAD");
  EXPECT_DOUBLE_EQ(timer.at(pi_pad, kRise), con.input_delay);
  EXPECT_DOUBLE_EQ(timer.slew(pi_pad, kRise), con.input_slew);

  // Net n0: 2-pin Elmore.
  const NetId n0 = nl.find_net("n0");
  const auto nt0 = timer.net_timing(n0);
  const netlist::PinId u0_a = nl.pin_of_cell(cd.u0, "A");
  const size_t sink0 = nl.net(n0).pins[1] == u0_a ? 1 : 0;
  const double at_u0a = con.input_delay + nt0.delay[sink0];
  EXPECT_NEAR(timer.at(u0_a, kRise), at_u0a, 1e-12);
  const double slew_u0a =
      std::sqrt(con.input_slew * con.input_slew + nt0.imp2[sink0]);
  EXPECT_NEAR(timer.slew(u0_a, kRise), slew_u0a, 1e-12);

  // Cell u0: LUT query at (slew(A), load(n1)).
  const NetId n1 = nl.find_net("n1");
  const double load1 = timer.net_timing(n1).root_load();
  const double d_u0 = arc.cell_rise.lookup(slew_u0a, load1);
  const netlist::PinId u0_z = nl.pin_of_cell(cd.u0, "Z");
  EXPECT_NEAR(timer.at(u0_z, kRise), at_u0a + d_u0, 1e-12);
  EXPECT_NEAR(timer.slew(u0_z, kRise), arc.rise_transition.lookup(slew_u0a, load1),
              1e-12);

  // Endpoint slack: rat = period - output_delay; slack = rat - worst at(po).
  const netlist::PinId po_pad = nl.pin_of_cell(cd.po, "PAD");
  const double worst_at = std::max(timer.at(po_pad, kRise), timer.at(po_pad, kFall));
  const auto m = timer.metrics();
  EXPECT_NEAR(m.wns, con.clock_period - con.output_delay - worst_at, 1e-12);
  ASSERT_EQ(graph.endpoints().size(), 1u);
  EXPECT_NEAR(timer.endpoint_slack()[0], m.wns, 1e-12);
}

TEST(Sta, FallSlowerThanRiseOnInvertingStage) {
  // The synthetic library makes rise edges slower; through a buffer the
  // rise output derives from a rise input, so at(rise) > at(fall).
  ChainDesign cd;
  const TimingGraph graph(cd.design.netlist);
  Timer timer(cd.design, graph);
  timer.evaluate(cd.design.cell_x, cd.design.cell_y);
  const netlist::PinId po_pad = cd.design.netlist.pin_of_cell(cd.po, "PAD");
  EXPECT_GT(timer.at(po_pad, kRise), timer.at(po_pad, kFall));
}

TEST(Sta, SmoothUpperBoundsHardAndConverges) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  workload::WorkloadOptions opts;
  opts.num_cells = 300;
  opts.seed = 11;
  Design d = workload::generate_design(lib, opts);
  const TimingGraph graph(d.netlist);

  Timer hard(d, graph);
  const auto mh = hard.evaluate(d.cell_x, d.cell_y);

  double prev_gap = 1e100;
  for (double gamma : {0.05, 0.01, 0.002}) {
    TimerOptions sopts;
    sopts.mode = AggMode::Smooth;
    sopts.gamma = gamma;
    Timer smooth(d, graph, sopts);
    const auto ms = smooth.evaluate(d.cell_x, d.cell_y);
    // Smoothed max bounds hard max from above => smoothed ATs are later =>
    // smoothed WNS is no better (no larger) than hard WNS.
    EXPECT_LE(ms.wns_smooth, mh.wns + 1e-9);
    const double gap = std::abs(ms.wns_smooth - mh.wns);
    EXPECT_LE(gap, prev_gap + 1e-12);
    prev_gap = gap;
  }
  // Tight convergence at the smallest gamma.
  EXPECT_LT(prev_gap, 0.01 * std::abs(mh.wns) + 1e-3);
}

TEST(Sta, EarlyNeverLaterThanLate) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  workload::WorkloadOptions opts;
  opts.num_cells = 250;
  opts.seed = 19;
  Design d = workload::generate_design(lib, opts);
  const TimingGraph graph(d.netlist);
  TimerOptions topts;
  topts.enable_early = true;
  Timer timer(d, graph, topts);
  timer.evaluate(d.cell_x, d.cell_y);
  for (int l = 0; l < graph.num_levels(); ++l) {
    for (netlist::PinId p : graph.level(l)) {
      for (int tr = 0; tr < 2; ++tr) {
        const double late = timer.at(p, tr);
        const double early = timer.at_early(p, tr);
        if (std::isfinite(late) && std::isfinite(early)) {
          EXPECT_LE(early, late + 1e-9) << "pin " << p;
        }
      }
    }
  }
}

TEST(Sta, TnsAccumulatesOnlyViolations) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  workload::WorkloadOptions opts;
  opts.num_cells = 300;
  opts.seed = 23;
  opts.clock_scale = 0.5;  // force violations
  Design d = workload::generate_design(lib, opts);
  const TimingGraph graph(d.netlist);
  Timer timer(d, graph);
  const auto m = timer.evaluate(d.cell_x, d.cell_y);
  EXPECT_LT(m.wns, 0.0);
  EXPECT_LE(m.tns, m.wns);  // TNS includes at least the worst endpoint
  double tns = 0.0;
  size_t viol = 0;
  for (double s : timer.endpoint_slack()) {
    if (std::isfinite(s) && s < 0) {
      tns += s;
      ++viol;
    }
  }
  EXPECT_NEAR(m.tns, tns, 1e-9);
  EXPECT_EQ(m.num_violations, viol);
}

TEST(Sta, LongerClockPeriodRaisesSlack) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  workload::WorkloadOptions opts;
  opts.num_cells = 200;
  opts.seed = 29;
  Design d = workload::generate_design(lib, opts);
  const TimingGraph graph(d.netlist);
  Timer t1(d, graph);
  const double wns1 = t1.evaluate(d.cell_x, d.cell_y).wns;
  d.constraints.clock_period += 0.5;
  Timer t2(d, graph);
  const double wns2 = t2.evaluate(d.cell_x, d.cell_y).wns;
  EXPECT_NEAR(wns2 - wns1, 0.5, 1e-9);
}

TEST(Sta, CriticalPathTraceEndsAtSource) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  workload::WorkloadOptions opts;
  opts.num_cells = 300;
  opts.seed = 31;
  Design d = workload::generate_design(lib, opts);
  const TimingGraph graph(d.netlist);
  Timer timer(d, graph);
  timer.evaluate(d.cell_x, d.cell_y);

  // Find the worst endpoint and trace.
  size_t worst = 0;
  for (size_t e = 1; e < graph.endpoints().size(); ++e)
    if (timer.endpoint_slack()[e] < timer.endpoint_slack()[worst]) worst = e;
  const auto path = timer.trace_critical_path(graph.endpoints()[worst].pin);
  ASSERT_GE(path.size(), 2u);
  EXPECT_EQ(graph.level_of(path.front().pin), 0);
  EXPECT_EQ(path.back().pin, graph.endpoints()[worst].pin);
  // Arrival times are non-decreasing along the path.
  for (size_t i = 1; i < path.size(); ++i)
    EXPECT_GE(path[i].at, path[i - 1].at - 1e-12);
}

TEST(Sta, DragMatchesRebuildWhenTopologyUnchanged) {
  // Tiny motion: drag and rebuild should produce identical timing when the
  // tree topology does not change.
  ChainDesign cd;
  const TimingGraph graph(cd.design.netlist);
  Timer timer(cd.design, graph);
  timer.evaluate(cd.design.cell_x, cd.design.cell_y);

  auto x = cd.design.cell_x;
  x[1] += 0.5;  // nudge u0
  timer.update_positions(x, cd.design.cell_y);
  timer.drag_trees();
  timer.run_elmore();
  timer.propagate();
  timer.update_slacks();
  const double wns_drag = timer.metrics().wns;

  Timer fresh(cd.design, graph);
  const double wns_rebuild = fresh.evaluate(x, cd.design.cell_y).wns;
  EXPECT_NEAR(wns_drag, wns_rebuild, 1e-12);
}

}  // namespace
}  // namespace dtp::sta
