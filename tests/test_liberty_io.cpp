// Liberty-subset writer/parser round-trip and error handling.
#include <gtest/gtest.h>

#include <sstream>

#include "liberty/liberty_io.h"
#include "liberty/synth_library.h"

namespace dtp::liberty {
namespace {

void expect_lut_eq(const Lut& a, const Lut& b, const std::string& context) {
  ASSERT_EQ(a.nx(), b.nx()) << context;
  ASSERT_EQ(a.ny(), b.ny()) << context;
  for (size_t i = 0; i < a.nx(); ++i)
    EXPECT_NEAR(a.x_axis()[i], b.x_axis()[i], 1e-9) << context;
  for (size_t j = 0; j < a.ny(); ++j)
    EXPECT_NEAR(a.y_axis()[j], b.y_axis()[j], 1e-9) << context;
  for (size_t i = 0; i < a.nx(); ++i)
    for (size_t j = 0; j < a.ny(); ++j)
      EXPECT_NEAR(a.value_at(i, j), b.value_at(i, j), 1e-9) << context;
}

TEST(LibertyIo, RoundTripsSyntheticLibrary) {
  const CellLibrary lib = make_synthetic_library();
  std::stringstream ss;
  write_liberty(lib, ss);
  const CellLibrary parsed = parse_liberty(ss);

  ASSERT_EQ(parsed.size(), lib.size());
  EXPECT_NEAR(parsed.default_slew, lib.default_slew, 1e-9);
  for (size_t c = 0; c < lib.size(); ++c) {
    const LibCell& a = lib.cell(static_cast<int>(c));
    const int id = parsed.find_cell(a.name);
    ASSERT_GE(id, 0) << a.name;
    const LibCell& b = parsed.cell(id);
    EXPECT_EQ(a.kind, b.kind) << a.name;
    EXPECT_NEAR(a.width, b.width, 1e-9);
    EXPECT_NEAR(a.height, b.height, 1e-9);
    EXPECT_NEAR(a.setup_time, b.setup_time, 1e-9);
    EXPECT_NEAR(a.hold_time, b.hold_time, 1e-9);
    ASSERT_EQ(a.pins.size(), b.pins.size()) << a.name;
    for (size_t p = 0; p < a.pins.size(); ++p) {
      EXPECT_EQ(a.pins[p].name, b.pins[p].name);
      EXPECT_EQ(a.pins[p].dir, b.pins[p].dir);
      EXPECT_EQ(a.pins[p].is_clock, b.pins[p].is_clock);
      EXPECT_NEAR(a.pins[p].cap, b.pins[p].cap, 1e-12);
      EXPECT_NEAR(a.pins[p].offset_x, b.pins[p].offset_x, 1e-9);
      EXPECT_NEAR(a.pins[p].offset_y, b.pins[p].offset_y, 1e-9);
    }
    ASSERT_EQ(a.arcs.size(), b.arcs.size()) << a.name;
    for (size_t k = 0; k < a.arcs.size(); ++k) {
      EXPECT_EQ(a.arcs[k].from_pin, b.arcs[k].from_pin);
      EXPECT_EQ(a.arcs[k].to_pin, b.arcs[k].to_pin);
      EXPECT_EQ(a.arcs[k].kind, b.arcs[k].kind);
      EXPECT_EQ(a.arcs[k].unate, b.arcs[k].unate);
      const std::string ctx = a.name + " arc " + std::to_string(k);
      expect_lut_eq(a.arcs[k].cell_rise, b.arcs[k].cell_rise, ctx);
      expect_lut_eq(a.arcs[k].cell_fall, b.arcs[k].cell_fall, ctx);
      expect_lut_eq(a.arcs[k].rise_transition, b.arcs[k].rise_transition, ctx);
      expect_lut_eq(a.arcs[k].fall_transition, b.arcs[k].fall_transition, ctx);
    }
  }
}

TEST(LibertyIo, ParsesHandWrittenMinimalLibrary) {
  const char* text = R"(
/* a comment */
library (tiny) {
  time_unit : "1ns";
  cell (AND1) {  // line comment
    dtp_width : 2.0;
    dtp_height : 2.0;
    pin (A) { direction : input; capacitance : 0.002; }
    pin (Z) {
      direction : output;
      timing () {
        related_pin : "A";
        timing_sense : positive_unate;
        cell_rise () {
          index_1 ("0.01, 0.1");
          index_2 ("0.001, 0.01");
          values ("0.02, 0.04", "0.03, 0.05");
        }
      }
    }
  }
}
)";
  std::stringstream ss(text);
  const CellLibrary lib = parse_liberty(ss);
  const int id = lib.find_cell("AND1");
  ASSERT_GE(id, 0);
  const LibCell& cell = lib.cell(id);
  ASSERT_EQ(cell.arcs.size(), 1u);
  EXPECT_EQ(cell.arcs[0].unate, Unateness::Positive);
  EXPECT_NEAR(cell.arcs[0].cell_rise.lookup(0.01, 0.001), 0.02, 1e-12);
  EXPECT_NEAR(cell.arcs[0].cell_rise.lookup(0.1, 0.01), 0.05, 1e-12);
}

TEST(LibertyIo, SkipsUnknownGroupsAndAttributes) {
  const char* text = R"(
library (odd) {
  operating_conditions (typ) { process : 1; temperature : 25; }
  unknown_attr : some value here;
  lu_table_template (tmpl_7x7) { variable_1 : input_net_transition; }
  cell (X) {
    dtp_width : 1.0;
    dtp_height : 1.0;
    pin (A) { direction : input; capacitance : 0.001; }
  }
}
)";
  std::stringstream ss(text);
  const CellLibrary lib = parse_liberty(ss);
  EXPECT_GE(lib.find_cell("X"), 0);
}

TEST(LibertyIo, ThrowsOnMissingRelatedPin) {
  const char* text = R"(
library (bad) {
  cell (X) {
    pin (A) { direction : input; }
    pin (Z) { direction : output; timing () { timing_sense : positive_unate; } }
  }
}
)";
  std::stringstream ss(text);
  EXPECT_THROW(parse_liberty(ss), std::runtime_error);
}

TEST(LibertyIo, ThrowsOnGarbage) {
  std::stringstream a("not a library at all");
  EXPECT_THROW(parse_liberty(a), std::runtime_error);
  std::stringstream b("library (x) { cell (y) {");
  EXPECT_THROW(parse_liberty(b), std::runtime_error);
}

TEST(LibertyIo, LutQueriesIdenticalAfterRoundTrip) {
  const CellLibrary lib = make_synthetic_library();
  std::stringstream ss;
  write_liberty(lib, ss);
  const CellLibrary parsed = parse_liberty(ss);
  const LibCell& a = lib.cell(lib.find_cell("NAND2_X1"));
  const LibCell& b = parsed.cell(parsed.find_cell("NAND2_X1"));
  for (double slew : {0.01, 0.05, 0.3})
    for (double load : {0.001, 0.02, 0.2})
      EXPECT_NEAR(a.arcs[1].cell_fall.lookup(slew, load),
                  b.arcs[1].cell_fall.lookup(slew, load), 1e-9);
}

}  // namespace
}  // namespace dtp::liberty
