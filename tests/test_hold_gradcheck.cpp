// Differentiable hold objective (paper Eq. 2 early-mode metrics): smoothed
// hold TNS/WNS forward properties and finite-difference validation of the
// early-corner backward sweep.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "dtimer/diff_timer.h"
#include "liberty/synth_library.h"
#include "workload/circuit_gen.h"

namespace dtp::dtimer {
namespace {

using netlist::Design;

// A design with genuine hold violations: inflate the flop hold requirement
// far beyond a clock-to-Q + short wire delay.
struct HoldFixture {
  liberty::CellLibrary lib;
  Design design;
  sta::TimingGraph graph;

  explicit HoldFixture(uint64_t seed, int cells = 80)
      : lib(make_lib()), design(make_design(lib, seed, cells)),
        graph(design.netlist) {}

  static liberty::CellLibrary make_lib() {
    liberty::CellLibrary lib = liberty::make_synthetic_library();
    liberty::LibCell& ff = lib.cell(lib.find_cell("DFF_X1"));
    ff.hold_time = 0.12;  // aggressive scalar fallback
    // The hold constraint LUT takes precedence over the scalar; shift it by
    // the same amount so the slew-dependent gradient path stays exercised.
    const auto& old = ff.hold_lut;
    std::vector<double> xs(old.x_axis().begin(), old.x_axis().end());
    std::vector<double> ys(old.y_axis().begin(), old.y_axis().end());
    std::vector<double> vals(old.values().begin(), old.values().end());
    for (double& v : vals) v += 0.116;
    ff.hold_lut = liberty::Lut(std::move(xs), std::move(ys), std::move(vals));
    return lib;
  }
  static Design make_design(const liberty::CellLibrary& lib, uint64_t seed,
                            int cells) {
    workload::WorkloadOptions opts;
    opts.num_cells = cells;
    opts.seed = seed;
    opts.levels = 6;
    return workload::generate_design(lib, opts);
  }
};

TEST(HoldObjective, FixtureActuallyViolatesHold) {
  HoldFixture f(7001, 150);
  sta::TimerOptions topts;
  topts.enable_early = true;
  sta::Timer timer(f.design, f.graph, topts);
  const auto m = timer.evaluate(f.design.cell_x, f.design.cell_y);
  EXPECT_LT(m.hold_wns, 0.0);
  EXPECT_LT(m.hold_tns, m.hold_wns);
}

TEST(HoldObjective, SmoothedHoldMetricsBoundExact) {
  HoldFixture f(7003, 150);
  sta::TimerOptions hard_opts;
  hard_opts.enable_early = true;
  sta::Timer hard(f.design, f.graph, hard_opts);
  const auto mh = hard.evaluate(f.design.cell_x, f.design.cell_y);

  DiffTimerOptions dopts;
  dopts.enable_early = true;
  DiffTimer dt(f.design, f.graph, dopts);
  const auto ms = dt.forward(f.design.cell_x, f.design.cell_y, true);
  // Smooth-min under-estimates: smoothed hold slack <= exact hold slack.
  EXPECT_LE(ms.hold_wns_smooth, mh.hold_wns + 1e-9);
  EXPECT_LE(ms.hold_tns_smooth, mh.hold_tns + 1e-9);
  // And converges with small gamma.
  DiffTimerOptions tight = dopts;
  tight.gamma = 0.003;
  DiffTimer dt2(f.design, f.graph, tight);
  const auto mt = dt2.forward(f.design.cell_x, f.design.cell_y, true);
  EXPECT_NEAR(mt.hold_wns_smooth, mh.hold_wns,
              0.02 * std::abs(mh.hold_wns) + 1e-3);
}

class HoldGradCheck : public ::testing::TestWithParam<int> {};

TEST_P(HoldGradCheck, MatchesFiniteDifference) {
  HoldFixture f(static_cast<uint64_t>(7100 + GetParam()));
  DiffTimerOptions dopts;
  dopts.enable_early = true;
  dopts.steiner_rebuild_period = 0;
  DiffTimer dt(f.design, f.graph, dopts);

  const double h1 = 0.02, h2 = 0.002;
  auto loss = [&](const sta::TimingMetrics& m) {
    return h1 * (-m.hold_tns_smooth) + h2 * (-m.hold_wns_smooth);
  };
  auto x = f.design.cell_x;
  auto y = f.design.cell_y;
  const auto m0 = dt.forward(x, y, true);
  ASSERT_LT(m0.hold_wns, 0.0);
  std::vector<double> gx(x.size(), 0.0), gy(y.size(), 0.0);
  dt.backward(0.0, 0.0, h1, h2, gx, gy);

  const double eps = 2e-4;
  size_t checked = 0;
  for (size_t c = 0; c < x.size() && checked < 14; ++c) {
    if (std::abs(gx[c]) < 1e-7 && std::abs(gy[c]) < 1e-7) continue;
    for (int axis = 0; axis < 2; ++axis) {
      auto& coords = axis == 0 ? x : y;
      const double saved = coords[c];
      coords[c] = saved + eps;
      const double fp = loss(dt.forward(x, y));
      coords[c] = saved - eps;
      const double fm = loss(dt.forward(x, y));
      coords[c] = saved;
      const double f0 = loss(dt.forward(x, y));
      const double fd = (fp - fm) / (2 * eps);
      if (std::abs(fp + fm - 2 * f0) / eps > 1e-3 * (std::abs(fd) + 1e-6))
        continue;  // rectilinear kink sample
      const double an = axis == 0 ? gx[c] : gy[c];
      EXPECT_NEAR(an, fd, 3e-4 * std::max(1.0, std::abs(fd)) + 1e-7)
          << "cell " << c << " axis " << axis;
      ++checked;
    }
  }
  EXPECT_GE(checked, 4u);
}

INSTANTIATE_TEST_SUITE_P(Random, HoldGradCheck, ::testing::Range(0, 6));

TEST(HoldObjective, CombinedSetupHoldGradcheck) {
  // Both corners active simultaneously — the accumulators are shared, so
  // cross-talk bugs would show here.
  HoldFixture f(7500);
  f.design.constraints.clock_period *= 0.6;  // setup violations too
  DiffTimerOptions dopts;
  dopts.enable_early = true;
  dopts.steiner_rebuild_period = 0;
  DiffTimer dt(f.design, f.graph, dopts);

  const double t1 = 0.01, t2 = 0.001, h1 = 0.02, h2 = 0.002;
  auto loss = [&](const sta::TimingMetrics& m) {
    return t1 * (-m.tns_smooth) + t2 * (-m.wns_smooth) +
           h1 * (-m.hold_tns_smooth) + h2 * (-m.hold_wns_smooth);
  };
  auto x = f.design.cell_x;
  auto y = f.design.cell_y;
  const auto m0 = dt.forward(x, y, true);
  ASSERT_LT(m0.wns, 0.0);
  ASSERT_LT(m0.hold_wns, 0.0);
  std::vector<double> gx(x.size(), 0.0), gy(y.size(), 0.0);
  dt.backward(t1, t2, h1, h2, gx, gy);

  const double eps = 2e-4;
  size_t checked = 0;
  for (size_t c = 0; c < x.size() && checked < 10; ++c) {
    if (std::abs(gx[c]) < 1e-7) continue;
    const double saved = x[c];
    x[c] = saved + eps;
    const double fp = loss(dt.forward(x, y));
    x[c] = saved - eps;
    const double fm = loss(dt.forward(x, y));
    x[c] = saved;
    const double f0 = loss(dt.forward(x, y));
    const double fd = (fp - fm) / (2 * eps);
    if (std::abs(fp + fm - 2 * f0) / eps > 1e-3 * (std::abs(fd) + 1e-6)) continue;
    EXPECT_NEAR(gx[c], fd, 3e-4 * std::max(1.0, std::abs(fd)) + 1e-7)
        << "cell " << c;
    ++checked;
  }
  EXPECT_GE(checked, 3u);
}

TEST(HoldObjective, HoldGradientLengthensShortPaths) {
  // Descending the hold loss should raise early arrivals: a gradient step
  // must improve (raise) smoothed hold TNS.
  HoldFixture f(7700, 120);
  DiffTimerOptions dopts;
  dopts.enable_early = true;
  dopts.steiner_rebuild_period = 0;
  DiffTimer dt(f.design, f.graph, dopts);
  auto x = f.design.cell_x;
  auto y = f.design.cell_y;
  const auto m0 = dt.forward(x, y, true);
  std::vector<double> gx(x.size(), 0.0), gy(y.size(), 0.0);
  dt.backward(0.0, 0.0, 1.0, 0.0, gx, gy);
  double gmax = 0.0;
  for (size_t c = 0; c < x.size(); ++c)
    gmax = std::max({gmax, std::abs(gx[c]), std::abs(gy[c])});
  ASSERT_GT(gmax, 0.0);
  const double step = 0.05 / gmax;
  for (size_t c = 0; c < x.size(); ++c) {
    if (f.design.netlist.cell(static_cast<int>(c)).fixed) continue;
    x[c] -= step * gx[c];
    y[c] -= step * gy[c];
  }
  const auto m1 = dt.forward(x, y);
  EXPECT_GT(m1.hold_tns_smooth, m0.hold_tns_smooth);
}

}  // namespace
}  // namespace dtp::dtimer
