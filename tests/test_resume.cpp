// Checkpoint persistence + placer control plane (DESIGN.md §12):
//   * binary checkpoint round-trip, bad-magic / truncation / bit-rot
//     detection (load succeeds, verify() fails — same path as in-memory
//     corruption),
//   * cooperative cancel / pause hooks and the sealed pause checkpoint,
//   * resume: a paused-then-resumed descent reproduces the uninterrupted
//     run's final placement,
//   * wall-clock budget: graceful stop with a valid placement and a
//     `type:"timeout"` record in the run stream.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "liberty/synth_library.h"
#include "obs/jsonl.h"
#include "placer/global_placer.h"
#include "placer/run_report.h"
#include "robust/checkpoint.h"
#include "sta/timing_graph.h"
#include "workload/circuit_gen.h"

using namespace dtp;

namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

robust::Checkpoint sample_checkpoint() {
  std::vector<double> x = {1.0, 2.5, -3.0}, y = {0.5, -1.5, 9.0};
  std::vector<double> scalars = {0.1, 0.2, 0.3, 1.0};
  robust::StateBlob blob;
  blob.scalars = {7.0, 8.0};
  blob.vectors = {{1.0, 2.0, 3.0}, {4.0}};
  robust::Checkpoint ck;
  ck.capture(42, x, y, scalars, blob);
  return ck;
}

struct Bench {
  liberty::CellLibrary lib;
  netlist::Design design;
  sta::TimingGraph graph;

  explicit Bench(int cells, uint64_t seed = 3)
      : lib(liberty::make_synthetic_library()),
        design([&] {
          workload::WorkloadOptions w;
          w.num_cells = cells;
          w.seed = seed;
          return workload::generate_design(lib, w, "resume_bench");
        }()),
        graph(design.netlist) {}

  placer::PlaceResult run(placer::GlobalPlacerOptions opts) {
    placer::GlobalPlacer gp(design, graph, opts);
    return gp.run();
  }
};

placer::GlobalPlacerOptions wl_options(int max_iters) {
  placer::GlobalPlacerOptions o;
  o.mode = placer::PlacerMode::WirelengthOnly;
  o.max_iters = max_iters;
  o.min_iters = max_iters;  // fixed-length runs make trajectories comparable
  o.stop_overflow = 0.0;
  return o;
}

}  // namespace

TEST(CheckpointFile, RoundTrip) {
  const robust::Checkpoint ck = sample_checkpoint();
  const std::string path = temp_path("dtp_ckpt_roundtrip.ckpt");
  ASSERT_TRUE(ck.save_file(path));

  robust::Checkpoint loaded;
  std::string err;
  ASSERT_TRUE(loaded.load_file(path, &err)) << err;
  EXPECT_TRUE(loaded.verify());
  EXPECT_EQ(loaded.iter(), 42);
  EXPECT_EQ(loaded.num_cells(), 3u);
  EXPECT_EQ(loaded.checksum(), ck.checksum());

  std::vector<double> x(3), y(3), scalars(4);
  robust::StateBlob blob;
  ASSERT_TRUE(loaded.restore(x, y, scalars, blob));
  EXPECT_DOUBLE_EQ(x[1], 2.5);
  EXPECT_DOUBLE_EQ(y[2], 9.0);
  EXPECT_DOUBLE_EQ(scalars[3], 1.0);
  ASSERT_EQ(blob.vectors.size(), 2u);
  EXPECT_DOUBLE_EQ(blob.vectors[0][2], 3.0);
  std::remove(path.c_str());
}

TEST(CheckpointFile, RejectsBadMagic) {
  const std::string path = temp_path("dtp_ckpt_badmagic.ckpt");
  {
    std::ofstream f(path, std::ios::binary);
    f << "this is not a checkpoint at all, not even close";
  }
  robust::Checkpoint ck;
  std::string err;
  EXPECT_FALSE(ck.load_file(path, &err));
  EXPECT_NE(err.find("not a dtp checkpoint"), std::string::npos) << err;
  EXPECT_FALSE(ck.valid());
  std::remove(path.c_str());
}

TEST(CheckpointFile, RejectsTruncation) {
  const robust::Checkpoint ck = sample_checkpoint();
  const std::string path = temp_path("dtp_ckpt_trunc.ckpt");
  ASSERT_TRUE(ck.save_file(path));
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full / 2);

  robust::Checkpoint loaded;
  std::string err;
  EXPECT_FALSE(loaded.load_file(path, &err));
  EXPECT_NE(err.find("truncated"), std::string::npos) << err;
  std::remove(path.c_str());
}

TEST(CheckpointFile, BitRotLoadsButFailsVerify) {
  const robust::Checkpoint ck = sample_checkpoint();
  const std::string path = temp_path("dtp_ckpt_bitrot.ckpt");
  ASSERT_TRUE(ck.save_file(path));
  {
    // Flip one payload byte in the middle of the doubles, past the header.
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(16 + 8 * 8 + 4);
    char b = 0;
    f.read(&b, 1);
    f.seekp(-1, std::ios::cur);
    b = static_cast<char>(b ^ 0x40);
    f.write(&b, 1);
  }
  robust::Checkpoint loaded;
  std::string err;
  ASSERT_TRUE(loaded.load_file(path, &err)) << err;  // structurally fine...
  EXPECT_FALSE(loaded.verify());                     // ...but detected
  std::remove(path.c_str());
}

TEST(PlacerControl, CancelHookStopsTheRun) {
  Bench b(200);
  placer::PlacerControl ctl;
  ctl.cancel_at_iter = 25;
  auto opts = wl_options(200);
  opts.control = &ctl;
  const auto res = b.run(opts);
  EXPECT_EQ(res.stop_reason, placer::StopReason::Cancelled);
  EXPECT_EQ(res.iterations, 25);
  for (double v : b.design.cell_x) ASSERT_TRUE(std::isfinite(v));
}

TEST(PlacerControl, PauseSealsAResumableCheckpoint) {
  Bench b(200);
  placer::PlacerControl ctl;
  ctl.pause_at_iter = 30;
  robust::Checkpoint ckpt;
  auto opts = wl_options(120);
  opts.control = &ctl;
  opts.checkpoint_out = &ckpt;
  const auto res = b.run(opts);
  EXPECT_EQ(res.stop_reason, placer::StopReason::Paused);
  ASSERT_TRUE(ckpt.verify());
  EXPECT_EQ(ckpt.iter(), 30);  // the next iteration to execute
  EXPECT_EQ(ckpt.num_cells(), b.design.netlist.num_cells());
}

TEST(PlacerControl, ResumeMatchesUninterruptedRun) {
  const int kIters = 90;
  Bench uninterrupted(240);
  const auto ref = uninterrupted.run(wl_options(kIters));

  // Same design, paused at 40 and resumed through a checkpoint *file*.
  Bench twophase(240);
  placer::PlacerControl ctl;
  ctl.pause_at_iter = 40;
  robust::Checkpoint ckpt;
  auto opts = wl_options(kIters);
  opts.control = &ctl;
  opts.checkpoint_out = &ckpt;
  const auto first = twophase.run(opts);
  ASSERT_EQ(first.stop_reason, placer::StopReason::Paused);
  ASSERT_TRUE(ckpt.verify());

  const std::string path = temp_path("dtp_ckpt_resume.ckpt");
  ASSERT_TRUE(ckpt.save_file(path));
  robust::Checkpoint loaded;
  ASSERT_TRUE(loaded.load_file(path));
  ASSERT_TRUE(loaded.verify());
  std::remove(path.c_str());

  auto opts2 = wl_options(kIters);
  opts2.resume_from = &loaded;
  const auto second = twophase.run(opts2);
  EXPECT_EQ(second.start_iter, 40);
  EXPECT_EQ(second.iterations, kIters);

  ASSERT_EQ(twophase.design.cell_x.size(), uninterrupted.design.cell_x.size());
  double max_dx = 0.0;
  for (size_t i = 0; i < twophase.design.cell_x.size(); ++i) {
    max_dx = std::max(max_dx, std::abs(twophase.design.cell_x[i] -
                                       uninterrupted.design.cell_x[i]));
    max_dx = std::max(max_dx, std::abs(twophase.design.cell_y[i] -
                                       uninterrupted.design.cell_y[i]));
  }
  // The checkpoint restores positions, driver scalars and the optimizer
  // blob, so the resumed trajectory retraces the uninterrupted one.
  EXPECT_LT(max_dx, 1e-6) << "resume diverged from the uninterrupted run";
  EXPECT_NEAR(second.hpwl, ref.hpwl, std::abs(ref.hpwl) * 1e-9 + 1e-9);
}

TEST(PlacerControl, ResumeRejectsWrongDesign) {
  Bench small(150);
  robust::Checkpoint ckpt;
  auto opts = wl_options(20);
  opts.checkpoint_out = &ckpt;
  small.run(opts);
  ASSERT_TRUE(ckpt.verify());

  Bench other(300, /*seed=*/9);
  auto opts2 = wl_options(20);
  opts2.resume_from = &ckpt;
  EXPECT_THROW(other.run(opts2), std::runtime_error);
}

TEST(PlacerControl, TimeBudgetStopsGracefullyAndLogsTimeout) {
  Bench b(300);
  auto opts = wl_options(100000);
  opts.time_budget_sec = 0.05;
  const auto res = b.run(opts);
  EXPECT_EQ(res.stop_reason, placer::StopReason::TimeBudget);
  EXPECT_LT(res.iterations, 100000);
  for (double v : b.design.cell_x) ASSERT_TRUE(std::isfinite(v));

  // The run stream carries an explicit timeout record plus the stop reason.
  const std::string path = temp_path("dtp_timeout_stream.jsonl");
  {
    obs::JsonlWriter jsonl;
    ASSERT_TRUE(jsonl.open(path));
    placer::append_run_jsonl(jsonl, res, {"budget_bench", "wl"});
  }
  std::ifstream in(path);
  std::string line;
  bool saw_timeout = false, saw_reason = false;
  while (std::getline(in, line)) {
    if (line.find("\"type\":\"timeout\"") != std::string::npos)
      saw_timeout = true;
    if (line.find("\"type\":\"run_end\"") != std::string::npos &&
        line.find("\"stop_reason\":\"time_budget\"") != std::string::npos)
      saw_reason = true;
  }
  EXPECT_TRUE(saw_timeout);
  EXPECT_TRUE(saw_reason);
  std::remove(path.c_str());
}

TEST(PlacerControl, ExternalDegradeRequestIsHonoured) {
  Bench b(200);
  placer::PlacerControl ctl;
  ctl.request_degrade_timing();
  placer::GlobalPlacerOptions opts;
  opts.mode = placer::PlacerMode::DiffTiming;
  opts.max_iters = 60;
  opts.min_iters = 60;
  opts.stop_overflow = 0.0;
  opts.control = &ctl;
  const auto res = b.run(opts);
  EXPECT_EQ(res.iterations, 60);
  // Timing forces were cut before they ever activated: no timing samples.
  for (const auto& log : res.history) EXPECT_FALSE(log.has_timing);
}
