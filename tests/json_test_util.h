// Minimal recursive-descent JSON parser for tests: validates that the
// observability artifacts are well-formed JSON and lets assertions navigate
// the parsed document.  Supports the full JSON value grammar; numbers are
// parsed as double.  Test-only — production code never parses JSON.
#pragma once

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace dtp::test {

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return kind == Kind::Object; }
  bool is_array() const { return kind == Kind::Array; }
  bool has(const std::string& key) const {
    return is_object() && object.count(key) > 0;
  }
  const JsonValue& at(const std::string& key) const { return object.at(key); }
  const JsonValue& at(size_t i) const { return array.at(i); }
  double num(const std::string& key) const { return object.at(key).number; }
  const std::string& str(const std::string& key) const {
    return object.at(key).string;
  }
};

class JsonParser {
 public:
  // Throws std::runtime_error on malformed input or trailing garbage.
  static JsonValue parse(const std::string& text) {
    JsonParser p(text);
    JsonValue v = p.parse_value();
    p.skip_ws();
    if (p.pos_ != text.size()) p.fail("trailing characters");
    return v;
  }

 private:
  explicit JsonParser(const std::string& text) : text_(text) {}

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("JSON error at offset " + std::to_string(pos_) +
                             ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const size_t n = std::strlen(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    JsonValue v;
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      v.kind = JsonValue::Kind::String;
      v.string = parse_string();
      return v;
    }
    if (consume_literal("null")) return v;
    if (consume_literal("true")) {
      v.kind = JsonValue::Kind::Bool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      v.kind = JsonValue::Kind::Bool;
      return v;
    }
    return parse_number();
  }

  JsonValue parse_object() {
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object[key] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("bad escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            const unsigned code = static_cast<unsigned>(
                std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16));
            pos_ += 4;
            // Tests only emit ASCII control characters via \u.
            out += static_cast<char>(code);
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
  }

  JsonValue parse_number() {
    const size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    v.number = std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
    return v;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace dtp::test
