// Test-side alias of the production JSON parser (src/common/json_parse.h).
// Historically the parser lived here as a test-only utility; `dtp_report`
// promoted it to production code, and tests keep validating the observability
// artifacts through the very same code path the offline tooling uses.
#pragma once

#include "common/json_parse.h"

namespace dtp::test {

using JsonValue = dtp::JsonValue;
using JsonParser = dtp::JsonParser;

}  // namespace dtp::test
