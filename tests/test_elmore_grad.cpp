// Finite-difference validation of the Elmore adjoint (Eq. 8, Fig. 5).
//
// Objective: f = sum_i a_i*Delay(sink_i) + sum_i b_i*Imp2(sink_i)
//              + c*Load(root), with random coefficients — exactly the seed
// interface the delay-propagation backward feeds into elmore_backward().
// The analytic per-node coordinate gradient must match central differences
// under re-running the forward passes on the perturbed geometry (topology
// kept fixed, as during Steiner-drag iterations).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "dtimer/elmore_grad.h"
#include "rsmt/rsmt_builder.h"

namespace dtp::dtimer {
namespace {

struct Scenario {
  sta::NetTiming nt;
  std::vector<double> caps;
  std::vector<double> a, b;  // per-node delay / imp2 seeds
  double c = 0.0;            // root load seed
  double r_unit = 0.0, c_unit = 0.0;
};

double objective(Scenario& s) {
  sta::elmore_forward(s.nt, s.caps, s.r_unit, s.c_unit);
  double f = s.c * s.nt.root_load();
  for (size_t v = 0; v < s.nt.tree.num_nodes(); ++v) {
    f += s.a[v] * s.nt.delay[v];
    f += s.b[v] * s.nt.imp2[v];
  }
  return f;
}

Scenario make_scenario(uint64_t seed, int n_pins) {
  Rng rng(seed);
  Scenario s;
  std::vector<Vec2> pins(static_cast<size_t>(n_pins));
  for (auto& p : pins) p = {rng.uniform(0, 200), rng.uniform(0, 200)};
  const int driver = static_cast<int>(rng.uniform_int(0, n_pins - 1));
  s.nt.tree = rsmt::build_rsmt(pins, driver);
  s.caps.resize(static_cast<size_t>(n_pins));
  for (auto& cp : s.caps) cp = rng.uniform(0.001, 0.01);
  s.caps[static_cast<size_t>(driver)] = 0.0;
  s.r_unit = 4e-4;
  s.c_unit = 2e-4;
  const size_t m = s.nt.tree.num_nodes();
  s.a.assign(m, 0.0);
  s.b.assign(m, 0.0);
  // Seeds only on sink pin nodes, as in the real pipeline.
  for (int k = 0; k < n_pins; ++k) {
    if (k == driver) continue;
    s.a[static_cast<size_t>(k)] = rng.uniform(-1.0, 1.0);
    s.b[static_cast<size_t>(k)] = rng.uniform(-1.0, 1.0);
  }
  s.c = rng.uniform(-1.0, 1.0);
  return s;
}

class ElmoreGradCheck : public ::testing::TestWithParam<int> {};

TEST_P(ElmoreGradCheck, MatchesFiniteDifference) {
  Scenario s = make_scenario(static_cast<uint64_t>(GetParam() * 977 + 13),
                             3 + GetParam() % 8);
  objective(s);  // populate forward state for the backward pass

  const size_t m = s.nt.tree.num_nodes();
  std::vector<double> gx(m, 0.0), gy(m, 0.0);
  elmore_backward(s.nt, s.a, s.b, s.c, s.r_unit, s.c_unit, gx, gy);

  const double eps = 1e-5;
  for (size_t v = 0; v < m; ++v) {
    for (int axis = 0; axis < 2; ++axis) {
      double& coord = axis == 0 ? s.nt.tree.nodes[v].pos.x
                                : s.nt.tree.nodes[v].pos.y;
      const double saved = coord;
      coord = saved + eps;
      const double fp = objective(s);
      coord = saved - eps;
      const double fm = objective(s);
      coord = saved;
      objective(s);  // restore forward state
      const double fd = (fp - fm) / (2 * eps);
      const double an = axis == 0 ? gx[v] : gy[v];
      EXPECT_NEAR(an, fd, 1e-6 + 1e-4 * std::abs(fd))
          << "node " << v << " axis " << axis;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, ElmoreGradCheck, ::testing::Range(0, 25));

TEST(ElmoreGrad, ZeroSeedsGiveZeroGradient) {
  Scenario s = make_scenario(99, 6);
  std::fill(s.a.begin(), s.a.end(), 0.0);
  std::fill(s.b.begin(), s.b.end(), 0.0);
  s.c = 0.0;
  objective(s);
  const size_t m = s.nt.tree.num_nodes();
  std::vector<double> gx(m, 0.0), gy(m, 0.0);
  elmore_backward(s.nt, s.a, s.b, s.c, s.r_unit, s.c_unit, gx, gy);
  for (size_t v = 0; v < m; ++v) {
    EXPECT_EQ(gx[v], 0.0);
    EXPECT_EQ(gy[v], 0.0);
  }
}

TEST(ElmoreGrad, LoadSeedPushesPinsTogether) {
  // With only a positive root-load seed, the gradient must point toward
  // lengthening being penalized: moving the sink away from the driver
  // increases load, so d f / d (sink x) > 0 for a sink to the right.
  Scenario s = make_scenario(7, 2);
  s.nt.tree = rsmt::build_rsmt(std::vector<Vec2>{{0, 0}, {10, 0}}, 0);
  s.caps = {0.0, 0.005};
  s.a.assign(2, 0.0);
  s.b.assign(2, 0.0);
  s.c = 1.0;
  objective(s);
  std::vector<double> gx(2, 0.0), gy(2, 0.0);
  elmore_backward(s.nt, s.a, s.b, s.c, s.r_unit, s.c_unit, gx, gy);
  EXPECT_GT(gx[1], 0.0);
  EXPECT_LT(gx[0], 0.0);
  EXPECT_NEAR(gx[0] + gx[1], 0.0, 1e-15);  // translation invariance
}

}  // namespace
}  // namespace dtp::dtimer
