// Timing-graph construction: arcs, levelization, clock-net exclusion,
// endpoints, cycle detection (paper §3.3 step 1).
#include <gtest/gtest.h>

#include "liberty/synth_library.h"
#include "sta/timing_graph.h"
#include "workload/circuit_gen.h"

namespace dtp::sta {
namespace {

using netlist::CellId;
using netlist::Design;
using netlist::NetId;

// pi -> INV u1 -> NAND u2 (other input from pi2) -> DFF.D ; DFF.Q -> po
// plus a clock pad driving DFF.CK.
struct SmallDesign {
  liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design design{&lib, "small"};
  CellId pi1, pi2, clk, u1, u2, ff, po;

  SmallDesign() {
    auto& nl = design.netlist;
    const int pin_id = lib.find_cell(liberty::CellLibrary::kPortInName);
    const int pout_id = lib.find_cell(liberty::CellLibrary::kPortOutName);
    pi1 = nl.add_cell("pi1", pin_id);
    pi2 = nl.add_cell("pi2", pin_id);
    clk = nl.add_cell("clk", pin_id);
    u1 = nl.add_cell("u1", lib.find_cell("INV_X1"));
    u2 = nl.add_cell("u2", lib.find_cell("NAND2_X1"));
    ff = nl.add_cell("ff", lib.find_cell("DFF_X1"));
    po = nl.add_cell("po", pout_id);

    const NetId n1 = nl.add_net("n1");
    nl.connect(n1, pi1, "PAD");
    nl.connect(n1, u1, "A");
    const NetId n2 = nl.add_net("n2");
    nl.connect(n2, u1, "Z");
    nl.connect(n2, u2, "A");
    const NetId n3 = nl.add_net("n3");
    nl.connect(n3, pi2, "PAD");
    nl.connect(n3, u2, "B");
    const NetId n4 = nl.add_net("n4");
    nl.connect(n4, u2, "Z");
    nl.connect(n4, ff, "D");
    const NetId n5 = nl.add_net("n5");
    nl.connect(n5, ff, "Q");
    nl.connect(n5, po, "PAD");
    const NetId cn = nl.add_net("clknet");
    nl.connect(cn, clk, "PAD");
    nl.connect(cn, ff, "CK");
    nl.validate();
    design.init_positions();
  }
};

TEST(TimingGraph, ClockNetExcluded) {
  SmallDesign s;
  const TimingGraph g(s.design.netlist);
  const NetId cn = s.design.netlist.find_net("clknet");
  EXPECT_TRUE(g.is_clock_net(cn));
  for (NetId n : g.timing_nets()) EXPECT_NE(n, cn);
  EXPECT_EQ(g.timing_nets().size(), 5u);
}

TEST(TimingGraph, LevelsFollowTopology) {
  SmallDesign s;
  auto& nl = s.design.netlist;
  const TimingGraph g(nl);
  const auto lvl = [&](CellId c, const char* pin) {
    return g.level_of(nl.pin_of_cell(c, pin));
  };
  EXPECT_EQ(lvl(s.pi1, "PAD"), 0);
  EXPECT_EQ(lvl(s.u1, "A"), 1);
  EXPECT_EQ(lvl(s.u1, "Z"), 2);
  EXPECT_EQ(lvl(s.u2, "A"), 3);
  EXPECT_EQ(lvl(s.u2, "Z"), 4);  // longest path through u1 dominates pi2 path
  EXPECT_EQ(lvl(s.ff, "D"), 5);
  EXPECT_EQ(lvl(s.ff, "CK"), 0);  // clock source
  EXPECT_EQ(lvl(s.ff, "Q"), 1);
  EXPECT_EQ(lvl(s.po, "PAD"), 2);
}

TEST(TimingGraph, EndpointsAreFlopDataAndPrimaryOutputs) {
  SmallDesign s;
  auto& nl = s.design.netlist;
  const TimingGraph g(nl);
  ASSERT_EQ(g.endpoints().size(), 2u);
  bool saw_ff = false, saw_po = false;
  for (const Endpoint& ep : g.endpoints()) {
    if (ep.kind == EndpointKind::FlopData) {
      saw_ff = true;
      EXPECT_EQ(ep.pin, nl.pin_of_cell(s.ff, "D"));
      EXPECT_GT(ep.setup, 0.0);
    } else {
      saw_po = true;
      EXPECT_EQ(ep.pin, nl.pin_of_cell(s.po, "PAD"));
    }
  }
  EXPECT_TRUE(saw_ff && saw_po);
}

TEST(TimingGraph, FaninCsrIsConsistent) {
  SmallDesign s;
  auto& nl = s.design.netlist;
  const TimingGraph g(nl);
  // NAND output has 2 fan-in cell arcs; its input A has 1 fan-in net arc.
  EXPECT_EQ(g.fanin(nl.pin_of_cell(s.u2, "Z")).size(), 2u);
  EXPECT_EQ(g.fanin(nl.pin_of_cell(s.u2, "A")).size(), 1u);
  EXPECT_EQ(g.fanin(nl.pin_of_cell(s.pi1, "PAD")).size(), 0u);
  for (int ai : g.fanin(nl.pin_of_cell(s.u2, "Z"))) {
    const Arc& arc = g.arcs()[static_cast<size_t>(ai)];
    EXPECT_EQ(arc.kind, ArcKind::CellArc);
    EXPECT_GE(arc.lib_arc, 0);
    EXPECT_LT(static_cast<size_t>(arc.lib_arc), g.num_lib_arcs());
  }
}

TEST(TimingGraph, RebindLibraryReattachesLutTables) {
  SmallDesign s;
  auto& nl = s.design.netlist;
  const TimingGraph g(nl);
  // Simulate a library reload: a deep copy at a different address.  After
  // rebind_library the indexed arc table must resolve into the copy, and the
  // resolved tables must match the originals value-for-value.
  const liberty::CellLibrary copy = nl.library();
  TimingGraph g2(nl);
  g2.rebind_library(copy);
  ASSERT_EQ(g.num_lib_arcs(), g2.num_lib_arcs());
  for (size_t i = 0; i < g.num_lib_arcs(); ++i) {
    const liberty::TimingArc& a = g.lib_arc(static_cast<int>(i));
    const liberty::TimingArc& b = g2.lib_arc(static_cast<int>(i));
    EXPECT_NE(&a, &b);  // resolved into distinct library objects
    EXPECT_EQ(a.from_pin, b.from_pin);
    EXPECT_EQ(a.to_pin, b.to_pin);
    EXPECT_EQ(a.unate, b.unate);
    EXPECT_EQ(a.cell_rise.lookup(0.05, 0.01), b.cell_rise.lookup(0.05, 0.01));
  }
}

TEST(TimingGraph, ClockToQIsASourceArc) {
  SmallDesign s;
  auto& nl = s.design.netlist;
  const TimingGraph g(nl);
  const auto fanin = g.fanin(nl.pin_of_cell(s.ff, "Q"));
  ASSERT_EQ(fanin.size(), 1u);
  const Arc& arc = g.arcs()[static_cast<size_t>(fanin[0])];
  EXPECT_EQ(arc.from, nl.pin_of_cell(s.ff, "CK"));
  EXPECT_TRUE(g.pin_is_clock_source(arc.from));
}

TEST(TimingGraph, DetectsCombinationalCycle) {
  liberty::CellLibrary lib = liberty::make_synthetic_library();
  netlist::Netlist nl(&lib);
  const CellId a = nl.add_cell("a", lib.find_cell("INV_X1"));
  const CellId b = nl.add_cell("b", lib.find_cell("INV_X1"));
  const NetId n1 = nl.add_net("n1");
  nl.connect(n1, a, "Z");
  nl.connect(n1, b, "A");
  const NetId n2 = nl.add_net("n2");
  nl.connect(n2, b, "Z");
  nl.connect(n2, a, "A");
  EXPECT_THROW(TimingGraph g(nl), std::runtime_error);
}

TEST(TimingGraph, GeneratedDesignLevelDepthMatchesSpec) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  workload::WorkloadOptions opts;
  opts.num_cells = 600;
  opts.levels = 12;
  opts.seed = 3;
  const Design d = workload::generate_design(lib, opts);
  const TimingGraph g(d.netlist);
  // Each logic level contributes 2 pin levels (input, output); plus sources.
  EXPECT_GE(g.num_levels(), opts.levels);
  EXPECT_FALSE(g.endpoints().empty());
  EXPECT_FALSE(g.timing_nets().empty());
}

}  // namespace
}  // namespace dtp::sta
