// End-to-end finite-difference validation of the differentiable timer:
// d(loss)/d(cell x, y) through RSMT + Elmore + LUT + LSE propagation + slack
// aggregation — the strongest correctness statement for the paper's core
// contribution.  Tree topology is frozen (steiner_rebuild_period = 0, drag
// only), matching the regime in which the analytic gradient is defined.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "dtimer/diff_timer.h"
#include "liberty/synth_library.h"
#include "workload/circuit_gen.h"

namespace dtp::dtimer {
namespace {

using netlist::Design;

double loss_of(const sta::TimingMetrics& m, double t1, double t2) {
  return t1 * (-m.tns_smooth) + t2 * (-m.wns_smooth);
}

struct GradCheckCase {
  uint64_t seed;
  int num_cells;
  double gamma;
  double t1, t2;
};

class DiffTimerGradCheck : public ::testing::TestWithParam<GradCheckCase> {};

TEST_P(DiffTimerGradCheck, MatchesFiniteDifference) {
  const GradCheckCase& tc = GetParam();
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  workload::WorkloadOptions opts;
  opts.num_cells = tc.num_cells;
  opts.seed = tc.seed;
  opts.levels = 8;
  opts.clock_scale = 0.55;  // ensure some endpoints violate (TNS term active)
  Design d = workload::generate_design(lib, opts);
  const sta::TimingGraph graph(d.netlist);

  DiffTimerOptions dopts;
  dopts.gamma = tc.gamma;
  dopts.steiner_rebuild_period = 0;  // freeze topology after first build
  DiffTimer dt(d, graph, dopts);

  auto x = d.cell_x;
  auto y = d.cell_y;
  const auto m0 = dt.forward(x, y, /*force_rebuild=*/true);
  ASSERT_LT(m0.wns, 0.0) << "test design must violate timing";

  std::vector<double> gx(x.size(), 0.0), gy(y.size(), 0.0);
  dt.backward(tc.t1, tc.t2, gx, gy);

  // Check a sample of movable cells with non-negligible gradients plus a few
  // random ones.
  Rng rng(tc.seed * 31 + 5);
  std::vector<size_t> sample;
  for (size_t c = 0; c < x.size() && sample.size() < 10; ++c)
    if (!d.netlist.cell(static_cast<int>(c)).fixed &&
        (std::abs(gx[c]) > 1e-7 || std::abs(gy[c]) > 1e-7))
      sample.push_back(c);
  for (int k = 0; k < 5; ++k)
    sample.push_back(static_cast<size_t>(
        rng.uniform_int(0, static_cast<int64_t>(x.size()) - 1)));

  const double eps = 2e-4;  // microns
  size_t checked = 0;
  for (size_t c : sample) {
    for (int axis = 0; axis < 2; ++axis) {
      auto& coords = axis == 0 ? x : y;
      const double saved = coords[c];
      coords[c] = saved + eps;
      const double fp = loss_of(dt.forward(x, y), tc.t1, tc.t2);
      coords[c] = saved - eps;
      const double fm = loss_of(dt.forward(x, y), tc.t1, tc.t2);
      coords[c] = saved;
      dt.forward(x, y);
      const double fd = (fp - fm) / (2 * eps);
      const double an = axis == 0 ? gx[c] : gy[c];
      // Rectilinear kinks: if the two one-sided losses disagree strongly the
      // cell sits on a |dx| kink; skip those measure-zero samples.
      const double f0 = loss_of(dt.forward(x, y), tc.t1, tc.t2);
      const double second = std::abs(fp + fm - 2 * f0) / (eps);
      if (second > 1e-3 * (std::abs(fd) + 1e-6)) continue;
      EXPECT_NEAR(an, fd, 2e-4 * std::max(1.0, std::abs(fd)) + 1e-7)
          << "cell " << c << " axis " << axis;
      ++checked;
    }
  }
  EXPECT_GE(checked, 6u) << "too few kink-free samples";
}

INSTANTIATE_TEST_SUITE_P(
    Random, DiffTimerGradCheck,
    ::testing::Values(GradCheckCase{1, 80, 0.05, 0.01, 0.0},   // TNS only
                      GradCheckCase{2, 80, 0.05, 0.0, 0.01},   // WNS only
                      GradCheckCase{3, 80, 0.05, 0.01, 0.001}, // mixed
                      GradCheckCase{4, 140, 0.02, 0.01, 0.001},
                      GradCheckCase{5, 60, 0.10, 0.02, 0.002},
                      GradCheckCase{6, 100, 0.05, 0.0, 1.0}));

TEST(DiffTimer, GradientDescentImprovesSmoothedTns) {
  // A crude sanity check of usefulness: plain gradient steps on the timing
  // loss alone must improve the smoothed objective.
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  workload::WorkloadOptions opts;
  opts.num_cells = 150;
  opts.seed = 77;
  opts.clock_scale = 0.5;
  Design d = workload::generate_design(lib, opts);
  const sta::TimingGraph graph(d.netlist);
  DiffTimerOptions dopts;
  dopts.steiner_rebuild_period = 5;
  DiffTimer dt(d, graph, dopts);

  auto x = d.cell_x;
  auto y = d.cell_y;
  const auto m0 = dt.forward(x, y, true);
  const double loss0 = loss_of(m0, 1.0, 0.1);
  std::vector<double> gx(x.size()), gy(y.size());
  double loss = loss0;
  for (int iter = 0; iter < 30; ++iter) {
    std::fill(gx.begin(), gx.end(), 0.0);
    std::fill(gy.begin(), gy.end(), 0.0);
    dt.backward(1.0, 0.1, gx, gy);
    double gmax = 1e-12;
    for (size_t c = 0; c < x.size(); ++c)
      gmax = std::max({gmax, std::abs(gx[c]), std::abs(gy[c])});
    const double step = 1.0 / gmax;  // ~1 micron worst-case move
    for (size_t c = 0; c < x.size(); ++c) {
      if (d.netlist.cell(static_cast<int>(c)).fixed) continue;
      x[c] -= step * gx[c];
      y[c] -= step * gy[c];
    }
    loss = loss_of(dt.forward(x, y), 1.0, 0.1);
  }
  EXPECT_LT(loss, loss0 * 0.98);
}

TEST(DiffTimer, FixedCellsReceiveGradientButPadsDoNotMove) {
  // The backward pass reports gradients for pads too (they are just cells);
  // the placer is responsible for masking them. Verify they are finite.
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  workload::WorkloadOptions opts;
  opts.num_cells = 60;
  opts.seed = 123;
  opts.clock_scale = 0.5;
  Design d = workload::generate_design(lib, opts);
  const sta::TimingGraph graph(d.netlist);
  DiffTimer dt(d, graph);
  dt.forward(d.cell_x, d.cell_y, true);
  std::vector<double> gx(d.cell_x.size(), 0.0), gy(d.cell_y.size(), 0.0);
  dt.backward(0.01, 0.001, gx, gy);
  for (size_t c = 0; c < gx.size(); ++c) {
    EXPECT_TRUE(std::isfinite(gx[c]));
    EXPECT_TRUE(std::isfinite(gy[c]));
  }
}

}  // namespace
}  // namespace dtp::dtimer
