// NLDM LUT interpolation and gradient tests (paper Fig. 6, Eq. 12 inputs).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "liberty/lut.h"

namespace dtp::liberty {
namespace {

Lut make_bilinear_lut() {
  // v(x, y) = 2 + 3x + 5y + 7xy sampled on a 3x4 grid: bilinear interpolation
  // must reproduce it exactly everywhere (including extrapolation).
  std::vector<double> xs{0.1, 0.5, 2.0};
  std::vector<double> ys{0.0, 1.0, 2.5, 4.0};
  std::vector<double> vals;
  for (double x : xs)
    for (double y : ys) vals.push_back(2.0 + 3.0 * x + 5.0 * y + 7.0 * x * y);
  return Lut(xs, ys, vals);
}

TEST(Lut, ExactAtBreakpoints) {
  const Lut lut = make_bilinear_lut();
  for (size_t i = 0; i < lut.nx(); ++i)
    for (size_t j = 0; j < lut.ny(); ++j) {
      const double x = lut.x_axis()[i], y = lut.y_axis()[j];
      EXPECT_NEAR(lut.lookup(x, y), 2.0 + 3.0 * x + 5.0 * y + 7.0 * x * y, 1e-12);
    }
}

TEST(Lut, ReproducesBilinearFunctionInside) {
  const Lut lut = make_bilinear_lut();
  Rng rng(3);
  for (int k = 0; k < 200; ++k) {
    const double x = rng.uniform(0.1, 2.0);
    const double y = rng.uniform(0.0, 4.0);
    EXPECT_NEAR(lut.lookup(x, y), 2.0 + 3.0 * x + 5.0 * y + 7.0 * x * y, 1e-9);
  }
}

TEST(Lut, ExtrapolatesLinearlyOutside) {
  const Lut lut = make_bilinear_lut();
  // Within the bilinear model, edge-cell extrapolation is exact too.
  for (auto [x, y] : {std::pair{3.5, 5.0}, {0.01, -0.5}, {2.5, 0.5}, {1.0, 6.0}}) {
    EXPECT_NEAR(lut.lookup(x, y), 2.0 + 3.0 * x + 5.0 * y + 7.0 * x * y, 1e-9);
  }
}

TEST(Lut, ConstantLutHasZeroGradient) {
  const Lut lut = Lut::constant(0.42);
  const auto q = lut.lookup_grad(123.0, -7.0);
  EXPECT_EQ(q.value, 0.42);
  EXPECT_EQ(q.d_dx, 0.0);
  EXPECT_EQ(q.d_dy, 0.0);
}

TEST(Lut, OneDimensionalTables) {
  const Lut row(std::vector<double>{0.0}, {1.0, 2.0, 4.0}, {10.0, 20.0, 30.0});
  EXPECT_NEAR(row.lookup(0.0, 1.5), 15.0, 1e-12);
  EXPECT_NEAR(row.lookup(0.0, 3.0), 25.0, 1e-12);
  const auto q = row.lookup_grad(0.0, 3.0);
  EXPECT_NEAR(q.d_dy, 5.0, 1e-12);
  EXPECT_EQ(q.d_dx, 0.0);

  const Lut col(std::vector<double>{1.0, 2.0, 4.0}, {0.0}, {10.0, 20.0, 30.0});
  EXPECT_NEAR(col.lookup(1.5, 0.0), 15.0, 1e-12);
  EXPECT_NEAR(col.lookup_grad(3.0, 0.0).d_dx, 5.0, 1e-12);
}

// Property sweep: analytic LUT gradient vs central finite differences, on a
// non-separable random monotone table, inside and outside the axes.
class LutGradient : public ::testing::TestWithParam<int> {};

TEST_P(LutGradient, MatchesFiniteDifference) {
  Rng rng(static_cast<uint64_t>(GetParam() + 1000));
  std::vector<double> xs(5), ys(6);
  double acc = 0.01;
  for (double& x : xs) x = (acc += rng.uniform(0.05, 0.5));
  acc = 0.001;
  for (double& y : ys) y = (acc += rng.uniform(0.01, 0.2));
  std::vector<double> vals;
  for (size_t i = 0; i < xs.size(); ++i)
    for (size_t j = 0; j < ys.size(); ++j)
      vals.push_back(0.01 + 0.1 * xs[i] + 2.0 * ys[j] + 0.9 * xs[i] * ys[j] +
                     0.02 * rng.uniform());
  const Lut lut(xs, ys, vals);

  for (int k = 0; k < 50; ++k) {
    const double x = rng.uniform(-0.2, xs.back() + 0.5);
    const double y = rng.uniform(-0.05, ys.back() + 0.2);
    const auto q = lut.lookup_grad(x, y);
    const double eps = 1e-7;
    // Stay inside one interpolation cell: skip queries near breakpoints where
    // the surface is only piecewise differentiable.
    bool near_break = false;
    for (double bx : xs) near_break |= std::abs(x - bx) < 10 * eps;
    for (double by : ys) near_break |= std::abs(y - by) < 10 * eps;
    if (near_break) continue;
    const double fdx = (lut.lookup(x + eps, y) - lut.lookup(x - eps, y)) / (2 * eps);
    const double fdy = (lut.lookup(x, y + eps) - lut.lookup(x, y - eps)) / (2 * eps);
    EXPECT_NEAR(q.d_dx, fdx, 1e-5);
    EXPECT_NEAR(q.d_dy, fdy, 1e-5);
    EXPECT_NEAR(q.value, lut.lookup(x, y), 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Random, LutGradient, ::testing::Range(0, 10));

}  // namespace
}  // namespace dtp::liberty
