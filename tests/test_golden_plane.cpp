// Golden bitwise-identity regression for the unified timing data plane
// (DESIGN.md §10).  The refactor to a flat CSR level schedule, shared
// fwd/bwd workspace, arena Steiner forest and candidate cache is required to
// preserve placement results *bit for bit*: per-pin iteration order, LUT
// query order and aggregation order are all unchanged, so every metric and
// gradient must equal the values captured from the pre-refactor
// implementation below.  EXPECT_EQ on doubles is deliberate — the constants
// were printed with %.17g, which round-trips exactly.
//
// If a future change intentionally alters numerics, re-capture: run this
// exact flow on the trusted implementation and paste the new constants.
//
// The placement-run constants are pinned to the `scalar` kernel backend
// (kernels::set_backend below): scalar is the bitwise-golden contract, while
// the simd backend is only tolerance-equivalent (test_kernel_backend).  The
// placer-run constants were re-captured when the Poisson transforms moved to
// the real-to-complex DctPlan fast path — same placement, last-ulp shifts.
#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <vector>

#include "dtimer/diff_timer.h"
#include "kernels/kernel_backend.h"
#include "liberty/synth_library.h"
#include "obs/introspect/introspect.h"
#include "placer/global_placer.h"
#include "sta/timing_graph.h"
#include "workload/circuit_gen.h"

namespace dtp {
namespace {

// Position-sensitive weighted checksum: reordering, dropping or perturbing
// any single gradient entry changes the sum.
double checksum(std::span<const double> v) {
  double acc = 0.0;
  for (size_t i = 0; i < v.size(); ++i) {
    const double w =
        0.5 + 0.5 * static_cast<double>((i * 2654435761u) & 0xffff) / 65536.0;
    acc += v[i] * w;
  }
  return acc;
}

TEST(GoldenPlane, SeedMetricsAndGradientsBitwiseIdentical) {
  liberty::CellLibrary lib = liberty::make_synthetic_library();
  workload::WorkloadOptions wopts;
  wopts.seed = 7;
  wopts.num_cells = 300;
  netlist::Design design = workload::generate_design(lib, wopts, "golden300");
  sta::TimingGraph graph(design.netlist);

  const size_t nc = design.netlist.num_cells();
  std::vector<double> x(design.cell_x.begin(), design.cell_x.end());
  std::vector<double> y(design.cell_y.begin(), design.cell_y.end());

  dtimer::DiffTimerOptions dopts;
  dtimer::DiffTimer dt(design, graph, dopts);

  // Rebuild-path forward + backward.
  const sta::TimingMetrics m1 = dt.forward(x, y, /*force_rebuild=*/true);
  std::vector<double> gx(nc, 0.0), gy(nc, 0.0);
  dt.backward(1.0, 1.0, gx, gy);
  EXPECT_EQ(m1.wns, -0.74986826892143932);
  EXPECT_EQ(m1.tns, -11.378369784987203);
  EXPECT_EQ(m1.wns_smooth, -0.83926677457790899);
  EXPECT_EQ(m1.tns_smooth, -12.017766147407405);
  EXPECT_EQ(checksum(gx), 0.012974609892058876);
  EXPECT_EQ(checksum(gy), 0.02115459460732641);

  // Deterministic small move, then the drag path (no rebuild).
  for (size_t c = 0; c < nc; ++c) {
    if (design.netlist.cell(static_cast<netlist::CellId>(c)).fixed) continue;
    x[c] += 0.25 * (static_cast<double>(c % 7) - 3.0);
    y[c] += 0.25 * (static_cast<double>(c % 5) - 2.0);
  }
  const sta::TimingMetrics m2 = dt.forward(x, y, /*force_rebuild=*/false);
  std::fill(gx.begin(), gx.end(), 0.0);
  std::fill(gy.begin(), gy.end(), 0.0);
  dt.backward(0.7, 0.3, gx, gy);
  EXPECT_EQ(m2.wns, -0.76359765854015138);
  EXPECT_EQ(m2.tns, -11.717789358414393);
  EXPECT_EQ(m2.wns_smooth, -0.85488112119236803);
  EXPECT_EQ(m2.tns_smooth, -12.356487677699596);
  EXPECT_EQ(checksum(gx), 0.030585776608661446);
  EXPECT_EQ(checksum(gy), 0.016683825392980283);

  // Hard-mode reference Timer on the moved placement, with the RAT sweep
  // (exercises the candidate cache in update_required).
  sta::Timer timer(design, graph, {});
  const sta::TimingMetrics hm = timer.evaluate(x, y);
  timer.update_required();
  double slack_sum = 0.0;
  for (size_t p = 0; p < design.netlist.num_pins(); ++p) {
    const double s = timer.pin_slack(static_cast<netlist::PinId>(p));
    if (std::isfinite(s)) slack_sum += s;
  }
  EXPECT_EQ(hm.wns, -0.64811900417573076);
  EXPECT_EQ(hm.tns, -8.4301295724872016);
  EXPECT_EQ(hm.num_violations, 24u);
  EXPECT_EQ(slack_sum, 178.25600419785292);
}

TEST(GoldenPlane, PlacerRunBitwiseIdentical) {
  // End-to-end: a short timing-driven placement run must land on the exact
  // same placement (HPWL and post-place timing) as the captured run.
  ASSERT_TRUE(kernels::set_backend("scalar"));
  liberty::CellLibrary lib = liberty::make_synthetic_library();
  workload::WorkloadOptions wopts;
  wopts.seed = 7;
  wopts.num_cells = 300;
  netlist::Design design = workload::generate_design(lib, wopts, "golden300");
  sta::TimingGraph graph(design.netlist);

  placer::GlobalPlacerOptions popts;
  popts.mode = placer::PlacerMode::DiffTiming;
  popts.max_iters = 60;
  popts.timing_start_iter = 15;
  popts.timing_start_overflow = 1.0;
  placer::GlobalPlacer gp(design, graph, popts);
  const placer::PlaceResult r = gp.run();

  sta::Timer timer(design, graph, {});
  const sta::TimingMetrics fm = timer.evaluate(design.cell_x, design.cell_y);
  EXPECT_EQ(r.iterations, 60);
  EXPECT_EQ(r.hpwl, 2840.6107604040417);
  EXPECT_EQ(fm.wns, -0.49260237254506456);
  EXPECT_EQ(fm.tns, -5.6065482582984449);
}

TEST(GoldenPlane, PlacerRunBitwiseIdenticalWithActivityTracking) {
  // The activity layer is a pure observer: the exact same run with the
  // tracker attached and activity records streaming must land on the
  // identical placement and timing, bit for bit (same constants as above).
  ASSERT_TRUE(kernels::set_backend("scalar"));
  liberty::CellLibrary lib = liberty::make_synthetic_library();
  workload::WorkloadOptions wopts;
  wopts.seed = 7;
  wopts.num_cells = 300;
  netlist::Design design = workload::generate_design(lib, wopts, "golden300");
  sta::TimingGraph graph(design.netlist);

  obs::IntrospectionSink sink;
  ASSERT_TRUE(
      sink.open(std::string(::testing::TempDir()) + "golden_activity.jsonl"));
  placer::GlobalPlacerOptions popts;
  popts.mode = placer::PlacerMode::DiffTiming;
  popts.max_iters = 60;
  popts.timing_start_iter = 15;
  popts.timing_start_overflow = 1.0;
  popts.activity_sink = &sink;
  popts.activity.sample_period = 10;
  placer::GlobalPlacer gp(design, graph, popts);
  const placer::PlaceResult r = gp.run();
  EXPECT_GT(sink.records_written(), 0u);

  sta::Timer timer(design, graph, {});
  const sta::TimingMetrics fm = timer.evaluate(design.cell_x, design.cell_y);
  EXPECT_EQ(r.iterations, 60);
  EXPECT_EQ(r.hpwl, 2840.6107604040417);
  EXPECT_EQ(fm.wns, -0.49260237254506456);
  EXPECT_EQ(fm.tns, -5.6065482582984449);
}

}  // namespace
}  // namespace dtp
