// Unit and property tests for the LSE smoothing utilities (paper Eq. 5).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/smooth_math.h"

namespace dtp {
namespace {

TEST(SmoothMath, LogSumExpUpperBoundsMax) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  for (double gamma : {0.001, 0.01, 0.1, 1.0}) {
    const double v = log_sum_exp(xs, gamma);
    EXPECT_GE(v, 3.0);
    EXPECT_LE(v, 3.0 + gamma * std::log(3.0) + 1e-12);
  }
}

TEST(SmoothMath, LogSumExpConvergesToMax) {
  const std::vector<double> xs{-4.0, 7.5, 2.0, 7.4};
  EXPECT_NEAR(log_sum_exp(xs, 1e-3), 7.5, 1e-6);
}

TEST(SmoothMath, LogSumExpStableForLargeValues) {
  const std::vector<double> xs{1e8, 1e8 + 1.0};
  const double v = log_sum_exp(xs, 1.0);
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_GE(v, 1e8 + 1.0);
}

TEST(SmoothMath, SmoothMaxWeightsAreSoftmax) {
  const std::vector<double> xs{0.0, 1.0, 2.0};
  std::vector<double> w;
  const double v = smooth_max(xs, 0.5, w);
  EXPECT_EQ(w.size(), 3u);
  double sum = 0.0;
  for (double wi : w) {
    EXPECT_GT(wi, 0.0);
    sum += wi;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // Largest input gets the largest weight.
  EXPECT_GT(w[2], w[1]);
  EXPECT_GT(w[1], w[0]);
  EXPECT_GE(v, 2.0);
}

TEST(SmoothMath, SmoothMaxHandlesAllNegInf) {
  const std::vector<double> xs{-INFINITY, -INFINITY};
  std::vector<double> w;
  const double v = smooth_max(xs, 0.1, w);
  EXPECT_TRUE(std::isinf(v));
  EXPECT_LT(v, 0.0);
}

TEST(SmoothMath, SmoothMaxIgnoresNegInfOperand) {
  const std::vector<double> xs{-INFINITY, 2.0};
  std::vector<double> w;
  const double v = smooth_max(xs, 0.1, w);
  EXPECT_NEAR(v, 2.0, 1e-12);
  EXPECT_NEAR(w[0], 0.0, 1e-12);
  EXPECT_NEAR(w[1], 1.0, 1e-12);
}

TEST(SmoothMath, SmoothMinIsNegatedSmoothMaxOfNegation) {
  const std::vector<double> xs{3.0, -1.0, 0.5};
  std::vector<double> w;
  const double v = smooth_min(xs, 0.2, w);
  EXPECT_LE(v, -1.0);
  EXPECT_GT(w[1], w[0]);
  EXPECT_GT(w[1], w[2]);
}

TEST(SmoothMath, HardMaxOneHot) {
  const std::vector<double> xs{1.0, 5.0, 2.0};
  std::vector<double> w;
  EXPECT_EQ(hard_max(xs, w), 5.0);
  EXPECT_EQ(w[0], 0.0);
  EXPECT_EQ(w[1], 1.0);
  EXPECT_EQ(w[2], 0.0);
  EXPECT_EQ(hard_min(xs, w), 1.0);
  EXPECT_EQ(w[0], 1.0);
}

// Property: the smooth_max weights are the analytic gradient of LSE.
class SmoothMaxGradient : public ::testing::TestWithParam<int> {};

TEST_P(SmoothMaxGradient, MatchesFiniteDifference) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const size_t n = static_cast<size_t>(rng.uniform_int(2, 8));
  std::vector<double> xs(n);
  for (double& x : xs) x = rng.uniform(-2.0, 2.0);
  const double gamma = rng.uniform(0.05, 1.0);

  std::vector<double> w;
  smooth_max(xs, gamma, w);
  const double eps = 1e-6;
  for (size_t i = 0; i < n; ++i) {
    auto xp = xs, xm = xs;
    xp[i] += eps;
    xm[i] -= eps;
    const double fd =
        (log_sum_exp(xp, gamma) - log_sum_exp(xm, gamma)) / (2.0 * eps);
    EXPECT_NEAR(w[i], fd, 1e-6) << "operand " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Random, SmoothMaxGradient, ::testing::Range(0, 20));

TEST(SmoothMath, SmoothAbsGradient) {
  const double eps = 1e-4;
  for (double x : {-3.0, -0.1, 0.0, 0.2, 5.0}) {
    const double fd =
        (smooth_abs(x + 1e-7, eps) - smooth_abs(x - 1e-7, eps)) / 2e-7;
    EXPECT_NEAR(smooth_abs_grad(x, eps), fd, 1e-5);
  }
}

TEST(SmoothMath, SignConvention) {
  EXPECT_EQ(sign(2.5), 1.0);
  EXPECT_EQ(sign(-0.1), -1.0);
  EXPECT_EQ(sign(0.0), 0.0);
}

}  // namespace
}  // namespace dtp
