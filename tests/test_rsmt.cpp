// RSMT builder invariants and quality properties.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "rsmt/rsmt_builder.h"

namespace dtp::rsmt {
namespace {

std::vector<Vec2> random_pins(Rng& rng, int n, double span = 100.0) {
  std::vector<Vec2> pins(static_cast<size_t>(n));
  for (auto& p : pins) p = {rng.uniform(0.0, span), rng.uniform(0.0, span)};
  return pins;
}

TEST(Rsmt, TwoPinNetIsSingleEdge) {
  const std::vector<Vec2> pins{{0.0, 0.0}, {3.0, 4.0}};
  const SteinerTree t = build_rsmt(pins, 0);
  EXPECT_EQ(t.num_nodes(), 2u);
  EXPECT_EQ(t.num_steiner(), 0u);
  EXPECT_EQ(check_tree(t), "");
  EXPECT_NEAR(t.length(), 7.0, 1e-12);
}

TEST(Rsmt, ThreePinMedianSteiner) {
  const std::vector<Vec2> pins{{0.0, 0.0}, {10.0, 2.0}, {4.0, 8.0}};
  const SteinerTree t = build_rsmt(pins, 0);
  EXPECT_EQ(check_tree(t), "");
  ASSERT_EQ(t.num_steiner(), 1u);
  const auto& s = t.nodes[3];
  EXPECT_EQ(s.pos.x, 4.0);  // median x (pin 2)
  EXPECT_EQ(s.pos.y, 2.0);  // median y (pin 1)
  EXPECT_EQ(s.x_src, 2);
  EXPECT_EQ(s.y_src, 1);
  // Exact 3-pin RSMT length: half-perimeter of the bounding box.
  EXPECT_NEAR(t.length(), 10.0 + 8.0, 1e-12);
}

TEST(Rsmt, ThreePinDegenerateMedianOnPin) {
  // Median point coincides with the middle pin: no Steiner node.
  const std::vector<Vec2> pins{{0.0, 0.0}, {5.0, 5.0}, {9.0, 9.0}};
  const SteinerTree t = build_rsmt(pins, 1);
  EXPECT_EQ(check_tree(t), "");
  EXPECT_EQ(t.num_steiner(), 0u);
  EXPECT_NEAR(t.length(), 18.0, 1e-12);
}

TEST(Rsmt, CrossTopologyGainsOverMst) {
  // Four pins at the corners of a plus sign: the RSMT uses a center Steiner
  // point and beats the MST.
  const std::vector<Vec2> pins{{5.0, 0.0}, {5.0, 10.0}, {0.0, 5.0}, {10.0, 5.0}};
  const SteinerTree rsmt = build_rsmt(pins, 0);
  const SteinerTree rmst = build_rmst(pins, 0);
  EXPECT_EQ(check_tree(rsmt), "");
  EXPECT_NEAR(rsmt.length(), 20.0, 1e-9);
  EXPECT_GT(rmst.length(), rsmt.length());
}

TEST(Rsmt, RootIsDriver) {
  Rng rng(5);
  const auto pins = random_pins(rng, 7);
  for (int driver = 0; driver < 7; ++driver) {
    const SteinerTree t = build_rsmt(pins, driver);
    EXPECT_EQ(t.root, driver);
    EXPECT_EQ(t.nodes[static_cast<size_t>(driver)].parent, -1);
    EXPECT_EQ(check_tree(t), "");
  }
}

TEST(Rsmt, UpdatePositionsDragsSteinerPoints) {
  Rng rng(17);
  // Distinct x and y medians so the 3-pin tree is guaranteed a Steiner node.
  std::vector<Vec2> pins{{0.0, 0.0}, {10.0, 3.0}, {4.0, 9.0}};
  SteinerTree t = build_rsmt(pins, 0);
  ASSERT_EQ(t.num_steiner(), 1u);
  // Move every pin and drag.
  for (auto& p : pins) {
    p.x += rng.uniform(-1.0, 1.0);
    p.y += rng.uniform(-1.0, 1.0);
  }
  update_positions(t, pins);
  EXPECT_EQ(check_tree(t), "");
  const auto& s = t.nodes[3];
  EXPECT_EQ(s.pos.x, pins[static_cast<size_t>(s.x_src)].x);
  EXPECT_EQ(s.pos.y, pins[static_cast<size_t>(s.y_src)].y);
}

TEST(Rsmt, CoincidentPinsAreFine) {
  const std::vector<Vec2> pins{{1.0, 1.0}, {1.0, 1.0}, {4.0, 1.0}, {1.0, 1.0}};
  const SteinerTree t = build_rsmt(pins, 0);
  EXPECT_EQ(check_tree(t), "");
  EXPECT_NEAR(t.length(), 3.0, 1e-12);
}

// Property sweep over random nets: structural validity, Steiner never worse
// than MST, MST never better than half the Steiner bound (sanity), and
// length within the Hwang bound factor 1.5 of the MST lower bound 2/3*MST.
class RsmtRandom : public ::testing::TestWithParam<int> {};

TEST_P(RsmtRandom, InvariantsHold) {
  Rng rng(static_cast<uint64_t>(GetParam() * 7919 + 1));
  const int n = static_cast<int>(rng.uniform_int(2, 14));
  const auto pins = random_pins(rng, n);
  const int driver = static_cast<int>(rng.uniform_int(0, n - 1));

  const SteinerTree rsmt = build_rsmt(pins, driver);
  const SteinerTree rmst = build_rmst(pins, driver);
  EXPECT_EQ(check_tree(rsmt), "");
  EXPECT_EQ(check_tree(rmst), "");
  EXPECT_LE(rsmt.length(), rmst.length() + 1e-9);
  // Steiner trees cannot shorten below 2/3 of the MST (Hwang's theorem).
  EXPECT_GE(rsmt.length(), rmst.length() * 2.0 / 3.0 - 1e-9);

  // HPWL is a lower bound on any connecting tree length.
  double xl = pins[0].x, xh = pins[0].x, yl = pins[0].y, yh = pins[0].y;
  for (const auto& p : pins) {
    xl = std::min(xl, p.x);
    xh = std::max(xh, p.x);
    yl = std::min(yl, p.y);
    yh = std::max(yh, p.y);
  }
  EXPECT_GE(rsmt.length(), (xh - xl) + (yh - yl) - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Random, RsmtRandom, ::testing::Range(0, 40));

TEST(Rsmt, DisableRefinementGivesRmst) {
  Rng rng(23);
  const auto pins = random_pins(rng, 9);
  RsmtOptions opts;
  opts.enable_1steiner = false;
  const SteinerTree t = build_rsmt(pins, 0, opts);
  EXPECT_EQ(t.num_steiner(), 0u);
  EXPECT_NEAR(t.length(), build_rmst(pins, 0).length(), 1e-12);
}

TEST(Rsmt, LargeNetFallsBackToRmst) {
  Rng rng(29);
  const auto pins = random_pins(rng, 40);
  RsmtOptions opts;
  opts.kr_max_pins = 16;
  const SteinerTree t = build_rsmt(pins, 0, opts);
  EXPECT_EQ(t.num_steiner(), 0u);
  EXPECT_EQ(check_tree(t), "");
}

}  // namespace
}  // namespace dtp::rsmt
