// WA wirelength model: HPWL convergence, gradient correctness, net weights.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "liberty/synth_library.h"
#include "placer/wirelength.h"
#include "workload/circuit_gen.h"

namespace dtp::placer {
namespace {

using netlist::Design;

Design make_design(int cells, uint64_t seed, const liberty::CellLibrary& lib) {
  workload::WorkloadOptions opts;
  opts.num_cells = cells;
  opts.seed = seed;
  return workload::generate_design(lib, opts);
}

TEST(Wirelength, WaConvergesToHpwl) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = make_design(200, 41, lib);
  WirelengthModel wl(d);
  const double hpwl = wl.hpwl_unweighted(d.cell_x, d.cell_y);
  std::vector<double> gx(d.cell_x.size()), gy(d.cell_y.size());
  double prev_err = 1e300;
  for (double gamma : {8.0, 2.0, 0.5, 0.1}) {
    wl.set_gamma(gamma);
    std::fill(gx.begin(), gx.end(), 0.0);
    std::fill(gy.begin(), gy.end(), 0.0);
    const double wa = wl.value_and_gradient(d.cell_x, d.cell_y, gx, gy);
    const double err = std::abs(wa - hpwl);
    EXPECT_LT(err, prev_err + 1e-9);
    prev_err = err;
  }
  EXPECT_LT(prev_err / hpwl, 0.01);
}

TEST(Wirelength, WaUnderestimatesHpwl) {
  // The WA estimator is a lower bound of HPWL.
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = make_design(150, 43, lib);
  WirelengthModel wl(d);
  wl.set_gamma(1.0);
  std::vector<double> gx(d.cell_x.size(), 0.0), gy(d.cell_y.size(), 0.0);
  const double wa = wl.value_and_gradient(d.cell_x, d.cell_y, gx, gy);
  EXPECT_LE(wa, wl.hpwl_unweighted(d.cell_x, d.cell_y) + 1e-9);
}

class WirelengthGradient : public ::testing::TestWithParam<int> {};

TEST_P(WirelengthGradient, MatchesFiniteDifference) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = make_design(120, static_cast<uint64_t>(GetParam() + 50), lib);
  WirelengthModel wl(d);
  wl.set_gamma(1.5);
  Rng rng(static_cast<uint64_t>(GetParam()));
  // Random weights to exercise the weighted path.
  for (auto& w : wl.net_weights()) w = rng.uniform(0.5, 3.0);

  const size_t n = d.cell_x.size();
  std::vector<double> gx(n, 0.0), gy(n, 0.0);
  wl.value_and_gradient(d.cell_x, d.cell_y, gx, gy);

  auto value = [&]() {
    std::vector<double> tx(n, 0.0), ty(n, 0.0);
    return wl.value_and_gradient(d.cell_x, d.cell_y, tx, ty);
  };
  const double eps = 1e-5;
  for (int k = 0; k < 12; ++k) {
    const size_t c = static_cast<size_t>(rng.uniform_int(0, static_cast<int64_t>(n) - 1));
    for (int axis = 0; axis < 2; ++axis) {
      auto& coords = axis == 0 ? d.cell_x : d.cell_y;
      const double saved = coords[c];
      coords[c] = saved + eps;
      const double fp = value();
      coords[c] = saved - eps;
      const double fm = value();
      coords[c] = saved;
      const double fd = (fp - fm) / (2 * eps);
      const double an = axis == 0 ? gx[c] : gy[c];
      EXPECT_NEAR(an, fd, 1e-5 * std::max(1.0, std::abs(fd)) + 1e-8);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, WirelengthGradient, ::testing::Range(0, 6));

TEST(Wirelength, NetWeightsScaleValueAndGradient) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = make_design(100, 47, lib);
  WirelengthModel wl(d);
  wl.set_gamma(1.0);
  const size_t n = d.cell_x.size();
  std::vector<double> gx1(n, 0.0), gy1(n, 0.0);
  const double v1 = wl.value_and_gradient(d.cell_x, d.cell_y, gx1, gy1);
  for (auto& w : wl.net_weights()) w = 2.0;
  std::vector<double> gx2(n, 0.0), gy2(n, 0.0);
  const double v2 = wl.value_and_gradient(d.cell_x, d.cell_y, gx2, gy2);
  EXPECT_NEAR(v2, 2.0 * v1, 1e-9 * std::abs(v1));
  for (size_t c = 0; c < n; ++c) {
    EXPECT_NEAR(gx2[c], 2.0 * gx1[c], 1e-12 + 1e-9 * std::abs(gx1[c]));
    EXPECT_NEAR(gy2[c], 2.0 * gy1[c], 1e-12 + 1e-9 * std::abs(gy1[c]));
  }
  EXPECT_NEAR(wl.hpwl(d.cell_x, d.cell_y),
              2.0 * wl.hpwl_unweighted(d.cell_x, d.cell_y), 1e-6);
}

TEST(Wirelength, IgnoresHugeNets) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = make_design(900, 49, lib);
  // The clock net connects all ~108 flops and must be filtered at degree 64.
  WirelengthModel wl(d, /*ignore_degree=*/64);
  const netlist::NetId clk = d.netlist.find_net("clknet");
  ASSERT_GT(d.netlist.net(clk).pins.size(), 64u);
  for (netlist::NetId n : wl.active_nets()) EXPECT_NE(n, clk);
}

TEST(Wirelength, IncidenceWeightsCountPins) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = make_design(100, 53, lib);
  WirelengthModel wl(d);
  const auto inc = wl.cell_incidence_weights();
  // Each cell's incidence equals its number of pins on active nets when all
  // weights are 1.
  std::vector<double> expected(d.netlist.num_cells(), 0.0);
  for (netlist::NetId n : wl.active_nets())
    for (netlist::PinId p : d.netlist.net(n).pins)
      expected[static_cast<size_t>(d.netlist.pin(p).cell)] += 1.0;
  for (size_t c = 0; c < expected.size(); ++c) EXPECT_EQ(inc[c], expected[c]);
}

}  // namespace
}  // namespace dtp::placer
