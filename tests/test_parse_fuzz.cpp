// Fuzz-style robustness tests for every front-end parser (DESIGN.md §12):
// bookshelf .pl, structural verilog, SDC and Liberty.  The contract under
// test is narrow but absolute: on arbitrary malformed input a parser either
// succeeds or throws std::runtime_error with a diagnostic — it never
// crashes, never loops, and (under the sanitizer CI jobs) never touches
// memory out of bounds.  Mutations are driven by the repo's deterministic
// Rng so failures replay exactly.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/rng.h"
#include "io/bookshelf.h"
#include "io/sdc.h"
#include "io/verilog.h"
#include "liberty/liberty_io.h"
#include "liberty/synth_library.h"
#include "workload/circuit_gen.h"

using namespace dtp;

namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// Valid seed documents, produced by the matching writers so the fuzzer
// starts from inputs that exercise every grammar production.
struct Seeds {
  liberty::CellLibrary lib;
  netlist::Design design;
  std::string liberty_text;
  std::string verilog_text;
  std::string sdc_text;

  Seeds()
      : lib(liberty::make_synthetic_library()),
        design([this] {
          workload::WorkloadOptions w;
          w.num_cells = 60;
          w.seed = 11;
          return workload::generate_design(lib, w, "fuzz_seed");
        }()) {
    std::ostringstream os;
    liberty::write_liberty(lib, os);
    liberty_text = os.str();
    os.str("");
    io::write_verilog(design, os);
    verilog_text = os.str();
    os.str("");
    io::write_sdc(design.constraints, os);
    sdc_text = os.str();
  }
};

Seeds& seeds() {
  static Seeds s;
  return s;
}

// One deterministic mutation: truncate, splice junk, flip bytes, or
// duplicate a slice.  Returns a corrupted copy of `text`.
std::string mutate(const std::string& text, Rng& rng) {
  std::string out = text;
  switch (rng.next_u64() % 4) {
    case 0:  // truncate mid-token
      out.resize(out.size() * rng.uniform(0.0, 0.98));
      break;
    case 1: {  // splice raw junk bytes
      const size_t at = static_cast<size_t>(rng.uniform(0.0, 1.0) * out.size());
      std::string junk;
      const int n = 1 + static_cast<int>(rng.next_u64() % 24);
      for (int i = 0; i < n; ++i)
        junk.push_back(static_cast<char>(rng.next_u64() % 256));
      out.insert(std::min(at, out.size()), junk);
      break;
    }
    case 2: {  // flip bytes in place
      const int n = 1 + static_cast<int>(rng.next_u64() % 16);
      for (int i = 0; i < n && !out.empty(); ++i) {
        const size_t at = rng.next_u64() % out.size();
        out[at] = static_cast<char>(out[at] ^ (1u << (rng.next_u64() % 8)));
      }
      break;
    }
    default: {  // duplicate a random slice somewhere else
      if (out.size() > 4) {
        const size_t a = rng.next_u64() % (out.size() / 2);
        const size_t len = 1 + rng.next_u64() % (out.size() - a - 1);
        const size_t at = rng.next_u64() % out.size();
        out.insert(at, out.substr(a, std::min<size_t>(len, 200)));
      }
      break;
    }
  }
  return out;
}

// Runs `parse` over `rounds` deterministic corruptions of `text`; the parse
// must finish (either outcome) without escaping as a non-standard exception.
template <typename Fn>
void fuzz_document(const std::string& text, uint64_t seed, int rounds,
                   Fn parse) {
  Rng rng(seed);
  for (int i = 0; i < rounds; ++i) {
    const std::string corrupted = mutate(text, rng);
    try {
      parse(corrupted);
    } catch (const std::runtime_error&) {
      // expected containment path
    } catch (const std::exception& e) {
      FAIL() << "round " << i << ": non-runtime_error escaped: " << e.what();
    }
  }
}

}  // namespace

TEST(ParseFuzz, LibertySurvivesCorruption) {
  fuzz_document(seeds().liberty_text, 101, 120, [](const std::string& doc) {
    std::istringstream in(doc);
    (void)liberty::parse_liberty(in);
  });
}

TEST(ParseFuzz, VerilogSurvivesCorruption) {
  fuzz_document(seeds().verilog_text, 202, 120, [](const std::string& doc) {
    std::istringstream in(doc);
    (void)io::read_verilog(seeds().lib, in);
  });
}

TEST(ParseFuzz, SdcSurvivesCorruption) {
  fuzz_document(seeds().sdc_text, 303, 120, [](const std::string& doc) {
    std::istringstream in(doc);
    netlist::Constraints c;
    (void)io::read_sdc(in, c);
  });
}

TEST(ParseFuzz, BookshelfPlacementSurvivesCorruption) {
  // Produce a valid .pl via the writer, then fuzz the file contents.
  const std::string dir = temp_path("dtp_fuzz_bookshelf");
  std::filesystem::create_directories(dir);
  io::write_bookshelf(seeds().design, dir);
  const std::string pl = dir + "/fuzz_seed.pl";
  std::ifstream in(pl);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  const std::string mutant = temp_path("dtp_fuzz_mutant.pl");
  fuzz_document(text, 404, 80, [&](const std::string& doc) {
    {
      std::ofstream f(mutant, std::ios::binary);
      f << doc;
    }
    netlist::Design copy = seeds().design;
    (void)io::read_placement(copy, mutant);
  });
  std::remove(mutant.c_str());
  std::filesystem::remove_all(dir);
}

TEST(ParseFuzz, LibertyNestingBombHitsTheDepthCap) {
  // A hostile file with 4000 nested groups must fail via the recursion cap,
  // not via stack exhaustion.
  std::string bomb = "library (bomb) {\n";
  for (int i = 0; i < 4000; ++i)
    bomb += "g" + std::to_string(i) + " (x) {\n";
  // No closers needed: the parser must bail long before EOF handling.
  std::istringstream in(bomb);
  try {
    (void)liberty::parse_liberty(in);
    FAIL() << "nesting bomb parsed successfully";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("nesting"), std::string::npos)
        << e.what();
  }
}

TEST(ParseFuzz, EmptyAndBinaryInputsAreContained) {
  for (const std::string& doc :
       {std::string(""), std::string("\0\0\xff\xfe garbage \0", 14),
        std::string(4096, '{'), std::string(4096, '"')}) {
    std::istringstream l(doc), v(doc), s(doc);
    EXPECT_THROW((void)liberty::parse_liberty(l), std::runtime_error);
    EXPECT_THROW((void)io::read_verilog(seeds().lib, v), std::runtime_error);
    netlist::Constraints c;
    try {
      (void)io::read_sdc(s, c);  // SDC skips unknown commands by design
    } catch (const std::runtime_error&) {
    }
  }
}

#ifdef DTP_PLACE_PATH
// End-to-end exit-code contract: dtp_place must answer malformed inputs with
// exit 2 (invalid input), never a crash (which the shell reports as >=128).
TEST(ParseFuzz, CliRejectsMalformedInputsWithExitTwo) {
  const std::string place = DTP_PLACE_PATH;
  if (!std::filesystem::exists(place)) GTEST_SKIP() << "dtp_place not built";

  const std::string lib = temp_path("dtp_fuzz_cli.lib");
  const std::string vlog = temp_path("dtp_fuzz_cli.v");
  {
    std::ofstream f(lib);
    f << "library (broken) { cell (INV_X1) { pin (A) { direction";  // cut off
  }
  {
    std::ofstream f(vlog);
    f << "module busted (a; wire ???";
  }
  const auto run = [](const std::string& cmd) {
    const int raw = std::system((cmd + " >/dev/null 2>&1").c_str());
    return WIFEXITED(raw) ? WEXITSTATUS(raw) : 128 + WTERMSIG(raw);
  };
  EXPECT_EQ(run(place + " --lib " + lib + " --netlist " + vlog), 2);
  // Valid liberty, broken netlist: still a clean exit 2.
  {
    std::ofstream f(lib);
    liberty::write_liberty(seeds().lib, f);
  }
  EXPECT_EQ(run(place + " --lib " + lib + " --netlist " + vlog), 2);
  // Missing file is an IO/usage failure, not a crash.
  const int missing = run(place + " --lib " + lib + " --netlist /nonexistent.v");
  EXPECT_TRUE(missing == 1 || missing == 2) << missing;
  std::remove(lib.c_str());
  std::remove(vlog.c_str());
}
#endif
