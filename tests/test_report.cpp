// Timing report generation and DRV checks.
#include <gtest/gtest.h>

#include "liberty/synth_library.h"
#include "sta/report.h"
#include "workload/circuit_gen.h"

namespace dtp::sta {
namespace {

using netlist::Design;

struct Fixture {
  liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design design;
  TimingGraph graph;
  Timer timer;

  explicit Fixture(double clock_scale = 0.6, int cells = 400)
      : design(make(lib, clock_scale, cells)),
        graph(design.netlist),
        timer(design, graph) {
    timer.evaluate(design.cell_x, design.cell_y);
  }

  static Design make(const liberty::CellLibrary& lib, double clock_scale,
                     int cells) {
    workload::WorkloadOptions opts;
    opts.num_cells = cells;
    opts.seed = 901;
    opts.clock_scale = clock_scale;
    return workload::generate_design(lib, opts);
  }
};

TEST(Report, ContainsSummaryAndPaths) {
  Fixture f;
  ReportOptions opts;
  opts.max_paths = 3;
  const std::string report = timing_report_string(f.timer, opts);
  EXPECT_NE(report.find("timing report"), std::string::npos);
  EXPECT_NE(report.find("setup WNS"), std::string::npos);
  EXPECT_NE(report.find("slack histogram"), std::string::npos);
  EXPECT_NE(report.find("path 1:"), std::string::npos);
  EXPECT_NE(report.find("path 3:"), std::string::npos);
  EXPECT_EQ(report.find("path 4:"), std::string::npos);
}

TEST(Report, WorstPathSlackMatchesWns) {
  Fixture f;
  const std::string report = timing_report_string(f.timer);
  const auto pos = report.find("path 1: slack ");
  ASSERT_NE(pos, std::string::npos);
  const double slack = std::stod(report.substr(pos + 14));
  EXPECT_NEAR(slack, f.timer.metrics().wns, 1e-3);
}

TEST(Report, HistogramCountsAllFiniteEndpoints) {
  Fixture f;
  ReportOptions opts;
  opts.max_paths = 0;
  const std::string report = timing_report_string(f.timer, opts);
  // Sum the histogram bucket counts out of the report text.
  size_t total = 0;
  std::istringstream is(report);
  std::string line;
  while (std::getline(is, line)) {
    if (line.size() > 1 && line[0] == '[' && line.find(')') != std::string::npos) {
      const auto p = line.find(')');
      total += static_cast<size_t>(std::stoul(line.substr(p + 1)));
    }
  }
  size_t finite = 0;
  for (double s : f.timer.endpoint_slack())
    if (std::isfinite(s)) ++finite;
  EXPECT_EQ(total, finite);
}

TEST(Drv, FindsInjectedSlewViolations) {
  Fixture f;
  // Pick a limit below the worst slew in the design: guaranteed violations.
  double worst = 0.0;
  for (int l = 0; l < f.graph.num_levels(); ++l)
    for (netlist::PinId p : f.graph.level(l))
      for (int tr = 0; tr < 2; ++tr)
        if (std::isfinite(f.timer.at(p, tr)))
          worst = std::max(worst, f.timer.slew(p, tr));
  ASSERT_GT(worst, 0.0);
  const auto viols = check_drv(f.timer, worst * 0.5, 0.0);
  EXPECT_FALSE(viols.empty());
  for (const auto& v : viols) {
    EXPECT_EQ(v.kind, DrvViolation::Slew);
    EXPECT_GT(v.value, v.limit);
  }
  // A limit above the worst slew finds nothing.
  EXPECT_TRUE(check_drv(f.timer, worst * 1.01, 0.0).empty());
}

TEST(Drv, FindsCapViolationsOnLoadedNets) {
  Fixture f;
  double worst_load = 0.0;
  for (netlist::NetId n : f.graph.timing_nets())
    worst_load = std::max(worst_load, f.timer.net_timing(n).root_load());
  const auto viols = check_drv(f.timer, 0.0, worst_load * 0.7);
  EXPECT_FALSE(viols.empty());
  for (const auto& v : viols) {
    EXPECT_EQ(v.kind, DrvViolation::Cap);
    // The reported pin is the net driver (an output pin).
    EXPECT_TRUE(f.design.netlist.pin_is_output(v.pin));
  }
  EXPECT_TRUE(check_drv(f.timer, 0.0, worst_load * 1.01).empty());
}

TEST(Drv, DisabledChecksReportNothing) {
  Fixture f;
  EXPECT_TRUE(check_drv(f.timer, 0.0, 0.0).empty());
}

TEST(Report, DrvSectionAppearsWhenEnabled) {
  Fixture f;
  ReportOptions opts;
  opts.max_paths = 1;
  opts.max_slew = 1e-6;  // everything violates
  const std::string report = timing_report_string(f.timer, opts);
  EXPECT_NE(report.find("design rule checks"), std::string::npos);
  EXPECT_NE(report.find("max_slew"), std::string::npos);
}

}  // namespace
}  // namespace dtp::sta
