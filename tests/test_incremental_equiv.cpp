// Bitwise equivalence of the incremental dirty-net path against a full
// rebuild (DESIGN.md §10).  Stronger than tests/test_incremental_sta.cpp's
// tolerance checks: after random cell moves, every arrival, slew and RAT —
// and therefore the candidate cache the backward pass and update_required()
// consume — must match a from-scratch Timer exactly, not just to 1e-9.
// Trees for unchanged nets are reused, so this pins down that the arena
// forest + workspace refactor keeps recomputed cones byte-for-byte equal to
// fresh computation.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "liberty/synth_library.h"
#include "sta/timer.h"
#include "workload/circuit_gen.h"

namespace dtp::sta {
namespace {

using netlist::CellId;
using netlist::Design;
using netlist::PinId;

Design make(const liberty::CellLibrary& lib, int cells, uint64_t seed) {
  workload::WorkloadOptions opts;
  opts.num_cells = cells;
  opts.seed = seed;
  opts.clock_scale = 0.6;
  return workload::generate_design(lib, opts);
}

std::vector<CellId> movable_cells(const Design& d) {
  std::vector<CellId> out;
  for (size_t c = 0; c < d.netlist.num_cells(); ++c)
    if (!d.netlist.cell(static_cast<CellId>(c)).fixed)
      out.push_back(static_cast<CellId>(c));
  return out;
}

void expect_state_bitwise_equal(const Timer& inc, const Timer& full,
                                const TimingGraph& g,
                                const netlist::Netlist& nl) {
  for (int l = 0; l < g.num_levels(); ++l) {
    for (PinId p : g.level(l)) {
      for (int tr = 0; tr < 2; ++tr) {
        // -inf == -inf holds, so disconnected pins compare fine; only a NaN
        // (which must not occur) or a real divergence fails.
        ASSERT_EQ(inc.at(p, tr), full.at(p, tr))
            << "at " << nl.pin_full_name(p) << " tr " << tr;
        ASSERT_EQ(inc.slew(p, tr), full.slew(p, tr))
            << "slew " << nl.pin_full_name(p) << " tr " << tr;
        ASSERT_EQ(inc.rat(p, tr), full.rat(p, tr))
            << "rat " << nl.pin_full_name(p) << " tr " << tr;
      }
    }
  }
}

class IncrementalEquiv : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalEquiv, BitwiseMatchesFullRebuildAfterRandomMoves) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = make(lib, 320, static_cast<uint64_t>(4000 + GetParam()));
  const TimingGraph graph(d.netlist);
  Timer inc(d, graph);
  inc.evaluate(d.cell_x, d.cell_y);

  Rng rng(static_cast<uint64_t>(100 + GetParam()));
  const auto movers = movable_cells(d);
  for (int batch = 0; batch < 4; ++batch) {
    std::vector<CellId> moved;
    const int k = 1 + static_cast<int>(rng.uniform_int(0, 6));
    for (int i = 0; i < k; ++i) {
      const CellId c = movers[static_cast<size_t>(
          rng.uniform_int(0, static_cast<int64_t>(movers.size()) - 1))];
      d.cell_x[static_cast<size_t>(c)] += rng.uniform(-25.0, 25.0);
      d.cell_y[static_cast<size_t>(c)] += rng.uniform(-25.0, 25.0);
      moved.push_back(c);
    }
    const auto m_inc = inc.evaluate_incremental(d.cell_x, d.cell_y, moved);
    inc.update_required();

    Timer full(d, graph);
    const auto m_full = full.evaluate(d.cell_x, d.cell_y);
    full.update_required();

    ASSERT_EQ(m_inc.wns, m_full.wns) << "batch " << batch;
    ASSERT_EQ(m_inc.tns, m_full.tns) << "batch " << batch;
    ASSERT_EQ(m_inc.num_violations, m_full.num_violations) << "batch " << batch;
    expect_state_bitwise_equal(inc, full, graph, d.netlist);
  }
}

INSTANTIATE_TEST_SUITE_P(Random, IncrementalEquiv, ::testing::Range(0, 6));

TEST(IncrementalEquiv, SmoothModeBitwiseMatchesFullRebuild) {
  const liberty::CellLibrary lib = liberty::make_synthetic_library();
  Design d = make(lib, 280, 4700);
  const TimingGraph graph(d.netlist);
  TimerOptions opts;
  opts.mode = AggMode::Smooth;
  opts.gamma = 0.05;
  Timer inc(d, graph, opts);
  inc.evaluate(d.cell_x, d.cell_y);

  Rng rng(55);
  const auto movers = movable_cells(d);
  std::vector<CellId> moved;
  for (int i = 0; i < 5; ++i) {
    const CellId c = movers[static_cast<size_t>(
        rng.uniform_int(0, static_cast<int64_t>(movers.size()) - 1))];
    d.cell_x[static_cast<size_t>(c)] += rng.uniform(-20.0, 20.0);
    d.cell_y[static_cast<size_t>(c)] += rng.uniform(-20.0, 20.0);
    moved.push_back(c);
  }
  const auto m_inc = inc.evaluate_incremental(d.cell_x, d.cell_y, moved);

  Timer full(d, graph, opts);
  const auto m_full = full.evaluate(d.cell_x, d.cell_y);
  EXPECT_EQ(m_inc.wns_smooth, m_full.wns_smooth);
  EXPECT_EQ(m_inc.tns_smooth, m_full.tns_smooth);
  EXPECT_EQ(m_inc.wns, m_full.wns);
  EXPECT_EQ(m_inc.tns, m_full.tns);
}

}  // namespace
}  // namespace dtp::sta
