// Elmore forward pass (Eq. 7) versus an independent brute-force computation
// based on shared-path resistance:
//
//   Delay(u) = sum_v Cap(v) * R(u, v)          with R(u, v) = resistance of
//   Beta(u)  = sum_v Cap(v) * Delay(v) * R(u, v)    the shared root path,
//
// plus structural properties (load conservation, monotonicity along paths).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "rsmt/rsmt_builder.h"
#include "sta/net_timing.h"

namespace dtp::sta {
namespace {

// Resistance of the common part of the root->a and root->b paths.
double shared_resistance(const NetTiming& nt, int a, int b) {
  const auto& tree = nt.tree;
  // Collect ancestors (including self) of a with accumulated depth.
  std::vector<int> order(tree.num_nodes(), -1);
  for (size_t k = 0; k < tree.topo_order.size(); ++k)
    order[static_cast<size_t>(tree.topo_order[k])] = static_cast<int>(k);
  double r = 0.0;
  // Walk both up to the root, marking a's path.
  std::vector<char> on_a(tree.num_nodes(), 0);
  for (int v = a; v >= 0; v = tree.nodes[static_cast<size_t>(v)].parent)
    on_a[static_cast<size_t>(v)] = 1;
  // Find first common ancestor on b's way up, then sum edge resistances from
  // that ancestor to the root along a's path.
  int lca = b;
  while (!on_a[static_cast<size_t>(lca)])
    lca = tree.nodes[static_cast<size_t>(lca)].parent;
  for (int v = lca; tree.nodes[static_cast<size_t>(v)].parent >= 0;
       v = tree.nodes[static_cast<size_t>(v)].parent)
    r += nt.edge_res[static_cast<size_t>(v)];
  (void)order;
  return r;
}

NetTiming make_net(const std::vector<Vec2>& pins, const std::vector<double>& caps,
                   double r_unit, double c_unit, int driver = 0) {
  NetTiming nt;
  nt.tree = rsmt::build_rsmt(pins, driver);
  elmore_forward(nt, caps, r_unit, c_unit);
  return nt;
}

TEST(Elmore, TwoPinHandComputed) {
  // Driver at origin, sink 10um away; r=0.001 kOhm/um, c=0.0002 pF/um,
  // sink pin cap 0.005 pF.
  const double r = 0.001, c = 0.0002;
  NetTiming nt = make_net({{0, 0}, {10, 0}}, {0.0, 0.005}, r, c);
  const double wire_r = r * 10, wire_c = c * 10;
  // Node caps: root has wire_c/2; sink has wire_c/2 + 0.005.
  EXPECT_NEAR(nt.node_cap[0], wire_c / 2, 1e-15);
  EXPECT_NEAR(nt.node_cap[1], wire_c / 2 + 0.005, 1e-15);
  EXPECT_NEAR(nt.root_load(), wire_c + 0.005, 1e-15);
  // Elmore delay to the sink: R * (C_far) with the lumped pi: R*(c/2 + cap).
  EXPECT_NEAR(nt.delay[1], wire_r * (wire_c / 2 + 0.005), 1e-15);
  EXPECT_EQ(nt.delay[0], 0.0);
}

TEST(Elmore, LoadConservation) {
  Rng rng(31);
  std::vector<Vec2> pins(6);
  for (auto& p : pins) p = {rng.uniform(0, 50), rng.uniform(0, 50)};
  std::vector<double> caps(6);
  for (auto& cp : caps) cp = rng.uniform(0.001, 0.01);
  caps[0] = 0.0;
  NetTiming nt = make_net(pins, caps, 0.0004, 0.0002);
  double total_cap = 0.0;
  for (double cc : nt.node_cap) total_cap += cc;
  EXPECT_NEAR(nt.root_load(), total_cap, 1e-12);
  // Wire cap accounting: total node cap = pin caps + c * tree length.
  double pin_cap_sum = 0.0;
  for (double cc : caps) pin_cap_sum += cc;
  EXPECT_NEAR(total_cap, pin_cap_sum + 0.0002 * nt.tree.length(), 1e-12);
}

TEST(Elmore, DelayMonotoneAlongPaths) {
  Rng rng(37);
  std::vector<Vec2> pins(8);
  for (auto& p : pins) p = {rng.uniform(0, 80), rng.uniform(0, 80)};
  std::vector<double> caps(8, 0.004);
  caps[2] = 0.0;
  NetTiming nt = make_net(pins, caps, 0.0004, 0.0002, /*driver=*/2);
  for (size_t k = 1; k < nt.tree.topo_order.size(); ++k) {
    const int v = nt.tree.topo_order[k];
    const int p = nt.tree.nodes[static_cast<size_t>(v)].parent;
    EXPECT_GE(nt.delay[static_cast<size_t>(v)], nt.delay[static_cast<size_t>(p)]);
    EXPECT_GE(nt.beta[static_cast<size_t>(v)], nt.beta[static_cast<size_t>(p)]);
  }
}

// Property: the 4-pass DP equals the brute-force shared-resistance formulas.
class ElmoreBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(ElmoreBruteForce, DelayAndBetaMatch) {
  Rng rng(static_cast<uint64_t>(GetParam() * 131 + 7));
  const int n = static_cast<int>(rng.uniform_int(2, 10));
  std::vector<Vec2> pins(static_cast<size_t>(n));
  for (auto& p : pins) p = {rng.uniform(0, 100), rng.uniform(0, 100)};
  std::vector<double> caps(static_cast<size_t>(n));
  for (auto& cp : caps) cp = rng.uniform(0.0, 0.01);
  const int driver = static_cast<int>(rng.uniform_int(0, n - 1));
  caps[static_cast<size_t>(driver)] = 0.0;
  const double r_unit = rng.uniform(1e-4, 1e-3);
  const double c_unit = rng.uniform(1e-4, 4e-4);
  NetTiming nt = make_net(pins, caps, r_unit, c_unit, driver);

  const size_t m = nt.tree.num_nodes();
  for (size_t u = 0; u < m; ++u) {
    double delay_bf = 0.0, beta_bf = 0.0;
    for (size_t v = 0; v < m; ++v) {
      const double r_shared =
          shared_resistance(nt, static_cast<int>(u), static_cast<int>(v));
      delay_bf += nt.node_cap[v] * r_shared;
      beta_bf += nt.node_cap[v] * nt.delay[v] * r_shared;
    }
    EXPECT_NEAR(nt.delay[u], delay_bf, 1e-12) << "node " << u;
    EXPECT_NEAR(nt.beta[u], beta_bf, 1e-12) << "node " << u;
    // Impulse^2 definition (Eq. 7e), modulo the safety clamp.
    if (!nt.imp2_clamped[u]) {
      EXPECT_NEAR(nt.imp2[u], 2 * nt.beta[u] - nt.delay[u] * nt.delay[u], 1e-15);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, ElmoreBruteForce, ::testing::Range(0, 30));

TEST(Elmore, ZeroLengthDegenerateNet) {
  // All pins coincident: zero wire delay, load = pin caps.
  NetTiming nt = make_net({{5, 5}, {5, 5}, {5, 5}}, {0.0, 0.003, 0.004}, 4e-4, 2e-4);
  EXPECT_NEAR(nt.root_load(), 0.007, 1e-15);
  for (double d : nt.delay) EXPECT_EQ(d, 0.0);
  for (size_t v = 0; v < nt.imp2.size(); ++v) EXPECT_TRUE(nt.imp2_clamped[v]);
}

}  // namespace
}  // namespace dtp::sta
