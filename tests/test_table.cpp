// Console table and CSV writers (the bench harness output layer).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/table.h"

namespace dtp {
namespace {

TEST(ConsoleTable, AlignsAndSizesColumns) {
  ConsoleTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long_name", "123456"});
  const std::string s = t.to_string();
  // Every line has equal width.
  std::istringstream is(s);
  std::string line;
  size_t width = 0;
  while (std::getline(is, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width) << line;
  }
  EXPECT_NE(s.find("long_name"), std::string::npos);
  EXPECT_NE(s.find("name"), std::string::npos);
}

TEST(ConsoleTable, RuleBeforeSummaryRow) {
  ConsoleTable t({"a"});
  t.add_row({"1"});
  t.add_rule();
  t.add_row({"sum"});
  const std::string s = t.to_string();
  // header rule + explicit rule = at least 2 separator lines.
  size_t rules = 0;
  std::istringstream is(s);
  std::string line;
  while (std::getline(is, line))
    if (line.find_first_not_of("-+") == std::string::npos && !line.empty()) ++rules;
  EXPECT_EQ(rules, 2u);
}

TEST(Fmt, FixedDecimals) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(-0.5, 3), "-0.500");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmt_int(42), "42");
  EXPECT_EQ(fmt_int(-7), "-7");
}

TEST(CsvWriter, WritesHeaderAndRows) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "dtp_csv_test.csv").string();
  {
    CsvWriter csv(path, {"x", "y"});
    csv.write_row({1.0, 2.5});
    csv.write_row({-3.0, 1e-9});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2.5");
  std::getline(in, line);
  EXPECT_EQ(line.substr(0, 3), "-3,");
  EXPECT_FALSE(std::getline(in, line));
}

}  // namespace
}  // namespace dtp
