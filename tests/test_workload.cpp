// Synthetic benchmark generator properties: determinism, structure, geometry.
#include <gtest/gtest.h>

#include "liberty/synth_library.h"
#include "sta/timing_graph.h"
#include "workload/circuit_gen.h"

namespace dtp::workload {
namespace {

using netlist::CellId;
using netlist::Design;

class WorkloadTest : public ::testing::Test {
 protected:
  liberty::CellLibrary lib = liberty::make_synthetic_library();
};

TEST_F(WorkloadTest, DeterministicBySeed) {
  WorkloadOptions opts;
  opts.num_cells = 400;
  opts.seed = 5;
  const Design a = generate_design(lib, opts);
  const Design b = generate_design(lib, opts);
  ASSERT_EQ(a.netlist.num_cells(), b.netlist.num_cells());
  ASSERT_EQ(a.netlist.num_nets(), b.netlist.num_nets());
  for (size_t c = 0; c < a.netlist.num_cells(); ++c) {
    EXPECT_EQ(a.netlist.cell(static_cast<CellId>(c)).lib_cell,
              b.netlist.cell(static_cast<CellId>(c)).lib_cell);
    EXPECT_EQ(a.cell_x[c], b.cell_x[c]);
    EXPECT_EQ(a.cell_y[c], b.cell_y[c]);
  }
}

TEST_F(WorkloadTest, DifferentSeedsDiffer) {
  WorkloadOptions opts;
  opts.num_cells = 400;
  opts.seed = 5;
  const Design a = generate_design(lib, opts);
  opts.seed = 6;
  const Design b = generate_design(lib, opts);
  bool any_diff = a.netlist.num_nets() != b.netlist.num_nets();
  for (size_t c = 0; !any_diff && c < a.netlist.num_cells(); ++c)
    any_diff = a.netlist.cell(static_cast<CellId>(c)).lib_cell !=
               b.netlist.cell(static_cast<CellId>(c)).lib_cell;
  EXPECT_TRUE(any_diff);
}

TEST_F(WorkloadTest, StatsInExpectedRanges) {
  WorkloadOptions opts;
  opts.num_cells = 1000;
  opts.ff_fraction = 0.15;
  const Design d = generate_design(lib, opts);
  const auto s = d.netlist.stats();
  EXPECT_EQ(s.num_std_cells, 1000u);
  EXPECT_NEAR(static_cast<double>(s.num_seq_cells), 150.0, 1.0);
  EXPECT_GT(s.num_ports, static_cast<size_t>(opts.num_pi + opts.num_po));
  // Pins per net around 2.5-4 like real designs.
  EXPECT_GT(s.avg_net_degree, 2.0);
  EXPECT_LT(s.avg_net_degree, 5.0);
}

TEST_F(WorkloadTest, ValidatesAndBuildsAcyclicGraph) {
  WorkloadOptions opts;
  opts.num_cells = 800;
  opts.seed = 9;
  const Design d = generate_design(lib, opts);
  EXPECT_NO_THROW(d.netlist.validate());
  EXPECT_NO_THROW(sta::TimingGraph g(d.netlist));
}

TEST_F(WorkloadTest, PadsFixedOnBoundaryMovablesInside) {
  WorkloadOptions opts;
  opts.num_cells = 500;
  const Design d = generate_design(lib, opts);
  const Rect& core = d.floorplan.core;
  for (size_t c = 0; c < d.netlist.num_cells(); ++c) {
    const auto id = static_cast<CellId>(c);
    if (d.netlist.cell_is_port(id)) {
      EXPECT_TRUE(d.netlist.cell(id).fixed);
      const bool on_edge = d.cell_x[c] == core.xl || d.cell_x[c] == core.xh ||
                           d.cell_y[c] == core.yl || d.cell_y[c] == core.yh;
      EXPECT_TRUE(on_edge) << d.netlist.cell(id).name;
    } else {
      EXPECT_FALSE(d.netlist.cell(id).fixed);
      EXPECT_GE(d.cell_x[c], core.xl);
      EXPECT_LE(d.cell_x[c], core.xh);
      EXPECT_GE(d.cell_y[c], core.yl);
      EXPECT_LE(d.cell_y[c], core.yh);
    }
  }
}

TEST_F(WorkloadTest, FloorplanUtilizationNearTarget) {
  WorkloadOptions opts;
  opts.num_cells = 1500;
  opts.target_density = 0.7;
  const Design d = generate_design(lib, opts);
  double area = 0.0;
  for (size_t c = 0; c < d.netlist.num_cells(); ++c) {
    const auto& master = d.netlist.lib_cell_of(static_cast<CellId>(c));
    area += master.width * master.height;
  }
  const double util = area / d.floorplan.core.area();
  EXPECT_GT(util, 0.55);
  EXPECT_LE(util, 0.72);
}

TEST_F(WorkloadTest, SingleClockNetReachesAllFlops) {
  WorkloadOptions opts;
  opts.num_cells = 600;
  const Design d = generate_design(lib, opts);
  const netlist::NetId clk = d.netlist.find_net("clknet");
  ASSERT_NE(clk, netlist::kInvalidId);
  const auto s = d.netlist.stats();
  // driver + one CK pin per flop
  EXPECT_EQ(d.netlist.net(clk).pins.size(), 1u + s.num_seq_cells);
}

TEST_F(WorkloadTest, FanoutCapRespectedOnSignalNets) {
  WorkloadOptions opts;
  opts.num_cells = 1200;
  opts.max_fanout = 24;
  const Design d = generate_design(lib, opts);
  const netlist::NetId clk = d.netlist.find_net("clknet");
  for (size_t n = 0; n < d.netlist.num_nets(); ++n) {
    if (static_cast<netlist::NetId>(n) == clk) continue;
    // capacity cap + the exhaustive-fallback path can slightly exceed; allow
    // a small margin but catch runaway fanout.
    EXPECT_LE(d.netlist.net(static_cast<netlist::NetId>(n)).pins.size(),
              static_cast<size_t>(opts.max_fanout) + 8);
  }
}

TEST_F(WorkloadTest, MinibluePresetsScale) {
  const auto& presets = miniblue_presets();
  ASSERT_EQ(presets.size(), 8u);
  const auto opts = miniblue_options(presets[0], /*scale_divisor=*/400);
  EXPECT_NEAR(opts.num_cells, presets[0].superblue_cells / 400, 1.0);
  // Relative ordering preserved: superblue7 is the largest.
  int largest = 0;
  for (size_t i = 1; i < presets.size(); ++i)
    if (presets[i].superblue_cells > presets[static_cast<size_t>(largest)].superblue_cells)
      largest = static_cast<int>(i);
  EXPECT_STREQ(presets[static_cast<size_t>(largest)].name, "miniblue7");
}

TEST_F(WorkloadTest, ClockPeriodScalesWithDepth) {
  WorkloadOptions opts;
  opts.num_cells = 300;
  opts.levels = 10;
  const Design d10 = generate_design(lib, opts);
  opts.levels = 20;
  const Design d20 = generate_design(lib, opts);
  EXPECT_GT(d20.constraints.clock_period, d10.constraints.clock_period * 1.5);
}

}  // namespace
}  // namespace dtp::workload
