// MetricsRegistry: counter/gauge/histogram semantics, JSON round-trip, and
// the zero-overhead-when-disabled fast path.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "json_test_util.h"
#include "obs/metrics.h"

namespace dtp {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MetricsRegistry;
using test::JsonParser;
using test::JsonValue;

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::instance().set_enabled(true);
    MetricsRegistry::instance().reset();
  }
  void TearDown() override { MetricsRegistry::instance().set_enabled(true); }
};

TEST_F(MetricsTest, CounterAccumulates) {
  Counter& c = MetricsRegistry::instance().counter("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Interned: same name, same instrument.
  EXPECT_EQ(&MetricsRegistry::instance().counter("test.counter"), &c);
}

TEST_F(MetricsTest, CounterIsThreadSafe) {
  Counter& c = MetricsRegistry::instance().counter("test.mt_counter");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.add();
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), 40000u);
}

TEST_F(MetricsTest, GaugeKeepsLastValue) {
  Gauge& g = MetricsRegistry::instance().gauge("test.gauge");
  g.set(1.5);
  g.set(-2.25);
  EXPECT_DOUBLE_EQ(g.value(), -2.25);
}

TEST_F(MetricsTest, HistogramTracksMoments) {
  Histogram& h = MetricsRegistry::instance().histogram("test.hist");
  h.observe(0.5);
  h.observe(3.0);
  h.observe(10.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 13.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
  EXPECT_DOUBLE_EQ(h.mean(), 4.5);
  // Buckets: [0,1) -> k=0, [2,4) -> k=2, [8,16) -> k=4.
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(4), 1u);
}

TEST_F(MetricsTest, HistogramHandlesSignedDomains) {
  // Slack histograms are signed with the violating mass below zero; the
  // bucket boundaries must be stable on both sides (regression: negative
  // observations used to collapse into bucket 0).
  Histogram& h = MetricsRegistry::instance().histogram("test.signed_hist");
  h.observe(-0.25);  // zero bucket (-1, 1)
  h.observe(0.25);   // zero bucket (-1, 1)
  h.observe(-1.0);   // neg bucket 1: (-2, -1]
  h.observe(-3.0);   // neg bucket 2: (-4, -2]
  h.observe(-10.0);  // neg bucket 4: (-16, -8]
  h.observe(3.0);    // pos bucket 2: [2, 4)
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.min(), -10.0);
  EXPECT_DOUBLE_EQ(h.max(), 3.0);
  EXPECT_DOUBLE_EQ(h.sum(), -11.0);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.neg_bucket(1), 1u);
  EXPECT_EQ(h.neg_bucket(2), 1u);
  EXPECT_EQ(h.neg_bucket(4), 1u);
  EXPECT_EQ(h.bucket(2), 1u);

  // JSON serialization keys negative buckets by their (negative) lower bound.
  const JsonValue doc =
      JsonParser::parse(MetricsRegistry::instance().to_json());
  const JsonValue& hist = doc.at("histograms").at("test.signed_hist");
  EXPECT_DOUBLE_EQ(hist.at("buckets").num("-2"), 1.0);
  EXPECT_DOUBLE_EQ(hist.at("buckets").num("-4"), 1.0);
  EXPECT_DOUBLE_EQ(hist.at("buckets").num("-16"), 1.0);
  EXPECT_DOUBLE_EQ(hist.at("buckets").num("1"), 2.0);
  EXPECT_DOUBLE_EQ(hist.at("buckets").num("4"), 1.0);

  h.reset();
  EXPECT_EQ(h.neg_bucket(2), 0u);
  EXPECT_EQ(h.bucket(0), 0u);
}

TEST_F(MetricsTest, HistogramStreamingQuantiles) {
  Histogram& h = MetricsRegistry::instance().histogram("test.quant_hist");
  // Exact below five observations: nearest-rank median of {0.5, 3, 10}.
  h.observe(0.5);
  h.observe(3.0);
  h.observe(10.0);
  EXPECT_DOUBLE_EQ(h.p50(), 3.0);

  // Long pseudo-random uniform stream in [0, 100): the P² estimates must
  // track the true quantiles within a few percent.
  h.reset();
  uint64_t s = 99;
  for (int i = 0; i < 20000; ++i) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    h.observe(100.0 * static_cast<double>(s >> 11) /
              static_cast<double>(1ULL << 53));
  }
  EXPECT_NEAR(h.p50(), 50.0, 3.0);
  EXPECT_NEAR(h.p95(), 95.0, 3.0);

  // Quantiles ride along in the JSON serialization.
  const JsonValue doc =
      JsonParser::parse(MetricsRegistry::instance().to_json());
  const JsonValue& hist = doc.at("histograms").at("test.quant_hist");
  EXPECT_NEAR(hist.num("p50"), 50.0, 3.0);
  EXPECT_NEAR(hist.num("p95"), 95.0, 3.0);

  h.reset();
  EXPECT_DOUBLE_EQ(h.p50(), 0.0);
  EXPECT_DOUBLE_EQ(h.p95(), 0.0);
}

TEST_F(MetricsTest, HistogramSumHelper) {
  MetricsRegistry& reg = MetricsRegistry::instance();
  EXPECT_DOUBLE_EQ(reg.histogram_sum("test.absent"), 0.0);
  reg.histogram("test.sum_hist").observe(2.0);
  reg.histogram("test.sum_hist").observe(3.0);
  EXPECT_DOUBLE_EQ(reg.histogram_sum("test.sum_hist"), 5.0);
}

TEST_F(MetricsTest, DisabledIsAFastNoOp) {
  MetricsRegistry& reg = MetricsRegistry::instance();
  Counter& c = reg.counter("test.off_counter");
  Gauge& g = reg.gauge("test.off_gauge");
  Histogram& h = reg.histogram("test.off_hist");
  c.add(7);
  g.set(7.0);

  reg.set_enabled(false);
  EXPECT_FALSE(MetricsRegistry::enabled());
  c.add(100);
  g.set(100.0);
  h.observe(100.0);
  {
    obs::ScopedTimerMs timer(h);  // must not even read the clock
  }
  EXPECT_EQ(c.value(), 7u);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
  EXPECT_EQ(h.count(), 0u);

  reg.set_enabled(true);
  c.add(1);
  EXPECT_EQ(c.value(), 8u);
}

TEST_F(MetricsTest, ScopedTimerObservesElapsedMs) {
  Histogram& h = MetricsRegistry::instance().histogram("test.timer_hist");
  {
    obs::ScopedTimerMs timer(h);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.max(), 1.0);   // slept ~2 ms
  EXPECT_LT(h.max(), 5e3);   // sanity: not wildly off
}

TEST_F(MetricsTest, JsonRoundTrip) {
  MetricsRegistry& reg = MetricsRegistry::instance();
  reg.counter("rt.counter").add(3);
  reg.gauge("rt.gauge").set(2.5);
  Histogram& h = reg.histogram("rt.hist");
  h.observe(1.5);
  h.observe(6.0);

  const JsonValue doc = JsonParser::parse(reg.to_json());
  ASSERT_TRUE(doc.is_object());
  EXPECT_DOUBLE_EQ(doc.at("counters").num("rt.counter"), 3.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").num("rt.gauge"), 2.5);
  const JsonValue& hist = doc.at("histograms").at("rt.hist");
  EXPECT_DOUBLE_EQ(hist.num("count"), 2.0);
  EXPECT_DOUBLE_EQ(hist.num("sum"), 7.5);
  EXPECT_DOUBLE_EQ(hist.num("min"), 1.5);
  EXPECT_DOUBLE_EQ(hist.num("max"), 6.0);
  // 1.5 lands in [1,2) (upper bound 2), 6.0 in [4,8) (upper bound 8).
  EXPECT_DOUBLE_EQ(hist.at("buckets").num("2"), 1.0);
  EXPECT_DOUBLE_EQ(hist.at("buckets").num("8"), 1.0);
}

TEST_F(MetricsTest, ResetZeroesEverything) {
  MetricsRegistry& reg = MetricsRegistry::instance();
  reg.counter("z.counter").add(5);
  reg.gauge("z.gauge").set(5.0);
  reg.histogram("z.hist").observe(5.0);
  reg.reset();
  EXPECT_EQ(reg.counter("z.counter").value(), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge("z.gauge").value(), 0.0);
  EXPECT_EQ(reg.histogram("z.hist").count(), 0u);
  EXPECT_DOUBLE_EQ(reg.histogram("z.hist").min(), 0.0);
}


// ---- Prometheus text exposition (to_prometheus) ----

namespace {

// Collects the sample lines of one series family, in emission order.
std::vector<std::string> prom_lines(const std::string& text,
                                    const std::string& series) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    if (line.rfind(series, 0) == 0) out.push_back(line);
    pos = eol + 1;
  }
  return out;
}

double prom_value(const std::string& line) {
  return std::atof(line.substr(line.rfind(' ') + 1).c_str());
}

}  // namespace

TEST_F(MetricsTest, SanitizeNameMapsToPrometheusCharset) {
  EXPECT_EQ(MetricsRegistry::sanitize_name("serve.wait_ms"), "serve_wait_ms");
  EXPECT_EQ(MetricsRegistry::sanitize_name("a.b-c d"), "a_b_c_d");
  EXPECT_EQ(MetricsRegistry::sanitize_name("already_ok:series9"),
            "already_ok:series9");
}

TEST_F(MetricsTest, PrometheusCountersAndGaugesExpose) {
  MetricsRegistry& reg = MetricsRegistry::instance();
  reg.counter("prom.test_counter").add(7);
  reg.gauge("prom.test_gauge").set(-2.5);
  const std::string text = reg.to_prometheus("dtp_");
  EXPECT_NE(text.find("# TYPE dtp_prom_test_counter_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("dtp_prom_test_counter_total 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE dtp_prom_test_gauge gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("dtp_prom_test_gauge -2.5\n"), std::string::npos);
  // Exactly one HELP and one TYPE line per family.
  EXPECT_EQ(prom_lines(text, "# HELP dtp_prom_test_counter_total ").size(),
            1u);
  EXPECT_EQ(prom_lines(text, "# TYPE dtp_prom_test_counter_total ").size(),
            1u);
}

TEST_F(MetricsTest, PrometheusHistogramBucketsAreCumulative) {
  MetricsRegistry& reg = MetricsRegistry::instance();
  Histogram& h = reg.histogram("prom.test_hist");
  // One observation per region: negative, zero bucket, [1,2), [2,4), far out.
  h.observe(-3.0);
  h.observe(0.25);
  h.observe(1.5);
  h.observe(3.0);
  h.observe(1000.0);
  const std::string text = reg.to_prometheus("dtp_");
  const auto buckets = prom_lines(text, "dtp_prom_test_hist_bucket{");
  ASSERT_GE(buckets.size(), 4u);
  // Boundaries walk upward and counts only grow.
  double prev = -1.0;
  for (const std::string& line : buckets) {
    const double v = prom_value(line);
    EXPECT_GE(v, prev) << line;
    prev = v;
  }
  // -3 falls in (-4,-2] -> the le="-2" boundary holds exactly one.
  EXPECT_NE(text.find("dtp_prom_test_hist_bucket{le=\"-2\"} 1\n"),
            std::string::npos);
  // The zero bucket folds into le="1": -3 and 0.25 are both <= 1.
  EXPECT_NE(text.find("dtp_prom_test_hist_bucket{le=\"1\"} 2\n"),
            std::string::npos);
  // +Inf always closes the family at the full count.
  EXPECT_EQ(prom_value(buckets.back()), 5.0);
  EXPECT_NE(buckets.back().find("le=\"+Inf\""), std::string::npos);
  const auto count_lines = prom_lines(text, "dtp_prom_test_hist_count ");
  ASSERT_EQ(count_lines.size(), 1u);
  EXPECT_EQ(prom_value(count_lines[0]), 5.0);
  const auto sum_lines = prom_lines(text, "dtp_prom_test_hist_sum ");
  ASSERT_EQ(sum_lines.size(), 1u);
  EXPECT_NEAR(prom_value(sum_lines[0]), 1001.75, 1e-9);
}

}  // namespace
}  // namespace dtp
