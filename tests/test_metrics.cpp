// MetricsRegistry: counter/gauge/histogram semantics, JSON round-trip, and
// the zero-overhead-when-disabled fast path.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "json_test_util.h"
#include "obs/metrics.h"

namespace dtp {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MetricsRegistry;
using test::JsonParser;
using test::JsonValue;

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::instance().set_enabled(true);
    MetricsRegistry::instance().reset();
  }
  void TearDown() override { MetricsRegistry::instance().set_enabled(true); }
};

TEST_F(MetricsTest, CounterAccumulates) {
  Counter& c = MetricsRegistry::instance().counter("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Interned: same name, same instrument.
  EXPECT_EQ(&MetricsRegistry::instance().counter("test.counter"), &c);
}

TEST_F(MetricsTest, CounterIsThreadSafe) {
  Counter& c = MetricsRegistry::instance().counter("test.mt_counter");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.add();
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), 40000u);
}

TEST_F(MetricsTest, GaugeKeepsLastValue) {
  Gauge& g = MetricsRegistry::instance().gauge("test.gauge");
  g.set(1.5);
  g.set(-2.25);
  EXPECT_DOUBLE_EQ(g.value(), -2.25);
}

TEST_F(MetricsTest, HistogramTracksMoments) {
  Histogram& h = MetricsRegistry::instance().histogram("test.hist");
  h.observe(0.5);
  h.observe(3.0);
  h.observe(10.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 13.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
  EXPECT_DOUBLE_EQ(h.mean(), 4.5);
  // Buckets: [0,1) -> k=0, [2,4) -> k=2, [8,16) -> k=4.
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(4), 1u);
}

TEST_F(MetricsTest, HistogramHandlesSignedDomains) {
  // Slack histograms are signed with the violating mass below zero; the
  // bucket boundaries must be stable on both sides (regression: negative
  // observations used to collapse into bucket 0).
  Histogram& h = MetricsRegistry::instance().histogram("test.signed_hist");
  h.observe(-0.25);  // zero bucket (-1, 1)
  h.observe(0.25);   // zero bucket (-1, 1)
  h.observe(-1.0);   // neg bucket 1: (-2, -1]
  h.observe(-3.0);   // neg bucket 2: (-4, -2]
  h.observe(-10.0);  // neg bucket 4: (-16, -8]
  h.observe(3.0);    // pos bucket 2: [2, 4)
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.min(), -10.0);
  EXPECT_DOUBLE_EQ(h.max(), 3.0);
  EXPECT_DOUBLE_EQ(h.sum(), -11.0);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.neg_bucket(1), 1u);
  EXPECT_EQ(h.neg_bucket(2), 1u);
  EXPECT_EQ(h.neg_bucket(4), 1u);
  EXPECT_EQ(h.bucket(2), 1u);

  // JSON serialization keys negative buckets by their (negative) lower bound.
  const JsonValue doc =
      JsonParser::parse(MetricsRegistry::instance().to_json());
  const JsonValue& hist = doc.at("histograms").at("test.signed_hist");
  EXPECT_DOUBLE_EQ(hist.at("buckets").num("-2"), 1.0);
  EXPECT_DOUBLE_EQ(hist.at("buckets").num("-4"), 1.0);
  EXPECT_DOUBLE_EQ(hist.at("buckets").num("-16"), 1.0);
  EXPECT_DOUBLE_EQ(hist.at("buckets").num("1"), 2.0);
  EXPECT_DOUBLE_EQ(hist.at("buckets").num("4"), 1.0);

  h.reset();
  EXPECT_EQ(h.neg_bucket(2), 0u);
  EXPECT_EQ(h.bucket(0), 0u);
}

TEST_F(MetricsTest, HistogramStreamingQuantiles) {
  Histogram& h = MetricsRegistry::instance().histogram("test.quant_hist");
  // Exact below five observations: nearest-rank median of {0.5, 3, 10}.
  h.observe(0.5);
  h.observe(3.0);
  h.observe(10.0);
  EXPECT_DOUBLE_EQ(h.p50(), 3.0);

  // Long pseudo-random uniform stream in [0, 100): the P² estimates must
  // track the true quantiles within a few percent.
  h.reset();
  uint64_t s = 99;
  for (int i = 0; i < 20000; ++i) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    h.observe(100.0 * static_cast<double>(s >> 11) /
              static_cast<double>(1ULL << 53));
  }
  EXPECT_NEAR(h.p50(), 50.0, 3.0);
  EXPECT_NEAR(h.p95(), 95.0, 3.0);

  // Quantiles ride along in the JSON serialization.
  const JsonValue doc =
      JsonParser::parse(MetricsRegistry::instance().to_json());
  const JsonValue& hist = doc.at("histograms").at("test.quant_hist");
  EXPECT_NEAR(hist.num("p50"), 50.0, 3.0);
  EXPECT_NEAR(hist.num("p95"), 95.0, 3.0);

  h.reset();
  EXPECT_DOUBLE_EQ(h.p50(), 0.0);
  EXPECT_DOUBLE_EQ(h.p95(), 0.0);
}

TEST_F(MetricsTest, HistogramSumHelper) {
  MetricsRegistry& reg = MetricsRegistry::instance();
  EXPECT_DOUBLE_EQ(reg.histogram_sum("test.absent"), 0.0);
  reg.histogram("test.sum_hist").observe(2.0);
  reg.histogram("test.sum_hist").observe(3.0);
  EXPECT_DOUBLE_EQ(reg.histogram_sum("test.sum_hist"), 5.0);
}

TEST_F(MetricsTest, DisabledIsAFastNoOp) {
  MetricsRegistry& reg = MetricsRegistry::instance();
  Counter& c = reg.counter("test.off_counter");
  Gauge& g = reg.gauge("test.off_gauge");
  Histogram& h = reg.histogram("test.off_hist");
  c.add(7);
  g.set(7.0);

  reg.set_enabled(false);
  EXPECT_FALSE(MetricsRegistry::enabled());
  c.add(100);
  g.set(100.0);
  h.observe(100.0);
  {
    obs::ScopedTimerMs timer(h);  // must not even read the clock
  }
  EXPECT_EQ(c.value(), 7u);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
  EXPECT_EQ(h.count(), 0u);

  reg.set_enabled(true);
  c.add(1);
  EXPECT_EQ(c.value(), 8u);
}

TEST_F(MetricsTest, ScopedTimerObservesElapsedMs) {
  Histogram& h = MetricsRegistry::instance().histogram("test.timer_hist");
  {
    obs::ScopedTimerMs timer(h);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.max(), 1.0);   // slept ~2 ms
  EXPECT_LT(h.max(), 5e3);   // sanity: not wildly off
}

TEST_F(MetricsTest, JsonRoundTrip) {
  MetricsRegistry& reg = MetricsRegistry::instance();
  reg.counter("rt.counter").add(3);
  reg.gauge("rt.gauge").set(2.5);
  Histogram& h = reg.histogram("rt.hist");
  h.observe(1.5);
  h.observe(6.0);

  const JsonValue doc = JsonParser::parse(reg.to_json());
  ASSERT_TRUE(doc.is_object());
  EXPECT_DOUBLE_EQ(doc.at("counters").num("rt.counter"), 3.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").num("rt.gauge"), 2.5);
  const JsonValue& hist = doc.at("histograms").at("rt.hist");
  EXPECT_DOUBLE_EQ(hist.num("count"), 2.0);
  EXPECT_DOUBLE_EQ(hist.num("sum"), 7.5);
  EXPECT_DOUBLE_EQ(hist.num("min"), 1.5);
  EXPECT_DOUBLE_EQ(hist.num("max"), 6.0);
  // 1.5 lands in [1,2) (upper bound 2), 6.0 in [4,8) (upper bound 8).
  EXPECT_DOUBLE_EQ(hist.at("buckets").num("2"), 1.0);
  EXPECT_DOUBLE_EQ(hist.at("buckets").num("8"), 1.0);
}

TEST_F(MetricsTest, ResetZeroesEverything) {
  MetricsRegistry& reg = MetricsRegistry::instance();
  reg.counter("z.counter").add(5);
  reg.gauge("z.gauge").set(5.0);
  reg.histogram("z.hist").observe(5.0);
  reg.reset();
  EXPECT_EQ(reg.counter("z.counter").value(), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge("z.gauge").value(), 0.0);
  EXPECT_EQ(reg.histogram("z.hist").count(), 0u);
  EXPECT_DOUBLE_EQ(reg.histogram("z.hist").min(), 0.0);
}

}  // namespace
}  // namespace dtp
