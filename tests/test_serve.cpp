// dtp_serve subsystem tests (DESIGN.md §12): scheduling policy, the JSON
// protocol, and the deterministic in-process soak — ≥16 concurrent jobs with
// injected NaN faults, divergence, timeouts, deadline misses, mid-run
// cancellation, pause/resume, preemption, saturation shedding, and a
// drain-then-restart recovery pass.  Everything runs against the real
// JobManager with no sockets, so the schedule is driven purely by the
// deterministic PlacerControl hooks and the manager's own threads (which is
// also what the ThreadSanitizer CI job runs).
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>

#include "common/json_parse.h"
#include "common/json_writer.h"
#include "obs/metrics.h"
#include "serve/manager.h"
#include "serve/protocol.h"
#include "serve/queue.h"
#include "serve/telemetry.h"

using namespace dtp;
using namespace dtp::serve;

namespace {

std::string fresh_dir(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

JobSpec demo_spec(int cells, int iters, const std::string& mode = "wl",
                  const std::string& client = "anon") {
  JobSpec s;
  s.demo_cells = cells;
  s.max_iters = iters;
  s.mode = mode;
  s.client = client;
  return s;
}

ManagerOptions fast_opts(const std::string& artifact_dir = "") {
  ManagerOptions o;
  o.workers = 4;
  o.queue_capacity = 32;
  o.artifact_dir = artifact_dir;
  o.backoff_base_ms = 0;       // retries must not slow the soak down
  o.watchdog_period_sec = 0.005;
  return o;
}

JobState wait_terminal(JobManager& mgr, uint64_t id, double timeout_sec = 30) {
  const auto t0 = std::chrono::steady_clock::now();
  for (;;) {
    const auto rec = mgr.status(id);
    if (rec && job_state_is_terminal(rec->state)) return rec->state;
    if (std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count() > timeout_sec)
      return rec ? rec->state : JobState::Rejected;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

JobState wait_state(JobManager& mgr, uint64_t id, JobState want,
                    double timeout_sec = 30) {
  const auto t0 = std::chrono::steady_clock::now();
  for (;;) {
    const auto rec = mgr.status(id);
    if (rec && rec->state == want) return rec->state;
    if (std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count() > timeout_sec)
      return rec ? rec->state : JobState::Rejected;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

std::vector<std::string> prom_split(const std::string& text) {
  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    if (eol > pos) lines.push_back(text.substr(pos, eol - pos));
    pos = eol + 1;
  }
  return lines;
}

// Value of the first sample line whose name (incl. any label block) matches
// `series` exactly; -1 when the series is absent.
double prom_sample(const std::string& text, const std::string& series) {
  for (const std::string& line : prom_split(text)) {
    if (line.rfind(series + " ", 0) == 0)
      return std::atof(line.substr(series.size() + 1).c_str());
  }
  return -1.0;
}

}  // namespace

// ------------------------------------------------------------------ queue --

TEST(JobQueue, PriorityBeatsEverything) {
  JobQueue q(8);
  q.push({1, 0, "a", 0.0, 1});
  q.push({2, 5, "a", 0.0, 2});
  q.push({3, 1, "b", 0.0, 3});
  QueueEntry e;
  ASSERT_TRUE(q.pick({}, &e));
  EXPECT_EQ(e.id, 2u);
  ASSERT_TRUE(q.pick({}, &e));
  EXPECT_EQ(e.id, 3u);
  ASSERT_TRUE(q.pick({}, &e));
  EXPECT_EQ(e.id, 1u);
  EXPECT_FALSE(q.pick({}, &e));
}

TEST(JobQueue, FairShareAmongEqualPriority) {
  JobQueue q(8);
  q.push({1, 0, "busy", 0.0, 1});
  q.push({2, 0, "idle", 0.0, 2});
  QueueEntry e;
  // "busy" already has 2 jobs running; "idle" has none -> idle goes first
  // despite the later submission.
  ASSERT_TRUE(q.pick({{"busy", 2}}, &e));
  EXPECT_EQ(e.id, 2u);
}

TEST(JobQueue, EarliestDeadlineAmongFairEquals) {
  JobQueue q(8);
  q.push({1, 0, "a", 0.0, 1});    // no deadline: sorts last
  q.push({2, 0, "b", 90.0, 2});
  q.push({3, 0, "c", 10.0, 3});
  QueueEntry e;
  ASSERT_TRUE(q.pick({}, &e));
  EXPECT_EQ(e.id, 3u);
  ASSERT_TRUE(q.pick({}, &e));
  EXPECT_EQ(e.id, 2u);
  ASSERT_TRUE(q.pick({}, &e));
  EXPECT_EQ(e.id, 1u);
}

TEST(JobQueue, FifoIsTheFinalTiebreakAndCapIsEnforced) {
  JobQueue q(2);
  EXPECT_TRUE(q.push({1, 0, "a", 0.0, 1}));
  EXPECT_TRUE(q.push({2, 0, "a", 0.0, 2}));
  EXPECT_FALSE(q.push({3, 0, "a", 0.0, 3}));           // shed
  EXPECT_TRUE(q.push({4, 0, "a", 0.0, 4}, /*force=*/true));  // requeue path
  QueueEntry e;
  ASSERT_TRUE(q.pick({}, &e));
  EXPECT_EQ(e.id, 1u);
}

// ------------------------------------------------------------- spec + json --

TEST(JobSpec, JsonRoundTrip) {
  JobSpec s = demo_spec(500, 300, "dt", "ci");
  s.priority = 7;
  s.deadline_sec = 12.5;
  s.time_budget_sec = 3.0;
  s.fault_spec = "timing_grad@50+2";
  s.fault_seed = 9;
  s.cancel_at_iter = 77;
  JsonWriter w;
  s.to_json(w);
  const JobSpec back = JobSpec::from_json(JsonParser::parse(w.str()));
  EXPECT_EQ(back.demo_cells, 500);
  EXPECT_EQ(back.mode, "dt");
  EXPECT_EQ(back.client, "ci");
  EXPECT_EQ(back.priority, 7);
  EXPECT_DOUBLE_EQ(back.deadline_sec, 12.5);
  EXPECT_EQ(back.fault_spec, "timing_grad@50+2");
  EXPECT_EQ(back.fault_seed, 9u);
  EXPECT_EQ(back.cancel_at_iter, 77);
  EXPECT_EQ(back.pause_at_iter, -1);
}

TEST(JobSpec, ValidateRejectsNonsense) {
  EXPECT_NE(JobSpec{}.validate(), "");  // no workload at all
  JobSpec s = demo_spec(100, 50);
  EXPECT_EQ(s.validate(), "");
  s.mode = "quantum";
  EXPECT_NE(s.validate(), "");
  s = demo_spec(100, 0);
  EXPECT_NE(s.validate(), "");
  s = demo_spec(100, 50);
  s.priority = 1000;
  EXPECT_NE(s.validate(), "");
  s = demo_spec(100, 50);
  s.lib_path = "also_files.lib";
  s.netlist_path = "x.v";
  EXPECT_NE(s.validate(), "");  // demo and files are mutually exclusive
}

// --------------------------------------------------------------- protocol --

TEST(Protocol, MalformedAndUnknownRequestsAnswerCleanly) {
  JobManager mgr(fast_opts());
  bool drain = false;
  for (const char* junk :
       {"", "not json at all", "{\"cmd\":", "[1,2,3]", "{\"cmd\":\"warp\"}",
        "{\"cmd\":\"submit\"}", "{\"cmd\":\"status\"}",
        "{\"cmd\":\"submit\",\"spec\":{\"demo_cells\":\"soup\"}}"}) {
    const std::string resp = handle_request(mgr, junk, &drain);
    const JsonValue v = JsonParser::parse(resp);  // must parse...
    ASSERT_TRUE(v.is_object());
    EXPECT_FALSE(v.at("ok").boolean) << junk;     // ...and must refuse
    EXPECT_FALSE(drain);
  }
}

TEST(Protocol, SubmitStatusStatsDrain) {
  JobManager mgr(fast_opts());
  bool drain = false;
  const std::string resp = handle_request(
      mgr,
      "{\"cmd\":\"submit\",\"spec\":{\"demo_cells\":150,\"max_iters\":30,"
      "\"mode\":\"wl\"}}",
      &drain);
  const JsonValue v = JsonParser::parse(resp);
  ASSERT_TRUE(v.at("ok").boolean) << resp;
  const uint64_t id = static_cast<uint64_t>(v.num("id"));
  EXPECT_EQ(wait_terminal(mgr, id), JobState::Done);

  const JsonValue st = JsonParser::parse(
      handle_request(mgr, "{\"cmd\":\"status\",\"id\":" + std::to_string(id) +
                              "}",
                     &drain));
  EXPECT_EQ(st.at("job").str("state"), "done");

  const JsonValue stats =
      JsonParser::parse(handle_request(mgr, "{\"cmd\":\"stats\"}", &drain));
  EXPECT_EQ(stats.at("stats").num("done"), 1.0);

  handle_request(mgr, "{\"cmd\":\"drain\"}", &drain);
  EXPECT_TRUE(drain);
}

TEST(Protocol, ProfileVerbServesRollingWindowSummary) {
  JobManager mgr(fast_opts());
  bool drain = false;
  const JsonValue whole =
      JsonParser::parse(handle_request(mgr, "{\"cmd\":\"profile\"}", &drain));
  ASSERT_TRUE(whole.at("ok").boolean);
  EXPECT_EQ(whole.at("profile").str("schema"), "dtp.profile.v1");

  const JsonValue windowed = JsonParser::parse(handle_request(
      mgr, "{\"cmd\":\"profile\",\"window_sec\":5}", &drain));
  ASSERT_TRUE(windowed.at("ok").boolean);
  EXPECT_LE(windowed.at("profile").num("window_sec"),
            whole.at("profile").num("duration_sec") + 5.0 + 1.0);

  const JsonValue bad = JsonParser::parse(handle_request(
      mgr, "{\"cmd\":\"profile\",\"window_sec\":\"soon\"}", &drain));
  EXPECT_FALSE(bad.at("ok").boolean);
  const JsonValue negative = JsonParser::parse(handle_request(
      mgr, "{\"cmd\":\"profile\",\"window_sec\":-1}", &drain));
  EXPECT_FALSE(negative.at("ok").boolean);
  mgr.drain();
}

TEST(Protocol, ProfileVerbRefusesWhenProfilerDisabled) {
  ManagerOptions opts = fast_opts();
  opts.profile_hz = 0.0;
  JobManager mgr(opts);
  bool drain = false;
  const JsonValue v =
      JsonParser::parse(handle_request(mgr, "{\"cmd\":\"profile\"}", &drain));
  EXPECT_FALSE(v.at("ok").boolean);
  EXPECT_NE(v.str("error").find("profile"), std::string::npos);
  mgr.drain();
}

// ------------------------------------------------------------------- soak --

TEST(Soak, SixteenJobsWithFaultsAllReachTerminalStates) {
  const std::string art = fresh_dir("dtp_serve_soak");
  ManagerOptions opts = fast_opts(art);
  JobManager mgr(opts);

  std::vector<uint64_t> ids;
  auto submit_ok = [&](const JobSpec& s) {
    const SubmitResult r = mgr.submit(s);
    ASSERT_TRUE(r.accepted) << r.reason;
    ids.push_back(r.id);
  };

  // 1-6: healthy jobs across modes and clients.
  submit_ok(demo_spec(200, 60, "wl", "alice"));
  submit_ok(demo_spec(200, 60, "dt", "alice"));
  submit_ok(demo_spec(150, 50, "nw", "bob"));
  submit_ok(demo_spec(250, 40, "wl", "bob"));
  submit_ok(demo_spec(150, 80, "dt", "carol"));
  submit_ok(demo_spec(200, 30, "wl", "carol"));
  // 7: persistent NaN-position faults exhaust the recovery budget, the
  // retry, and the WL-only fallback -> Failed.
  {
    JobSpec s = demo_spec(150, 60, "dt", "chaos");
    s.fault_spec = "position@5+forever";
    s.max_retries = 1;
    submit_ok(s);
  }
  // 8: unrecoverable gradient poisoning, no retries -> Failed (the
  // wirelength-only fallback also sees the faults).
  {
    JobSpec s = demo_spec(150, 60, "wl", "chaos");
    s.fault_spec = "total_grad@5+forever";
    s.max_retries = 0;
    submit_ok(s);
  }
  // 9: recoverable fault burst -> internal rollbacks, job still Done.
  {
    JobSpec s = demo_spec(150, 60, "wl", "chaos");
    s.fault_spec = "total_grad@10+2*8";
    submit_ok(s);
  }
  // 10: deterministic cancel mid-run.
  {
    JobSpec s = demo_spec(200, 4000, "wl", "dave");
    s.cancel_at_iter = 15;
    submit_ok(s);
  }
  // 11: deterministic pause mid-run; resumed below.
  {
    JobSpec s = demo_spec(200, 60, "wl", "dave");
    s.pause_at_iter = 10;
    submit_ok(s);
  }
  // 12: per-attempt wall budget -> TimedOut with a valid placement.
  {
    JobSpec s = demo_spec(300, 100000, "wl", "erin");
    s.time_budget_sec = 0.02;
    submit_ok(s);
  }
  // 13: deadline so tight the watchdog fires -> TimedOut.
  {
    JobSpec s = demo_spec(300, 100000, "wl", "erin");
    s.deadline_sec = 0.05;
    submit_ok(s);
  }
  // 14-16: more healthy load while the chaos jobs churn.
  submit_ok(demo_spec(150, 40, "wl", "frank"));
  submit_ok(demo_spec(150, 40, "dt", "frank"));
  submit_ok(demo_spec(150, 40, "wl", "grace"));
  ASSERT_GE(ids.size(), 16u);

  // The paused job parks; resume it once it gets there.
  EXPECT_EQ(wait_state(mgr, ids[10], JobState::Paused), JobState::Paused);
  EXPECT_TRUE(mgr.resume(ids[10]));

  // Scrape #1 while the soak is still churning; compared against the
  // post-drain scrape below, every terminal counter must be monotone.
  const std::string scrape_mid = mgr.prometheus();

  ASSERT_TRUE(mgr.wait_idle(120.0)) << mgr.stats_json();

  // Every accepted job reached a definite terminal state.
  EXPECT_EQ(wait_terminal(mgr, ids[0]), JobState::Done);
  EXPECT_EQ(wait_terminal(mgr, ids[5]), JobState::Done);
  EXPECT_EQ(wait_terminal(mgr, ids[6]), JobState::Failed);
  EXPECT_EQ(wait_terminal(mgr, ids[7]), JobState::Failed);
  EXPECT_EQ(wait_terminal(mgr, ids[8]), JobState::Done);
  EXPECT_EQ(wait_terminal(mgr, ids[9]), JobState::Cancelled);
  EXPECT_EQ(wait_terminal(mgr, ids[10]), JobState::Done);
  EXPECT_EQ(wait_terminal(mgr, ids[11]), JobState::TimedOut);
  EXPECT_EQ(wait_terminal(mgr, ids[12]), JobState::TimedOut);
  for (uint64_t id : ids) {
    const auto rec = mgr.status(id);
    ASSERT_TRUE(rec.has_value());
    EXPECT_TRUE(job_state_is_terminal(rec->state))
        << "job " << id << " ended as " << job_state_name(rec->state);
  }

  // The failed job consumed its retry and its WL-only fallback.
  {
    const auto rec = mgr.status(ids[6]);
    EXPECT_EQ(rec->retries, 1);
    EXPECT_TRUE(rec->degraded);
    EXPECT_GE(rec->attempts, 3);
  }
  // Bookkeeping adds up and the terminal counters partition the accepts.
  const ManagerStats st = mgr.stats();
  EXPECT_EQ(st.accepted, ids.size());
  EXPECT_EQ(st.rejected, 0u);
  EXPECT_EQ(st.submitted, st.accepted + st.rejected);
  EXPECT_EQ(st.done + st.failed + st.timeout + st.cancelled, st.accepted);
  EXPECT_EQ(st.queue_depth, 0u);
  EXPECT_EQ(st.running, 0);

  // Scrape #2: the exposition stayed parseable under load and every counter
  // only moved forward between the two scrapes.
  const std::string scrape_end = mgr.prometheus();
  for (const char* series :
       {"dtp_serve_submitted_total", "dtp_serve_accepted_total",
        "dtp_serve_done_total", "dtp_serve_failed_total",
        "dtp_serve_timeout_total", "dtp_serve_cancelled_total",
        "dtp_serve_preemptions_total"}) {
    const double before = prom_sample(scrape_mid, series);
    const double after = prom_sample(scrape_end, series);
    EXPECT_GE(after, before) << series << " went backwards";
  }
  // The gauges are fresh after the last transition, not stuck at submit time.
  EXPECT_EQ(prom_sample(scrape_end, "dtp_serve_queue_depth"), 0.0);
  EXPECT_EQ(prom_sample(scrape_end, "dtp_serve_running"), 0.0);

  // The event ring saw every accepted job through to a terminal event.
  {
    uint64_t next = 0, gap = 0;
    const auto evs = mgr.events_since(0, &next, &gap);
    EXPECT_EQ(gap, 0u);  // default capacity comfortably holds the soak
    std::set<uint64_t> terminal_jobs;
    for (const ServeEvent& e : evs)
      if (e.kind == "terminal") terminal_jobs.insert(e.job);
    for (uint64_t id : ids)
      EXPECT_EQ(terminal_jobs.count(id), 1u)
          << "job " << id << " has no terminal event";
  }

  // The merged trace carries spans from many distinct job tracks.
  {
    const std::string trace_path = art + "/trace.json";
    ASSERT_TRUE(mgr.write_trace(trace_path));
    std::ifstream in(trace_path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    const JsonValue doc = JsonParser::parse(ss.str());
    std::set<double> job_tracks;
    for (const JsonValue& e : doc.at("traceEvents").array)
      if (e.str_or("ph", "") == "X" && e.num_or("tid", 0) > 0)
        job_tracks.insert(e.num("tid"));
    EXPECT_GE(job_tracks.size(), 2u);
    EXPECT_GE(mgr.spans().num_tracks(), 2u);
  }

  // Per-job artifact streams exist and end with a run_end record.
  for (uint64_t id : {ids[0], ids[10]}) {
    std::ifstream in(art + "/job-" + std::to_string(id) + ".jsonl");
    ASSERT_TRUE(in.good());
    std::string line, last_type;
    while (std::getline(in, line)) {
      const JsonValue v = JsonParser::parse(line);
      last_type = v.str_or("type", "");
    }
    EXPECT_EQ(last_type, "run_end");
  }
}

TEST(Soak, PreemptionCheckpointsAndRequeuesTheVictim) {
  ManagerOptions opts = fast_opts();
  opts.workers = 1;  // force contention
  JobManager mgr(opts);

  const SubmitResult low = mgr.submit(demo_spec(400, 100000, "wl", "slow"));
  ASSERT_TRUE(low.accepted);
  EXPECT_EQ(wait_state(mgr, low.id, JobState::Running), JobState::Running);

  JobSpec urgent = demo_spec(150, 30, "wl", "fast");
  urgent.priority = 10;
  const SubmitResult high = mgr.submit(urgent);
  ASSERT_TRUE(high.accepted);

  EXPECT_EQ(wait_terminal(mgr, high.id), JobState::Done);
  // The victim went back to the queue with a checkpoint and finishes later.
  mgr.cancel(low.id);  // don't sit through 100k iterations
  const JobState final_low = wait_terminal(mgr, low.id);
  EXPECT_TRUE(final_low == JobState::Cancelled || final_low == JobState::Done);
  const auto rec = mgr.status(low.id);
  EXPECT_GE(rec->preemptions, 1);
  EXPECT_GE(mgr.stats().preemptions, 1u);
}

TEST(Soak, SaturationShedsWithRejectedOverload) {
  ManagerOptions opts = fast_opts();
  opts.workers = 1;
  opts.queue_capacity = 2;
  JobManager mgr(opts);

  // One running + two queued fills the service.
  const SubmitResult a = mgr.submit(demo_spec(400, 100000, "wl", "a"));
  ASSERT_TRUE(a.accepted);
  EXPECT_EQ(wait_state(mgr, a.id, JobState::Running), JobState::Running);
  const SubmitResult b = mgr.submit(demo_spec(150, 20, "wl", "b"));
  const SubmitResult c = mgr.submit(demo_spec(150, 20, "wl", "c"));
  ASSERT_TRUE(b.accepted);
  ASSERT_TRUE(c.accepted);

  ManagerOptions no_preempt = opts;
  const SubmitResult shed = mgr.submit(demo_spec(150, 20, "wl", "d"));
  EXPECT_FALSE(shed.accepted);
  EXPECT_EQ(shed.reason, "rejected:overload");
  const auto rec = mgr.status(shed.id);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->state, JobState::Rejected);

  // Invalid specs are shed with a diagnostic, not enqueued.
  const SubmitResult invalid = mgr.submit(JobSpec{});
  EXPECT_FALSE(invalid.accepted);
  EXPECT_NE(invalid.reason.find("rejected:invalid"), std::string::npos);

  mgr.cancel(a.id);
  EXPECT_TRUE(mgr.wait_idle(60.0));
  EXPECT_EQ(mgr.stats().rejected, 2u);
}

TEST(Soak, DrainCheckpointsJournalsAndRestartRecovers) {
  const std::string art = fresh_dir("dtp_serve_drain");
  std::vector<uint64_t> unfinished;
  {
    ManagerOptions opts = fast_opts(art);
    opts.workers = 2;
    JobManager mgr(opts);
    // Two long runners occupy both workers; two more sit queued.
    const SubmitResult r1 = mgr.submit(demo_spec(300, 100000, "wl", "a"));
    const SubmitResult r2 = mgr.submit(demo_spec(300, 100000, "wl", "b"));
    ASSERT_TRUE(r1.accepted);
    ASSERT_TRUE(r2.accepted);
    EXPECT_EQ(wait_state(mgr, r1.id, JobState::Running), JobState::Running);
    EXPECT_EQ(wait_state(mgr, r2.id, JobState::Running), JobState::Running);
    // Let both runs make real progress so the drain checkpoints carry a
    // positive iteration (status() reports the live placer iteration).
    for (uint64_t id : {r1.id, r2.id}) {
      const auto t0 = std::chrono::steady_clock::now();
      while (mgr.status(id)->outcome.iterations < 2 &&
             std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
                     .count() < 30)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    const SubmitResult q1 = mgr.submit(demo_spec(150, 25, "wl", "c"));
    const SubmitResult q2 = mgr.submit(demo_spec(150, 25, "wl", "d"));
    ASSERT_TRUE(q1.accepted);
    ASSERT_TRUE(q2.accepted);
    unfinished = {r1.id, r2.id, q1.id, q2.id};

    mgr.drain();
    EXPECT_TRUE(mgr.draining());
    // Drain parked the running jobs with checkpoints; nothing is terminal.
    for (uint64_t id : {r1.id, r2.id})
      EXPECT_EQ(mgr.status(id)->state, JobState::Paused);
    // A post-drain submit is refused, not silently dropped.
    const SubmitResult late = mgr.submit(demo_spec(150, 20, "wl", "e"));
    EXPECT_FALSE(late.accepted);
    EXPECT_EQ(late.reason, "rejected:draining");
  }

  // The journal holds the accepted jobs and at least one mid-run checkpoint.
  {
    std::ifstream in(art + "/journal.jsonl");
    ASSERT_TRUE(in.good());
    std::string line;
    int accepts = 0, ckpts = 0;
    while (std::getline(in, line)) {
      const JsonValue v = JsonParser::parse(line);
      const std::string ev = v.str_or("ev", "");
      if (ev == "accept") ++accepts;
      if (ev == "ckpt") {
        ++ckpts;
        EXPECT_GT(v.num("iter"), 0.0);
      }
    }
    EXPECT_EQ(accepts, 4);
    EXPECT_GE(ckpts, 2);
  }

  // Restart over the same artifact directory: every unfinished job is
  // re-admitted (resuming from its checkpoint where one exists) and runs to
  // a terminal state.  Cap the long runs so the test finishes quickly.
  {
    ManagerOptions opts = fast_opts(art);
    JobManager mgr(opts);
    EXPECT_EQ(mgr.stats().recovered, 4u);
    for (uint64_t id : unfinished) {
      const auto rec = mgr.status(id);
      ASSERT_TRUE(rec.has_value());
      EXPECT_TRUE(rec->recovered);
      if (rec->spec.max_iters > 1000) mgr.cancel(id);
    }
    ASSERT_TRUE(mgr.wait_idle(120.0)) << mgr.stats_json();
    for (uint64_t id : unfinished)
      EXPECT_TRUE(job_state_is_terminal(mgr.status(id)->state))
          << "job " << id << ": " << job_state_name(mgr.status(id)->state);
  }
}

// -------------------------------------------------------------- telemetry --

TEST(Telemetry, EventRingSinceCursorSemantics) {
  EventRing ring(8);
  uint64_t next = 99, gap = 99;
  EXPECT_TRUE(ring.since(0, &next, &gap).empty());
  EXPECT_EQ(next, 0u);
  EXPECT_EQ(gap, 0u);

  ring.push("accept", 1, "queued", "ci wl prio 0");
  ring.push("state", 1, "running");
  auto evs = ring.since(0, &next, &gap);
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_EQ(evs[0].seq, 1u);
  EXPECT_EQ(evs[0].kind, "accept");
  EXPECT_EQ(evs[0].job, 1u);
  EXPECT_GT(evs[0].ts_ms, 0);
  EXPECT_EQ(evs[1].seq, 2u);
  EXPECT_EQ(next, 2u);
  EXPECT_EQ(gap, 0u);

  // Tailing from the returned cursor is incremental: nothing new -> empty,
  // cursor unchanged; one more push -> exactly that event.
  EXPECT_TRUE(ring.since(next, &next, &gap).empty());
  EXPECT_EQ(next, 2u);
  ring.push("terminal", 1, "done");
  evs = ring.since(next, &next, &gap);
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].kind, "terminal");
  EXPECT_EQ(next, 3u);
}

TEST(Telemetry, EventRingOverflowReportsExplicitGap) {
  EventRing ring(4);
  for (uint64_t i = 1; i <= 10; ++i) ring.push("state", i);
  uint64_t next = 0, gap = 0;
  auto evs = ring.since(0, &next, &gap);
  // Only the newest `capacity` events survive; the 6 lost ones are counted,
  // not silently skipped.
  ASSERT_EQ(evs.size(), 4u);
  EXPECT_EQ(gap, 6u);
  EXPECT_EQ(evs.front().seq, 7u);
  EXPECT_EQ(evs.back().seq, 10u);
  EXPECT_EQ(next, 10u);
  // A cursor inside the retained window reads gap-free.
  evs = ring.since(8, &next, &gap);
  EXPECT_EQ(evs.size(), 2u);
  EXPECT_EQ(gap, 0u);
}

TEST(Telemetry, SpanLogMergesTracksIntoOneChromeTrace) {
  SpanLog log(8);
  log.span("run", 1, 0.0, 0.5, "wl");
  log.span("run", 2, 0.1, 0.2);
  log.instant("preempt", 1, 0.3, "by job 2");
  EXPECT_EQ(log.num_tracks(), 2u);

  const JsonValue doc = JsonParser::parse(log.to_chrome_json());
  ASSERT_TRUE(doc.at("traceEvents").is_array());
  size_t meta = 0, complete = 0, instants = 0;
  std::set<double> tids;
  for (const JsonValue& e : doc.at("traceEvents").array) {
    const std::string ph = e.str("ph");
    if (ph == "M") {
      ++meta;
    } else if (ph == "X") {
      ++complete;
      tids.insert(e.num("tid"));
      EXPECT_GE(e.num("dur"), 0.0);
    } else if (ph == "i") {
      ++instants;
      EXPECT_EQ(e.str("s"), "t");
    }
    EXPECT_EQ(e.num("pid"), 1.0);  // one daemon process
  }
  EXPECT_EQ(meta, 3u);  // process_name + thread_name per track
  EXPECT_EQ(complete, 2u);
  EXPECT_EQ(instants, 1u);
  EXPECT_EQ(tids.size(), 2u);

  // The cap drops the newest span (keeps the session's beginning) and counts.
  SpanLog tiny(1);
  tiny.span("a", 1, 0.0, 1.0);
  tiny.span("b", 1, 1.0, 2.0);
  EXPECT_EQ(tiny.size(), 1u);
  EXPECT_EQ(tiny.dropped(), 1u);
  EXPECT_EQ(tiny.spans()[0].name, "a");
}

TEST(Telemetry, PrometheusExpositionIsWellFormed) {
  JobManager mgr(fast_opts());
  const SubmitResult r = mgr.submit(demo_spec(150, 30));
  ASSERT_TRUE(r.accepted);
  EXPECT_EQ(wait_terminal(mgr, r.id), JobState::Done);
  const std::string text = mgr.prometheus();

  // Structural validation: every line is a HELP/TYPE comment or a
  // "name[{labels}] value" sample, one HELP + one TYPE per family, and the
  // family's TYPE precedes its first sample.
  std::map<std::string, int> helps, types;
  std::set<std::string> sampled;
  for (const std::string& line : prom_split(text)) {
    if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
      const std::string rest = line.substr(7);
      const std::string family = rest.substr(0, rest.find(' '));
      ASSERT_FALSE(family.empty()) << line;
      if (line[2] == 'H') {
        EXPECT_EQ(++helps[family], 1) << "duplicate HELP: " << family;
      } else {
        EXPECT_EQ(++types[family], 1) << "duplicate TYPE: " << family;
        EXPECT_EQ(sampled.count(family), 0u)
            << "TYPE after samples: " << family;
      }
      continue;
    }
    const size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    std::string name = line.substr(0, sp);
    const size_t brace = name.find('{');
    if (brace != std::string::npos) name = name.substr(0, brace);
    EXPECT_EQ(name.find_first_not_of(
                  "abcdefghijklmnopqrstuvwxyz"
                  "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:"),
              std::string::npos)
        << "bad metric name: " << name;
    sampled.insert(name);
  }

  // The serve series the dashboards scrape are all present.
  EXPECT_GE(prom_sample(text, "dtp_serve_submitted_total"), 1.0);
  EXPECT_GE(prom_sample(text, "dtp_serve_done_total"), 1.0);
  EXPECT_EQ(prom_sample(text, "dtp_serve_queue_depth"), 0.0);
  EXPECT_EQ(prom_sample(text, "dtp_serve_running"), 0.0);
  EXPECT_EQ(prom_sample(text, "dtp_serve_up"), 1.0);
  // This manager's live job table: exactly the one done job.
  EXPECT_EQ(prom_sample(text, "dtp_serve_job_state{state=\"done\"}"), 1.0);
  EXPECT_EQ(prom_sample(text, "dtp_serve_job_state{state=\"queued\"}"), 0.0);

  // Histogram families close with le="+Inf" equal to _count, and bucket
  // counts are cumulative (non-decreasing in emission order).
  for (const char* fam : {"dtp_serve_wait_ms", "dtp_serve_service_ms"}) {
    const std::string prefix = std::string(fam) + "_bucket{";
    double prev = -1.0, last = -1.0;
    for (const std::string& line : prom_split(text)) {
      if (line.rfind(prefix, 0) != 0) continue;
      const double v = std::atof(line.substr(line.rfind(' ') + 1).c_str());
      EXPECT_GE(v, prev) << line;
      prev = last = v;
    }
    ASSERT_GE(last, 0.0) << fam << " has no buckets";
    EXPECT_EQ(last, prom_sample(text, std::string(fam) + "_count"));
  }
}

TEST(Telemetry, ManagerEventsAndJournalShareTheTimeline) {
  const std::string art = fresh_dir("dtp_serve_timeline");
  JobManager mgr(fast_opts(art));
  const SubmitResult r = mgr.submit(demo_spec(150, 25));
  ASSERT_TRUE(r.accepted);
  EXPECT_EQ(wait_terminal(mgr, r.id), JobState::Done);

  // The ring tells the job's whole story: accept -> running -> terminal.
  uint64_t next = 0, gap = 0;
  const auto evs = mgr.events_since(0, &next, &gap);
  EXPECT_EQ(gap, 0u);
  std::vector<std::string> kinds;
  for (const ServeEvent& e : evs)
    if (e.job == r.id) kinds.push_back(e.kind);
  ASSERT_GE(kinds.size(), 3u);
  EXPECT_EQ(kinds.front(), "accept");
  EXPECT_EQ(kinds.back(), "terminal");
  int64_t prev_ts = 0;
  for (const ServeEvent& e : evs) {
    EXPECT_GE(e.ts_ms, prev_ts);  // wall clock is monotone within the ring
    prev_ts = e.ts_ms;
  }

  // Every journal record is stamped with ts_ms and a strictly increasing
  // process-wide seq, so offline tools can merge streams on one timeline.
  std::ifstream in(art + "/journal.jsonl");
  ASSERT_TRUE(in.good());
  std::string line;
  double prev_seq = 0.0;
  size_t records = 0;
  bool saw_terminal = false;
  while (std::getline(in, line)) {
    const JsonValue v = JsonParser::parse(line);
    ++records;
    EXPECT_GT(v.num_or("ts_ms", 0), 0.0) << line;
    EXPECT_GT(v.num_or("seq", 0), prev_seq) << line;
    prev_seq = v.num_or("seq", 0);
    if (v.str_or("ev", "") == "terminal") {
      saw_terminal = true;
      // The extended terminal record carries the session-report fields.
      EXPECT_TRUE(v.has("wait_sec")) << line;
      EXPECT_TRUE(v.has("run_sec")) << line;
      EXPECT_TRUE(v.has("retries")) << line;
    }
  }
  EXPECT_GE(records, 2u);
  EXPECT_TRUE(saw_terminal);
}

TEST(Telemetry, ProtocolMetricsAndEventsVerbs) {
  JobManager mgr(fast_opts());
  const SubmitResult r = mgr.submit(demo_spec(150, 25));
  ASSERT_TRUE(r.accepted);
  EXPECT_EQ(wait_terminal(mgr, r.id), JobState::Done);

  bool drain = false;
  const JsonValue m =
      JsonParser::parse(handle_request(mgr, R"({"cmd":"metrics"})", &drain));
  ASSERT_TRUE(m.at("ok").boolean);
  EXPECT_EQ(m.str("format"), "prometheus");
  EXPECT_NE(m.str("text").find("dtp_serve_submitted_total"),
            std::string::npos);

  const JsonValue e = JsonParser::parse(
      handle_request(mgr, R"({"cmd":"events","since":0})", &drain));
  ASSERT_TRUE(e.at("ok").boolean);
  ASSERT_TRUE(e.at("events").is_array());
  ASSERT_GE(e.at("events").array.size(), 3u);
  EXPECT_EQ(e.num("gap"), 0.0);
  const double cursor = e.num("next_since");
  EXPECT_GT(cursor, 0.0);
  for (const JsonValue& ev : e.at("events").array) {
    EXPECT_GT(ev.num("seq"), 0.0);
    EXPECT_GT(ev.num("ts_ms"), 0.0);
    EXPECT_FALSE(ev.str("kind").empty());
  }

  // Cursor resumes cleanly; junk cursors answer with a diagnostic.
  const JsonValue e2 = JsonParser::parse(handle_request(
      mgr,
      R"({"cmd":"events","since":)" + std::to_string(int64_t(cursor)) + "}",
      &drain));
  ASSERT_TRUE(e2.at("ok").boolean);
  EXPECT_TRUE(e2.at("events").array.empty());
  const JsonValue bad = JsonParser::parse(
      handle_request(mgr, R"({"cmd":"events","since":"x"})", &drain));
  EXPECT_FALSE(bad.at("ok").boolean);
}

TEST(Telemetry, GaugesTrackEveryTransitionNotJustSubmit) {
  ManagerOptions opts = fast_opts();
  opts.workers = 1;
  JobManager mgr(opts);
  auto& reg = dtp::obs::MetricsRegistry::instance();

  const SubmitResult runs = mgr.submit(demo_spec(300, 100000, "wl", "a"));
  ASSERT_TRUE(runs.accepted);
  EXPECT_EQ(wait_state(mgr, runs.id, JobState::Running), JobState::Running);
  const SubmitResult waits = mgr.submit(demo_spec(150, 20, "wl", "b"));
  ASSERT_TRUE(waits.accepted);
  EXPECT_EQ(reg.gauge("serve.queue_depth").value(), 1.0);
  EXPECT_EQ(reg.gauge("serve.running").value(), 1.0);

  // Pausing the queued job must refresh queue_depth without a submit.
  ASSERT_TRUE(mgr.pause(waits.id));
  EXPECT_EQ(reg.gauge("serve.queue_depth").value(), 0.0);
  EXPECT_EQ(reg.gauge("serve.paused").value(), 1.0);
  ASSERT_TRUE(mgr.resume(waits.id));
  EXPECT_EQ(reg.gauge("serve.queue_depth").value(), 1.0);
  EXPECT_EQ(reg.gauge("serve.paused").value(), 0.0);

  mgr.cancel(runs.id);
  mgr.cancel(waits.id);
  ASSERT_TRUE(mgr.wait_idle(60.0));
  EXPECT_EQ(reg.gauge("serve.queue_depth").value(), 0.0);
  EXPECT_EQ(reg.gauge("serve.running").value(), 0.0);
}
