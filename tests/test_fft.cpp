// FFT and half-sample transform kernels: validated against naive DFT /
// direct trigonometric sums, plus Poisson fast-path vs slow-path agreement.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "common/rng.h"
#include "placer/fft.h"
#include "placer/poisson.h"

namespace dtp::placer {
namespace {

constexpr double kPi = 3.14159265358979323846;

void naive_dft(const std::vector<double>& re_in, const std::vector<double>& im_in,
               std::vector<double>& re_out, std::vector<double>& im_out,
               bool invert) {
  const size_t n = re_in.size();
  re_out.assign(n, 0.0);
  im_out.assign(n, 0.0);
  const double sgn = invert ? 1.0 : -1.0;
  for (size_t k = 0; k < n; ++k) {
    for (size_t j = 0; j < n; ++j) {
      const double theta = sgn * 2.0 * kPi * static_cast<double>(k * j) /
                           static_cast<double>(n);
      re_out[k] += re_in[j] * std::cos(theta) - im_in[j] * std::sin(theta);
      im_out[k] += re_in[j] * std::sin(theta) + im_in[j] * std::cos(theta);
    }
  }
}

class FftSizes : public ::testing::TestWithParam<int> {};

TEST_P(FftSizes, MatchesNaiveDft) {
  const size_t n = static_cast<size_t>(GetParam());
  Rng rng(n);
  std::vector<double> re(n), im(n);
  for (size_t i = 0; i < n; ++i) {
    re[i] = rng.uniform(-1, 1);
    im[i] = rng.uniform(-1, 1);
  }
  std::vector<double> ref_re, ref_im;
  naive_dft(re, im, ref_re, ref_im, false);

  Fft fft(n);
  auto fr = re, fi = im;
  fft.forward(fr, fi);
  for (size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(fr[k], ref_re[k], 1e-9 * static_cast<double>(n));
    EXPECT_NEAR(fi[k], ref_im[k], 1e-9 * static_cast<double>(n));
  }
  // inverse(forward(x)) == n * x.
  fft.inverse(fr, fi);
  for (size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(fr[k], re[k] * static_cast<double>(n), 1e-9 * static_cast<double>(n));
    EXPECT_NEAR(fi[k], im[k] * static_cast<double>(n), 1e-9 * static_cast<double>(n));
  }
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, FftSizes,
                         ::testing::Values(2, 4, 8, 16, 64, 256));

class HalfSampleSizes : public ::testing::TestWithParam<int> {};

TEST_P(HalfSampleSizes, KernelsMatchDirectSums) {
  const size_t m = static_cast<size_t>(GetParam());
  HalfSampleTransform fast(m);
  Rng rng(m * 7);
  std::vector<double> in(m), out(m);
  for (auto& x : in) x = rng.uniform(-2, 2);

  auto direct = [&](auto f) {
    std::vector<double> ref(m, 0.0);
    for (size_t a = 0; a < m; ++a)
      for (size_t b = 0; b < m; ++b) ref[a] += f(a, b) * in[b];
    return ref;
  };

  fast.dct2(in.data(), out.data());
  auto ref = direct([&](size_t u, size_t x) {
    return std::cos(kPi * static_cast<double>(u) * (static_cast<double>(x) + 0.5) /
                    static_cast<double>(m));
  });
  for (size_t i = 0; i < m; ++i) EXPECT_NEAR(out[i], ref[i], 1e-9 * m);

  fast.eval_cos(in.data(), out.data());
  ref = direct([&](size_t x, size_t u) {
    return std::cos(kPi * static_cast<double>(u) * (static_cast<double>(x) + 0.5) /
                    static_cast<double>(m));
  });
  for (size_t i = 0; i < m; ++i) EXPECT_NEAR(out[i], ref[i], 1e-9 * m);

  fast.eval_sin(in.data(), out.data());
  ref = direct([&](size_t x, size_t u) {
    return std::sin(kPi * static_cast<double>(u) * (static_cast<double>(x) + 0.5) /
                    static_cast<double>(m));
  });
  for (size_t i = 0; i < m; ++i) EXPECT_NEAR(out[i], ref[i], 1e-9 * m);
}

INSTANTIATE_TEST_SUITE_P(Mixed, HalfSampleSizes,
                         ::testing::Values(2, 8, 32, 128,  // FFT path
                                           3, 12, 100));   // direct path

TEST(HalfSample, FastFlagReflectsSize) {
  EXPECT_TRUE(HalfSampleTransform(64).fast());
  EXPECT_FALSE(HalfSampleTransform(96).fast());
}

TEST(HalfSample, Dct2ThenEvalCosRoundTrips) {
  // eval_cos(alpha-scaled dct2(x)) reconstructs x (completeness of the basis).
  const size_t m = 32;
  HalfSampleTransform t(m);
  Rng rng(3);
  std::vector<double> x(m), coef(m), back(m);
  for (auto& v : x) v = rng.uniform(-1, 1);
  t.dct2(x.data(), coef.data());
  coef[0] *= 1.0 / static_cast<double>(m);
  for (size_t u = 1; u < m; ++u) coef[u] *= 2.0 / static_cast<double>(m);
  t.eval_cos(coef.data(), back.data());
  for (size_t i = 0; i < m; ++i) EXPECT_NEAR(back[i], x[i], 1e-10);
}

TEST(Poisson, FftPathMatchesDirectPath) {
  // 64 runs the FFT path; 63 runs direct sums.  On a common 63x63 subproblem
  // they cannot be compared directly, so instead compare 64 FFT vs a
  // direct-sum reference computed here.
  const int m = 64;
  const double w = 80.0;
  PoissonSolver solver(m, w, w);
  ASSERT_TRUE(solver.uses_fft());
  Rng rng(17);
  std::vector<double> rho(static_cast<size_t>(m) * m);
  for (auto& r : rho) r = rng.uniform(0.0, 1.0);
  std::vector<double> psi, ex, ey;
  solver.solve(rho, psi, ex, ey);

  // Direct spectral reference.
  std::vector<double> coef(static_cast<size_t>(m) * m, 0.0);
  auto C = [&](int u, int x) {
    return std::cos(kPi * u * (x + 0.5) / m);
  };
  auto S = [&](int u, int x) {
    return std::sin(kPi * u * (x + 0.5) / m);
  };
  for (int u = 0; u < m; ++u)
    for (int v = 0; v < m; ++v) {
      double acc = 0.0;
      for (int x = 0; x < m; ++x)
        for (int y = 0; y < m; ++y)
          acc += rho[static_cast<size_t>(x) * m + y] * C(u, x) * C(v, y);
      const double ku = kPi * u / w, kv = kPi * v / w;
      const double au = (u == 0 ? 1.0 : 2.0) / m, av = (v == 0 ? 1.0 : 2.0) / m;
      coef[static_cast<size_t>(u) * m + v] =
          (u == 0 && v == 0) ? 0.0 : acc * au * av / (ku * ku + kv * kv);
    }
  // Spot-check a handful of grid points (full O(m^4) reconstruction is slow).
  Rng pick(5);
  for (int k = 0; k < 12; ++k) {
    const int x = static_cast<int>(pick.uniform_int(0, m - 1));
    const int y = static_cast<int>(pick.uniform_int(0, m - 1));
    double p = 0.0, fx = 0.0, fy = 0.0;
    for (int u = 0; u < m; ++u)
      for (int v = 0; v < m; ++v) {
        const double c = coef[static_cast<size_t>(u) * m + v];
        p += c * C(u, x) * C(v, y);
        fx += c * (kPi * u / w) * S(u, x) * C(v, y);
        fy += c * (kPi * v / w) * C(u, x) * S(v, y);
      }
    const size_t i = static_cast<size_t>(x) * m + y;
    EXPECT_NEAR(psi[i], p, 1e-7);
    EXPECT_NEAR(ex[i], fx, 1e-7);
    EXPECT_NEAR(ey[i], fy, 1e-7);
  }
}

}  // namespace
}  // namespace dtp::placer
