// Kernel-layer transform validation: the radix-2 FFT against a naive DFT,
// and the DctPlan real-to-complex fast path against the HalfSampleDirect
// O(m^2) oracle — equivalence across sizes plus the transform properties
// (round-trip, Parseval, linearity) that pin down the half-sample basis.
// Non-power-of-two coverage runs through the oracle and the PoissonSolver
// fallback path.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "kernels/fft.h"
#include "kernels/kernel_backend.h"
#include "kernels/transform.h"
#include "placer/poisson.h"

namespace dtp::kernels {
namespace {

constexpr double kPi = 3.14159265358979323846;

void naive_dft(const std::vector<double>& re_in, const std::vector<double>& im_in,
               std::vector<double>& re_out, std::vector<double>& im_out,
               bool invert) {
  const size_t n = re_in.size();
  re_out.assign(n, 0.0);
  im_out.assign(n, 0.0);
  const double sgn = invert ? 1.0 : -1.0;
  for (size_t k = 0; k < n; ++k) {
    for (size_t j = 0; j < n; ++j) {
      const double theta = sgn * 2.0 * kPi * static_cast<double>(k * j) /
                           static_cast<double>(n);
      re_out[k] += re_in[j] * std::cos(theta) - im_in[j] * std::sin(theta);
      im_out[k] += re_in[j] * std::sin(theta) + im_in[j] * std::cos(theta);
    }
  }
}

class FftSizes : public ::testing::TestWithParam<int> {};

TEST_P(FftSizes, MatchesNaiveDft) {
  const size_t n = static_cast<size_t>(GetParam());
  Rng rng(n);
  std::vector<double> re(n), im(n);
  for (size_t i = 0; i < n; ++i) {
    re[i] = rng.uniform(-1, 1);
    im[i] = rng.uniform(-1, 1);
  }
  std::vector<double> ref_re, ref_im;
  naive_dft(re, im, ref_re, ref_im, false);

  Fft fft(n);
  auto fr = re, fi = im;
  fft.forward(fr.data(), fi.data());
  for (size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(fr[k], ref_re[k], 1e-9 * static_cast<double>(n));
    EXPECT_NEAR(fi[k], ref_im[k], 1e-9 * static_cast<double>(n));
  }
  // inverse(forward(x)) == n * x.
  fft.inverse(fr.data(), fi.data());
  for (size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(fr[k], re[k] * static_cast<double>(n), 1e-9 * static_cast<double>(n));
    EXPECT_NEAR(fi[k], im[k] * static_cast<double>(n), 1e-9 * static_cast<double>(n));
  }
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, FftSizes,
                         ::testing::Values(1, 2, 4, 8, 16, 64, 256));

// ---- DctPlan fast path vs the direct oracle, every registered backend ----

class PlanSizes : public ::testing::TestWithParam<int> {};

TEST_P(PlanSizes, FastRowsMatchDirectSums) {
  const size_t m = static_cast<size_t>(GetParam());
  DctPlan plan(m);
  HalfSampleDirect oracle(m);
  Rng rng(m * 7);
  std::vector<double> in(m), fast(m), ref(m), scale(m), pre(m);
  for (size_t u = 0; u < m; ++u) scale[u] = 0.25 + 0.03 * static_cast<double>(u);

  for (const std::string& name : backend_names()) {
    const KernelBackend* kb = find_backend(name);
    ASSERT_NE(kb, nullptr);
    for (auto& x : in) x = rng.uniform(-2, 2);

    kb->dct2_rows(plan, in.data(), fast.data(), 1);
    oracle.dct2(in.data(), ref.data());
    for (size_t i = 0; i < m; ++i) EXPECT_NEAR(fast[i], ref[i], 1e-9 * m) << name;

    kb->idct_rows(plan, in.data(), fast.data(), 1);
    oracle.eval_cos(in.data(), ref.data());
    for (size_t i = 0; i < m; ++i) EXPECT_NEAR(fast[i], ref[i], 1e-9 * m) << name;

    kb->idst_rows(plan, in.data(), nullptr, fast.data(), 1);
    oracle.eval_sin(in.data(), ref.data());
    for (size_t i = 0; i < m; ++i) EXPECT_NEAR(fast[i], ref[i], 1e-9 * m) << name;

    // Fused column scaling == explicit pre-scale then sine synthesis.
    kb->idst_rows(plan, in.data(), scale.data(), fast.data(), 1);
    for (size_t u = 0; u < m; ++u) pre[u] = in[u] * scale[u];
    oracle.eval_sin(pre.data(), ref.data());
    for (size_t i = 0; i < m; ++i) EXPECT_NEAR(fast[i], ref[i], 1e-9 * m) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, PlanSizes,
                         ::testing::Values(2, 4, 8, 32, 128, 256));

// ---- transform properties, power-of-two (DctPlan) and not (oracle) -------

// dct2 followed by alpha-scaled eval_cos reconstructs the input
// (completeness of the half-sample cosine basis).
class PropertySizes : public ::testing::TestWithParam<int> {};

TEST_P(PropertySizes, Dct2ThenEvalCosRoundTrips) {
  const size_t m = static_cast<size_t>(GetParam());
  HalfSampleDirect oracle(m);
  Rng rng(3 + m);
  std::vector<double> x(m), coef(m), back(m);
  for (auto& v : x) v = rng.uniform(-1, 1);
  auto alpha_scale = [m](std::vector<double>& c) {
    c[0] *= 1.0 / static_cast<double>(m);
    for (size_t u = 1; u < m; ++u) c[u] *= 2.0 / static_cast<double>(m);
  };

  oracle.dct2(x.data(), coef.data());
  alpha_scale(coef);
  oracle.eval_cos(coef.data(), back.data());
  for (size_t i = 0; i < m; ++i) EXPECT_NEAR(back[i], x[i], 1e-9);

  if (is_power_of_two(m)) {
    DctPlan plan(m);
    const KernelBackend& kb = backend();
    kb.dct2_rows(plan, x.data(), coef.data(), 1);
    alpha_scale(coef);
    kb.idct_rows(plan, coef.data(), back.data(), 1);
    for (size_t i = 0; i < m; ++i) EXPECT_NEAR(back[i], x[i], 1e-9);
  }
}

// Parseval for the half-sample DCT-II: sum_x x^2 = sum_u alpha_u X_u^2 with
// alpha_0 = 1/m, alpha_u = 2/m (orthogonality of the cosine rows).
TEST_P(PropertySizes, Dct2SatisfiesParseval) {
  const size_t m = static_cast<size_t>(GetParam());
  HalfSampleDirect oracle(m);
  Rng rng(11 + m);
  std::vector<double> x(m), coef(m);
  for (auto& v : x) v = rng.uniform(-1, 1);
  double time_e = 0.0;
  for (double v : x) time_e += v * v;

  auto spectral_energy = [m](const std::vector<double>& c) {
    double e = c[0] * c[0] / static_cast<double>(m);
    for (size_t u = 1; u < m; ++u) e += 2.0 * c[u] * c[u] / static_cast<double>(m);
    return e;
  };

  oracle.dct2(x.data(), coef.data());
  EXPECT_NEAR(spectral_energy(coef), time_e, 1e-9 * m);

  if (is_power_of_two(m)) {
    DctPlan plan(m);
    backend().dct2_rows(plan, x.data(), coef.data(), 1);
    EXPECT_NEAR(spectral_energy(coef), time_e, 1e-9 * m);
  }
}

// dct2(a*x + b*y) == a*dct2(x) + b*dct2(y).
TEST_P(PropertySizes, Dct2IsLinear) {
  const size_t m = static_cast<size_t>(GetParam());
  Rng rng(29 + m);
  const double a = 1.75, b = -0.6;
  std::vector<double> x(m), y(m), mix(m), tx(m), ty(m), tmix(m);
  for (size_t i = 0; i < m; ++i) {
    x[i] = rng.uniform(-1, 1);
    y[i] = rng.uniform(-1, 1);
    mix[i] = a * x[i] + b * y[i];
  }
  if (is_power_of_two(m)) {
    DctPlan plan(m);
    const KernelBackend& kb = backend();
    kb.dct2_rows(plan, x.data(), tx.data(), 1);
    kb.dct2_rows(plan, y.data(), ty.data(), 1);
    kb.dct2_rows(plan, mix.data(), tmix.data(), 1);
  } else {
    HalfSampleDirect oracle(m);
    oracle.dct2(x.data(), tx.data());
    oracle.dct2(y.data(), ty.data());
    oracle.dct2(mix.data(), tmix.data());
  }
  for (size_t u = 0; u < m; ++u)
    EXPECT_NEAR(tmix[u], a * tx[u] + b * ty[u], 1e-9 * m);
}

INSTANTIATE_TEST_SUITE_P(Mixed, PropertySizes,
                         ::testing::Values(2, 8, 32, 128,  // DctPlan + oracle
                                           3, 12, 100));   // oracle only

TEST(Poisson, FastPathFlagReflectsGridSize) {
  EXPECT_TRUE(placer::PoissonSolver(64, 80.0, 80.0).uses_fft());
  EXPECT_FALSE(placer::PoissonSolver(96, 80.0, 80.0).uses_fft());
}

TEST(Poisson, FftPathMatchesSpectralReference) {
  // 64 runs the DctPlan path; validated against an explicit direct-sum
  // spectral reference evaluated at sampled grid points.
  const int m = 64;
  const double w = 80.0;
  placer::PoissonSolver solver(m, w, w);
  ASSERT_TRUE(solver.uses_fft());
  Rng rng(17);
  std::vector<double> rho(static_cast<size_t>(m) * m);
  for (auto& r : rho) r = rng.uniform(0.0, 1.0);
  std::vector<double> psi, ex, ey;
  solver.solve(rho, psi, ex, ey);

  // Direct spectral reference.
  std::vector<double> coef(static_cast<size_t>(m) * m, 0.0);
  auto C = [&](int u, int x) {
    return std::cos(kPi * u * (x + 0.5) / m);
  };
  auto S = [&](int u, int x) {
    return std::sin(kPi * u * (x + 0.5) / m);
  };
  for (int u = 0; u < m; ++u)
    for (int v = 0; v < m; ++v) {
      double acc = 0.0;
      for (int x = 0; x < m; ++x)
        for (int y = 0; y < m; ++y)
          acc += rho[static_cast<size_t>(x) * m + y] * C(u, x) * C(v, y);
      const double ku = kPi * u / w, kv = kPi * v / w;
      const double au = (u == 0 ? 1.0 : 2.0) / m, av = (v == 0 ? 1.0 : 2.0) / m;
      coef[static_cast<size_t>(u) * m + v] =
          (u == 0 && v == 0) ? 0.0 : acc * au * av / (ku * ku + kv * kv);
    }
  // Spot-check a handful of grid points (full O(m^4) reconstruction is slow).
  Rng pick(5);
  for (int k = 0; k < 12; ++k) {
    const int x = static_cast<int>(pick.uniform_int(0, m - 1));
    const int y = static_cast<int>(pick.uniform_int(0, m - 1));
    double p = 0.0, fx = 0.0, fy = 0.0;
    for (int u = 0; u < m; ++u)
      for (int v = 0; v < m; ++v) {
        const double c = coef[static_cast<size_t>(u) * m + v];
        p += c * C(u, x) * C(v, y);
        fx += c * (kPi * u / w) * S(u, x) * C(v, y);
        fy += c * (kPi * v / w) * C(u, x) * S(v, y);
      }
    const size_t i = static_cast<size_t>(x) * m + y;
    EXPECT_NEAR(psi[i], p, 1e-7);
    EXPECT_NEAR(ex[i], fx, 1e-7);
    EXPECT_NEAR(ey[i], fy, 1e-7);
  }
}

TEST(Poisson, DirectFallbackMatchesSpectralReference) {
  // Non-power-of-two grid exercises the HalfSampleDirect fallback end to
  // end against the same explicit spectral reference as the FFT-path test
  // (m = 12 keeps the O(m^4) reconstruction trivial).
  const int m = 12;
  const double w = 24.0;
  placer::PoissonSolver solver(m, w, w);
  ASSERT_FALSE(solver.uses_fft());
  Rng rng(23);
  std::vector<double> rho(static_cast<size_t>(m) * m);
  for (auto& r : rho) r = rng.uniform(0.0, 1.0);
  std::vector<double> psi, ex, ey;
  solver.solve(rho, psi, ex, ey);

  auto C = [&](int u, int x) { return std::cos(kPi * u * (x + 0.5) / m); };
  auto S = [&](int u, int x) { return std::sin(kPi * u * (x + 0.5) / m); };
  std::vector<double> coef(static_cast<size_t>(m) * m, 0.0);
  for (int u = 0; u < m; ++u)
    for (int v = 0; v < m; ++v) {
      double acc = 0.0;
      for (int x = 0; x < m; ++x)
        for (int y = 0; y < m; ++y)
          acc += rho[static_cast<size_t>(x) * m + y] * C(u, x) * C(v, y);
      const double ku = kPi * u / w, kv = kPi * v / w;
      const double au = (u == 0 ? 1.0 : 2.0) / m, av = (v == 0 ? 1.0 : 2.0) / m;
      coef[static_cast<size_t>(u) * m + v] =
          (u == 0 && v == 0) ? 0.0 : acc * au * av / (ku * ku + kv * kv);
    }
  for (int x = 0; x < m; ++x)
    for (int y = 0; y < m; ++y) {
      double p = 0.0, fx = 0.0, fy = 0.0;
      for (int u = 0; u < m; ++u)
        for (int v = 0; v < m; ++v) {
          const double c = coef[static_cast<size_t>(u) * m + v];
          p += c * C(u, x) * C(v, y);
          fx += c * (kPi * u / w) * S(u, x) * C(v, y);
          fy += c * (kPi * v / w) * C(u, x) * S(v, y);
        }
      const size_t i = static_cast<size_t>(x) * m + y;
      EXPECT_NEAR(psi[i], p, 1e-8);
      EXPECT_NEAR(ex[i], fx, 1e-8);
      EXPECT_NEAR(ey[i], fy, 1e-8);
    }
}

}  // namespace
}  // namespace dtp::kernels
