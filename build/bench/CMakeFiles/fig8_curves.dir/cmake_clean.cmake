file(REMOVE_RECURSE
  "CMakeFiles/fig8_curves.dir/fig8_curves.cpp.o"
  "CMakeFiles/fig8_curves.dir/fig8_curves.cpp.o.d"
  "fig8_curves"
  "fig8_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
