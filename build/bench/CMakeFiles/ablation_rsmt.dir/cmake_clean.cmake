file(REMOVE_RECURSE
  "CMakeFiles/ablation_rsmt.dir/ablation_rsmt.cpp.o"
  "CMakeFiles/ablation_rsmt.dir/ablation_rsmt.cpp.o.d"
  "ablation_rsmt"
  "ablation_rsmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rsmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
