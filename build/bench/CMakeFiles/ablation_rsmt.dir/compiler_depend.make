# Empty compiler generated dependencies file for ablation_rsmt.
# This may be replaced when dependencies are built.
