file(REMOVE_RECURSE
  "CMakeFiles/ablation_steiner_reuse.dir/ablation_steiner_reuse.cpp.o"
  "CMakeFiles/ablation_steiner_reuse.dir/ablation_steiner_reuse.cpp.o.d"
  "ablation_steiner_reuse"
  "ablation_steiner_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_steiner_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
