# Empty compiler generated dependencies file for ablation_steiner_reuse.
# This may be replaced when dependencies are built.
