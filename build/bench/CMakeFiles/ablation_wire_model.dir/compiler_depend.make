# Empty compiler generated dependencies file for ablation_wire_model.
# This may be replaced when dependencies are built.
