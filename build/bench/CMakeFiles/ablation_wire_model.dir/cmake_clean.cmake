file(REMOVE_RECURSE
  "CMakeFiles/ablation_wire_model.dir/ablation_wire_model.cpp.o"
  "CMakeFiles/ablation_wire_model.dir/ablation_wire_model.cpp.o.d"
  "ablation_wire_model"
  "ablation_wire_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wire_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
