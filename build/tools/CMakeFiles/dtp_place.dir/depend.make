# Empty dependencies file for dtp_place.
# This may be replaced when dependencies are built.
