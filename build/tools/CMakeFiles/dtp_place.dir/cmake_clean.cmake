file(REMOVE_RECURSE
  "CMakeFiles/dtp_place.dir/dtp_place.cpp.o"
  "CMakeFiles/dtp_place.dir/dtp_place.cpp.o.d"
  "dtp_place"
  "dtp_place.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtp_place.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
