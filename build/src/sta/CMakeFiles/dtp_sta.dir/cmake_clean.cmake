file(REMOVE_RECURSE
  "CMakeFiles/dtp_sta.dir/net_timing.cpp.o"
  "CMakeFiles/dtp_sta.dir/net_timing.cpp.o.d"
  "CMakeFiles/dtp_sta.dir/report.cpp.o"
  "CMakeFiles/dtp_sta.dir/report.cpp.o.d"
  "CMakeFiles/dtp_sta.dir/timer.cpp.o"
  "CMakeFiles/dtp_sta.dir/timer.cpp.o.d"
  "CMakeFiles/dtp_sta.dir/timing_graph.cpp.o"
  "CMakeFiles/dtp_sta.dir/timing_graph.cpp.o.d"
  "libdtp_sta.a"
  "libdtp_sta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtp_sta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
