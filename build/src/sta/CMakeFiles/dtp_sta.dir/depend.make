# Empty dependencies file for dtp_sta.
# This may be replaced when dependencies are built.
