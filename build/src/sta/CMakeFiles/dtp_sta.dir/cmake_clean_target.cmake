file(REMOVE_RECURSE
  "libdtp_sta.a"
)
