file(REMOVE_RECURSE
  "libdtp_netlist.a"
)
