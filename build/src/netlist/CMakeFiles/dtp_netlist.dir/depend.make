# Empty dependencies file for dtp_netlist.
# This may be replaced when dependencies are built.
