file(REMOVE_RECURSE
  "CMakeFiles/dtp_netlist.dir/netlist.cpp.o"
  "CMakeFiles/dtp_netlist.dir/netlist.cpp.o.d"
  "libdtp_netlist.a"
  "libdtp_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtp_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
