# Empty compiler generated dependencies file for dtp_workload.
# This may be replaced when dependencies are built.
