file(REMOVE_RECURSE
  "libdtp_workload.a"
)
