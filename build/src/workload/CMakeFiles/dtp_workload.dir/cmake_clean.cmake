file(REMOVE_RECURSE
  "CMakeFiles/dtp_workload.dir/circuit_gen.cpp.o"
  "CMakeFiles/dtp_workload.dir/circuit_gen.cpp.o.d"
  "libdtp_workload.a"
  "libdtp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
