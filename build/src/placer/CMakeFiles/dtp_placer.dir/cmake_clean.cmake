file(REMOVE_RECURSE
  "CMakeFiles/dtp_placer.dir/density.cpp.o"
  "CMakeFiles/dtp_placer.dir/density.cpp.o.d"
  "CMakeFiles/dtp_placer.dir/fft.cpp.o"
  "CMakeFiles/dtp_placer.dir/fft.cpp.o.d"
  "CMakeFiles/dtp_placer.dir/global_placer.cpp.o"
  "CMakeFiles/dtp_placer.dir/global_placer.cpp.o.d"
  "CMakeFiles/dtp_placer.dir/legalizer.cpp.o"
  "CMakeFiles/dtp_placer.dir/legalizer.cpp.o.d"
  "CMakeFiles/dtp_placer.dir/net_weighting.cpp.o"
  "CMakeFiles/dtp_placer.dir/net_weighting.cpp.o.d"
  "CMakeFiles/dtp_placer.dir/optimizer.cpp.o"
  "CMakeFiles/dtp_placer.dir/optimizer.cpp.o.d"
  "CMakeFiles/dtp_placer.dir/poisson.cpp.o"
  "CMakeFiles/dtp_placer.dir/poisson.cpp.o.d"
  "CMakeFiles/dtp_placer.dir/wirelength.cpp.o"
  "CMakeFiles/dtp_placer.dir/wirelength.cpp.o.d"
  "libdtp_placer.a"
  "libdtp_placer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtp_placer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
