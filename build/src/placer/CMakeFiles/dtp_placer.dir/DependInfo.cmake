
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/placer/density.cpp" "src/placer/CMakeFiles/dtp_placer.dir/density.cpp.o" "gcc" "src/placer/CMakeFiles/dtp_placer.dir/density.cpp.o.d"
  "/root/repo/src/placer/fft.cpp" "src/placer/CMakeFiles/dtp_placer.dir/fft.cpp.o" "gcc" "src/placer/CMakeFiles/dtp_placer.dir/fft.cpp.o.d"
  "/root/repo/src/placer/global_placer.cpp" "src/placer/CMakeFiles/dtp_placer.dir/global_placer.cpp.o" "gcc" "src/placer/CMakeFiles/dtp_placer.dir/global_placer.cpp.o.d"
  "/root/repo/src/placer/legalizer.cpp" "src/placer/CMakeFiles/dtp_placer.dir/legalizer.cpp.o" "gcc" "src/placer/CMakeFiles/dtp_placer.dir/legalizer.cpp.o.d"
  "/root/repo/src/placer/net_weighting.cpp" "src/placer/CMakeFiles/dtp_placer.dir/net_weighting.cpp.o" "gcc" "src/placer/CMakeFiles/dtp_placer.dir/net_weighting.cpp.o.d"
  "/root/repo/src/placer/optimizer.cpp" "src/placer/CMakeFiles/dtp_placer.dir/optimizer.cpp.o" "gcc" "src/placer/CMakeFiles/dtp_placer.dir/optimizer.cpp.o.d"
  "/root/repo/src/placer/poisson.cpp" "src/placer/CMakeFiles/dtp_placer.dir/poisson.cpp.o" "gcc" "src/placer/CMakeFiles/dtp_placer.dir/poisson.cpp.o.d"
  "/root/repo/src/placer/wirelength.cpp" "src/placer/CMakeFiles/dtp_placer.dir/wirelength.cpp.o" "gcc" "src/placer/CMakeFiles/dtp_placer.dir/wirelength.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/dtp_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/sta/CMakeFiles/dtp_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/dtimer/CMakeFiles/dtp_dtimer.dir/DependInfo.cmake"
  "/root/repo/build/src/liberty/CMakeFiles/dtp_liberty.dir/DependInfo.cmake"
  "/root/repo/build/src/rsmt/CMakeFiles/dtp_rsmt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
