file(REMOVE_RECURSE
  "libdtp_placer.a"
)
