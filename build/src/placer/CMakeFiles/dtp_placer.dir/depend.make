# Empty dependencies file for dtp_placer.
# This may be replaced when dependencies are built.
