file(REMOVE_RECURSE
  "CMakeFiles/dtp_dtimer.dir/diff_timer.cpp.o"
  "CMakeFiles/dtp_dtimer.dir/diff_timer.cpp.o.d"
  "CMakeFiles/dtp_dtimer.dir/elmore_grad.cpp.o"
  "CMakeFiles/dtp_dtimer.dir/elmore_grad.cpp.o.d"
  "libdtp_dtimer.a"
  "libdtp_dtimer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtp_dtimer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
