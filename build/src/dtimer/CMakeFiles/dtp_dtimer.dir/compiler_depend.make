# Empty compiler generated dependencies file for dtp_dtimer.
# This may be replaced when dependencies are built.
