file(REMOVE_RECURSE
  "libdtp_dtimer.a"
)
