file(REMOVE_RECURSE
  "libdtp_rsmt.a"
)
