file(REMOVE_RECURSE
  "CMakeFiles/dtp_rsmt.dir/rsmt_builder.cpp.o"
  "CMakeFiles/dtp_rsmt.dir/rsmt_builder.cpp.o.d"
  "CMakeFiles/dtp_rsmt.dir/steiner_tree.cpp.o"
  "CMakeFiles/dtp_rsmt.dir/steiner_tree.cpp.o.d"
  "libdtp_rsmt.a"
  "libdtp_rsmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtp_rsmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
