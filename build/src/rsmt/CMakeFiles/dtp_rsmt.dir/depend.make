# Empty dependencies file for dtp_rsmt.
# This may be replaced when dependencies are built.
