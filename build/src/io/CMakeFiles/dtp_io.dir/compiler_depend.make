# Empty compiler generated dependencies file for dtp_io.
# This may be replaced when dependencies are built.
