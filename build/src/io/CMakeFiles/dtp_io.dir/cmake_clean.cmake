file(REMOVE_RECURSE
  "CMakeFiles/dtp_io.dir/bookshelf.cpp.o"
  "CMakeFiles/dtp_io.dir/bookshelf.cpp.o.d"
  "CMakeFiles/dtp_io.dir/sdc.cpp.o"
  "CMakeFiles/dtp_io.dir/sdc.cpp.o.d"
  "CMakeFiles/dtp_io.dir/svg_plot.cpp.o"
  "CMakeFiles/dtp_io.dir/svg_plot.cpp.o.d"
  "CMakeFiles/dtp_io.dir/verilog.cpp.o"
  "CMakeFiles/dtp_io.dir/verilog.cpp.o.d"
  "libdtp_io.a"
  "libdtp_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtp_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
