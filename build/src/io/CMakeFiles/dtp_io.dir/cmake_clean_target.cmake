file(REMOVE_RECURSE
  "libdtp_io.a"
)
