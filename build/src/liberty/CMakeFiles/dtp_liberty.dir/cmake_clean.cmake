file(REMOVE_RECURSE
  "CMakeFiles/dtp_liberty.dir/liberty_io.cpp.o"
  "CMakeFiles/dtp_liberty.dir/liberty_io.cpp.o.d"
  "CMakeFiles/dtp_liberty.dir/lut.cpp.o"
  "CMakeFiles/dtp_liberty.dir/lut.cpp.o.d"
  "CMakeFiles/dtp_liberty.dir/synth_library.cpp.o"
  "CMakeFiles/dtp_liberty.dir/synth_library.cpp.o.d"
  "libdtp_liberty.a"
  "libdtp_liberty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtp_liberty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
