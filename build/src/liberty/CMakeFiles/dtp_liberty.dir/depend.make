# Empty dependencies file for dtp_liberty.
# This may be replaced when dependencies are built.
