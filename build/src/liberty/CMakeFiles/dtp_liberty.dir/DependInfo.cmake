
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/liberty/liberty_io.cpp" "src/liberty/CMakeFiles/dtp_liberty.dir/liberty_io.cpp.o" "gcc" "src/liberty/CMakeFiles/dtp_liberty.dir/liberty_io.cpp.o.d"
  "/root/repo/src/liberty/lut.cpp" "src/liberty/CMakeFiles/dtp_liberty.dir/lut.cpp.o" "gcc" "src/liberty/CMakeFiles/dtp_liberty.dir/lut.cpp.o.d"
  "/root/repo/src/liberty/synth_library.cpp" "src/liberty/CMakeFiles/dtp_liberty.dir/synth_library.cpp.o" "gcc" "src/liberty/CMakeFiles/dtp_liberty.dir/synth_library.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
