file(REMOVE_RECURSE
  "libdtp_liberty.a"
)
