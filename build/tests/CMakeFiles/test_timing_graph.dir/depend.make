# Empty dependencies file for test_timing_graph.
# This may be replaced when dependencies are built.
