# Empty compiler generated dependencies file for test_net_weighting.
# This may be replaced when dependencies are built.
