file(REMOVE_RECURSE
  "CMakeFiles/test_net_weighting.dir/test_net_weighting.cpp.o"
  "CMakeFiles/test_net_weighting.dir/test_net_weighting.cpp.o.d"
  "test_net_weighting"
  "test_net_weighting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_weighting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
