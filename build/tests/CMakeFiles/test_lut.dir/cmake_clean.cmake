file(REMOVE_RECURSE
  "CMakeFiles/test_lut.dir/test_lut.cpp.o"
  "CMakeFiles/test_lut.dir/test_lut.cpp.o.d"
  "test_lut"
  "test_lut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
