file(REMOVE_RECURSE
  "CMakeFiles/test_incremental_sta.dir/test_incremental_sta.cpp.o"
  "CMakeFiles/test_incremental_sta.dir/test_incremental_sta.cpp.o.d"
  "test_incremental_sta"
  "test_incremental_sta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_incremental_sta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
