# Empty dependencies file for test_diff_timer_api.
# This may be replaced when dependencies are built.
