file(REMOVE_RECURSE
  "CMakeFiles/test_diff_timer_api.dir/test_diff_timer_api.cpp.o"
  "CMakeFiles/test_diff_timer_api.dir/test_diff_timer_api.cpp.o.d"
  "test_diff_timer_api"
  "test_diff_timer_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_diff_timer_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
