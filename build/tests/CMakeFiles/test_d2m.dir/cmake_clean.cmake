file(REMOVE_RECURSE
  "CMakeFiles/test_d2m.dir/test_d2m.cpp.o"
  "CMakeFiles/test_d2m.dir/test_d2m.cpp.o.d"
  "test_d2m"
  "test_d2m.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_d2m.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
