# Empty dependencies file for test_d2m.
# This may be replaced when dependencies are built.
