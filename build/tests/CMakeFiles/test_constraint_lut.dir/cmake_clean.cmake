file(REMOVE_RECURSE
  "CMakeFiles/test_constraint_lut.dir/test_constraint_lut.cpp.o"
  "CMakeFiles/test_constraint_lut.dir/test_constraint_lut.cpp.o.d"
  "test_constraint_lut"
  "test_constraint_lut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_constraint_lut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
