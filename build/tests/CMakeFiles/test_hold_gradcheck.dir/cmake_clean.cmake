file(REMOVE_RECURSE
  "CMakeFiles/test_hold_gradcheck.dir/test_hold_gradcheck.cpp.o"
  "CMakeFiles/test_hold_gradcheck.dir/test_hold_gradcheck.cpp.o.d"
  "test_hold_gradcheck"
  "test_hold_gradcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hold_gradcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
