# Empty dependencies file for test_hold_gradcheck.
# This may be replaced when dependencies are built.
