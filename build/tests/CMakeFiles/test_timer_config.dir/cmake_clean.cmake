file(REMOVE_RECURSE
  "CMakeFiles/test_timer_config.dir/test_timer_config.cpp.o"
  "CMakeFiles/test_timer_config.dir/test_timer_config.cpp.o.d"
  "test_timer_config"
  "test_timer_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timer_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
