# Empty dependencies file for test_timer_config.
# This may be replaced when dependencies are built.
