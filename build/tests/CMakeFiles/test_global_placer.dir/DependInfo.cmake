
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_global_placer.cpp" "tests/CMakeFiles/test_global_placer.dir/test_global_placer.cpp.o" "gcc" "tests/CMakeFiles/test_global_placer.dir/test_global_placer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/placer/CMakeFiles/dtp_placer.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dtp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/dtimer/CMakeFiles/dtp_dtimer.dir/DependInfo.cmake"
  "/root/repo/build/src/sta/CMakeFiles/dtp_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/rsmt/CMakeFiles/dtp_rsmt.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/dtp_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/liberty/CMakeFiles/dtp_liberty.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
