file(REMOVE_RECURSE
  "CMakeFiles/test_global_placer.dir/test_global_placer.cpp.o"
  "CMakeFiles/test_global_placer.dir/test_global_placer.cpp.o.d"
  "test_global_placer"
  "test_global_placer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_global_placer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
