# Empty compiler generated dependencies file for test_global_placer.
# This may be replaced when dependencies are built.
