file(REMOVE_RECURSE
  "CMakeFiles/test_more_coverage.dir/test_more_coverage.cpp.o"
  "CMakeFiles/test_more_coverage.dir/test_more_coverage.cpp.o.d"
  "test_more_coverage"
  "test_more_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_more_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
