file(REMOVE_RECURSE
  "CMakeFiles/test_elmore_grad.dir/test_elmore_grad.cpp.o"
  "CMakeFiles/test_elmore_grad.dir/test_elmore_grad.cpp.o.d"
  "test_elmore_grad"
  "test_elmore_grad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_elmore_grad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
