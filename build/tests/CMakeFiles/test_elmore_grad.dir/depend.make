# Empty dependencies file for test_elmore_grad.
# This may be replaced when dependencies are built.
