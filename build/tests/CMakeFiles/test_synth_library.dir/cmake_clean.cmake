file(REMOVE_RECURSE
  "CMakeFiles/test_synth_library.dir/test_synth_library.cpp.o"
  "CMakeFiles/test_synth_library.dir/test_synth_library.cpp.o.d"
  "test_synth_library"
  "test_synth_library.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_synth_library.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
