# Empty compiler generated dependencies file for test_synth_library.
# This may be replaced when dependencies are built.
