file(REMOVE_RECURSE
  "CMakeFiles/test_sta_reference.dir/test_sta_reference.cpp.o"
  "CMakeFiles/test_sta_reference.dir/test_sta_reference.cpp.o.d"
  "test_sta_reference"
  "test_sta_reference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sta_reference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
