# Empty dependencies file for test_sta_reference.
# This may be replaced when dependencies are built.
