file(REMOVE_RECURSE
  "CMakeFiles/test_timing_dp.dir/test_timing_dp.cpp.o"
  "CMakeFiles/test_timing_dp.dir/test_timing_dp.cpp.o.d"
  "test_timing_dp"
  "test_timing_dp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timing_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
