# Empty compiler generated dependencies file for test_timing_dp.
# This may be replaced when dependencies are built.
