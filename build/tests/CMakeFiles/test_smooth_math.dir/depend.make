# Empty dependencies file for test_smooth_math.
# This may be replaced when dependencies are built.
