file(REMOVE_RECURSE
  "CMakeFiles/test_smooth_math.dir/test_smooth_math.cpp.o"
  "CMakeFiles/test_smooth_math.dir/test_smooth_math.cpp.o.d"
  "test_smooth_math"
  "test_smooth_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smooth_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
