file(REMOVE_RECURSE
  "CMakeFiles/sta_report.dir/sta_report.cpp.o"
  "CMakeFiles/sta_report.dir/sta_report.cpp.o.d"
  "sta_report"
  "sta_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sta_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
