# Empty compiler generated dependencies file for sta_report.
# This may be replaced when dependencies are built.
