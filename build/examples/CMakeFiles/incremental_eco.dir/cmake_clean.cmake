file(REMOVE_RECURSE
  "CMakeFiles/incremental_eco.dir/incremental_eco.cpp.o"
  "CMakeFiles/incremental_eco.dir/incremental_eco.cpp.o.d"
  "incremental_eco"
  "incremental_eco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_eco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
