# Empty dependencies file for incremental_eco.
# This may be replaced when dependencies are built.
