#include "sta/report.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "sta/cell_arc_eval.h"

namespace dtp::sta {

std::vector<DrvViolation> check_drv(const Timer& timer, double max_slew,
                                    double max_cap) {
  std::vector<DrvViolation> out;
  const TimingGraph& graph = timer.graph();
  if (max_slew > 0.0) {
    for (int l = 0; l < graph.num_levels(); ++l) {
      for (PinId p : graph.level(l)) {
        double worst = 0.0;
        for (int tr = 0; tr < 2; ++tr)
          if (std::isfinite(timer.at(p, tr)))
            worst = std::max(worst, timer.slew(p, tr));
        if (worst > max_slew) out.push_back({p, DrvViolation::Slew, worst, max_slew});
      }
    }
  }
  if (max_cap > 0.0) {
    for (netlist::NetId n : graph.timing_nets()) {
      const double load = timer.net_timing(n).root_load();
      if (load > max_cap) {
        const PinId driver = graph.netlist().net(n).driver;
        out.push_back({driver, DrvViolation::Cap, load, max_cap});
      }
    }
  }
  return out;
}

void write_timing_report(Timer& timer, const ReportOptions& options,
                         std::ostream& out) {
  const TimingGraph& graph = timer.graph();
  const netlist::Netlist& nl = graph.netlist();
  timer.update_required();
  const TimingMetrics m = timer.metrics();

  out << std::fixed;
  out << "==== timing report ====\n";
  out << "clock period  : " << std::setprecision(4)
      << timer.design().constraints.clock_period << " ns\n";
  out << "setup WNS     : " << m.wns << " ns\n";
  out << "setup TNS     : " << std::setprecision(3) << m.tns << " ns\n";
  out << "violations    : " << m.num_violations << " / "
      << graph.endpoints().size() << " endpoints\n";
  if (timer.options().enable_early) {
    out << "hold WNS      : " << std::setprecision(4) << m.hold_wns << " ns\n";
    out << "hold TNS      : " << std::setprecision(3) << m.hold_tns << " ns\n";
  }

  // Histogram.
  const auto& slacks = timer.endpoint_slack();
  double lo = 0.0, hi = 0.0;
  for (double s : slacks) {
    if (!std::isfinite(s)) continue;
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  const int buckets = std::max(2, options.histogram_buckets);
  const double span = std::max(hi - lo, 1e-9);
  std::vector<int> hist(static_cast<size_t>(buckets), 0);
  for (double s : slacks) {
    if (!std::isfinite(s)) continue;
    const int b = std::min(buckets - 1, static_cast<int>((s - lo) / span * buckets));
    ++hist[static_cast<size_t>(b)];
  }
  out << "\n==== endpoint slack histogram ====\n";
  for (int b = 0; b < buckets; ++b) {
    out << "[" << std::setw(9) << std::setprecision(4) << lo + span * b / buckets
        << ", " << std::setw(9) << lo + span * (b + 1) / buckets << ") "
        << std::setw(6) << hist[static_cast<size_t>(b)] << " ";
    for (int k = 0; k < hist[static_cast<size_t>(b)] && k < 60; ++k) out << '#';
    out << "\n";
  }

  // Worst paths.
  std::vector<size_t> order;
  for (size_t e = 0; e < slacks.size(); ++e)
    if (std::isfinite(slacks[e])) order.push_back(e);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return slacks[a] < slacks[b]; });
  const int n_paths = std::min<int>(options.max_paths, static_cast<int>(order.size()));
  for (int k = 0; k < n_paths; ++k) {
    const size_t e = order[static_cast<size_t>(k)];
    const Endpoint& ep = graph.endpoints()[e];
    out << "\n==== path " << k + 1 << ": slack " << std::setprecision(4)
        << slacks[e] << " ns, endpoint " << nl.pin_full_name(ep.pin) << " ("
        << (ep.kind == EndpointKind::FlopData ? "flop setup" : "output port")
        << ") ====\n";
    out << "  " << std::left << std::setw(30) << "pin" << std::right
        << std::setw(6) << "edge" << std::setw(11) << "AT" << std::setw(11)
        << "slew" << std::setw(11) << "RAT" << std::setw(11) << "slack"
        << "\n";
    for (const auto& node : timer.trace_critical_path(ep.pin)) {
      out << "  " << std::left << std::setw(30) << nl.pin_full_name(node.pin)
          << std::right << std::setw(6) << (node.tr == kRise ? "rise" : "fall")
          << std::setw(11) << std::setprecision(4) << node.at << std::setw(11)
          << timer.slew(node.pin, node.tr) << std::setw(11)
          << timer.rat(node.pin, node.tr) << std::setw(11)
          << timer.rat(node.pin, node.tr) - node.at << "\n";
    }
  }

  // DRV checks.
  if (options.max_slew > 0.0 || options.max_cap > 0.0) {
    const auto drv = check_drv(timer, options.max_slew, options.max_cap);
    out << "\n==== design rule checks ====\n";
    out << "violations    : " << drv.size() << "\n";
    size_t shown = 0;
    for (const auto& v : drv) {
      if (++shown > 20) {
        out << "  ... (" << drv.size() - 20 << " more)\n";
        break;
      }
      out << "  " << (v.kind == DrvViolation::Slew ? "max_slew" : "max_cap ")
          << "  " << std::left << std::setw(30) << nl.pin_full_name(v.pin)
          << std::right << std::setprecision(4) << v.value << " > " << v.limit
          << "\n";
    }
  }
}

std::string timing_report_string(Timer& timer, const ReportOptions& options) {
  std::ostringstream os;
  write_timing_report(timer, options, os);
  return os.str();
}

}  // namespace dtp::sta
