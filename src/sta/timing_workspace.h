// Shared SoA timing workspace: every state array the forward timer and the
// differentiable backward pass touch, owned in one place (DESIGN.md §10).
//
// The seed implementation split this state between sta::Timer (AT/slew/RAT,
// per-net NetTiming heap objects) and dtimer::DiffTimer (adjoints, per-net
// seed vectors-of-vectors, per-call scratch).  The workspace flattens all of
// it into arenas sized once at construction:
//
//   * SteinerForest — all nets' trees in two flat arenas (fixed per-net
//     capacity, so rebuilds and drags happen strictly in place);
//   * per-node net state (load/delay/ldelay/beta/imp2/used_delay/...) — one
//     arena per quantity, sliced per net by the forest offsets into a
//     NetTimingView;
//   * per-pin sweep state [pin*2 + transition] — AT, slew, RAT and their
//     adjoints, for both corners;
//   * the cell-arc candidate cache — the forward sweep records each pin's
//     gathered candidates (LUT queries included); the backward sweep and the
//     RAT sweep reuse them instead of re-running lookup_grad;
//   * per-slot and serial scratch — capacity-reserved vectors for the level
//     kernels, slack aggregation, endpoint seeding and the Elmore adjoint.
//
// Zero-allocation contract: after construction (and the first tree build),
// a drag-path forward (drag_trees + run_elmore + propagate + update_slacks)
// plus a backward pass performs no heap allocation.  Scratch vectors are only
// ever resized within their reserved capacity; everything else is written
// through pre-sized arrays.  tests/test_zero_alloc.cpp enforces this with a
// counting global allocator.  Full Steiner rebuilds (1 in
// steiner_rebuild_period calls) and evaluate_incremental are outside the
// contract — both allocate in the RSMT builder.
#pragma once

#include <vector>

#include "common/vec2.h"
#include "netlist/netlist.h"
#include "rsmt/rsmt_builder.h"
#include "rsmt/steiner_forest.h"
#include "sta/cell_arc_eval.h"
#include "sta/net_timing.h"
#include "sta/timing_graph.h"

namespace dtp::sta {

// Per-dispatch-slot scratch for the level-parallel kernels (workers use their
// worker id as slot, inline execution uses the caller slot).
struct LevelScratch {
  std::vector<ArcCandidate> cands;  // early-corner gathers (late uses the cache)
  std::vector<double> values;
  std::vector<double> weights;
};

class TimingWorkspace {
 public:
  TimingWorkspace(const netlist::Design& design, const TimingGraph& graph,
                  bool enable_early, const rsmt::RsmtOptions& rsmt_opts,
                  size_t num_slots);

  // ---- Steiner forest + per-node net state arenas ----
  rsmt::SteinerForest forest;
  std::vector<double> edge_len, edge_res, node_cap, load, delay, ldelay, beta,
      imp2, used_delay;
  std::vector<char> imp2_clamped, d2m_degenerate;

  // View of one net's slice of the data plane (empty tree view before the
  // first build).
  NetTimingView net_view(NetId n) {
    const size_t off = static_cast<size_t>(forest.node_offset(n));
    const size_t cnt = static_cast<size_t>(forest.num_nodes(n));
    return {forest.tree(n),
            {edge_len.data() + off, cnt},
            {edge_res.data() + off, cnt},
            {node_cap.data() + off, cnt},
            {load.data() + off, cnt},
            {delay.data() + off, cnt},
            {ldelay.data() + off, cnt},
            {beta.data() + off, cnt},
            {imp2.data() + off, cnt},
            {imp2_clamped.data() + off, cnt},
            {used_delay.data() + off, cnt},
            {d2m_degenerate.data() + off, cnt}};
  }
  // Driver-seen load of a net without materializing the full view.
  double net_root_load(NetId n) const {
    const size_t off = static_cast<size_t>(forest.node_offset(n));
    return load[off + static_cast<size_t>(root_of(n))];
  }
  int root_of(NetId n) const { return forest.tree(n).root; }

  // ---- per-net sink pin caps (aligned with net.pins) ----
  std::span<const double> net_pin_caps(NetId n) const {
    const size_t b = static_cast<size_t>(pin_cap_offsets[static_cast<size_t>(n)]);
    const size_t e =
        static_cast<size_t>(pin_cap_offsets[static_cast<size_t>(n) + 1]);
    return {pin_caps.data() + b, e - b};
  }
  std::vector<int> pin_cap_offsets;  // size num_nets + 1
  std::vector<double> pin_caps;

  // ---- per-pin forward state ----
  std::vector<Vec2> pin_pos;
  std::vector<double> at, slew;              // late, [pin*2 + tr]
  std::vector<double> at_early, slew_early;  // enable_early only
  std::vector<double> rat;                   // late required times
  std::vector<double> src_at, src_slew;      // source initial conditions

  // ---- cell-arc candidate cache (late corner) ----
  // For a pin with cell-arc fan-in, region (p, tr_out) holds the candidates
  // the forward sweep gathered; capacity 2 per fan-in arc.
  ArcCandidate* cand_ptr(PinId p, int tr_out) {
    return cand.data() + static_cast<size_t>(cand_base[static_cast<size_t>(p)]) +
           static_cast<size_t>(tr_out) *
               static_cast<size_t>(cand_tr_cap[static_cast<size_t>(p)]);
  }
  int cand_capacity(PinId p) const {
    return cand_tr_cap[static_cast<size_t>(p)];
  }
  std::vector<int> cand_base;    // per pin; -1 when no cell-arc fan-in
  std::vector<int> cand_tr_cap;  // per pin: capacity per transition
  std::vector<int> cand_count;   // [pin*2 + tr_out]: cached candidate count
  std::vector<ArcCandidate> cand;

  // ---- adjoint state (backward pass) ----
  std::vector<double> g_at, g_slew;
  std::vector<double> g_at_early, g_slew_early;
  std::vector<double> g_load;              // per net: root-load adjoint
  std::vector<double> pin_gx, pin_gy;      // per pin coordinate gradients
  std::vector<double> g_net_delay, g_net_imp2;  // node arenas (forest offsets)
  std::span<double> net_g_delay(NetId n) {
    const size_t off = static_cast<size_t>(forest.node_offset(n));
    return {g_net_delay.data() + off,
            static_cast<size_t>(forest.num_nodes(n))};
  }
  std::span<double> net_g_imp2(NetId n) {
    const size_t off = static_cast<size_t>(forest.node_offset(n));
    return {g_net_imp2.data() + off, static_cast<size_t>(forest.num_nodes(n))};
  }

  // ---- scratch (capacity-reserved; resized only within capacity) ----
  std::vector<LevelScratch> slots;                 // per dispatch slot
  std::vector<double> values, w_at, w_slew;        // serial sweeps
  std::vector<ArcCandidate> cands;                 // serial gathers
  std::vector<double> ep_scratch;                  // smooth slack accumulation
  std::vector<double> ep_finite, ep_weights, ep_g; // endpoint seeding
  std::vector<size_t> ep_finite_idx;
  std::vector<double> el_gbeta, el_gldelay, el_gdelay, el_gload;  // Elmore adj
  std::vector<double> scratch_gx, scratch_gy, scratch_gbeta;      // per net

  size_t max_net_nodes() const { return max_net_nodes_; }
  size_t max_candidates() const { return max_candidates_; }

 private:
  size_t max_net_nodes_ = 0;
  size_t max_candidates_ = 0;
};

}  // namespace dtp::sta
