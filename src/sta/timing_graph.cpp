#include "sta/timing_graph.h"

#include <queue>
#include <stdexcept>

#include "common/assert.h"

namespace dtp::sta {

using liberty::CellKind;
using liberty::PinDir;

TimingGraph::TimingGraph(const netlist::Netlist& nl) : nl_(&nl) {
  const size_t n_pins = nl.num_pins();
  const size_t n_nets = nl.num_nets();
  level_of_pin_.assign(n_pins, -1);
  is_clock_source_.assign(n_pins, 0);
  is_clock_net_.assign(n_nets, 0);
  driven_net_.assign(n_pins, netlist::kInvalidId);

  // Classify clock nets: any net touching a clock lib-pin.
  for (size_t n = 0; n < n_nets; ++n) {
    for (PinId p : nl.net(static_cast<NetId>(n)).pins) {
      if (nl.lib_pin_of(p).is_clock) {
        is_clock_net_[n] = 1;
        break;
      }
    }
  }

  // Net arcs for timing nets.
  for (size_t n = 0; n < n_nets; ++n) {
    const netlist::Net& net = nl.net(static_cast<NetId>(n));
    if (is_clock_net_[n] || net.driver == netlist::kInvalidId || net.pins.size() < 2)
      continue;
    timing_nets_.push_back(static_cast<NetId>(n));
    driven_net_[static_cast<size_t>(net.driver)] = static_cast<NetId>(n);
    for (size_t k = 0; k < net.pins.size(); ++k) {
      const PinId sink = net.pins[k];
      if (sink == net.driver) continue;
      Arc arc;
      arc.from = net.driver;
      arc.to = sink;
      arc.kind = ArcKind::NetArc;
      arc.net = static_cast<NetId>(n);
      arc.sink_index = static_cast<int>(k);
      arcs_.push_back(arc);
    }
  }

  // Cell arcs.
  for (size_t c = 0; c < nl.num_cells(); ++c) {
    const netlist::Cell& cell = nl.cell(static_cast<CellId>(c));
    const liberty::LibCell& master = nl.lib_cell_of(static_cast<CellId>(c));
    for (const liberty::TimingArc& lib_arc : master.arcs) {
      const PinId from = cell.first_pin + lib_arc.from_pin;
      const PinId to = cell.first_pin + lib_arc.to_pin;
      // Both endpoints must be electrically meaningful: the output must drive
      // a timing net, and the input must either be clocked (level-0 source)
      // or connected to a timing net.
      if (driven_net_[static_cast<size_t>(to)] == netlist::kInvalidId) continue;
      const NetId in_net = nl.pin(from).net;
      const bool clocked = nl.lib_pin_of(from).is_clock;
      if (!clocked &&
          (in_net == netlist::kInvalidId || is_clock_net_[static_cast<size_t>(in_net)]))
        continue;
      Arc arc;
      arc.from = from;
      arc.to = to;
      arc.kind = ArcKind::CellArc;
      arc.lib_arc = &lib_arc;
      arcs_.push_back(arc);
      if (clocked) is_clock_source_[static_cast<size_t>(from)] = 1;
    }
  }

  // Fan-in CSR and Kahn levelization (longest-path levels).
  std::vector<int> fanin_count(n_pins, 0);
  std::vector<int> fanout_count(n_pins, 0);
  for (const Arc& a : arcs_) {
    ++fanin_count[static_cast<size_t>(a.to)];
    ++fanout_count[static_cast<size_t>(a.from)];
  }
  fanin_range_.resize(n_pins);
  {
    int offset = 0;
    for (size_t p = 0; p < n_pins; ++p) {
      fanin_range_[p] = {offset, 0};
      offset += fanin_count[p];
    }
    fanin_arcs_.resize(static_cast<size_t>(offset));
    for (size_t ai = 0; ai < arcs_.size(); ++ai) {
      auto& range = fanin_range_[static_cast<size_t>(arcs_[ai].to)];
      fanin_arcs_[static_cast<size_t>(range.first + range.second)] =
          static_cast<int>(ai);
      ++range.second;
    }
  }

  // Fan-out CSR (kept for incremental cone propagation) + adjacency view.
  fanout_range_.resize(n_pins);
  {
    int offset = 0;
    for (size_t p = 0; p < n_pins; ++p) {
      fanout_range_[p] = {offset, 0};
      offset += fanout_count[p];
    }
    fanout_arcs_.resize(static_cast<size_t>(offset));
    for (size_t ai = 0; ai < arcs_.size(); ++ai) {
      auto& range = fanout_range_[static_cast<size_t>(arcs_[ai].from)];
      fanout_arcs_[static_cast<size_t>(range.first + range.second)] =
          static_cast<int>(ai);
      ++range.second;
    }
  }
  std::vector<std::vector<int>> fanout(n_pins);
  for (size_t p = 0; p < n_pins; ++p) {
    const auto span = this->fanout(static_cast<PinId>(p));
    fanout[p].assign(span.begin(), span.end());
  }

  size_t in_graph_pins = 0;
  std::queue<PinId> ready;
  for (size_t p = 0; p < n_pins; ++p) {
    const bool touched = fanin_count[p] > 0 || fanout_count[p] > 0;
    if (!touched) continue;
    ++in_graph_pins;
    if (fanin_count[p] == 0) {
      level_of_pin_[p] = 0;
      ready.push(static_cast<PinId>(p));
    }
  }

  std::vector<int> remaining = fanin_count;
  size_t processed = 0;
  while (!ready.empty()) {
    const PinId u = ready.front();
    ready.pop();
    ++processed;
    const int lu = level_of_pin_[static_cast<size_t>(u)];
    for (int ai : fanout[static_cast<size_t>(u)]) {
      const PinId v = arcs_[static_cast<size_t>(ai)].to;
      level_of_pin_[static_cast<size_t>(v)] =
          std::max(level_of_pin_[static_cast<size_t>(v)], lu + 1);
      if (--remaining[static_cast<size_t>(v)] == 0) ready.push(v);
    }
  }
  if (processed != in_graph_pins)
    throw std::runtime_error("timing graph has a combinational cycle");

  int max_level = -1;
  for (size_t p = 0; p < n_pins; ++p)
    max_level = std::max(max_level, level_of_pin_[p]);
  levels_.resize(static_cast<size_t>(max_level + 1));
  for (size_t p = 0; p < n_pins; ++p)
    if (level_of_pin_[p] >= 0)
      levels_[static_cast<size_t>(level_of_pin_[p])].push_back(static_cast<PinId>(p));

  // Endpoints: data pins of sequential cells + primary-output pads.
  for (size_t c = 0; c < nl.num_cells(); ++c) {
    const auto cell_id = static_cast<CellId>(c);
    const netlist::Cell& cell = nl.cell(cell_id);
    const liberty::LibCell& master = nl.lib_cell_of(cell_id);
    if (master.kind == CellKind::Sequential) {
      for (size_t lp = 0; lp < master.pins.size(); ++lp) {
        const liberty::LibPin& pin = master.pins[lp];
        if (pin.dir != PinDir::Input || pin.is_clock) continue;
        const PinId p = cell.first_pin + static_cast<int>(lp);
        if (!in_graph(p)) continue;
        endpoints_.push_back({p, EndpointKind::FlopData, master.setup_time,
                              master.hold_time});
      }
    } else if (master.kind == CellKind::PortOut) {
      const PinId p = cell.first_pin;
      if (!in_graph(p)) continue;
      endpoints_.push_back({p, EndpointKind::PrimaryOutput, 0.0, 0.0});
    }
  }
}

}  // namespace dtp::sta
