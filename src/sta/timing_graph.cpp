#include "sta/timing_graph.h"

#include <queue>
#include <stdexcept>

#include "common/assert.h"

namespace dtp::sta {

using liberty::CellKind;
using liberty::PinDir;

TimingGraph::TimingGraph(const netlist::Netlist& nl) : nl_(&nl) {
  const size_t n_pins = nl.num_pins();
  const size_t n_nets = nl.num_nets();
  level_of_pin_.assign(n_pins, -1);
  is_clock_source_.assign(n_pins, 0);
  is_clock_net_.assign(n_nets, 0);
  driven_net_.assign(n_pins, netlist::kInvalidId);

  // Classify clock nets: any net touching a clock lib-pin.
  for (size_t n = 0; n < n_nets; ++n) {
    for (PinId p : nl.net(static_cast<NetId>(n)).pins) {
      if (nl.lib_pin_of(p).is_clock) {
        is_clock_net_[n] = 1;
        break;
      }
    }
  }

  // Net arcs for timing nets.
  for (size_t n = 0; n < n_nets; ++n) {
    const netlist::Net& net = nl.net(static_cast<NetId>(n));
    if (is_clock_net_[n] || net.driver == netlist::kInvalidId || net.pins.size() < 2)
      continue;
    timing_nets_.push_back(static_cast<NetId>(n));
    driven_net_[static_cast<size_t>(net.driver)] = static_cast<NetId>(n);
    for (size_t k = 0; k < net.pins.size(); ++k) {
      const PinId sink = net.pins[k];
      if (sink == net.driver) continue;
      Arc arc;
      arc.from = net.driver;
      arc.to = sink;
      arc.kind = ArcKind::NetArc;
      arc.net = static_cast<NetId>(n);
      arc.sink_index = static_cast<int>(k);
      arcs_.push_back(arc);
    }
  }

  // Cell arcs.  The NLDM tables are referenced through the deduplicated
  // (lib cell, arc) table — one entry per library arc in use, shared by every
  // instance of the master.
  std::vector<int> master_first_entry(nl.library().size(), -1);
  for (size_t c = 0; c < nl.num_cells(); ++c) {
    const netlist::Cell& cell = nl.cell(static_cast<CellId>(c));
    const liberty::LibCell& master = nl.lib_cell_of(static_cast<CellId>(c));
    for (size_t a = 0; a < master.arcs.size(); ++a) {
      const liberty::TimingArc& lib_arc = master.arcs[a];
      const PinId from = cell.first_pin + lib_arc.from_pin;
      const PinId to = cell.first_pin + lib_arc.to_pin;
      // Both endpoints must be electrically meaningful: the output must drive
      // a timing net, and the input must either be clocked (level-0 source)
      // or connected to a timing net.
      if (driven_net_[static_cast<size_t>(to)] == netlist::kInvalidId) continue;
      const NetId in_net = nl.pin(from).net;
      const bool clocked = nl.lib_pin_of(from).is_clock;
      if (!clocked &&
          (in_net == netlist::kInvalidId || is_clock_net_[static_cast<size_t>(in_net)]))
        continue;
      int& first_entry = master_first_entry[static_cast<size_t>(cell.lib_cell)];
      if (first_entry < 0) {
        first_entry = static_cast<int>(lib_arc_keys_.size());
        for (size_t k = 0; k < master.arcs.size(); ++k)
          lib_arc_keys_.emplace_back(cell.lib_cell, static_cast<int>(k));
      }
      Arc arc;
      arc.from = from;
      arc.to = to;
      arc.kind = ArcKind::CellArc;
      arc.lib_arc = first_entry + static_cast<int>(a);
      arcs_.push_back(arc);
      if (clocked) is_clock_source_[static_cast<size_t>(from)] = 1;
    }
  }
  rebind_library(nl.library());

  // Fan-in CSR and Kahn levelization (longest-path levels).
  std::vector<int> fanin_count(n_pins, 0);
  std::vector<int> fanout_count(n_pins, 0);
  for (const Arc& a : arcs_) {
    ++fanin_count[static_cast<size_t>(a.to)];
    ++fanout_count[static_cast<size_t>(a.from)];
  }
  fanin_offsets_.assign(n_pins + 1, 0);
  {
    int offset = 0;
    for (size_t p = 0; p < n_pins; ++p) {
      fanin_offsets_[p] = offset;
      offset += fanin_count[p];
    }
    fanin_offsets_[n_pins] = offset;
    fanin_arcs_.resize(static_cast<size_t>(offset));
    std::vector<int> cursor(fanin_offsets_.begin(), fanin_offsets_.end() - 1);
    for (size_t ai = 0; ai < arcs_.size(); ++ai) {
      int& c = cursor[static_cast<size_t>(arcs_[ai].to)];
      fanin_arcs_[static_cast<size_t>(c)] = static_cast<int>(ai);
      ++c;
    }
  }

  // Fan-out CSR (kept for incremental cone propagation).
  fanout_offsets_.assign(n_pins + 1, 0);
  {
    int offset = 0;
    for (size_t p = 0; p < n_pins; ++p) {
      fanout_offsets_[p] = offset;
      offset += fanout_count[p];
    }
    fanout_offsets_[n_pins] = offset;
    fanout_arcs_.resize(static_cast<size_t>(offset));
    std::vector<int> cursor(fanout_offsets_.begin(), fanout_offsets_.end() - 1);
    for (size_t ai = 0; ai < arcs_.size(); ++ai) {
      int& c = cursor[static_cast<size_t>(arcs_[ai].from)];
      fanout_arcs_[static_cast<size_t>(c)] = static_cast<int>(ai);
      ++c;
    }
  }

  size_t in_graph_pins = 0;
  std::queue<PinId> ready;
  for (size_t p = 0; p < n_pins; ++p) {
    const bool touched = fanin_count[p] > 0 || fanout_count[p] > 0;
    if (!touched) continue;
    ++in_graph_pins;
    if (fanin_count[p] == 0) {
      level_of_pin_[p] = 0;
      ready.push(static_cast<PinId>(p));
    }
  }

  std::vector<int> remaining = fanin_count;
  size_t processed = 0;
  while (!ready.empty()) {
    const PinId u = ready.front();
    ready.pop();
    ++processed;
    const int lu = level_of_pin_[static_cast<size_t>(u)];
    for (int ai : fanout(u)) {
      const PinId v = arcs_[static_cast<size_t>(ai)].to;
      level_of_pin_[static_cast<size_t>(v)] =
          std::max(level_of_pin_[static_cast<size_t>(v)], lu + 1);
      if (--remaining[static_cast<size_t>(v)] == 0) ready.push(v);
    }
  }
  if (processed != in_graph_pins)
    throw std::runtime_error("timing graph has a combinational cycle");

  // CSR level schedule: counting sort of in-graph pins by level, ascending
  // pin id within a level (the iteration order every sweep preserves).
  int max_level = -1;
  for (size_t p = 0; p < n_pins; ++p)
    max_level = std::max(max_level, level_of_pin_[p]);
  const size_t n_levels = static_cast<size_t>(max_level + 1);
  level_offsets_.assign(n_levels + 1, 0);
  for (size_t p = 0; p < n_pins; ++p)
    if (level_of_pin_[p] >= 0)
      ++level_offsets_[static_cast<size_t>(level_of_pin_[p]) + 1];
  for (size_t l = 1; l <= n_levels; ++l)
    level_offsets_[l] += level_offsets_[l - 1];
  level_pins_.resize(static_cast<size_t>(level_offsets_[n_levels]));
  {
    std::vector<int> cursor(level_offsets_.begin(), level_offsets_.end() - 1);
    for (size_t p = 0; p < n_pins; ++p) {
      if (level_of_pin_[p] < 0) continue;
      int& c = cursor[static_cast<size_t>(level_of_pin_[p])];
      level_pins_[static_cast<size_t>(c)] = static_cast<PinId>(p);
      ++c;
    }
  }

  // Endpoints: data pins of sequential cells + primary-output pads.
  for (size_t c = 0; c < nl.num_cells(); ++c) {
    const auto cell_id = static_cast<CellId>(c);
    const netlist::Cell& cell = nl.cell(cell_id);
    const liberty::LibCell& master = nl.lib_cell_of(cell_id);
    if (master.kind == CellKind::Sequential) {
      for (size_t lp = 0; lp < master.pins.size(); ++lp) {
        const liberty::LibPin& pin = master.pins[lp];
        if (pin.dir != PinDir::Input || pin.is_clock) continue;
        const PinId p = cell.first_pin + static_cast<int>(lp);
        if (!in_graph(p)) continue;
        endpoints_.push_back({p, EndpointKind::FlopData, master.setup_time,
                              master.hold_time});
      }
    } else if (master.kind == CellKind::PortOut) {
      const PinId p = cell.first_pin;
      if (!in_graph(p)) continue;
      endpoints_.push_back({p, EndpointKind::PrimaryOutput, 0.0, 0.0});
    }
  }
}

void TimingGraph::rebind_library(const liberty::CellLibrary& lib) {
  lib_arc_ptrs_.resize(lib_arc_keys_.size());
  for (size_t i = 0; i < lib_arc_keys_.size(); ++i) {
    const auto& [cell_idx, arc_idx] = lib_arc_keys_[i];
    const liberty::LibCell& master = lib.cell(cell_idx);
    DTP_ASSERT_MSG(static_cast<size_t>(arc_idx) < master.arcs.size(),
                   "rebind_library: library arc table shrank");
    lib_arc_ptrs_[i] = &master.arcs[static_cast<size_t>(arc_idx)];
  }
}

}  // namespace dtp::sta
