// Timing report generation on top of the Timer: OpenTimer-style text output
// for humans and scripts — summary block, per-endpoint path reports with
// arrival/required annotations, slack histogram, and design-rule (DRV)
// checks for maximum slew and maximum capacitance.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sta/timer.h"

namespace dtp::sta {

struct ReportOptions {
  int max_paths = 5;          // endpoints reported, worst-slack first
  int histogram_buckets = 10;
  // DRV limits; <= 0 disables the corresponding check.
  double max_slew = 0.0;      // ns
  double max_cap = 0.0;       // pF
};

struct DrvViolation {
  PinId pin = netlist::kInvalidId;
  enum Kind : uint8_t { Slew, Cap } kind = Slew;
  double value = 0.0;
  double limit = 0.0;
};

// Scans all in-graph pins for slew violations and all timing nets for load
// violations.  Requires a completed propagate().
std::vector<DrvViolation> check_drv(const Timer& timer, double max_slew,
                                    double max_cap);

// Writes the full report; requires evaluate() (and runs update_required()
// itself so per-pin RAT columns are available).
void write_timing_report(Timer& timer, const ReportOptions& options,
                         std::ostream& out);

// Convenience: report as a string (tests, logging).
std::string timing_report_string(Timer& timer, const ReportOptions& options = {});

}  // namespace dtp::sta
