// Per-net interconnect timing: Steiner tree + Elmore delay state.
//
// Implements the forward half of the paper's differentiable wire delay model
// (§3.4.2, Eq. 7): four dynamic-programming passes over the net's routing
// tree, alternating bottom-up and top-down, producing per-node
//
//   Load    — downstream capacitance (bottom-up),
//   Delay   — Elmore delay from the driver (top-down),
//   LDelay  — cap-weighted delay sum (bottom-up),
//   Beta    — second moment accumulator (top-down),
//   Imp2    — impulse^2 = 2*Beta - Delay^2, the slew-degradation term.
//
// Edge parasitics follow the lumped pi model: an edge of rectilinear length L
// contributes resistance r_unit*L and capacitance c_unit*L split half to each
// endpoint; sink pin input capacitances add to their nodes.  Load at the root
// is the total capacitive load the driving cell arc sees (the LUT y-axis).
//
// Imp2 is clamped from below at kImpulseFloor for sqrt/division safety; the
// clamp mask is kept so the backward pass can zero the corresponding adjoint
// (a clamped value has no dependence on upstream variables).
#pragma once

#include <span>
#include <vector>

#include "rsmt/steiner_tree.h"

namespace dtp::sta {

inline constexpr double kImpulseFloor = 1e-18;  // ns^2

// Interconnect delay model used for arrival-time propagation (paper §3.4.2
// notes the framework generalizes to any analytical model):
//   Elmore — first moment m1 (the paper's model),
//   D2M    — the two-moment metric ln2 * m1^2 / sqrt(m2), less pessimistic
//            for far sinks; m2 is the Beta accumulator of Eq. 7d.
// Both are differentiable through the same adjoint with different seeds.
enum class WireDelayModel : uint8_t { Elmore, D2M };

struct NetTiming {
  rsmt::SteinerTree tree;
  // Per tree node (size == tree.num_nodes()):
  std::vector<double> edge_len;  // rectilinear length of the edge to parent
  std::vector<double> edge_res;  // resistance of the edge to parent
  std::vector<double> node_cap;  // pin cap + half of each adjacent edge cap
  std::vector<double> load;
  std::vector<double> delay;
  std::vector<double> ldelay;
  std::vector<double> beta;
  std::vector<double> imp2;            // clamped at kImpulseFloor
  std::vector<char> imp2_clamped;
  // Delay used for AT propagation under the selected wire model: equals
  // `delay` for Elmore; the D2M metric otherwise.  Nodes where m2 is too
  // small for D2M (degenerate geometry) fall back to Elmore, recorded in
  // `d2m_degenerate` so the backward pass seeds accordingly.
  std::vector<double> used_delay;
  std::vector<char> d2m_degenerate;

  double root_load() const { return load[static_cast<size_t>(tree.root)]; }
};

// Non-owning slice of the shared timing data plane for one net: the tree view
// plus per-node state spans into the TimingWorkspace arenas (DESIGN.md §10).
// Field names mirror NetTiming so the Elmore passes and their consumers are
// written once; spans are mutable — the forward pass fills them in place.
struct NetTimingView {
  rsmt::SteinerTreeView tree;
  std::span<double> edge_len;
  std::span<double> edge_res;
  std::span<double> node_cap;
  std::span<double> load;
  std::span<double> delay;
  std::span<double> ldelay;
  std::span<double> beta;
  std::span<double> imp2;
  std::span<char> imp2_clamped;
  std::span<double> used_delay;
  std::span<char> d2m_degenerate;

  double root_load() const { return load[static_cast<size_t>(tree.root)]; }
};

// Builds a view over an owning NetTiming, resizing its state vectors to the
// tree's node count (adapter for tests/benches that keep per-net objects).
NetTimingView view_of(NetTiming& nt);

// Recomputes edge lengths/parasitics and runs the 4 Elmore passes, then
// derives `used_delay` for the selected wire model.
// `pin_caps[k]` is the input capacitance of tree pin k (0 for the driver).
// Assumes tree topology and node positions are current.  Allocation-free:
// writes only through the view's pre-sized spans.
void elmore_forward(const NetTimingView& nt, std::span<const double> pin_caps,
                    double r_unit, double c_unit,
                    WireDelayModel model = WireDelayModel::Elmore);

// Owning-storage adapter: resizes nt's vectors and runs the view pass.
void elmore_forward(NetTiming& nt, std::span<const double> pin_caps,
                    double r_unit, double c_unit,
                    WireDelayModel model = WireDelayModel::Elmore);

inline constexpr double kD2mBetaFloor = 1e-24;  // ns^2, degeneracy threshold
inline constexpr double kLn2 = 0.6931471805599453;

}  // namespace dtp::sta
