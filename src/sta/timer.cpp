#include "sta/timer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/assert.h"
#include "common/smooth_math.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sta/cell_arc_eval.h"

namespace dtp::sta {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
constexpr double kPosInf = std::numeric_limits<double>::infinity();

double lookup_override(const std::unordered_map<std::string, double>& overrides,
                       const std::string& key, double fallback) {
  const auto it = overrides.find(key);
  return it == overrides.end() ? fallback : it->second;
}
}  // namespace

Timer::Timer(const netlist::Design& design, const TimingGraph& graph,
             TimerOptions options)
    : design_(&design), graph_(&graph), options_(options) {
  const netlist::Netlist& nl = design.netlist;
  const size_t n_pins = nl.num_pins();
  pin_pos_.resize(n_pins);
  net_timing_.resize(nl.num_nets());
  at_.assign(n_pins * 2, kNegInf);
  slew_.assign(n_pins * 2, nl.library().default_slew);
  if (options_.enable_early) {
    at_early_.assign(n_pins * 2, kPosInf);
    slew_early_.assign(n_pins * 2, nl.library().default_slew);
  }

  // Per-net sink pin caps (PO pads add the constraint's output load).
  const netlist::Constraints& con = design.constraints;
  net_pin_caps_.resize(nl.num_nets());
  for (NetId n : graph.timing_nets()) {
    const netlist::Net& net = nl.net(n);
    auto& caps = net_pin_caps_[static_cast<size_t>(n)];
    caps.resize(net.pins.size(), 0.0);
    for (size_t k = 0; k < net.pins.size(); ++k) {
      const PinId p = net.pins[k];
      double cap = nl.pin_cap(p);
      const CellId c = nl.pin(p).cell;
      if (nl.lib_cell_of(c).kind == liberty::CellKind::PortOut)
        cap += lookup_override(con.output_load_override, nl.cell(c).name,
                               con.output_load);
      caps[k] = cap;
    }
  }

  // Source initial conditions.
  src_at_.assign(n_pins * 2, kNegInf);
  src_slew_.assign(n_pins * 2, nl.library().default_slew);
  if (graph.num_levels() > 0) {
    for (PinId p : graph.level(0)) {
      double at0 = kNegInf;
      double slew0 = nl.library().default_slew;
      if (graph.pin_is_clock_source(p)) {
        at0 = 0.0;  // ideal clock: launch edge at t = 0
        slew0 = con.clock_slew;
      } else {
        const CellId c = nl.pin(p).cell;
        if (nl.lib_cell_of(c).kind == liberty::CellKind::PortIn) {
          const std::string& name = nl.cell(c).name;
          at0 = lookup_override(con.input_delay_override, name, con.input_delay);
          slew0 = lookup_override(con.input_slew_override, name, con.input_slew);
        }
      }
      for (int tr = 0; tr < 2; ++tr) {
        src_at_[static_cast<size_t>(p) * 2 + static_cast<size_t>(tr)] = at0;
        src_slew_[static_cast<size_t>(p) * 2 + static_cast<size_t>(tr)] = slew0;
      }
    }
  }

  // Endpoint required arrival times (late/setup).
  const auto& endpoints = graph.endpoints();
  endpoint_rat_.resize(endpoints.size());
  for (size_t e = 0; e < endpoints.size(); ++e) {
    const Endpoint& ep = endpoints[e];
    double margin = ep.setup;
    if (ep.kind == EndpointKind::PrimaryOutput) {
      const std::string& name = nl.cell(nl.pin(ep.pin).cell).name;
      margin = lookup_override(con.output_delay_override, name, con.output_delay);
    }
    endpoint_rat_[e] = con.clock_period - margin;
  }
  endpoint_slack_.assign(endpoints.size(), kPosInf);
  endpoint_tr_weights_.assign(endpoints.size() * 2, 0.0);
  endpoint_hold_req_.resize(endpoints.size());
  for (size_t e = 0; e < endpoints.size(); ++e) {
    endpoint_hold_req_[e] =
        endpoints[e].kind == EndpointKind::FlopData ? endpoints[e].hold : 0.0;
  }
  endpoint_hold_slack_.assign(endpoints.size(), kPosInf);
  endpoint_hold_tr_weights_.assign(endpoints.size() * 2, 0.0);
  ep_setup_lut_.assign(endpoints.size(), nullptr);
  ep_hold_lut_.assign(endpoints.size(), nullptr);
  for (size_t e = 0; e < endpoints.size(); ++e) {
    if (endpoints[e].kind != EndpointKind::FlopData) continue;
    const liberty::LibCell& master = nl.lib_cell_of(nl.pin(endpoints[e].pin).cell);
    if (master.setup_lut.valid()) ep_setup_lut_[e] = &master.setup_lut;
    if (master.hold_lut.valid()) ep_hold_lut_[e] = &master.hold_lut;
  }
}

Timer::EndpointReq Timer::endpoint_setup_rat(size_t e, int tr) const {
  EndpointReq req;
  if (const liberty::Lut* lut = ep_setup_lut_[e]) {
    const PinId p = graph_->endpoints()[e].pin;
    const auto q = lut->lookup_grad(slew(p, tr), design_->constraints.clock_slew);
    // rat = T - setup(data slew, clock slew).
    req.value = design_->constraints.clock_period - q.value;
    req.d_dslew = -q.d_dx;
  } else {
    req.value = endpoint_rat_[e];
  }
  return req;
}

Timer::EndpointReq Timer::endpoint_hold_requirement(size_t e, int tr) const {
  EndpointReq req;
  if (const liberty::Lut* lut = ep_hold_lut_[e]) {
    const PinId p = graph_->endpoints()[e].pin;
    const double sl = slew_early_.empty()
                          ? design_->netlist.library().default_slew
                          : slew_early_[static_cast<size_t>(p) * 2 +
                                        static_cast<size_t>(tr)];
    const auto q = lut->lookup_grad(sl, design_->constraints.clock_slew);
    req.value = q.value;
    req.d_dslew = q.d_dx;
  } else {
    req.value = endpoint_hold_req_[e];
  }
  return req;
}

TimingMetrics Timer::evaluate(std::span<const double> cell_x,
                              std::span<const double> cell_y) {
  DTP_TRACE_SCOPE("sta_evaluate");
  update_positions(cell_x, cell_y);
  build_trees();
  run_elmore();
  propagate();
  update_slacks();
  return metrics_;
}

void Timer::update_positions(std::span<const double> cell_x,
                             std::span<const double> cell_y) {
  const netlist::Netlist& nl = design_->netlist;
  DTP_ASSERT(cell_x.size() == nl.num_cells() && cell_y.size() == nl.num_cells());
  for (size_t p = 0; p < nl.num_pins(); ++p) {
    const netlist::Pin& pin = nl.pin(static_cast<PinId>(p));
    const Vec2 off = nl.pin_offset(static_cast<PinId>(p));
    pin_pos_[p] = {cell_x[static_cast<size_t>(pin.cell)] + off.x,
                   cell_y[static_cast<size_t>(pin.cell)] + off.y};
  }
}

void Timer::build_trees() {
  DTP_TRACE_SCOPE("rsmt_build_trees");
  const netlist::Netlist& nl = design_->netlist;
  const auto& nets = graph_->timing_nets();
  ThreadPool::global().parallel_for(
      0, nets.size(),
      [&](size_t i) {
        const NetId n = nets[i];
        const netlist::Net& net = nl.net(n);
        std::vector<Vec2> pts(net.pins.size());
        int driver_idx = 0;
        for (size_t k = 0; k < net.pins.size(); ++k) {
          pts[k] = pin_pos_[static_cast<size_t>(net.pins[k])];
          if (net.pins[k] == net.driver) driver_idx = static_cast<int>(k);
        }
        net_timing_[static_cast<size_t>(n)].tree =
            rsmt::build_rsmt(pts, driver_idx, options_.rsmt);
      },
      /*grain=*/8);
  trees_built_ = true;
}

void Timer::drag_trees() {
  DTP_TRACE_SCOPE("rsmt_drag_trees");
  DTP_ASSERT_MSG(trees_built_, "drag_trees requires build_trees first");
  const netlist::Netlist& nl = design_->netlist;
  const auto& nets = graph_->timing_nets();
  ThreadPool::global().parallel_for(
      0, nets.size(),
      [&](size_t i) {
        const NetId n = nets[i];
        const netlist::Net& net = nl.net(n);
        std::vector<Vec2> pts(net.pins.size());
        for (size_t k = 0; k < net.pins.size(); ++k)
          pts[k] = pin_pos_[static_cast<size_t>(net.pins[k])];
        rsmt::update_positions(net_timing_[static_cast<size_t>(n)].tree, pts);
      },
      /*grain=*/32);
}

void Timer::run_elmore() {
  DTP_TRACE_SCOPE("elmore_forward");
  const netlist::Constraints& con = design_->constraints;
  const auto& nets = graph_->timing_nets();
  ThreadPool::global().parallel_for(
      0, nets.size(),
      [&](size_t i) {
        const NetId n = nets[i];
        elmore_forward(net_timing_[static_cast<size_t>(n)],
                       net_pin_caps_[static_cast<size_t>(n)], con.wire_res,
                       con.wire_cap, options_.wire_model);
      },
      /*grain=*/32);
}

void Timer::init_sources(bool early) {
  const size_t n = at_.size();
  if (!early) {
    for (size_t i = 0; i < n; ++i) {
      at_[i] = src_at_[i];
      slew_[i] = src_slew_[i];
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      // Early arrival of a source equals its (single) arrival time; pins that
      // are not sources start at +inf so min-aggregation works.
      at_early_[i] = std::isfinite(src_at_[i]) ? src_at_[i] : kPosInf;
      slew_early_[i] = src_slew_[i];
    }
  }
}

void Timer::propagate() {
  DTP_TRACE_SCOPE("sta_propagate");
  ThreadPool::global().mark("sta.propagate");
  init_sources(/*early=*/false);
  for (int l = 1; l < graph_->num_levels(); ++l) propagate_level(l, false);
  if (options_.enable_early) {
    init_sources(/*early=*/true);
    for (int l = 1; l < graph_->num_levels(); ++l) propagate_level(l, true);
  }
}

bool Timer::update_pin(PinId v, bool early) {
  double* at = early ? at_early_.data() : at_.data();
  double* slew = early ? slew_early_.data() : slew_.data();
  const bool smooth = options_.mode == AggMode::Smooth;
  const double gamma = options_.gamma;

  const auto fanin = graph_->fanin(v);
  if (fanin.empty()) return false;  // sources keep their initial conditions
  const Arc& first = graph_->arcs()[static_cast<size_t>(fanin[0])];
  bool changed = false;
  auto store = [&](size_t idx, double value, double* array) {
    if (array[idx] != value) {
      array[idx] = value;
      changed = true;
    }
  };

  if (first.kind == ArcKind::NetArc) {
    // Exactly one fan-in net arc per pin (Eq. 9): no aggregation needed.
    DTP_ASSERT(fanin.size() == 1);
    const NetTiming& nt = net_timing_[static_cast<size_t>(first.net)];
    // Tree pin index == net-pin index of the sink.
    const size_t node = static_cast<size_t>(first.sink_index);
    const double d = nt.used_delay[node];
    const double imp2 = nt.imp2[node];
    for (int tr = 0; tr < 2; ++tr) {
      const size_t vi = static_cast<size_t>(v) * 2 + static_cast<size_t>(tr);
      const size_t ui = static_cast<size_t>(first.from) * 2 + static_cast<size_t>(tr);
      store(vi, at[ui] + d, at);                                    // Eq. 9a
      store(vi, std::sqrt(slew[ui] * slew[ui] + imp2), slew);       // Eq. 9b
    }
    return changed;
  }

  // Cell arcs: aggregate candidates per output transition (Eq. 11).
  const NetId out_net = graph_->driven_timing_net(v);
  const double load = out_net == netlist::kInvalidId
                          ? 0.0
                          : net_timing_[static_cast<size_t>(out_net)].root_load();
  thread_local std::vector<ArcCandidate> cands;
  thread_local std::vector<double> values;
  thread_local std::vector<double> weights;
  for (int tr_out = 0; tr_out < 2; ++tr_out) {
    cands.clear();
    for (int ai : fanin) {
      const Arc& arc = graph_->arcs()[static_cast<size_t>(ai)];
      DTP_ASSERT(arc.kind == ArcKind::CellArc);
      gather_arc_candidates(arc, tr_out, at, slew, load, cands);
    }
    const size_t vi = static_cast<size_t>(v) * 2 + static_cast<size_t>(tr_out);
    if (cands.empty()) {
      store(vi, early ? kPosInf : kNegInf, at);
      continue;
    }
    // Arrival time aggregation.
    values.resize(cands.size());
    for (size_t k = 0; k < cands.size(); ++k) values[k] = cands[k].at_value;
    double agg;
    if (early)
      agg = smooth ? smooth_min(values, gamma, weights)
                   : hard_min(values, weights);
    else
      agg = smooth ? smooth_max(values, gamma, weights)
                   : hard_max(values, weights);
    store(vi, agg, at);
    // Slew aggregation (Eq. 11d): late takes the worst (max) slew, early the
    // best (min).
    for (size_t k = 0; k < cands.size(); ++k) values[k] = cands[k].slew_q.value;
    if (early)
      agg = smooth ? smooth_min(values, gamma, weights)
                   : hard_min(values, weights);
    else
      agg = smooth ? smooth_max(values, gamma, weights)
                   : hard_max(values, weights);
    store(vi, agg, slew);
  }
  return changed;
}

void Timer::propagate_level(int level, bool early) {
  const auto& pins = graph_->level(level);
  if (!profile_levels_) {
    ThreadPool::global().parallel_for(
        0, pins.size(), [&](size_t i) { update_pin(pins[i], early); },
        /*grain=*/16);
    return;
  }
  static obs::Histogram& dispatch_hist =
      obs::MetricsRegistry::instance().histogram("sta.level_dispatch_ms");
  Stopwatch clock;
  ThreadPool::global().parallel_for(
      0, pins.size(), [&](size_t i) { update_pin(pins[i], early); },
      /*grain=*/16);
  const double ms = clock.elapsed_ms();
  if (level_profile_.size() < static_cast<size_t>(graph_->num_levels()))
    level_profile_.resize(static_cast<size_t>(graph_->num_levels()));
  LevelStat& stat = level_profile_[static_cast<size_t>(level)];
  ++stat.calls;
  stat.ms += ms;
  dispatch_hist.observe(ms);
}

TimingMetrics Timer::evaluate_incremental(std::span<const double> cell_x,
                                          std::span<const double> cell_y,
                                          std::span<const CellId> moved_cells) {
  DTP_ASSERT_MSG(trees_built_, "evaluate_incremental requires a prior evaluate()");
  const netlist::Netlist& nl = design_->netlist;
  const netlist::Constraints& con = design_->constraints;

  // 1. Refresh pin positions of the moved cells.
  for (const CellId c : moved_cells) {
    const netlist::Cell& cell = nl.cell(c);
    for (int k = 0; k < cell.num_pins; ++k) {
      const PinId p = cell.first_pin + k;
      const Vec2 off = nl.pin_offset(p);
      pin_pos_[static_cast<size_t>(p)] = {cell_x[static_cast<size_t>(c)] + off.x,
                                          cell_y[static_cast<size_t>(c)] + off.y};
    }
  }

  // 2. Rebuild + re-time every affected timing net.
  thread_local std::vector<NetId> nets;
  nets.clear();
  for (const CellId c : moved_cells) {
    const netlist::Cell& cell = nl.cell(c);
    for (int k = 0; k < cell.num_pins; ++k) {
      const NetId n = nl.pin(cell.first_pin + k).net;
      if (n == netlist::kInvalidId || graph_->is_clock_net(n)) continue;
      if (net_timing_[static_cast<size_t>(n)].tree.num_nodes() == 0) continue;
      nets.push_back(n);
    }
  }
  std::sort(nets.begin(), nets.end());
  nets.erase(std::unique(nets.begin(), nets.end()), nets.end());

  // Level-ordered worklist of pins whose timing may have changed.
  using Entry = std::pair<int, PinId>;  // (level, pin)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> worklist;
  thread_local std::vector<char> queued;
  queued.assign(nl.num_pins(), 0);
  auto enqueue = [&](PinId p) {
    if (queued[static_cast<size_t>(p)]) return;
    queued[static_cast<size_t>(p)] = 1;
    worklist.emplace(graph_->level_of(p), p);
  };

  for (const NetId n : nets) {
    const netlist::Net& net = nl.net(n);
    std::vector<Vec2> pts(net.pins.size());
    int driver_idx = 0;
    for (size_t k = 0; k < net.pins.size(); ++k) {
      pts[k] = pin_pos_[static_cast<size_t>(net.pins[k])];
      if (net.pins[k] == net.driver) driver_idx = static_cast<int>(k);
    }
    NetTiming& nt = net_timing_[static_cast<size_t>(n)];
    nt.tree = rsmt::build_rsmt(pts, driver_idx, options_.rsmt);
    elmore_forward(nt, net_pin_caps_[static_cast<size_t>(n)], con.wire_res,
                   con.wire_cap, options_.wire_model);
    // Seeds: sinks (net delay changed) and the driver (its load changed).
    for (const PinId p : net.pins)
      if (graph_->in_graph(p)) enqueue(p);
  }

  // 3. Cone propagation in level order; unchanged pins cut the cone.
  while (!worklist.empty()) {
    const PinId v = worklist.top().second;
    worklist.pop();
    queued[static_cast<size_t>(v)] = 0;
    bool changed = update_pin(v, /*early=*/false);
    if (options_.enable_early) changed |= update_pin(v, /*early=*/true);
    if (!changed) continue;
    for (const int ai : graph_->fanout(v))
      enqueue(graph_->arcs()[static_cast<size_t>(ai)].to);
  }

  // 4. Refresh slacks/metrics (O(endpoints)).
  update_slacks();
  return metrics_;
}

void Timer::update_slacks() {
  DTP_TRACE_SCOPE("sta_update_slacks");
  const auto& endpoints = graph_->endpoints();
  const bool smooth = options_.mode == AggMode::Smooth;
  const double gamma = options_.gamma;

  TimingMetrics m;
  m.wns = kPosInf;
  m.wns_smooth = kPosInf;
  m.hold_wns = kPosInf;

  thread_local std::vector<double> slacks2;
  thread_local std::vector<double> weights;
  std::vector<double> smooth_ep_slacks;
  smooth_ep_slacks.reserve(endpoints.size());

  for (size_t e = 0; e < endpoints.size(); ++e) {
    const Endpoint& ep = endpoints[e];
    slacks2.resize(2);
    bool reachable = false;
    for (int tr = 0; tr < 2; ++tr) {
      const double a = at(ep.pin, tr);
      slacks2[static_cast<size_t>(tr)] =
          std::isfinite(a) ? endpoint_setup_rat(e, tr).value - a : kPosInf;
      reachable |= std::isfinite(a);
    }
    if (!reachable) {
      endpoint_slack_[e] = kPosInf;
      endpoint_tr_weights_[e * 2] = endpoint_tr_weights_[e * 2 + 1] = 0.0;
      continue;
    }
    // Exact endpoint slack (worst transition) for reported metrics.
    const double hard_slack = std::min(slacks2[0], slacks2[1]);
    m.wns = std::min(m.wns, hard_slack);
    if (hard_slack < 0.0) {
      m.tns += hard_slack;
      ++m.num_violations;
    }
    if (smooth) {
      // +inf slack of an unreachable transition is fine: exp(-inf) = 0.
      const double s = smooth_min(slacks2, gamma, weights);
      endpoint_slack_[e] = s;
      endpoint_tr_weights_[e * 2] = weights[0];
      endpoint_tr_weights_[e * 2 + 1] = weights[1];
      smooth_ep_slacks.push_back(s);
    } else {
      endpoint_slack_[e] = hard_slack;
      endpoint_tr_weights_[e * 2] = slacks2[0] <= slacks2[1] ? 1.0 : 0.0;
      endpoint_tr_weights_[e * 2 + 1] = 1.0 - endpoint_tr_weights_[e * 2];
    }
  }
  if (!std::isfinite(m.wns)) m.wns = 0.0;  // no reachable endpoints

  if (smooth && !smooth_ep_slacks.empty()) {
    m.wns_smooth = smooth_min(smooth_ep_slacks, gamma, weights);
    m.tns_smooth = 0.0;
    for (double s : smooth_ep_slacks) m.tns_smooth += std::min(0.0, s);
  } else {
    m.wns_smooth = m.wns;
    m.tns_smooth = m.tns;
  }

  // Hold metrics from early arrivals (hold slack = at_early - requirement;
  // smooth mode also fills the smoothed aggregates and seed weights).
  if (options_.enable_early) {
    m.hold_wns = kPosInf;
    std::vector<double> smooth_hold_slacks;
    smooth_hold_slacks.reserve(endpoints.size());
    for (size_t e = 0; e < endpoints.size(); ++e) {
      const Endpoint& ep = endpoints[e];
      slacks2.resize(2);
      bool reachable = false;
      for (int tr = 0; tr < 2; ++tr) {
        const double a = at_early(ep.pin, tr);
        slacks2[static_cast<size_t>(tr)] =
            std::isfinite(a) ? a - endpoint_hold_requirement(e, tr).value
                             : kPosInf;
        reachable |= std::isfinite(a);
      }
      if (!reachable) {
        endpoint_hold_slack_[e] = kPosInf;
        endpoint_hold_tr_weights_[e * 2] = endpoint_hold_tr_weights_[e * 2 + 1] =
            0.0;
        continue;
      }
      const double hard_slack = std::min(slacks2[0], slacks2[1]);
      m.hold_wns = std::min(m.hold_wns, hard_slack);
      if (hard_slack < 0.0) m.hold_tns += hard_slack;
      if (smooth) {
        const double sv = smooth_min(slacks2, gamma, weights);
        endpoint_hold_slack_[e] = sv;
        endpoint_hold_tr_weights_[e * 2] = weights[0];
        endpoint_hold_tr_weights_[e * 2 + 1] = weights[1];
        smooth_hold_slacks.push_back(sv);
      } else {
        endpoint_hold_slack_[e] = hard_slack;
        endpoint_hold_tr_weights_[e * 2] = slacks2[0] <= slacks2[1] ? 1.0 : 0.0;
        endpoint_hold_tr_weights_[e * 2 + 1] =
            1.0 - endpoint_hold_tr_weights_[e * 2];
      }
    }
    if (!std::isfinite(m.hold_wns)) m.hold_wns = 0.0;
    if (smooth && !smooth_hold_slacks.empty()) {
      m.hold_wns_smooth = smooth_min(smooth_hold_slacks, gamma, weights);
      m.hold_tns_smooth = 0.0;
      for (double sv : smooth_hold_slacks)
        m.hold_tns_smooth += std::min(0.0, sv);
    } else {
      m.hold_wns_smooth = m.hold_wns;
      m.hold_tns_smooth = m.hold_tns;
    }
  } else {
    m.hold_wns = 0.0;
  }

  metrics_ = m;
}

void Timer::update_required() {
  const netlist::Netlist& nl = design_->netlist;
  rat_.assign(nl.num_pins() * 2, kPosInf);

  // Seed endpoints.
  const auto& endpoints = graph_->endpoints();
  for (size_t e = 0; e < endpoints.size(); ++e) {
    const PinId p = endpoints[e].pin;
    for (int tr = 0; tr < 2; ++tr)
      rat_[static_cast<size_t>(p) * 2 + static_cast<size_t>(tr)] =
          std::min(rat_[static_cast<size_t>(p) * 2 + static_cast<size_t>(tr)],
                   endpoint_setup_rat(e, tr).value);
  }

  // Sweep levels in reverse, relaxing RAT(from) from each fan-in arc of the
  // current pin (every arc is visited exactly once this way).
  thread_local std::vector<ArcCandidate> cands;
  for (int l = graph_->num_levels() - 1; l >= 1; --l) {
    for (const PinId v : graph_->level(l)) {
      const auto fanin = graph_->fanin(v);
      if (fanin.empty()) continue;
      const Arc& first = graph_->arcs()[static_cast<size_t>(fanin[0])];
      if (first.kind == ArcKind::NetArc) {
        const sta::NetTiming& nt = net_timing_[static_cast<size_t>(first.net)];
        const double d = nt.used_delay[static_cast<size_t>(first.sink_index)];
        for (int tr = 0; tr < 2; ++tr) {
          const size_t vi = static_cast<size_t>(v) * 2 + static_cast<size_t>(tr);
          const size_t ui =
              static_cast<size_t>(first.from) * 2 + static_cast<size_t>(tr);
          rat_[ui] = std::min(rat_[ui], rat_[vi] - d);
        }
      } else {
        const NetId out_net = graph_->driven_timing_net(v);
        const double load =
            out_net == netlist::kInvalidId
                ? 0.0
                : net_timing_[static_cast<size_t>(out_net)].root_load();
        for (int tr_out = 0; tr_out < 2; ++tr_out) {
          const size_t vi = static_cast<size_t>(v) * 2 + static_cast<size_t>(tr_out);
          if (!std::isfinite(rat_[vi])) continue;
          cands.clear();
          for (int ai : fanin)
            gather_arc_candidates(graph_->arcs()[static_cast<size_t>(ai)], tr_out,
                                  at_.data(), slew_.data(), load, cands);
          for (const ArcCandidate& c : cands) {
            const size_t ui =
                static_cast<size_t>(c.from) * 2 + static_cast<size_t>(c.tr_in);
            rat_[ui] = std::min(rat_[ui], rat_[vi] - c.delay_q.value);
          }
        }
      }
    }
  }
}

double Timer::pin_slack(PinId p) const {
  double worst = kPosInf;
  for (int tr = 0; tr < 2; ++tr) {
    const size_t i = static_cast<size_t>(p) * 2 + static_cast<size_t>(tr);
    if (std::isfinite(rat_[i]) && std::isfinite(at_[i]))
      worst = std::min(worst, rat_[i] - at_[i]);
  }
  return worst;
}

std::vector<Timer::PathNode> Timer::trace_critical_path(PinId endpoint) const {
  std::vector<PathNode> path;
  // Worst transition at the endpoint.
  int tr = at(endpoint, kRise) >= at(endpoint, kFall) ? kRise : kFall;
  PinId p = endpoint;
  while (true) {
    path.push_back({p, tr, at(p, tr)});
    const auto fanin = graph_->fanin(p);
    if (fanin.empty()) break;
    const Arc& first = graph_->arcs()[static_cast<size_t>(fanin[0])];
    if (first.kind == ArcKind::NetArc) {
      p = first.from;  // same transition through the wire
      continue;
    }
    // Pick the cell-arc candidate with the largest arrival.
    const NetId out_net = graph_->driven_timing_net(p);
    const double load = out_net == netlist::kInvalidId
                            ? 0.0
                            : net_timing_[static_cast<size_t>(out_net)].root_load();
    std::vector<ArcCandidate> cands;
    for (int ai : fanin)
      gather_arc_candidates(graph_->arcs()[static_cast<size_t>(ai)], tr, at_.data(),
                            slew_.data(), load, cands);
    if (cands.empty()) break;
    size_t best = 0;
    for (size_t k = 1; k < cands.size(); ++k)
      if (cands[k].at_value > cands[best].at_value) best = k;
    p = cands[best].from;
    tr = cands[best].tr_in;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace dtp::sta
