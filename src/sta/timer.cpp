#include "sta/timer.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <queue>

#include "common/assert.h"
#include "common/smooth_math.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "obs/activity/activity_tracker.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sta/cell_arc_eval.h"

namespace dtp::sta {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
constexpr double kPosInf = std::numeric_limits<double>::infinity();

// Levels smaller than this are fused with their neighbours into one serial
// pass; larger levels get their own parallel dispatch with this grain.
constexpr size_t kLevelGrain = 64;

double lookup_override(const std::unordered_map<std::string, double>& overrides,
                       const std::string& key, double fallback) {
  const auto it = overrides.find(key);
  return it == overrides.end() ? fallback : it->second;
}

// Live-span labels for per-level forward dispatches.  The profiler's live
// stack stores the pointer, so labels must be string literals — hence a
// static table with an overflow bucket for very deep graphs.
constexpr int kNumLevelLabels = 24;
const char* const kFwdLevelLabels[kNumLevelLabels] = {
    "sta_fwd_L0",  "sta_fwd_L1",  "sta_fwd_L2",  "sta_fwd_L3",
    "sta_fwd_L4",  "sta_fwd_L5",  "sta_fwd_L6",  "sta_fwd_L7",
    "sta_fwd_L8",  "sta_fwd_L9",  "sta_fwd_L10", "sta_fwd_L11",
    "sta_fwd_L12", "sta_fwd_L13", "sta_fwd_L14", "sta_fwd_L15",
    "sta_fwd_L16", "sta_fwd_L17", "sta_fwd_L18", "sta_fwd_L19",
    "sta_fwd_L20", "sta_fwd_L21", "sta_fwd_L22", "sta_fwd_L23"};

const char* fwd_level_label(int level) {
  return (level >= 0 && level < kNumLevelLabels) ? kFwdLevelLabels[level]
                                                 : "sta_fwd_Lhi";
}
}  // namespace

Timer::Timer(const netlist::Design& design, const TimingGraph& graph,
             TimerOptions options)
    : design_(&design), graph_(&graph), options_(options) {
  const netlist::Netlist& nl = design.netlist;
  ws_ = std::make_unique<TimingWorkspace>(design, graph, options_.enable_early,
                                          options_.rsmt,
                                          ThreadPool::global().num_slots());

  // Source initial conditions.
  const netlist::Constraints& con = design.constraints;
  if (graph.num_levels() > 0) {
    for (PinId p : graph.level(0)) {
      double at0 = kNegInf;
      double slew0 = nl.library().default_slew;
      if (graph.pin_is_clock_source(p)) {
        at0 = 0.0;  // ideal clock: launch edge at t = 0
        slew0 = con.clock_slew;
      } else {
        const CellId c = nl.pin(p).cell;
        if (nl.lib_cell_of(c).kind == liberty::CellKind::PortIn) {
          const std::string& name = nl.cell(c).name;
          at0 = lookup_override(con.input_delay_override, name, con.input_delay);
          slew0 = lookup_override(con.input_slew_override, name, con.input_slew);
        }
      }
      for (int tr = 0; tr < 2; ++tr) {
        ws_->src_at[static_cast<size_t>(p) * 2 + static_cast<size_t>(tr)] = at0;
        ws_->src_slew[static_cast<size_t>(p) * 2 + static_cast<size_t>(tr)] =
            slew0;
      }
    }
  }

  // Fused level schedule (levels 1..L-1): runs of consecutive small levels
  // become one serial group over the contiguous flat schedule — serial
  // execution in flat (level-major, pin-ascending) order is exactly the
  // per-level order, since update_pin only reads strictly lower levels.
  const auto offsets = graph.level_offsets();
  for (int l = 1; l < graph.num_levels(); ++l) {
    const size_t b = static_cast<size_t>(offsets[static_cast<size_t>(l)]);
    const size_t e = static_cast<size_t>(offsets[static_cast<size_t>(l) + 1]);
    if (e - b >= kLevelGrain) {
      level_groups_.push_back({b, e, /*serial=*/false});
    } else if (!level_groups_.empty() && level_groups_.back().serial &&
               level_groups_.back().end == b) {
      level_groups_.back().end = e;
    } else {
      level_groups_.push_back({b, e, /*serial=*/true});
    }
  }

  // Endpoint required arrival times (late/setup).
  const auto& endpoints = graph.endpoints();
  endpoint_rat_.resize(endpoints.size());
  for (size_t e = 0; e < endpoints.size(); ++e) {
    const Endpoint& ep = endpoints[e];
    double margin = ep.setup;
    if (ep.kind == EndpointKind::PrimaryOutput) {
      const std::string& name = nl.cell(nl.pin(ep.pin).cell).name;
      margin = lookup_override(con.output_delay_override, name, con.output_delay);
    }
    endpoint_rat_[e] = con.clock_period - margin;
  }
  endpoint_slack_.assign(endpoints.size(), kPosInf);
  endpoint_tr_weights_.assign(endpoints.size() * 2, 0.0);
  endpoint_hold_req_.resize(endpoints.size());
  for (size_t e = 0; e < endpoints.size(); ++e) {
    endpoint_hold_req_[e] =
        endpoints[e].kind == EndpointKind::FlopData ? endpoints[e].hold : 0.0;
  }
  endpoint_hold_slack_.assign(endpoints.size(), kPosInf);
  endpoint_hold_tr_weights_.assign(endpoints.size() * 2, 0.0);
  ep_setup_lut_.assign(endpoints.size(), nullptr);
  ep_hold_lut_.assign(endpoints.size(), nullptr);
  for (size_t e = 0; e < endpoints.size(); ++e) {
    if (endpoints[e].kind != EndpointKind::FlopData) continue;
    const liberty::LibCell& master = nl.lib_cell_of(nl.pin(endpoints[e].pin).cell);
    if (master.setup_lut.valid()) ep_setup_lut_[e] = &master.setup_lut;
    if (master.hold_lut.valid()) ep_hold_lut_[e] = &master.hold_lut;
  }
}

Timer::EndpointReq Timer::endpoint_setup_rat(size_t e, int tr) const {
  EndpointReq req;
  if (const liberty::Lut* lut = ep_setup_lut_[e]) {
    const PinId p = graph_->endpoints()[e].pin;
    const auto q = lut->lookup_grad(slew(p, tr), design_->constraints.clock_slew);
    // rat = T - setup(data slew, clock slew).
    req.value = design_->constraints.clock_period - q.value;
    req.d_dslew = -q.d_dx;
  } else {
    req.value = endpoint_rat_[e];
  }
  return req;
}

Timer::EndpointReq Timer::endpoint_hold_requirement(size_t e, int tr) const {
  EndpointReq req;
  if (const liberty::Lut* lut = ep_hold_lut_[e]) {
    const PinId p = graph_->endpoints()[e].pin;
    const double sl = ws_->slew_early.empty()
                          ? design_->netlist.library().default_slew
                          : ws_->slew_early[static_cast<size_t>(p) * 2 +
                                            static_cast<size_t>(tr)];
    const auto q = lut->lookup_grad(sl, design_->constraints.clock_slew);
    req.value = q.value;
    req.d_dslew = q.d_dx;
  } else {
    req.value = endpoint_hold_req_[e];
  }
  return req;
}

TimingMetrics Timer::evaluate(std::span<const double> cell_x,
                              std::span<const double> cell_y) {
  DTP_TRACE_SCOPE("sta_evaluate");
  update_positions(cell_x, cell_y);
  build_trees();
  run_elmore();
  propagate();
  update_slacks();
  return metrics_;
}

void Timer::update_positions(std::span<const double> cell_x,
                             std::span<const double> cell_y) {
  const netlist::Netlist& nl = design_->netlist;
  DTP_ASSERT(cell_x.size() == nl.num_cells() && cell_y.size() == nl.num_cells());
  for (size_t p = 0; p < nl.num_pins(); ++p) {
    const netlist::Pin& pin = nl.pin(static_cast<PinId>(p));
    const Vec2 off = nl.pin_offset(static_cast<PinId>(p));
    ws_->pin_pos[p] = {cell_x[static_cast<size_t>(pin.cell)] + off.x,
                       cell_y[static_cast<size_t>(pin.cell)] + off.y};
  }
}

void Timer::build_trees() {
  DTP_TRACE_SCOPE("rsmt_build_trees");
  const netlist::Netlist& nl = design_->netlist;
  const auto& nets = graph_->timing_nets();
  ThreadPool::global().parallel_for(
      0, nets.size(),
      [&](size_t i) {
        const NetId n = nets[i];
        const netlist::Net& net = nl.net(n);
        std::vector<Vec2> pts(net.pins.size());
        int driver_idx = 0;
        for (size_t k = 0; k < net.pins.size(); ++k) {
          pts[k] = ws_->pin_pos[static_cast<size_t>(net.pins[k])];
          if (net.pins[k] == net.driver) driver_idx = static_cast<int>(k);
        }
        ws_->forest.assign(n, rsmt::build_rsmt(pts, driver_idx, options_.rsmt));
      },
      /*grain=*/8);
  trees_built_ = true;
}

void Timer::drag_trees() {
  DTP_TRACE_SCOPE("rsmt_drag_trees");
  DTP_ASSERT_MSG(trees_built_, "drag_trees requires build_trees first");
  const netlist::Netlist& nl = design_->netlist;
  const auto& nets = graph_->timing_nets();
  ThreadPool::global().parallel_for(
      0, nets.size(),
      [&](size_t i) {
        const NetId n = nets[i];
        const netlist::Net& net = nl.net(n);
        // In-place drag (paper §3.6): pin nodes take the fresh pin positions,
        // Steiner nodes copy their source pins' coordinates (Fig. 4).
        rsmt::SteinerTreeView t = ws_->forest.tree(n);
        for (int k = 0; k < t.num_pins; ++k)
          t.nodes[static_cast<size_t>(k)].pos =
              ws_->pin_pos[static_cast<size_t>(net.pins[static_cast<size_t>(k)])];
        for (size_t k = static_cast<size_t>(t.num_pins); k < t.nodes.size();
             ++k) {
          rsmt::SteinerNode& node = t.nodes[k];
          node.pos.x = t.nodes[static_cast<size_t>(node.x_src)].pos.x;
          node.pos.y = t.nodes[static_cast<size_t>(node.y_src)].pos.y;
        }
      },
      /*grain=*/32);
}

void Timer::run_elmore() {
  DTP_TRACE_SCOPE("elmore_forward");
  const netlist::Constraints& con = design_->constraints;
  const auto& nets = graph_->timing_nets();
  ThreadPool::global().parallel_for(
      0, nets.size(),
      [&](size_t i) {
        const NetId n = nets[i];
        elmore_forward(ws_->net_view(n), ws_->net_pin_caps(n), con.wire_res,
                       con.wire_cap, options_.wire_model);
      },
      /*grain=*/32);
}

void Timer::init_sources(bool early) {
  const size_t n = ws_->at.size();
  if (!early) {
    for (size_t i = 0; i < n; ++i) {
      ws_->at[i] = ws_->src_at[i];
      ws_->slew[i] = ws_->src_slew[i];
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      // Early arrival of a source equals its (single) arrival time; pins that
      // are not sources start at +inf so min-aggregation works.
      ws_->at_early[i] = std::isfinite(ws_->src_at[i]) ? ws_->src_at[i] : kPosInf;
      ws_->slew_early[i] = ws_->src_slew[i];
    }
  }
}

void Timer::set_activity_tracker(obs::ActivityTracker* tracker) {
  activity_ = tracker;
  if (tracker != nullptr && !tracker->configured())
    tracker->configure(graph_->level_offsets(), graph_->level_pins(),
                       design_->netlist.num_pins());
}

void Timer::propagate() {
  DTP_TRACE_SCOPE("sta_propagate");
  ThreadPool::global().mark("sta.propagate");
  init_sources(/*early=*/false);
  sweep_levels(/*early=*/false);
  if (options_.enable_early) {
    init_sources(/*early=*/true);
    sweep_levels(/*early=*/true);
  }
  // Post-pass activity scan (late plane) — a read-only observer, so the
  // sweep results above are untouched.
  if (activity_ != nullptr)
    activity_->record_forward(ws_->at.data(), ws_->slew.data());
}

void Timer::sweep_levels(bool early) {
  if (profile_levels_) {
    // Per-level dispatches so each level's wall-clock is attributable.
    for (int l = 1; l < graph_->num_levels(); ++l) propagate_level(l, early);
    return;
  }
  ThreadPool& pool = ThreadPool::global();
  const auto pins = graph_->level_pins();
  for (const LevelGroup& g : level_groups_) {
    if (g.serial) {
      DTP_PROF_SCOPE("sta_levels_fused");
      const size_t slot = pool.caller_slot();
      for (size_t i = g.begin; i < g.end; ++i) update_pin(pins[i], early, slot);
    } else {
      DTP_PROF_SCOPE("sta_level_par");
      pool.parallel_for_slotted(
          g.begin, g.end,
          [&](size_t slot, size_t i) { update_pin(pins[i], early, slot); },
          kLevelGrain);
    }
  }
}

bool Timer::update_pin(PinId v, bool early, size_t slot) {
  TimingWorkspace& ws = *ws_;
  double* at = early ? ws.at_early.data() : ws.at.data();
  double* slew = early ? ws.slew_early.data() : ws.slew.data();
  const bool smooth = options_.mode == AggMode::Smooth;
  const double gamma = options_.gamma;

  const auto fanin = graph_->fanin(v);
  if (fanin.empty()) return false;  // sources keep their initial conditions
  const Arc& first = graph_->arcs()[static_cast<size_t>(fanin[0])];
  bool changed = false;
  auto store = [&](size_t idx, double value, double* array) {
    if (array[idx] != value) {
      array[idx] = value;
      changed = true;
    }
  };

  if (first.kind == ArcKind::NetArc) {
    // Exactly one fan-in net arc per pin (Eq. 9): no aggregation needed.
    DTP_ASSERT(fanin.size() == 1);
    // Tree pin index == net-pin index of the sink.
    const size_t node =
        static_cast<size_t>(ws.forest.node_offset(first.net)) +
        static_cast<size_t>(first.sink_index);
    const double d = ws.used_delay[node];
    const double imp2 = ws.imp2[node];
    for (int tr = 0; tr < 2; ++tr) {
      const size_t vi = static_cast<size_t>(v) * 2 + static_cast<size_t>(tr);
      const size_t ui = static_cast<size_t>(first.from) * 2 + static_cast<size_t>(tr);
      store(vi, at[ui] + d, at);                                    // Eq. 9a
      store(vi, std::sqrt(slew[ui] * slew[ui] + imp2), slew);       // Eq. 9b
    }
    return changed;
  }

  // Cell arcs: aggregate candidates per output transition (Eq. 11).  The late
  // corner writes its candidates into the workspace cache, where the backward
  // pass and the RAT sweep re-read them; the early corner gathers into
  // per-slot scratch.
  // Live-stack-only label: per-pin, far too hot for the trace ring, but the
  // sampler sees worker threads inside the LUT-gather/aggregate section.
  DTP_PROF_SCOPE("lut_interp");
  const NetId out_net = graph_->driven_timing_net(v);
  const double load =
      out_net == netlist::kInvalidId ? 0.0 : ws.net_root_load(out_net);
  LevelScratch& scratch = ws.slots[slot];
  std::vector<double>& values = scratch.values;
  std::vector<double>& weights = scratch.weights;
  for (int tr_out = 0; tr_out < 2; ++tr_out) {
    const ArcCandidate* cands = nullptr;
    int count = 0;
    if (!early) {
      ArcCandidate* out = ws.cand_ptr(v, tr_out);
      for (int ai : fanin) {
        const Arc& arc = graph_->arcs()[static_cast<size_t>(ai)];
        DTP_ASSERT(arc.kind == ArcKind::CellArc);
        gather_arc_candidates(graph_->lib_arc(arc.lib_arc), arc.from, tr_out,
                              at, slew, load, out, count);
      }
      ws.cand_count[static_cast<size_t>(v) * 2 + static_cast<size_t>(tr_out)] =
          count;
      cands = out;
    } else {
      scratch.cands.clear();
      for (int ai : fanin) {
        const Arc& arc = graph_->arcs()[static_cast<size_t>(ai)];
        DTP_ASSERT(arc.kind == ArcKind::CellArc);
        gather_arc_candidates(graph_->lib_arc(arc.lib_arc), arc.from, tr_out,
                              at, slew, load, scratch.cands);
      }
      cands = scratch.cands.data();
      count = static_cast<int>(scratch.cands.size());
    }
    const size_t vi = static_cast<size_t>(v) * 2 + static_cast<size_t>(tr_out);
    if (count == 0) {
      store(vi, early ? kPosInf : kNegInf, at);
      continue;
    }
    // Arrival time aggregation.
    values.resize(static_cast<size_t>(count));
    for (int k = 0; k < count; ++k)
      values[static_cast<size_t>(k)] = cands[k].at_value;
    double agg;
    if (early)
      agg = smooth ? smooth_min(values, gamma, weights)
                   : hard_min(values, weights);
    else
      agg = smooth ? smooth_max(values, gamma, weights)
                   : hard_max(values, weights);
    store(vi, agg, at);
    // Slew aggregation (Eq. 11d): late takes the worst (max) slew, early the
    // best (min).
    for (int k = 0; k < count; ++k)
      values[static_cast<size_t>(k)] = cands[k].slew_q.value;
    if (early)
      agg = smooth ? smooth_min(values, gamma, weights)
                   : hard_min(values, weights);
    else
      agg = smooth ? smooth_max(values, gamma, weights)
                   : hard_max(values, weights);
    store(vi, agg, slew);
  }
  return changed;
}

void Timer::propagate_level(int level, bool early) {
  DTP_PROF_SCOPE(fwd_level_label(level));
  const auto& pins = graph_->level(level);
  static obs::Histogram& dispatch_hist =
      obs::MetricsRegistry::instance().histogram("sta.level_dispatch_ms");
  Stopwatch clock;
  ThreadPool::global().parallel_for_slotted(
      0, pins.size(),
      [&](size_t slot, size_t i) { update_pin(pins[i], early, slot); },
      kLevelGrain);
  const double ms = clock.elapsed_ms();
  if (level_profile_.size() < static_cast<size_t>(graph_->num_levels()))
    level_profile_.resize(static_cast<size_t>(graph_->num_levels()));
  LevelStat& stat = level_profile_[static_cast<size_t>(level)];
  ++stat.calls;
  stat.ms += ms;
  dispatch_hist.observe(ms);
}

TimingMetrics Timer::evaluate_incremental(std::span<const double> cell_x,
                                          std::span<const double> cell_y,
                                          std::span<const CellId> moved_cells) {
  DTP_ASSERT_MSG(trees_built_, "evaluate_incremental requires a prior evaluate()");
  const netlist::Netlist& nl = design_->netlist;
  const netlist::Constraints& con = design_->constraints;

  // 1. Refresh pin positions of the moved cells.
  for (const CellId c : moved_cells) {
    const netlist::Cell& cell = nl.cell(c);
    for (int k = 0; k < cell.num_pins; ++k) {
      const PinId p = cell.first_pin + k;
      const Vec2 off = nl.pin_offset(p);
      ws_->pin_pos[static_cast<size_t>(p)] = {
          cell_x[static_cast<size_t>(c)] + off.x,
          cell_y[static_cast<size_t>(c)] + off.y};
    }
  }

  // 2. Rebuild + re-time every affected timing net.
  thread_local std::vector<NetId> nets;
  nets.clear();
  for (const CellId c : moved_cells) {
    const netlist::Cell& cell = nl.cell(c);
    for (int k = 0; k < cell.num_pins; ++k) {
      const NetId n = nl.pin(cell.first_pin + k).net;
      if (n == netlist::kInvalidId || graph_->is_clock_net(n)) continue;
      if (!ws_->forest.has_tree(n)) continue;
      nets.push_back(n);
    }
  }
  std::sort(nets.begin(), nets.end());
  nets.erase(std::unique(nets.begin(), nets.end()), nets.end());

  // Level-ordered worklist of pins whose timing may have changed.
  using Entry = std::pair<int, PinId>;  // (level, pin)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> worklist;
  thread_local std::vector<char> queued;
  queued.assign(nl.num_pins(), 0);
  auto enqueue = [&](PinId p) {
    if (queued[static_cast<size_t>(p)]) return;
    queued[static_cast<size_t>(p)] = 1;
    worklist.emplace(graph_->level_of(p), p);
  };

  for (const NetId n : nets) {
    const netlist::Net& net = nl.net(n);
    std::vector<Vec2> pts(net.pins.size());
    int driver_idx = 0;
    for (size_t k = 0; k < net.pins.size(); ++k) {
      pts[k] = ws_->pin_pos[static_cast<size_t>(net.pins[k])];
      if (net.pins[k] == net.driver) driver_idx = static_cast<int>(k);
    }
    ws_->forest.assign(n, rsmt::build_rsmt(pts, driver_idx, options_.rsmt));
    elmore_forward(ws_->net_view(n), ws_->net_pin_caps(n), con.wire_res,
                   con.wire_cap, options_.wire_model);
    // Seeds: sinks (net delay changed) and the driver (its load changed).
    for (const PinId p : net.pins)
      if (graph_->in_graph(p)) enqueue(p);
  }

  // 3. Cone propagation in level order; unchanged pins cut the cone.  Every
  // recomputed pin refreshes its candidate-cache region, so the cache stays
  // consistent with the incremental state.
  const size_t slot = ThreadPool::global().caller_slot();
  size_t visited = 0;
  size_t num_changed = 0;
  while (!worklist.empty()) {
    const PinId v = worklist.top().second;
    worklist.pop();
    queued[static_cast<size_t>(v)] = 0;
    ++visited;
    bool changed = update_pin(v, /*early=*/false, slot);
    if (options_.enable_early) changed |= update_pin(v, /*early=*/true, slot);
    if (!changed) continue;
    ++num_changed;
    for (const int ai : graph_->fanout(v))
      enqueue(graph_->arcs()[static_cast<size_t>(ai)].to);
  }
  if (activity_ != nullptr) activity_->record_incremental(visited, num_changed);

  // 4. Refresh slacks/metrics (O(endpoints)).
  update_slacks();
  return metrics_;
}

void Timer::update_slacks() {
  DTP_TRACE_SCOPE("sta_update_slacks");
  const auto& endpoints = graph_->endpoints();
  const bool smooth = options_.mode == AggMode::Smooth;
  const double gamma = options_.gamma;

  TimingMetrics m;
  m.wns = kPosInf;
  m.wns_smooth = kPosInf;
  m.hold_wns = kPosInf;

  std::array<double, 2> slacks2;
  std::vector<double>& weights = ws_->w_at;
  std::vector<double>& smooth_ep_slacks = ws_->ep_scratch;
  smooth_ep_slacks.clear();

  for (size_t e = 0; e < endpoints.size(); ++e) {
    const Endpoint& ep = endpoints[e];
    bool reachable = false;
    for (int tr = 0; tr < 2; ++tr) {
      const double a = at(ep.pin, tr);
      slacks2[static_cast<size_t>(tr)] =
          std::isfinite(a) ? endpoint_setup_rat(e, tr).value - a : kPosInf;
      reachable |= std::isfinite(a);
    }
    if (!reachable) {
      endpoint_slack_[e] = kPosInf;
      endpoint_tr_weights_[e * 2] = endpoint_tr_weights_[e * 2 + 1] = 0.0;
      continue;
    }
    // Exact endpoint slack (worst transition) for reported metrics.
    const double hard_slack = std::min(slacks2[0], slacks2[1]);
    m.wns = std::min(m.wns, hard_slack);
    if (hard_slack < 0.0) {
      m.tns += hard_slack;
      ++m.num_violations;
    }
    if (smooth) {
      // +inf slack of an unreachable transition is fine: exp(-inf) = 0.
      const double s = smooth_min(slacks2, gamma, weights);
      endpoint_slack_[e] = s;
      endpoint_tr_weights_[e * 2] = weights[0];
      endpoint_tr_weights_[e * 2 + 1] = weights[1];
      smooth_ep_slacks.push_back(s);
    } else {
      endpoint_slack_[e] = hard_slack;
      endpoint_tr_weights_[e * 2] = slacks2[0] <= slacks2[1] ? 1.0 : 0.0;
      endpoint_tr_weights_[e * 2 + 1] = 1.0 - endpoint_tr_weights_[e * 2];
    }
  }
  if (!std::isfinite(m.wns)) m.wns = 0.0;  // no reachable endpoints

  if (smooth && !smooth_ep_slacks.empty()) {
    m.wns_smooth = smooth_min(smooth_ep_slacks, gamma, weights);
    m.tns_smooth = 0.0;
    for (double s : smooth_ep_slacks) m.tns_smooth += std::min(0.0, s);
  } else {
    m.wns_smooth = m.wns;
    m.tns_smooth = m.tns;
  }

  // Hold metrics from early arrivals (hold slack = at_early - requirement;
  // smooth mode also fills the smoothed aggregates and seed weights).  The
  // setup aggregates above are final, so the endpoint scratch is reused.
  if (options_.enable_early) {
    m.hold_wns = kPosInf;
    std::vector<double>& smooth_hold_slacks = ws_->ep_scratch;
    smooth_hold_slacks.clear();
    for (size_t e = 0; e < endpoints.size(); ++e) {
      const Endpoint& ep = endpoints[e];
      bool reachable = false;
      for (int tr = 0; tr < 2; ++tr) {
        const double a = at_early(ep.pin, tr);
        slacks2[static_cast<size_t>(tr)] =
            std::isfinite(a) ? a - endpoint_hold_requirement(e, tr).value
                             : kPosInf;
        reachable |= std::isfinite(a);
      }
      if (!reachable) {
        endpoint_hold_slack_[e] = kPosInf;
        endpoint_hold_tr_weights_[e * 2] = endpoint_hold_tr_weights_[e * 2 + 1] =
            0.0;
        continue;
      }
      const double hard_slack = std::min(slacks2[0], slacks2[1]);
      m.hold_wns = std::min(m.hold_wns, hard_slack);
      if (hard_slack < 0.0) m.hold_tns += hard_slack;
      if (smooth) {
        const double sv = smooth_min(slacks2, gamma, weights);
        endpoint_hold_slack_[e] = sv;
        endpoint_hold_tr_weights_[e * 2] = weights[0];
        endpoint_hold_tr_weights_[e * 2 + 1] = weights[1];
        smooth_hold_slacks.push_back(sv);
      } else {
        endpoint_hold_slack_[e] = hard_slack;
        endpoint_hold_tr_weights_[e * 2] = slacks2[0] <= slacks2[1] ? 1.0 : 0.0;
        endpoint_hold_tr_weights_[e * 2 + 1] =
            1.0 - endpoint_hold_tr_weights_[e * 2];
      }
    }
    if (!std::isfinite(m.hold_wns)) m.hold_wns = 0.0;
    if (smooth && !smooth_hold_slacks.empty()) {
      m.hold_wns_smooth = smooth_min(smooth_hold_slacks, gamma, weights);
      m.hold_tns_smooth = 0.0;
      for (double sv : smooth_hold_slacks)
        m.hold_tns_smooth += std::min(0.0, sv);
    } else {
      m.hold_wns_smooth = m.hold_wns;
      m.hold_tns_smooth = m.hold_tns;
    }
  } else {
    m.hold_wns = 0.0;
  }

  metrics_ = m;
}

void Timer::update_required() {
  TimingWorkspace& ws = *ws_;
  std::fill(ws.rat.begin(), ws.rat.end(), kPosInf);
  std::vector<double>& rat = ws.rat;

  // Seed endpoints.
  const auto& endpoints = graph_->endpoints();
  for (size_t e = 0; e < endpoints.size(); ++e) {
    const PinId p = endpoints[e].pin;
    for (int tr = 0; tr < 2; ++tr)
      rat[static_cast<size_t>(p) * 2 + static_cast<size_t>(tr)] =
          std::min(rat[static_cast<size_t>(p) * 2 + static_cast<size_t>(tr)],
                   endpoint_setup_rat(e, tr).value);
  }

  // Sweep levels in reverse, relaxing RAT(from) from each fan-in arc of the
  // current pin (every arc is visited exactly once this way).  Cell-arc
  // delays come from the candidate cache the forward sweep recorded.
  for (int l = graph_->num_levels() - 1; l >= 1; --l) {
    for (const PinId v : graph_->level(l)) {
      const auto fanin = graph_->fanin(v);
      if (fanin.empty()) continue;
      const Arc& first = graph_->arcs()[static_cast<size_t>(fanin[0])];
      if (first.kind == ArcKind::NetArc) {
        const size_t node =
            static_cast<size_t>(ws.forest.node_offset(first.net)) +
            static_cast<size_t>(first.sink_index);
        const double d = ws.used_delay[node];
        for (int tr = 0; tr < 2; ++tr) {
          const size_t vi = static_cast<size_t>(v) * 2 + static_cast<size_t>(tr);
          const size_t ui =
              static_cast<size_t>(first.from) * 2 + static_cast<size_t>(tr);
          rat[ui] = std::min(rat[ui], rat[vi] - d);
        }
      } else {
        for (int tr_out = 0; tr_out < 2; ++tr_out) {
          const size_t vi = static_cast<size_t>(v) * 2 + static_cast<size_t>(tr_out);
          if (!std::isfinite(rat[vi])) continue;
          const ArcCandidate* cands = ws.cand_ptr(v, tr_out);
          const int count =
              ws.cand_count[static_cast<size_t>(v) * 2 +
                            static_cast<size_t>(tr_out)];
          for (int k = 0; k < count; ++k) {
            const ArcCandidate& c = cands[k];
            const size_t ui =
                static_cast<size_t>(c.from) * 2 + static_cast<size_t>(c.tr_in);
            rat[ui] = std::min(rat[ui], rat[vi] - c.delay_q.value);
          }
        }
      }
    }
  }
}

double Timer::pin_slack(PinId p) const {
  double worst = kPosInf;
  for (int tr = 0; tr < 2; ++tr) {
    const size_t i = static_cast<size_t>(p) * 2 + static_cast<size_t>(tr);
    if (std::isfinite(ws_->rat[i]) && std::isfinite(ws_->at[i]))
      worst = std::min(worst, ws_->rat[i] - ws_->at[i]);
  }
  return worst;
}

std::vector<Timer::PathNode> Timer::trace_critical_path(PinId endpoint) const {
  std::vector<PathNode> path;
  // Worst transition at the endpoint.
  int tr = at(endpoint, kRise) >= at(endpoint, kFall) ? kRise : kFall;
  PinId p = endpoint;
  while (true) {
    path.push_back({p, tr, at(p, tr)});
    const auto fanin = graph_->fanin(p);
    if (fanin.empty()) break;
    const Arc& first = graph_->arcs()[static_cast<size_t>(fanin[0])];
    if (first.kind == ArcKind::NetArc) {
      p = first.from;  // same transition through the wire
      continue;
    }
    // Pick the cell-arc candidate with the largest arrival.
    const NetId out_net = graph_->driven_timing_net(p);
    const double load =
        out_net == netlist::kInvalidId ? 0.0 : ws_->net_root_load(out_net);
    std::vector<ArcCandidate> cands;
    for (int ai : fanin) {
      const Arc& arc = graph_->arcs()[static_cast<size_t>(ai)];
      gather_arc_candidates(graph_->lib_arc(arc.lib_arc), arc.from, tr,
                            ws_->at.data(), ws_->slew.data(), load, cands);
    }
    if (cands.empty()) break;
    size_t best = 0;
    for (size_t k = 1; k < cands.size(); ++k)
      if (cands[k].at_value > cands[best].at_value) best = k;
    p = cands[best].from;
    tr = cands[best].tr_in;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace dtp::sta
