#include "sta/timing_workspace.h"

#include <algorithm>
#include <limits>
#include <string>
#include <unordered_map>

namespace dtp::sta {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
constexpr double kPosInf = std::numeric_limits<double>::infinity();

double lookup_override(const std::unordered_map<std::string, double>& overrides,
                       const std::string& key, double fallback) {
  const auto it = overrides.find(key);
  return it == overrides.end() ? fallback : it->second;
}

// Worst-case node count the RSMT builder can produce for a net of `deg` pins:
// degree <= 2 yields a plain edge; otherwise the exact degree-3 solver or the
// iterated 1-Steiner heuristic add at most max(1, kr_max_rounds) Steiner
// points (plain RMST adds none).  Capacities are upper bounds, not exact
// counts — SteinerForest::assign checks the invariant.
int tree_capacity(size_t deg, const rsmt::RsmtOptions& opts) {
  if (deg <= 2) return static_cast<int>(deg);
  return static_cast<int>(deg) + std::max(1, opts.kr_max_rounds);
}
}  // namespace

TimingWorkspace::TimingWorkspace(const netlist::Design& design,
                                 const TimingGraph& graph, bool enable_early,
                                 const rsmt::RsmtOptions& rsmt_opts,
                                 size_t num_slots) {
  const netlist::Netlist& nl = design.netlist;
  const netlist::Constraints& con = design.constraints;
  const size_t n_pins = nl.num_pins();
  const size_t n_nets = nl.num_nets();
  const size_t n_eps = graph.endpoints().size();

  // ---- Steiner forest + per-node arenas ----
  forest = rsmt::SteinerForest(n_nets);
  for (NetId n : graph.timing_nets())
    forest.set_capacity(n, tree_capacity(nl.net(n).pins.size(), rsmt_opts));
  forest.finalize();
  const size_t total = forest.total_capacity();
  edge_len.assign(total, 0.0);
  edge_res.assign(total, 0.0);
  node_cap.assign(total, 0.0);
  load.assign(total, 0.0);
  delay.assign(total, 0.0);
  ldelay.assign(total, 0.0);
  beta.assign(total, 0.0);
  imp2.assign(total, 0.0);
  used_delay.assign(total, 0.0);
  imp2_clamped.assign(total, 0);
  d2m_degenerate.assign(total, 0);
  g_net_delay.assign(total, 0.0);
  g_net_imp2.assign(total, 0.0);
  for (size_t n = 0; n < n_nets; ++n) {
    max_net_nodes_ = std::max(
        max_net_nodes_,
        static_cast<size_t>(forest.node_capacity(static_cast<NetId>(n))));
  }

  // ---- per-net sink pin caps (PO pads add the constraint's output load) ----
  pin_cap_offsets.assign(n_nets + 1, 0);
  for (NetId n : graph.timing_nets())
    pin_cap_offsets[static_cast<size_t>(n) + 1] =
        static_cast<int>(nl.net(n).pins.size());
  for (size_t n = 0; n < n_nets; ++n)
    pin_cap_offsets[n + 1] += pin_cap_offsets[n];
  pin_caps.assign(static_cast<size_t>(pin_cap_offsets[n_nets]), 0.0);
  for (NetId n : graph.timing_nets()) {
    const netlist::Net& net = nl.net(n);
    double* caps = pin_caps.data() +
                   static_cast<size_t>(pin_cap_offsets[static_cast<size_t>(n)]);
    for (size_t k = 0; k < net.pins.size(); ++k) {
      const PinId p = net.pins[k];
      double cap = nl.pin_cap(p);
      const CellId c = nl.pin(p).cell;
      if (nl.lib_cell_of(c).kind == liberty::CellKind::PortOut)
        cap += lookup_override(con.output_load_override, nl.cell(c).name,
                               con.output_load);
      caps[k] = cap;
    }
  }

  // ---- per-pin forward state ----
  pin_pos.resize(n_pins);
  at.assign(n_pins * 2, kNegInf);
  slew.assign(n_pins * 2, nl.library().default_slew);
  if (enable_early) {
    at_early.assign(n_pins * 2, kPosInf);
    slew_early.assign(n_pins * 2, nl.library().default_slew);
  }
  rat.assign(n_pins * 2, kPosInf);
  src_at.assign(n_pins * 2, kNegInf);
  src_slew.assign(n_pins * 2, nl.library().default_slew);

  // ---- candidate cache layout ----
  cand_base.assign(n_pins, -1);
  cand_tr_cap.assign(n_pins, 0);
  cand_count.assign(n_pins * 2, 0);
  size_t cand_total = 0;
  size_t max_fanin = 1;
  for (size_t p = 0; p < n_pins; ++p) {
    const auto fanin = graph.fanin(static_cast<PinId>(p));
    if (fanin.empty()) continue;
    if (graph.arcs()[static_cast<size_t>(fanin[0])].kind != ArcKind::CellArc)
      continue;
    const size_t f = fanin.size();
    max_fanin = std::max(max_fanin, f);
    cand_base[p] = static_cast<int>(cand_total);
    cand_tr_cap[p] = static_cast<int>(2 * f);
    cand_total += 4 * f;
  }
  cand.resize(cand_total);
  max_candidates_ = 2 * max_fanin;

  // ---- adjoint state ----
  g_at.assign(n_pins * 2, 0.0);
  g_slew.assign(n_pins * 2, 0.0);
  if (enable_early) {
    g_at_early.assign(n_pins * 2, 0.0);
    g_slew_early.assign(n_pins * 2, 0.0);
  }
  g_load.assign(n_nets, 0.0);
  pin_gx.assign(n_pins, 0.0);
  pin_gy.assign(n_pins, 0.0);

  // ---- scratch (reserved; the hot loops resize within capacity only) ----
  slots.resize(num_slots);
  for (LevelScratch& s : slots) {
    s.cands.reserve(max_candidates_);
    s.values.reserve(max_candidates_);
    s.weights.reserve(max_candidates_);
  }
  values.reserve(max_candidates_);
  w_at.reserve(max_candidates_);
  w_slew.reserve(max_candidates_);
  cands.reserve(max_candidates_);
  ep_scratch.reserve(n_eps);
  ep_finite.reserve(n_eps);
  ep_weights.reserve(n_eps);
  ep_finite_idx.reserve(n_eps);
  ep_g.assign(n_eps, 0.0);
  el_gbeta.assign(max_net_nodes_, 0.0);
  el_gldelay.assign(max_net_nodes_, 0.0);
  el_gdelay.assign(max_net_nodes_, 0.0);
  el_gload.assign(max_net_nodes_, 0.0);
  scratch_gx.assign(max_net_nodes_, 0.0);
  scratch_gy.assign(max_net_nodes_, 0.0);
  scratch_gbeta.assign(max_net_nodes_, 0.0);
}

}  // namespace dtp::sta
