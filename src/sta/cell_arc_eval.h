// Shared cell-arc candidate evaluation (forward and backward).
//
// A cell arc contributes, per output transition, one candidate per compatible
// input transition (decided by unateness).  The forward pass aggregates the
// candidates' arrival times and slews (hard max/min or LSE); the backward pass
// re-derives the same candidates to compute softmax weights and LUT gradients
// (Eq. 12).  Keeping the enumeration in one helper guarantees forward and
// backward see identical candidate sets.
#pragma once

#include <vector>

#include "liberty/lut.h"
#include "sta/timing_graph.h"

namespace dtp::sta {

inline constexpr int kRise = 0;
inline constexpr int kFall = 1;

// Input transitions driving output transition `tr_out`; returns count (1 or 2).
inline int input_transitions(liberty::Unateness unate, int tr_out, int out[2]) {
  switch (unate) {
    case liberty::Unateness::Positive:
      out[0] = tr_out;
      return 1;
    case liberty::Unateness::Negative:
      out[0] = 1 - tr_out;
      return 1;
    case liberty::Unateness::NonUnate:
      out[0] = kRise;
      out[1] = kFall;
      return 2;
  }
  return 0;
}

struct ArcCandidate {
  PinId from = netlist::kInvalidId;
  int tr_in = 0;
  liberty::Lut::Query delay_q;  // value + d/d(input slew) + d/d(load)
  liberty::Lut::Query slew_q;
  double at_value = 0.0;  // at(from, tr_in) + delay
};

// Appends the candidates of one cell arc for output transition `tr_out`.
// `at` / `slew` are the [pin*2 + tr] state arrays; `load` is the driven net's
// root load.  Candidates whose source AT is non-finite (unreachable pin) are
// skipped.  `want_grad` controls whether LUT gradients are computed.
inline void gather_arc_candidates(const Arc& arc, int tr_out, const double* at,
                                  const double* slew, double load,
                                  std::vector<ArcCandidate>& out) {
  const liberty::TimingArc& lib = *arc.lib_arc;
  const liberty::Lut& delay_lut = (tr_out == kRise) ? lib.cell_rise : lib.cell_fall;
  const liberty::Lut& slew_lut =
      (tr_out == kRise) ? lib.rise_transition : lib.fall_transition;
  int trs[2];
  const int n = input_transitions(lib.unate, tr_out, trs);
  for (int k = 0; k < n; ++k) {
    const int tr_in = trs[k];
    const size_t idx = static_cast<size_t>(arc.from) * 2 + static_cast<size_t>(tr_in);
    const double at_u = at[idx];
    if (!std::isfinite(at_u)) continue;
    ArcCandidate cand;
    cand.from = arc.from;
    cand.tr_in = tr_in;
    cand.delay_q = delay_lut.lookup_grad(slew[idx], load);
    cand.slew_q = slew_lut.lookup_grad(slew[idx], load);
    cand.at_value = at_u + cand.delay_q.value;
    out.push_back(cand);
  }
}

}  // namespace dtp::sta
