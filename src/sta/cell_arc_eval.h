// Shared cell-arc candidate evaluation (forward and backward).
//
// A cell arc contributes, per output transition, one candidate per compatible
// input transition (decided by unateness).  The forward pass aggregates the
// candidates' arrival times and slews (hard max/min or LSE) and records the
// candidates in the workspace cache; the backward pass and the RAT sweep
// reuse the cached candidates — identical by construction — instead of
// re-running the LUT queries.  Keeping the enumeration in one helper
// guarantees every consumer sees identical candidate sets.
//
// The liberty arc is passed resolved (the graph stores an index into its
// liberty-arc table, not a pointer), so callers write
//   gather_arc_candidates(graph.lib_arc(arc.lib_arc), arc.from, ...).
#pragma once

#include <cmath>
#include <vector>

#include "kernels/kernel_backend.h"
#include "liberty/lut.h"
#include "sta/timing_graph.h"

namespace dtp::sta {

inline constexpr int kRise = 0;
inline constexpr int kFall = 1;

// Input transitions driving output transition `tr_out`; returns count (1 or 2).
inline int input_transitions(liberty::Unateness unate, int tr_out, int out[2]) {
  switch (unate) {
    case liberty::Unateness::Positive:
      out[0] = tr_out;
      return 1;
    case liberty::Unateness::Negative:
      out[0] = 1 - tr_out;
      return 1;
    case liberty::Unateness::NonUnate:
      out[0] = kRise;
      out[1] = kFall;
      return 2;
  }
  return 0;
}

struct ArcCandidate {
  PinId from = netlist::kInvalidId;
  int tr_in = 0;
  liberty::Lut::Query delay_q;  // value + d/d(input slew) + d/d(load)
  liberty::Lut::Query slew_q;
  double at_value = 0.0;  // at(from, tr_in) + delay
};

// Appends the candidates of one cell arc for output transition `tr_out` into
// `out` starting at `out[count]`, advancing `count` (allocation-free; the
// caller guarantees capacity >= count + 2).  `at` / `slew` are the
// [pin*2 + tr] state arrays; `load` is the driven net's root load.
// Candidates whose source AT is non-finite (unreachable pin) are skipped.
inline void gather_arc_candidates(const liberty::TimingArc& lib, PinId from,
                                  int tr_out, const double* at,
                                  const double* slew, double load,
                                  ArcCandidate* out, int& count) {
  const liberty::Lut& delay_lut = (tr_out == kRise) ? lib.cell_rise : lib.cell_fall;
  const liberty::Lut& slew_lut =
      (tr_out == kRise) ? lib.rise_transition : lib.fall_transition;
  const kernels::KernelBackend& kb = kernels::backend();
  int trs[2];
  const int n = input_transitions(lib.unate, tr_out, trs);
  for (int k = 0; k < n; ++k) {
    const int tr_in = trs[k];
    const size_t idx = static_cast<size_t>(from) * 2 + static_cast<size_t>(tr_in);
    const double at_u = at[idx];
    if (!std::isfinite(at_u)) continue;
    ArcCandidate& cand = out[count++];
    cand.from = from;
    cand.tr_in = tr_in;
    kb.lut_pair(delay_lut, slew_lut, slew[idx], load, cand.delay_q,
                cand.slew_q);
    cand.at_value = at_u + cand.delay_q.value;
  }
}

// Vector-appending convenience (cold paths: path tracing, tests).
inline void gather_arc_candidates(const liberty::TimingArc& lib, PinId from,
                                  int tr_out, const double* at,
                                  const double* slew, double load,
                                  std::vector<ArcCandidate>& out) {
  const size_t base = out.size();
  out.resize(base + 2);
  int count = 0;
  gather_arc_candidates(lib, from, tr_out, at, slew, load, out.data() + base,
                        count);
  out.resize(base + static_cast<size_t>(count));
}

}  // namespace dtp::sta
