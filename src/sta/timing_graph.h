// Pin-level timing graph with topological levelization (paper §3.3 step 1).
//
// Nodes are netlist pins; arcs are either *net arcs* (net driver -> each sink,
// carrying Elmore delay/impulse) or *cell arcs* (cell input -> cell output,
// carrying NLDM LUT delay/slew).  Pins are grouped by topological level so the
// forward propagation sweeps levels 0..L and the backward gradient sweeps
// L..0 — the structure the paper maps onto one GPU kernel launch per level,
// and that we map onto one parallel_for per level.
//
// Clock handling (ideal clock, DESIGN.md §1): nets that touch a clock lib-pin
// are *clock nets*; their net arcs are excluded from the graph, and every
// clock input pin becomes a level-0 source with AT = 0 and slew = the
// constraint's clock slew.  Sequential cells therefore start paths at their
// CK->Q arc and end them at their D pin (a timing endpoint), cutting all
// sequential loops.
#pragma once

#include <vector>

#include "netlist/netlist.h"

namespace dtp::sta {

using netlist::CellId;
using netlist::NetId;
using netlist::PinId;

enum class ArcKind : uint8_t { NetArc, CellArc };

struct Arc {
  PinId from = netlist::kInvalidId;
  PinId to = netlist::kInvalidId;
  ArcKind kind = ArcKind::NetArc;
  NetId net = netlist::kInvalidId;              // for net arcs
  int sink_index = -1;                          // net-pin index of `to` within the net
  const liberty::TimingArc* lib_arc = nullptr;  // for cell arcs
};

enum class EndpointKind : uint8_t { FlopData, PrimaryOutput };

struct Endpoint {
  PinId pin = netlist::kInvalidId;
  EndpointKind kind = EndpointKind::FlopData;
  double setup = 0.0;  // setup constraint (FF setup time, or PO output delay)
  double hold = 0.0;
};

class TimingGraph {
 public:
  // Builds the graph; throws std::runtime_error on combinational cycles.
  explicit TimingGraph(const netlist::Netlist& nl);

  const netlist::Netlist& netlist() const { return *nl_; }

  // ---- levels ----
  int num_levels() const { return static_cast<int>(levels_.size()); }
  const std::vector<PinId>& level(int l) const {
    return levels_[static_cast<size_t>(l)];
  }
  int level_of(PinId p) const { return level_of_pin_[static_cast<size_t>(p)]; }
  bool in_graph(PinId p) const { return level_of_pin_[static_cast<size_t>(p)] >= 0; }

  // ---- arcs ----
  const std::vector<Arc>& arcs() const { return arcs_; }
  // Fan-in arcs of a pin (indices into arcs()).
  std::span<const int> fanin(PinId p) const {
    const auto& range = fanin_range_[static_cast<size_t>(p)];
    return {fanin_arcs_.data() + range.first, static_cast<size_t>(range.second)};
  }
  // Fan-out arcs of a pin (indices into arcs()).
  std::span<const int> fanout(PinId p) const {
    const auto& range = fanout_range_[static_cast<size_t>(p)];
    return {fanout_arcs_.data() + range.first, static_cast<size_t>(range.second)};
  }

  // ---- sources / endpoints ----
  // Level-0 pins with no fan-in: PI pads and clock pins.
  const std::vector<PinId>& sources() const { return levels_.empty() ? empty_ : levels_[0]; }
  const std::vector<Endpoint>& endpoints() const { return endpoints_; }
  bool pin_is_clock_source(PinId p) const {
    return is_clock_source_[static_cast<size_t>(p)];
  }

  // ---- nets ----
  bool is_clock_net(NetId n) const { return is_clock_net_[static_cast<size_t>(n)]; }
  // Nets carried by the timing graph (driver + >=1 sink, not clock).
  const std::vector<NetId>& timing_nets() const { return timing_nets_; }
  // The net driven by this pin if it drives a timing net, else kInvalidId.
  NetId driven_timing_net(PinId p) const {
    return driven_net_[static_cast<size_t>(p)];
  }

  // Longest combinational level depth (diagnostics; the paper's ">300 layers").
  int max_depth() const { return num_levels(); }

 private:
  const netlist::Netlist* nl_;
  std::vector<int> level_of_pin_;
  std::vector<std::vector<PinId>> levels_;
  std::vector<Arc> arcs_;
  std::vector<std::pair<int, int>> fanin_range_;  // per pin: (offset, count)
  std::vector<int> fanin_arcs_;
  std::vector<std::pair<int, int>> fanout_range_;
  std::vector<int> fanout_arcs_;
  std::vector<Endpoint> endpoints_;
  std::vector<char> is_clock_net_;
  std::vector<char> is_clock_source_;
  std::vector<NetId> timing_nets_;
  std::vector<NetId> driven_net_;
  std::vector<PinId> empty_;
};

}  // namespace dtp::sta
