// Pin-level timing graph with topological levelization (paper §3.3 step 1).
//
// Nodes are netlist pins; arcs are either *net arcs* (net driver -> each sink,
// carrying Elmore delay/impulse) or *cell arcs* (cell input -> cell output,
// carrying NLDM LUT delay/slew).  Pins are grouped by topological level so the
// forward propagation sweeps levels 0..L and the backward gradient sweeps
// L..0 — the structure the paper maps onto one GPU kernel launch per level,
// and that we map onto one parallel_for per level.
//
// Storage is flat CSR throughout (DESIGN.md §10): the level schedule is one
// contiguous pin array plus a level-offset table — consumed identically by
// the forward sweep (ascending flat order) and the backward sweep (levels
// descending, pins within a level ascending) — and fan-in/fan-out adjacency
// are offset-indexed flat arc-index arrays.  Cell arcs reference their NLDM
// tables by *index* into a graph-owned liberty-arc table rather than by raw
// pointer, so a reloaded/reallocated cell library is re-attached with
// rebind_library() instead of silently dangling.
//
// Clock handling (ideal clock, DESIGN.md §1): nets that touch a clock lib-pin
// are *clock nets*; their net arcs are excluded from the graph, and every
// clock input pin becomes a level-0 source with AT = 0 and slew = the
// constraint's clock slew.  Sequential cells therefore start paths at their
// CK->Q arc and end them at their D pin (a timing endpoint), cutting all
// sequential loops.
#pragma once

#include <span>
#include <vector>

#include "netlist/netlist.h"

namespace dtp::sta {

using netlist::CellId;
using netlist::NetId;
using netlist::PinId;

enum class ArcKind : uint8_t { NetArc, CellArc };

struct Arc {
  PinId from = netlist::kInvalidId;
  PinId to = netlist::kInvalidId;
  ArcKind kind = ArcKind::NetArc;
  NetId net = netlist::kInvalidId;  // for net arcs
  int sink_index = -1;              // net-pin index of `to` within the net
  int lib_arc = -1;                 // for cell arcs: TimingGraph::lib_arc index
};

enum class EndpointKind : uint8_t { FlopData, PrimaryOutput };

struct Endpoint {
  PinId pin = netlist::kInvalidId;
  EndpointKind kind = EndpointKind::FlopData;
  double setup = 0.0;  // setup constraint (FF setup time, or PO output delay)
  double hold = 0.0;
};

class TimingGraph {
 public:
  // Builds the graph; throws std::runtime_error on combinational cycles.
  explicit TimingGraph(const netlist::Netlist& nl);

  const netlist::Netlist& netlist() const { return *nl_; }

  // ---- levels (CSR schedule) ----
  int num_levels() const {
    return static_cast<int>(level_offsets_.size()) - 1;
  }
  // Pins of one level: a slice of the flat schedule.
  std::span<const PinId> level(int l) const {
    const size_t b = static_cast<size_t>(level_offsets_[static_cast<size_t>(l)]);
    const size_t e =
        static_cast<size_t>(level_offsets_[static_cast<size_t>(l) + 1]);
    return {level_pins_.data() + b, e - b};
  }
  // The flat schedule itself: all in-graph pins, level-major, and the
  // per-level offsets (size num_levels()+1) slicing it.
  std::span<const PinId> level_pins() const { return level_pins_; }
  std::span<const int> level_offsets() const { return level_offsets_; }
  int level_of(PinId p) const { return level_of_pin_[static_cast<size_t>(p)]; }
  bool in_graph(PinId p) const { return level_of_pin_[static_cast<size_t>(p)] >= 0; }

  // ---- arcs ----
  std::span<const Arc> arcs() const { return arcs_; }
  size_t num_arcs() const { return arcs_.size(); }
  // Fan-in arcs of a pin (indices into arcs()).
  std::span<const int> fanin(PinId p) const {
    const size_t b = static_cast<size_t>(fanin_offsets_[static_cast<size_t>(p)]);
    const size_t e =
        static_cast<size_t>(fanin_offsets_[static_cast<size_t>(p) + 1]);
    return {fanin_arcs_.data() + b, e - b};
  }
  // Fan-out arcs of a pin (indices into arcs()).
  std::span<const int> fanout(PinId p) const {
    const size_t b = static_cast<size_t>(fanout_offsets_[static_cast<size_t>(p)]);
    const size_t e =
        static_cast<size_t>(fanout_offsets_[static_cast<size_t>(p) + 1]);
    return {fanout_arcs_.data() + b, e - b};
  }

  // ---- liberty arc table ----
  // Resolves a cell arc's NLDM tables.  The table is deduplicated per
  // (lib cell, arc) pair, so its size is O(library), not O(netlist).
  const liberty::TimingArc& lib_arc(int index) const {
    return *lib_arc_ptrs_[static_cast<size_t>(index)];
  }
  size_t num_lib_arcs() const { return lib_arc_ptrs_.size(); }
  // Re-resolves the liberty-arc pointer table against `lib` (e.g. after the
  // library was reloaded or moved).  `lib` must contain the same cells/arcs
  // (by index) the graph was built against.
  void rebind_library(const liberty::CellLibrary& lib);

  // ---- sources / endpoints ----
  // Level-0 pins with no fan-in: PI pads and clock pins.
  std::span<const PinId> sources() const {
    return num_levels() > 0 ? level(0) : std::span<const PinId>{};
  }
  const std::vector<Endpoint>& endpoints() const { return endpoints_; }
  bool pin_is_clock_source(PinId p) const {
    return is_clock_source_[static_cast<size_t>(p)];
  }

  // ---- nets ----
  bool is_clock_net(NetId n) const { return is_clock_net_[static_cast<size_t>(n)]; }
  // Nets carried by the timing graph (driver + >=1 sink, not clock).
  const std::vector<NetId>& timing_nets() const { return timing_nets_; }
  // The net driven by this pin if it drives a timing net, else kInvalidId.
  NetId driven_timing_net(PinId p) const {
    return driven_net_[static_cast<size_t>(p)];
  }

  // Longest combinational level depth (diagnostics; the paper's ">300 layers").
  int max_depth() const { return num_levels(); }

 private:
  const netlist::Netlist* nl_;
  std::vector<int> level_of_pin_;
  std::vector<int> level_offsets_;   // CSR: size num_levels()+1
  std::vector<PinId> level_pins_;    // flat level-major pin schedule
  std::vector<Arc> arcs_;
  std::vector<int> fanin_offsets_;   // CSR: size num_pins+1
  std::vector<int> fanin_arcs_;
  std::vector<int> fanout_offsets_;  // CSR: size num_pins+1
  std::vector<int> fanout_arcs_;
  // Liberty arc table: stable (lib cell, arc index) keys + resolved pointers.
  std::vector<std::pair<int, int>> lib_arc_keys_;
  std::vector<const liberty::TimingArc*> lib_arc_ptrs_;
  std::vector<Endpoint> endpoints_;
  std::vector<char> is_clock_net_;
  std::vector<char> is_clock_source_;
  std::vector<NetId> timing_nets_;
  std::vector<NetId> driven_net_;
};

}  // namespace dtp::sta
