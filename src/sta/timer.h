// Levelized static timing engine over a placed netlist.
//
// Forward flow (paper Fig. 3, steps 2–4):
//   update_positions() — pin locations from cell locations,
//   build_trees() / drag_trees() — RSMT per timing net (§3.4.1, §3.6),
//   run_elmore() — wire delay/impulse/load per net (§3.4.2),
//   propagate() — AT/slew level by level through net and cell arcs (§3.5),
//   update_slacks() — endpoint slacks, WNS/TNS (Eq. 1–2), and in smooth mode
//   the LSE-smoothed WNS_gamma/TNS_gamma (Eq. 5) with the softmax weights the
//   backward pass seeds from.
//
// Aggregation is pluggable: AggMode::Hard gives signoff-exact max/min STA
// (used for all reported metrics); AggMode::Smooth replaces max/min with
// log-sum-exp, making every quantity differentiable (used for gradients).
// Late (setup) analysis is always computed; early (hold) analysis is optional
// and honors the same Hard/Smooth choice, so the hold metrics of Eq. 2 are
// differentiable too.  The paper's experiments optimize setup only; the hold
// objective is this repo's extension.
//
// All mutable state lives in a TimingWorkspace (DESIGN.md §10): flat
// [pin*2 + transition] sweep arrays, the Steiner forest + per-node net arenas,
// the cell-arc candidate cache the forward sweep fills and the backward/RAT
// sweeps reuse, and per-slot scratch.  Level sweeps dispatch the CSR level
// schedule through ThreadPool::parallel_for_slotted — the CPU analogue of the
// paper's per-level CUDA kernels — with consecutive small levels fused into
// one serial pass over the flat schedule (same pin order, fewer dispatches).
// The drag-path forward (no tree rebuild) and the slack update are
// allocation-free at steady state.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/vec2.h"
#include "netlist/netlist.h"
#include "rsmt/rsmt_builder.h"
#include "sta/net_timing.h"
#include "sta/timing_graph.h"
#include "sta/timing_workspace.h"

namespace dtp::obs {
class ActivityTracker;
}

namespace dtp::sta {

enum class AggMode : uint8_t { Hard, Smooth };

struct TimerOptions {
  AggMode mode = AggMode::Hard;
  double gamma = 0.05;        // LSE smoothing, in library time units (ns)
  bool enable_early = false;  // also run early/hold analysis
  WireDelayModel wire_model = WireDelayModel::Elmore;
  rsmt::RsmtOptions rsmt;
};

// Accumulated wall-clock of one topological level's dispatches — the CPU
// analogue of per-kernel GPU timing (kernel profiling, DESIGN.md §8).  Shared
// by the forward sweep (Timer) and the adjoint sweep (dtimer::DiffTimer).
struct LevelStat {
  uint64_t calls = 0;  // level dispatches accumulated
  double ms = 0.0;     // accumulated wall-clock milliseconds
};

struct TimingMetrics {
  // Setup (late-mode) metrics; negative numbers are violations.
  double wns = 0.0;
  double tns = 0.0;
  size_t num_violations = 0;
  // Smoothed counterparts (filled in smooth mode).
  double wns_smooth = 0.0;
  double tns_smooth = 0.0;
  // Hold (early-mode) metrics (filled when enable_early).
  double hold_wns = 0.0;
  double hold_tns = 0.0;
  double hold_wns_smooth = 0.0;
  double hold_tns_smooth = 0.0;
};

class Timer {
 public:
  Timer(const netlist::Design& design, const TimingGraph& graph,
        TimerOptions options = {});

  const TimingGraph& graph() const { return *graph_; }
  const netlist::Design& design() const { return *design_; }
  const TimerOptions& options() const { return options_; }
  void set_mode(AggMode mode) { options_.mode = mode; }
  void set_gamma(double gamma) { options_.gamma = gamma; }

  // ---- full evaluation convenience ----
  // Runs the whole forward flow from cell locations (rebuilding trees) and
  // returns the metrics.
  TimingMetrics evaluate(std::span<const double> cell_x,
                         std::span<const double> cell_y);

  // Incremental re-evaluation after a small set of cells moved (hard mode):
  // rebuilds only the trees of nets touching the moved cells, re-runs their
  // Elmore passes, and re-propagates arrival times only through the affected
  // fan-out cone (level-ordered worklist; a pin whose AT and slew are
  // unchanged cuts the cone).  Orders of magnitude cheaper than evaluate()
  // for local perturbations — the regime of detailed placement and ECO moves,
  // and the subject of the ICCAD'15 contest the benchmark suite comes from.
  // Requires a prior evaluate(); RATs are not updated (call update_required()
  // if needed).  Returns the refreshed metrics.
  TimingMetrics evaluate_incremental(std::span<const double> cell_x,
                                     std::span<const double> cell_y,
                                     std::span<const CellId> moved_cells);

  // ---- staged API (used by the placer loop to reuse trees) ----
  void update_positions(std::span<const double> cell_x,
                        std::span<const double> cell_y);
  void build_trees();  // full RSMT reconstruction at current pin positions
  void drag_trees();   // Steiner drag only (paper §3.6), topology kept
  bool trees_built() const { return trees_built_; }
  void run_elmore();
  void propagate();
  void update_slacks();
  TimingMetrics metrics() const { return metrics_; }

  // Backward (late) required-arrival-time propagation over the graph:
  //   RAT(u) = min over fanout arcs (RAT(v) - delay(u -> v)),
  // seeded at endpoints with their setup RAT.  Hard-mode semantics (exact
  // min), independent of the forward aggregation mode; call after propagate()
  // + update_slacks().  Fills rat()/pin_slack() for every pin, which is what
  // net-criticality extraction (the net-weighting baseline [24]) and timing
  // reports consume.  Cell-arc delays come from the candidate cache the
  // forward sweep recorded — no LUT re-evaluation.
  void update_required();
  double rat(PinId p, int tr) const {
    return ws_->rat[static_cast<size_t>(p) * 2 + static_cast<size_t>(tr)];
  }
  // Worst (over transitions) setup slack at a pin; +inf off any constrained
  // path. Valid after update_required().
  double pin_slack(PinId p) const;

  // ---- state access (backward pass, reports, tests) ----
  const std::vector<Vec2>& pin_positions() const { return ws_->pin_pos; }
  // Non-owning view of one net's slice of the timing data plane.
  NetTimingView net_timing(NetId n) const { return ws_->net_view(n); }
  double at(PinId p, int tr) const {
    return ws_->at[static_cast<size_t>(p) * 2 + static_cast<size_t>(tr)];
  }
  double slew(PinId p, int tr) const {
    return ws_->slew[static_cast<size_t>(p) * 2 + static_cast<size_t>(tr)];
  }
  double at_early(PinId p, int tr) const {
    return ws_->at_early[static_cast<size_t>(p) * 2 + static_cast<size_t>(tr)];
  }
  const double* at_data() const { return ws_->at.data(); }
  const double* slew_data() const { return ws_->slew.data(); }
  const double* at_early_data() const { return ws_->at_early.data(); }
  const double* slew_early_data() const { return ws_->slew_early.data(); }
  // The shared forward/backward data plane (DiffTimer borrows it).
  TimingWorkspace& workspace() { return *ws_; }
  const TimingWorkspace& workspace() const { return *ws_; }
  // Per-endpoint setup slack (aggregated over transitions; smooth mode uses
  // smooth-min), aligned with graph().endpoints().
  const std::vector<double>& endpoint_slack() const { return endpoint_slack_; }
  // Per-endpoint, per-transition smooth-min weights (smooth mode only):
  // d(endpoint slack)/d(slack_tr), laid out [endpoint*2 + tr].
  const std::vector<double>& endpoint_tr_weights() const {
    return endpoint_tr_weights_;
  }
  // Required arrival time (late) used for an endpoint.
  double endpoint_rat(size_t endpoint_index) const {
    return endpoint_rat_[endpoint_index];
  }
  // Hold-side counterparts (valid when enable_early): per-endpoint hold slack
  // (smooth-min over transitions in smooth mode) and its transition weights.
  const std::vector<double>& endpoint_hold_slack() const {
    return endpoint_hold_slack_;
  }
  const std::vector<double>& endpoint_hold_tr_weights() const {
    return endpoint_hold_tr_weights_;
  }
  // The hold requirement (earliest allowed arrival) at an endpoint.
  double endpoint_hold_req(size_t endpoint_index) const {
    return endpoint_hold_req_[endpoint_index];
  }
  // Constraint query at an endpoint for transition tr, evaluated at the
  // current (corner-appropriate) slew of the endpoint pin.  When the library
  // provides a constraint LUT the requirement is slew-dependent and d_dslew
  // carries its derivative (for the backward pass); otherwise the constant
  // fallback with zero derivative.
  struct EndpointReq {
    double value = 0.0;    // setup: latest allowed AT; hold: earliest allowed
    double d_dslew = 0.0;  // d(value)/d(endpoint pin slew)
  };
  EndpointReq endpoint_setup_rat(size_t endpoint_index, int tr) const;
  EndpointReq endpoint_hold_requirement(size_t endpoint_index, int tr) const;
  // Worst-slack path through pin `p` for reporting: returns the chain of pins
  // from a source to `p` following the critical (hard-max) fan-in, with the
  // critical transition at each step.
  struct PathNode {
    PinId pin;
    int tr;
    double at;
  };
  std::vector<PathNode> trace_critical_path(PinId endpoint) const;

  // Per-net pin caps (aligned with net.pins) — sinks' input caps plus PO load.
  std::span<const double> net_pin_caps(NetId n) const {
    return ws_->net_pin_caps(n);
  }

  // ---- per-level kernel profiling (DESIGN.md §8) ----
  // When enabled, every propagate() level dispatch is individually timed and
  // accumulated per level (and into the registry's sta.level_dispatch_ms
  // histogram).  Off by default: the disabled path runs the fused-group
  // schedule instead — profiling never touches timing state, so results are
  // identical either way.
  void set_level_profiling(bool on) { profile_levels_ = on; }
  bool level_profiling() const { return profile_levels_; }
  // Indexed by topological level; stats accumulate across propagate() calls
  // until reset_level_profile().  Empty until the first profiled dispatch.
  const std::vector<LevelStat>& level_profile() const { return level_profile_; }
  void reset_level_profile() { level_profile_.clear(); }

  // ---- timing-activity tracking (DESIGN.md §11) ----
  // Attaches an activity tracker: after every propagate() the tracker scans
  // the late AT/slew plane for pins that moved beyond its epsilons, and
  // evaluate_incremental() reports its visited/changed worklist counts.  The
  // tracker is configured with this timer's level schedule on attach.  A pure
  // observer — the sweeps never read tracker state, so results with a tracker
  // attached are bitwise-identical to without.  Pass nullptr to detach.
  void set_activity_tracker(obs::ActivityTracker* tracker);
  obs::ActivityTracker* activity_tracker() const { return activity_; }

 private:
  // One batch of the level schedule: either a single large level dispatched in
  // parallel, or a run of consecutive small levels fused into one serial pass
  // over the flat schedule (same per-pin order, fewer dispatches).
  struct LevelGroup {
    size_t begin = 0;  // flat range into graph().level_pins()
    size_t end = 0;
    bool serial = false;
  };

  void propagate_level(int level, bool early);  // profiled (unfused) path
  void sweep_levels(bool early);                // fused-group path
  void init_sources(bool early);
  // Recomputes at/slew of one pin from its fan-in; returns true if changed.
  // `slot` addresses per-slot scratch (ThreadPool slot of the executor).
  bool update_pin(PinId v, bool early, size_t slot);

  const netlist::Design* design_;
  const TimingGraph* graph_;
  TimerOptions options_;

  std::unique_ptr<TimingWorkspace> ws_;
  bool trees_built_ = false;
  std::vector<LevelGroup> level_groups_;

  std::vector<double> endpoint_slack_;
  std::vector<double> endpoint_tr_weights_;
  std::vector<double> endpoint_rat_;
  std::vector<double> endpoint_hold_slack_;
  std::vector<double> endpoint_hold_tr_weights_;
  std::vector<double> endpoint_hold_req_;
  // Per-endpoint constraint LUTs (null = constant fallback).
  std::vector<const liberty::Lut*> ep_setup_lut_;
  std::vector<const liberty::Lut*> ep_hold_lut_;
  TimingMetrics metrics_;

  bool profile_levels_ = false;
  std::vector<LevelStat> level_profile_;
  obs::ActivityTracker* activity_ = nullptr;
};

}  // namespace dtp::sta
