#include "sta/net_timing.h"

#include <cmath>

#include "common/assert.h"

namespace dtp::sta {

NetTimingView view_of(NetTiming& nt) {
  const size_t m = nt.tree.num_nodes();
  nt.edge_len.resize(m);
  nt.edge_res.resize(m);
  nt.node_cap.resize(m);
  nt.load.resize(m);
  nt.delay.resize(m);
  nt.ldelay.resize(m);
  nt.beta.resize(m);
  nt.imp2.resize(m);
  nt.imp2_clamped.resize(m);
  nt.used_delay.resize(m);
  nt.d2m_degenerate.resize(m);
  return {rsmt::view_of(nt.tree), nt.edge_len, nt.edge_res, nt.node_cap,
          nt.load,                nt.delay,    nt.ldelay,   nt.beta,
          nt.imp2,                nt.imp2_clamped, nt.used_delay,
          nt.d2m_degenerate};
}

void elmore_forward(const NetTimingView& nt, std::span<const double> pin_caps,
                    double r_unit, double c_unit, WireDelayModel model) {
  const rsmt::SteinerTreeView& tree = nt.tree;
  const size_t m = tree.num_nodes();
  DTP_ASSERT(pin_caps.size() == static_cast<size_t>(tree.num_pins));

  for (size_t v = 0; v < m; ++v) {
    nt.edge_len[v] = 0.0;
    nt.edge_res[v] = 0.0;
    nt.node_cap[v] = 0.0;
  }
  for (size_t v = 0; v < m; ++v) {
    const int p = tree.nodes[v].parent;
    if (p < 0) continue;
    const double len = manhattan(tree.nodes[v].pos, tree.nodes[static_cast<size_t>(p)].pos);
    nt.edge_len[v] = len;
    nt.edge_res[v] = r_unit * len;
    const double half_cap = 0.5 * c_unit * len;
    nt.node_cap[v] += half_cap;
    nt.node_cap[static_cast<size_t>(p)] += half_cap;
  }
  for (size_t k = 0; k < pin_caps.size(); ++k) nt.node_cap[k] += pin_caps[k];

  const auto& topo = tree.topo_order;

  // Pass 1 (bottom-up): Load(u) = Cap(u) + sum_child Load(v).       (Eq. 7a)
  for (size_t v = 0; v < m; ++v) nt.load[v] = nt.node_cap[v];
  for (size_t k = m; k-- > 1;) {
    const int v = topo[k];
    const int p = tree.nodes[static_cast<size_t>(v)].parent;
    nt.load[static_cast<size_t>(p)] += nt.load[static_cast<size_t>(v)];
  }

  // Pass 2 (top-down): Delay(u) = Delay(fa) + Res(fa->u)*Load(u).   (Eq. 7b)
  for (size_t v = 0; v < m; ++v) nt.delay[v] = 0.0;
  for (size_t k = 1; k < m; ++k) {
    const int v = topo[k];
    const int p = tree.nodes[static_cast<size_t>(v)].parent;
    nt.delay[static_cast<size_t>(v)] = nt.delay[static_cast<size_t>(p)] +
                                       nt.edge_res[static_cast<size_t>(v)] *
                                           nt.load[static_cast<size_t>(v)];
  }

  // Pass 3 (bottom-up): LDelay(u) = Cap(u)*Delay(u) + sum LDelay(v). (Eq. 7c)
  for (size_t v = 0; v < m; ++v) nt.ldelay[v] = nt.node_cap[v] * nt.delay[v];
  for (size_t k = m; k-- > 1;) {
    const int v = topo[k];
    const int p = tree.nodes[static_cast<size_t>(v)].parent;
    nt.ldelay[static_cast<size_t>(p)] += nt.ldelay[static_cast<size_t>(v)];
  }

  // Pass 4 (top-down): Beta(u) = Beta(fa) + Res(fa->u)*LDelay(u).   (Eq. 7d)
  for (size_t v = 0; v < m; ++v) nt.beta[v] = 0.0;
  for (size_t k = 1; k < m; ++k) {
    const int v = topo[k];
    const int p = tree.nodes[static_cast<size_t>(v)].parent;
    nt.beta[static_cast<size_t>(v)] = nt.beta[static_cast<size_t>(p)] +
                                      nt.edge_res[static_cast<size_t>(v)] *
                                          nt.ldelay[static_cast<size_t>(v)];
  }

  // Impulse^2 = 2*Beta - Delay^2, clamped for sqrt/division safety.  (Eq. 7e)
  for (size_t v = 0; v < m; ++v) {
    const double raw = 2.0 * nt.beta[v] - nt.delay[v] * nt.delay[v];
    if (raw < kImpulseFloor) {
      nt.imp2[v] = kImpulseFloor;
      nt.imp2_clamped[v] = 1;
    } else {
      nt.imp2[v] = raw;
      nt.imp2_clamped[v] = 0;
    }
  }

  // Propagation delay under the selected wire model.
  if (model == WireDelayModel::Elmore) {
    for (size_t v = 0; v < m; ++v) {
      nt.used_delay[v] = nt.delay[v];
      nt.d2m_degenerate[v] = 1;  // "degenerate" == plain Elmore seeds
    }
  } else {
    for (size_t v = 0; v < m; ++v) {
      if (nt.beta[v] < kD2mBetaFloor) {
        nt.used_delay[v] = nt.delay[v];  // zero-length geometry: m2 ~ 0
        nt.d2m_degenerate[v] = 1;
      } else {
        nt.used_delay[v] =
            kLn2 * nt.delay[v] * nt.delay[v] / std::sqrt(nt.beta[v]);
        nt.d2m_degenerate[v] = 0;
      }
    }
  }
}

void elmore_forward(NetTiming& nt, std::span<const double> pin_caps,
                    double r_unit, double c_unit, WireDelayModel model) {
  elmore_forward(view_of(nt), pin_caps, r_unit, c_unit, model);
}

}  // namespace dtp::sta
