#include "netlist/netlist.h"

#include <stdexcept>

namespace dtp::netlist {

CellId Netlist::add_cell(std::string name, int lib_cell_id) {
  DTP_ASSERT(lib_cell_id >= 0 && static_cast<size_t>(lib_cell_id) < lib_->size());
  if (cell_names_.count(name))
    throw std::runtime_error("duplicate cell name: " + name);
  const CellId id = static_cast<CellId>(cells_.size());
  Cell cell;
  cell.name = std::move(name);
  cell.lib_cell = lib_cell_id;
  cell.first_pin = static_cast<PinId>(pins_.size());
  const liberty::LibCell& master = lib_->cell(lib_cell_id);
  cell.num_pins = static_cast<int>(master.pins.size());
  cell_names_[cell.name] = id;
  cells_.push_back(std::move(cell));
  for (int i = 0; i < static_cast<int>(master.pins.size()); ++i) {
    Pin pin;
    pin.cell = id;
    pin.lib_pin = i;
    pins_.push_back(pin);
  }
  return id;
}

NetId Netlist::add_net(std::string name) {
  if (net_names_.count(name)) throw std::runtime_error("duplicate net name: " + name);
  const NetId id = static_cast<NetId>(nets_.size());
  Net net;
  net.name = std::move(name);
  net_names_[net.name] = id;
  nets_.push_back(std::move(net));
  return id;
}

PinId Netlist::connect(NetId net_id, CellId cell_id, const std::string& pin_name) {
  const int idx = lib_cell_of(cell_id).find_pin(pin_name);
  if (idx < 0)
    throw std::runtime_error("cell " + cells_[static_cast<size_t>(cell_id)].name +
                             " has no pin named " + pin_name);
  return connect(net_id, cell_id, idx);
}

PinId Netlist::connect(NetId net_id, CellId cell_id, int lib_pin_index) {
  DTP_ASSERT(net_id >= 0 && static_cast<size_t>(net_id) < nets_.size());
  const Cell& cell = cells_[static_cast<size_t>(cell_id)];
  DTP_ASSERT(lib_pin_index >= 0 && lib_pin_index < cell.num_pins);
  const PinId pin_id = cell.first_pin + lib_pin_index;
  Pin& pin = pins_[static_cast<size_t>(pin_id)];
  if (pin.net != kInvalidId)
    throw std::runtime_error("pin " + pin_full_name(pin_id) + " already connected");
  pin.net = net_id;
  Net& net = nets_[static_cast<size_t>(net_id)];
  net.pins.push_back(pin_id);
  if (pin_is_output(pin_id)) {
    if (net.driver != kInvalidId)
      throw std::runtime_error("net " + net.name + " has multiple drivers");
    net.driver = pin_id;
  }
  return pin_id;
}

void Netlist::validate() const {
  for (size_t n = 0; n < nets_.size(); ++n) {
    const Net& net = nets_[n];
    if (net.pins.empty())
      throw std::runtime_error("net " + net.name + " has no pins");
    if (net.driver == kInvalidId)
      throw std::runtime_error("net " + net.name + " has no driver");
    if (net.pins.size() < 2)
      throw std::runtime_error("net " + net.name + " has no sinks");
  }
  for (size_t p = 0; p < pins_.size(); ++p) {
    const Pin& pin = pins_[p];
    // Clock pins and unconnected pins are allowed only where meaningful: an
    // unconnected *output* of a port-in pad would orphan the port.
    if (pin.net == kInvalidId) {
      const CellId c = pin.cell;
      if (cell_is_port(c))
        throw std::runtime_error("port " + cells_[static_cast<size_t>(c)].name +
                                 " is unconnected");
    }
  }
}

Netlist::Stats Netlist::stats() const {
  Stats s;
  s.num_cells = cells_.size();
  for (size_t c = 0; c < cells_.size(); ++c) {
    const auto id = static_cast<CellId>(c);
    if (cell_is_port(id))
      ++s.num_ports;
    else {
      ++s.num_std_cells;
      if (cell_is_sequential(id)) ++s.num_seq_cells;
    }
  }
  s.num_nets = nets_.size();
  size_t total_degree = 0;
  for (const Net& net : nets_) {
    total_degree += net.pins.size();
    s.max_net_degree = std::max(s.max_net_degree, net.pins.size());
  }
  s.num_pins = total_degree;
  s.avg_net_degree = nets_.empty() ? 0.0
                                   : static_cast<double>(total_degree) /
                                         static_cast<double>(nets_.size());
  return s;
}

}  // namespace dtp::netlist
