// Flat netlist data model.
//
// A Netlist instantiates masters from a liberty::CellLibrary.  Storage is
// index-based and append-only: cells, pins and nets live in flat vectors and
// are referenced by dense integer ids, which is what the levelized timer and
// the placer kernels iterate over (the CPU analogue of the paper's flattened
// GPU arrays).  Every instantiated cell materializes one Pin per lib pin at
// creation; unconnected pins keep net == kInvalidId.
//
// Primary IOs are ordinary cells whose master is one of the IO-pad masters
// (CellKind::PortIn/PortOut), fixed in place by the floorplanner, so the
// placer and timer need no special-casing for ports.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/assert.h"
#include "common/vec2.h"
#include "liberty/cell_library.h"

namespace dtp::netlist {

using CellId = int;
using NetId = int;
using PinId = int;
inline constexpr int kInvalidId = -1;

struct Cell {
  std::string name;
  int lib_cell = kInvalidId;
  bool fixed = false;
  PinId first_pin = kInvalidId;  // pins are contiguous: [first_pin, first_pin+n)
  int num_pins = 0;
};

struct Pin {
  CellId cell = kInvalidId;
  int lib_pin = -1;       // index into LibCell::pins
  NetId net = kInvalidId; // kInvalidId while unconnected
};

struct Net {
  std::string name;
  std::vector<PinId> pins;       // all connected pins; driver is listed too
  PinId driver = kInvalidId;     // the single output pin on the net
};

class Netlist {
 public:
  explicit Netlist(const liberty::CellLibrary* library) : lib_(library) {
    DTP_ASSERT(library != nullptr);
  }

  // ---- construction ----
  CellId add_cell(std::string name, int lib_cell_id);
  NetId add_net(std::string name);
  // Connects the pin of `cell` whose lib-pin name is `pin_name` to `net`.
  PinId connect(NetId net, CellId cell, const std::string& pin_name);
  PinId connect(NetId net, CellId cell, int lib_pin_index);

  // Validates single-driver nets, no dangling drivers, etc.  Throws
  // std::runtime_error describing the first problem found.
  void validate() const;

  // ---- topology accessors ----
  const liberty::CellLibrary& library() const { return *lib_; }
  size_t num_cells() const { return cells_.size(); }
  size_t num_nets() const { return nets_.size(); }
  size_t num_pins() const { return pins_.size(); }

  const Cell& cell(CellId id) const { return cells_[static_cast<size_t>(id)]; }
  Cell& cell(CellId id) { return cells_[static_cast<size_t>(id)]; }
  const Net& net(NetId id) const { return nets_[static_cast<size_t>(id)]; }
  const Pin& pin(PinId id) const { return pins_[static_cast<size_t>(id)]; }

  CellId find_cell(const std::string& name) const {
    const auto it = cell_names_.find(name);
    return it == cell_names_.end() ? kInvalidId : it->second;
  }
  NetId find_net(const std::string& name) const {
    const auto it = net_names_.find(name);
    return it == net_names_.end() ? kInvalidId : it->second;
  }

  // ---- derived pin properties (hot paths, header-inline) ----
  const liberty::LibCell& lib_cell_of(CellId c) const {
    return lib_->cell(cells_[static_cast<size_t>(c)].lib_cell);
  }
  const liberty::LibPin& lib_pin_of(PinId p) const {
    const Pin& pin = pins_[static_cast<size_t>(p)];
    return lib_cell_of(pin.cell).pins[static_cast<size_t>(pin.lib_pin)];
  }
  bool pin_is_output(PinId p) const {
    return lib_pin_of(p).dir == liberty::PinDir::Output;
  }
  double pin_cap(PinId p) const { return lib_pin_of(p).cap; }
  Vec2 pin_offset(PinId p) const {
    const liberty::LibPin& lp = lib_pin_of(p);
    return {lp.offset_x, lp.offset_y};
  }
  // The pin this pin belongs to, by cell pin name (debug/report paths).
  std::string pin_full_name(PinId p) const {
    const Pin& pin = pins_[static_cast<size_t>(p)];
    return cells_[static_cast<size_t>(pin.cell)].name + "/" + lib_pin_of(p).name;
  }
  PinId pin_of_cell(CellId c, const std::string& pin_name) const {
    const Cell& cell = cells_[static_cast<size_t>(c)];
    const int idx = lib_cell_of(c).find_pin(pin_name);
    return idx < 0 ? kInvalidId : cell.first_pin + idx;
  }
  bool cell_is_port(CellId c) const { return lib_cell_of(c).is_port(); }
  bool cell_is_sequential(CellId c) const {
    return lib_cell_of(c).kind == liberty::CellKind::Sequential;
  }

  struct Stats {
    size_t num_cells = 0;      // all cells including IO pads
    size_t num_std_cells = 0;  // movable standard cells
    size_t num_seq_cells = 0;
    size_t num_ports = 0;
    size_t num_nets = 0;
    size_t num_pins = 0;       // connected pins
    double avg_net_degree = 0.0;
    size_t max_net_degree = 0;
  };
  Stats stats() const;

 private:
  const liberty::CellLibrary* lib_;
  std::vector<Cell> cells_;
  std::vector<Pin> pins_;
  std::vector<Net> nets_;
  std::unordered_map<std::string, CellId> cell_names_;
  std::unordered_map<std::string, NetId> net_names_;
};

// Design-level timing constraints (single ideal clock; see DESIGN.md §1).
struct Constraints {
  double clock_period = 1.0;   // ns
  double clock_slew = 0.02;    // ns, constant slew of the ideal clock tree
  double input_slew = 0.02;    // ns, default PI transition
  double input_delay = 0.0;    // ns, default PI arrival time
  double output_delay = 0.0;   // ns, margin required at POs
  double output_load = 0.004;  // pF, default load on POs
  // Unit-length wire parasitics (per micron).
  double wire_res = 0.0004;    // kOhm / micron
  double wire_cap = 0.0002;    // pF / micron
  // Per-port overrides keyed by port cell name.
  std::unordered_map<std::string, double> input_delay_override;
  std::unordered_map<std::string, double> input_slew_override;
  std::unordered_map<std::string, double> output_delay_override;
  std::unordered_map<std::string, double> output_load_override;
};

// Placement region geometry.
struct Floorplan {
  Rect core;                 // placeable area, microns
  double row_height = 2.0;   // microns
  double site_width = 0.5;   // microns
  int num_rows() const {
    return static_cast<int>(core.height() / row_height + 0.5);
  }
};

// A complete design: netlist + constraints + floorplan + cell locations, the
// unit every stage of the flow (placer, timer, IO) operates on.  cell_x/cell_y
// hold the *origin* (lower-left) of each cell; pin locations add the lib-pin
// offsets.  Cells flagged fixed (IO pads, macros) keep their coordinates
// through placement.
struct Design {
  std::string name;
  Netlist netlist;
  Constraints constraints;
  Floorplan floorplan;
  std::vector<double> cell_x, cell_y;  // indexed by CellId

  explicit Design(const liberty::CellLibrary* lib, std::string design_name = "top")
      : name(std::move(design_name)), netlist(lib) {}

  // Call after netlist construction to size the position arrays.
  void init_positions() {
    cell_x.assign(netlist.num_cells(), 0.0);
    cell_y.assign(netlist.num_cells(), 0.0);
  }
};

}  // namespace dtp::netlist
