#include "obs/trace.h"

#include <algorithm>
#include <fstream>

#include "common/json_writer.h"
#include "obs/metrics.h"

namespace dtp::obs {

std::atomic<uint32_t> Tracer::mode_flags_{0};

// Per-thread ring buffer.  Owned by the Tracer registry and reset lazily when
// the thread first records into a new session; the thread_local pointer below
// stays valid for the life of the process (the Tracer singleton leaks its
// buffers deliberately so worker threads can outlive a session).
struct Tracer::ThreadBuffer {
  std::vector<TraceEvent> ring;
  size_t head = 0;     // next slot to write
  size_t count = 0;    // valid events (<= ring.size())
  size_t dropped = 0;  // events overwritten after the ring filled
  uint64_t session = 0;
  uint32_t tid = 0;
};

// Per-thread live-span slot (DESIGN.md §14).  The owning thread is the only
// writer; the sampler thread reads under the seqlock: seq is bumped to odd
// before a mutation of (depth, frames) and back to even after, with release
// ordering on the final store so a reader that sees matching even values on
// both sides of its data loads observed a consistent stack.  Data fields are
// relaxed atomics: the fences order them, and plain loads racing plain stores
// would be data races under the C++ memory model (and TSan).
struct Tracer::LiveSlot {
  std::atomic<uint32_t> seq{0};
  std::atomic<uint32_t> depth{0};
  std::atomic<const char*> frames[kMaxLiveDepth] = {};
  std::atomic<uint32_t> truncated{0};  // pushes beyond kMaxLiveDepth
  uint32_t tid = 0;                    // UINT32_MAX: table was full
};

Tracer& Tracer::instance() {
  static Tracer* tracer = new Tracer();  // leaked: see ThreadBuffer comment
  return *tracer;
}

void Tracer::enable(size_t capacity) {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  capacity_ = std::max<size_t>(1, capacity);
  ++session_;
  epoch_ = std::chrono::steady_clock::now();
  mode_flags_.fetch_or(kTraceBit, std::memory_order_release);
}

void Tracer::disable() {
  mode_flags_.fetch_and(~kTraceBit, std::memory_order_release);
}

void Tracer::enable_live() {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  if (++live_refs_ == 1)
    mode_flags_.fetch_or(kLiveBit, std::memory_order_release);
}

void Tracer::disable_live() {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  if (live_refs_ > 0 && --live_refs_ == 0)
    mode_flags_.fetch_and(~kLiveBit, std::memory_order_release);
}

double Tracer::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  thread_local ThreadBuffer* buf = nullptr;
  if (buf == nullptr) {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    buf = new ThreadBuffer();
    buf->tid = static_cast<uint32_t>(buffers_.size());
    buffers_.push_back(buf);
  }
  return *buf;
}

Tracer::LiveSlot& Tracer::live_slot() {
  thread_local LiveSlot* slot = nullptr;
  if (slot == nullptr) {
    Tracer& t = instance();
    std::lock_guard<std::mutex> lock(t.registry_mutex_);
    slot = new LiveSlot();  // leaked, like ThreadBuffer
    const size_t n = t.live_count_.load(std::memory_order_relaxed);
    if (n < static_cast<size_t>(kMaxLiveThreads)) {
      slot->tid = static_cast<uint32_t>(n);
      t.live_slots_[n] = slot;
      // Release-publish the count: the sampler's acquire load of live_count_
      // makes the slot pointer (and tid) visible.
      t.live_count_.store(n + 1, std::memory_order_release);
    } else {
      slot->tid = UINT32_MAX;  // invisible to the sampler, push/pop still safe
      t.live_unregistered_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return *slot;
}

uint32_t Tracer::live_thread_id() { return live_slot().tid; }

void Tracer::live_push(const char* name) {
  LiveSlot& s = live_slot();
  const uint32_t d = s.depth.load(std::memory_order_relaxed);
  if (d >= static_cast<uint32_t>(kMaxLiveDepth)) {
    // Beyond the published window: the visible stack (frames[0..max)) is
    // unchanged, so no seqlock round-trip is needed — just track depth so
    // pops stay symmetric, and tally the lost label.
    s.truncated.fetch_add(1, std::memory_order_relaxed);
    s.depth.store(d + 1, std::memory_order_relaxed);
    return;
  }
  const uint32_t q = s.seq.load(std::memory_order_relaxed);
  s.seq.store(q + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  s.frames[d].store(name, std::memory_order_relaxed);
  s.depth.store(d + 1, std::memory_order_relaxed);
  s.seq.store(q + 2, std::memory_order_release);
}

void Tracer::live_pop() {
  LiveSlot& s = live_slot();
  const uint32_t d = s.depth.load(std::memory_order_relaxed);
  if (d == 0) return;  // unbalanced pop (live mode toggled mid-span): ignore
  if (d > static_cast<uint32_t>(kMaxLiveDepth)) {
    s.depth.store(d - 1, std::memory_order_relaxed);  // still above the window
    return;
  }
  const uint32_t q = s.seq.load(std::memory_order_relaxed);
  s.seq.store(q + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  s.depth.store(d - 1, std::memory_order_relaxed);
  s.seq.store(q + 2, std::memory_order_release);
}

size_t Tracer::sample_live(LiveSample* out, size_t max_out,
                           size_t* torn) const {
  const size_t n = std::min(live_count_.load(std::memory_order_acquire),
                            static_cast<size_t>(kMaxLiveThreads));
  size_t written = 0;
  size_t torn_count = 0;
  for (size_t i = 0; i < n && written < max_out; ++i) {
    const LiveSlot* s = live_slots_[i];
    LiveSample smp;
    bool consistent = false;
    // Bounded retries: a slot whose owner keeps mutating mid-read is skipped
    // for this tick rather than stalling the sampler.
    for (int attempt = 0; attempt < 8; ++attempt) {
      const uint32_t q1 = s->seq.load(std::memory_order_acquire);
      if ((q1 & 1u) != 0) continue;  // writer mid-update
      uint32_t d = s->depth.load(std::memory_order_relaxed);
      if (d > static_cast<uint32_t>(kMaxLiveDepth))
        d = static_cast<uint32_t>(kMaxLiveDepth);
      for (uint32_t f = 0; f < d; ++f)
        smp.frames[f] = s->frames[f].load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (s->seq.load(std::memory_order_relaxed) != q1) continue;
      smp.depth = d;
      smp.tid = s->tid;
      consistent = true;
      break;
    }
    if (!consistent) {
      ++torn_count;
      continue;
    }
    if (smp.depth == 0) continue;  // idle thread: no sample
    out[written++] = smp;
  }
  if (torn != nullptr) *torn = torn_count;
  return written;
}

size_t Tracer::live_truncated() const {
  const size_t n = std::min(live_count_.load(std::memory_order_acquire),
                            static_cast<size_t>(kMaxLiveThreads));
  size_t total = 0;
  for (size_t i = 0; i < n; ++i)
    total += live_slots_[i]->truncated.load(std::memory_order_relaxed);
  return total;
}

size_t Tracer::live_unregistered() const {
  return live_unregistered_.load(std::memory_order_relaxed);
}

void Tracer::record(const char* name, double ts_us, double dur_us) {
  ThreadBuffer& buf = local_buffer();
  if (buf.session != session_) {
    // First record of this thread in the current session: (re)size and reset.
    buf.ring.resize(capacity_);
    buf.head = 0;
    buf.count = 0;
    buf.dropped = 0;
    buf.session = session_;
  }
  if (buf.count == buf.ring.size()) {
    ++buf.dropped;
    static Counter& dropped_spans =
        MetricsRegistry::instance().counter("obs.trace.dropped_spans");
    dropped_spans.add(1);
  }
  buf.ring[buf.head] = TraceEvent{name, ts_us, dur_us, buf.tid};
  buf.head = (buf.head + 1) % buf.ring.size();
  buf.count = std::min(buf.count + 1, buf.ring.size());
}

size_t Tracer::num_events() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  size_t n = 0;
  for (const ThreadBuffer* b : buffers_)
    if (b->session == session_) n += b->count;
  return n;
}

size_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  size_t n = 0;
  for (const ThreadBuffer* b : buffers_)
    if (b->session == session_) n += b->dropped;
  return n;
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  std::vector<TraceEvent> out;
  for (const ThreadBuffer* b : buffers_) {
    if (b->session != session_) continue;
    // Ring order: oldest first.
    const size_t cap = b->ring.size();
    const size_t start = (b->head + cap - b->count) % cap;
    for (size_t i = 0; i < b->count; ++i)
      out.push_back(b->ring[(start + i) % cap]);
  }
  std::sort(out.begin(), out.end(), [](const TraceEvent& a, const TraceEvent& b) {
    return a.ts_us < b.ts_us;
  });
  return out;
}

std::vector<std::pair<uint32_t, size_t>> Tracer::per_thread_dropped() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  std::vector<std::pair<uint32_t, size_t>> out;
  for (const ThreadBuffer* b : buffers_)
    if (b->session == session_ && b->dropped > 0)
      out.emplace_back(b->tid, b->dropped);
  return out;
}

std::string Tracer::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();
  for (const TraceEvent& e : events()) {
    w.begin_object();
    w.key("name").value(e.name);
    w.key("ph").value("X");
    w.key("pid").value(0);
    w.key("tid").value(static_cast<uint64_t>(e.tid));
    w.key("ts").value(e.ts_us);
    w.key("dur").value(e.dur_us);
    w.end_object();
  }
  w.end_array();
  // Ring-overflow accounting: total and per-thread dropped spans, so a
  // truncated trace is detectable from the artifact alone.  Extra top-level
  // keys are legal in the Chrome trace format.
  const std::vector<std::pair<uint32_t, size_t>> per_thread =
      per_thread_dropped();
  size_t total_dropped = 0;
  for (const auto& [tid, n] : per_thread) total_dropped += n;
  w.key("metadata").begin_object();
  w.key("dropped_spans").value(static_cast<uint64_t>(total_dropped));
  w.key("per_thread_dropped").begin_array();
  for (const auto& [tid, n] : per_thread) {
    w.begin_object();
    w.key("tid").value(static_cast<uint64_t>(tid));
    w.key("dropped").value(static_cast<uint64_t>(n));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.end_object();
  return w.str();
}

bool Tracer::write_json(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_json() << "\n";
  return static_cast<bool>(f);
}

}  // namespace dtp::obs
