#include "obs/trace.h"

#include <algorithm>
#include <fstream>

#include "common/json_writer.h"

namespace dtp::obs {

std::atomic<bool> Tracer::enabled_flag_{false};

// Per-thread ring buffer.  Owned by the Tracer registry and reset lazily when
// the thread first records into a new session; the thread_local pointer below
// stays valid for the life of the process (the Tracer singleton leaks its
// buffers deliberately so worker threads can outlive a session).
struct Tracer::ThreadBuffer {
  std::vector<TraceEvent> ring;
  size_t head = 0;     // next slot to write
  size_t count = 0;    // valid events (<= ring.size())
  size_t dropped = 0;  // events overwritten after the ring filled
  uint64_t session = 0;
  uint32_t tid = 0;
};

Tracer& Tracer::instance() {
  static Tracer* tracer = new Tracer();  // leaked: see ThreadBuffer comment
  return *tracer;
}

void Tracer::enable(size_t capacity) {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  capacity_ = std::max<size_t>(1, capacity);
  ++session_;
  epoch_ = std::chrono::steady_clock::now();
  enabled_flag_.store(true, std::memory_order_release);
}

void Tracer::disable() { enabled_flag_.store(false, std::memory_order_release); }

double Tracer::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  thread_local ThreadBuffer* buf = nullptr;
  if (buf == nullptr) {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    buf = new ThreadBuffer();
    buf->tid = static_cast<uint32_t>(buffers_.size());
    buffers_.push_back(buf);
  }
  return *buf;
}

void Tracer::record(const char* name, double ts_us, double dur_us) {
  ThreadBuffer& buf = local_buffer();
  if (buf.session != session_) {
    // First record of this thread in the current session: (re)size and reset.
    buf.ring.resize(capacity_);
    buf.head = 0;
    buf.count = 0;
    buf.dropped = 0;
    buf.session = session_;
  }
  if (buf.count == buf.ring.size()) ++buf.dropped;
  buf.ring[buf.head] = TraceEvent{name, ts_us, dur_us, buf.tid};
  buf.head = (buf.head + 1) % buf.ring.size();
  buf.count = std::min(buf.count + 1, buf.ring.size());
}

size_t Tracer::num_events() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  size_t n = 0;
  for (const ThreadBuffer* b : buffers_)
    if (b->session == session_) n += b->count;
  return n;
}

size_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  size_t n = 0;
  for (const ThreadBuffer* b : buffers_)
    if (b->session == session_) n += b->dropped;
  return n;
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  std::vector<TraceEvent> out;
  for (const ThreadBuffer* b : buffers_) {
    if (b->session != session_) continue;
    // Ring order: oldest first.
    const size_t cap = b->ring.size();
    const size_t start = (b->head + cap - b->count) % cap;
    for (size_t i = 0; i < b->count; ++i)
      out.push_back(b->ring[(start + i) % cap]);
  }
  std::sort(out.begin(), out.end(), [](const TraceEvent& a, const TraceEvent& b) {
    return a.ts_us < b.ts_us;
  });
  return out;
}

std::string Tracer::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();
  for (const TraceEvent& e : events()) {
    w.begin_object();
    w.key("name").value(e.name);
    w.key("ph").value("X");
    w.key("pid").value(0);
    w.key("tid").value(static_cast<uint64_t>(e.tid));
    w.key("ts").value(e.ts_us);
    w.key("dur").value(e.dur_us);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

bool Tracer::write_json(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_json() << "\n";
  return static_cast<bool>(f);
}

}  // namespace dtp::obs
