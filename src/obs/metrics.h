// Process-wide metrics registry: counters, gauges, wall-time histograms
// (DESIGN.md §6).
//
// Instruments register metrics once (the registry interns by name and returns
// a stable reference) and then update them lock-free from any thread:
//
//   static obs::Counter& trees = obs::MetricsRegistry::instance()
//                                    .counter("rsmt.trees_built");
//   trees.add();
//
// All mutation paths are gated on a single relaxed atomic enabled() flag so a
// disabled registry costs one load + branch per call site — the
// zero-overhead-when-disabled fast path the kernels_bench acceptance bar
// requires.  The registry is enabled by default (counters are a relaxed
// atomic add; the placer's per-phase histograms see a handful of
// observations per iteration).
//
// Histograms track count/sum/min/max plus power-of-two buckets, enough to
// answer "where did the milliseconds go" without a full sample log;
// ScopedTimerMs feeds one from a C++ scope.  to_json() serializes the whole
// registry for the end-of-run summary artifact.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/p2_quantile.h"

namespace dtp::obs {

class MetricsRegistry;

class Counter {
 public:
  void add(uint64_t n = 1);
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v);
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// General-purpose value histogram with a *signed* power-of-two bucket domain.
// Wall-times feed the positive side; slack histograms (introspection records,
// DESIGN.md §8) are signed with the interesting mass below zero, so the
// boundaries are stable and symmetric by construction:
//
//   bucket(k), k >= 1      counts v in [2^(k-1), 2^k)
//   bucket(0)              counts v in (-1, 1)        (the "zero" bucket)
//   neg_bucket(k), k >= 1  counts v in (-2^k, -2^(k-1)]
//
// neg_bucket(0) is never used (the zero bucket owns (-1,1)).  Out-of-range
// magnitudes clamp into the outermost bucket.  Thread-safe via a
// per-histogram mutex — observations happen at phase granularity, not per
// cell, so contention is nil.
class Histogram {
 public:
  static constexpr int kBuckets = 40;

  void observe(double v);

  // Readers take the same per-histogram mutex as observe(): registry
  // histograms are shared across worker threads (dtp_serve runs one placer
  // per worker), so unguarded reads would race with concurrent observes.
  uint64_t count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return count_;
  }
  double sum() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return sum_;
  }
  double min() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return count_ ? min_ : 0.0;
  }
  double max() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return count_ ? max_ : 0.0;
  }
  double mean() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }
  uint64_t bucket(int k) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return buckets_[k];
  }
  uint64_t neg_bucket(int k) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return neg_buckets_[k];
  }
  // Streaming P² estimates over all observations since the last reset
  // (exact below five observations); 0.0 when empty.
  double p50() const;
  double p95() const;
  void reset();

 private:
  friend class MetricsRegistry;
  mutable std::mutex mutex_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  uint64_t buckets_[kBuckets] = {};
  uint64_t neg_buckets_[kBuckets] = {};
  P2Quantile p50_est_{0.50};
  P2Quantile p95_est_{0.95};
};

class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  static bool enabled() {
    return enabled_flag_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) {
    enabled_flag_.store(on, std::memory_order_relaxed);
  }

  // Interned by name; references stay valid for the life of the process.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  // Sum of a histogram's observations, 0 if it does not exist yet.  Lets a
  // caller compute per-run deltas of a global accumulator (PlaceResult's
  // phase breakdown).
  double histogram_sum(const std::string& name) const;

  // Zeroes every registered metric (names stay registered).
  void reset();

  // {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,...}}}
  std::string to_json() const;
  bool write_json(const std::string& path) const;

  // Prometheus text exposition (format version 0.0.4) of every registered
  // metric.  Dotted registry names are sanitized to the Prometheus grammar
  // ("serve.wait_ms" -> "dtp_serve_wait_ms"), counters get the conventional
  // `_total` suffix, and histograms translate into cumulative `_bucket`
  // series over the signed power-of-two boundaries plus `_sum`/`_count`.
  // Exactly one HELP and one TYPE line per series family.  `prefix` guards
  // against cross-exporter collisions; callers append their own labeled
  // series (e.g. dtp_serve_job_state) after this block.
  std::string to_prometheus(const std::string& prefix = "dtp_") const;

  // "a.b-c d" -> "a_b_c_d": the Prometheus metric-name charset is
  // [a-zA-Z0-9_:]; anything else becomes '_'.  Shared with callers that emit
  // labeled series of their own so naming stays uniform.
  static std::string sanitize_name(const std::string& name);

 private:
  MetricsRegistry() = default;

  static std::atomic<bool> enabled_flag_;
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// RAII wall-time observer: adds the scope's elapsed milliseconds to a
// histogram.  Free when the registry is disabled (no clock reads).
class ScopedTimerMs {
 public:
  explicit ScopedTimerMs(Histogram& h) {
    if (MetricsRegistry::enabled()) {
      hist_ = &h;
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopedTimerMs() {
    if (hist_ != nullptr)
      hist_->observe(std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start_)
                         .count());
  }
  ScopedTimerMs(const ScopedTimerMs&) = delete;
  ScopedTimerMs& operator=(const ScopedTimerMs&) = delete;

 private:
  Histogram* hist_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace dtp::obs
