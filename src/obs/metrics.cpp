#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "common/json_writer.h"

namespace dtp::obs {

std::atomic<bool> MetricsRegistry::enabled_flag_{true};

void Counter::add(uint64_t n) {
  if (!MetricsRegistry::enabled()) return;
  value_.fetch_add(n, std::memory_order_relaxed);
}

void Gauge::set(double v) {
  if (!MetricsRegistry::enabled()) return;
  value_.store(v, std::memory_order_relaxed);
}

void Histogram::observe(double v) {
  if (!MetricsRegistry::enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (count_ == 0 || v < min_) min_ = v;
  if (count_ == 0 || v > max_) max_ = v;
  ++count_;
  sum_ += v;
  // Signed bucket domain (see metrics.h): magnitudes < 1 land in the shared
  // zero bucket; otherwise 1 + floor(log2(|v|)) picks the side's bucket.
  if (v >= 1.0) {
    ++buckets_[std::min(kBuckets - 1, 1 + static_cast<int>(std::log2(v)))];
  } else if (v <= -1.0) {
    ++neg_buckets_[std::min(kBuckets - 1, 1 + static_cast<int>(std::log2(-v)))];
  } else {
    ++buckets_[0];
  }
  p50_est_.observe(v);
  p95_est_.observe(v);
}

double Histogram::p50() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return p50_est_.value();
}

double Histogram::p95() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return p95_est_.value();
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
  for (auto& b : buckets_) b = 0;
  for (auto& b : neg_buckets_) b = 0;
  p50_est_.reset();
  p95_est_.reset();
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

double MetricsRegistry::histogram_sum(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? 0.0 : it->second->sum();
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, c] : counters_) w.key(name).value(c->value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_) w.key(name).value(g->value());
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name).begin_object();
    w.key("count").value(h->count());
    w.key("sum").value(h->sum());
    w.key("min").value(h->min());
    w.key("max").value(h->max());
    w.key("mean").value(h->mean());
    w.key("p50").value(h->p50());
    w.key("p95").value(h->p95());
    // Sparse bucket map keyed by the bound nearer zero's far side: positive
    // buckets by upper bound (2^k), negative buckets by lower bound (-2^k).
    w.key("buckets").begin_object();
    for (int k = Histogram::kBuckets - 1; k >= 1; --k) {
      if (h->neg_bucket(k) == 0) continue;
      w.key("-" + std::to_string(static_cast<long long>(1) << k))
          .value(h->neg_bucket(k));
    }
    for (int k = 0; k < Histogram::kBuckets; ++k) {
      if (h->bucket(k) == 0) continue;
      w.key(std::to_string(static_cast<long long>(1) << k)).value(h->bucket(k));
    }
    w.end_object();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

std::string MetricsRegistry::sanitize_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

namespace {

void prom_head(std::string& out, const std::string& series,
               const std::string& source, const char* type) {
  out += "# HELP " + series + " dtp metric " + source + "\n";
  out += "# TYPE " + series + " " + type + "\n";
}

std::string prom_num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string MetricsRegistry::to_prometheus(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    const std::string series = prefix + sanitize_name(name) + "_total";
    prom_head(out, series, name, "counter");
    out += series + " " + std::to_string(c->value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const std::string series = prefix + sanitize_name(name);
    prom_head(out, series, name, "gauge");
    out += series + " " + prom_num(g->value()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::string series = prefix + sanitize_name(name);
    prom_head(out, series, name, "histogram");
    // Cumulative buckets over the signed power-of-two domain (metrics.h):
    // walk boundaries from the most negative upward so counts only grow.
    // neg_bucket(k) covers (-2^k, -2^(k-1)] -> boundary le=-2^(k-1);
    // bucket(0) covers (-1,1) -> folded into le=1 with bucket(1) ([1,2) ->
    // le=2, and so on).  Empty outer buckets are skipped to keep the
    // exposition compact; le="+Inf" always closes the series.
    uint64_t cum = 0;
    int lo_neg = 0, hi_pos = 0;
    for (int k = 1; k < Histogram::kBuckets; ++k) {
      if (h->neg_bucket(k) != 0) lo_neg = std::max(lo_neg, k);
      if (h->bucket(k) != 0) hi_pos = std::max(hi_pos, k);
    }
    for (int k = lo_neg; k >= 1; --k) {
      cum += h->neg_bucket(k);
      out += series + "_bucket{le=\"-" +
             std::to_string(static_cast<long long>(1) << (k - 1)) + "\"} " +
             std::to_string(cum) + "\n";
    }
    cum += h->bucket(0);
    if (lo_neg > 0 || h->bucket(0) != 0 || hi_pos > 0) {
      out += series + "_bucket{le=\"1\"} " + std::to_string(cum) + "\n";
    }
    for (int k = 1; k <= hi_pos; ++k) {
      cum += h->bucket(k);
      out += series + "_bucket{le=\"" +
             std::to_string(static_cast<long long>(1) << k) + "\"} " +
             std::to_string(cum) + "\n";
    }
    out += series + "_bucket{le=\"+Inf\"} " + std::to_string(h->count()) + "\n";
    out += series + "_sum " + prom_num(h->sum()) + "\n";
    out += series + "_count " + std::to_string(h->count()) + "\n";
  }
  return out;
}

bool MetricsRegistry::write_json(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_json() << "\n";
  return static_cast<bool>(f);
}

}  // namespace dtp::obs
