#include "obs/prof/hw_counters.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/json_writer.h"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace dtp::obs::prof {

void counters_to_json(JsonWriter& w, const CounterSample& s) {
  w.begin_object();
  w.key("available").value(s.available);
  if (!s.available) {
    w.key("reason").value(s.unavailable_reason);
    w.end_object();
    return;
  }
  w.key("cycles").value(s.cycles);
  w.key("instructions").value(s.instructions);
  w.key("cache_references").value(s.cache_references);
  w.key("cache_misses").value(s.cache_misses);
  w.key("branch_misses").value(s.branch_misses);
  w.key("ipc").value(s.ipc());
  w.key("cache_miss_rate").value(s.cache_miss_rate());
  w.key("running_fraction").value(s.running_fraction);
  w.end_object();
}

#if defined(__linux__)

namespace {

// The group layout, leader first.  Order defines the read_format layout.
struct EventDef {
  uint32_t type;
  uint64_t config;
  const char* name;
};
constexpr EventDef kEvents[] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, "cycles"},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS, "instructions"},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES, "cache-references"},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES, "cache-misses"},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES, "branch-misses"},
};
constexpr int kNumEvents = 5;

int perf_open(const EventDef& ev, int group_fd) {
  struct perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = ev.type;
  attr.config = ev.config;
  attr.disabled = group_fd < 0 ? 1 : 0;  // leader starts disabled
  attr.exclude_kernel = 1;  // lowest perf_event_paranoid requirement
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, 0 /*this thread*/, -1 /*any cpu*/,
              group_fd, 0));
}

}  // namespace

HwCounters::HwCounters() {
  if (const char* off = std::getenv("DTP_NO_PERF");
      off != nullptr && off[0] != '\0' && off[0] != '0') {
    reason_ = "disabled by DTP_NO_PERF";
    return;
  }
  group_fd_ = perf_open(kEvents[0], -1);
  if (group_fd_ < 0) {
    reason_ = std::string("perf_event_open(cycles) failed: ") +
              std::strerror(errno);
    return;
  }
  for (int i = 1; i < kNumEvents; ++i) {
    member_fds_[i - 1] = perf_open(kEvents[i], group_fd_);
    if (member_fds_[i - 1] < 0) {
      reason_ = std::string("perf_event_open(") + kEvents[i].name +
                ") failed: " + std::strerror(errno);
      for (int j = 0; j < i - 1; ++j) ::close(member_fds_[j]);
      ::close(group_fd_);
      group_fd_ = -1;
      for (int& fd : member_fds_) fd = -1;
      return;
    }
  }
}

HwCounters::~HwCounters() {
  if (group_fd_ < 0) return;
  for (int fd : member_fds_)
    if (fd >= 0) ::close(fd);
  ::close(group_fd_);
}

void HwCounters::start() {
  if (group_fd_ < 0) return;
  ioctl(group_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(group_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
}

CounterSample HwCounters::read() const {
  CounterSample s;
  if (group_fd_ < 0) {
    s.unavailable_reason = reason_;
    return s;
  }
  // PERF_FORMAT_GROUP read layout:
  //   u64 nr; u64 time_enabled; u64 time_running; u64 values[nr];
  uint64_t buf[3 + kNumEvents] = {};
  const ssize_t got = ::read(group_fd_, buf, sizeof(buf));
  if (got < static_cast<ssize_t>((3 + kNumEvents) * sizeof(uint64_t)) ||
      buf[0] != static_cast<uint64_t>(kNumEvents)) {
    s.unavailable_reason = "grouped perf read returned a short record";
    return s;
  }
  const uint64_t enabled = buf[1], running = buf[2];
  // Scale for multiplexing: when the PMU ran the group only part of the
  // interval, extrapolate counts to the full enabled window.
  const double scale =
      running > 0 ? static_cast<double>(enabled) / static_cast<double>(running)
                  : 0.0;
  auto scaled = [&](int i) {
    return running > 0 ? static_cast<uint64_t>(
                             static_cast<double>(buf[3 + i]) * scale)
                       : 0;
  };
  s.available = true;
  s.cycles = scaled(0);
  s.instructions = scaled(1);
  s.cache_references = scaled(2);
  s.cache_misses = scaled(3);
  s.branch_misses = scaled(4);
  s.running_fraction =
      enabled > 0 ? static_cast<double>(running) / static_cast<double>(enabled)
                  : 0.0;
  return s;
}

CounterSample HwCounters::stop() {
  if (group_fd_ >= 0) ioctl(group_fd_, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
  return read();
}

#else  // !__linux__

HwCounters::HwCounters() {
  reason_ = "perf_event_open is Linux-only; counters unavailable";
}
HwCounters::~HwCounters() = default;
void HwCounters::start() {}
CounterSample HwCounters::read() const {
  CounterSample s;
  s.unavailable_reason = reason_;
  return s;
}
CounterSample HwCounters::stop() { return read(); }

#endif

}  // namespace dtp::obs::prof
