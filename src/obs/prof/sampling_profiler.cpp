#include "obs/prof/sampling_profiler.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "common/json_writer.h"
#include "obs/prof/hw_counters.h"
#include "obs/trace.h"

namespace dtp::obs::prof {

namespace {

constexpr const char* kProfileSchema = "dtp.profile.v1";

size_t next_pow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

uint64_t mix_ptr(const void* p) {
  // Fibonacci hashing of the pointer bits; labels are string literals, so
  // identity hashing on the pointer is exact.
  return static_cast<uint64_t>(reinterpret_cast<uintptr_t>(p)) *
         0x9E3779B97F4A7C15ull;
}

uint64_t hash_frames(const char* const* frames, uint32_t depth) {
  uint64_t h = 0xcbf29ce484222325ull ^ depth;  // FNV-1a offset basis
  for (uint32_t i = 0; i < depth; ++i) {
    h ^= mix_ptr(frames[i]);
    h *= 0x100000001b3ull;
  }
  return h == 0 ? 1 : h;  // 0 marks an empty slot
}

}  // namespace

struct SamplingProfiler::Impl {
  Options opts;

  // ---- accumulators, guarded by mu (sampler thread vs readers) ----------
  mutable std::mutex mu;

  struct StackEntry {
    uint64_t hash = 0;  // 0: slot empty
    uint32_t depth = 0;
    const char* frames[Tracer::kMaxLiveDepth];
    uint64_t count = 0;
  };
  std::vector<StackEntry> stacks;  // open-addressed, power-of-two capacity
  size_t stack_mask = 0;
  size_t used_stacks = 0;
  uint64_t dropped_stack_samples = 0;  // samples lost to a full stack table

  struct LabelEntry {
    const char* label = nullptr;  // nullptr: slot empty
    uint64_t self = 0;
    uint64_t total = 0;
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    uint64_t cache_misses = 0;
  };
  std::vector<LabelEntry> labels;  // open-addressed by pointer identity
  size_t label_mask = 0;
  size_t used_labels = 0;
  uint64_t dropped_label_samples = 0;

  uint64_t ticks = 0;
  uint64_t samples = 0;
  uint64_t torn = 0;

  // Rolling-window checkpoints: index-aligned copies of the label arrays.
  struct Checkpoint {
    bool valid = false;
    double t_sec = 0.0;
    uint64_t ticks = 0;
    uint64_t samples = 0;
    uint64_t torn = 0;
    std::vector<uint64_t> self, total, cycles, instructions, cache_misses;
  };
  std::vector<Checkpoint> checkpoints;  // ring, oldest overwritten
  size_t checkpoint_head = 0;
  double last_checkpoint_t = 0.0;
  double last_tick_t = 0.0;

  // ---- sampler scratch (preallocated; tick() must not allocate) ---------
  std::vector<Tracer::LiveSample> scratch;
  std::vector<const char*> uniq;

  // ---- hardware counters (driver thread's group, read per tick) ---------
  std::unique_ptr<HwCounters> counters;
  bool counters_open = false;
  bool counters_available = false;
  std::string counters_reason;
  CounterSample last_counters;
  uint32_t driver_tid = UINT32_MAX;
  size_t truncated_base = 0;
  size_t unregistered_base = 0;

  // ---- lifecycle ---------------------------------------------------------
  std::thread thread;
  std::mutex cv_mu;
  std::condition_variable cv;
  bool stop_requested = false;  // guarded by cv_mu
  std::atomic<bool> running{false};
  bool ever_started = false;
  std::chrono::steady_clock::time_point start_time;
  double stopped_duration = 0.0;

  explicit Impl(const Options& o) : opts(o) {
    opts.hz = std::clamp(opts.hz, 1.0, 100000.0);
    opts.max_stacks = std::max<size_t>(16, opts.max_stacks);
    opts.max_labels = std::max<size_t>(16, opts.max_labels);
    stacks.resize(next_pow2(opts.max_stacks * 2));
    stack_mask = stacks.size() - 1;
    labels.resize(next_pow2(opts.max_labels * 2));
    label_mask = labels.size() - 1;
    scratch.resize(Tracer::kMaxLiveThreads);
    uniq.reserve(Tracer::kMaxLiveDepth);
    checkpoints.resize(std::max<size_t>(1, opts.max_checkpoints));
    for (Checkpoint& c : checkpoints) {
      c.self.resize(labels.size());
      c.total.resize(labels.size());
      c.cycles.resize(labels.size());
      c.instructions.resize(labels.size());
      c.cache_misses.resize(labels.size());
    }
  }

  double elapsed_sec() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_time)
        .count();
  }

  double duration_sec() const {
    if (running.load(std::memory_order_relaxed)) return elapsed_sec();
    if (ever_started) return stopped_duration;
    return static_cast<double>(ticks) / opts.hz;  // manually driven (tests)
  }

  void reset_accumulators() {
    for (StackEntry& e : stacks) e = StackEntry{};
    for (LabelEntry& e : labels) e = LabelEntry{};
    used_stacks = 0;
    used_labels = 0;
    dropped_stack_samples = 0;
    dropped_label_samples = 0;
    ticks = 0;
    samples = 0;
    torn = 0;
    for (Checkpoint& c : checkpoints) c.valid = false;
    checkpoint_head = 0;
    last_checkpoint_t = 0.0;
    last_tick_t = 0.0;
    last_counters = CounterSample{};
  }

  // Requires mu.  Returns nullptr when the table is full and the label new.
  LabelEntry* label_entry(const char* label) {
    size_t slot = static_cast<size_t>(mix_ptr(label)) & label_mask;
    for (size_t probe = 0; probe <= label_mask; ++probe) {
      LabelEntry& e = labels[slot];
      if (e.label == label) return &e;
      if (e.label == nullptr) {
        if (used_labels >= opts.max_labels) return nullptr;
        e.label = label;
        ++used_labels;
        return &e;
      }
      slot = (slot + 1) & label_mask;
    }
    return nullptr;
  }

  // Requires mu.
  void accumulate_stack(const Tracer::LiveSample& smp) {
    const uint64_t h = hash_frames(smp.frames, smp.depth);
    size_t slot = static_cast<size_t>(h) & stack_mask;
    for (size_t probe = 0; probe <= stack_mask; ++probe) {
      StackEntry& e = stacks[slot];
      if (e.hash == h && e.depth == smp.depth &&
          std::memcmp(e.frames, smp.frames,
                      smp.depth * sizeof(const char*)) == 0) {
        ++e.count;
        return;
      }
      if (e.hash == 0) {
        if (used_stacks >= opts.max_stacks) break;
        e.hash = h;
        e.depth = smp.depth;
        std::memcpy(e.frames, smp.frames, smp.depth * sizeof(const char*));
        e.count = 1;
        ++used_stacks;
        return;
      }
      slot = (slot + 1) & stack_mask;
    }
    ++dropped_stack_samples;
  }

  // Requires mu.
  void maybe_checkpoint(double t_sec) {
    bool any_valid = false;
    for (const Checkpoint& c : checkpoints)
      if (c.valid) {
        any_valid = true;
        break;
      }
    if (any_valid && t_sec - last_checkpoint_t < opts.checkpoint_period_sec)
      return;
    Checkpoint& c = checkpoints[checkpoint_head];
    checkpoint_head = (checkpoint_head + 1) % checkpoints.size();
    c.valid = true;
    c.t_sec = t_sec;
    c.ticks = ticks;
    c.samples = samples;
    c.torn = torn;
    for (size_t i = 0; i < labels.size(); ++i) {
      c.self[i] = labels[i].self;
      c.total[i] = labels[i].total;
      c.cycles[i] = labels[i].cycles;
      c.instructions[i] = labels[i].instructions;
      c.cache_misses[i] = labels[i].cache_misses;
    }
    last_checkpoint_t = t_sec;
  }

  // One sampling tick at logical/wall time t_sec.  Allocation-free.
  void tick(double t_sec) {
    Tracer& tracer = Tracer::instance();
    size_t torn_now = 0;
    const size_t n =
        tracer.sample_live(scratch.data(), scratch.size(), &torn_now);
    CounterSample cs;
    bool have_counters = false;
    if (counters_open) {
      cs = counters->read();
      have_counters = cs.available;
    }
    std::lock_guard<std::mutex> lock(mu);
    ++ticks;
    torn += torn_now;
    last_tick_t = t_sec;
    const char* driver_leaf = nullptr;
    for (size_t i = 0; i < n; ++i) {
      const Tracer::LiveSample& smp = scratch[i];
      ++samples;
      accumulate_stack(smp);
      const char* leaf = smp.frames[smp.depth - 1];
      if (smp.tid == driver_tid) driver_leaf = leaf;
      // Per-label tallies: self for the leaf, total once per distinct label
      // on the stack (recursion must not double-count inclusive weight).
      uniq.clear();
      for (uint32_t f = 0; f < smp.depth; ++f) {
        const char* name = smp.frames[f];
        bool seen = false;
        for (const char* u : uniq)
          if (u == name) {
            seen = true;
            break;
          }
        if (!seen) uniq.push_back(name);
      }
      bool label_lost = false;
      for (const char* u : uniq) {
        LabelEntry* e = label_entry(u);
        if (e == nullptr) {
          label_lost = true;
          continue;
        }
        ++e->total;
        if (u == leaf) ++e->self;
      }
      // Recursion edge: when the leaf label also appears higher in the
      // stack, the loop above already credited its self count once.
      if (label_lost) ++dropped_label_samples;
    }
    if (have_counters) {
      if (driver_leaf != nullptr) {
        LabelEntry* e = label_entry(driver_leaf);
        if (e != nullptr) {
          e->cycles += cs.cycles - last_counters.cycles;
          e->instructions += cs.instructions - last_counters.instructions;
          e->cache_misses += cs.cache_misses - last_counters.cache_misses;
        }
      }
      // Advance the window even on idle ticks so idle cycles are dropped,
      // not rolled into the next busy label.
      last_counters = cs;
    }
    maybe_checkpoint(t_sec);
  }

  void run() {
    const auto period =
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(1.0 / opts.hz));
    auto next = start_time + period;
    std::unique_lock<std::mutex> lk(cv_mu);
    while (!stop_requested) {
      if (cv.wait_until(lk, next, [&] { return stop_requested; })) break;
      lk.unlock();
      tick(elapsed_sec());
      lk.lock();
      next += period;
      const auto now = std::chrono::steady_clock::now();
      if (next < now) next = now + period;  // fell behind: skip, don't burst
    }
  }

  // Requires mu.  Newest checkpoint at least window_sec old, or nullptr for
  // "whole run".
  const Checkpoint* window_baseline(double window_sec) const {
    if (window_sec <= 0.0) return nullptr;
    const double cutoff = last_tick_t - window_sec;
    const Checkpoint* best = nullptr;
    for (const Checkpoint& c : checkpoints) {
      if (!c.valid || c.t_sec > cutoff) continue;
      if (best == nullptr || c.t_sec > best->t_sec) best = &c;
    }
    return best;
  }
};

SamplingProfiler::SamplingProfiler() : SamplingProfiler(Options{}) {}

SamplingProfiler::SamplingProfiler(const Options& opts)
    : impl_(std::make_unique<Impl>(opts)) {}

SamplingProfiler::~SamplingProfiler() { stop(); }

void SamplingProfiler::start() {
  Impl& im = *impl_;
  if (im.running.load(std::memory_order_relaxed)) return;
  Tracer& tracer = Tracer::instance();
  tracer.enable_live();
  im.driver_tid = Tracer::live_thread_id();
  im.truncated_base = tracer.live_truncated();
  im.unregistered_base = tracer.live_unregistered();
  {
    std::lock_guard<std::mutex> lock(im.mu);
    im.reset_accumulators();
  }
  if (im.opts.counters) {
    // Opened on the calling (driver) thread; the sampler thread only reads
    // the group fd, which is thread-safe.
    im.counters = std::make_unique<HwCounters>();
    if (im.counters->available()) {
      im.counters->start();
      im.counters_open = true;
      im.counters_available = true;
      im.counters_reason.clear();
    } else {
      im.counters_available = false;
      im.counters_reason = im.counters->unavailable_reason();
      im.counters.reset();
    }
  } else {
    im.counters_available = false;
    im.counters_reason = "disabled by options";
  }
  {
    std::lock_guard<std::mutex> lk(im.cv_mu);
    im.stop_requested = false;
  }
  im.start_time = std::chrono::steady_clock::now();
  im.ever_started = true;
  im.running.store(true, std::memory_order_relaxed);
  im.thread = std::thread([this] { impl_->run(); });
}

void SamplingProfiler::stop() {
  Impl& im = *impl_;
  if (!im.running.load(std::memory_order_relaxed)) return;
  {
    std::lock_guard<std::mutex> lk(im.cv_mu);
    im.stop_requested = true;
  }
  im.cv.notify_all();
  if (im.thread.joinable()) im.thread.join();
  im.stopped_duration = im.elapsed_sec();
  im.running.store(false, std::memory_order_relaxed);
  if (im.counters_open) {
    im.counters->stop();
    im.counters_open = false;
    im.counters.reset();
  }
  Tracer::instance().disable_live();
}

bool SamplingProfiler::running() const {
  return impl_->running.load(std::memory_order_relaxed);
}

void SamplingProfiler::sample_now() {
  Impl& im = *impl_;
  double t;
  if (im.running.load(std::memory_order_relaxed)) {
    t = im.elapsed_sec();
  } else {
    std::lock_guard<std::mutex> lock(im.mu);
    t = static_cast<double>(im.ticks + 1) / im.opts.hz;  // fake clock
  }
  im.tick(t);
}

uint64_t SamplingProfiler::ticks() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->ticks;
}

uint64_t SamplingProfiler::samples() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->samples;
}

std::string SamplingProfiler::collapsed() const {
  Impl& im = *impl_;
  std::vector<std::string> lines;
  {
    std::lock_guard<std::mutex> lock(im.mu);
    lines.reserve(im.used_stacks);
    for (const Impl::StackEntry& e : im.stacks) {
      if (e.hash == 0 || e.count == 0) continue;
      std::string line;
      for (uint32_t f = 0; f < e.depth; ++f) {
        if (f > 0) line += ';';
        line += e.frames[f];
      }
      line += ' ';
      line += std::to_string(e.count);
      lines.push_back(std::move(line));
    }
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

std::string SamplingProfiler::summary_json(double window_sec) const {
  Impl& im = *impl_;
  struct Merged {
    uint64_t self = 0;
    uint64_t total = 0;
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    uint64_t cache_misses = 0;
  };
  // Merge by string content: the same label text may be distinct literals in
  // different translation units.
  std::map<std::string_view, Merged> merged;
  uint64_t w_ticks = 0, w_samples = 0, w_torn = 0;
  double duration = 0.0, window_span = 0.0;
  uint64_t dropped_stacks = 0, dropped_labels = 0;
  {
    std::lock_guard<std::mutex> lock(im.mu);
    const Impl::Checkpoint* base = im.window_baseline(window_sec);
    w_ticks = im.ticks - (base ? base->ticks : 0);
    w_samples = im.samples - (base ? base->samples : 0);
    w_torn = im.torn - (base ? base->torn : 0);
    duration = im.duration_sec();
    window_span = base ? im.last_tick_t - base->t_sec
                       : (window_sec > 0.0 ? std::min(window_sec, duration)
                                           : duration);
    dropped_stacks = im.dropped_stack_samples;
    dropped_labels = im.dropped_label_samples;
    for (size_t i = 0; i < im.labels.size(); ++i) {
      const Impl::LabelEntry& e = im.labels[i];
      if (e.label == nullptr) continue;
      Merged m;
      m.self = e.self - (base ? base->self[i] : 0);
      m.total = e.total - (base ? base->total[i] : 0);
      m.cycles = e.cycles - (base ? base->cycles[i] : 0);
      m.instructions = e.instructions - (base ? base->instructions[i] : 0);
      m.cache_misses = e.cache_misses - (base ? base->cache_misses[i] : 0);
      if (m.total == 0 && m.cycles == 0) continue;
      Merged& dst = merged[std::string_view(e.label)];
      dst.self += m.self;
      dst.total += m.total;
      dst.cycles += m.cycles;
      dst.instructions += m.instructions;
      dst.cache_misses += m.cache_misses;
    }
  }
  std::vector<std::pair<std::string_view, Merged>> rows(merged.begin(),
                                                        merged.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second.self != b.second.self) return a.second.self > b.second.self;
    return a.first < b.first;
  });

  const Tracer& tracer = Tracer::instance();
  JsonWriter w;
  w.begin_object();
  w.key("schema").value(kProfileSchema);
  w.key("hz").value(im.opts.hz);
  w.key("duration_sec").value(duration);
  w.key("window_sec").value(window_span);
  w.key("ticks").value(w_ticks);
  w.key("samples").value(w_samples);
  w.key("torn").value(w_torn);
  w.key("truncated")
      .value(static_cast<uint64_t>(tracer.live_truncated() -
                                   im.truncated_base));
  w.key("unregistered_threads")
      .value(static_cast<uint64_t>(tracer.live_unregistered() -
                                   im.unregistered_base));
  w.key("dropped_stack_samples").value(dropped_stacks);
  w.key("dropped_label_samples").value(dropped_labels);
  w.key("counters").begin_object();
  w.key("available").value(im.counters_available);
  if (!im.counters_available) w.key("reason").value(im.counters_reason);
  w.end_object();
  const double denom = w_samples > 0 ? static_cast<double>(w_samples) : 1.0;
  w.key("labels").begin_array();
  for (const auto& [label, m] : rows) {
    w.begin_object();
    w.key("label").value(std::string(label));
    w.key("self").value(m.self);
    w.key("total").value(m.total);
    w.key("self_pct").value(100.0 * static_cast<double>(m.self) / denom);
    w.key("total_pct").value(100.0 * static_cast<double>(m.total) / denom);
    if (im.counters_available) {
      w.key("cycles").value(m.cycles);
      w.key("instructions").value(m.instructions);
      w.key("cache_misses").value(m.cache_misses);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

bool SamplingProfiler::write_collapsed(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << collapsed();
  return static_cast<bool>(f);
}

bool SamplingProfiler::write_summary(const std::string& path,
                                     double window_sec) const {
  std::ofstream f(path);
  if (!f) return false;
  f << summary_json(window_sec) << "\n";
  return static_cast<bool>(f);
}

}  // namespace dtp::obs::prof
