// BENCH_*.json — the canonical machine-readable performance artifact
// (DESIGN.md §9).
//
// tools/dtp_bench fills BenchSuiteResult (one cell per workload×mode, N
// repeats per cell), and this module owns the schema: serialization
// (schema "dtp.bench.v1"), the repeat-series statistics (min / median / p95 /
// stddev over wall time, CPU time, IPC and cache-miss rate, per total and per
// kernel phase), and the noise-thresholded regression gate behind
// `dtp_report --bench-diff old.json new.json` (exit 2 on regression) —
// mirroring the --diff quality gate for runtime.
//
// Keeping schema + gate in the library (not the tools) means the test suite
// round-trips the exact production bytes through common/json_parse.h and
// drives the gate's pass / fail / noise-band cases directly.
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "obs/prof/hw_counters.h"
#include "obs/prof/resource_sampler.h"

namespace dtp {
struct JsonValue;
}

namespace dtp::obs::prof {

inline constexpr const char* kBenchSchema = "dtp.bench.v1";

// Order statistics of one metric across a cell's repeats.
struct SeriesStats {
  size_t n = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double p95 = 0.0;
  double stddev = 0.0;
};

// Sorts a copy; empty input returns all-zero stats.
SeriesStats compute_stats(std::vector<double> xs);

struct PhaseTimes {
  double wall_sec = 0.0;
  double cpu_sec = 0.0;
};

// One timed run of one bench cell.
struct BenchRepeat {
  double wall_sec = 0.0;
  double cpu_sec = 0.0;
  double hpwl = 0.0;
  double overflow = 0.0;
  int iterations = 0;
  // Kernel-phase breakdown in canonical order (wirelength, density, rsmt,
  // sta_forward, sta_backward, step); zero-time phases included.
  std::vector<std::pair<std::string, PhaseTimes>> phases;
  CounterSample counters;       // grouped HW counters, or available:false
  ResourceSample resources;     // end-of-run OS resource snapshot
  double pool_busy_sec = 0.0;   // thread-pool busy delta across the run
  double pool_utilization = 0.0;
  uint64_t queue_depth_max = 0;
  std::vector<WorkerStat> workers;  // per-worker busy deltas (may be empty)
};

struct BenchCell {
  std::string name;    // e.g. "mb4x400/dt"
  std::string design;
  std::string mode;    // "wl" | "nw" | "dt"
  int num_cells = 0;
  std::vector<BenchRepeat> repeats;
  // Serialized dtp.profile.v1 document covering the cell's timed repeats
  // (sampling-profiler hot-spot attribution); spliced verbatim into the cell
  // object under "profile" when non-empty.
  std::string profile_json;
};

struct BenchSuiteResult {
  std::string suite;
  int repeats = 0;
  size_t threads = 1;
  // Provenance stamps (`dtp_bench --commit <sha> --label <str>`): emitted in
  // the header when non-empty, so a directory of BENCH_*.json files forms a
  // comparable, attributable trajectory.
  std::string commit;
  std::string label;
  // Kernel backend the run used ("scalar"/"simd", see kernels/): numbers from
  // different backends are not comparable, so bench_diff warns on mismatch.
  std::string kernel_backend;
  CounterSample counter_probe;  // availability probe recorded in the header
  std::vector<BenchCell> cells;
};

// Complete BENCH_*.json document (stats are computed from the repeats here,
// so every emitted file carries them consistently).
std::string bench_json(const BenchSuiteResult& suite);
bool write_bench_json(const std::string& path, const BenchSuiteResult& suite);

// Regression gate over two parsed BENCH_*.json documents.
//
// Gating metrics: per matched cell (by name), the median wall_sec and median
// cpu_sec regress when new > old * (1 + threshold).  Noise banding: a cell
// whose baseline is noisy (stddev/median > noise_cv) or too fast to time
// (median < min_gate_sec) is reported informationally and never gates — the
// continuous-benchmarking harness must not flap on timer jitter.  IPC and
// cache-miss-rate deltas are always informational.
//
// Returns 0 (ok), 1 (malformed input), or 2 (regression).  A human-readable
// table is printed to `out` (pass nullptr to suppress).  Provenance
// disagreements between the two documents (threads, commit, kernel_backend)
// are warned about before the table — an apples-to-oranges diff still runs,
// but the caller is told the numbers may not be comparable.
struct BenchDiffOptions {
  double threshold = 0.15;     // relative wall/CPU-time regression gate
  double noise_cv = 0.10;      // baseline coefficient-of-variation noise band
  double min_gate_sec = 1e-3;  // baselines below this never gate
};
int bench_diff(const JsonValue& a, const JsonValue& b,
               const BenchDiffOptions& opts, std::FILE* out);

// One-line per-run summary of a parsed dtp.bench document for the running
// BENCH_history.jsonl trajectory (`dtp_report --history`):
//   {"type":"bench_run","suite":...,"commit":...,"label":...,"threads":N,
//    "counters_available":b,"cells":[{"name":...,"wall_median_sec":...,
//    "cpu_median_sec":...},...]}
// Returns "" when the document is not a dtp.bench document.
std::string bench_history_line(const JsonValue& doc);

}  // namespace dtp::obs::prof
