// Background OS-resource sampler (DESIGN.md §9).
//
// A dedicated thread snapshots the process's OS-level resource state on a
// fixed period: resident set size and its high-water mark from
// /proc/self/status (getrusage's ru_maxrss as the portable fallback),
// minor/major page faults and voluntary/involuntary context switches from
// getrusage, and user/system CPU seconds.  Samples accumulate in memory and
// serialize as {"type":"resource",...} JSONL timeline records, so a
// placement run's memory growth and scheduling pressure can be read next to
// its per-iteration metrics stream.
//
// The sampler is a pure observer: it shares no state with the placer, so an
// attached sampler leaves placement results bitwise identical.  stop() joins
// the thread — no sample is appended after it returns — and timestamps are
// monotonic (steady_clock since start()).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/jsonl.h"

namespace dtp {
class JsonWriter;
}

namespace dtp::obs::prof {

struct ResourceSample {
  double t_sec = 0.0;       // seconds since sampler start (monotonic)
  double rss_mb = 0.0;      // current resident set (VmRSS), MiB
  double rss_hwm_mb = 0.0;  // resident high-water mark (VmHWM / ru_maxrss), MiB
  uint64_t minor_faults = 0;         // cumulative, process lifetime
  uint64_t major_faults = 0;
  uint64_t vol_ctx_switches = 0;
  uint64_t invol_ctx_switches = 0;
  double user_cpu_sec = 0.0;
  double sys_cpu_sec = 0.0;
};

// One immediate snapshot (t_sec = 0); also the building block of the
// background loop.
ResourceSample sample_resources_now();

// Serializes one sample as a JSON object at the writer's current position.
void resource_sample_to_json(JsonWriter& w, const ResourceSample& s);

class ResourceSampler {
 public:
  explicit ResourceSampler(int period_ms = 50) : period_ms_(period_ms) {}
  ~ResourceSampler() { stop(); }
  ResourceSampler(const ResourceSampler&) = delete;
  ResourceSampler& operator=(const ResourceSampler&) = delete;

  // Starts the background thread (idempotent).  The first sample is taken
  // immediately, then one per period.
  void start();
  // Signals the thread, takes one final sample, and joins.  After stop()
  // returns, samples() is stable — nothing is appended.  Idempotent.
  void stop();
  bool running() const { return running_; }

  std::vector<ResourceSample> samples() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return samples_;
  }
  size_t num_samples() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return samples_.size();
  }

  // Appends one {"type":"resource",...} record per sample.  `tag` (e.g. the
  // bench cell name) is stamped onto every record when non-empty.
  void write_jsonl(JsonlWriter& out, const std::string& tag = {}) const;

 private:
  void loop();

  const int period_ms_;
  bool running_ = false;
  std::thread thread_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::vector<ResourceSample> samples_;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace dtp::obs::prof
