// Signal-free in-process sampling profiler (DESIGN.md §14).
//
// A background sampler thread snapshots every thread's live-span stack (the
// seqlock slots published by TraceScope/ProfScope, see obs/trace.h) at a
// fixed rate (default 997 Hz — prime, so it does not beat against 1 kHz
// timers or 100 Hz schedulers), accumulating:
//
//   * folded stacks  — "outer;inner;leaf <count>" lines, the input format of
//     flamegraph.pl and speedscope ("collapsed stack"), and
//   * per-label tallies — self (thread sampled with the label as its leaf)
//     and total (label anywhere on the sampled stack), so self% ranks the
//     hot spots and total% shows inclusive weight.
//
// One "sample" is one non-empty stack observed at one tick, so the sum of
// all self counts equals the sample count exactly — the accounting identity
// the CI validator checks.  Hardware counters (perf_event_open, DESIGN.md
// §9) are opened on the thread that calls start() — the placer driver — and
// read once per tick; each delta is attributed to that thread's current leaf
// label, giving per-label cycle/instruction/cache-miss estimates alongside
// the sample counts.
//
// Contracts: attaching the profiler changes no placement results (the
// sampler only reads), the publish and sample paths allocate nothing in
// steady state (all tables are preallocated in start()), and the measured
// overhead at the default rate stays under the 2% acceptance bound.
//
// Rolling window: the sampler checkpoints the accumulator arrays about once
// a second into a small ring; summary_json(window_sec) subtracts the newest
// checkpoint older than the window, so a live daemon can answer "what was
// hot in the last N seconds" without restarting the profiler.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace dtp::obs::prof {

class SamplingProfiler {
 public:
  struct Options {
    double hz = 997.0;        // sampling rate; clamped to [1, 100000]
    size_t max_stacks = 2048;  // distinct folded stacks tracked
    size_t max_labels = 256;   // distinct span labels tracked
    double checkpoint_period_sec = 1.0;  // rolling-window granularity
    size_t max_checkpoints = 64;         // window history (~1 min at 1 s)
    bool counters = true;  // open hw counters on the start() thread
  };

  SamplingProfiler();
  explicit SamplingProfiler(const Options& opts);
  ~SamplingProfiler();  // stops if running
  SamplingProfiler(const SamplingProfiler&) = delete;
  SamplingProfiler& operator=(const SamplingProfiler&) = delete;

  // Spawns the sampler thread and attaches live-span publication (refcounted
  // Tracer::enable_live()).  Call from the driver thread whose hw-counter
  // deltas should be attributed.  Idempotent while running.
  void start();
  // Stops and joins the sampler thread, detaches live publication.  The
  // accumulated profile stays readable.  Idempotent.
  void stop();
  bool running() const;

  // Performs one sampling tick on the calling thread.  Tests use this to
  // drive the profiler deterministically without the thread (fake clock:
  // logical time advances by 1/hz per call).  Safe concurrently with the
  // sampler thread (shared accumulator lock), though mixing the two blurs
  // the tick clock.
  void sample_now();

  // Accumulated tick / sample telemetry.
  uint64_t ticks() const;
  uint64_t samples() const;

  // Folded-stack text: one "frame;frame;frame count" line per distinct
  // stack, '\n'-terminated, sorted lexicographically (deterministic for a
  // given set of stacks).  flamegraph.pl / speedscope compatible.
  std::string collapsed() const;

  // JSON summary, schema "dtp.profile.v1": sampling telemetry, counter
  // availability, and the per-label table sorted by self count descending.
  // window_sec > 0 restricts the tallies to approximately the last
  // window_sec seconds (checkpoint granularity); 0 means the whole run.
  std::string summary_json(double window_sec = 0.0) const;

  bool write_collapsed(const std::string& path) const;
  bool write_summary(const std::string& path,
                     double window_sec = 0.0) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace dtp::obs::prof
