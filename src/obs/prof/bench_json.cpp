#include "obs/prof/bench_json.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/json_parse.h"
#include "common/json_writer.h"

namespace dtp::obs::prof {

SeriesStats compute_stats(std::vector<double> xs) {
  SeriesStats s;
  s.n = xs.size();
  if (xs.empty()) return s;
  std::sort(xs.begin(), xs.end());
  s.min = xs.front();
  s.max = xs.back();
  double sum = 0.0;
  for (double x : xs) sum += x;
  s.mean = sum / static_cast<double>(xs.size());
  const size_t n = xs.size();
  s.median = n % 2 == 1 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
  // Nearest-rank p95 (ceil(0.95 n), 1-based).
  const size_t rank = static_cast<size_t>(
      std::ceil(0.95 * static_cast<double>(n)));
  s.p95 = xs[std::min(n - 1, rank > 0 ? rank - 1 : 0)];
  double var = 0.0;
  for (double x : xs) var += (x - s.mean) * (x - s.mean);
  s.stddev = n > 1 ? std::sqrt(var / static_cast<double>(n - 1)) : 0.0;
  return s;
}

namespace {

void stats_object(JsonWriter& w, const SeriesStats& s) {
  w.begin_object();
  w.key("n").value(static_cast<uint64_t>(s.n));
  w.key("min").value(s.min);
  w.key("max").value(s.max);
  w.key("mean").value(s.mean);
  w.key("median").value(s.median);
  w.key("p95").value(s.p95);
  w.key("stddev").value(s.stddev);
  w.end_object();
}

// Pulls one metric out of every repeat.
template <typename Fn>
std::vector<double> series(const BenchCell& cell, Fn&& get) {
  std::vector<double> xs;
  xs.reserve(cell.repeats.size());
  for (const BenchRepeat& r : cell.repeats) xs.push_back(get(r));
  return xs;
}

void cell_object(JsonWriter& w, const BenchCell& cell) {
  w.begin_object();
  w.key("name").value(cell.name);
  w.key("design").value(cell.design);
  w.key("mode").value(cell.mode);
  w.key("num_cells").value(cell.num_cells);

  w.key("repeats").begin_array();
  for (const BenchRepeat& r : cell.repeats) {
    w.begin_object();
    w.key("wall_sec").value(r.wall_sec);
    w.key("cpu_sec").value(r.cpu_sec);
    w.key("hpwl").value(r.hpwl);
    w.key("overflow").value(r.overflow);
    w.key("iterations").value(r.iterations);
    w.key("phases").begin_object();
    for (const auto& [name, pt] : r.phases) {
      w.key(name).begin_object();
      w.key("wall_sec").value(pt.wall_sec);
      w.key("cpu_sec").value(pt.cpu_sec);
      w.end_object();
    }
    w.end_object();
    w.key("counters");
    counters_to_json(w, r.counters);
    w.key("resources");
    resource_sample_to_json(w, r.resources);
    w.key("pool").begin_object();
    w.key("busy_sec").value(r.pool_busy_sec);
    w.key("utilization").value(r.pool_utilization);
    w.key("queue_depth_max").value(r.queue_depth_max);
    w.key("workers").begin_array();
    for (const WorkerStat& ws : r.workers) {
      w.begin_object();
      w.key("tasks").value(ws.tasks);
      w.key("busy_sec").value(ws.busy_sec);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    w.end_object();
  }
  w.end_array();

  // Stats across repeats; counter-derived series only when every repeat had
  // counters (a mixed cell would average real rates with zeros).
  w.key("stats").begin_object();
  w.key("wall_sec");
  stats_object(w, compute_stats(series(cell, [](const BenchRepeat& r) {
    return r.wall_sec;
  })));
  w.key("cpu_sec");
  stats_object(w, compute_stats(series(cell, [](const BenchRepeat& r) {
    return r.cpu_sec;
  })));
  bool all_counters = !cell.repeats.empty();
  for (const BenchRepeat& r : cell.repeats)
    all_counters = all_counters && r.counters.available;
  if (all_counters) {
    w.key("ipc");
    stats_object(w, compute_stats(series(cell, [](const BenchRepeat& r) {
      return r.counters.ipc();
    })));
    w.key("cache_miss_rate");
    stats_object(w, compute_stats(series(cell, [](const BenchRepeat& r) {
      return r.counters.cache_miss_rate();
    })));
  }
  w.key("phases").begin_object();
  if (!cell.repeats.empty()) {
    for (size_t p = 0; p < cell.repeats.front().phases.size(); ++p) {
      w.key(cell.repeats.front().phases[p].first).begin_object();
      w.key("wall_sec");
      stats_object(w, compute_stats(series(cell, [p](const BenchRepeat& r) {
        return p < r.phases.size() ? r.phases[p].second.wall_sec : 0.0;
      })));
      w.key("cpu_sec");
      stats_object(w, compute_stats(series(cell, [p](const BenchRepeat& r) {
        return p < r.phases.size() ? r.phases[p].second.cpu_sec : 0.0;
      })));
      w.end_object();
    }
  }
  w.end_object();
  w.end_object();

  // Sampling-profiler attribution across the cell's timed repeats
  // (dtp.profile.v1, pre-serialized).  Optional: absent when the profiler
  // was disabled, so dtp.bench.v1 readers stay compatible.
  if (!cell.profile_json.empty()) w.key("profile").raw(cell.profile_json);

  w.end_object();
}

}  // namespace

std::string bench_json(const BenchSuiteResult& suite) {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value(kBenchSchema);
  w.key("suite").value(suite.suite);
  w.key("repeats").value(suite.repeats);
  w.key("threads").value(static_cast<uint64_t>(suite.threads));
  if (!suite.commit.empty()) w.key("commit").value(suite.commit);
  if (!suite.label.empty()) w.key("label").value(suite.label);
  if (!suite.kernel_backend.empty())
    w.key("kernel_backend").value(suite.kernel_backend);
  w.key("counters");
  w.begin_object();
  w.key("available").value(suite.counter_probe.available);
  if (!suite.counter_probe.available)
    w.key("reason").value(suite.counter_probe.unavailable_reason);
  w.end_object();
  w.key("cells").begin_array();
  for (const BenchCell& cell : suite.cells) cell_object(w, cell);
  w.end_array();
  w.end_object();
  return w.str();
}

bool write_bench_json(const std::string& path, const BenchSuiteResult& suite) {
  const std::string doc = bench_json(suite);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return true;
}

std::string bench_history_line(const JsonValue& doc) {
  if (!doc.is_object() ||
      doc.str_or("schema", "").rfind("dtp.bench", 0) != 0 ||
      !doc.has("cells") || !doc.at("cells").is_array())
    return "";
  JsonWriter w;
  w.begin_object();
  w.key("type").value("bench_run");
  w.key("schema").value(doc.str_or("schema", ""));
  w.key("suite").value(doc.str_or("suite", "?"));
  const std::string commit = doc.str_or("commit", "");
  if (!commit.empty()) w.key("commit").value(commit);
  const std::string label = doc.str_or("label", "");
  if (!label.empty()) w.key("label").value(label);
  const std::string kernel_backend = doc.str_or("kernel_backend", "");
  if (!kernel_backend.empty()) w.key("kernel_backend").value(kernel_backend);
  w.key("threads")
      .value(static_cast<uint64_t>(doc.num_or("threads", 0.0)));
  bool counters_available = false;
  if (doc.has("counters") && doc.at("counters").is_object()) {
    const JsonValue& c = doc.at("counters");
    counters_available = c.has("available") && c.at("available").boolean;
  }
  w.key("counters_available").value(counters_available);
  w.key("cells").begin_array();
  for (const JsonValue& cell : doc.at("cells").array) {
    w.begin_object();
    w.key("name").value(cell.str_or("name", "?"));
    double wall_median = 0.0, cpu_median = 0.0;
    if (cell.has("stats") && cell.at("stats").is_object()) {
      const JsonValue& st = cell.at("stats");
      if (st.has("wall_sec"))
        wall_median = st.at("wall_sec").num_or("median", 0.0);
      if (st.has("cpu_sec"))
        cpu_median = st.at("cpu_sec").num_or("median", 0.0);
    }
    w.key("wall_median_sec").value(wall_median);
    w.key("cpu_median_sec").value(cpu_median);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

// ------------------------------------------------------------------ diff ----

namespace {

struct CellStats {
  double wall_median = 0.0, wall_stddev = 0.0;
  double cpu_median = 0.0;
  double ipc_median = 0.0;
  bool has_ipc = false;
  double miss_median = 0.0;
  bool has_miss = false;
};

bool read_cell_stats(const JsonValue& cell, CellStats& out) {
  if (!cell.has("stats") || !cell.at("stats").is_object()) return false;
  const JsonValue& st = cell.at("stats");
  if (!st.has("wall_sec") || !st.has("cpu_sec")) return false;
  out.wall_median = st.at("wall_sec").num_or("median", 0.0);
  out.wall_stddev = st.at("wall_sec").num_or("stddev", 0.0);
  out.cpu_median = st.at("cpu_sec").num_or("median", 0.0);
  if (st.has("ipc")) {
    out.ipc_median = st.at("ipc").num_or("median", 0.0);
    out.has_ipc = true;
  }
  if (st.has("cache_miss_rate")) {
    out.miss_median = st.at("cache_miss_rate").num_or("median", 0.0);
    out.has_miss = true;
  }
  return true;
}

bool collect_cells(const JsonValue& doc,
                   std::map<std::string, const JsonValue*>& out,
                   std::FILE* err) {
  if (!doc.is_object() ||
      doc.str_or("schema", "").rfind("dtp.bench", 0) != 0 ||
      !doc.has("cells") || !doc.at("cells").is_array()) {
    if (err != nullptr)
      std::fprintf(err,
                   "bench-diff: input is not a dtp.bench document "
                   "(missing schema/cells)\n");
    return false;
  }
  for (const JsonValue& cell : doc.at("cells").array)
    out[cell.str_or("name", "?")] = &cell;
  return true;
}

}  // namespace

int bench_diff(const JsonValue& a, const JsonValue& b,
               const BenchDiffOptions& opts, std::FILE* out) {
  std::map<std::string, const JsonValue*> cells_a, cells_b;
  if (!collect_cells(a, cells_a, out) || !collect_cells(b, cells_b, out))
    return 1;

  if (out != nullptr) {
    // Provenance sanity: numbers taken under different thread counts or
    // kernel backends (or from different commits than claimed) are not an
    // apples-to-apples comparison.  Warn, then diff anyway.
    const double threads_a = a.num_or("threads", 0.0);
    const double threads_b = b.num_or("threads", 0.0);
    if (threads_a > 0.0 && threads_b > 0.0 && threads_a != threads_b)
      std::fprintf(out,
                   "bench-diff: WARNING: thread counts differ (old %g, new "
                   "%g); timings are not comparable\n",
                   threads_a, threads_b);
    const std::string kb_a = a.str_or("kernel_backend", "");
    const std::string kb_b = b.str_or("kernel_backend", "");
    if (!kb_a.empty() && !kb_b.empty() && kb_a != kb_b)
      std::fprintf(out,
                   "bench-diff: WARNING: kernel backends differ (old %s, new "
                   "%s); timings reflect different kernels\n",
                   kb_a.c_str(), kb_b.c_str());
    const std::string commit_a = a.str_or("commit", "");
    const std::string commit_b = b.str_or("commit", "");
    if (!commit_a.empty() && !commit_b.empty() && commit_a != commit_b)
      std::fprintf(out,
                   "bench-diff: note: commits differ (old %s, new %s)\n",
                   commit_a.c_str(), commit_b.c_str());
  }

  if (out != nullptr) {
    std::fprintf(out,
                 "==== bench diff (threshold %.0f%%, noise band cv > %.2f) "
                 "====\n",
                 100.0 * opts.threshold, opts.noise_cv);
    std::fprintf(out, "%-24s %-12s %12s %12s %8s  %s\n", "cell", "metric",
                 "old", "new", "ratio", "verdict");
  }
  bool regression = false;
  std::vector<std::string> regressions;  // "cell/metric", for the verdict line
  size_t matched = 0;
  for (const auto& [name, cell_a] : cells_a) {
    const auto it = cells_b.find(name);
    if (it == cells_b.end()) {
      if (out != nullptr)
        std::fprintf(out, "%-24s (missing from new file)\n", name.c_str());
      continue;
    }
    CellStats sa, sb;
    if (!read_cell_stats(*cell_a, sa) || !read_cell_stats(*it->second, sb)) {
      if (out != nullptr)
        std::fprintf(out, "bench-diff: cell %s lacks a stats block\n",
                     name.c_str());
      return 1;
    }
    ++matched;
    const double cv = sa.wall_median > 0.0 ? sa.wall_stddev / sa.wall_median
                                           : 0.0;
    const bool noisy = cv > opts.noise_cv;
    struct Row {
      const char* metric;
      double va, vb;
      bool gates;        // can this metric fail the diff at all
      bool worse_is_up;  // regression direction
    };
    const Row rows[] = {
        {"wall_sec", sa.wall_median, sb.wall_median,
         !noisy && sa.wall_median >= opts.min_gate_sec, true},
        {"cpu_sec", sa.cpu_median, sb.cpu_median,
         !noisy && sa.cpu_median >= opts.min_gate_sec, true},
        {"ipc", sa.ipc_median, sb.ipc_median, false, false},
        {"cache_miss_rate", sa.miss_median, sb.miss_median, false, true},
    };
    for (const Row& r : rows) {
      if ((r.metric == std::string("ipc") && !(sa.has_ipc && sb.has_ipc)) ||
          (r.metric == std::string("cache_miss_rate") &&
           !(sa.has_miss && sb.has_miss)))
        continue;
      const double ratio = r.va > 0.0 ? r.vb / r.va : 0.0;
      const bool regressed =
          r.gates && r.va > 0.0 && r.vb > r.va * (1.0 + opts.threshold);
      regression = regression || regressed;
      if (regressed) regressions.push_back(name + "/" + r.metric);
      if (out != nullptr) {
        const char* verdict = regressed          ? "REGRESSED"
                              : !r.gates && noisy ? "noisy"
                              : r.gates           ? "ok"
                                                  : "info";
        std::fprintf(out, "%-24s %-12s %12.6g %12.6g %7.3fx  %s\n",
                     name.c_str(), r.metric, r.va, r.vb, ratio, verdict);
      }
    }
  }
  if (matched == 0) {
    if (out != nullptr)
      std::fprintf(out, "bench-diff: no common cells between the two files\n");
    return 1;
  }
  if (out != nullptr) {
    std::fprintf(out, "RESULT: %s\n",
                 regression ? "REGRESSION beyond threshold" : "ok");
    // Final single-line machine-readable verdict, so CI parses the outcome
    // instead of scraping the table.
    JsonWriter verdict;
    verdict.begin_object();
    verdict.key("ok").value(!regression);
    verdict.key("regressions").begin_array();
    for (const std::string& r : regressions) verdict.value(r);
    verdict.end_array();
    verdict.end_object();
    std::fprintf(out, "%s\n", verdict.str().c_str());
  }
  return regression ? 2 : 0;
}

}  // namespace dtp::obs::prof
