// Hardware performance counters over perf_event_open (DESIGN.md §9).
//
// HwCounters opens one perf event group on the calling thread — cycles
// (leader), instructions, cache-references, cache-misses, branch-misses —
// and reads all five atomically in a single grouped read, scaled by
// time_enabled/time_running when the kernel multiplexed the group.  That is
// the per-kernel counter data the runtime-optimization PRs need: IPC tells a
// level-dispatch loop whether it is retiring work or stalled, and the
// cache-miss rate tells whether it is memory-bound.
//
// Scope: the group counts the *calling thread* (pid=0, cpu=-1).  Grouped
// reads are incompatible with inherit-to-children counting on Linux, so
// worker-thread cycles are not included; the derived rates (IPC, miss rate)
// remain representative of the kernels the driver thread executes, and the
// thread-pool timeline covers the workers' side.
//
// Fallback contract: perf_event_open is routinely denied in containers and
// CI sandboxes (perf_event_paranoid, seccomp).  Construction NEVER throws:
// when the syscall is unavailable, available() is false, unavailable_reason()
// says why, and read()/stop() return a sample with available=false that
// serializes as {"available":false,"reason":...} — an explicit record, not a
// silent zero.  Setting DTP_NO_PERF=1 forces this path (tests, A/B runs).
#pragma once

#include <cstdint>
#include <string>

namespace dtp {
class JsonWriter;
}

namespace dtp::obs::prof {

// One grouped counter read (deltas since start()).
struct CounterSample {
  bool available = false;
  std::string unavailable_reason;  // set when available is false
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t cache_references = 0;
  uint64_t cache_misses = 0;
  uint64_t branch_misses = 0;
  // Multiplexing telemetry: fraction of the measured interval the group was
  // actually on a PMU (1.0 = no multiplexing; values are scaled regardless).
  double running_fraction = 0.0;

  double ipc() const {
    return cycles > 0 ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
  }
  double cache_miss_rate() const {
    return cache_references > 0 ? static_cast<double>(cache_misses) /
                                      static_cast<double>(cache_references)
                                : 0.0;
  }
};

// Serializes a sample as a JSON object at the writer's current position:
// {"available":true,"cycles":...,"ipc":...} or
// {"available":false,"reason":"..."}.
void counters_to_json(JsonWriter& w, const CounterSample& s);

class HwCounters {
 public:
  HwCounters();   // opens the group; never throws — check available()
  ~HwCounters();
  HwCounters(const HwCounters&) = delete;
  HwCounters& operator=(const HwCounters&) = delete;

  bool available() const { return group_fd_ >= 0; }
  const std::string& unavailable_reason() const { return reason_; }

  // Zeroes and enables the group.  No-op when unavailable.
  void start();
  // Disables the group and returns the deltas since start().  When
  // unavailable, returns {available:false, reason}.
  CounterSample stop();
  // Reads without disabling (mid-interval probe).
  CounterSample read() const;

 private:
  int group_fd_ = -1;    // leader (cycles); < 0 when unavailable
  int member_fds_[4] = {-1, -1, -1, -1};
  std::string reason_;
};

}  // namespace dtp::obs::prof
