#include "obs/prof/resource_sampler.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/json_writer.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace dtp::obs::prof {

namespace {

// Parses "VmRSS:   123456 kB" style lines from /proc/self/status.  Returns
// 0.0 when the file or the key is missing (non-Linux).
void proc_status_kb(double& vm_rss_kb, double& vm_hwm_kb) {
  vm_rss_kb = 0.0;
  vm_hwm_kb = 0.0;
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0)
      vm_rss_kb = std::atof(line + 6);
    else if (std::strncmp(line, "VmHWM:", 6) == 0)
      vm_hwm_kb = std::atof(line + 6);
  }
  std::fclose(f);
#endif
}

}  // namespace

ResourceSample sample_resources_now() {
  ResourceSample s;
  double rss_kb = 0.0, hwm_kb = 0.0;
  proc_status_kb(rss_kb, hwm_kb);
  s.rss_mb = rss_kb / 1024.0;
  s.rss_hwm_mb = hwm_kb / 1024.0;
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    s.minor_faults = static_cast<uint64_t>(ru.ru_minflt);
    s.major_faults = static_cast<uint64_t>(ru.ru_majflt);
    s.vol_ctx_switches = static_cast<uint64_t>(ru.ru_nvcsw);
    s.invol_ctx_switches = static_cast<uint64_t>(ru.ru_nivcsw);
    s.user_cpu_sec = static_cast<double>(ru.ru_utime.tv_sec) +
                     1e-6 * static_cast<double>(ru.ru_utime.tv_usec);
    s.sys_cpu_sec = static_cast<double>(ru.ru_stime.tv_sec) +
                    1e-6 * static_cast<double>(ru.ru_stime.tv_usec);
    if (s.rss_hwm_mb == 0.0) {
#if defined(__APPLE__)
      s.rss_hwm_mb = static_cast<double>(ru.ru_maxrss) / (1024.0 * 1024.0);
#else
      s.rss_hwm_mb = static_cast<double>(ru.ru_maxrss) / 1024.0;  // kB
#endif
    }
  }
#endif
  return s;
}

void resource_sample_to_json(JsonWriter& w, const ResourceSample& s) {
  w.begin_object();
  w.key("t_sec").value(s.t_sec);
  w.key("rss_mb").value(s.rss_mb);
  w.key("rss_hwm_mb").value(s.rss_hwm_mb);
  w.key("minor_faults").value(s.minor_faults);
  w.key("major_faults").value(s.major_faults);
  w.key("vol_ctx_switches").value(s.vol_ctx_switches);
  w.key("invol_ctx_switches").value(s.invol_ctx_switches);
  w.key("user_cpu_sec").value(s.user_cpu_sec);
  w.key("sys_cpu_sec").value(s.sys_cpu_sec);
  w.end_object();
}

void ResourceSampler::start() {
  if (running_) return;
  stop_requested_ = false;
  epoch_ = std::chrono::steady_clock::now();
  running_ = true;
  thread_ = std::thread([this] { loop(); });
}

void ResourceSampler::stop() {
  if (!running_) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  running_ = false;
}

void ResourceSampler::loop() {
  for (;;) {
    ResourceSample s = sample_resources_now();
    s.t_sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_)
            .count();
    std::unique_lock<std::mutex> lock(mutex_);
    samples_.push_back(s);
    if (stop_requested_) return;
    cv_.wait_for(lock, std::chrono::milliseconds(period_ms_),
                 [this] { return stop_requested_; });
    if (stop_requested_) {
      // Final sample so the series always covers the full interval.
      lock.unlock();
      ResourceSample last = sample_resources_now();
      last.t_sec = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - epoch_)
                       .count();
      lock.lock();
      samples_.push_back(last);
      return;
    }
  }
}

void ResourceSampler::write_jsonl(JsonlWriter& out,
                                  const std::string& tag) const {
  const std::vector<ResourceSample> snap = samples();
  for (const ResourceSample& s : snap) {
    JsonWriter w;
    w.begin_object();
    w.key("type").value("resource");
    if (!tag.empty()) w.key("tag").value(tag);
    w.key("t_sec").value(s.t_sec);
    w.key("rss_mb").value(s.rss_mb);
    w.key("rss_hwm_mb").value(s.rss_hwm_mb);
    w.key("minor_faults").value(s.minor_faults);
    w.key("major_faults").value(s.major_faults);
    w.key("vol_ctx_switches").value(s.vol_ctx_switches);
    w.key("invol_ctx_switches").value(s.invol_ctx_switches);
    w.key("user_cpu_sec").value(s.user_cpu_sec);
    w.key("sys_cpu_sec").value(s.sys_cpu_sec);
    w.end_object();
    out.write_line(w.str());
  }
}

}  // namespace dtp::obs::prof
