// Top-K critical-path extraction (DESIGN.md §8).
//
// A backward walk from the worst-slack endpoints through the levelized
// arrival-time graph, following at every cell the fan-in candidate that
// produced the (hard) maximum arrival — the same walk trace_critical_path()
// performs, but capturing the *per-stage arc data* a path report needs: arc
// kind, arc delay, slew and per-pin slack at each stage.
//
// On a Hard-mode timer the captured delays are signoff-exact and telescope:
//
//     at(source) + sum(stage delays) == at(endpoint)
//
// which is the invariant tests/test_introspect.cpp enforces against the
// reference forward pass.  On a Smooth-mode timer the walk still follows the
// hard-max candidates but arrivals are LSE-smoothed, so the identity holds
// only approximately; the placer therefore extracts paths from its exact
// (hard) signoff timer, never from the differentiable one.
#pragma once

#include <vector>

#include "sta/timer.h"

namespace dtp {
class JsonWriter;
}

namespace dtp::obs {

// How the signal reached a stage's pin.
enum class StageVia : uint8_t { Source, Wire, Cell };

const char* stage_via_name(StageVia via);

struct PathStage {
  sta::PinId pin = netlist::kInvalidId;
  int tr = 0;                        // sta::kRise / sta::kFall
  StageVia via = StageVia::Source;   // arc kind into this pin
  double delay = 0.0;                // delay of that arc (0 for the source)
  double at = 0.0;                   // arrival at this pin, this transition
  double slew = 0.0;
  double slack = 0.0;                // RAT-based per-pin slack (worst tr)
};

struct PathRecord {
  size_t endpoint_index = 0;         // index into graph.endpoints()
  sta::PinId endpoint = netlist::kInvalidId;
  int tr = 0;                        // worst transition at the endpoint
  double arrival = 0.0;              // at(endpoint, tr)
  double required = 0.0;             // setup requirement at (endpoint, tr)
  double slack = 0.0;                // endpoint slack (aggregated over tr)
  std::vector<PathStage> stages;     // source first, endpoint last
};

// Extracts the `top_k` worst-slack endpoint paths.  Requires a completed
// propagate() + update_slacks(); runs update_required() itself so every stage
// carries its per-pin slack.  Endpoints with non-finite slack (off any
// constrained path) are skipped.
std::vector<PathRecord> extract_critical_paths(sta::Timer& timer, int top_k);

// Serializes the record's fields (names resolved through the timer's
// netlist) at the writer's current position; the caller owns the enclosing
// object and its meta fields (type/design/iter).
void path_record_fields(JsonWriter& w, const sta::Timer& timer,
                        const PathRecord& record);

}  // namespace dtp::obs
