// Gradient attribution (DESIGN.md §8): per-iteration decomposition of the
// descent gradient into its wirelength / density / timing components.
//
// The placer's combined gradient is g = (g_wl + g_den + g_t) / p per movable
// cell (p the preconditioner).  Attribution computes the norms of each
// preconditioned component, the norm of the combined gradient, and the
// residual || g - (g_wl + g_den + g_t)/p ||_2 — zero up to rounding, so the
// components provably account for the whole gradient budget (the acceptance
// bar is >= 99.9%).  It also surfaces the top-M cells by timing-gradient
// magnitude and the trust-region clip fraction, which is what makes the
// robust layer's timing-degradation decisions explainable: a degradation
// record cites the attribution of the iteration that tripped it.
#pragma once

#include <span>
#include <vector>

#include "netlist/netlist.h"

namespace dtp {
class JsonWriter;
}

namespace dtp::obs {

struct GradComponent {
  double l1 = 0.0;
  double l2 = 0.0;
  double max_abs = 0.0;
};

struct TopCellGrad {
  netlist::CellId cell = netlist::kInvalidId;
  double gx = 0.0;  // preconditioned timing-gradient components
  double gy = 0.0;
  double mag = 0.0;
};

struct GradAttribution {
  GradComponent wirelength, density, timing, total;
  double residual_l2 = 0.0;        // || total - sum(components)/p ||_2
  double accounted_fraction = 1.0; // 1 - residual_l2 / total.l2 (1 if total=0)
  size_t timing_clipped = 0;       // trust-region clip stats of this iteration
  size_t timing_nonzero = 0;
  std::vector<TopCellGrad> top_timing_cells;  // magnitude-descending
};

// The placer's gradient state for one iteration.  All spans are per cell;
// total_x/total_y hold the final combined (preconditioned, masked) gradient
// that feeds the optimizer step.
struct GradArrays {
  std::span<const double> wl_x, wl_y;        // wirelength gradient
  std::span<const double> den_x, den_y;      // density gradient (lambda-scaled)
  std::span<const double> t_x, t_y;          // timing gradient (scaled+clipped)
  std::span<const double> total_x, total_y;  // combined descent gradient
  std::span<const double> precond;           // cell incidence weights
  std::span<const double> area;              // cell areas
  std::span<const char> movable;             // fixed cells carry no gradient
  double lambda = 0.0;                       // density weight
  double mean_area = 1.0;                    // movable mean area
};

GradAttribution compute_grad_attribution(const GradArrays& g, int top_m);

// Serializes the attribution's fields (cell names resolved through `nl`) at
// the writer's current position; the caller owns the enclosing object.
void grad_attribution_fields(JsonWriter& w, const GradAttribution& a,
                             const netlist::Netlist& nl);

}  // namespace dtp::obs
