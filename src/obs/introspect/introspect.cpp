#include "obs/introspect/introspect.h"

#include "common/json_writer.h"
#include "obs/activity/activity_record.h"
#include "obs/metrics.h"

namespace dtp::obs {

void IntrospectionSink::finish_record(JsonWriter& w) {
  w.end_object();
  DTP_ASSERT(w.complete());
  out_.write_line(w.str());
  ++records_;
  MetricsRegistry::instance().counter("introspect.records").add();
}

void IntrospectionSink::write_paths(int iter, sta::Timer& timer, int top_k) {
  if (!is_open() || top_k == 0) return;
  const std::vector<PathRecord> paths = extract_critical_paths(timer, top_k);
  Histogram& slack_hist =
      MetricsRegistry::instance().histogram("introspect.endpoint_slack");
  for (const PathRecord& rec : paths) {
    slack_hist.observe(rec.slack);
    JsonWriter w;
    w.begin_object();
    w.key("type").value("path");
    w.key("design").value(design_);
    w.key("mode").value(mode_);
    w.key("iter").value(iter);
    path_record_fields(w, timer, rec);
    finish_record(w);
  }
}

void IntrospectionSink::write_grad_attribution(int iter,
                                               const GradAttribution& a,
                                               const netlist::Netlist& nl,
                                               const std::string& trigger) {
  if (!is_open()) return;
  JsonWriter w;
  w.begin_object();
  w.key("type").value("grad_attrib");
  w.key("design").value(design_);
  w.key("mode").value(mode_);
  w.key("iter").value(iter);
  if (!trigger.empty()) w.key("trigger").value(trigger);
  grad_attribution_fields(w, a, nl);
  finish_record(w);
}

namespace {

void level_profile_array(JsonWriter& w, const char* key,
                         std::span<const size_t> level_sizes,
                         std::span<const sta::LevelStat> stats) {
  w.key(key).begin_array();
  for (size_t l = 0; l < stats.size(); ++l) {
    if (stats[l].calls == 0) continue;  // level never dispatched (or profiled)
    w.begin_object();
    w.key("level").value(static_cast<uint64_t>(l));
    if (l < level_sizes.size())
      w.key("pins").value(static_cast<uint64_t>(level_sizes[l]));
    w.key("calls").value(stats[l].calls);
    w.key("ms").value(stats[l].ms);
    w.end_object();
  }
  w.end_array();
}

}  // namespace

void IntrospectionSink::write_kernel_profile(
    int iter, std::span<const size_t> level_sizes,
    std::span<const sta::LevelStat> forward,
    std::span<const sta::LevelStat> backward) {
  if (!is_open() || (forward.empty() && backward.empty())) return;
  JsonWriter w;
  w.begin_object();
  w.key("type").value("kernel_profile");
  w.key("design").value(design_);
  w.key("mode").value(mode_);
  w.key("iter").value(iter);
  level_profile_array(w, "forward", level_sizes, forward);
  level_profile_array(w, "backward", level_sizes, backward);
  finish_record(w);
}

void IntrospectionSink::write_activity(int iter,
                                       const ActivityTracker& tracker,
                                       const SlackSketch& sketch,
                                       const ChurnTracker& churn) {
  if (!is_open()) return;
  MetricsRegistry& reg = MetricsRegistry::instance();
  reg.histogram("activity.fwd_active_pct")
      .observe(100.0 * tracker.fwd_active_fraction());
  reg.histogram("activity.bwd_live_pct")
      .observe(100.0 * tracker.bwd_live_fraction());
  JsonWriter w;
  w.begin_object();
  w.key("type").value("activity");
  w.key("design").value(design_);
  w.key("mode").value(mode_);
  append_activity_json(w, iter, tracker, sketch, churn);
  finish_record(w);
}

void IntrospectionSink::write_activity_summary(
    const ActivitySummaryAccum& accum, const ActivityTracker& tracker,
    const SlackSketch& final_sketch) {
  if (!is_open()) return;
  JsonWriter w;
  w.begin_object();
  w.key("type").value("activity_summary");
  w.key("design").value(design_);
  w.key("mode").value(mode_);
  append_activity_summary_json(w, accum, tracker, final_sketch);
  finish_record(w);
}

void IntrospectionSink::write_abort(const std::string& stage,
                                    const std::string& error, int exit_code) {
  if (!is_open()) return;
  JsonWriter w;
  w.begin_object();
  w.key("type").value("abort");
  w.key("design").value(design_);
  w.key("mode").value(mode_);
  w.key("stage").value(stage);
  w.key("error").value(error);
  w.key("exit_code").value(exit_code);
  finish_record(w);
}

}  // namespace dtp::obs
