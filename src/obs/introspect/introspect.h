// Timing introspection sink (DESIGN.md §8).
//
// One JSONL stream (--paths-out on dtp_place) carrying three record types,
// sampled every IntrospectOptions::sample_period placer iterations and once
// at run end:
//
//   {"type":"path", ...}            top-K critical paths, per-stage arc data
//   {"type":"grad_attrib", ...}     wirelength/density/timing decomposition
//                                   of the descent gradient + top-M cells
//   {"type":"kernel_profile", ...}  accumulated per-topological-level wall
//                                   clock of the forward/backward sweeps
//
// Records carry design/mode/iter so multiple runs can share a stream, and
// lines are flushed as written (JsonlWriter), so a crashed run's stream stays
// parseable.  `dtp_report` consumes the stream offline.  The sink is a pure
// observer: a placement with the sink attached is bitwise-identical to one
// without it.
#pragma once

#include <span>
#include <string>

#include "obs/introspect/grad_attrib.h"
#include "obs/introspect/path_extract.h"
#include "obs/jsonl.h"

namespace dtp::obs {

class ActivityTracker;
class ActivitySummaryAccum;
class ChurnTracker;
class SlackSketch;

struct IntrospectOptions {
  int paths_topk = 10;     // paths per sample; 0 disables path records
  int sample_period = 25;  // emit every N iterations (and at run end); <=0 off
  int top_m_cells = 10;    // cells listed per attribution record
};

class IntrospectionSink {
 public:
  IntrospectionSink() = default;
  explicit IntrospectionSink(const std::string& path) { open(path); }

  bool open(const std::string& path) { return out_.open(path); }
  bool is_open() const { return out_.is_open(); }
  void close() { out_.close(); }

  // Stamped onto every record.
  void set_meta(std::string design, std::string mode) {
    design_ = std::move(design);
    mode_ = std::move(mode);
  }

  // Extracts and writes the top-K critical paths from a (hard-mode) timer
  // holding a completed forward pass.  Endpoint slacks additionally feed the
  // registry's signed `introspect.endpoint_slack` histogram.
  void write_paths(int iter, sta::Timer& timer, int top_k);

  // Writes one gradient-attribution record.  `trigger` tags off-cadence
  // emissions forced by a robust-layer decision ("timing_degrade",
  // "nan_grad", ...); empty for regular samples.
  void write_grad_attribution(int iter, const GradAttribution& attribution,
                              const netlist::Netlist& nl,
                              const std::string& trigger = {});

  // Writes the accumulated per-level kernel profile.  `level_sizes[l]` is the
  // pin count of level l (pass empty if unknown); forward/backward spans may
  // be empty when the corresponding sweep has not run yet.
  void write_kernel_profile(int iter, std::span<const size_t> level_sizes,
                            std::span<const sta::LevelStat> forward,
                            std::span<const sta::LevelStat> backward);

  // Writes one `type:"activity"` record from the activity layer's trackers
  // (DESIGN.md §11).  The per-iteration activity fractions additionally feed
  // the registry's `activity.fwd_active_pct` / `activity.bwd_live_pct`
  // histograms so the run summary carries their p50/p95.
  void write_activity(int iter, const ActivityTracker& tracker,
                      const SlackSketch& sketch, const ChurnTracker& churn);

  // Writes the run-end `type:"activity_summary"` record, including the
  // incremental-headroom estimate.
  void write_activity_summary(const ActivitySummaryAccum& accum,
                              const ActivityTracker& tracker,
                              const SlackSketch& final_sketch);

  // Writes an abort record into this stream mirroring the run-report abort
  // artifact (PR 3 contract), so an abnormal exit leaves the activity stream
  // terminated by an explicit marker rather than just truncated.
  void write_abort(const std::string& stage, const std::string& error,
                   int exit_code);

  size_t records_written() const { return records_; }

 private:
  void finish_record(class JsonWriter& w);

  JsonlWriter out_;
  std::string design_ = "?";
  std::string mode_ = "?";
  size_t records_ = 0;
};

}  // namespace dtp::obs
