#include "obs/introspect/path_extract.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/json_writer.h"
#include "sta/cell_arc_eval.h"

namespace dtp::obs {

using netlist::NetId;
using netlist::PinId;
using sta::Arc;
using sta::ArcCandidate;
using sta::ArcKind;

const char* stage_via_name(StageVia via) {
  switch (via) {
    case StageVia::Source: return "source";
    case StageVia::Wire: return "wire";
    case StageVia::Cell: return "cell";
  }
  return "?";
}

namespace {

// Walks from `endpoint` back to a source along the hard-max fan-in, filling
// stages endpoint-first (the caller reverses).
std::vector<PathStage> walk_back(const sta::Timer& timer, PinId endpoint,
                                 int tr) {
  const sta::TimingGraph& graph = timer.graph();
  std::vector<PathStage> rev;
  std::vector<ArcCandidate> cands;
  PinId p = endpoint;
  for (;;) {
    PathStage stage;
    stage.pin = p;
    stage.tr = tr;
    stage.at = timer.at(p, tr);
    stage.slew = timer.slew(p, tr);
    stage.slack = timer.pin_slack(p);
    const auto fanin = graph.fanin(p);
    if (fanin.empty()) {
      rev.push_back(stage);  // a source: keeps delay = 0, via = Source
      return rev;
    }
    const Arc& first = graph.arcs()[static_cast<size_t>(fanin[0])];
    if (first.kind == ArcKind::NetArc) {
      // Single fan-in wire arc; the transition passes through unchanged.
      stage.via = StageVia::Wire;
      stage.delay = timer.net_timing(first.net)
                        .used_delay[static_cast<size_t>(first.sink_index)];
      rev.push_back(stage);
      p = first.from;
      continue;
    }
    // Cell arcs: re-derive the candidates and take the hard-max arrival, the
    // exact choice the Hard-mode forward pass aggregated.
    const NetId out_net = graph.driven_timing_net(p);
    const double load =
        out_net == netlist::kInvalidId
            ? 0.0
            : timer.net_timing(out_net).root_load();
    cands.clear();
    for (int ai : fanin) {
      const Arc& arc = graph.arcs()[static_cast<size_t>(ai)];
      gather_arc_candidates(graph.lib_arc(arc.lib_arc), arc.from, tr,
                            timer.at_data(), timer.slew_data(), load, cands);
    }
    if (cands.empty()) {
      rev.push_back(stage);  // unreachable fan-in; treat as path start
      return rev;
    }
    size_t best = 0;
    for (size_t k = 1; k < cands.size(); ++k)
      if (cands[k].at_value > cands[best].at_value) best = k;
    stage.via = StageVia::Cell;
    stage.delay = cands[best].delay_q.value;
    rev.push_back(stage);
    p = cands[best].from;
    tr = cands[best].tr_in;
  }
}

}  // namespace

std::vector<PathRecord> extract_critical_paths(sta::Timer& timer, int top_k) {
  const sta::TimingGraph& graph = timer.graph();
  const auto& endpoints = graph.endpoints();
  const auto& ep_slack = timer.endpoint_slack();
  timer.update_required();  // per-pin slack columns for the stages

  std::vector<size_t> order;
  order.reserve(endpoints.size());
  for (size_t e = 0; e < endpoints.size(); ++e)
    if (std::isfinite(ep_slack[e])) order.push_back(e);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (ep_slack[a] != ep_slack[b]) return ep_slack[a] < ep_slack[b];
    return a < b;  // deterministic tie-break
  });
  if (top_k >= 0 && order.size() > static_cast<size_t>(top_k))
    order.resize(static_cast<size_t>(top_k));

  std::vector<PathRecord> records;
  records.reserve(order.size());
  for (const size_t e : order) {
    PathRecord rec;
    rec.endpoint_index = e;
    rec.endpoint = endpoints[e].pin;
    rec.slack = ep_slack[e];
    // Worst transition: smallest per-transition setup slack with a finite
    // arrival.
    double worst = std::numeric_limits<double>::infinity();
    rec.tr = sta::kRise;
    for (int tr = 0; tr < 2; ++tr) {
      const double at = timer.at(rec.endpoint, tr);
      if (!std::isfinite(at)) continue;
      const double s = timer.endpoint_setup_rat(e, tr).value - at;
      if (s < worst) {
        worst = s;
        rec.tr = tr;
      }
    }
    rec.arrival = timer.at(rec.endpoint, rec.tr);
    rec.required = timer.endpoint_setup_rat(e, rec.tr).value;
    if (!std::isfinite(rec.arrival)) continue;  // disconnected endpoint
    std::vector<PathStage> rev = walk_back(timer, rec.endpoint, rec.tr);
    rec.stages.assign(rev.rbegin(), rev.rend());
    records.push_back(std::move(rec));
  }
  return records;
}

void path_record_fields(JsonWriter& w, const sta::Timer& timer,
                        const PathRecord& record) {
  const netlist::Netlist& nl = timer.design().netlist;
  w.key("endpoint").value(nl.pin_full_name(record.endpoint));
  w.key("endpoint_index").value(static_cast<uint64_t>(record.endpoint_index));
  w.key("dir").value(record.tr == sta::kRise ? "rise" : "fall");
  w.key("arrival").value(record.arrival);
  w.key("required").value(record.required);
  w.key("slack").value(record.slack);
  w.key("stages").begin_array();
  for (const PathStage& s : record.stages) {
    w.begin_object();
    w.key("pin").value(nl.pin_full_name(s.pin));
    w.key("dir").value(s.tr == sta::kRise ? "rise" : "fall");
    w.key("via").value(stage_via_name(s.via));
    w.key("delay").value(s.delay);
    w.key("at").value(s.at);
    w.key("slew").value(s.slew);
    w.key("slack").value(s.slack);
    w.end_object();
  }
  w.end_array();
}

}  // namespace dtp::obs
