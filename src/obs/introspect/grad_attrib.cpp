#include "obs/introspect/grad_attrib.h"

#include <algorithm>
#include <cmath>

#include "common/json_writer.h"

namespace dtp::obs {

namespace {

struct Accumulator {
  double l1 = 0.0, l2sq = 0.0, max_abs = 0.0;
  void add(double gx, double gy) {
    const double ax = std::abs(gx);
    const double ay = std::abs(gy);
    l1 += ax + ay;
    l2sq += gx * gx + gy * gy;
    if (ax > max_abs) max_abs = ax;
    if (ay > max_abs) max_abs = ay;
  }
  GradComponent finish() const {
    return {l1, std::sqrt(l2sq), max_abs};
  }
};

}  // namespace

GradAttribution compute_grad_attribution(const GradArrays& g, int top_m) {
  GradAttribution out;
  const size_t n = g.total_x.size();
  const double mean_area = g.mean_area > 0.0 ? g.mean_area : 1.0;

  Accumulator wl, den, t, total;
  double residual_sq = 0.0;
  std::vector<TopCellGrad> timing_cells;
  for (size_t c = 0; c < n; ++c) {
    if (!g.movable.empty() && !g.movable[c]) continue;
    // Same preconditioner formula the combine loop applies.
    const double p =
        std::max(1.0, g.precond[c] + g.lambda * g.area[c] / mean_area);
    const double wlx = g.wl_x[c] / p, wly = g.wl_y[c] / p;
    const double dx = g.den_x[c] / p, dy = g.den_y[c] / p;
    const double tx = g.t_x[c] / p, ty = g.t_y[c] / p;
    wl.add(wlx, wly);
    den.add(dx, dy);
    t.add(tx, ty);
    total.add(g.total_x[c], g.total_y[c]);
    const double rx = g.total_x[c] - (wlx + dx + tx);
    const double ry = g.total_y[c] - (wly + dy + ty);
    residual_sq += rx * rx + ry * ry;
    const double mag = std::sqrt(tx * tx + ty * ty);
    if (mag > 0.0)
      timing_cells.push_back({static_cast<netlist::CellId>(c), tx, ty, mag});
  }
  out.wirelength = wl.finish();
  out.density = den.finish();
  out.timing = t.finish();
  out.total = total.finish();
  out.residual_l2 = std::sqrt(residual_sq);
  out.accounted_fraction =
      out.total.l2 > 0.0 ? 1.0 - out.residual_l2 / out.total.l2 : 1.0;

  const size_t m = std::min<size_t>(
      timing_cells.size(), top_m < 0 ? 0 : static_cast<size_t>(top_m));
  std::partial_sort(timing_cells.begin(), timing_cells.begin() + m,
                    timing_cells.end(),
                    [](const TopCellGrad& a, const TopCellGrad& b) {
                      if (a.mag != b.mag) return a.mag > b.mag;
                      return a.cell < b.cell;  // deterministic tie-break
                    });
  timing_cells.resize(m);
  out.top_timing_cells = std::move(timing_cells);
  return out;
}

namespace {

void component_object(JsonWriter& w, const GradComponent& c) {
  w.begin_object();
  w.key("l1").value(c.l1);
  w.key("l2").value(c.l2);
  w.key("max_abs").value(c.max_abs);
  w.end_object();
}

}  // namespace

void grad_attribution_fields(JsonWriter& w, const GradAttribution& a,
                             const netlist::Netlist& nl) {
  w.key("wirelength");
  component_object(w, a.wirelength);
  w.key("density");
  component_object(w, a.density);
  w.key("timing");
  component_object(w, a.timing);
  w.key("total");
  component_object(w, a.total);
  w.key("residual_l2").value(a.residual_l2);
  w.key("accounted_fraction").value(a.accounted_fraction);
  w.key("timing_clipped").value(static_cast<uint64_t>(a.timing_clipped));
  w.key("timing_nonzero").value(static_cast<uint64_t>(a.timing_nonzero));
  if (a.timing_nonzero > 0)
    w.key("clip_fraction")
        .value(static_cast<double>(a.timing_clipped) /
               static_cast<double>(a.timing_nonzero));
  w.key("top_timing_cells").begin_array();
  for (const TopCellGrad& c : a.top_timing_cells) {
    w.begin_object();
    w.key("cell").value(nl.cell(c.cell).name);
    w.key("gx").value(c.gx);
    w.key("gy").value(c.gy);
    w.key("mag").value(c.mag);
    w.end_object();
  }
  w.end_array();
}

}  // namespace dtp::obs
