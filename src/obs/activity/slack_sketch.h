// Streaming endpoint-slack sketch (DESIGN.md §11).
//
// One call per iteration with the endpoint-slack span; keeps O(1) state:
// exact WNS/max/violating counts plus P²-estimated p1/p10/p50 quantiles and
// fixed near-critical band populations (band k counts endpoints with slack
// in [wns + k·w, wns + (k+1)·w), w = band_width — the candidate pruning
// bands of the planned endpoint-pruned backward pass).  The quantile
// estimators are reset each epoch, so every record describes that
// iteration's distribution, not a running mixture.  observe_epoch() is
// allocation-free.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "common/p2_quantile.h"

namespace dtp::obs {

class SlackSketch {
 public:
  static constexpr int kBands = 4;

  void set_band_width(double w) { band_width_ = w > 0.0 ? w : 0.05; }
  double band_width() const { return band_width_; }

  // Sketches one iteration's endpoint-slack distribution.  Non-finite slacks
  // (unconstrained endpoints) are skipped, matching the path extractor's
  // finite-slack endpoint ranking.
  void observe_epoch(std::span<const double> endpoint_slack);

  uint64_t epochs() const { return epochs_; }
  uint64_t count() const { return count_; }       // finite slacks last epoch
  uint64_t violating() const { return violating_; }  // slack < 0 last epoch
  double wns() const { return wns_; }
  double max_slack() const { return max_; }
  double p1() const { return p1_.value(); }
  double p10() const { return p10_.value(); }
  double p50() const { return p50_.value(); }
  uint64_t band(int k) const { return bands_[static_cast<size_t>(k)]; }

 private:
  double band_width_ = 0.05;
  uint64_t epochs_ = 0;
  uint64_t count_ = 0;
  uint64_t violating_ = 0;
  double wns_ = 0.0;
  double max_ = 0.0;
  P2Quantile p1_{0.01};
  P2Quantile p10_{0.10};
  P2Quantile p50_{0.50};
  std::array<uint64_t, kBands> bands_{};
};

}  // namespace dtp::obs
