#include "obs/activity/slack_sketch.h"

#include <cmath>
#include <limits>

namespace dtp::obs {

void SlackSketch::observe_epoch(std::span<const double> endpoint_slack) {
  count_ = 0;
  violating_ = 0;
  wns_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
  bands_.fill(0);
  p1_.reset();
  p10_.reset();
  p50_.reset();

  // Pass 1: exact extremes, so band edges are anchored at this epoch's WNS.
  for (double s : endpoint_slack) {
    if (!std::isfinite(s)) continue;
    ++count_;
    if (s < 0.0) ++violating_;
    if (s < wns_) wns_ = s;
    if (s > max_) max_ = s;
  }
  if (count_ == 0) {
    wns_ = 0.0;
    max_ = 0.0;
    ++epochs_;
    return;
  }

  // Pass 2: quantile estimators and near-critical band populations.
  for (double s : endpoint_slack) {
    if (!std::isfinite(s)) continue;
    p1_.observe(s);
    p10_.observe(s);
    p50_.observe(s);
    const double rel = s - wns_;
    const int k = static_cast<int>(rel / band_width_);
    if (k >= 0 && k < kBands) ++bands_[static_cast<size_t>(k)];
  }
  ++epochs_;
}

}  // namespace dtp::obs
