// Activity-record assembly (DESIGN.md §11).
//
// Options for the activity layer, the run-end summary accumulator, and the
// JSON serialization shared by the introspection sink and dtp_report.  The
// serializers append keys into an already-open JSON object so the sink owns
// the envelope (type/design/mode) and the flush discipline.
#pragma once

#include <cstdint>
#include <limits>

#include "common/json_writer.h"
#include "common/p2_quantile.h"
#include "obs/activity/activity_tracker.h"
#include "obs/activity/churn_tracker.h"
#include "obs/activity/slack_sketch.h"

namespace dtp::obs {

struct ActivityOptions {
  int sample_period = 25;          // emit every N timing iterations; <=0 off
  double at_epsilon = 1e-6;        // forward AT change threshold
  double slew_epsilon = 1e-6;      // forward slew change threshold
  double adjoint_epsilon = 1e-12;  // backward live-adjoint threshold
  int churn_top_k = 32;            // near-critical endpoint set size
  double band_width = 0.05;        // slack-band width, in slack units
};

// Predicted speedup of an incremental timing kernel that only visits the
// active fraction of pins: ~1/frac, floored at 0.1% activity so a nearly
// frozen graph reports a finite (≤1000×) bound rather than infinity.
double predicted_incremental_speedup(double active_fraction);

// Run-end aggregation over the emitted activity records: quantiles of the
// per-iteration activity fractions and churn series, plus the trajectory's
// endpoints.  O(1) state; feeds the `activity_summary` record.
class ActivitySummaryAccum {
 public:
  void observe(int iter, double fwd_frac, double bwd_frac, double churn,
               double wns, double slack_p50);

  uint64_t samples() const { return samples_; }
  int first_iter() const { return first_iter_; }
  int last_iter() const { return last_iter_; }
  double fwd_frac_p50() const { return fwd_p50_.value(); }
  double fwd_frac_p95() const { return fwd_p95_.value(); }
  double fwd_frac_min() const { return samples_ > 0 ? fwd_min_ : 0.0; }
  double fwd_frac_last() const { return fwd_last_; }
  double bwd_frac_p50() const { return bwd_p50_.value(); }
  double bwd_frac_last() const { return bwd_last_; }
  double churn_p50() const { return churn_p50_.value(); }
  double churn_last() const { return churn_last_; }
  double first_wns() const { return first_wns_; }
  double last_wns() const { return last_wns_; }
  double last_slack_p50() const { return last_slack_p50_; }

 private:
  uint64_t samples_ = 0;
  int first_iter_ = -1;
  int last_iter_ = -1;
  P2Quantile fwd_p50_{0.50};
  P2Quantile fwd_p95_{0.95};
  P2Quantile bwd_p50_{0.50};
  P2Quantile churn_p50_{0.50};
  double fwd_min_ = std::numeric_limits<double>::infinity();
  double fwd_last_ = 0.0;
  double bwd_last_ = 0.0;
  double churn_last_ = 1.0;
  double first_wns_ = 0.0;
  double last_wns_ = 0.0;
  double last_slack_p50_ = 0.0;
};

// Appends the per-iteration record body: "iter", "forward", "backward",
// "slack", "churn" sections.  Levels with zero activity on both sides are
// elided from the per-level arrays to keep records compact.
void append_activity_json(JsonWriter& w, int iter,
                          const ActivityTracker& tracker,
                          const SlackSketch& sketch,
                          const ChurnTracker& churn);

// Appends the run-end summary body, including the headroom estimate derived
// from the median forward-active fraction.
void append_activity_summary_json(JsonWriter& w,
                                  const ActivitySummaryAccum& accum,
                                  const ActivityTracker& tracker,
                                  const SlackSketch& final_sketch);

}  // namespace dtp::obs
