#include "obs/activity/activity_tracker.h"

#include <cmath>
#include <cstring>
#include <limits>

namespace dtp::obs {

void ActivityTracker::configure(std::span<const int> level_offsets,
                                std::span<const int> level_pins,
                                size_t num_pins) {
  num_pins_ = num_pins;
  level_offsets_.assign(level_offsets.begin(), level_offsets.end());
  level_pins_.assign(level_pins.begin(), level_pins.end());
  const double nan = std::numeric_limits<double>::quiet_NaN();
  prev_at_.assign(num_pins * 2, nan);
  prev_slew_.assign(num_pins * 2, nan);

  const size_t n_levels =
      level_offsets_.empty() ? 0 : level_offsets_.size() - 1;
  levels_.assign(n_levels, ActivityLevelCounts{});
  for (size_t l = 0; l < n_levels; ++l) {
    levels_[l].level = static_cast<int>(l);
    levels_[l].pins =
        static_cast<size_t>(level_offsets_[l + 1] - level_offsets_[l]);
  }
  fwd_active_total_ = 0;
  bwd_live_total_ = 0;
  fwd_evals_ = bwd_evals_ = inc_evals_ = 0;
  last_inc_visited_ = last_inc_changed_ = 0;
}

bool ActivityTracker::moved(double a, double b, double eps) {
  if (a == b) return false;  // fast path; also handles ±0 and equal infs
  if (std::isnan(a) && std::isnan(b)) return false;  // still unreachable
  if (!std::isfinite(a) || !std::isfinite(b)) return true;
  return std::abs(a - b) > eps;
}

void ActivityTracker::record_forward(const double* at, const double* slew) {
  fwd_active_total_ = 0;
  const size_t n_levels = levels_.size();
  for (size_t l = 0; l < n_levels; ++l) {
    size_t active = 0;
    const int begin = level_offsets_[l];
    const int end = level_offsets_[l + 1];
    for (int i = begin; i < end; ++i) {
      const size_t p = static_cast<size_t>(level_pins_[static_cast<size_t>(i)]);
      const size_t s = p * 2;
      const bool changed = moved(at[s], prev_at_[s], at_eps_) ||
                           moved(at[s + 1], prev_at_[s + 1], at_eps_) ||
                           moved(slew[s], prev_slew_[s], slew_eps_) ||
                           moved(slew[s + 1], prev_slew_[s + 1], slew_eps_);
      active += changed ? 1 : 0;
    }
    levels_[l].fwd_active = active;
    fwd_active_total_ += active;
  }
  std::memcpy(prev_at_.data(), at, prev_at_.size() * sizeof(double));
  std::memcpy(prev_slew_.data(), slew, prev_slew_.size() * sizeof(double));
  ++fwd_evals_;
}

void ActivityTracker::record_backward(const double* g_at,
                                      const double* g_slew) {
  bwd_live_total_ = 0;
  const size_t n_levels = levels_.size();
  for (size_t l = 0; l < n_levels; ++l) {
    size_t live = 0;
    const int begin = level_offsets_[l];
    const int end = level_offsets_[l + 1];
    for (int i = begin; i < end; ++i) {
      const size_t p = static_cast<size_t>(level_pins_[static_cast<size_t>(i)]);
      const size_t s = p * 2;
      const double m =
          std::max(std::max(std::abs(g_at[s]), std::abs(g_at[s + 1])),
                   std::max(std::abs(g_slew[s]), std::abs(g_slew[s + 1])));
      live += m > adjoint_eps_ ? 1 : 0;
    }
    levels_[l].bwd_live = live;
    bwd_live_total_ += live;
  }
  ++bwd_evals_;
}

}  // namespace dtp::obs
