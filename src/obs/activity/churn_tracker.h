// Criticality-churn tracker (DESIGN.md §11).
//
// Each iteration, ranks endpoints by slack exactly as the path extractor
// does (finite slacks ascending, endpoint index as tie-break), takes the
// top-K near-critical set, and reports its Jaccard similarity against the
// previous iteration's set plus how many endpoints entered and left.  A
// stable set (Jaccard → 1) means a criticality-pruned backward pass could
// cache its endpoint selection across iterations; a churning set means the
// selection must be refreshed every pass.  All buffers are sized in
// configure(); observe() is allocation-free.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace dtp::obs {

class ChurnTracker {
 public:
  void configure(size_t num_endpoints, size_t top_k);
  bool configured() const { return top_k_ > 0; }
  size_t top_k() const { return top_k_; }

  // `endpoint_slack[e]` is the slack of endpoint e; non-finite entries are
  // unconstrained endpoints and never enter the set.
  void observe(std::span<const double> endpoint_slack);

  uint64_t epochs() const { return epochs_; }
  double jaccard() const { return jaccard_; }  // vs previous epoch; 1.0 first
  size_t entered() const { return entered_; }
  size_t left() const { return left_; }
  size_t set_size() const { return prev_.size(); }  // current set, post-swap

 private:
  size_t top_k_ = 0;
  uint64_t epochs_ = 0;
  double jaccard_ = 1.0;
  size_t entered_ = 0;
  size_t left_ = 0;
  std::vector<int> idx_;   // finite-slack endpoint indices, scratch
  std::vector<int> cur_;   // this epoch's top-K, sorted by index
  std::vector<int> prev_;  // last epoch's top-K, sorted by index
};

}  // namespace dtp::obs
