#include "obs/activity/activity_record.h"

#include <algorithm>

namespace dtp::obs {

double predicted_incremental_speedup(double active_fraction) {
  const double frac = std::clamp(active_fraction, 1e-3, 1.0);
  return 1.0 / frac;
}

void ActivitySummaryAccum::observe(int iter, double fwd_frac, double bwd_frac,
                                   double churn, double wns,
                                   double slack_p50) {
  if (samples_ == 0) {
    first_iter_ = iter;
    first_wns_ = wns;
  }
  ++samples_;
  last_iter_ = iter;
  fwd_p50_.observe(fwd_frac);
  fwd_p95_.observe(fwd_frac);
  bwd_p50_.observe(bwd_frac);
  churn_p50_.observe(churn);
  fwd_min_ = std::min(fwd_min_, fwd_frac);
  fwd_last_ = fwd_frac;
  bwd_last_ = bwd_frac;
  churn_last_ = churn;
  last_wns_ = wns;
  last_slack_p50_ = slack_p50;
}

namespace {

void level_counts_array(JsonWriter& w, const char* key,
                        const ActivityTracker& tracker, bool forward) {
  w.key(key).begin_array();
  for (const ActivityLevelCounts& lc : tracker.levels()) {
    const size_t n = forward ? lc.fwd_active : lc.bwd_live;
    if (n == 0) continue;  // elide quiet levels; pins_total fixes the frame
    w.begin_object();
    w.key("level").value(lc.level);
    w.key("pins").value(static_cast<uint64_t>(lc.pins));
    w.key(forward ? "active" : "live").value(static_cast<uint64_t>(n));
    w.end_object();
  }
  w.end_array();
}

}  // namespace

void append_activity_json(JsonWriter& w, int iter,
                          const ActivityTracker& tracker,
                          const SlackSketch& sketch,
                          const ChurnTracker& churn) {
  w.key("iter").value(iter);
  w.key("pins_total").value(static_cast<uint64_t>(tracker.pins_total()));
  w.key("levels").value(static_cast<uint64_t>(tracker.num_levels()));

  w.key("forward").begin_object();
  w.key("evals").value(tracker.forward_evals());
  w.key("active").value(static_cast<uint64_t>(tracker.fwd_active_total()));
  w.key("frac").value(tracker.fwd_active_fraction());
  w.key("at_epsilon").value(tracker.at_epsilon());
  w.key("slew_epsilon").value(tracker.slew_epsilon());
  level_counts_array(w, "by_level", tracker, /*forward=*/true);
  w.end_object();

  w.key("backward").begin_object();
  w.key("evals").value(tracker.backward_evals());
  w.key("live").value(static_cast<uint64_t>(tracker.bwd_live_total()));
  w.key("frac").value(tracker.bwd_live_fraction());
  w.key("adjoint_epsilon").value(tracker.adjoint_epsilon());
  level_counts_array(w, "by_level", tracker, /*forward=*/false);
  w.end_object();

  if (tracker.incremental_evals() > 0) {
    w.key("incremental").begin_object();
    w.key("evals").value(tracker.incremental_evals());
    w.key("visited").value(
        static_cast<uint64_t>(tracker.last_incremental_visited()));
    w.key("changed").value(
        static_cast<uint64_t>(tracker.last_incremental_changed()));
    w.end_object();
  }

  w.key("slack").begin_object();
  w.key("endpoints").value(sketch.count());
  w.key("violating").value(sketch.violating());
  w.key("wns").value(sketch.wns());
  w.key("p1").value(sketch.p1());
  w.key("p10").value(sketch.p10());
  w.key("p50").value(sketch.p50());
  w.key("max").value(sketch.max_slack());
  w.key("band_width").value(sketch.band_width());
  w.key("bands").begin_array();
  for (int k = 0; k < SlackSketch::kBands; ++k) w.value(sketch.band(k));
  w.end_array();
  w.end_object();

  w.key("churn").begin_object();
  w.key("top_k").value(static_cast<uint64_t>(churn.top_k()));
  w.key("set_size").value(static_cast<uint64_t>(churn.set_size()));
  w.key("jaccard").value(churn.jaccard());
  w.key("entered").value(static_cast<uint64_t>(churn.entered()));
  w.key("left").value(static_cast<uint64_t>(churn.left()));
  w.end_object();
}

void append_activity_summary_json(JsonWriter& w,
                                  const ActivitySummaryAccum& accum,
                                  const ActivityTracker& tracker,
                                  const SlackSketch& final_sketch) {
  w.key("samples").value(accum.samples());
  w.key("first_iter").value(accum.first_iter());
  w.key("last_iter").value(accum.last_iter());
  w.key("pins_total").value(static_cast<uint64_t>(tracker.pins_total()));
  w.key("forward_evals").value(tracker.forward_evals());
  w.key("backward_evals").value(tracker.backward_evals());

  w.key("fwd_frac").begin_object();
  w.key("p50").value(accum.fwd_frac_p50());
  w.key("p95").value(accum.fwd_frac_p95());
  w.key("min").value(accum.fwd_frac_min());
  w.key("last").value(accum.fwd_frac_last());
  w.end_object();

  w.key("bwd_frac").begin_object();
  w.key("p50").value(accum.bwd_frac_p50());
  w.key("last").value(accum.bwd_frac_last());
  w.end_object();

  w.key("churn").begin_object();
  w.key("jaccard_p50").value(accum.churn_p50());
  w.key("jaccard_last").value(accum.churn_last());
  w.end_object();

  w.key("slack").begin_object();
  w.key("first_wns").value(accum.first_wns());
  w.key("wns").value(accum.last_wns());
  w.key("p1").value(final_sketch.p1());
  w.key("p10").value(final_sketch.p10());
  w.key("p50").value(final_sketch.p50());
  w.key("violating").value(final_sketch.violating());
  w.end_object();

  w.key("headroom").begin_object();
  w.key("median_active_frac").value(accum.fwd_frac_p50());
  w.key("predicted_speedup")
      .value(predicted_incremental_speedup(accum.fwd_frac_p50()));
  w.end_object();
}

}  // namespace dtp::obs
