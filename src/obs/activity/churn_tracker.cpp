#include "obs/activity/churn_tracker.h"

#include <algorithm>
#include <cmath>

namespace dtp::obs {

void ChurnTracker::configure(size_t num_endpoints, size_t top_k) {
  top_k_ = top_k;
  epochs_ = 0;
  jaccard_ = 1.0;
  entered_ = left_ = 0;
  idx_.clear();
  idx_.reserve(num_endpoints);
  cur_.clear();
  cur_.reserve(top_k);
  prev_.clear();
  prev_.reserve(top_k);
}

void ChurnTracker::observe(std::span<const double> endpoint_slack) {
  idx_.clear();
  const int n = static_cast<int>(endpoint_slack.size());
  for (int e = 0; e < n; ++e)
    if (std::isfinite(endpoint_slack[static_cast<size_t>(e)]))
      idx_.push_back(e);

  const size_t k = std::min(top_k_, idx_.size());
  // Same ordering as the path extractor's endpoint ranking: slack ascending,
  // index as the deterministic tie-break.
  const auto worse = [&endpoint_slack](int a, int b) {
    const double sa = endpoint_slack[static_cast<size_t>(a)];
    const double sb = endpoint_slack[static_cast<size_t>(b)];
    if (sa != sb) return sa < sb;
    return a < b;
  };
  if (k < idx_.size())
    std::nth_element(idx_.begin(), idx_.begin() + static_cast<long>(k),
                     idx_.end(), worse);
  cur_.assign(idx_.begin(), idx_.begin() + static_cast<long>(k));
  std::sort(cur_.begin(), cur_.end());  // index order for the merge walk

  if (epochs_ == 0) {
    jaccard_ = 1.0;
    entered_ = cur_.size();
    left_ = 0;
  } else {
    size_t inter = 0;
    size_t i = 0, j = 0;
    while (i < cur_.size() && j < prev_.size()) {
      if (cur_[i] == prev_[j]) {
        ++inter;
        ++i;
        ++j;
      } else if (cur_[i] < prev_[j]) {
        ++i;
      } else {
        ++j;
      }
    }
    const size_t uni = cur_.size() + prev_.size() - inter;
    jaccard_ = uni > 0 ? static_cast<double>(inter) / static_cast<double>(uni)
                       : 1.0;
    entered_ = cur_.size() - inter;
    left_ = prev_.size() - inter;
  }
  std::swap(prev_, cur_);
  ++epochs_;
}

}  // namespace dtp::obs
