// Per-level timing-activity counters (DESIGN.md §11).
//
// Measures, from outside the timing kernels, how much of the graph actually
// changes per placer iteration: after each forward pass, the fraction of pins
// per CSR level whose arrival time or slew moved beyond an epsilon since the
// previous pass (the dirty frontier an incremental forward sweep would have
// to visit); after each backward pass, the fraction of pins per level whose
// adjoints are meaningfully non-zero (the live cone an endpoint-pruned
// backward sweep would have to traverse).  Everything else is headroom.
//
// The tracker is shape-based on purpose: it sees only the level schedule
// (CSR offsets + pin order) and flat [pin*2+tr] value arrays, never sta
// types, so dtp_sta can link it without a dependency cycle.  It is a pure
// observer — record_* never writes anything the timers read — and all
// buffers are allocated in configure(); the record paths are allocation-free
// so the PR 5 steady-state zero-allocation contract holds with the tracker
// attached.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace dtp::obs {

struct ActivityLevelCounts {
  int level = 0;
  size_t pins = 0;        // pins scheduled in this level
  size_t fwd_active = 0;  // AT/slew changed beyond epsilon in last forward
  size_t bwd_live = 0;    // |adjoint| above epsilon in last backward
};

class ActivityTracker {
 public:
  // Change thresholds.  A pin counts as forward-active when any of its four
  // slots (early/late AT, early/late slew) moves by more than the matching
  // epsilon — or transitions between finite and non-finite, so the first
  // pass after configure() (previous snapshot = NaN) counts every reachable
  // pin active.  NaN -> NaN is not a change: a permanently unreachable pin
  // must not inflate the active fraction every pass.
  void set_epsilons(double at_eps, double slew_eps, double adjoint_eps) {
    at_eps_ = at_eps;
    slew_eps_ = slew_eps;
    adjoint_eps_ = adjoint_eps;
  }
  double at_epsilon() const { return at_eps_; }
  double slew_epsilon() const { return slew_eps_; }
  double adjoint_epsilon() const { return adjoint_eps_; }

  // Copies the level schedule and sizes every buffer.  The only method that
  // allocates.  `level_pins` holds pin ids grouped by level; `level_offsets`
  // is the CSR directory over it (size num_levels+1).
  void configure(std::span<const int> level_offsets,
                 std::span<const int> level_pins, size_t num_pins);
  bool configured() const { return num_pins_ > 0; }

  // Post-pass scans.  `at`/`slew` and `g_at`/`g_slew` are the workspace's
  // flat [pin*2+tr] arrays (2*num_pins doubles each).  Allocation-free.
  void record_forward(const double* at, const double* slew);
  void record_backward(const double* g_at, const double* g_slew);

  // Reported by Timer::evaluate_incremental: how many pins the worklist
  // visited and how many of those actually changed.
  void record_incremental(size_t visited, size_t changed) {
    last_inc_visited_ = visited;
    last_inc_changed_ = changed;
    ++inc_evals_;
  }

  size_t num_levels() const { return levels_.size(); }
  size_t pins_total() const { return num_pins_; }
  std::span<const ActivityLevelCounts> levels() const { return levels_; }

  // Totals over the most recent pass of each kind.
  size_t fwd_active_total() const { return fwd_active_total_; }
  size_t bwd_live_total() const { return bwd_live_total_; }
  double fwd_active_fraction() const {
    return num_pins_ > 0
               ? static_cast<double>(fwd_active_total_) /
                     static_cast<double>(num_pins_)
               : 0.0;
  }
  double bwd_live_fraction() const {
    return num_pins_ > 0 ? static_cast<double>(bwd_live_total_) /
                               static_cast<double>(num_pins_)
                         : 0.0;
  }

  uint64_t forward_evals() const { return fwd_evals_; }
  uint64_t backward_evals() const { return bwd_evals_; }
  uint64_t incremental_evals() const { return inc_evals_; }
  size_t last_incremental_visited() const { return last_inc_visited_; }
  size_t last_incremental_changed() const { return last_inc_changed_; }

 private:
  static bool moved(double a, double b, double eps);

  double at_eps_ = 1e-6;
  double slew_eps_ = 1e-6;
  double adjoint_eps_ = 1e-12;

  size_t num_pins_ = 0;
  std::vector<int> level_offsets_;  // CSR into level_pins_, size levels+1
  std::vector<int> level_pins_;     // pin ids grouped by level
  std::vector<double> prev_at_;     // [pin*2+tr] snapshot of last forward
  std::vector<double> prev_slew_;
  std::vector<ActivityLevelCounts> levels_;

  size_t fwd_active_total_ = 0;
  size_t bwd_live_total_ = 0;
  uint64_t fwd_evals_ = 0;
  uint64_t bwd_evals_ = 0;
  uint64_t inc_evals_ = 0;
  size_t last_inc_visited_ = 0;
  size_t last_inc_changed_ = 0;
};

}  // namespace dtp::obs
