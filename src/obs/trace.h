// Scoped-span tracer exporting Chrome trace_event JSON (DESIGN.md §6) plus
// the live-span publication layer the sampling profiler reads (DESIGN.md §14).
//
// Usage: wrap a phase in DTP_TRACE_SCOPE("sta_forward"); when tracing is
// enabled the scope's wall-clock extent is recorded as a complete ("ph":"X")
// event into a per-thread ring buffer; Tracer::write_json() emits the whole
// session in the Chrome trace_event format, viewable in chrome://tracing or
// Perfetto (ui.perfetto.dev).
//
// Live-span mode is orthogonal to ring tracing: when a SamplingProfiler is
// attached (Tracer::enable_live()), every open span additionally publishes
// its label onto a per-thread seqlock-protected stack that the profiler's
// sampler thread snapshots without locks (sample_live()).  DTP_PROF_SCOPE
// spans publish *only* to the live stack — no clock reads, no ring slot — so
// hot inner loops (per-level dispatch, LUT interpolation) can carry labels
// without flooding Chrome traces.
//
// Cost model: the hot path is the *disabled* case — a single relaxed atomic
// load and branch, no clock reads, no allocation — so instrumentation can
// stay compiled into release kernels (<1% on kernels_bench, the acceptance
// bar).  Trace and live enablement share one flag word, so the disabled cost
// is unchanged.  When enabled, a trace scope costs two steady_clock reads and
// one ring slot; a live publish is a handful of relaxed stores and a release
// fence.  Buffers and slots are thread-local, so worker threads never
// contend.  Rings overwrite their oldest events when full (dropped() reports
// how many), which bounds memory on arbitrarily long runs.
//
// Span names must be string literals (or otherwise outlive the tracer): the
// ring and the live stack store the pointer, not a copy.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace dtp::obs {

struct TraceEvent {
  const char* name = nullptr;
  double ts_us = 0.0;   // start, microseconds since enable()
  double dur_us = 0.0;  // duration, microseconds
  uint32_t tid = 0;     // dense per-thread id (registration order)
};

class Tracer {
 public:
  // Bits in the mode word.  One relaxed load answers both "is the ring
  // recording" and "is a profiler attached".
  static constexpr uint32_t kTraceBit = 1u;
  static constexpr uint32_t kLiveBit = 2u;

  // Live-span stack geometry.  Deeper nesting than kMaxLiveDepth is counted
  // (live_truncated()) but not published; threads beyond kMaxLiveThreads are
  // invisible to the sampler (counted in live_unregistered()).
  static constexpr int kMaxLiveDepth = 16;
  static constexpr int kMaxLiveThreads = 256;

  static Tracer& instance();

  // Starts a tracing session: resets the epoch, clears previous events and
  // flips the global enabled flag.  capacity is the per-thread ring size.
  void enable(size_t capacity = kDefaultCapacity);
  void disable();

  static uint32_t mode() { return mode_flags_.load(std::memory_order_relaxed); }
  static bool enabled() { return (mode() & kTraceBit) != 0; }
  static bool live_enabled() { return (mode() & kLiveBit) != 0; }

  // Live-span publication on/off.  Refcounted so multiple profilers (e.g. a
  // daemon-wide profiler plus a per-job one) compose; the kLiveBit is set
  // while any reference is held.
  void enable_live();
  void disable_live();

  // Publishes / retracts the top of the calling thread's live-span stack.
  // Publisher side of the seqlock: a few relaxed stores plus a release fence
  // (compiler-only on x86).  name must be a string literal.
  static void live_push(const char* name);
  static void live_pop();

  // Registers the calling thread's live slot (if not yet) and returns its
  // dense id — the same id sample_live() reports.  Used by the profiler to
  // attribute driver-thread hw-counter deltas.  Returns UINT32_MAX when the
  // slot table is full.
  static uint32_t live_thread_id();

  // One thread's published stack, snapshotted consistently.
  struct LiveSample {
    uint32_t tid = 0;
    uint32_t depth = 0;
    const char* frames[kMaxLiveDepth];  // outermost first, [0..depth)
  };

  // Snapshots every registered thread's live stack (seqlock reader side).
  // Returns the number of non-empty stacks written to out (at most max_out);
  // threads whose slot could not be read consistently within a bounded number
  // of retries are skipped and counted in *torn (when non-null).  Lock-free;
  // safe to call at sampling rates from a dedicated thread.
  size_t sample_live(LiveSample* out, size_t max_out,
                     size_t* torn = nullptr) const;

  // Pushes that exceeded kMaxLiveDepth (label lost, depth still tracked) and
  // threads that could not register a slot, summed across the process.
  size_t live_truncated() const;
  size_t live_unregistered() const;

  // Records a completed span on the calling thread.  Called by TraceScope;
  // exposed for events whose extent is not a C++ scope.
  void record(const char* name, double ts_us, double dur_us);

  // Microseconds since the current session's epoch.
  double now_us() const;

  // Events recorded across all threads, oldest lost to ring overwrite
  // excluded.  Snapshot under the registry lock — call from one thread after
  // the traced work is done.
  size_t num_events() const;
  size_t dropped() const;
  std::vector<TraceEvent> events() const;
  // Per-thread (tid, dropped) pairs for the current session; nonzero entries
  // only.  Feeds the trace JSON metadata block.
  std::vector<std::pair<uint32_t, size_t>> per_thread_dropped() const;

  // Chrome trace_event JSON: {"traceEvents":[...],"displayTimeUnit":"ms",
  // "metadata":{"dropped_spans":N,...}}.  The metadata block makes ring
  // truncation detectable from the artifact alone.
  std::string to_json() const;
  bool write_json(const std::string& path) const;

  static constexpr size_t kDefaultCapacity = 1 << 16;

 private:
  Tracer() = default;
  struct ThreadBuffer;
  ThreadBuffer& local_buffer();
  struct LiveSlot;
  static LiveSlot& live_slot();

  static std::atomic<uint32_t> mode_flags_;
  std::chrono::steady_clock::time_point epoch_;
  // Bumped by enable(); rings stamped with an older session are skipped.
  // Atomic: record() reads these off the registry lock.
  std::atomic<uint64_t> session_{0};
  std::atomic<size_t> capacity_{kDefaultCapacity};

  // Owned per-thread buffers; never deallocated (thread_local pointers into
  // them must stay valid across sessions), reset lazily per session.
  mutable std::vector<ThreadBuffer*> buffers_;  // guarded by registry_mutex_
  mutable std::mutex registry_mutex_;

  // Live-slot table: appended under registry_mutex_, read lock-free by the
  // sampler via the acquire-published count.  Slots leak like ThreadBuffers.
  LiveSlot* live_slots_[kMaxLiveThreads] = {};
  std::atomic<size_t> live_count_{0};
  std::atomic<size_t> live_unregistered_{0};
  int live_refs_ = 0;  // guarded by registry_mutex_
};

// RAII span: stamps the start on construction, records on destruction.
// Nesting works naturally (inner scopes close first; Perfetto stacks them).
// Publishes to the live-span stack as well when a profiler is attached.
class TraceScope {
 public:
  explicit TraceScope(const char* name) {
    const uint32_t m = Tracer::mode();
    if (m == 0) return;
    if ((m & Tracer::kLiveBit) != 0) {
      Tracer::live_push(name);
      pushed_ = true;
    }
    if ((m & Tracer::kTraceBit) != 0) {
      name_ = name;
      start_us_ = Tracer::instance().now_us();
    }
  }
  ~TraceScope() {
    if (name_ && Tracer::enabled()) {
      Tracer& t = Tracer::instance();
      t.record(name_, start_us_, t.now_us() - start_us_);
    }
    if (pushed_) Tracer::live_pop();
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  const char* name_ = nullptr;
  double start_us_ = 0.0;
  bool pushed_ = false;
};

// Live-stack-only span: visible to the sampling profiler, never recorded in
// the trace ring and never reads a clock.  For spans too hot or too numerous
// for Chrome traces (per-level dispatch, per-pin LUT interpolation).
class ProfScope {
 public:
  explicit ProfScope(const char* name) {
    if (Tracer::live_enabled()) {
      Tracer::live_push(name);
      pushed_ = true;
    }
  }
  ~ProfScope() {
    if (pushed_) Tracer::live_pop();
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  bool pushed_ = false;
};

#define DTP_TRACE_CONCAT2(a, b) a##b
#define DTP_TRACE_CONCAT(a, b) DTP_TRACE_CONCAT2(a, b)
#define DTP_TRACE_SCOPE(name) \
  ::dtp::obs::TraceScope DTP_TRACE_CONCAT(dtp_trace_scope_, __LINE__)(name)
#define DTP_PROF_SCOPE(name) \
  ::dtp::obs::ProfScope DTP_TRACE_CONCAT(dtp_prof_scope_, __LINE__)(name)

}  // namespace dtp::obs
