// Scoped-span tracer exporting Chrome trace_event JSON (DESIGN.md §6).
//
// Usage: wrap a phase in DTP_TRACE_SCOPE("sta_forward"); when tracing is
// enabled the scope's wall-clock extent is recorded as a complete ("ph":"X")
// event into a per-thread ring buffer; Tracer::write_json() emits the whole
// session in the Chrome trace_event format, viewable in chrome://tracing or
// Perfetto (ui.perfetto.dev).
//
// Cost model: the hot path is the *disabled* case — a single relaxed atomic
// load and branch, no clock reads, no allocation — so instrumentation can
// stay compiled into release kernels (<1% on kernels_bench, the acceptance
// bar).  When enabled, a scope costs two steady_clock reads and one ring
// slot; buffers are thread-local, so worker threads never contend.  Rings
// overwrite their oldest events when full (dropped() reports how many), which
// bounds memory on arbitrarily long runs.
//
// Span names must be string literals (or otherwise outlive the tracer): the
// ring stores the pointer, not a copy.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace dtp::obs {

struct TraceEvent {
  const char* name = nullptr;
  double ts_us = 0.0;   // start, microseconds since enable()
  double dur_us = 0.0;  // duration, microseconds
  uint32_t tid = 0;     // dense per-thread id (registration order)
};

class Tracer {
 public:
  static Tracer& instance();

  // Starts a tracing session: resets the epoch, clears previous events and
  // flips the global enabled flag.  capacity is the per-thread ring size.
  void enable(size_t capacity = kDefaultCapacity);
  void disable();

  static bool enabled() {
    return enabled_flag_.load(std::memory_order_relaxed);
  }

  // Records a completed span on the calling thread.  Called by TraceScope;
  // exposed for events whose extent is not a C++ scope.
  void record(const char* name, double ts_us, double dur_us);

  // Microseconds since the current session's epoch.
  double now_us() const;

  // Events recorded across all threads, oldest lost to ring overwrite
  // excluded.  Snapshot under the registry lock — call from one thread after
  // the traced work is done.
  size_t num_events() const;
  size_t dropped() const;
  std::vector<TraceEvent> events() const;

  // Chrome trace_event JSON: {"traceEvents":[...],"displayTimeUnit":"ms"}.
  std::string to_json() const;
  bool write_json(const std::string& path) const;

  static constexpr size_t kDefaultCapacity = 1 << 16;

 private:
  Tracer() = default;
  struct ThreadBuffer;
  ThreadBuffer& local_buffer();

  static std::atomic<bool> enabled_flag_;
  std::chrono::steady_clock::time_point epoch_;
  // Bumped by enable(); rings stamped with an older session are skipped.
  // Atomic: record() reads these off the registry lock.
  std::atomic<uint64_t> session_{0};
  std::atomic<size_t> capacity_{kDefaultCapacity};

  // Owned per-thread buffers; never deallocated (thread_local pointers into
  // them must stay valid across sessions), reset lazily per session.
  mutable std::vector<ThreadBuffer*> buffers_;  // guarded by registry_mutex_
  mutable std::mutex registry_mutex_;
};

// RAII span: stamps the start on construction, records on destruction.
// Nesting works naturally (inner scopes close first; Perfetto stacks them).
class TraceScope {
 public:
  explicit TraceScope(const char* name) {
    if (Tracer::enabled()) {
      name_ = name;
      start_us_ = Tracer::instance().now_us();
    }
  }
  ~TraceScope() {
    if (name_ && Tracer::enabled()) {
      Tracer& t = Tracer::instance();
      t.record(name_, start_us_, t.now_us() - start_us_);
    }
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  const char* name_ = nullptr;
  double start_us_ = 0.0;
};

#define DTP_TRACE_CONCAT2(a, b) a##b
#define DTP_TRACE_CONCAT(a, b) DTP_TRACE_CONCAT2(a, b)
#define DTP_TRACE_SCOPE(name) \
  ::dtp::obs::TraceScope DTP_TRACE_CONCAT(dtp_trace_scope_, __LINE__)(name)

}  // namespace dtp::obs
