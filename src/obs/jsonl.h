// Append-only JSONL (one JSON document per line) stream writer, the format of
// the per-iteration metrics artifact (--metrics-out).  Lines are flushed as
// written so a crashed or killed run keeps everything logged up to that point.
#pragma once

#include <cstdio>
#include <string>

#include "common/assert.h"

namespace dtp::obs {

class JsonlWriter {
 public:
  JsonlWriter() = default;
  explicit JsonlWriter(const std::string& path) { open(path); }
  ~JsonlWriter() { close(); }
  JsonlWriter(const JsonlWriter&) = delete;
  JsonlWriter& operator=(const JsonlWriter&) = delete;

  // append=true reopens an existing stream without truncating it — the
  // multi-attempt per-job streams and the dtp_serve journal depend on it.
  bool open(const std::string& path, bool append = false) {
    close();
    file_ = std::fopen(path.c_str(), append ? "a" : "w");
    return file_ != nullptr;
  }
  bool is_open() const { return file_ != nullptr; }
  void close() {
    if (file_ != nullptr) std::fclose(file_);
    file_ = nullptr;
  }

  // `json` must be a single complete JSON document without newlines.
  void write_line(const std::string& json) {
    DTP_ASSERT(file_ != nullptr);
    std::fwrite(json.data(), 1, json.size(), file_);
    std::fputc('\n', file_);
    std::fflush(file_);
  }

 private:
  std::FILE* file_ = nullptr;
};

}  // namespace dtp::obs
