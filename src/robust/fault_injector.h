// Deterministic fault injection for the robustness test harness (DESIGN.md §7).
//
// A FaultInjector holds a list of FaultSpecs — (site, first tick, repeat
// count, magnitude) — and, when asked, corrupts a deterministic subset of a
// double array at that site/tick.  Determinism is stateless: which entries
// are hit and what garbage they receive is a pure hash of (seed, site, tick,
// index), so the same spec + seed reproduces the same fault no matter how
// many unrelated injector calls happen in between (rollback re-execution,
// multi-threaded phases, ...).
//
// Specs are parsed from a compact string (CLI --fault, or the DTP_FAULTS
// environment variable):
//
//   site@tick[+count][*magnitude][;site@tick...]
//
//   timing_grad@120        flip timing gradients to NaN at iteration 120
//   total_grad@50+3        NaN the combined gradient on iterations 50..52
//   total_grad@90*1e4      multiply (not NaN) — a finite blow-up / divergence
//   position@200           NaN cell positions after the step of iteration 200
//   lut@70+forever         corrupt the timer's LUT-adjoint output from 70 on
//   checkpoint@2           corrupt the 3rd checkpoint taken (tick = ordinal)
//
// The placer and the differentiable timer call corrupt() at the matching
// injection points; a disarmed injector (no specs) is never consulted.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace dtp::robust {

enum class FaultSite : uint8_t {
  TimingGrad,  // placer: d(timing)/dx right after DiffTimer::backward
  TotalGrad,   // placer: combined preconditioned gradient before the step
  Position,    // placer: cell coordinates after step + projection
  LutAdjoint,  // dtimer: pin-gradient accumulators inside backward (LUT path)
  Checkpoint,  // robust: a sealed checkpoint's payload (tick = capture ordinal)
};

const char* fault_site_name(FaultSite site);
std::optional<FaultSite> parse_fault_site(const std::string& name);

struct FaultSpec {
  FaultSite site = FaultSite::TotalGrad;
  int start = 0;  // first tick (placer iteration, or checkpoint ordinal)
  int count = 1;  // consecutive ticks; -1 = forever
  // NaN (the default) flips entries to quiet NaN; a finite magnitude
  // multiplies them instead (models a finite blow-up rather than a poison).
  double magnitude = std::numeric_limits<double>::quiet_NaN();

  bool fires_at(int tick) const {
    return tick >= start && (count < 0 || tick < start + count);
  }
};

class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(uint64_t seed) : seed_(seed) {}

  void add(const FaultSpec& spec) { specs_.push_back(spec); }
  bool armed() const { return !specs_.empty(); }
  uint64_t seed() const { return seed_; }

  // Parses the spec grammar above; throws std::runtime_error on a malformed
  // spec.  An empty string yields a disarmed injector.
  static FaultInjector parse(const std::string& spec, uint64_t seed = 1);

  // Injector from the DTP_FAULTS environment variable (DTP_FAULT_SEED for the
  // seed); nullopt when the variable is unset or empty.
  static std::optional<FaultInjector> from_env();

  // True if any spec targets `site` at `tick`.
  bool fires(FaultSite site, int tick) const;

  // Corrupts ~1/64 of the entries (at least one) across a and b when a spec
  // fires; returns the number of entries corrupted (0 = no fault).
  size_t corrupt(FaultSite site, int tick, std::span<double> a,
                 std::span<double> b);
  size_t corrupt(FaultSite site, int tick, std::span<double> a) {
    return corrupt(site, tick, a, {});
  }

  // Total entries corrupted so far (test observability).
  uint64_t total_corruptions() const { return corruptions_; }

 private:
  uint64_t seed_ = 1;
  uint64_t corruptions_ = 0;
  std::vector<FaultSpec> specs_;
};

}  // namespace dtp::robust
