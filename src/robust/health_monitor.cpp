#include "robust/health_monitor.h"

#include <algorithm>
#include <limits>

namespace dtp::robust {

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::Healthy: return "healthy";
    case Verdict::NonFinite: return "non_finite";
    case Verdict::Diverged: return "diverged";
  }
  return "?";
}

HealthMonitor::HealthMonitor(HealthOptions options) : options_(options) {
  ring_.resize(static_cast<size_t>(std::max(1, options_.window)));
}

bool HealthMonitor::all_finite(std::span<const double> a,
                               std::span<const double> b) {
  double s = 0.0;
  for (const double v : a) s += v;
  for (const double v : b) s += v;
  if (std::isfinite(s)) return true;
  // The sum of finite values can still overflow to Inf; confirm elementwise.
  return count_nonfinite(a, b) == 0;
}

size_t HealthMonitor::count_nonfinite(std::span<const double> a,
                                      std::span<const double> b) {
  size_t bad = 0;
  for (const double v : a) bad += !std::isfinite(v);
  for (const double v : b) bad += !std::isfinite(v);
  return bad;
}

Verdict HealthMonitor::observe(double hpwl, double overflow) {
  if (!std::isfinite(hpwl) || !std::isfinite(overflow)) return Verdict::NonFinite;

  if (size_ == ring_.size()) {  // window full: test against its minima
    double min_hpwl = std::numeric_limits<double>::infinity();
    double min_ovf = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < size_; ++i) {
      min_hpwl = std::min(min_hpwl, ring_[i].first);
      min_ovf = std::min(min_ovf, ring_[i].second);
    }
    const bool hpwl_blew = min_hpwl > 0.0 && hpwl > options_.hpwl_blowup * min_hpwl;
    const bool ovf_rose = overflow > min_ovf + options_.overflow_rise;
    if (hpwl_blew || ovf_rose) return Verdict::Diverged;
  }

  ring_[head_] = {hpwl, overflow};
  head_ = (head_ + 1) % ring_.size();
  size_ = std::min(size_ + 1, ring_.size());
  return Verdict::Healthy;
}

void HealthMonitor::reset() {
  head_ = 0;
  size_ = 0;
}

}  // namespace dtp::robust
