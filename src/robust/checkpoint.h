// Checkpoint/rollback for the placement loop (DESIGN.md §7).
//
// A Checkpoint snapshots the full optimization state — cell coordinates, the
// driver's scalar state (lambda, timing mix, ...), and an opaque optimizer
// StateBlob — and seals it with an FNV-1a checksum over every payload byte.
// restore() refuses a checkpoint whose checksum no longer matches (bit rot,
// or the FaultInjector's `checkpoint` site), so a corrupted snapshot is
// detected instead of silently resurrecting garbage.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace dtp::robust {

// Opaque component state: scalars plus named-by-position vectors.  The
// optimizers serialize into this so the checkpoint layer needs no knowledge
// of Nesterov/Adam internals.
struct StateBlob {
  std::vector<double> scalars;
  std::vector<std::vector<double>> vectors;

  void clear() {
    scalars.clear();
    vectors.clear();
  }
};

inline constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;

// FNV-1a over raw bytes; chainable via the running-hash argument.
uint64_t fnv1a64(const void* data, size_t bytes, uint64_t h = kFnvOffset);
uint64_t hash_doubles(std::span<const double> v, uint64_t h = kFnvOffset);

class Checkpoint {
 public:
  bool valid() const { return iter_ >= 0; }
  int iter() const { return iter_; }

  // Copies the state and seals the checksum.
  void capture(int iter, std::span<const double> x, std::span<const double> y,
               std::span<const double> scalars, const StateBlob& opt);

  // True iff the sealed checksum still matches the payload.
  bool verify() const;

  // Copies the state back out; false (and no writes) if invalid or corrupt.
  // Output spans must match the captured sizes.
  bool restore(std::span<double> x, std::span<double> y,
               std::span<double> scalars, StateBlob& opt) const;

  void invalidate() { iter_ = -1; }

  // Direct payload access for the fault-injection harness (corrupting after
  // seal makes verify() fail, which is the point).
  std::vector<double>& mutable_x() { return x_; }

 private:
  uint64_t compute_checksum() const;

  int iter_ = -1;
  std::vector<double> x_, y_, scalars_;
  StateBlob opt_;
  uint64_t checksum_ = 0;
};

}  // namespace dtp::robust
