// Checkpoint/rollback for the placement loop (DESIGN.md §7).
//
// A Checkpoint snapshots the full optimization state — cell coordinates, the
// driver's scalar state (lambda, timing mix, ...), and an opaque optimizer
// StateBlob — and seals it with an FNV-1a checksum over every payload byte.
// restore() refuses a checkpoint whose checksum no longer matches (bit rot,
// or the FaultInjector's `checkpoint` site), so a corrupted snapshot is
// detected instead of silently resurrecting garbage.
//
// save_file()/load_file() persist a sealed checkpoint as a small binary
// artifact (magic + sizes + raw doubles + the sealed checksum), which is what
// `dtp_place --resume` and the dtp_serve job journal recover from.  load_file
// restores the *stored* checksum, so a file corrupted on disk loads fine but
// fails verify() — the same detection path as in-memory corruption.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace dtp::robust {

// Opaque component state: scalars plus named-by-position vectors.  The
// optimizers serialize into this so the checkpoint layer needs no knowledge
// of Nesterov/Adam internals.
struct StateBlob {
  std::vector<double> scalars;
  std::vector<std::vector<double>> vectors;

  void clear() {
    scalars.clear();
    vectors.clear();
  }
};

inline constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;

// FNV-1a over raw bytes; chainable via the running-hash argument.
uint64_t fnv1a64(const void* data, size_t bytes, uint64_t h = kFnvOffset);
uint64_t hash_doubles(std::span<const double> v, uint64_t h = kFnvOffset);

class Checkpoint {
 public:
  bool valid() const { return iter_ >= 0; }
  int iter() const { return iter_; }

  // Copies the state and seals the checksum.
  void capture(int iter, std::span<const double> x, std::span<const double> y,
               std::span<const double> scalars, const StateBlob& opt);

  // True iff the sealed checksum still matches the payload.
  bool verify() const;

  // Copies the state back out; false (and no writes) if invalid or corrupt.
  // Output spans must match the captured sizes.
  bool restore(std::span<double> x, std::span<double> y,
               std::span<double> scalars, StateBlob& opt) const;

  void invalidate() { iter_ = -1; }

  // Captured payload sizes, for callers that must pre-size restore() spans
  // (resume paths where the design is reconstructed before the restore).
  size_t num_cells() const { return x_.size(); }
  size_t num_scalars() const { return scalars_.size(); }
  uint64_t checksum() const { return checksum_; }

  // Persists the sealed checkpoint; false on any IO failure.
  bool save_file(const std::string& path) const;
  // Loads a checkpoint from disk.  Returns false (with a diagnostic in
  // `error`) on IO failure, bad magic, or implausible/truncated payload; a
  // bit-rotted payload *loads* but fails verify(), exactly like in-memory
  // corruption, so callers distinguish "unreadable" from "checksum mismatch".
  bool load_file(const std::string& path, std::string* error = nullptr);

  // Direct payload access for the fault-injection harness (corrupting after
  // seal makes verify() fail, which is the point).
  std::vector<double>& mutable_x() { return x_; }

 private:
  uint64_t compute_checksum() const;

  int iter_ = -1;
  std::vector<double> x_, y_, scalars_;
  StateBlob opt_;
  uint64_t checksum_ = 0;
};

}  // namespace dtp::robust
