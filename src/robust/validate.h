// Design pre-flight validation (DESIGN.md §7).
//
// validate() inspects a Design before it reaches the placement kernels and
// returns *structured* issues instead of letting broken input assert deep in
// a kernel (a NaN coordinate becomes undefined behaviour the moment the
// density model casts it to a bin index).  Issues are split into fatal errors
// — the placer refuses to run — and warnings (degenerate-but-survivable
// shapes such as single-pin nets or an all-fixed design, which the placer
// handles explicitly).
//
// dtp_place runs it up front for a clean one-line diagnostic + non-zero exit;
// the GlobalPlacer constructor runs it again (guards enabled) and throws
// ValidationError so library users get the same protection.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace dtp::robust {

enum class ValidationCode : uint8_t {
  EmptyNetlist,        // no cells at all: nothing to place (fatal)
  PositionArraySize,   // cell_x/cell_y not sized to the netlist (fatal)
  NonFinitePosition,   // NaN/Inf initial coordinate (fatal)
  EmptyCore,           // zero/negative-area core with movable cells (fatal)
  ZeroAreaCell,        // movable cell with non-positive width/height (fatal)
  FixedOutsideCore,    // fixed cell far outside the core region (fatal)
  DanglingPin,         // net lists a pin not connected back to it (fatal)
  DegenerateNet,       // net with fewer than two pins (warning)
  UndrivenNet,         // net with sinks but no driver pin (warning)
  NoMovableCells,      // every cell fixed: placement is a no-op (warning)
  BadClockPeriod,      // non-positive or non-finite clock period (warning)
};

const char* validation_code_name(ValidationCode code);

struct ValidationIssue {
  ValidationCode code;
  bool fatal = false;
  int id = -1;  // offending cell/net id, -1 when design-wide
  std::string message;
};

struct ValidationReport {
  std::vector<ValidationIssue> issues;
  size_t num_fatal = 0;

  bool ok() const { return num_fatal == 0; }
  size_t num_warnings() const { return issues.size() - num_fatal; }
  // Human-readable summary, one issue per line (capped at max_lines).
  std::string to_string(size_t max_lines = 10) const;
};

ValidationReport validate(const netlist::Design& design);

class ValidationError : public std::runtime_error {
 public:
  explicit ValidationError(ValidationReport report);
  const ValidationReport& report() const { return report_; }

 private:
  ValidationReport report_;
};

}  // namespace dtp::robust
