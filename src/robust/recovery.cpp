#include "robust/recovery.h"

#include <algorithm>

#include "common/logger.h"
#include "obs/metrics.h"

namespace dtp::robust {

const char* run_health_name(RunHealth h) {
  switch (h) {
    case RunHealth::Ok: return "ok";
    case RunHealth::Recovered: return "recovered";
    case RunHealth::Degraded: return "degraded";
    case RunHealth::Failed: return "failed";
  }
  return "?";
}

RecoveryController::RecoveryController(const RecoveryOptions& options)
    : options_(options),
      injector_(options.fault_seed),
      monitor_(options.health),
      faults_counter_(
          obs::MetricsRegistry::instance().counter("robust.faults_detected")),
      rollbacks_counter_(
          obs::MetricsRegistry::instance().counter("robust.rollbacks")),
      fallbacks_counter_(
          obs::MetricsRegistry::instance().counter("robust.timing_fallbacks")),
      ckpt_corrupt_counter_(
          obs::MetricsRegistry::instance().counter("robust.checkpoint_corrupt")),
      aborts_counter_(obs::MetricsRegistry::instance().counter("robust.aborts")) {
  if (!options_.fault_spec.empty()) {
    injector_ = FaultInjector::parse(options_.fault_spec, options_.fault_seed);
  } else if (auto env = FaultInjector::from_env()) {
    injector_ = *env;
  }
}

RecoveryController::Action RecoveryController::on_fault(int iter,
                                                        const char* kind,
                                                        std::string detail) {
  faults_counter_.add();
  if (rollbacks_ >= options_.max_recoveries) {
    aborts_counter_.add();
    health_ = RunHealth::Failed;
    DTP_LOG_ERROR(
        "placer fault (%s) at iter %d with retry budget exhausted "
        "(%d rollbacks): aborting to best checkpoint",
        kind, iter, rollbacks_);
    record({iter, "abort", "abort", step_scale_, std::move(detail)});
    return Action::Abort;
  }
  ++rollbacks_;
  rollbacks_counter_.add();
  step_scale_ *= options_.step_halving;
  raise_health(RunHealth::Recovered);
  DTP_LOG_WARN(
      "placer fault (%s) at iter %d: rolling back to last checkpoint, "
      "step scale -> %.4g (%d/%d recoveries used)",
      kind, iter, step_scale_, rollbacks_, options_.max_recoveries);
  record({iter, kind, "rollback", step_scale_, std::move(detail)});
  return Action::Rollback;
}

bool RecoveryController::on_timing_grad(int iter, size_t nonfinite,
                                        size_t clipped, size_t nonzero) {
  const bool clip_bad =
      nonzero > 0 && static_cast<double>(clipped) >
                         options_.clip_fraction_bad * static_cast<double>(nonzero);
  const bool bad = nonfinite > 0 || clip_bad;
  if (!bad) {
    consecutive_bad_timing_ = 0;
    return false;
  }
  ++consecutive_bad_timing_;
  if (consecutive_bad_timing_ < options_.timing_fault_threshold) return false;

  consecutive_bad_timing_ = 0;
  ++timing_fallbacks_;
  fallbacks_counter_.add();
  std::string detail = nonfinite > 0
                           ? std::to_string(nonfinite) + " non-finite entries"
                           : std::to_string(clipped) + "/" +
                                 std::to_string(nonzero) + " clipped";
  if (timing_fallbacks_ >= options_.max_timing_fallbacks) {
    timing_suspended_until_ = INT_MAX;
    raise_health(RunHealth::Degraded);
    DTP_LOG_WARN(
        "timing gradients degenerate at iter %d (%s): disabling timing forces "
        "for the rest of the run (fallback %d/%d)",
        iter, detail.c_str(), timing_fallbacks_, options_.max_timing_fallbacks);
    record({iter, "timing_grad", "degrade", step_scale_,
            detail + "; permanent wirelength-only fallback"});
  } else {
    timing_suspended_until_ = iter + options_.timing_cooldown;
    raise_health(RunHealth::Recovered);
    DTP_LOG_WARN(
        "timing gradients degenerate at iter %d (%s): wirelength-only forces "
        "until iter %d (fallback %d/%d)",
        iter, detail.c_str(), timing_suspended_until_, timing_fallbacks_,
        options_.max_timing_fallbacks);
    record({iter, "timing_grad", "degrade", step_scale_, std::move(detail)});
  }
  return true;
}

bool RecoveryController::timing_suspended(int iter) {
  if (timing_suspended_until_ < 0) return false;
  if (timing_suspended_until_ != INT_MAX && iter >= timing_suspended_until_) {
    DTP_LOG_INFO("timing forces re-enabled at iter %d after cooldown", iter);
    record({iter, "timing_restored", "resume", step_scale_, ""});
    timing_suspended_until_ = -1;
    return false;
  }
  return true;
}

void RecoveryController::note_checkpoint_corrupt(int iter) {
  ckpt_corrupt_counter_.add();
  raise_health(RunHealth::Recovered);
  DTP_LOG_WARN(
      "checkpoint checksum mismatch at iter %d: discarding snapshot, "
      "continuing from scrubbed live state",
      iter);
  record({iter, "checkpoint_corrupt", "scrub", step_scale_, ""});
}

void RecoveryController::record(RecoveryEvent ev) {
  events_.push_back(std::move(ev));
}

}  // namespace dtp::robust
