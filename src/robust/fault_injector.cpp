#include "robust/fault_injector.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace dtp::robust {

namespace {

// splitmix64: the stateless hash behind deterministic entry selection.
uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t fault_hash(uint64_t seed, FaultSite site, int tick, uint64_t k) {
  uint64_t h = mix64(seed ^ (static_cast<uint64_t>(site) << 56));
  h = mix64(h ^ static_cast<uint64_t>(static_cast<int64_t>(tick)));
  return mix64(h ^ k);
}

}  // namespace

const char* fault_site_name(FaultSite site) {
  switch (site) {
    case FaultSite::TimingGrad: return "timing_grad";
    case FaultSite::TotalGrad: return "total_grad";
    case FaultSite::Position: return "position";
    case FaultSite::LutAdjoint: return "lut";
    case FaultSite::Checkpoint: return "checkpoint";
  }
  return "?";
}

std::optional<FaultSite> parse_fault_site(const std::string& name) {
  if (name == "timing_grad") return FaultSite::TimingGrad;
  if (name == "total_grad") return FaultSite::TotalGrad;
  if (name == "position") return FaultSite::Position;
  if (name == "lut") return FaultSite::LutAdjoint;
  if (name == "checkpoint") return FaultSite::Checkpoint;
  return std::nullopt;
}

FaultInjector FaultInjector::parse(const std::string& spec, uint64_t seed) {
  FaultInjector inj(seed);
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    std::string item = spec.substr(pos, end - pos);
    pos = end + 1;
    const auto is_space = [](char c) { return c == ' ' || c == '\t'; };
    while (!item.empty() && is_space(item.front())) item.erase(item.begin());
    while (!item.empty() && is_space(item.back())) item.pop_back();
    if (item.empty()) continue;

    const size_t at = item.find('@');
    if (at == std::string::npos)
      throw std::runtime_error("fault spec '" + item + "': missing '@tick'");
    const auto site = parse_fault_site(item.substr(0, at));
    if (!site)
      throw std::runtime_error("fault spec '" + item + "': unknown site '" +
                               item.substr(0, at) + "'");
    FaultSpec fs;
    fs.site = *site;

    std::string rest = item.substr(at + 1);
    // Optional suffixes, in either order: +count (or +forever), *magnitude.
    const size_t star = rest.find('*');
    if (star != std::string::npos) {
      fs.magnitude = std::strtod(rest.c_str() + star + 1, nullptr);
      if (fs.magnitude == 0.0)
        throw std::runtime_error("fault spec '" + item + "': bad magnitude");
      rest = rest.substr(0, star);
    }
    const size_t plus = rest.find('+');
    if (plus != std::string::npos) {
      const std::string cnt = rest.substr(plus + 1);
      if (cnt == "forever") {
        fs.count = -1;
      } else {
        fs.count = std::atoi(cnt.c_str());
        if (fs.count <= 0)
          throw std::runtime_error("fault spec '" + item + "': bad count");
      }
      rest = rest.substr(0, plus);
    }
    char* parsed_end = nullptr;
    fs.start = static_cast<int>(std::strtol(rest.c_str(), &parsed_end, 10));
    if (parsed_end == rest.c_str() || fs.start < 0)
      throw std::runtime_error("fault spec '" + item + "': bad tick '" + rest +
                               "'");
    inj.add(fs);
  }
  return inj;
}

std::optional<FaultInjector> FaultInjector::from_env() {
  const char* spec = std::getenv("DTP_FAULTS");
  if (spec == nullptr || spec[0] == '\0') return std::nullopt;
  uint64_t seed = 1;
  if (const char* s = std::getenv("DTP_FAULT_SEED"))
    seed = std::strtoull(s, nullptr, 10);
  return parse(spec, seed);
}

bool FaultInjector::fires(FaultSite site, int tick) const {
  for (const FaultSpec& fs : specs_)
    if (fs.site == site && fs.fires_at(tick)) return true;
  return false;
}

size_t FaultInjector::corrupt(FaultSite site, int tick, std::span<double> a,
                              std::span<double> b) {
  const FaultSpec* active = nullptr;
  for (const FaultSpec& fs : specs_)
    if (fs.site == site && fs.fires_at(tick)) {
      active = &fs;
      break;
    }
  if (active == nullptr) return 0;

  const size_t n = a.size() + b.size();
  if (n == 0) return 0;
  const size_t hits = std::max<size_t>(1, n / 64);
  auto entry = [&](size_t i) -> double& {
    return i < a.size() ? a[i] : b[i - a.size()];
  };
  size_t applied = 0;
  for (size_t k = 0; k < hits; ++k) {
    const size_t i =
        static_cast<size_t>(fault_hash(seed_, site, tick, k) % n);
    double& v = entry(i);
    if (std::isnan(active->magnitude))
      v = std::numeric_limits<double>::quiet_NaN();
    else
      v *= active->magnitude;
    ++applied;
  }
  corruptions_ += applied;
  return applied;
}

}  // namespace dtp::robust
