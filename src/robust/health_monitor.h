// Numerical health checks for the placement loop (DESIGN.md §7).
//
// Two kinds of checks, both designed to be near-free on the healthy path:
//
//  * non-finite detection over coordinate/gradient arrays.  The fast path
//    sums the array and tests the single sum — NaN and Inf both poison a
//    float sum, so one isfinite() covers the whole array; the O(n) element
//    scan runs only when the sum is suspicious (which a finite-overflow
//    false positive then clears).
//
//  * divergence detection against a trailing window of (HPWL, overflow)
//    samples.  A healthy run's HPWL moves slowly within any 20-iteration
//    window and overflow is (noisily) monotone decreasing; a corrupted step
//    blows HPWL up by multiples or bounces overflow sharply upward.  Both
//    thresholds are far outside healthy variation so the monitor never
//    perturbs an un-faulted run.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace dtp::robust {

enum class Verdict : uint8_t { Healthy, NonFinite, Diverged };

const char* verdict_name(Verdict v);

struct HealthOptions {
  int window = 20;              // trailing iterations for the divergence ref
  double hpwl_blowup = 8.0;     // hpwl > blowup * window-min  -> Diverged
  double overflow_rise = 0.25;  // overflow > window-min + rise -> Diverged
};

class HealthMonitor {
 public:
  explicit HealthMonitor(HealthOptions options = {});

  // True iff every element of both spans is finite.  Fast path: one float
  // sum + one isfinite.
  static bool all_finite(std::span<const double> a, std::span<const double> b);
  static bool all_finite(std::span<const double> a) { return all_finite(a, {}); }
  static size_t count_nonfinite(std::span<const double> a,
                                std::span<const double> b);

  // Feeds one end-of-iteration sample and tests it against the trailing
  // window.  Diverged samples are not added to the window (they would drag
  // the reference up); the caller resets the window after a rollback.
  Verdict observe(double hpwl, double overflow);
  void reset();

 private:
  HealthOptions options_;
  std::vector<std::pair<double, double>> ring_;  // (hpwl, overflow)
  size_t head_ = 0;
  size_t size_ = 0;
};

}  // namespace dtp::robust
