// Recovery policy for the placement loop (DESIGN.md §7).
//
// The RecoveryController owns the fault-tolerance state machine
//
//     healthy --fault--> retry (rollback + step-halving, bounded budget)
//        |                  |
//        |            budget exhausted
//        v                  v
//     degraded  <----  failed (clean abort)
//
// plus the *graceful timing degradation* track: when the differentiable
// timer's backward pass produces non-finite (or pathologically clipped)
// gradients on consecutive iterations, timing forces are suspended for a
// cooldown window — the placer falls back to pure wirelength+density forces
// instead of crashing or diverging — and re-enabled afterwards.  Repeated
// degradations turn timing off for good and mark the run Degraded.
//
// The controller only decides; the GlobalPlacer loop performs the actual
// rollback/suspension.  Every decision is counted in the metrics registry
// (robust.*) and recorded as a RecoveryEvent for the JSONL run artifacts.
#pragma once

#include <algorithm>
#include <climits>
#include <string>
#include <vector>

#include "robust/fault_injector.h"
#include "robust/health_monitor.h"

namespace dtp::obs {
class Counter;
}

namespace dtp::robust {

enum class RunHealth : uint8_t {
  Ok,         // no fault ever detected
  Recovered,  // faults detected, all recovered; result is trustworthy
  Degraded,   // finished, but timing forces were permanently disabled
  Failed,     // retry budget exhausted; best-known state was restored
};

const char* run_health_name(RunHealth h);

// One recovery decision, for the metrics registry / JSONL `recovery` records.
struct RecoveryEvent {
  int iter = 0;
  std::string kind;    // nan_grad | nan_position | divergence | timing_grad |
                       // checkpoint_corrupt | abort | timing_restored
  std::string action;  // rollback | degrade | resume | scrub | abort
  double step_scale = 1.0;
  std::string detail;
};

struct RecoveryOptions {
  bool enabled = true;          // master switch for all guards
  int max_recoveries = 5;       // rollback budget before the run fails
  bool timing_fallback = true;  // allow DiffTiming -> wirelength-only forces
  int checkpoint_period = 20;   // snapshot every N healthy iterations
  int timing_fault_threshold = 2;  // consecutive bad backward passes to degrade
  int timing_cooldown = 50;        // iterations of WL-only forces per degrade
  int max_timing_fallbacks = 3;    // then timing stays off (run Degraded)
  double clip_fraction_bad = 0.95; // fraction of clipped nonzero timing grads
                                   // that counts a backward pass as bad
  double step_halving = 0.5;       // step-scale multiplier per rollback
  HealthOptions health;
  std::string fault_spec;  // FaultInjector::parse() grammar; "" = env/none
  uint64_t fault_seed = 1;
};

class RecoveryController {
 public:
  enum class Action : uint8_t { Rollback, Abort };

  explicit RecoveryController(const RecoveryOptions& options);

  bool enabled() const { return options_.enabled; }
  FaultInjector& injector() { return injector_; }
  HealthMonitor& monitor() { return monitor_; }

  // Snapshot on iteration 0 and every checkpoint_period-th iteration after.
  bool should_checkpoint(int iter) const {
    return iter % std::max(1, options_.checkpoint_period) == 0;
  }

  // A fault was detected at `iter`.  Burns one unit of the retry budget and
  // halves the step scale; Abort once the budget is exhausted.
  Action on_fault(int iter, const char* kind, std::string detail);

  // Timing-gradient health, fed once per timing iteration.  Returns true if
  // this report tripped a degradation (timing must be suspended).
  bool on_timing_grad(int iter, size_t nonfinite, size_t clipped,
                      size_t nonzero);

  // True while timing forces are suspended; emits the resume event when the
  // cooldown expires.
  bool timing_suspended(int iter);

  void note_checkpoint_corrupt(int iter);
  void record(RecoveryEvent ev);

  double step_scale() const { return step_scale_; }
  int rollbacks() const { return rollbacks_; }
  int timing_fallbacks() const { return timing_fallbacks_; }
  RunHealth health() const { return health_; }
  const std::vector<RecoveryEvent>& events() const { return events_; }
  std::vector<RecoveryEvent> take_events() { return std::move(events_); }

 private:
  void raise_health(RunHealth h) {
    if (static_cast<uint8_t>(h) > static_cast<uint8_t>(health_)) health_ = h;
  }

  RecoveryOptions options_;
  FaultInjector injector_;
  HealthMonitor monitor_;
  std::vector<RecoveryEvent> events_;

  RunHealth health_ = RunHealth::Ok;
  double step_scale_ = 1.0;
  int rollbacks_ = 0;
  int timing_fallbacks_ = 0;
  int consecutive_bad_timing_ = 0;
  int timing_suspended_until_ = -1;  // exclusive; INT_MAX = permanent

  obs::Counter& faults_counter_;
  obs::Counter& rollbacks_counter_;
  obs::Counter& fallbacks_counter_;
  obs::Counter& ckpt_corrupt_counter_;
  obs::Counter& aborts_counter_;
};

}  // namespace dtp::robust
