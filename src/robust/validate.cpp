#include "robust/validate.h"

#include <algorithm>
#include <cmath>

namespace dtp::robust {

const char* validation_code_name(ValidationCode code) {
  switch (code) {
    case ValidationCode::EmptyNetlist: return "empty_netlist";
    case ValidationCode::PositionArraySize: return "position_array_size";
    case ValidationCode::NonFinitePosition: return "non_finite_position";
    case ValidationCode::EmptyCore: return "empty_core";
    case ValidationCode::ZeroAreaCell: return "zero_area_cell";
    case ValidationCode::FixedOutsideCore: return "fixed_outside_core";
    case ValidationCode::DanglingPin: return "dangling_pin";
    case ValidationCode::DegenerateNet: return "degenerate_net";
    case ValidationCode::UndrivenNet: return "undriven_net";
    case ValidationCode::NoMovableCells: return "no_movable_cells";
    case ValidationCode::BadClockPeriod: return "bad_clock_period";
  }
  return "?";
}

std::string ValidationReport::to_string(size_t max_lines) const {
  std::string out;
  size_t shown = 0;
  for (const ValidationIssue& issue : issues) {
    if (shown++ == max_lines) {
      out += "  ... and " + std::to_string(issues.size() - max_lines) +
             " more issue(s)\n";
      break;
    }
    out += std::string("  [") + (issue.fatal ? "error" : "warn") + "] " +
           validation_code_name(issue.code) + ": " + issue.message + "\n";
  }
  return out;
}

namespace {

void add(ValidationReport& report, ValidationCode code, bool fatal, int id,
         std::string message) {
  report.issues.push_back({code, fatal, id, std::move(message)});
  if (fatal) ++report.num_fatal;
}

}  // namespace

ValidationReport validate(const netlist::Design& design) {
  ValidationReport report;
  const netlist::Netlist& nl = design.netlist;
  const size_t n = nl.num_cells();

  if (n == 0) {
    // Downstream stages size grids and arrays from the cell count; an empty
    // netlist (typically a parse that matched nothing) must stop here.
    add(report, ValidationCode::EmptyNetlist, true, -1,
        "netlist has no cells; nothing to place");
    return report;
  }
  if (design.cell_x.size() != n || design.cell_y.size() != n) {
    add(report, ValidationCode::PositionArraySize, true, -1,
        "cell_x/cell_y hold " + std::to_string(design.cell_x.size()) + "/" +
            std::to_string(design.cell_y.size()) + " entries for " +
            std::to_string(n) + " cells (init_positions() not called?)");
    return report;  // later checks index the position arrays
  }

  const Rect& core = design.floorplan.core;
  size_t movable = 0;
  // Fixed cells (IO pads ringed on the boundary, macros) may legitimately
  // touch or slightly overhang the core edge; flag only cells clearly lost
  // in space — more than one core-margin away from the inflated core box.
  const double margin =
      std::max(design.floorplan.row_height,
               0.05 * std::max(core.width(), core.height()));
  for (size_t c = 0; c < n; ++c) {
    const auto id = static_cast<netlist::CellId>(c);
    const netlist::Cell& cell = nl.cell(id);
    const liberty::LibCell& master = nl.lib_cell_of(id);
    if (!std::isfinite(design.cell_x[c]) || !std::isfinite(design.cell_y[c])) {
      add(report, ValidationCode::NonFinitePosition, true, static_cast<int>(c),
          "cell '" + cell.name + "' has a non-finite initial coordinate");
      continue;
    }
    if (cell.fixed) {
      const double w = std::max(0.0, master.width);
      const double h = std::max(0.0, master.height);
      if (design.cell_x[c] + w < core.xl - margin ||
          design.cell_x[c] > core.xh + margin ||
          design.cell_y[c] + h < core.yl - margin ||
          design.cell_y[c] > core.yh + margin) {
        add(report, ValidationCode::FixedOutsideCore, true, static_cast<int>(c),
            "fixed cell '" + cell.name + "' at (" +
                std::to_string(design.cell_x[c]) + ", " +
                std::to_string(design.cell_y[c]) + ") lies outside the core");
      }
    } else {
      ++movable;
      if (master.width <= 0.0 || master.height <= 0.0) {
        add(report, ValidationCode::ZeroAreaCell, true, static_cast<int>(c),
            "movable cell '" + cell.name + "' (master '" + master.name +
                "') has non-positive dimensions " +
                std::to_string(master.width) + " x " +
                std::to_string(master.height));
      }
    }
  }

  if (movable > 0 && (core.width() <= 0.0 || core.height() <= 0.0)) {
    add(report, ValidationCode::EmptyCore, true, -1,
        "core region has non-positive area but the design has " +
            std::to_string(movable) + " movable cells");
  }
  if (movable == 0 && n > 0) {
    add(report, ValidationCode::NoMovableCells, false, -1,
        "every cell is fixed; placement is a no-op");
  }

  for (size_t e = 0; e < nl.num_nets(); ++e) {
    const netlist::Net& net = nl.net(static_cast<netlist::NetId>(e));
    for (const netlist::PinId p : net.pins) {
      if (p < 0 || static_cast<size_t>(p) >= nl.num_pins() ||
          nl.pin(p).net != static_cast<netlist::NetId>(e)) {
        add(report, ValidationCode::DanglingPin, true, static_cast<int>(e),
            "net '" + net.name + "' lists a pin not connected back to it");
        break;
      }
    }
    if (net.pins.size() < 2) {
      add(report, ValidationCode::DegenerateNet, false, static_cast<int>(e),
          "net '" + net.name + "' has " + std::to_string(net.pins.size()) +
              " pin(s)");
    } else if (net.driver == netlist::kInvalidId) {
      add(report, ValidationCode::UndrivenNet, false, static_cast<int>(e),
          "net '" + net.name + "' has no driver pin");
    }
  }

  if (!std::isfinite(design.constraints.clock_period) ||
      design.constraints.clock_period <= 0.0) {
    add(report, ValidationCode::BadClockPeriod, false, -1,
        "clock period " + std::to_string(design.constraints.clock_period) +
            " ns is not positive");
  }

  return report;
}

ValidationError::ValidationError(ValidationReport report)
    : std::runtime_error("design validation failed (" +
                         std::to_string(report.num_fatal) + " fatal issue(s)):\n" +
                         report.to_string()),
      report_(std::move(report)) {}

}  // namespace dtp::robust
