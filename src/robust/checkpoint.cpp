#include "robust/checkpoint.h"

#include <algorithm>
#include <cstring>

namespace dtp::robust {

uint64_t fnv1a64(const void* data, size_t bytes, uint64_t h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

uint64_t hash_doubles(std::span<const double> v, uint64_t h) {
  return fnv1a64(v.data(), v.size() * sizeof(double), h);
}

void Checkpoint::capture(int iter, std::span<const double> x,
                         std::span<const double> y,
                         std::span<const double> scalars,
                         const StateBlob& opt) {
  iter_ = iter;
  x_.assign(x.begin(), x.end());
  y_.assign(y.begin(), y.end());
  scalars_.assign(scalars.begin(), scalars.end());
  opt_ = opt;
  checksum_ = compute_checksum();
}

uint64_t Checkpoint::compute_checksum() const {
  uint64_t h = kFnvOffset;
  h = fnv1a64(&iter_, sizeof(iter_), h);
  h = hash_doubles(x_, h);
  h = hash_doubles(y_, h);
  h = hash_doubles(scalars_, h);
  h = hash_doubles(opt_.scalars, h);
  for (const auto& v : opt_.vectors) {
    const size_t n = v.size();
    h = fnv1a64(&n, sizeof(n), h);
    h = hash_doubles(v, h);
  }
  return h;
}

bool Checkpoint::verify() const {
  return valid() && compute_checksum() == checksum_;
}

bool Checkpoint::restore(std::span<double> x, std::span<double> y,
                         std::span<double> scalars, StateBlob& opt) const {
  if (!verify()) return false;
  if (x.size() != x_.size() || y.size() != y_.size() ||
      scalars.size() != scalars_.size())
    return false;
  std::copy(x_.begin(), x_.end(), x.begin());
  std::copy(y_.begin(), y_.end(), y.begin());
  std::copy(scalars_.begin(), scalars_.end(), scalars.begin());
  opt = opt_;
  return true;
}

}  // namespace dtp::robust
