#include "robust/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace dtp::robust {

uint64_t fnv1a64(const void* data, size_t bytes, uint64_t h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

uint64_t hash_doubles(std::span<const double> v, uint64_t h) {
  return fnv1a64(v.data(), v.size() * sizeof(double), h);
}

void Checkpoint::capture(int iter, std::span<const double> x,
                         std::span<const double> y,
                         std::span<const double> scalars,
                         const StateBlob& opt) {
  iter_ = iter;
  x_.assign(x.begin(), x.end());
  y_.assign(y.begin(), y.end());
  scalars_.assign(scalars.begin(), scalars.end());
  opt_ = opt;
  checksum_ = compute_checksum();
}

uint64_t Checkpoint::compute_checksum() const {
  uint64_t h = kFnvOffset;
  h = fnv1a64(&iter_, sizeof(iter_), h);
  h = hash_doubles(x_, h);
  h = hash_doubles(y_, h);
  h = hash_doubles(scalars_, h);
  h = hash_doubles(opt_.scalars, h);
  for (const auto& v : opt_.vectors) {
    const size_t n = v.size();
    h = fnv1a64(&n, sizeof(n), h);
    h = hash_doubles(v, h);
  }
  return h;
}

bool Checkpoint::verify() const {
  return valid() && compute_checksum() == checksum_;
}

bool Checkpoint::restore(std::span<double> x, std::span<double> y,
                         std::span<double> scalars, StateBlob& opt) const {
  if (!verify()) return false;
  if (x.size() != x_.size() || y.size() != y_.size() ||
      scalars.size() != scalars_.size())
    return false;
  std::copy(x_.begin(), x_.end(), x.begin());
  std::copy(y_.begin(), y_.end(), y.begin());
  std::copy(scalars_.begin(), scalars_.end(), scalars.begin());
  opt = opt_;
  return true;
}

namespace {

// On-disk layout: magic, version, iter, five section counts, per-vector
// lengths, then every payload double in capture order, then the sealed
// checksum.  Little-endian native doubles — the artifact resumes on the
// machine (or an identical one) that wrote it, not across architectures.
constexpr char kMagic[8] = {'D', 'T', 'P', 'C', 'K', 'P', '0', '1'};
// A section length beyond this is a corrupt/hostile header, not a real
// checkpoint: refuse before std::vector::resize turns it into an OOM.
constexpr uint64_t kMaxSection = 1ull << 32;

bool write_u64(std::FILE* f, uint64_t v) {
  return std::fwrite(&v, sizeof(v), 1, f) == 1;
}
bool read_u64(std::FILE* f, uint64_t* v) {
  return std::fread(v, sizeof(*v), 1, f) == 1;
}
bool write_doubles(std::FILE* f, const std::vector<double>& v) {
  return v.empty() || std::fwrite(v.data(), sizeof(double), v.size(), f) == v.size();
}
bool read_doubles(std::FILE* f, std::vector<double>& v, uint64_t n) {
  if (n > kMaxSection) return false;
  v.resize(static_cast<size_t>(n));
  return n == 0 || std::fread(v.data(), sizeof(double), v.size(), f) == v.size();
}

}  // namespace

bool Checkpoint::save_file(const std::string& path) const {
  if (!valid()) return false;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = std::fwrite(kMagic, sizeof(kMagic), 1, f) == 1;
  ok = ok && write_u64(f, 1);  // version
  ok = ok && write_u64(f, static_cast<uint64_t>(iter_));
  ok = ok && write_u64(f, x_.size()) && write_u64(f, y_.size()) &&
       write_u64(f, scalars_.size()) && write_u64(f, opt_.scalars.size()) &&
       write_u64(f, opt_.vectors.size());
  for (const auto& v : opt_.vectors) ok = ok && write_u64(f, v.size());
  ok = ok && write_doubles(f, x_) && write_doubles(f, y_) &&
       write_doubles(f, scalars_) && write_doubles(f, opt_.scalars);
  for (const auto& v : opt_.vectors) ok = ok && write_doubles(f, v);
  ok = ok && write_u64(f, checksum_);
  ok = (std::fclose(f) == 0) && ok;
  return ok;
}

bool Checkpoint::load_file(const std::string& path, std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    invalidate();
    return false;
  };
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return fail("cannot open " + path);
  char magic[8];
  uint64_t version = 0, iter = 0;
  uint64_t nx = 0, ny = 0, nsc = 0, nos = 0, nov = 0;
  bool ok = std::fread(magic, sizeof(magic), 1, f) == 1 &&
            std::memcmp(magic, kMagic, sizeof(kMagic)) == 0;
  if (!ok) {
    std::fclose(f);
    return fail(path + " is not a dtp checkpoint (bad magic)");
  }
  ok = read_u64(f, &version) && version == 1;
  ok = ok && read_u64(f, &iter) && read_u64(f, &nx) && read_u64(f, &ny) &&
       read_u64(f, &nsc) && read_u64(f, &nos) && read_u64(f, &nov);
  ok = ok && nx <= kMaxSection && ny <= kMaxSection && nsc <= kMaxSection &&
       nos <= kMaxSection && nov <= 1024;
  std::vector<uint64_t> vec_sizes;
  if (ok) {
    vec_sizes.resize(static_cast<size_t>(nov));
    for (auto& n : vec_sizes) ok = ok && read_u64(f, &n);
  }
  ok = ok && read_doubles(f, x_, nx) && read_doubles(f, y_, ny) &&
       read_doubles(f, scalars_, nsc) && read_doubles(f, opt_.scalars, nos);
  if (ok) {
    opt_.vectors.resize(vec_sizes.size());
    for (size_t i = 0; i < vec_sizes.size(); ++i)
      ok = ok && read_doubles(f, opt_.vectors[i], vec_sizes[i]);
  }
  ok = ok && read_u64(f, &checksum_);
  std::fclose(f);
  if (!ok) return fail(path + " is truncated or has an implausible header");
  iter_ = static_cast<int>(iter);
  return true;
}

}  // namespace dtp::robust
