#include "dtimer/elmore_grad.h"

#include <vector>

#include "common/assert.h"
#include "common/smooth_math.h"

namespace dtp::dtimer {

void elmore_backward(const sta::NetTimingView& nt,
                     std::span<const double> g_delay,
                     std::span<const double> g_imp2, double g_load_root,
                     double r_unit, double c_unit, std::span<double> gx,
                     std::span<double> gy, ElmoreScratch scratch,
                     std::span<const double> g_beta) {
  const rsmt::SteinerTreeView& tree = nt.tree;
  const size_t m = tree.num_nodes();
  DTP_ASSERT(g_delay.size() == m && g_imp2.size() == m);
  DTP_ASSERT(g_beta.empty() || g_beta.size() == m);
  DTP_ASSERT(gx.size() == m && gy.size() == m);
  DTP_ASSERT(scratch.gbeta.size() >= m && scratch.gldelay.size() >= m &&
             scratch.gdelay.size() >= m && scratch.gload.size() >= m);
  const auto& topo = tree.topo_order;

  double* gbeta = scratch.gbeta.data();
  double* gldelay = scratch.gldelay.data();
  double* gdelay = scratch.gdelay.data();
  double* gload = scratch.gload.data();

  // Effective gImp2 with the clamp mask applied.
  auto imp2_grad = [&](size_t v) -> double {
    return nt.imp2_clamped[v] ? 0.0 : g_imp2[v];
  };

  // R1 (bottom-up): gBeta.
  for (size_t v = 0; v < m; ++v)
    gbeta[v] = 2.0 * imp2_grad(v) + (g_beta.empty() ? 0.0 : g_beta[v]);
  for (size_t k = m; k-- > 1;) {
    const int v = topo[k];
    const int p = tree.nodes[static_cast<size_t>(v)].parent;
    gbeta[static_cast<size_t>(p)] += gbeta[static_cast<size_t>(v)];
  }

  // R2 (top-down): gLDelay.
  for (size_t v = 0; v < m; ++v) gldelay[v] = 0.0;
  for (size_t k = 1; k < m; ++k) {
    const int v = topo[k];
    const int p = tree.nodes[static_cast<size_t>(v)].parent;
    gldelay[static_cast<size_t>(v)] = nt.edge_res[static_cast<size_t>(v)] *
                                          gbeta[static_cast<size_t>(v)] +
                                      gldelay[static_cast<size_t>(p)];
  }

  // R3 (bottom-up): gDelay.
  for (size_t v = 0; v < m; ++v) {
    gdelay[v] = g_delay[v] + nt.node_cap[v] * gldelay[v] -
                2.0 * nt.delay[v] * imp2_grad(v);
  }
  for (size_t k = m; k-- > 1;) {
    const int v = topo[k];
    const int p = tree.nodes[static_cast<size_t>(v)].parent;
    gdelay[static_cast<size_t>(p)] += gdelay[static_cast<size_t>(v)];
  }

  // R4 (top-down): gLoad.
  for (size_t v = 0; v < m; ++v) gload[v] = 0.0;
  gload[static_cast<size_t>(tree.root)] = g_load_root;
  for (size_t k = 1; k < m; ++k) {
    const int v = topo[k];
    const int p = tree.nodes[static_cast<size_t>(v)].parent;
    gload[static_cast<size_t>(v)] = nt.edge_res[static_cast<size_t>(v)] *
                                        gdelay[static_cast<size_t>(v)] +
                                    gload[static_cast<size_t>(p)];
  }

  // Pointwise: gCap, gRes -> edge-length gradient -> coordinates.
  for (size_t k = 1; k < m; ++k) {
    const size_t v = static_cast<size_t>(topo[k]);
    const size_t p = static_cast<size_t>(tree.nodes[v].parent);
    const double gcap_v = gload[v] + nt.delay[v] * gldelay[v];
    const double gcap_p = gload[p] + nt.delay[p] * gldelay[p];
    const double gres = nt.load[v] * gdelay[v] + nt.ldelay[v] * gbeta[v];
    const double glen = r_unit * gres + 0.5 * c_unit * (gcap_v + gcap_p);
    const Vec2& pv = tree.nodes[v].pos;
    const Vec2& pp = tree.nodes[p].pos;
    const double sx = sign(pv.x - pp.x);
    const double sy = sign(pv.y - pp.y);
    gx[v] += glen * sx;
    gx[p] -= glen * sx;
    gy[v] += glen * sy;
    gy[p] -= glen * sy;
  }
}

void elmore_backward(const sta::NetTiming& nt, std::span<const double> g_delay,
                     std::span<const double> g_imp2, double g_load_root,
                     double r_unit, double c_unit, std::span<double> gx,
                     std::span<double> gy, std::span<const double> g_beta) {
  const size_t m = nt.tree.num_nodes();
  thread_local std::vector<double> gbeta, gldelay, gdelay, gload;
  gbeta.resize(m);
  gldelay.resize(m);
  gdelay.resize(m);
  gload.resize(m);
  // The owning NetTiming is forward state already sized to m; view it without
  // resizing (const_cast is safe: the backward pass only reads it).
  sta::NetTiming& mut = const_cast<sta::NetTiming&>(nt);
  elmore_backward(sta::view_of(mut), g_delay, g_imp2, g_load_root, r_unit,
                  c_unit, gx, gy, ElmoreScratch{gbeta, gldelay, gdelay, gload},
                  g_beta);
}

}  // namespace dtp::dtimer
