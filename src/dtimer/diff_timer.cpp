#include "dtimer/diff_timer.h"

#include <cmath>

#include "common/assert.h"
#include "common/smooth_math.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "dtimer/elmore_grad.h"
#include "obs/activity/activity_tracker.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "robust/health_monitor.h"
#include "sta/cell_arc_eval.h"
#include "sta/timing_workspace.h"

namespace dtp::dtimer {

using netlist::CellId;
using netlist::NetId;
using netlist::PinId;
using sta::Arc;
using sta::ArcCandidate;
using sta::ArcKind;
using sta::LevelStat;

namespace {
// Live-span labels for the reverse level sweep; the profiler stores the
// pointer, so these must be string literals (overflow bucket for deep graphs).
constexpr int kNumBwdLevelLabels = 24;
const char* const kBwdLevelLabels[kNumBwdLevelLabels] = {
    "sta_bwd_L0",  "sta_bwd_L1",  "sta_bwd_L2",  "sta_bwd_L3",
    "sta_bwd_L4",  "sta_bwd_L5",  "sta_bwd_L6",  "sta_bwd_L7",
    "sta_bwd_L8",  "sta_bwd_L9",  "sta_bwd_L10", "sta_bwd_L11",
    "sta_bwd_L12", "sta_bwd_L13", "sta_bwd_L14", "sta_bwd_L15",
    "sta_bwd_L16", "sta_bwd_L17", "sta_bwd_L18", "sta_bwd_L19",
    "sta_bwd_L20", "sta_bwd_L21", "sta_bwd_L22", "sta_bwd_L23"};

const char* bwd_level_label(int level) {
  return (level >= 0 && level < kNumBwdLevelLabels) ? kBwdLevelLabels[level]
                                                    : "sta_bwd_Lhi";
}
}  // namespace

DiffTimer::DiffTimer(const netlist::Design& design, const sta::TimingGraph& graph,
                     DiffTimerOptions options)
    : timer_(design, graph,
             sta::TimerOptions{sta::AggMode::Smooth, options.gamma,
                               options.enable_early, options.wire_model,
                               options.rsmt}),
      options_(options) {}

sta::TimingMetrics DiffTimer::forward(std::span<const double> cell_x,
                                      std::span<const double> cell_y,
                                      bool force_rebuild) {
  DTP_TRACE_SCOPE("sta_forward");
  auto& registry = obs::MetricsRegistry::instance();
  static obs::Counter& fwd_count = registry.counter("dtimer.forward_calls");
  static obs::Counter& rebuild_count = registry.counter("dtimer.rsmt_rebuilds");
  static obs::Histogram& fwd_hist = registry.histogram("dtimer.forward_ms");

  obs::ScopedTimerMs fwd_timer(fwd_hist);
  Stopwatch clock;
  timer_.update_positions(cell_x, cell_y);
  const bool rebuild =
      force_rebuild || !timer_.trees_built() ||
      (options_.steiner_rebuild_period > 0 &&
       forward_calls_ % options_.steiner_rebuild_period == 0);
  clock.reset();
  if (rebuild)
    timer_.build_trees();
  else
    timer_.drag_trees();
  last_forward_.rebuilt = rebuild;
  last_forward_.rsmt_ms = clock.elapsed_ms();
  ++forward_calls_;
  fwd_count.add();
  if (rebuild) rebuild_count.add();
  clock.reset();
  timer_.run_elmore();
  last_forward_.elmore_ms = clock.elapsed_ms();
  clock.reset();
  timer_.propagate();
  timer_.update_slacks();
  last_forward_.sweep_ms = clock.elapsed_ms();
  return timer_.metrics();
}

void DiffTimer::backward(double t1, double t2, double h1, double h2,
                         std::span<double> grad_x, std::span<double> grad_y) {
  DTP_TRACE_SCOPE("sta_backward");
  ThreadPool::global().mark("dtimer.backward");
  static obs::Histogram& bwd_hist =
      obs::MetricsRegistry::instance().histogram("dtimer.backward_ms");
  obs::ScopedTimerMs bwd_timer(bwd_hist);
  const sta::TimingGraph& graph = timer_.graph();
  const netlist::Netlist& nl = graph.netlist();
  const double gamma = timer_.options().gamma;
  DTP_ASSERT(grad_x.size() == nl.num_cells() && grad_y.size() == nl.num_cells());

  last_backward_nonfinite_ = 0;
  const bool hold = (h1 != 0.0 || h2 != 0.0);
  DTP_ASSERT_MSG(!hold || options_.enable_early,
                 "hold gradients require DiffTimerOptions::enable_early");
  sta::TimingWorkspace& ws = timer_.workspace();
  std::fill(ws.g_at.begin(), ws.g_at.end(), 0.0);
  std::fill(ws.g_slew.begin(), ws.g_slew.end(), 0.0);
  if (hold) {
    std::fill(ws.g_at_early.begin(), ws.g_at_early.end(), 0.0);
    std::fill(ws.g_slew_early.begin(), ws.g_slew_early.end(), 0.0);
  }
  std::fill(ws.g_load.begin(), ws.g_load.end(), 0.0);
  std::fill(ws.pin_gx.begin(), ws.pin_gx.end(), 0.0);
  std::fill(ws.pin_gy.begin(), ws.pin_gy.end(), 0.0);
  // Per-net Elmore seeds: the whole node arenas (unused capacity stays zero).
  std::fill(ws.g_net_delay.begin(), ws.g_net_delay.end(), 0.0);
  std::fill(ws.g_net_imp2.begin(), ws.g_net_imp2.end(), 0.0);

  // ---- step 1+2: endpoint seeds ----
  const auto& endpoints = graph.endpoints();
  const auto& ep_slack = timer_.endpoint_slack();
  const auto& ep_tr_w = timer_.endpoint_tr_weights();

  // Softmin weights of WNS_gamma over reachable endpoints.
  std::vector<double>& finite_slacks = ws.ep_finite;
  std::vector<size_t>& finite_idx = ws.ep_finite_idx;
  finite_slacks.clear();
  finite_idx.clear();
  for (size_t e = 0; e < endpoints.size(); ++e) {
    if (std::isfinite(ep_slack[e])) {
      finite_slacks.push_back(ep_slack[e]);
      finite_idx.push_back(e);
    }
  }
  if (finite_slacks.empty()) return;
  std::vector<double>& wns_weights = ws.ep_weights;
  smooth_min(finite_slacks, gamma, wns_weights);

  std::vector<double>& g_ep = ws.ep_g;
  std::fill(g_ep.begin(), g_ep.end(), 0.0);
  for (size_t k = 0; k < finite_idx.size(); ++k) {
    const size_t e = finite_idx[k];
    // loss = -t1*TNS - t2*WNS;  dTNS/ds = [s < 0],  dWNS/ds = softmin weight.
    double g = -t2 * wns_weights[k];
    if (ep_slack[e] < 0.0) g += -t1;
    g_ep[e] = g;
  }
  for (size_t e = 0; e < endpoints.size(); ++e) {
    if (g_ep[e] == 0.0) continue;
    const PinId p = endpoints[e].pin;
    for (int tr = 0; tr < 2; ++tr) {
      // slack_tr = RAT(slew) - AT  =>  d(loss)/d(AT) = -g_ep * w_tr, and when
      // the setup constraint is a LUT, d(loss)/d(slew) = g_ep * w_tr * dRAT/dslew.
      const double w = ep_tr_w[e * 2 + static_cast<size_t>(tr)];
      ws.g_at[static_cast<size_t>(p) * 2 + static_cast<size_t>(tr)] +=
          -g_ep[e] * w;
      const auto req = timer_.endpoint_setup_rat(e, tr);
      if (req.d_dslew != 0.0)
        ws.g_slew[static_cast<size_t>(p) * 2 + static_cast<size_t>(tr)] +=
            g_ep[e] * w * req.d_dslew;
    }
  }

  // Hold endpoint seeds: slack = AT_early - requirement => d(slack)/d(AT) = +1.
  // The setup seeds above are final, so the endpoint scratch is reused.
  if (hold) {
    const auto& hold_slack = timer_.endpoint_hold_slack();
    const auto& hold_tr_w = timer_.endpoint_hold_tr_weights();
    std::vector<double>& finite_hold = ws.ep_finite;
    std::vector<size_t>& finite_hold_idx = ws.ep_finite_idx;
    finite_hold.clear();
    finite_hold_idx.clear();
    for (size_t e = 0; e < endpoints.size(); ++e) {
      if (std::isfinite(hold_slack[e])) {
        finite_hold.push_back(hold_slack[e]);
        finite_hold_idx.push_back(e);
      }
    }
    if (!finite_hold.empty()) {
      std::vector<double>& hold_wns_w = ws.ep_weights;
      smooth_min(finite_hold, gamma, hold_wns_w);
      for (size_t k = 0; k < finite_hold_idx.size(); ++k) {
        const size_t e = finite_hold_idx[k];
        double g = -h2 * hold_wns_w[k];
        if (hold_slack[e] < 0.0) g += -h1;
        if (g == 0.0) continue;
        const PinId p = endpoints[e].pin;
        for (int tr = 0; tr < 2; ++tr) {
          // slack = AT_early - req(slew_early): both arrival and (for LUT
          // constraints) the early slew carry gradient.
          const double w = hold_tr_w[e * 2 + static_cast<size_t>(tr)];
          ws.g_at_early[static_cast<size_t>(p) * 2 + static_cast<size_t>(tr)] +=
              g * w;
          const auto req = timer_.endpoint_hold_requirement(e, tr);
          if (req.d_dslew != 0.0)
            ws.g_slew_early[static_cast<size_t>(p) * 2 +
                            static_cast<size_t>(tr)] += -g * w * req.d_dslew;
        }
      }
    }
  }

  // ---- step 3+4: reverse level sweep ----
  const double* slew = timer_.slew_data();
  std::vector<double>& values = ws.values;
  std::vector<double>& w_at = ws.w_at;
  std::vector<double>& w_slew = ws.w_slew;

  static obs::Histogram& bwd_level_hist =
      obs::MetricsRegistry::instance().histogram("dtimer.bwd_level_ms");
  if (profile_levels_ &&
      bwd_level_profile_.size() < static_cast<size_t>(graph.num_levels()))
    bwd_level_profile_.resize(static_cast<size_t>(graph.num_levels()));
  Stopwatch level_clock;

  for (int l = graph.num_levels() - 1; l >= 0; --l) {
    DTP_PROF_SCOPE(bwd_level_label(l));
    if (profile_levels_) level_clock.reset();
    for (const PinId v : graph.level(l)) {
      const auto fanin = graph.fanin(v);
      if (!fanin.empty()) {
        const Arc& first = graph.arcs()[static_cast<size_t>(fanin[0])];
        if (first.kind == ArcKind::NetArc) {
          // Eq. 10: single fan-in wire arc.
          const size_t node =
              static_cast<size_t>(ws.forest.node_offset(first.net)) +
              static_cast<size_t>(first.sink_index);
          for (int tr = 0; tr < 2; ++tr) {
            const size_t vi = static_cast<size_t>(v) * 2 + static_cast<size_t>(tr);
            const size_t ui =
                static_cast<size_t>(first.from) * 2 + static_cast<size_t>(tr);
            const double gat = ws.g_at[vi];
            const double gslew = ws.g_slew[vi];
            if (gat != 0.0) {
              ws.g_at[ui] += gat;            // Eq. 10a
              ws.g_net_delay[node] += gat;   // Eq. 10b (delay shared across tr)
            }
            if (gslew != 0.0 && std::isfinite(slew[vi]) && slew[vi] > 0.0) {
              ws.g_slew[ui] += slew[ui] / slew[vi] * gslew;      // Eq. 10c
              ws.g_net_imp2[node] += gslew / (2.0 * slew[vi]);   // Eq. 10d
            }
          }
        } else {
          // Eq. 12: cell arcs.  Candidates and LUT gradients come from the
          // workspace cache the forward sweep recorded for this pin — the
          // forward gathers read finalized lower-level state, so the cached
          // entries are bitwise what a re-gather would produce.
          const NetId out_net = graph.driven_timing_net(v);
          for (int tr_out = 0; tr_out < 2; ++tr_out) {
            const size_t vi =
                static_cast<size_t>(v) * 2 + static_cast<size_t>(tr_out);
            const double gat_out = ws.g_at[vi];
            const double gslew_out = ws.g_slew[vi];
            if (gat_out == 0.0 && gslew_out == 0.0) continue;
            const ArcCandidate* cands = ws.cand_ptr(v, tr_out);
            const int count =
                ws.cand_count[static_cast<size_t>(v) * 2 +
                              static_cast<size_t>(tr_out)];
            if (count == 0) continue;
            values.resize(static_cast<size_t>(count));
            for (int k = 0; k < count; ++k)
              values[static_cast<size_t>(k)] = cands[k].at_value;
            smooth_max(values, timer_.options().gamma, w_at);
            for (int k = 0; k < count; ++k)
              values[static_cast<size_t>(k)] = cands[k].slew_q.value;
            smooth_max(values, timer_.options().gamma, w_slew);

            for (int k = 0; k < count; ++k) {
              const ArcCandidate& c = cands[k];
              const size_t ui = static_cast<size_t>(c.from) * 2 +
                                static_cast<size_t>(c.tr_in);
              const double g_at_cand = w_at[static_cast<size_t>(k)] * gat_out;  // Eq. 12a
              const double g_delay_cand = g_at_cand;          // Eq. 12b
              const double g_slew_cand =
                  w_slew[static_cast<size_t>(k)] * gslew_out;  // Eq. 12c
              ws.g_at[ui] += g_at_cand;
              ws.g_slew[ui] += c.delay_q.d_dx * g_delay_cand +
                               c.slew_q.d_dx * g_slew_cand;     // Eq. 12d
              if (out_net != netlist::kInvalidId)
                ws.g_load[static_cast<size_t>(out_net)] +=
                    c.delay_q.d_dy * g_delay_cand +
                    c.slew_q.d_dy * g_slew_cand;              // Eq. 12e
            }
          }
        }
      }

      // Hold corner: mirror the sweep on the early arrays (min-aggregation
      // softmin weights; same Elmore/load accumulators — the wire quantities
      // are shared between corners).  The cache holds the late candidates, so
      // the early corner re-gathers against the early state.
      if (hold && !fanin.empty()) {
        const double* at_e = ws.g_at_early.empty() ? nullptr : timer_.at_early_data();
        const double* slew_e = timer_.slew_early_data();
        const Arc& first = graph.arcs()[static_cast<size_t>(fanin[0])];
        if (first.kind == ArcKind::NetArc) {
          const size_t node =
              static_cast<size_t>(ws.forest.node_offset(first.net)) +
              static_cast<size_t>(first.sink_index);
          for (int tr = 0; tr < 2; ++tr) {
            const size_t vi = static_cast<size_t>(v) * 2 + static_cast<size_t>(tr);
            const size_t ui =
                static_cast<size_t>(first.from) * 2 + static_cast<size_t>(tr);
            const double gat = ws.g_at_early[vi];
            const double gslew = ws.g_slew_early[vi];
            if (gat != 0.0) {
              ws.g_at_early[ui] += gat;
              ws.g_net_delay[node] += gat;
            }
            if (gslew != 0.0 && std::isfinite(slew_e[vi]) && slew_e[vi] > 0.0) {
              ws.g_slew_early[ui] += slew_e[ui] / slew_e[vi] * gslew;
              ws.g_net_imp2[node] += gslew / (2.0 * slew_e[vi]);
            }
          }
        } else {
          const NetId out_net = graph.driven_timing_net(v);
          const double load =
              out_net == netlist::kInvalidId ? 0.0 : ws.net_root_load(out_net);
          std::vector<ArcCandidate>& cands = ws.cands;
          for (int tr_out = 0; tr_out < 2; ++tr_out) {
            const size_t vi =
                static_cast<size_t>(v) * 2 + static_cast<size_t>(tr_out);
            const double gat_out = ws.g_at_early[vi];
            const double gslew_out = ws.g_slew_early[vi];
            if (gat_out == 0.0 && gslew_out == 0.0) continue;
            cands.clear();
            for (int ai : fanin) {
              const Arc& arc = graph.arcs()[static_cast<size_t>(ai)];
              gather_arc_candidates(graph.lib_arc(arc.lib_arc), arc.from,
                                    tr_out, at_e, slew_e, load, cands);
            }
            if (cands.empty()) continue;
            values.resize(cands.size());
            for (size_t k = 0; k < cands.size(); ++k)
              values[k] = cands[k].at_value;
            smooth_min(values, timer_.options().gamma, w_at);
            for (size_t k = 0; k < cands.size(); ++k)
              values[k] = cands[k].slew_q.value;
            smooth_min(values, timer_.options().gamma, w_slew);
            for (size_t k = 0; k < cands.size(); ++k) {
              const ArcCandidate& c = cands[k];
              const size_t ui = static_cast<size_t>(c.from) * 2 +
                                static_cast<size_t>(c.tr_in);
              const double g_at_cand = w_at[k] * gat_out;
              const double g_delay_cand = g_at_cand;
              const double g_slew_cand = w_slew[k] * gslew_out;
              ws.g_at_early[ui] += g_at_cand;
              ws.g_slew_early[ui] += c.delay_q.d_dx * g_delay_cand +
                                     c.slew_q.d_dx * g_slew_cand;
              if (out_net != netlist::kInvalidId)
                ws.g_load[static_cast<size_t>(out_net)] +=
                    c.delay_q.d_dy * g_delay_cand +
                    c.slew_q.d_dy * g_slew_cand;
            }
          }
        }
      }

      // If v drives a timing net, every adjoint seed of that net is now
      // final (sinks live at higher levels; the load adjoint was produced by
      // v's own fan-in arcs just above): run the Elmore adjoint.
      const NetId driven = graph.driven_timing_net(v);
      if (driven != netlist::kInvalidId) {
        const sta::NetTimingView nt = ws.net_view(driven);
        const size_t m = nt.tree.num_nodes();
        std::fill_n(ws.scratch_gx.begin(), m, 0.0);
        std::fill_n(ws.scratch_gy.begin(), m, 0.0);
        const std::span<double> g_delay = ws.net_g_delay(driven);
        std::span<const double> g_beta{};
        if (options_.wire_model == sta::WireDelayModel::D2M) {
          // The net-arc seeds landed on used_delay = ln2 * m1^2 / sqrt(m2);
          // convert to (m1, m2) = (delay, beta) seeds via the chain rule.
          // Degenerate nodes fell back to Elmore and pass through unchanged.
          std::fill_n(ws.scratch_gbeta.begin(), m, 0.0);
          for (size_t node = 0; node < m; ++node) {
            const double gu = g_delay[node];
            if (gu == 0.0 || nt.d2m_degenerate[node]) continue;
            const double d = nt.delay[node];
            const double b = nt.beta[node];
            const double sqrt_b = std::sqrt(b);
            g_delay[node] = gu * sta::kLn2 * 2.0 * d / sqrt_b;
            ws.scratch_gbeta[node] = gu * sta::kLn2 * d * d * -0.5 / (b * sqrt_b);
          }
          g_beta = std::span<const double>(ws.scratch_gbeta.data(), m);
        }
        elmore_backward(
            nt, g_delay, ws.net_g_imp2(driven),
            ws.g_load[static_cast<size_t>(driven)],
            timer_.design().constraints.wire_res,
            timer_.design().constraints.wire_cap,
            std::span<double>(ws.scratch_gx.data(), m),
            std::span<double>(ws.scratch_gy.data(), m),
            ElmoreScratch{ws.el_gbeta, ws.el_gldelay, ws.el_gdelay,
                          ws.el_gload},
            g_beta);
        // Fold node gradients onto pins: pin nodes directly, Steiner nodes via
        // their coordinate source pins (paper Fig. 4).
        const netlist::Net& net = nl.net(driven);
        for (size_t node = 0; node < m; ++node) {
          const rsmt::SteinerNode& tn = nt.tree.nodes[node];
          const size_t xp = static_cast<size_t>(
              net.pins[static_cast<size_t>(tn.x_src)]);
          const size_t yp = static_cast<size_t>(
              net.pins[static_cast<size_t>(tn.y_src)]);
          ws.pin_gx[xp] += ws.scratch_gx[node];
          ws.pin_gy[yp] += ws.scratch_gy[node];
        }
      }
    }
    if (profile_levels_) {
      const double ms = level_clock.elapsed_ms();
      LevelStat& stat = bwd_level_profile_[static_cast<size_t>(l)];
      ++stat.calls;
      stat.ms += ms;
      bwd_level_hist.observe(ms);
    }
  }

  // Post-sweep activity scan: the AT/slew adjoint planes are final here
  // (pins the sweep skipped hold their zero fill).  Read-only observer.
  if (activity_ != nullptr)
    activity_->record_backward(ws.g_at.data(), ws.g_slew.data());

  // Fault-injection hook: corrupt the pin-gradient accumulators as if the
  // LUT-gradient path had produced garbage (robust-layer test harness).
  if (fault_injector_ != nullptr)
    fault_injector_->corrupt(robust::FaultSite::LutAdjoint, fault_tick_,
                             ws.pin_gx, ws.pin_gy);

  // Health signal for the graceful-degradation path: count non-finite pin
  // gradients (cheap sum-poisoning fast path when everything is finite).
  last_backward_nonfinite_ =
      robust::HealthMonitor::all_finite(ws.pin_gx, ws.pin_gy)
          ? 0
          : robust::HealthMonitor::count_nonfinite(ws.pin_gx, ws.pin_gy);

  // ---- pins -> cells (pin offsets are rigid) ----
  for (size_t p = 0; p < nl.num_pins(); ++p) {
    if (ws.pin_gx[p] == 0.0 && ws.pin_gy[p] == 0.0) continue;
    const CellId c = nl.pin(static_cast<PinId>(p)).cell;
    grad_x[static_cast<size_t>(c)] += ws.pin_gx[p];
    grad_y[static_cast<size_t>(c)] += ws.pin_gy[p];
  }
}

}  // namespace dtp::dtimer
