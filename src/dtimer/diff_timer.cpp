#include "dtimer/diff_timer.h"

#include <cmath>

#include "common/assert.h"
#include "common/smooth_math.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "dtimer/elmore_grad.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "robust/health_monitor.h"
#include "sta/cell_arc_eval.h"

namespace dtp::dtimer {

using netlist::CellId;
using netlist::NetId;
using netlist::PinId;
using sta::Arc;
using sta::ArcCandidate;
using sta::ArcKind;
using sta::LevelStat;

DiffTimer::DiffTimer(const netlist::Design& design, const sta::TimingGraph& graph,
                     DiffTimerOptions options)
    : timer_(design, graph,
             sta::TimerOptions{sta::AggMode::Smooth, options.gamma,
                               options.enable_early, options.wire_model,
                               options.rsmt}),
      options_(options) {
  const size_t n_pins = design.netlist.num_pins();
  const size_t n_nets = design.netlist.num_nets();
  g_at_.assign(n_pins * 2, 0.0);
  g_slew_.assign(n_pins * 2, 0.0);
  if (options.enable_early) {
    g_at_early_.assign(n_pins * 2, 0.0);
    g_slew_early_.assign(n_pins * 2, 0.0);
  }
  g_load_.assign(n_nets, 0.0);
  pin_gx_.assign(n_pins, 0.0);
  pin_gy_.assign(n_pins, 0.0);
  g_net_delay_.resize(n_nets);
  g_net_imp2_.resize(n_nets);
}

sta::TimingMetrics DiffTimer::forward(std::span<const double> cell_x,
                                      std::span<const double> cell_y,
                                      bool force_rebuild) {
  DTP_TRACE_SCOPE("sta_forward");
  auto& registry = obs::MetricsRegistry::instance();
  static obs::Counter& fwd_count = registry.counter("dtimer.forward_calls");
  static obs::Counter& rebuild_count = registry.counter("dtimer.rsmt_rebuilds");
  static obs::Histogram& fwd_hist = registry.histogram("dtimer.forward_ms");

  obs::ScopedTimerMs fwd_timer(fwd_hist);
  Stopwatch clock;
  timer_.update_positions(cell_x, cell_y);
  const bool rebuild =
      force_rebuild || !timer_.trees_built() ||
      (options_.steiner_rebuild_period > 0 &&
       forward_calls_ % options_.steiner_rebuild_period == 0);
  clock.reset();
  if (rebuild)
    timer_.build_trees();
  else
    timer_.drag_trees();
  last_forward_.rebuilt = rebuild;
  last_forward_.rsmt_ms = clock.elapsed_ms();
  ++forward_calls_;
  fwd_count.add();
  if (rebuild) rebuild_count.add();
  clock.reset();
  timer_.run_elmore();
  last_forward_.elmore_ms = clock.elapsed_ms();
  clock.reset();
  timer_.propagate();
  timer_.update_slacks();
  last_forward_.sweep_ms = clock.elapsed_ms();
  return timer_.metrics();
}

void DiffTimer::backward(double t1, double t2, double h1, double h2,
                         std::span<double> grad_x, std::span<double> grad_y) {
  DTP_TRACE_SCOPE("sta_backward");
  ThreadPool::global().mark("dtimer.backward");
  static obs::Histogram& bwd_hist =
      obs::MetricsRegistry::instance().histogram("dtimer.backward_ms");
  obs::ScopedTimerMs bwd_timer(bwd_hist);
  const sta::TimingGraph& graph = timer_.graph();
  const netlist::Netlist& nl = graph.netlist();
  const double gamma = timer_.options().gamma;
  DTP_ASSERT(grad_x.size() == nl.num_cells() && grad_y.size() == nl.num_cells());

  last_backward_nonfinite_ = 0;
  const bool hold = (h1 != 0.0 || h2 != 0.0);
  DTP_ASSERT_MSG(!hold || options_.enable_early,
                 "hold gradients require DiffTimerOptions::enable_early");
  std::fill(g_at_.begin(), g_at_.end(), 0.0);
  std::fill(g_slew_.begin(), g_slew_.end(), 0.0);
  if (hold) {
    std::fill(g_at_early_.begin(), g_at_early_.end(), 0.0);
    std::fill(g_slew_early_.begin(), g_slew_early_.end(), 0.0);
  }
  std::fill(g_load_.begin(), g_load_.end(), 0.0);
  std::fill(pin_gx_.begin(), pin_gx_.end(), 0.0);
  std::fill(pin_gy_.begin(), pin_gy_.end(), 0.0);
  for (NetId n : graph.timing_nets()) {
    const size_t m = timer_.net_timing(n).tree.num_nodes();
    g_net_delay_[static_cast<size_t>(n)].assign(m, 0.0);
    g_net_imp2_[static_cast<size_t>(n)].assign(m, 0.0);
  }

  // ---- step 1+2: endpoint seeds ----
  const auto& endpoints = graph.endpoints();
  const auto& ep_slack = timer_.endpoint_slack();
  const auto& ep_tr_w = timer_.endpoint_tr_weights();

  // Softmin weights of WNS_gamma over reachable endpoints.
  std::vector<double> finite_slacks;
  std::vector<size_t> finite_idx;
  finite_slacks.reserve(endpoints.size());
  for (size_t e = 0; e < endpoints.size(); ++e) {
    if (std::isfinite(ep_slack[e])) {
      finite_slacks.push_back(ep_slack[e]);
      finite_idx.push_back(e);
    }
  }
  if (finite_slacks.empty()) return;
  std::vector<double> wns_weights;
  smooth_min(finite_slacks, gamma, wns_weights);

  std::vector<double> g_ep(endpoints.size(), 0.0);
  for (size_t k = 0; k < finite_idx.size(); ++k) {
    const size_t e = finite_idx[k];
    // loss = -t1*TNS - t2*WNS;  dTNS/ds = [s < 0],  dWNS/ds = softmin weight.
    double g = -t2 * wns_weights[k];
    if (ep_slack[e] < 0.0) g += -t1;
    g_ep[e] = g;
  }
  for (size_t e = 0; e < endpoints.size(); ++e) {
    if (g_ep[e] == 0.0) continue;
    const PinId p = endpoints[e].pin;
    for (int tr = 0; tr < 2; ++tr) {
      // slack_tr = RAT(slew) - AT  =>  d(loss)/d(AT) = -g_ep * w_tr, and when
      // the setup constraint is a LUT, d(loss)/d(slew) = g_ep * w_tr * dRAT/dslew.
      const double w = ep_tr_w[e * 2 + static_cast<size_t>(tr)];
      g_at_[static_cast<size_t>(p) * 2 + static_cast<size_t>(tr)] +=
          -g_ep[e] * w;
      const auto req = timer_.endpoint_setup_rat(e, tr);
      if (req.d_dslew != 0.0)
        g_slew_[static_cast<size_t>(p) * 2 + static_cast<size_t>(tr)] +=
            g_ep[e] * w * req.d_dslew;
    }
  }

  // Hold endpoint seeds: slack = AT_early - requirement => d(slack)/d(AT) = +1.
  if (hold) {
    const auto& hold_slack = timer_.endpoint_hold_slack();
    const auto& hold_tr_w = timer_.endpoint_hold_tr_weights();
    std::vector<double> finite_hold;
    std::vector<size_t> finite_hold_idx;
    for (size_t e = 0; e < endpoints.size(); ++e) {
      if (std::isfinite(hold_slack[e])) {
        finite_hold.push_back(hold_slack[e]);
        finite_hold_idx.push_back(e);
      }
    }
    if (!finite_hold.empty()) {
      std::vector<double> hold_wns_w;
      smooth_min(finite_hold, gamma, hold_wns_w);
      for (size_t k = 0; k < finite_hold_idx.size(); ++k) {
        const size_t e = finite_hold_idx[k];
        double g = -h2 * hold_wns_w[k];
        if (hold_slack[e] < 0.0) g += -h1;
        if (g == 0.0) continue;
        const PinId p = endpoints[e].pin;
        for (int tr = 0; tr < 2; ++tr) {
          // slack = AT_early - req(slew_early): both arrival and (for LUT
          // constraints) the early slew carry gradient.
          const double w = hold_tr_w[e * 2 + static_cast<size_t>(tr)];
          g_at_early_[static_cast<size_t>(p) * 2 + static_cast<size_t>(tr)] +=
              g * w;
          const auto req = timer_.endpoint_hold_requirement(e, tr);
          if (req.d_dslew != 0.0)
            g_slew_early_[static_cast<size_t>(p) * 2 +
                          static_cast<size_t>(tr)] += -g * w * req.d_dslew;
        }
      }
    }
  }

  // ---- step 3+4: reverse level sweep ----
  const double* at = timer_.at_data();
  const double* slew = timer_.slew_data();
  std::vector<ArcCandidate> cands;
  std::vector<double> values, w_at, w_slew;

  static obs::Histogram& bwd_level_hist =
      obs::MetricsRegistry::instance().histogram("dtimer.bwd_level_ms");
  if (profile_levels_ &&
      bwd_level_profile_.size() < static_cast<size_t>(graph.num_levels()))
    bwd_level_profile_.resize(static_cast<size_t>(graph.num_levels()));
  Stopwatch level_clock;

  for (int l = graph.num_levels() - 1; l >= 0; --l) {
    if (profile_levels_) level_clock.reset();
    for (const PinId v : graph.level(l)) {
      const auto fanin = graph.fanin(v);
      if (!fanin.empty()) {
        const Arc& first = graph.arcs()[static_cast<size_t>(fanin[0])];
        if (first.kind == ArcKind::NetArc) {
          // Eq. 10: single fan-in wire arc.
          const size_t node = static_cast<size_t>(first.sink_index);
          auto& g_delay = g_net_delay_[static_cast<size_t>(first.net)];
          auto& g_imp2 = g_net_imp2_[static_cast<size_t>(first.net)];
          for (int tr = 0; tr < 2; ++tr) {
            const size_t vi = static_cast<size_t>(v) * 2 + static_cast<size_t>(tr);
            const size_t ui =
                static_cast<size_t>(first.from) * 2 + static_cast<size_t>(tr);
            const double gat = g_at_[vi];
            const double gslew = g_slew_[vi];
            if (gat != 0.0) {
              g_at_[ui] += gat;            // Eq. 10a
              g_delay[node] += gat;        // Eq. 10b (delay shared across tr)
            }
            if (gslew != 0.0 && std::isfinite(slew[vi]) && slew[vi] > 0.0) {
              g_slew_[ui] += slew[ui] / slew[vi] * gslew;      // Eq. 10c
              g_imp2[node] += gslew / (2.0 * slew[vi]);        // Eq. 10d
            }
          }
        } else {
          // Eq. 12: cell arcs; re-derive candidates and LSE softmax weights.
          const NetId out_net = graph.driven_timing_net(v);
          const double load =
              out_net == netlist::kInvalidId
                  ? 0.0
                  : timer_.net_timing(out_net).root_load();
          for (int tr_out = 0; tr_out < 2; ++tr_out) {
            const size_t vi =
                static_cast<size_t>(v) * 2 + static_cast<size_t>(tr_out);
            const double gat_out = g_at_[vi];
            const double gslew_out = g_slew_[vi];
            if (gat_out == 0.0 && gslew_out == 0.0) continue;
            cands.clear();
            for (int ai : fanin)
              gather_arc_candidates(graph.arcs()[static_cast<size_t>(ai)], tr_out,
                                    at, slew, load, cands);
            if (cands.empty()) continue;
            values.resize(cands.size());
            for (size_t k = 0; k < cands.size(); ++k) values[k] = cands[k].at_value;
            smooth_max(values, timer_.options().gamma, w_at);
            for (size_t k = 0; k < cands.size(); ++k)
              values[k] = cands[k].slew_q.value;
            smooth_max(values, timer_.options().gamma, w_slew);

            for (size_t k = 0; k < cands.size(); ++k) {
              const ArcCandidate& c = cands[k];
              const size_t ui = static_cast<size_t>(c.from) * 2 +
                                static_cast<size_t>(c.tr_in);
              const double g_at_cand = w_at[k] * gat_out;     // Eq. 12a
              const double g_delay_cand = g_at_cand;          // Eq. 12b
              const double g_slew_cand = w_slew[k] * gslew_out;  // Eq. 12c
              g_at_[ui] += g_at_cand;
              g_slew_[ui] += c.delay_q.d_dx * g_delay_cand +
                             c.slew_q.d_dx * g_slew_cand;     // Eq. 12d
              if (out_net != netlist::kInvalidId)
                g_load_[static_cast<size_t>(out_net)] +=
                    c.delay_q.d_dy * g_delay_cand +
                    c.slew_q.d_dy * g_slew_cand;              // Eq. 12e
            }
          }
        }
      }

      // Hold corner: mirror the sweep on the early arrays (min-aggregation
      // softmin weights; same Elmore/load accumulators — the wire quantities
      // are shared between corners).
      if (hold && !fanin.empty()) {
        const double* at_e = g_at_early_.empty() ? nullptr : timer_.at_early_data();
        const double* slew_e = timer_.slew_early_data();
        const Arc& first = graph.arcs()[static_cast<size_t>(fanin[0])];
        if (first.kind == ArcKind::NetArc) {
          const size_t node = static_cast<size_t>(first.sink_index);
          auto& g_delay = g_net_delay_[static_cast<size_t>(first.net)];
          auto& g_imp2 = g_net_imp2_[static_cast<size_t>(first.net)];
          for (int tr = 0; tr < 2; ++tr) {
            const size_t vi = static_cast<size_t>(v) * 2 + static_cast<size_t>(tr);
            const size_t ui =
                static_cast<size_t>(first.from) * 2 + static_cast<size_t>(tr);
            const double gat = g_at_early_[vi];
            const double gslew = g_slew_early_[vi];
            if (gat != 0.0) {
              g_at_early_[ui] += gat;
              g_delay[node] += gat;
            }
            if (gslew != 0.0 && std::isfinite(slew_e[vi]) && slew_e[vi] > 0.0) {
              g_slew_early_[ui] += slew_e[ui] / slew_e[vi] * gslew;
              g_imp2[node] += gslew / (2.0 * slew_e[vi]);
            }
          }
        } else {
          const NetId out_net = graph.driven_timing_net(v);
          const double load =
              out_net == netlist::kInvalidId
                  ? 0.0
                  : timer_.net_timing(out_net).root_load();
          for (int tr_out = 0; tr_out < 2; ++tr_out) {
            const size_t vi =
                static_cast<size_t>(v) * 2 + static_cast<size_t>(tr_out);
            const double gat_out = g_at_early_[vi];
            const double gslew_out = g_slew_early_[vi];
            if (gat_out == 0.0 && gslew_out == 0.0) continue;
            cands.clear();
            for (int ai : fanin)
              gather_arc_candidates(graph.arcs()[static_cast<size_t>(ai)],
                                    tr_out, at_e, slew_e, load, cands);
            if (cands.empty()) continue;
            values.resize(cands.size());
            for (size_t k = 0; k < cands.size(); ++k)
              values[k] = cands[k].at_value;
            smooth_min(values, timer_.options().gamma, w_at);
            for (size_t k = 0; k < cands.size(); ++k)
              values[k] = cands[k].slew_q.value;
            smooth_min(values, timer_.options().gamma, w_slew);
            for (size_t k = 0; k < cands.size(); ++k) {
              const ArcCandidate& c = cands[k];
              const size_t ui = static_cast<size_t>(c.from) * 2 +
                                static_cast<size_t>(c.tr_in);
              const double g_at_cand = w_at[k] * gat_out;
              const double g_delay_cand = g_at_cand;
              const double g_slew_cand = w_slew[k] * gslew_out;
              g_at_early_[ui] += g_at_cand;
              g_slew_early_[ui] += c.delay_q.d_dx * g_delay_cand +
                                   c.slew_q.d_dx * g_slew_cand;
              if (out_net != netlist::kInvalidId)
                g_load_[static_cast<size_t>(out_net)] +=
                    c.delay_q.d_dy * g_delay_cand +
                    c.slew_q.d_dy * g_slew_cand;
            }
          }
        }
      }

      // If v drives a timing net, every adjoint seed of that net is now
      // final (sinks live at higher levels; the load adjoint was produced by
      // v's own fan-in arcs just above): run the Elmore adjoint.
      const NetId driven = graph.driven_timing_net(v);
      if (driven != netlist::kInvalidId) {
        const sta::NetTiming& nt = timer_.net_timing(driven);
        const size_t m = nt.tree.num_nodes();
        scratch_gx_.assign(m, 0.0);
        scratch_gy_.assign(m, 0.0);
        auto& g_delay = g_net_delay_[static_cast<size_t>(driven)];
        std::span<const double> g_beta{};
        if (options_.wire_model == sta::WireDelayModel::D2M) {
          // The net-arc seeds landed on used_delay = ln2 * m1^2 / sqrt(m2);
          // convert to (m1, m2) = (delay, beta) seeds via the chain rule.
          // Degenerate nodes fell back to Elmore and pass through unchanged.
          scratch_gbeta_.assign(m, 0.0);
          for (size_t node = 0; node < m; ++node) {
            const double gu = g_delay[node];
            if (gu == 0.0 || nt.d2m_degenerate[node]) continue;
            const double d = nt.delay[node];
            const double b = nt.beta[node];
            const double sqrt_b = std::sqrt(b);
            g_delay[node] = gu * sta::kLn2 * 2.0 * d / sqrt_b;
            scratch_gbeta_[node] = gu * sta::kLn2 * d * d * -0.5 / (b * sqrt_b);
          }
          g_beta = scratch_gbeta_;
        }
        elmore_backward(nt, g_delay, g_net_imp2_[static_cast<size_t>(driven)],
                        g_load_[static_cast<size_t>(driven)],
                        timer_.design().constraints.wire_res,
                        timer_.design().constraints.wire_cap, scratch_gx_,
                        scratch_gy_, g_beta);
        // Fold node gradients onto pins: pin nodes directly, Steiner nodes via
        // their coordinate source pins (paper Fig. 4).
        const netlist::Net& net = nl.net(driven);
        for (size_t node = 0; node < m; ++node) {
          const auto& tn = nt.tree.nodes[node];
          const size_t xp = static_cast<size_t>(
              net.pins[static_cast<size_t>(tn.x_src)]);
          const size_t yp = static_cast<size_t>(
              net.pins[static_cast<size_t>(tn.y_src)]);
          pin_gx_[xp] += scratch_gx_[node];
          pin_gy_[yp] += scratch_gy_[node];
        }
      }
    }
    if (profile_levels_) {
      const double ms = level_clock.elapsed_ms();
      LevelStat& stat = bwd_level_profile_[static_cast<size_t>(l)];
      ++stat.calls;
      stat.ms += ms;
      bwd_level_hist.observe(ms);
    }
  }

  // Fault-injection hook: corrupt the pin-gradient accumulators as if the
  // LUT-gradient path had produced garbage (robust-layer test harness).
  if (fault_injector_ != nullptr)
    fault_injector_->corrupt(robust::FaultSite::LutAdjoint, fault_tick_,
                             pin_gx_, pin_gy_);

  // Health signal for the graceful-degradation path: count non-finite pin
  // gradients (cheap sum-poisoning fast path when everything is finite).
  last_backward_nonfinite_ =
      robust::HealthMonitor::all_finite(pin_gx_, pin_gy_)
          ? 0
          : robust::HealthMonitor::count_nonfinite(pin_gx_, pin_gy_);

  // ---- pins -> cells (pin offsets are rigid) ----
  for (size_t p = 0; p < nl.num_pins(); ++p) {
    if (pin_gx_[p] == 0.0 && pin_gy_[p] == 0.0) continue;
    const CellId c = nl.pin(static_cast<PinId>(p)).cell;
    grad_x[static_cast<size_t>(c)] += pin_gx_[p];
    grad_y[static_cast<size_t>(c)] += pin_gy_[p];
  }
}

}  // namespace dtp::dtimer
