// DiffTimer: the paper's differentiable STA engine (§3).
//
// Wraps a smooth-mode sta::Timer and adds the backward pass: given the
// smoothed timing objective
//
//     loss = t1 * (-TNS_gamma) + t2 * (-WNS_gamma)                   (Eq. 6)
//
// backward() computes d(loss)/d(cell x, y) for every cell by sweeping the
// timing levels in reverse (paper Fig. 3, blue edges):
//
//   1. seed d(loss)/d(slack) at every endpoint — the TNS term gates on
//      slack < 0 (the subgradient of min(0, s)), the WNS term distributes by
//      the softmin weights over endpoints;
//   2. convert to d/d(AT) seeds via slack = RAT - AT and the per-endpoint
//      transition softmin weights;
//   3. walk levels top-down in reverse: cell arcs apply Eq. 12 (softmax of the
//      LSE aggregation + LUT gradients feeding slew and load adjoints), net
//      arcs apply Eq. 10 (delay and impulse^2 adjoints);
//   4. when a net's driver pin is reached, all of that net's adjoint seeds are
//      final, so run the Elmore adjoint (Eq. 8) for the net and fold the
//      resulting Steiner-node coordinate gradients onto their source pins
//      (Fig. 4), then pin gradients onto cells.
//
// All backward state — adjoint arrays, per-net seed arenas, endpoint and
// Elmore scratch — lives in the wrapped timer's TimingWorkspace (DESIGN.md
// §10), shared with the forward pass.  The late-corner cell-arc step reuses
// the candidate cache the forward sweep recorded (same candidates by
// construction: forward gathers read finalized lower-level state), so no LUT
// is re-evaluated on the setup path; the optional hold corner re-gathers
// against the early arrays.  A steady-state forward (drag path) + backward
// pair performs zero heap allocations (tests/test_zero_alloc.cpp).
//
// Between full Steiner reconstructions the forward pass only drags Steiner
// points along their source pins (§3.6); forward() manages the rebuild period.
#pragma once

#include <span>
#include <vector>

#include "robust/fault_injector.h"
#include "sta/timer.h"

namespace dtp::dtimer {

struct DiffTimerOptions {
  double gamma = 0.05;             // LSE smoothing (ns); paper uses ~100 ps
  int steiner_rebuild_period = 10; // full RSMT every N calls, drag in between
  bool enable_early = false;
  sta::WireDelayModel wire_model = sta::WireDelayModel::Elmore;
  rsmt::RsmtOptions rsmt;
};

// Wall-clock split of the most recent forward() call, separating Steiner-tree
// maintenance from the timer passes proper — the attribution the paper's §3.6
// runtime argument needs (RSMT rebuild amortization vs. levelized sweeps).
struct ForwardBreakdown {
  double rsmt_ms = 0.0;     // build_trees or drag_trees
  double elmore_ms = 0.0;   // wire delay/impulse/load pass
  double sweep_ms = 0.0;    // AT/slew propagation + slack update
  bool rebuilt = false;     // true when this call ran a full RSMT rebuild
  double sta_ms() const { return elmore_ms + sweep_ms; }
};

class DiffTimer {
 public:
  DiffTimer(const netlist::Design& design, const sta::TimingGraph& graph,
            DiffTimerOptions options = {});

  // Forward STA at the given cell locations.  Rebuilds Steiner trees on the
  // first call and every `steiner_rebuild_period`-th call thereafter; set
  // force_rebuild to override.  Returns smoothed + exact-on-smoothed metrics.
  sta::TimingMetrics forward(std::span<const double> cell_x,
                             std::span<const double> cell_y,
                             bool force_rebuild = false);

  // Accumulates (+=) d(loss)/d(cell location) into grad_x/grad_y for
  // loss = t1*(-TNS_gamma) + t2*(-WNS_gamma).  Requires a prior forward().
  void backward(double t1, double t2, std::span<double> grad_x,
                std::span<double> grad_y) {
    backward(t1, t2, 0.0, 0.0, grad_x, grad_y);
  }

  // Extended objective including the hold metrics of Eq. 2:
  //   loss = t1*(-TNS_gamma) + t2*(-WNS_gamma)
  //        + h1*(-holdTNS_gamma) + h2*(-holdWNS_gamma).
  // Hold terms require enable_early; their gradients *lengthen* violating
  // short paths (early arrivals rise), the dual of the setup gradients.
  void backward(double t1, double t2, double h1, double h2,
                std::span<double> grad_x, std::span<double> grad_y);

  // The wrapped smooth timer (state inspection, gamma adjustment).
  sta::Timer& timer() { return timer_; }
  const sta::Timer& timer() const { return timer_; }

  int forward_calls() const { return forward_calls_; }

  // Phase timings of the most recent forward().
  const ForwardBreakdown& last_forward() const { return last_forward_; }

  // Fault-injection harness hook (DESIGN.md §7): when set, backward() runs
  // the injector's `lut` site against the pin-gradient accumulators — the
  // spot where degenerate LUT interpolation would first surface — keyed by
  // the tick the caller provides (the placer iteration).  nullptr disables.
  void set_fault_injection(robust::FaultInjector* injector, int tick) {
    fault_injector_ = injector;
    fault_tick_ = tick;
  }

  // Number of non-finite pin-gradient entries produced by the most recent
  // backward() — the health signal behind graceful timing degradation.
  size_t last_backward_nonfinite() const { return last_backward_nonfinite_; }

  // Per-level kernel profiling (DESIGN.md §8): enables the wrapped timer's
  // forward-dispatch timing and, additionally, times each topological level
  // of the adjoint sweep.  Pure observation — gradients are identical with
  // profiling on or off.
  void set_level_profiling(bool on) {
    profile_levels_ = on;
    timer_.set_level_profiling(on);
  }
  // Indexed by topological level, accumulated across backward() calls.
  const std::vector<sta::LevelStat>& backward_level_profile() const {
    return bwd_level_profile_;
  }
  void reset_level_profiles() {
    bwd_level_profile_.clear();
    timer_.reset_level_profile();
  }

  // Timing-activity tracking (DESIGN.md §11): attaches the tracker to the
  // wrapped timer's forward pass and, after every backward(), scans the
  // AT/slew adjoint planes for live pins.  Pure observer; nullptr detaches.
  void set_activity_tracker(obs::ActivityTracker* tracker) {
    activity_ = tracker;
    timer_.set_activity_tracker(tracker);
  }

 private:
  sta::Timer timer_;
  DiffTimerOptions options_;
  int forward_calls_ = 0;
  ForwardBreakdown last_forward_;
  robust::FaultInjector* fault_injector_ = nullptr;
  int fault_tick_ = 0;
  size_t last_backward_nonfinite_ = 0;
  bool profile_levels_ = false;
  std::vector<sta::LevelStat> bwd_level_profile_;
  obs::ActivityTracker* activity_ = nullptr;
};

}  // namespace dtp::dtimer
