// Adjoint of the Elmore delay model (paper §3.4.2, Eq. 8, Fig. 5).
//
// Given the forward NetTiming state and the objective's gradients with
// respect to the net's sink Delays, sink Impulse^2 values and the root Load,
// computes the gradient with respect to every tree-node coordinate by four
// reverse dynamic-programming passes (mirroring the four forward passes in
// reverse order):
//
//   R1 (bottom-up):  gBeta(u)   = 2*gImp2(u) + sum_child gBeta(v)
//   R2 (top-down):   gLDelay(u) = Res(u)*gBeta(u) + gLDelay(fa(u))
//   R3 (bottom-up):  gDelay(u)  = seed(u) + Cap(u)*gLDelay(u)
//                                 - 2*Delay(u)*gImp2(u) + sum_child gDelay(v)
//   R4 (top-down):   gLoad(u)   = Res(u)*gDelay(u) + gLoad(fa(u)),
//                    gLoad(root) = gLoadRoot seed
//
// then pointwise
//
//   gCap(u) = gLoad(u) + Delay(u)*gLDelay(u)
//   gRes(u) = Load(u)*gDelay(u) + LDelay(u)*gBeta(u)
//
// and finally through the edge parasitics Res = r*len, Cap contributions
// c*len/2 per endpoint, and the rectilinear length len = |dx| + |dy| down to
// node coordinates.  Note the sign of the -2*Delay*gImp2 term in R3: it is
// the derivative of Imp2 = 2*Beta - Delay^2 (the paper's Eq. 8c prints the
// term with a plus; the finite-difference gradient checks in
// tests/test_elmore_grad.cpp confirm the minus).
//
// Gradients on Steiner nodes are the caller's to redistribute onto the pins
// that source their coordinates (paper Fig. 4).
#pragma once

#include <span>

#include "sta/net_timing.h"

namespace dtp::dtimer {

// Caller-provided adjoint scratch for the four reverse passes, each span
// sized >= the tree's node count.  The hot path (DiffTimer::backward) slices
// these out of the shared TimingWorkspace so the adjoint runs allocation-free.
struct ElmoreScratch {
  std::span<double> gbeta;
  std::span<double> gldelay;
  std::span<double> gdelay;
  std::span<double> gload;
};

// Accumulates (+=) coordinate gradients into gx/gy (sized num_nodes).
// g_imp2 entries on clamped nodes are ignored (the clamp breaks dependence).
// g_beta carries direct objective seeds on Beta (empty span = all zero) —
// used by two-moment wire delay models like D2M whose propagation delay
// depends on m2 as well as m1.
void elmore_backward(const sta::NetTimingView& nt,
                     std::span<const double> g_delay,
                     std::span<const double> g_imp2, double g_load_root,
                     double r_unit, double c_unit, std::span<double> gx,
                     std::span<double> gy, ElmoreScratch scratch,
                     std::span<const double> g_beta = {});

// Owning-storage adapter (tests/benches): runs the view pass over
// thread_local scratch.
void elmore_backward(const sta::NetTiming& nt, std::span<const double> g_delay,
                     std::span<const double> g_imp2, double g_load_root,
                     double r_unit, double c_unit, std::span<double> gx,
                     std::span<double> gy,
                     std::span<const double> g_beta = {});

}  // namespace dtp::dtimer
