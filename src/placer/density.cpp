#include "placer/density.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "kernels/kernel_backend.h"
#include "obs/trace.h"

namespace dtp::placer {

using netlist::CellId;

DensityModel::DensityModel(const netlist::Design& design, int bins_per_dim,
                           double target_density)
    : design_(&design),
      m_(bins_per_dim),
      target_density_(target_density),
      bin_w_(design.floorplan.core.width() / bins_per_dim),
      bin_h_(design.floorplan.core.height() / bins_per_dim),
      solver_(bins_per_dim, design.floorplan.core.width(),
              design.floorplan.core.height()) {
  const netlist::Netlist& nl = design.netlist;
  const size_t n = nl.num_cells();
  cell_w_.resize(n);
  cell_h_.resize(n);
  cell_area_.resize(n);
  movable_.resize(n);
  for (size_t c = 0; c < n; ++c) {
    const liberty::LibCell& master = nl.lib_cell_of(static_cast<CellId>(c));
    cell_w_[c] = master.width;
    cell_h_[c] = master.height;
    cell_area_[c] = master.width * master.height;
    movable_[c] = !nl.cell(static_cast<CellId>(c)).fixed;
    if (movable_[c]) total_movable_area_ += cell_area_[c];
  }
  rho_.assign(static_cast<size_t>(m_) * m_, 0.0);
}

kernels::DensityGrid DensityModel::grid_view() const {
  const Rect& core = design_->floorplan.core;
  kernels::DensityGrid g;
  g.m = m_;
  g.bin_w = bin_w_;
  g.bin_h = bin_h_;
  g.core_xl = core.xl;
  g.core_yl = core.yl;
  g.core_w = core.width();
  g.core_h = core.height();
  return g;
}

kernels::DensityCells DensityModel::cells_view() const {
  kernels::DensityCells cells;
  cells.w = cell_w_.data();
  cells.h = cell_h_.data();
  cells.area = cell_area_.data();
  cells.movable = movable_.data();
  cells.n = cell_w_.size();
  return cells;
}

DensityStats DensityModel::update(std::span<const double> x,
                                  std::span<const double> y) {
  DTP_TRACE_SCOPE("density_update");
  std::fill(rho_.begin(), rho_.end(), 0.0);
  kernels::backend().density_scatter(grid_view(), cells_view(), x.data(),
                                     y.data(), rho_.data());

  {
    DTP_TRACE_SCOPE("poisson_solve");
    solver_.solve(rho_, psi_, field_x_, field_y_);
  }

  DensityStats stats;
  stats.energy = PoissonSolver::energy(rho_, psi_);
  const double bin_area = bin_w_ * bin_h_;
  const double cap = target_density_ * bin_area;
  double over = 0.0;
  for (double r : rho_) {
    over += std::max(0.0, r - cap);
    stats.max_density = std::max(stats.max_density, r / bin_area);
  }
  stats.overflow = total_movable_area_ > 0 ? over / total_movable_area_ : 0.0;
  return stats;
}

void DensityModel::add_gradient(std::span<const double> x,
                                std::span<const double> y, double lambda,
                                std::span<double> gx, std::span<double> gy) const {
  DTP_TRACE_SCOPE("density_grad");
  kernels::backend().density_gather(grid_view(), cells_view(), x.data(),
                                    y.data(), field_x_.data(), field_y_.data(),
                                    lambda, gx.data(), gy.data());
}

}  // namespace dtp::placer
