#include "placer/density.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "obs/trace.h"

namespace dtp::placer {

using netlist::CellId;

DensityModel::DensityModel(const netlist::Design& design, int bins_per_dim,
                           double target_density)
    : design_(&design),
      m_(bins_per_dim),
      target_density_(target_density),
      bin_w_(design.floorplan.core.width() / bins_per_dim),
      bin_h_(design.floorplan.core.height() / bins_per_dim),
      solver_(bins_per_dim, design.floorplan.core.width(),
              design.floorplan.core.height()) {
  const netlist::Netlist& nl = design.netlist;
  const size_t n = nl.num_cells();
  cell_w_.resize(n);
  cell_h_.resize(n);
  cell_area_.resize(n);
  movable_.resize(n);
  for (size_t c = 0; c < n; ++c) {
    const liberty::LibCell& master = nl.lib_cell_of(static_cast<CellId>(c));
    cell_w_[c] = master.width;
    cell_h_[c] = master.height;
    cell_area_[c] = master.width * master.height;
    movable_[c] = !nl.cell(static_cast<CellId>(c)).fixed;
    if (movable_[c]) total_movable_area_ += cell_area_[c];
  }
  rho_.assign(static_cast<size_t>(m_) * m_, 0.0);
}

DensityModel::Footprint DensityModel::footprint(size_t c, double x,
                                                double y) const {
  // Inflate to at least bin dimensions, keeping the center and total charge.
  const double w = std::max(cell_w_[c], bin_w_);
  const double h = std::max(cell_h_[c], bin_h_);
  const double cx = x + 0.5 * cell_w_[c];
  const double cy = y + 0.5 * cell_h_[c];
  Footprint f;
  f.xl = cx - 0.5 * w;
  f.xh = cx + 0.5 * w;
  f.yl = cy - 0.5 * h;
  f.yh = cy + 0.5 * h;
  f.scale = cell_area_[c] / (w * h);  // charge density inside the footprint
  return f;
}

DensityStats DensityModel::update(std::span<const double> x,
                                  std::span<const double> y) {
  DTP_TRACE_SCOPE("density_update");
  const Rect& core = design_->floorplan.core;
  std::fill(rho_.begin(), rho_.end(), 0.0);

  for (size_t c = 0; c < cell_w_.size(); ++c) {
    if (!movable_[c] || cell_area_[c] <= 0.0) continue;
    const Footprint f = footprint(c, x[c], y[c]);
    // Clamp to the core and convert to bin index ranges.
    const double xl = std::max(f.xl - core.xl, 0.0);
    const double xh = std::min(f.xh - core.xl, core.width());
    const double yl = std::max(f.yl - core.yl, 0.0);
    const double yh = std::min(f.yh - core.yl, core.height());
    if (xl >= xh || yl >= yh) continue;
    const int bx0 = std::clamp(static_cast<int>(xl / bin_w_), 0, m_ - 1);
    const int bx1 = std::clamp(static_cast<int>(xh / bin_w_), 0, m_ - 1);
    const int by0 = std::clamp(static_cast<int>(yl / bin_h_), 0, m_ - 1);
    const int by1 = std::clamp(static_cast<int>(yh / bin_h_), 0, m_ - 1);
    for (int bx = bx0; bx <= bx1; ++bx) {
      const double ox = std::min(xh, (bx + 1) * bin_w_) - std::max(xl, bx * bin_w_);
      if (ox <= 0.0) continue;
      for (int by = by0; by <= by1; ++by) {
        const double oy =
            std::min(yh, (by + 1) * bin_h_) - std::max(yl, by * bin_h_);
        if (oy <= 0.0) continue;
        rho_[static_cast<size_t>(bx) * m_ + by] += f.scale * ox * oy;
      }
    }
  }

  {
    DTP_TRACE_SCOPE("poisson_solve");
    solver_.solve(rho_, psi_, field_x_, field_y_);
  }

  DensityStats stats;
  stats.energy = PoissonSolver::energy(rho_, psi_);
  const double bin_area = bin_w_ * bin_h_;
  const double cap = target_density_ * bin_area;
  double over = 0.0;
  for (double r : rho_) {
    over += std::max(0.0, r - cap);
    stats.max_density = std::max(stats.max_density, r / bin_area);
  }
  stats.overflow = total_movable_area_ > 0 ? over / total_movable_area_ : 0.0;
  return stats;
}

void DensityModel::add_gradient(std::span<const double> x,
                                std::span<const double> y, double lambda,
                                std::span<double> gx, std::span<double> gy) const {
  DTP_TRACE_SCOPE("density_grad");
  const Rect& core = design_->floorplan.core;
  for (size_t c = 0; c < cell_w_.size(); ++c) {
    if (!movable_[c] || cell_area_[c] <= 0.0) continue;
    const Footprint f = footprint(c, x[c], y[c]);
    const double xl = std::max(f.xl - core.xl, 0.0);
    const double xh = std::min(f.xh - core.xl, core.width());
    const double yl = std::max(f.yl - core.yl, 0.0);
    const double yh = std::min(f.yh - core.yl, core.height());
    if (xl >= xh || yl >= yh) continue;
    const int bx0 = std::clamp(static_cast<int>(xl / bin_w_), 0, m_ - 1);
    const int bx1 = std::clamp(static_cast<int>(xh / bin_w_), 0, m_ - 1);
    const int by0 = std::clamp(static_cast<int>(yl / bin_h_), 0, m_ - 1);
    const int by1 = std::clamp(static_cast<int>(yh / bin_h_), 0, m_ - 1);
    double fx = 0.0, fy = 0.0;
    for (int bx = bx0; bx <= bx1; ++bx) {
      const double ox = std::min(xh, (bx + 1) * bin_w_) - std::max(xl, bx * bin_w_);
      if (ox <= 0.0) continue;
      for (int by = by0; by <= by1; ++by) {
        const double oy =
            std::min(yh, (by + 1) * bin_h_) - std::max(yl, by * bin_h_);
        if (oy <= 0.0) continue;
        const double q = f.scale * ox * oy;
        fx += q * field_x_[static_cast<size_t>(bx) * m_ + by];
        fy += q * field_y_[static_cast<size_t>(bx) * m_ + by];
      }
    }
    // The force -q*grad(psi) = +q*field pulls cells from dense to sparse
    // regions; as an objective gradient it enters with the opposite sign.
    gx[c] += -lambda * fx;
    gy[c] += -lambda * fy;
  }
}

}  // namespace dtp::placer
