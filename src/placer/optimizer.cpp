#include "placer/optimizer.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "common/logger.h"
#include "obs/metrics.h"

namespace dtp::placer {

double NesterovOptimizer::step(std::span<double> x, std::span<double> y,
                               std::span<const double> gx,
                               std::span<const double> gy) {
  const size_t n = x.size();
  DTP_ASSERT(y.size() == n && gx.size() == n && gy.size() == n);
  if (ux_.empty()) {
    ux_.assign(x.begin(), x.end());
    uy_.assign(y.begin(), y.end());
    prev_vx_.resize(n);
    prev_vy_.resize(n);
    prev_gx_.resize(n);
    prev_gy_.resize(n);
  }

  // Barzilai–Borwein step size from the change between consecutive lookahead
  // points and gradients: eta = |dv| / |dg| (the ePlace Lipschitz estimate).
  double eta = initial_step_;
  if (has_prev_) {
    double dv2 = 0.0, dg2 = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double dvx = x[i] - prev_vx_[i];
      const double dvy = y[i] - prev_vy_[i];
      const double dgx = gx[i] - prev_gx_[i];
      const double dgy = gy[i] - prev_gy_[i];
      dv2 += dvx * dvx + dvy * dvy;
      dg2 += dgx * dgx + dgy * dgy;
    }
    if (dg2 > 1e-30) eta = std::sqrt(dv2 / dg2);
    // Guard against degenerate estimates — counted so recoveries show up in
    // run artifacts instead of being a silent reset.
    if (!std::isfinite(eta) || eta <= 0.0) {
      static obs::Counter& resets =
          obs::MetricsRegistry::instance().counter("robust.step_resets");
      resets.add();
      DTP_LOG_DEBUG("Nesterov BB step degenerate (eta=%g), reset to %g", eta,
                    initial_step_);
      eta = initial_step_;
    }
  }
  eta *= step_scale_;

  for (size_t i = 0; i < n; ++i) {
    prev_vx_[i] = x[i];
    prev_vy_[i] = y[i];
    prev_gx_[i] = gx[i];
    prev_gy_[i] = gy[i];
  }
  has_prev_ = true;

  // u_{k+1} = v_k - eta * g(v_k);   v_{k+1} = u_{k+1} + c (u_{k+1} - u_k).
  const double a_next = 0.5 * (1.0 + std::sqrt(4.0 * a_ * a_ + 1.0));
  const double coef = (a_ - 1.0) / a_next;
  a_ = a_next;
  for (size_t i = 0; i < n; ++i) {
    const double ux_new = x[i] - eta * gx[i];
    const double uy_new = y[i] - eta * gy[i];
    x[i] = ux_new + coef * (ux_new - ux_[i]);
    y[i] = uy_new + coef * (uy_new - uy_[i]);
    ux_[i] = ux_new;
    uy_[i] = uy_new;
  }
  return eta;
}

void NesterovOptimizer::reset() {
  a_ = 1.0;
  ux_.clear();
  uy_.clear();
  has_prev_ = false;
}

void NesterovOptimizer::save_state(robust::StateBlob& blob) const {
  blob.scalars = {a_, has_prev_ ? 1.0 : 0.0, step_scale_};
  blob.vectors = {ux_, uy_, prev_vx_, prev_vy_, prev_gx_, prev_gy_};
}

void NesterovOptimizer::restore_state(const robust::StateBlob& blob) {
  if (blob.scalars.size() != 3 || blob.vectors.size() != 6) {
    reset();
    return;
  }
  a_ = blob.scalars[0];
  has_prev_ = blob.scalars[1] != 0.0;
  step_scale_ = blob.scalars[2];
  ux_ = blob.vectors[0];
  uy_ = blob.vectors[1];
  prev_vx_ = blob.vectors[2];
  prev_vy_ = blob.vectors[3];
  prev_gx_ = blob.vectors[4];
  prev_gy_ = blob.vectors[5];
}

double AdamOptimizer::step(std::span<double> x, std::span<double> y,
                           std::span<const double> gx,
                           std::span<const double> gy) {
  const size_t n = x.size();
  if (mx_.empty()) {
    mx_.assign(n, 0.0);
    my_.assign(n, 0.0);
    vx_.assign(n, 0.0);
    vy_.assign(n, 0.0);
  }
  ++t_;
  const double lr = lr_ * step_scale_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (size_t i = 0; i < n; ++i) {
    mx_[i] = beta1_ * mx_[i] + (1.0 - beta1_) * gx[i];
    my_[i] = beta1_ * my_[i] + (1.0 - beta1_) * gy[i];
    vx_[i] = beta2_ * vx_[i] + (1.0 - beta2_) * gx[i] * gx[i];
    vy_[i] = beta2_ * vy_[i] + (1.0 - beta2_) * gy[i] * gy[i];
    x[i] -= lr * (mx_[i] / bc1) / (std::sqrt(vx_[i] / bc2) + eps_);
    y[i] -= lr * (my_[i] / bc1) / (std::sqrt(vy_[i] / bc2) + eps_);
  }
  return lr;
}

void AdamOptimizer::reset() {
  t_ = 0;
  mx_.clear();
  my_.clear();
  vx_.clear();
  vy_.clear();
}

void AdamOptimizer::save_state(robust::StateBlob& blob) const {
  blob.scalars = {static_cast<double>(t_), step_scale_};
  blob.vectors = {mx_, my_, vx_, vy_};
}

void AdamOptimizer::restore_state(const robust::StateBlob& blob) {
  if (blob.scalars.size() != 2 || blob.vectors.size() != 4) {
    reset();
    return;
  }
  t_ = static_cast<long>(blob.scalars[0]);
  step_scale_ = blob.scalars[1];
  mx_ = blob.vectors[0];
  my_ = blob.vectors[1];
  vx_ = blob.vectors[2];
  vy_ = blob.vectors[3];
}

}  // namespace dtp::placer
