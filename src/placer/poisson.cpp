#include "placer/poisson.h"

#include <cmath>

#include "common/assert.h"
#include "obs/trace.h"
#include "placer/fft.h"

namespace dtp::placer {

namespace {
constexpr double kPi = 3.14159265358979323846;

void transpose(int m, const std::vector<double>& src, std::vector<double>& dst) {
  DTP_TRACE_SCOPE("pois_transpose");
  dst.resize(src.size());
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < m; ++j)
      dst[static_cast<size_t>(j) * m + i] = src[static_cast<size_t>(i) * m + j];
}

}  // namespace

struct PoissonSolver::Impl {
  explicit Impl(size_t m) : rows(m) {}
  HalfSampleTransform rows;
  // Scratch matrices (all m*m).
  std::vector<double> a, b, coef, tmp2;
};

PoissonSolver::PoissonSolver(int m, double width, double height) : m_(m) {
  DTP_ASSERT(m >= 2 && width > 0.0 && height > 0.0);
  wu_scale_x_ = kPi / width;
  wu_scale_y_ = kPi / height;
  impl_ = std::make_shared<Impl>(static_cast<size_t>(m));
}

void PoissonSolver::solve(const std::vector<double>& rho, std::vector<double>& psi,
                          std::vector<double>& field_x,
                          std::vector<double>& field_y) const {
  const int m = m_;
  const size_t mm = static_cast<size_t>(m) * m;
  DTP_ASSERT(rho.size() == mm);
  psi.resize(mm);
  field_x.resize(mm);
  field_y.resize(mm);

  Impl& im = *impl_;
  auto& a = im.a;
  auto& b = im.b;
  auto& coef = im.coef;
  auto& tmp2 = im.tmp2;
  a.resize(mm);
  b.resize(mm);
  coef.resize(mm);
  tmp2.resize(mm);

  // coef[u][v] = sum_{x,y} rho[x][y] C_u(x) C_v(y): contract x, then y.
  transpose(m, rho, a);  // a[y][x]
  {
    DTP_TRACE_SCOPE("pois_dct_rows");
    for (int y = 0; y < m; ++y)
      im.rows.dct2(a.data() + static_cast<size_t>(y) * m,
                   b.data() + static_cast<size_t>(y) * m);  // b[y][u]
  }
  transpose(m, b, a);  // a[u][y]
  {
    DTP_TRACE_SCOPE("pois_dct_cols");
    for (int u = 0; u < m; ++u)
      im.rows.dct2(a.data() + static_cast<size_t>(u) * m,
                   coef.data() + static_cast<size_t>(u) * m);  // coef[u][v]
  }

  // Series coefficients alpha_u alpha_v / (k_u^2 + k_v^2), DC dropped.
  {
    DTP_TRACE_SCOPE("pois_spectral_scale");
    for (int u = 0; u < m; ++u) {
      const double ku = u * wu_scale_x_;
      const double au = (u == 0 ? 1.0 : 2.0) / m;
      for (int v = 0; v < m; ++v) {
        const double kv = v * wu_scale_y_;
        const double av = (v == 0 ? 1.0 : 2.0) / m;
        const size_t i = static_cast<size_t>(u) * m + v;
        coef[i] = (u == 0 && v == 0)
                      ? 0.0
                      : coef[i] * au * av / (ku * ku + kv * kv);
      }
    }
  }

  // tmp2[u][y] = sum_v coef[u][v] C_v(y).
  {
    DTP_TRACE_SCOPE("pois_idct_rows");
    for (int u = 0; u < m; ++u)
      im.rows.eval_cos(coef.data() + static_cast<size_t>(u) * m,
                       tmp2.data() + static_cast<size_t>(u) * m);
  }

  // psi[x][y] = sum_u tmp2[u][y] C_u(x).
  transpose(m, tmp2, a);  // a[y][u]
  {
    DTP_TRACE_SCOPE("pois_idct_cols");
    for (int y = 0; y < m; ++y)
      im.rows.eval_cos(a.data() + static_cast<size_t>(y) * m,
                       b.data() + static_cast<size_t>(y) * m);  // b[y][x]
  }
  transpose(m, b, psi);

  // field_x[x][y] = sum_u k_u tmp2[u][y] S_u(x).
  {
    DTP_TRACE_SCOPE("pois_idst_fieldx");
    for (int u = 0; u < m; ++u) {
      const double ku = u * wu_scale_x_;
      for (int y = 0; y < m; ++y)
        b[static_cast<size_t>(u) * m + y] =
            ku * tmp2[static_cast<size_t>(u) * m + y];
    }
    transpose(m, b, a);  // a[y][u]
    for (int y = 0; y < m; ++y)
      im.rows.eval_sin(a.data() + static_cast<size_t>(y) * m,
                       b.data() + static_cast<size_t>(y) * m);  // b[y][x]
    transpose(m, b, field_x);
  }

  // field_y[x][y] = sum_u C_u(x) sum_v k_v coef[u][v] S_v(y).
  {
    DTP_TRACE_SCOPE("pois_idst_fieldy");
    for (int u = 0; u < m; ++u)
      for (int v = 0; v < m; ++v)
        a[static_cast<size_t>(u) * m + v] =
            coef[static_cast<size_t>(u) * m + v] * (v * wu_scale_y_);
    for (int u = 0; u < m; ++u)
      im.rows.eval_sin(a.data() + static_cast<size_t>(u) * m,
                       b.data() + static_cast<size_t>(u) * m);  // b[u][y]
    transpose(m, b, a);  // a[y][u]
    for (int y = 0; y < m; ++y)
      im.rows.eval_cos(a.data() + static_cast<size_t>(y) * m,
                       b.data() + static_cast<size_t>(y) * m);  // b[y][x]
    transpose(m, b, field_y);
  }
}

double PoissonSolver::energy(const std::vector<double>& rho,
                             const std::vector<double>& psi) {
  DTP_ASSERT(rho.size() == psi.size());
  double e = 0.0;
  for (size_t i = 0; i < rho.size(); ++i) e += rho[i] * psi[i];
  return 0.5 * e;
}

bool PoissonSolver::uses_fft() const { return impl_->rows.fast(); }

}  // namespace dtp::placer
