#include "placer/poisson.h"

#include <atomic>
#include <cmath>

#include "common/assert.h"
#include "common/logger.h"
#include "kernels/kernel_backend.h"
#include "kernels/transform.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dtp::placer {

namespace {
constexpr double kPi = 3.14159265358979323846;

void transpose(int m, const std::vector<double>& src, std::vector<double>& dst) {
  DTP_TRACE_SCOPE("pois_transpose");
  dst.resize(src.size());
  kernels::backend().transpose(static_cast<size_t>(m), src.data(), dst.data());
}

// Fused twiddle+transpose: dst[j][i] = src[i][j] * row_scale[i].
void transpose_scaled(int m, const std::vector<double>& src,
                      const std::vector<double>& row_scale,
                      std::vector<double>& dst) {
  DTP_TRACE_SCOPE("pois_transpose");
  dst.resize(src.size());
  kernels::backend().transpose_scaled(static_cast<size_t>(m), src.data(),
                                      row_scale.data(), dst.data());
}

}  // namespace

struct PoissonSolver::Impl {
  Impl(int m, double wux, double wuy) {
    const size_t um = static_cast<size_t>(m);
    if (kernels::is_power_of_two(um)) {
      plan = std::make_unique<kernels::DctPlan>(um);
    } else {
      direct = std::make_unique<kernels::HalfSampleDirect>(um);
    }
    kx.resize(um);
    ky.resize(um);
    for (size_t u = 0; u < um; ++u) {
      kx[u] = static_cast<double>(u) * wux;
      ky[u] = static_cast<double>(u) * wuy;
    }
    const size_t mm = um * um;
    a.resize(mm);
    b.resize(mm);
    coef.resize(mm);
    tmp2.resize(mm);
  }
  // Exactly one of these is set: the real-to-complex fast path for
  // power-of-two grids, the direct table sums otherwise.
  std::unique_ptr<kernels::DctPlan> plan;
  std::unique_ptr<kernels::HalfSampleDirect> direct;
  std::vector<double> kx, ky;  // wavenumbers k_u = u*pi/W, k_v = v*pi/H
  // Scratch matrices (all m*m, preallocated — solve() never allocates).
  std::vector<double> a, b, coef, tmp2;
};

PoissonSolver::PoissonSolver(int m, double width, double height) : m_(m) {
  DTP_ASSERT(m >= 2 && width > 0.0 && height > 0.0);
  wu_scale_x_ = kPi / width;
  wu_scale_y_ = kPi / height;
  impl_ = std::make_shared<Impl>(m, wu_scale_x_, wu_scale_y_);
}

void PoissonSolver::solve(const std::vector<double>& rho, std::vector<double>& psi,
                          std::vector<double>& field_x,
                          std::vector<double>& field_y) const {
  const int m = m_;
  const size_t mm = static_cast<size_t>(m) * m;
  DTP_ASSERT(rho.size() == mm);
  psi.resize(mm);
  field_x.resize(mm);
  field_y.resize(mm);

  Impl& im = *impl_;
  auto& a = im.a;
  auto& b = im.b;
  auto& coef = im.coef;
  auto& tmp2 = im.tmp2;
  const kernels::KernelBackend& kb = kernels::backend();
  const size_t um = static_cast<size_t>(m);

  if (im.direct != nullptr) {
    // Non-power-of-two grid: O(m^3) direct sums.  Shout once, count always —
    // auto_bins never picks such a grid, so hitting this path means an
    // explicit configuration worth surfacing.
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true, std::memory_order_relaxed)) {
      DTP_LOG_WARN(
          "poisson: grid %d is not a power of two; using O(m^3) direct "
          "transforms (~%dx slower per solve than the FFT path)",
          m, m > 16 ? m / 16 : 1);
    }
    static obs::Counter& slow_path =
        obs::MetricsRegistry::instance().counter("placer.poisson.slow_path");
    slow_path.add(1);
  }

  const kernels::HalfSampleDirect* direct = im.direct.get();
  const kernels::DctPlan* plan = im.plan.get();

  // coef[u][v] = sum_{x,y} rho[x][y] C_u(x) C_v(y): contract x, then y.
  transpose(m, rho, a);  // a[y][x]
  {
    DTP_TRACE_SCOPE("pois_dct_rows");
    if (plan != nullptr) {
      kb.dct2_rows(*plan, a.data(), b.data(), um);  // b[y][u]
    } else {
      for (int y = 0; y < m; ++y)
        direct->dct2(a.data() + static_cast<size_t>(y) * m,
                     b.data() + static_cast<size_t>(y) * m);
    }
  }
  transpose(m, b, a);  // a[u][y]
  {
    DTP_TRACE_SCOPE("pois_dct_cols");
    if (plan != nullptr) {
      kb.dct2_rows(*plan, a.data(), coef.data(), um);  // coef[u][v]
    } else {
      for (int u = 0; u < m; ++u)
        direct->dct2(a.data() + static_cast<size_t>(u) * m,
                     coef.data() + static_cast<size_t>(u) * m);
    }
  }

  // Series coefficients alpha_u alpha_v / (k_u^2 + k_v^2), DC dropped.
  {
    DTP_TRACE_SCOPE("pois_spectral_scale");
    for (int u = 0; u < m; ++u) {
      const double ku = im.kx[static_cast<size_t>(u)];
      const double au = (u == 0 ? 1.0 : 2.0) / m;
      for (int v = 0; v < m; ++v) {
        const double kv = im.ky[static_cast<size_t>(v)];
        const double av = (v == 0 ? 1.0 : 2.0) / m;
        const size_t i = static_cast<size_t>(u) * m + v;
        coef[i] = (u == 0 && v == 0)
                      ? 0.0
                      : coef[i] * au * av / (ku * ku + kv * kv);
      }
    }
  }

  // tmp2[u][y] = sum_v coef[u][v] C_v(y).
  {
    DTP_TRACE_SCOPE("pois_idct_rows");
    if (plan != nullptr) {
      kb.idct_rows(*plan, coef.data(), tmp2.data(), um);
    } else {
      for (int u = 0; u < m; ++u)
        direct->eval_cos(coef.data() + static_cast<size_t>(u) * m,
                         tmp2.data() + static_cast<size_t>(u) * m);
    }
  }

  // psi[x][y] = sum_u tmp2[u][y] C_u(x).
  transpose(m, tmp2, a);  // a[y][u]
  {
    DTP_TRACE_SCOPE("pois_idct_cols");
    if (plan != nullptr) {
      kb.idct_rows(*plan, a.data(), b.data(), um);  // b[y][x]
    } else {
      for (int y = 0; y < m; ++y)
        direct->eval_cos(a.data() + static_cast<size_t>(y) * m,
                         b.data() + static_cast<size_t>(y) * m);
    }
  }
  transpose(m, b, psi);

  // field_x[x][y] = sum_u k_u tmp2[u][y] S_u(x).  The k_u scale rides the
  // transpose (fused twiddle+transpose pass).
  {
    DTP_TRACE_SCOPE("pois_idst_fieldx");
    transpose_scaled(m, tmp2, im.kx, a);  // a[y][u] = k_u tmp2[u][y]
    if (plan != nullptr) {
      kb.idst_rows(*plan, a.data(), nullptr, b.data(), um);  // b[y][x]
    } else {
      for (int y = 0; y < m; ++y)
        direct->eval_sin(a.data() + static_cast<size_t>(y) * m,
                         b.data() + static_cast<size_t>(y) * m);
    }
    transpose(m, b, field_x);
  }

  // field_y[x][y] = sum_u C_u(x) sum_v k_v coef[u][v] S_v(y).  The k_v scale
  // is fused into the sine rows' coefficient pack.
  {
    DTP_TRACE_SCOPE("pois_idst_fieldy");
    if (plan != nullptr) {
      kb.idst_rows(*plan, coef.data(), im.ky.data(), b.data(), um);  // b[u][y]
    } else {
      for (int u = 0; u < m; ++u) {
        for (int v = 0; v < m; ++v)
          a[static_cast<size_t>(u) * m + v] =
              coef[static_cast<size_t>(u) * m + v] * im.ky[static_cast<size_t>(v)];
        direct->eval_sin(a.data() + static_cast<size_t>(u) * m,
                         b.data() + static_cast<size_t>(u) * m);
      }
    }
    transpose(m, b, a);  // a[y][u]
    {
      if (plan != nullptr) {
        kb.idct_rows(*plan, a.data(), b.data(), um);  // b[y][x]
      } else {
        for (int y = 0; y < m; ++y)
          direct->eval_cos(a.data() + static_cast<size_t>(y) * m,
                           b.data() + static_cast<size_t>(y) * m);
      }
    }
    transpose(m, b, field_y);
  }
}

double PoissonSolver::energy(const std::vector<double>& rho,
                             const std::vector<double>& psi) {
  DTP_ASSERT(rho.size() == psi.size());
  double e = 0.0;
  for (size_t i = 0; i < rho.size(); ++i) e += rho[i] * psi[i];
  return 0.5 * e;
}

bool PoissonSolver::uses_fft() const { return impl_->plan != nullptr; }

}  // namespace dtp::placer
