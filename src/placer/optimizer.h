// First-order optimizers for nonlinear placement.
//
// NesterovOptimizer is the ePlace scheme: Nesterov's accelerated gradient
// with Barzilai–Borwein step-size prediction — the optimizer DREAMPlace (and
// hence the paper's flow) runs.  AdamOptimizer is provided as a robust
// alternative and for the optimizer ablation bench.
//
// Both operate on interleaved (x, y) coordinate vectors of movable cells; the
// driver masks fixed cells by zeroing their gradients before step().
#pragma once

#include <span>
#include <vector>

namespace dtp::placer {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  // Takes one descent step given the objective gradient at the *current*
  // iterate; updates x/y in place.  Returns the step scale actually used.
  virtual double step(std::span<double> x, std::span<double> y,
                      std::span<const double> gx, std::span<const double> gy) = 0;
  virtual void reset() = 0;
};

// Nesterov with BB step: the iterate exposed to the caller is the lookahead
// point v_k (where gradients are evaluated), as in ePlace's implementation.
class NesterovOptimizer final : public Optimizer {
 public:
  explicit NesterovOptimizer(double initial_step = 1.0)
      : initial_step_(initial_step) {}

  double step(std::span<double> x, std::span<double> y,
              std::span<const double> gx, std::span<const double> gy) override;
  void reset() override;

 private:
  double initial_step_;
  double a_ = 1.0;  // Nesterov momentum sequence
  std::vector<double> ux_, uy_;          // main solution u_k
  std::vector<double> prev_vx_, prev_vy_; // previous lookahead point
  std::vector<double> prev_gx_, prev_gy_; // gradient at previous lookahead
  bool has_prev_ = false;
};

class AdamOptimizer final : public Optimizer {
 public:
  explicit AdamOptimizer(double lr, double beta1 = 0.9, double beta2 = 0.999,
                         double eps = 1e-12)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

  double step(std::span<double> x, std::span<double> y,
              std::span<const double> gx, std::span<const double> gy) override;
  void reset() override;

 private:
  double lr_, beta1_, beta2_, eps_;
  long t_ = 0;
  std::vector<double> mx_, my_, vx_, vy_;
};

}  // namespace dtp::placer
