// First-order optimizers for nonlinear placement.
//
// NesterovOptimizer is the ePlace scheme: Nesterov's accelerated gradient
// with Barzilai–Borwein step-size prediction — the optimizer DREAMPlace (and
// hence the paper's flow) runs.  AdamOptimizer is provided as a robust
// alternative and for the optimizer ablation bench.
//
// Both operate on interleaved (x, y) coordinate vectors of movable cells; the
// driver masks fixed cells by zeroing their gradients before step().
#pragma once

#include <span>
#include <vector>

#include "robust/checkpoint.h"

namespace dtp::placer {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  // Takes one descent step given the objective gradient at the *current*
  // iterate; updates x/y in place.  Returns the step scale actually used.
  virtual double step(std::span<double> x, std::span<double> y,
                      std::span<const double> gx, std::span<const double> gy) = 0;
  virtual void reset() = 0;

  // Serializes the full internal state into/out of an opaque blob, so the
  // recovery layer can checkpoint and roll back the optimizer together with
  // the iterate (restoring positions alone would leave momentum pointing at
  // the faulted trajectory).
  virtual void save_state(robust::StateBlob& blob) const = 0;
  virtual void restore_state(const robust::StateBlob& blob) = 0;

  // Global multiplier on the step size; the recovery layer halves it after
  // each rollback.  1.0 (the default) is bitwise-neutral.
  void set_step_scale(double s) { step_scale_ = s; }
  double step_scale() const { return step_scale_; }

 protected:
  double step_scale_ = 1.0;
};

// Nesterov with BB step: the iterate exposed to the caller is the lookahead
// point v_k (where gradients are evaluated), as in ePlace's implementation.
class NesterovOptimizer final : public Optimizer {
 public:
  explicit NesterovOptimizer(double initial_step = 1.0)
      : initial_step_(initial_step) {}

  double step(std::span<double> x, std::span<double> y,
              std::span<const double> gx, std::span<const double> gy) override;
  void reset() override;
  void save_state(robust::StateBlob& blob) const override;
  void restore_state(const robust::StateBlob& blob) override;

 private:
  double initial_step_;
  double a_ = 1.0;  // Nesterov momentum sequence
  std::vector<double> ux_, uy_;          // main solution u_k
  std::vector<double> prev_vx_, prev_vy_; // previous lookahead point
  std::vector<double> prev_gx_, prev_gy_; // gradient at previous lookahead
  bool has_prev_ = false;
};

class AdamOptimizer final : public Optimizer {
 public:
  explicit AdamOptimizer(double lr, double beta1 = 0.9, double beta2 = 0.999,
                         double eps = 1e-12)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

  double step(std::span<double> x, std::span<double> y,
              std::span<const double> gx, std::span<const double> gy) override;
  void reset() override;
  void save_state(robust::StateBlob& blob) const override;
  void restore_state(const robust::StateBlob& blob) override;

 private:
  double lr_, beta1_, beta2_, eps_;
  long t_ = 0;
  std::vector<double> mx_, my_, vx_, vy_;
};

}  // namespace dtp::placer
